package fastod_test

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	fastod "repro"
)

// --- Request validation: invalid envelopes fail fast with the typed ---
// --- ErrInvalidRequest, before any encoding or store work.          ---

func TestRequestValidate(t *testing.T) {
	valid := []fastod.Request{
		{}, // zero value is a default FASTOD run
		{Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 0.5}},
		{Algorithm: fastod.AlgorithmConditional},
		{RunOptions: fastod.RunOptions{Workers: 4, MaxLevel: 3, Budget: fastod.DefaultBudget()}},
		// Sub-option blocks not read by the selected algorithm are ignored,
		// mirroring Run's documented contract.
		{Algorithm: fastod.AlgorithmTANE, Approx: fastod.ApproxRunOptions{Threshold: 99}},
	}
	for i, req := range valid {
		if err := req.Validate(); err != nil {
			t.Errorf("valid request %d rejected: %v", i, err)
		}
	}

	invalid := []struct {
		name string
		req  fastod.Request
	}{
		{"negative workers", fastod.Request{RunOptions: fastod.RunOptions{Workers: -3}}},
		{"negative max level", fastod.Request{RunOptions: fastod.RunOptions{MaxLevel: -1}}},
		{"negative timeout", fastod.Request{RunOptions: fastod.RunOptions{Budget: fastod.Budget{Timeout: -time.Second}}}},
		{"negative max nodes", fastod.Request{RunOptions: fastod.RunOptions{Budget: fastod.Budget{MaxNodes: -5}}}},
		{"negative threshold", fastod.Request{Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: -0.1}}},
		{"threshold at one", fastod.Request{Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 1}}},
		{"NaN threshold", fastod.Request{Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: math.NaN()}}},
		{"negative slice rows", fastod.Request{Algorithm: fastod.AlgorithmConditional, Conditional: fastod.ConditionalRunOptions{MinSliceRows: -1}}},
		{"negative condition cardinality", fastod.Request{Algorithm: fastod.AlgorithmConditional, Conditional: fastod.ConditionalRunOptions{MaxConditionCardinality: -1}}},
		{"negative condition attr", fastod.Request{Algorithm: fastod.AlgorithmConditional, Conditional: fastod.ConditionalRunOptions{ConditionAttrs: []int{2, -1}}}},
		{"duplicate condition attr", fastod.Request{Algorithm: fastod.AlgorithmConditional, Conditional: fastod.ConditionalRunOptions{ConditionAttrs: []int{1, 1}}}},
		{"unknown algorithm", fastod.Request{Algorithm: "magic"}},
	}
	for _, tc := range invalid {
		err := tc.req.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.req)
			continue
		}
		if !errors.Is(err, fastod.ErrInvalidRequest) {
			t.Errorf("%s: error %v is not ErrInvalidRequest", tc.name, err)
		}
	}
}

func TestRunRejectsInvalidRequestUpFront(t *testing.T) {
	ds := fastod.EmployeesExample()
	ctx := context.Background()

	// The approx threshold used to surface from deep inside internal/approx
	// after dataset encoding and store setup; now it is a typed pre-flight
	// rejection.
	rep, err := ds.Run(ctx, fastod.Request{
		Algorithm: fastod.AlgorithmApprox,
		Approx:    fastod.ApproxRunOptions{Threshold: 1.5},
	})
	if err == nil || rep != nil {
		t.Fatalf("out-of-range threshold: Run = (%v, %v), want typed error", rep, err)
	}
	if !errors.Is(err, fastod.ErrInvalidRequest) {
		t.Errorf("threshold error %v is not ErrInvalidRequest", err)
	}

	// Negative workers used to be silently clamped to 1 by the engine.
	_, err = ds.Run(ctx, fastod.Request{RunOptions: fastod.RunOptions{Workers: -3}})
	if !errors.Is(err, fastod.ErrInvalidRequest) {
		t.Errorf("negative workers: error %v is not ErrInvalidRequest", err)
	}

	// Negative MaxLevel used to pass through unchecked.
	_, err = ds.Run(ctx, fastod.Request{RunOptions: fastod.RunOptions{MaxLevel: -2}})
	if !errors.Is(err, fastod.ErrInvalidRequest) {
		t.Errorf("negative MaxLevel: error %v is not ErrInvalidRequest", err)
	}

	_, err = ds.Run(ctx, fastod.Request{Algorithm: "magic"})
	if !errors.Is(err, fastod.ErrInvalidRequest) {
		t.Errorf("unknown algorithm: error %v is not ErrInvalidRequest", err)
	}

	// Out-of-range condition attributes need the dataset's width, so Run
	// checks them itself — still typed, still before the unconditional pass.
	_, err = ds.Run(ctx, fastod.Request{
		Algorithm:   fastod.AlgorithmConditional,
		Conditional: fastod.ConditionalRunOptions{ConditionAttrs: []int{99}},
	})
	if !errors.Is(err, fastod.ErrInvalidRequest) {
		t.Errorf("out-of-range condition attr: error %v is not ErrInvalidRequest", err)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := fastod.ResolveWorkers(3); got != 3 {
		t.Errorf("ResolveWorkers(3) = %d", got)
	}
	if got := fastod.ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d, want >= 1", got)
	}
	// ORDER ignores Workers: its effective parallelism is always 1.
	req := fastod.Request{Algorithm: fastod.AlgorithmORDER, RunOptions: fastod.RunOptions{Workers: 8}}
	if got := req.EffectiveWorkers(); got != 1 {
		t.Errorf("ORDER EffectiveWorkers = %d, want 1", got)
	}
	req.Algorithm = fastod.AlgorithmTANE
	if got := req.EffectiveWorkers(); got != 8 {
		t.Errorf("TANE EffectiveWorkers = %d, want 8", got)
	}
}

// --- Conditional slice progress: the run stays observable after the ---
// --- unconditional pass.                                            ---

func TestConditionalSliceProgress(t *testing.T) {
	ds := fastod.SyntheticHepatitis(80, 5, 7)
	var levels, slices int
	var lastCumulative int
	rep, err := ds.RunWithProgress(context.Background(), fastod.Request{
		Algorithm: fastod.AlgorithmConditional,
	}, func(ev fastod.ProgressEvent) {
		if ev.Level == fastod.SliceProgressLevel {
			slices++
			if ev.Nodes <= 0 {
				t.Errorf("slice event with no nodes: %+v", ev)
			}
			if ev.Slice == nil {
				t.Errorf("slice event without condition info: %+v", ev)
			} else if ev.Slice.Attr < 0 || ev.Slice.Attr >= ds.NumCols() || ev.Slice.Rows <= 0 {
				t.Errorf("slice event with bad condition info: %+v", *ev.Slice)
			}
		} else {
			levels++
			if ev.Slice != nil {
				t.Errorf("level event %+v carries slice info", ev)
			}
			if slices > 0 {
				t.Errorf("level event %+v after slice events began", ev)
			}
		}
		if ev.NodesVisited < lastCumulative {
			t.Errorf("cumulative NodesVisited went backwards: %d -> %d", lastCumulative, ev.NodesVisited)
		}
		lastCumulative = ev.NodesVisited
	})
	if err != nil {
		t.Fatalf("conditional run: %v", err)
	}
	if levels == 0 {
		t.Error("no per-level events from the unconditional pass")
	}
	if slices == 0 {
		t.Error("no per-slice events — conditional runs went dark after the unconditional pass")
	}
	if slices != rep.Conditional.SlicesExamined {
		t.Errorf("%d slice events, but %d slices examined", slices, rep.Conditional.SlicesExamined)
	}
	if lastCumulative != rep.Stats.NodesVisited {
		t.Errorf("last cumulative count %d != report total %d", lastCumulative, rep.Stats.NodesVisited)
	}
}

// --- Concurrent mixed-algorithm runs over one dataset and one shared ---
// --- partition store: exactly the pattern the HTTP server creates.   ---

func TestConcurrentRunMixedAlgorithmsSharedStore(t *testing.T) {
	ds := fastod.SyntheticFlight(250, 6, 2017)
	ds.EnablePartitionCache(0)
	ctx := context.Background()

	// Sequential ground truth per algorithm, on a twin dataset so the shared
	// store under test starts cold.
	truth := fastod.SyntheticFlight(250, 6, 2017)
	requests := map[string]fastod.Request{
		"fastod": {Algorithm: fastod.AlgorithmFASTOD},
		"tane":   {Algorithm: fastod.AlgorithmTANE},
		"approx": {Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 0.05}},
		"bidir":  {Algorithm: fastod.AlgorithmBidirectional},
		"conditional": {Algorithm: fastod.AlgorithmConditional,
			Conditional: fastod.ConditionalRunOptions{MaxConditionCardinality: 8}},
	}
	type expectation struct {
		count int
		nodes int
	}
	want := make(map[string]expectation)
	for name, req := range requests {
		rep, err := truth.Run(ctx, req)
		if err != nil {
			t.Fatalf("baseline %s: %v", name, err)
		}
		want[name] = expectation{count: payloadCount(rep), nodes: rep.Stats.NodesVisited}
	}

	// Hammer the cached dataset with every algorithm at once, several times
	// over, as a server handling mixed traffic would. Run with -race in CI.
	// Spawn in sorted-name order so the schedule (and any failure output) is
	// reproducible rather than following map iteration order.
	names := make([]string, 0, len(requests))
	for name := range requests {
		names = append(names, name)
	}
	sort.Strings(names)
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(requests)*rounds)
	for _, name := range names {
		req := requests[name]
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(name string, req fastod.Request) {
				defer wg.Done()
				rep, err := ds.Run(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if rep.Interrupted {
					errs <- errors.New(name + ": unbudgeted run interrupted")
					return
				}
				if got := payloadCount(rep); got != want[name].count {
					errs <- errors.New(name + ": concurrent result diverged from sequential baseline")
				}
				if rep.Stats.NodesVisited != want[name].nodes {
					errs <- errors.New(name + ": node count diverged from sequential baseline")
				}
			}(name, req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared store must have served repeats from cache.
	stats := ds.EnablePartitionCache(0).Stats()
	if stats.Hits == 0 {
		t.Errorf("shared store saw no hits across %d mixed runs: %+v", len(requests)*rounds, stats)
	}
}

// payloadCount extracts the dependency count of whichever payload is set.
func payloadCount(rep *fastod.Report) int {
	switch {
	case rep.FASTOD != nil:
		return len(rep.FASTOD.ODs)
	case rep.TANE != nil:
		return len(rep.TANE.FDs)
	case rep.Approx != nil:
		return len(rep.Approx.ODs)
	case rep.Bidir != nil:
		return len(rep.Bidir.ODs)
	case rep.Conditional != nil:
		return len(rep.Conditional.ODs)
	case rep.ORDER != nil:
		return len(rep.ORDER.ODs)
	}
	return -1
}
