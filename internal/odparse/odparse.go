// Package odparse parses and formats textual order-dependency expressions, so
// that dependencies can be exchanged with users and tools (the cmd/odcheck
// command reads them from files). Two surface syntaxes are supported, both
// using attribute names:
//
//	list-based ODs and order compatibility:
//	    [A,B] -> [C,D]        the OD "A,B orders C,D"
//	    [A] ~ [B]             order compatibility
//
//	set-based canonical ODs (the paper's notation):
//	    {A,B}: [] -> C        constancy OD, C constant per equivalence class
//	    {A}: B ~ C            order-compatibility OD within context {A}
//	    {}: [] -> C           empty context
//
// Every attribute occurrence may carry ordering modifiers, in SQL ORDER BY
// style (keywords case-insensitive, each modifier optional, any order):
//
//	[A DESC, B] -> [C NULLS LAST]
//	{A}: B desc nulls last ~ C collate ci
//
// The modifiers are ASC|DESC, NULLS FIRST|LAST and COLLATE
// <lexicographic|lex|numeric|date|case-insensitive|ci>; they accumulate into
// Statement.Orders (one entry per attribute that carries an explicit
// modifier — an attribute's order applies to every occurrence in the
// statement, so conflicting modifiers on one attribute are an error). The
// rank-list collation has no textual form. Whitespace is insignificant
// around delimiters; attribute names may contain any characters except the
// delimiters ,]}~>: and whitespace, and are matched against the relation's
// columns during resolution.
package odparse

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/listod"
	"repro/internal/relation"
)

// StatementKind identifies the parsed form.
type StatementKind int

// Statement kinds.
const (
	// ListOD is "[X] -> [Y]".
	ListOD StatementKind = iota
	// ListOrderCompat is "[X] ~ [Y]".
	ListOrderCompat
	// CanonicalConstancy is "{X}: [] -> A".
	CanonicalConstancy
	// CanonicalOrderCompat is "{X}: A ~ B".
	CanonicalOrderCompat
)

// String names the statement kind.
func (k StatementKind) String() string {
	switch k {
	case ListOD:
		return "list OD"
	case ListOrderCompat:
		return "list order compatibility"
	case CanonicalConstancy:
		return "canonical constancy OD"
	case CanonicalOrderCompat:
		return "canonical order-compatibility OD"
	default:
		return fmt.Sprintf("StatementKind(%d)", int(k))
	}
}

// NamedOrder pairs an attribute name with the explicit column order its
// modifiers selected.
type NamedOrder struct {
	Name  string
	Order relation.ColumnOrder
}

// Statement is a parsed dependency expression over attribute names.
type Statement struct {
	Kind StatementKind
	// Left and Right are the attribute-name lists of list-based statements.
	Left, Right []string
	// Context is the context of canonical statements.
	Context []string
	// A and B are the right-hand attributes of canonical statements (B is
	// empty for constancy ODs).
	A, B string
	// Orders holds one entry per attribute that carried explicit ordering
	// modifiers anywhere in the statement (ASC/DESC, NULLS FIRST/LAST,
	// COLLATE ...). Attributes without modifiers are absent: they keep
	// whatever order the evaluation context supplies.
	Orders []NamedOrder
	// Source is the original text, for error reporting by callers.
	Source string
}

// Parse parses one dependency expression.
func Parse(input string) (Statement, error) {
	s := strings.TrimSpace(input)
	if s == "" {
		return Statement{}, fmt.Errorf("odparse: empty expression")
	}
	if strings.HasPrefix(s, "{") {
		return parseCanonical(s)
	}
	if strings.HasPrefix(s, "[") {
		return parseList(s)
	}
	return Statement{}, fmt.Errorf("odparse: %q: expected '{' (canonical OD) or '[' (list OD)", s)
}

// ParseAll parses a newline-separated list of expressions, skipping blank
// lines and lines starting with '#'.
func ParseAll(input string) ([]Statement, error) {
	var out []Statement
	for lineNo, line := range strings.Split(input, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		st, err := Parse(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, st)
	}
	return out, nil
}

func parseCanonical(s string) (Statement, error) {
	end := strings.Index(s, "}")
	if end < 0 {
		return Statement{}, fmt.Errorf("odparse: %q: missing '}'", s)
	}
	ctx, orders, err := splitNames(s[1:end], true, nil)
	if err != nil {
		return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
	}
	rest := strings.TrimSpace(s[end+1:])
	if !strings.HasPrefix(rest, ":") {
		return Statement{}, fmt.Errorf("odparse: %q: expected ':' after context", s)
	}
	rest = strings.TrimSpace(rest[1:])

	if strings.HasPrefix(rest, "[") {
		// "{X}: [] -> A"
		closing := strings.Index(rest, "]")
		if closing < 0 || strings.TrimSpace(rest[1:closing]) != "" {
			return Statement{}, fmt.Errorf("odparse: %q: constancy ODs require an empty '[]' left side", s)
		}
		rest = strings.TrimSpace(rest[closing+1:])
		if !strings.HasPrefix(rest, "->") {
			return Statement{}, fmt.Errorf("odparse: %q: expected '->' in constancy OD", s)
		}
		attr, ord, explicit, err := parseAttr(rest[2:])
		if err != nil {
			return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
		}
		orders, err = addOrder(orders, attr, ord, explicit)
		if err != nil {
			return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
		}
		return Statement{Kind: CanonicalConstancy, Context: ctx, A: attr, Orders: orders, Source: s}, nil
	}

	// "{X}: A ~ B"
	parts := strings.Split(rest, "~")
	if len(parts) != 2 {
		return Statement{}, fmt.Errorf("odparse: %q: expected 'A ~ B' or '[] -> A' after the context", s)
	}
	a, aOrd, aExp, err := parseAttr(parts[0])
	if err != nil {
		return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
	}
	b, bOrd, bExp, err := parseAttr(parts[1])
	if err != nil {
		return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
	}
	if orders, err = addOrder(orders, a, aOrd, aExp); err != nil {
		return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
	}
	if orders, err = addOrder(orders, b, bOrd, bExp); err != nil {
		return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
	}
	return Statement{Kind: CanonicalOrderCompat, Context: ctx, A: a, B: b, Orders: orders, Source: s}, nil
}

func parseList(s string) (Statement, error) {
	left, orders, rest, err := parseBracketList(s, nil)
	if err != nil {
		return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
	}
	rest = strings.TrimSpace(rest)
	var kind StatementKind
	switch {
	case strings.HasPrefix(rest, "->"):
		kind = ListOD
		rest = rest[2:]
	case strings.HasPrefix(rest, "~"):
		kind = ListOrderCompat
		rest = rest[1:]
	default:
		return Statement{}, fmt.Errorf("odparse: %q: expected '->' or '~' between the sides", s)
	}
	rest = strings.TrimSpace(rest)
	right, orders, tail, err := parseBracketList(rest, orders)
	if err != nil {
		return Statement{}, fmt.Errorf("odparse: %q: %w", s, err)
	}
	if strings.TrimSpace(tail) != "" {
		return Statement{}, fmt.Errorf("odparse: %q: unexpected trailing text %q", s, tail)
	}
	if len(left) == 0 && len(right) == 0 {
		return Statement{}, fmt.Errorf("odparse: %q: both sides are empty", s)
	}
	return Statement{Kind: kind, Left: left, Right: right, Orders: orders, Source: s}, nil
}

// parseBracketList parses a leading "[a desc, b, ...]" and returns the names,
// the accumulated explicit orders, and the remaining text.
func parseBracketList(s string, orders []NamedOrder) ([]string, []NamedOrder, string, error) {
	if !strings.HasPrefix(s, "[") {
		return nil, nil, "", fmt.Errorf("expected '['")
	}
	end := strings.Index(s, "]")
	if end < 0 {
		return nil, nil, "", fmt.Errorf("missing ']'")
	}
	names, orders, err := splitNames(s[1:end], true, orders)
	if err != nil {
		return nil, nil, "", err
	}
	return names, orders, s[end+1:], nil
}

// splitNames parses a comma-separated attribute list, each entry optionally
// carrying ordering modifiers, accumulating explicit orders into orders.
func splitNames(s string, allowEmpty bool, orders []NamedOrder) ([]string, []NamedOrder, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		if allowEmpty {
			return nil, orders, nil
		}
		return nil, nil, fmt.Errorf("empty attribute list")
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		name, ord, explicit, err := parseAttr(p)
		if err != nil {
			return nil, nil, err
		}
		if orders, err = addOrder(orders, name, ord, explicit); err != nil {
			return nil, nil, err
		}
		out = append(out, name)
	}
	return out, orders, nil
}

// parseAttr parses one attribute occurrence: a name followed by optional
// ordering modifiers (ASC|DESC, NULLS FIRST|LAST, COLLATE <name>), keywords
// case-insensitive, each category at most once. explicit reports whether any
// modifier was present.
func parseAttr(s string) (name string, ord relation.ColumnOrder, explicit bool, err error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return "", ord, false, fmt.Errorf("empty attribute name")
	}
	name = fields[0]
	if err := validName(name); err != nil {
		return "", ord, false, err
	}
	var haveDir, haveNulls, haveColl bool
	for i := 1; i < len(fields); {
		f := fields[i]
		switch {
		case strings.EqualFold(f, "asc") || strings.EqualFold(f, "desc"):
			if haveDir {
				return "", ord, false, fmt.Errorf("attribute %q has more than one direction modifier", name)
			}
			haveDir = true
			ord.Direction, _ = relation.ParseDirection(f)
			i++
		case strings.EqualFold(f, "nulls"):
			if haveNulls {
				return "", ord, false, fmt.Errorf("attribute %q has more than one NULLS modifier", name)
			}
			if i+1 >= len(fields) {
				return "", ord, false, fmt.Errorf("attribute %q: NULLS requires FIRST or LAST", name)
			}
			n, perr := relation.ParseNullOrder(fields[i+1])
			if perr != nil {
				return "", ord, false, fmt.Errorf("attribute %q: %v", name, perr)
			}
			haveNulls = true
			ord.Nulls = n
			i += 2
		case strings.EqualFold(f, "collate"):
			if haveColl {
				return "", ord, false, fmt.Errorf("attribute %q has more than one COLLATE modifier", name)
			}
			if i+1 >= len(fields) {
				return "", ord, false, fmt.Errorf("attribute %q: COLLATE requires a collation name", name)
			}
			c, perr := relation.ParseCollation(fields[i+1])
			if perr != nil {
				return "", ord, false, fmt.Errorf("attribute %q: %v", name, perr)
			}
			if c == relation.CollateRank {
				return "", ord, false, fmt.Errorf("attribute %q: the rank collation has no textual form (supply the rank list programmatically)", name)
			}
			haveColl = true
			ord.Collation = c
			i += 2
		default:
			return "", ord, false, fmt.Errorf("unknown order modifier %q after attribute %q", f, name)
		}
	}
	return name, ord, haveDir || haveNulls || haveColl, nil
}

// addOrder records an attribute's explicit order, erroring when the same
// attribute already carries a DIFFERENT explicit order in this statement (an
// attribute's order applies to all its occurrences). Non-explicit
// occurrences record nothing and conflict with nothing.
func addOrder(orders []NamedOrder, name string, ord relation.ColumnOrder, explicit bool) ([]NamedOrder, error) {
	if !explicit {
		return orders, nil
	}
	for _, o := range orders {
		if o.Name != name {
			continue
		}
		if o.Order.Direction != ord.Direction || o.Order.Nulls != ord.Nulls || o.Order.Collation != ord.Collation {
			return nil, fmt.Errorf("attribute %q has conflicting order modifiers", name)
		}
		return orders, nil
	}
	return append(orders, NamedOrder{Name: name, Order: ord}), nil
}

// ParseOrderSpec parses a standalone comma-separated order spec — the value
// of a CLI -order-spec flag, e.g. "salary desc nulls last, name collate ci".
// Unlike OD expressions it returns EVERY listed attribute, modifiers or not
// (a bare name selects the default order).
func ParseOrderSpec(input string) ([]NamedOrder, error) {
	s := strings.TrimSpace(input)
	if s == "" {
		return nil, nil
	}
	var out []NamedOrder
	for _, p := range strings.Split(s, ",") {
		name, ord, _, err := parseAttr(p)
		if err != nil {
			return nil, fmt.Errorf("odparse: order spec %q: %w", input, err)
		}
		out = append(out, NamedOrder{Name: name, Order: ord})
	}
	return out, nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty attribute name")
	}
	if strings.ContainsAny(name, "{}[],~>:") {
		return fmt.Errorf("attribute name %q contains a reserved character", name)
	}
	return nil
}

// Resolver maps attribute names to column indexes.
type Resolver func(name string) int

// ResolvedStatement is a statement with attribute names resolved to indexes.
type ResolvedStatement struct {
	Statement Statement
	// For list statements.
	Left, Right listod.Spec
	// For canonical statements.
	Canonical canonical.OD
}

// Resolve maps the statement's attribute names through the resolver (such as
// Dataset.ColumnIndex); unknown names are an error.
func Resolve(st Statement, resolve Resolver) (ResolvedStatement, error) {
	lookup := func(name string) (int, error) {
		idx := resolve(name)
		if idx < 0 {
			return 0, fmt.Errorf("odparse: unknown attribute %q in %q", name, st.Source)
		}
		return idx, nil
	}
	out := ResolvedStatement{Statement: st}
	switch st.Kind {
	case ListOD, ListOrderCompat:
		for _, n := range st.Left {
			idx, err := lookup(n)
			if err != nil {
				return ResolvedStatement{}, err
			}
			out.Left = append(out.Left, idx)
		}
		for _, n := range st.Right {
			idx, err := lookup(n)
			if err != nil {
				return ResolvedStatement{}, err
			}
			out.Right = append(out.Right, idx)
		}
		return out, nil
	case CanonicalConstancy, CanonicalOrderCompat:
		var ctx bitset.AttrSet
		for _, n := range st.Context {
			idx, err := lookup(n)
			if err != nil {
				return ResolvedStatement{}, err
			}
			ctx = ctx.Add(idx)
		}
		a, err := lookup(st.A)
		if err != nil {
			return ResolvedStatement{}, err
		}
		if st.Kind == CanonicalConstancy {
			out.Canonical = canonical.NewConstancy(ctx, a)
			return out, nil
		}
		b, err := lookup(st.B)
		if err != nil {
			return ResolvedStatement{}, err
		}
		if a == b {
			out.Canonical = canonical.OD{Context: ctx, Kind: canonical.OrderCompatible, A: a, B: b}
			return out, nil
		}
		out.Canonical = canonical.NewOrderCompatible(ctx, a, b)
		return out, nil
	default:
		return ResolvedStatement{}, fmt.Errorf("odparse: unknown statement kind %v", st.Kind)
	}
}

// FormatCanonical renders a canonical OD in the parseable syntax using the
// given attribute names; Parse(FormatCanonical(od)) round-trips.
func FormatCanonical(od canonical.OD, names []string) string {
	name := func(a int) string {
		if a >= 0 && a < len(names) {
			return names[a]
		}
		return fmt.Sprintf("col%d", a)
	}
	ctxNames := make([]string, 0, od.Context.Len())
	od.Context.ForEach(func(a int) { ctxNames = append(ctxNames, name(a)) })
	ctx := "{" + strings.Join(ctxNames, ",") + "}"
	if od.Kind == canonical.Constancy {
		return fmt.Sprintf("%s: [] -> %s", ctx, name(od.A))
	}
	return fmt.Sprintf("%s: %s ~ %s", ctx, name(od.A), name(od.B))
}

// FormatList renders a list OD in the parseable syntax.
func FormatList(od listod.OD, names []string) string {
	render := func(spec listod.Spec) string {
		parts := make([]string, len(spec))
		for i, a := range spec {
			if a >= 0 && a < len(names) {
				parts[i] = names[a]
			} else {
				parts[i] = fmt.Sprintf("col%d", a)
			}
		}
		return "[" + strings.Join(parts, ",") + "]"
	}
	return render(od.Left) + " -> " + render(od.Right)
}
