package odparse

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestParseAttrModifiers(t *testing.T) {
	st, err := Parse("[salary DESC NULLS LAST, name collate ci] -> [grade desc]")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(st.Left) != 2 || st.Left[0] != "salary" || st.Left[1] != "name" {
		t.Fatalf("Left = %v", st.Left)
	}
	if len(st.Right) != 1 || st.Right[0] != "grade" {
		t.Fatalf("Right = %v", st.Right)
	}
	if len(st.Orders) != 3 {
		t.Fatalf("Orders = %+v, want 3 entries", st.Orders)
	}
	want := map[string]relation.ColumnOrder{
		"salary": {Direction: relation.Desc, Nulls: relation.NullsLast},
		"name":   {Collation: relation.CollateCaseInsensitive},
		"grade":  {Direction: relation.Desc},
	}
	for _, o := range st.Orders {
		w, ok := want[o.Name]
		if !ok || o.Order.Direction != w.Direction || o.Order.Nulls != w.Nulls || o.Order.Collation != w.Collation {
			t.Fatalf("order for %q = %+v, want %+v", o.Name, o.Order, w)
		}
	}
}

func TestParseCanonicalModifiers(t *testing.T) {
	st, err := Parse("{year desc}: dep_time nulls last ~ arr_time COLLATE numeric")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Kind != CanonicalOrderCompat || st.A != "dep_time" || st.B != "arr_time" {
		t.Fatalf("statement = %+v", st)
	}
	if len(st.Context) != 1 || st.Context[0] != "year" {
		t.Fatalf("Context = %v", st.Context)
	}
	if len(st.Orders) != 3 {
		t.Fatalf("Orders = %+v", st.Orders)
	}
	st2, err := Parse("{}: [] -> price desc nulls last")
	if err != nil {
		t.Fatalf("Parse constancy: %v", err)
	}
	if st2.A != "price" || len(st2.Orders) != 1 || st2.Orders[0].Order.Direction != relation.Desc {
		t.Fatalf("constancy statement = %+v", st2)
	}
}

func TestParseModifierErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"[a desc asc] -> [b]", "more than one direction"},
		{"[a nulls] -> [b]", "NULLS requires FIRST or LAST"},
		{"[a nulls sideways] -> [b]", "unknown null placement"},
		{"[a collate] -> [b]", "COLLATE requires a collation name"},
		{"[a collate emoji] -> [b]", "unknown collation"},
		{"[a collate rank] -> [b]", "no textual form"},
		{"[a frobnicate] -> [b]", "unknown order modifier"},
		{"[a desc, a asc] -> [b]", "conflicting order modifiers"},
		{"[a b] -> [c]", "unknown order modifier"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Parse(%q) error = %v, want substring %q", tc.in, err, tc.want)
		}
	}
}

func TestParseModifierAgreementAcrossOccurrences(t *testing.T) {
	// The same attribute may repeat modifiers as long as they agree, and may
	// appear bare alongside an explicit occurrence (bare records nothing).
	st, err := Parse("[a desc] -> [a desc, b]")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(st.Orders) != 1 || st.Orders[0].Name != "a" {
		t.Fatalf("Orders = %+v", st.Orders)
	}
	st, err = Parse("[a desc] -> [a, b]")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(st.Orders) != 1 {
		t.Fatalf("Orders = %+v", st.Orders)
	}
}

func TestParseOrderSpec(t *testing.T) {
	specs, err := ParseOrderSpec(" salary desc nulls last , name collate ci, plain ")
	if err != nil {
		t.Fatalf("ParseOrderSpec: %v", err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].Name != "salary" || specs[0].Order.Direction != relation.Desc || specs[0].Order.Nulls != relation.NullsLast {
		t.Fatalf("specs[0] = %+v", specs[0])
	}
	if specs[2].Name != "plain" || !specs[2].Order.IsDefault() {
		t.Fatalf("bare name must yield the default order: %+v", specs[2])
	}
	if got, err := ParseOrderSpec("  "); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v", got, err)
	}
	if _, err := ParseOrderSpec("a desc desc"); err == nil {
		t.Fatal("want error for duplicate modifier")
	}
}
