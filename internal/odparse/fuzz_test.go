package odparse

import (
	"strings"
	"testing"
)

// FuzzParse drives the dependency-expression parser with arbitrary input —
// odcheck reads these expressions from user files, so the parser shares the
// CSV decoder's obligation: reject with an error, never panic. An accepted
// statement must additionally be internally consistent (kind matches the
// populated fields, names are non-empty and delimiter-free) and re-parse to
// the same statement from its own Source.
func FuzzParse(f *testing.F) {
	f.Add("[A,B] -> [C,D]")
	f.Add("[A] ~ [B]")
	f.Add("{A,B}: [] -> C")
	f.Add("{A}: B ~ C")
	f.Add("{}: [] -> C")
	f.Add("{}: [] ->")                // truncated
	f.Add("[A,B] -> [C")              // unclosed bracket
	f.Add("{A: B ~ C")                // unclosed brace
	f.Add("[] -> []")                 // empty sides
	f.Add("{A}}: B ~ C")              // doubled delimiter
	f.Add("[A,,B] -> [C]")            // empty name
	f.Add("{\x00}: \xff ~ \xfe")      // non-printable and invalid UTF-8
	f.Add(strings.Repeat("[", 1<<10)) // deep nesting attempt
	f.Add("# comment\n[A] -> [B]\n\n{C}: D ~ E")

	f.Fuzz(func(t *testing.T, input string) {
		sts, err := ParseAll(input)
		if err != nil {
			return
		}
		for _, st := range sts {
			checkStatement(t, st, input)
			// Source must hold the exact text that produced the statement.
			again, err := Parse(st.Source)
			if err != nil {
				t.Fatalf("accepted statement does not re-parse from its Source %q: %v\ninput: %q", st.Source, err, input)
			}
			if again.Kind != st.Kind || again.A != st.A || again.B != st.B ||
				len(again.Left) != len(st.Left) || len(again.Right) != len(st.Right) ||
				len(again.Context) != len(st.Context) || len(again.Orders) != len(st.Orders) {
				t.Fatalf("re-parse of %q diverged: %+v vs %+v", st.Source, again, st)
			}
		}
	})
}

func checkStatement(t *testing.T, st Statement, input string) {
	t.Helper()
	names := make([]string, 0, len(st.Left)+len(st.Right)+len(st.Context)+2)
	switch st.Kind {
	case ListOD, ListOrderCompat:
		// One empty side is legal ("[] -> [C]" says C is constant); only
		// both-empty statements are rejected.
		if len(st.Left) == 0 && len(st.Right) == 0 {
			t.Fatalf("accepted list statement with both sides empty: %+v\ninput: %q", st, input)
		}
		if st.A != "" || st.B != "" || st.Context != nil {
			t.Fatalf("list statement carries canonical fields: %+v\ninput: %q", st, input)
		}
		names = append(append(names, st.Left...), st.Right...)
	case CanonicalConstancy, CanonicalOrderCompat:
		if st.A == "" {
			t.Fatalf("accepted canonical statement without A: %+v\ninput: %q", st, input)
		}
		if (st.Kind == CanonicalOrderCompat) != (st.B != "") {
			t.Fatalf("canonical statement kind/B mismatch: %+v\ninput: %q", st, input)
		}
		if st.Left != nil || st.Right != nil {
			t.Fatalf("canonical statement carries list fields: %+v\ninput: %q", st, input)
		}
		names = append(append(names, st.Context...), st.A)
		if st.B != "" {
			names = append(names, st.B)
		}
	default:
		t.Fatalf("accepted statement with unknown kind %v\ninput: %q", st.Kind, input)
	}
	for _, name := range names {
		if name == "" {
			t.Fatalf("accepted empty attribute name: %+v\ninput: %q", st, input)
		}
		if strings.ContainsAny(name, "{}[],~>:") {
			t.Fatalf("accepted name %q containing a reserved character: %+v\ninput: %q", name, st, input)
		}
		if len(strings.Fields(name)) != 1 {
			t.Fatalf("accepted name %q containing whitespace: %+v\ninput: %q", name, st, input)
		}
	}
	// Orders entries must name attributes of the statement, be unique, carry
	// valid textual-form orders (never a rank list), and not all be defaults.
	known := make(map[string]bool, len(names))
	for _, n := range names {
		known[n] = true
	}
	seen := make(map[string]bool, len(st.Orders))
	for _, o := range st.Orders {
		if !known[o.Name] {
			t.Fatalf("Orders entry %q names no attribute of the statement: %+v\ninput: %q", o.Name, st, input)
		}
		if seen[o.Name] {
			t.Fatalf("Orders lists attribute %q twice: %+v\ninput: %q", o.Name, st, input)
		}
		seen[o.Name] = true
		if err := o.Order.Validate(); err != nil {
			t.Fatalf("Orders entry %q invalid: %v\ninput: %q", o.Name, err, input)
		}
		if len(o.Order.Ranks) != 0 {
			t.Fatalf("Orders entry %q carries a rank list, which has no textual form\ninput: %q", o.Name, input)
		}
	}
}
