package odparse

import (
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/listod"
)

func TestParseListOD(t *testing.T) {
	st, err := Parse(" [ sal , yr ] ->  [tax, perc] ")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Kind != ListOD || !reflect.DeepEqual(st.Left, []string{"sal", "yr"}) ||
		!reflect.DeepEqual(st.Right, []string{"tax", "perc"}) {
		t.Errorf("Parse = %+v", st)
	}
}

func TestParseListOrderCompat(t *testing.T) {
	st, err := Parse("[d_month] ~ [d_week]")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Kind != ListOrderCompat || st.Left[0] != "d_month" || st.Right[0] != "d_week" {
		t.Errorf("Parse = %+v", st)
	}
}

func TestParseCanonicalConstancy(t *testing.T) {
	st, err := Parse("{yr, posit}: [] -> bin")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Kind != CanonicalConstancy || st.A != "bin" || !reflect.DeepEqual(st.Context, []string{"yr", "posit"}) {
		t.Errorf("Parse = %+v", st)
	}
	// Empty context.
	st, err = Parse("{}: [] -> year")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(st.Context) != 0 || st.A != "year" {
		t.Errorf("Parse = %+v", st)
	}
}

func TestParseCanonicalOrderCompat(t *testing.T) {
	st, err := Parse("{yr}: bin ~ sal")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Kind != CanonicalOrderCompat || st.A != "bin" || st.B != "sal" || st.Context[0] != "yr" {
		t.Errorf("Parse = %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"sal -> tax",          // missing brackets
		"[sal -> [tax]",       // missing ]
		"[sal] [tax]",         // missing operator
		"[sal] -> [tax] junk", // trailing text
		"[] -> []",            // both sides empty
		"{sal: [] -> tax",     // missing }
		"{sal} [] -> tax",     // missing :
		"{sal}: [x] -> tax",   // non-empty [] in constancy
		"{sal}: [ -> tax",     // missing ]
		"{sal}: [] => tax",    // wrong arrow
		"{sal}: tax",          // no operator
		"{sal}: a ~ b ~ c",    // too many ~
		"{sal}: ~ b",          // empty name
		"[a,,b] -> [c]",       // empty name in list
		"{a}: [] -> b:c",      // reserved character
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseAll(t *testing.T) {
	input := `
# business rules
[sal] -> [tax]

{yr}: bin ~ sal
`
	sts, err := ParseAll(input)
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(sts) != 2 || sts[0].Kind != ListOD || sts[1].Kind != CanonicalOrderCompat {
		t.Errorf("ParseAll = %+v", sts)
	}
	if _, err := ParseAll("[a] -> [b]\ngarbage\n"); err == nil {
		t.Error("ParseAll should report the failing line")
	}
}

func TestStatementKindString(t *testing.T) {
	kinds := map[StatementKind]string{
		ListOD:               "list OD",
		ListOrderCompat:      "list order compatibility",
		CanonicalConstancy:   "canonical constancy OD",
		CanonicalOrderCompat: "canonical order-compatibility OD",
		StatementKind(9):     "StatementKind(9)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("String() = %q, want %q", k.String(), want)
		}
	}
}

func TestResolve(t *testing.T) {
	cols := []string{"yr", "posit", "bin", "sal", "tax"}
	resolver := func(name string) int {
		for i, c := range cols {
			if c == name {
				return i
			}
		}
		return -1
	}

	st, _ := Parse("[sal] -> [tax]")
	r, err := Resolve(st, resolver)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if !r.Left.Equal(listod.Spec{3}) || !r.Right.Equal(listod.Spec{4}) {
		t.Errorf("Resolve list = %+v", r)
	}

	st, _ = Parse("{yr}: bin ~ sal")
	r, err = Resolve(st, resolver)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	want := canonical.NewOrderCompatible(bitset.NewAttrSet(0), 2, 3)
	if !r.Canonical.Equal(want) {
		t.Errorf("Resolve canonical = %v, want %v", r.Canonical, want)
	}

	st, _ = Parse("{yr,posit}: [] -> bin")
	r, err = Resolve(st, resolver)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if !r.Canonical.Equal(canonical.NewConstancy(bitset.NewAttrSet(0, 1), 2)) {
		t.Errorf("Resolve constancy = %v", r.Canonical)
	}

	// Degenerate identity pair resolves to a trivial OD rather than panicking.
	st, _ = Parse("{yr}: sal ~ sal")
	r, err = Resolve(st, resolver)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if !r.Canonical.IsTrivial() {
		t.Error("identity pair should resolve to a trivial OD")
	}

	// Unknown attribute names fail in every position.
	for _, expr := range []string{"[bogus] -> [sal]", "[sal] -> [bogus]", "{bogus}: [] -> sal", "{yr}: [] -> bogus", "{yr}: sal ~ bogus"} {
		st, _ := Parse(expr)
		if _, err := Resolve(st, resolver); err == nil {
			t.Errorf("Resolve(%q) should fail", expr)
		}
	}

	if _, err := Resolve(Statement{Kind: StatementKind(9)}, resolver); err == nil {
		t.Error("unknown statement kind should fail")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	names := []string{"yr", "posit", "bin", "sal"}
	resolver := func(name string) int {
		for i, c := range names {
			if c == name {
				return i
			}
		}
		return -1
	}

	canons := []canonical.OD{
		canonical.NewConstancy(bitset.NewAttrSet(0, 1), 2),
		canonical.NewConstancy(bitset.AttrSet(0), 3),
		canonical.NewOrderCompatible(bitset.NewAttrSet(0), 2, 3),
	}
	for _, od := range canons {
		text := FormatCanonical(od, names)
		st, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		r, err := Resolve(st, resolver)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", text, err)
		}
		if !r.Canonical.Equal(od) {
			t.Errorf("round trip of %v through %q gave %v", od, text, r.Canonical)
		}
	}
	// Out-of-range attribute falls back to a positional name.
	if got := FormatCanonical(canonical.NewConstancy(bitset.AttrSet(0), 9), names); got != "{}: [] -> col9" {
		t.Errorf("FormatCanonical fallback = %q", got)
	}

	lists := []listod.OD{
		{Left: listod.Spec{3}, Right: listod.Spec{0, 2}},
		{Left: listod.Spec{0, 3}, Right: listod.Spec{1}},
	}
	for _, od := range lists {
		text := FormatList(od, names)
		st, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		r, err := Resolve(st, resolver)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", text, err)
		}
		if !r.Left.Equal(od.Left) || !r.Right.Equal(od.Right) {
			t.Errorf("round trip of %v through %q gave %v -> %v", od, text, r.Left, r.Right)
		}
	}
	if got := FormatList(listod.OD{Left: listod.Spec{9}, Right: listod.Spec{0}}, names); got != "[col9] -> [yr]" {
		t.Errorf("FormatList fallback = %q", got)
	}
}
