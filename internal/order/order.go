// Package order is a clean-room implementation of ORDER, the list-based order
// dependency discovery algorithm of Langer and Naumann (VLDB Journal 2016)
// that the paper uses as its baseline. ORDER traverses a lattice of attribute
// *lists* (permutations), so its node count grows factorially with the number
// of attributes, and it applies aggressive swap/split pruning rules that make
// it incomplete: it misses constant columns, ODs that repeat attributes
// across the two sides (the pure FD fragment X ↦ XY), and order-compatibility
// facts that do not come packaged with a full OD (Section 4.5 of the paper).
//
// The implementation follows the behaviour documented in the paper's
// Sections 4.5 and 5.3; where the original publication leaves internals
// unspecified, the simplest rule consistent with the described behaviour is
// used. DESIGN.md records this as a substitution.
package order

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/lattice"
	"repro/internal/listod"
	"repro/internal/relation"
)

// Options configures an ORDER run. Because the algorithm is factorial in the
// number of attributes, a budget (node count and wall-clock timeout) is
// supported; a run that exceeds it is reported as interrupted, mirroring the
// "* 5h" annotations in the paper's figures. ORDER pioneered the budget in
// this repository; the type is now the shared lattice.Budget every algorithm
// honors.
type Options struct {
	// Budget bounds the run's wall-clock time and visited list-lattice nodes
	// (0 values = none). ORDER's budget has per-node granularity: the check
	// runs before every node evaluation.
	Budget lattice.Budget
	// MaxLevel, when positive, bounds the length of the attribute lists
	// explored — the list-lattice analogue of the set-lattice MaxLevel.
	// Stopping at MaxLevel is a normal completion, not an interrupt.
	MaxLevel int
	// Progress, when non-nil, receives one event per completed list-lattice
	// level (the Level field is the list length).
	Progress func(lattice.ProgressEvent)
}

// Result is the outcome of an ORDER run.
type Result struct {
	// ODs is the list-based output, in discovery order, deduplicated.
	ODs []listod.OD
	// Canonical is the set-based image of ODs under the Theorem-5 mapping,
	// deduplicated, which is how the paper compares the two algorithms'
	// output sizes.
	Canonical []canonical.OD
	// Counts tallies Canonical by kind.
	Counts canonical.Count
	// NodesVisited counts list-lattice nodes processed.
	NodesVisited int
	// MaxLevelReached is the longest attribute-list length processed.
	MaxLevelReached int
	// Interrupted reports whether the run was stopped by its context or
	// Options.Budget before exhausting the search space; ODs then holds
	// everything found up to the interrupt.
	Interrupted bool
	// TimedOut is the historical name of Interrupted, kept for callers of the
	// pre-budget API; the two fields are always equal.
	//
	// Deprecated: use Interrupted.
	TimedOut bool
	Elapsed  time.Duration
}

// node is one element of the list-containment lattice: a permutation of a
// subset of the attributes.
type node struct {
	list listod.Spec
	// swapDead marks that every candidate OD of this node was invalidated by
	// a swap; descendants are then skipped (ORDER's swap pruning rule).
	swapDead bool
	// allValid marks that every candidate OD of this node was valid;
	// descendants would only produce redundant ODs and are skipped.
	allValid bool
}

// Discover runs ORDER with a background context; see DiscoverContext.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	//lint:allow ctxfirst convenience wrapper kept for callers that cannot cancel; DiscoverContext is the cancellable entry point
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext runs ORDER over an encoded relation instance. The context
// and Options.Budget are checked before every node evaluation; an interrupted
// run returns the list ODs found so far with Interrupted set rather than an
// error.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("order: empty relation")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("order: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &Result{}
	n := enc.NumCols()

	overBudget := func() bool {
		if opts.Budget.MaxNodes > 0 && res.NodesVisited >= opts.Budget.MaxNodes {
			return true
		}
		if opts.Budget.Timeout > 0 && time.Since(start) >= opts.Budget.Timeout {
			return true
		}
		select {
		case <-ctx.Done():
			return true
		default:
		}
		return false
	}

	seen := make(map[string]bool) // deduplication of emitted list ODs

	// Level 2: all ordered pairs [A,B] with A != B.
	var level []node
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				level = append(level, node{list: listod.Spec{a, b}})
			}
		}
	}

	for listLen := 2; len(level) > 0 && !res.Interrupted; listLen++ {
		var next []node
		extend := opts.MaxLevel <= 0 || listLen < opts.MaxLevel
		for i := range level {
			if overBudget() {
				res.Interrupted = true
				break
			}
			nd := &level[i]
			res.NodesVisited++
			res.MaxLevelReached = listLen
			evaluateNode(enc, nd, res, seen)
			if nd.swapDead || nd.allValid || !extend {
				continue
			}
			// Extend with every attribute not yet in the list (this is what
			// makes the search space factorial).
			for d := 0; d < n; d++ {
				if nd.list.Contains(d) {
					continue
				}
				child := make(listod.Spec, len(nd.list), len(nd.list)+1)
				copy(child, nd.list)
				child = append(child, d)
				next = append(next, node{list: child})
			}
		}
		if opts.Progress != nil {
			opts.Progress(lattice.ProgressEvent{
				Level:        listLen,
				Nodes:        len(level),
				NodesVisited: res.NodesVisited,
				Elapsed:      time.Since(start),
			})
		}
		level = next
	}
	res.TimedOut = res.Interrupted

	res.Canonical = mapToCanonical(res.ODs)
	res.Counts = canonical.CountByKind(res.Canonical)
	res.Elapsed = time.Since(start)
	return res, nil
}

// evaluateNode checks every split candidate of the node: the list L of length
// l yields the candidates L[k:] ↦ L[:k] for k = 1..l-1 (e.g. [A,B,C] yields
// [B,C] ↦ [A] and [C] ↦ [A,B]). Valid candidates are emitted; the node's
// pruning flags are derived from the candidates' violation kinds.
func evaluateNode(enc *relation.Encoded, nd *node, res *Result, seen map[string]bool) {
	l := len(nd.list)
	if l < 2 {
		return
	}
	swaps, valids := 0, 0
	candidates := l - 1
	for k := 1; k < l; k++ {
		lhs := append(listod.Spec(nil), nd.list[k:]...)
		rhs := append(listod.Spec(nil), nd.list[:k]...)
		if listod.Trivial(lhs, rhs) {
			valids++
			continue
		}
		_, hasSplit := listod.FindSplit(enc, lhs, rhs)
		_, hasSwap := listod.FindSwap(enc, lhs, rhs)
		switch {
		case !hasSplit && !hasSwap:
			valids++
			od := listod.OD{Left: lhs, Right: rhs}
			key := od.String()
			if !seen[key] {
				seen[key] = true
				res.ODs = append(res.ODs, od)
			}
		case hasSwap:
			swaps++
		}
	}
	// Swap pruning: a swap between the two sides persists under any extension
	// of the node, so a node whose candidates all have swaps is abandoned.
	nd.swapDead = swaps == candidates
	// Redundancy pruning: if every candidate is already a valid OD, deeper
	// nodes can only restate what was found.
	nd.allValid = valids == candidates
}

// mapToCanonical maps the list-based output through Theorem 5 and removes
// duplicates, which is how Figure 4/5 report ORDER's output size in set-based
// terms (e.g. "31 list ODs = 31 FDs + 27 OCDs").
func mapToCanonical(ods []listod.OD) []canonical.OD {
	seen := make(map[canonical.OD]bool)
	var out []canonical.OD
	for _, od := range ods {
		for _, c := range canonical.MapListODNonTrivial(od.Left, od.Right) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	canonical.Sort(out)
	return out
}

// SortODs orders list-based ODs deterministically (by length then lexical
// content) for stable output in tools and tests.
func SortODs(ods []listod.OD) {
	sort.Slice(ods, func(i, j int) bool {
		si, sj := ods[i].String(), ods[j].String()
		if len(si) != len(sj) {
			return len(si) < len(sj)
		}
		return si < sj
	})
}
