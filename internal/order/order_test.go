package order

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/lattice"
	"repro/internal/listod"
	"repro/internal/relation"
)

func encode(t *testing.T, r *relation.Relation) *relation.Encoded {
	t.Helper()
	enc, err := relation.Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return enc
}

func TestDiscoverValidation(t *testing.T) {
	if _, err := Discover(nil, Options{}); err == nil {
		t.Error("nil relation must be rejected")
	}
	if _, err := Discover(&relation.Encoded{}, Options{}); err == nil {
		t.Error("empty relation must be rejected")
	}
}

func TestDiscoverTable1(t *testing.T) {
	enc := encode(t, datagen.Employees())
	res, err := Discover(enc, Options{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if res.TimedOut {
		t.Fatal("Table 1 should not time out")
	}
	if len(res.ODs) == 0 {
		t.Fatal("expected ODs on Table 1")
	}
	// Every reported list OD must hold on the instance (soundness).
	for _, od := range res.ODs {
		if !listod.Holds(enc, od.Left, od.Right) {
			t.Errorf("ORDER reported %v which does not hold", od.Names(enc.ColumnNames))
		}
	}
	// The canonical image must hold too and be consistent with the counts.
	for _, od := range res.Canonical {
		if !canonical.MustHold(enc, od) {
			t.Errorf("canonical image %v does not hold", od)
		}
	}
	if res.Counts.Total != len(res.Canonical) {
		t.Errorf("Counts.Total = %d, len(Canonical) = %d", res.Counts.Total, len(res.Canonical))
	}
	if res.Elapsed <= 0 || res.NodesVisited == 0 {
		t.Error("stats not recorded")
	}
}

// TestORDERSoundRelativeToFASTOD: everything ORDER finds is implied by
// FASTOD's complete minimal output.
func TestORDERSoundRelativeToFASTOD(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(16), 4, 3, rng.Int63())
		enc := encode(t, rel)
		orderRes, err := Discover(enc, Options{Budget: lattice.Budget{MaxNodes: 200000}})
		if err != nil {
			t.Fatal(err)
		}
		fastodRes, err := core.Discover(enc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cover := canonical.NewCover(fastodRes.ODs)
		if missing, ok := cover.ImpliesAll(orderRes.Canonical); !ok {
			t.Fatalf("trial %d: ORDER found %v which FASTOD's cover does not imply", trial, missing)
		}
	}
}

// TestORDERIncompleteConstants: a constant column is discovered by FASTOD as
// {}: [] -> A but ORDER never reports information that implies it
// (Section 5.3's flight-year example).
func TestORDERIncompleteConstants(t *testing.T) {
	rel, err := relation.FromRows("const", []string{"year", "quarter", "day"}, [][]string{
		{"2012", "1", "5"},
		{"2012", "2", "3"},
		{"2012", "3", "9"},
		{"2012", "4", "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := encode(t, rel)

	orderRes, err := Discover(enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fastodRes, err := core.Discover(enc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	constOD := canonical.NewConstancy(bitset.AttrSet(0), 0) // {}: [] -> year

	if !canonical.NewCover(fastodRes.ODs).Implies(constOD) {
		t.Fatal("FASTOD must discover the constant year column")
	}
	if canonical.NewCover(orderRes.Canonical).Implies(constOD) {
		t.Error("ORDER should not imply {}: [] -> year (it discards constants); incompleteness not reproduced")
	}
}

// TestORDERIncompleteOrderCompatibility: month ~ week style ODs (order
// compatible but no FD either way) are missed by ORDER because it only
// reports full ODs X ↦ Y (Example 2 / Section 4.5).
func TestORDERIncompleteOrderCompatibility(t *testing.T) {
	// month = day/30, week = day/7 for a strictly increasing hidden day; the
	// two are order compatible but neither determines the other.
	rows := make([][]string, 0, 60)
	for day := 0; day < 60; day++ {
		rows = append(rows, []string{itoa(day / 30), itoa(day / 7), itoa(day % 5)})
	}
	rel, err := relation.FromRows("calendar", []string{"month", "week", "noise"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	enc := encode(t, rel)

	oc := canonical.NewOrderCompatible(bitset.AttrSet(0), 0, 1) // {}: month ~ week
	if !canonical.MustHold(enc, oc) {
		t.Fatal("test fixture broken: month ~ week should hold")
	}

	fastodRes, err := core.Discover(enc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !canonical.NewCover(fastodRes.ODs).Implies(oc) {
		t.Error("FASTOD must imply {}: month ~ week")
	}

	orderRes, err := Discover(enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if canonical.NewCover(orderRes.Canonical).Implies(oc) {
		t.Error("ORDER should miss {}: month ~ week (no full OD holds between them); incompleteness not reproduced")
	}
}

// TestORDERConciseness: Section 5.3 argues that many ODs ORDER considers
// minimal are redundant under the set-based canonical representation. On a
// date-dimension table ORDER's canonical image must contain ODs that are not
// data-minimal (they do not appear in FASTOD's complete minimal set even
// though FASTOD implies them).
func TestORDERConcisenessVsFASTOD(t *testing.T) {
	enc := encode(t, datagen.DateDim(120))
	orderRes, err := Discover(enc, Options{Budget: lattice.Budget{MaxNodes: 500000}})
	if err != nil {
		t.Fatal(err)
	}
	fastodRes, err := core.Discover(enc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	minimal := make(map[canonical.OD]bool, len(fastodRes.ODs))
	for _, od := range fastodRes.ODs {
		minimal[od] = true
	}
	cover := canonical.NewCover(fastodRes.ODs)
	redundant := 0
	for _, od := range orderRes.Canonical {
		if !cover.Implies(od) {
			t.Fatalf("ORDER reported %v which FASTOD does not imply", od)
		}
		if !minimal[od] {
			redundant++
		}
	}
	if len(orderRes.Canonical) == 0 {
		t.Fatal("ORDER should find some ODs on date_dim")
	}
	if redundant == 0 {
		t.Error("expected ORDER's canonical image to contain data-redundant ODs on date_dim")
	}
}

func TestDiscoverBudgets(t *testing.T) {
	enc := encode(t, datagen.FlightLike(50, 8, 7))
	res, err := Discover(enc, Options{Budget: lattice.Budget{MaxNodes: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("MaxNodes budget should mark the run as timed out")
	}
	res, err = Discover(enc, Options{Budget: lattice.Budget{Timeout: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("Timeout budget should mark the run as timed out")
	}
}

func TestSortODs(t *testing.T) {
	ods := []listod.OD{
		{Left: listod.Spec{2}, Right: listod.Spec{1, 0}},
		{Left: listod.Spec{0}, Right: listod.Spec{1}},
		{Left: listod.Spec{1}, Right: listod.Spec{0}},
	}
	SortODs(ods)
	if ods[0].String() != "[0] -> [1]" || ods[1].String() != "[1] -> [0]" {
		t.Errorf("SortODs order = %v", ods)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
