package partition

// SwapWitness identifies a pair of rows (s, t) within one equivalence class
// such that s precedes t on colA but t precedes s on colB — a "swap" in the
// sense of Definition 5, restricted to the context defining this partition.
type SwapWitness struct {
	RowS, RowT int
}

// HasSwap reports whether some equivalence class of the context partition
// contains a swap between colA and colB, i.e. whether the canonical OD
// X: A ~ B is violated (the receiver being Π*X). It is the convenience form
// of HasSwapWith with a private workspace; validation loops should reuse a
// per-worker Scratch instead.
func (p *Partition) HasSwap(colA, colB []int32) bool {
	return p.HasSwapWith(colA, colB, nil)
}

// HasSwapWith is HasSwap using s as scratch space (nil allocates one). Each
// class is ordered by its (A-rank, B-rank) pairs with a scratch-backed radix
// sort over the dense ranks — no per-class allocation, no comparison sort —
// and then scanned once: B-ranks must never decrease across strictly
// increasing A-ranks.
func (p *Partition) HasSwapWith(colA, colB []int32, s *Scratch) bool {
	_, found := p.findSwap(colA, colB, false, s)
	return found
}

// FindSwap returns a witness pair for a swap between colA and colB within the
// context partition, if one exists.
func (p *Partition) FindSwap(colA, colB []int32) (SwapWitness, bool) {
	return p.findSwap(colA, colB, true, nil)
}

// FindSwapWith is FindSwap using s as scratch space (nil allocates one).
func (p *Partition) FindSwapWith(colA, colB []int32, s *Scratch) (SwapWitness, bool) {
	return p.findSwap(colA, colB, true, s)
}

// pairKey packs a row's (A-rank, B-rank) pair into one radix-sortable key:
// ascending key order is ascending (A, B) lexicographic order. Ranks are
// dense non-negative int32s, so the unsigned widening is order-preserving.
func pairKey(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (p *Partition) findSwap(colA, colB []int32, wantWitness bool, s *Scratch) (SwapWitness, bool) {
	if s == nil {
		s = NewScratch()
	}
	for ci, n := 0, p.NumClasses(); ci < n; ci++ {
		cls := p.Class(ci)
		keys, rows := s.sortClassByRanks(cls, colA, colB)
		// Scan groups of equal A-rank. Every B-rank in the current group must
		// be >= the maximum B-rank seen in strictly smaller A-groups.
		runningMax := int32(-1)
		var runningMaxRow int32 = -1
		k := len(keys)
		i := 0
		for i < k {
			a := keys[i] >> 32
			j := i
			groupMax := int32(uint32(keys[i]))
			groupMaxRow := rows[i]
			for j < k && keys[j]>>32 == a {
				b := int32(uint32(keys[j]))
				if b < runningMax && runningMax >= 0 {
					if wantWitness {
						return SwapWitness{RowS: int(runningMaxRow), RowT: int(rows[j])}, true
					}
					return SwapWitness{}, true
				}
				if b > groupMax {
					groupMax = b
					groupMaxRow = rows[j]
				}
				j++
			}
			if groupMax > runningMax {
				runningMax = groupMax
				runningMaxRow = groupMaxRow
			}
			i = j
		}
	}
	return SwapWitness{}, false
}

// SwapRemovals returns the minimum number of tuples that must be removed from
// the relation so that no class of the context partition contains a swap
// between colA and colB — the g3-style error of the OD X: A ~ B (the receiver
// being Π*X). Within each class the largest swap-free subset is the longest
// non-decreasing subsequence of B-ranks once the class is ordered by (A, B);
// the class is sorted with the scratch radix sort and the subsequence found
// by patience sorting, so the whole computation is allocation-free on a warm
// scratch. A nil scratch allocates one.
func (p *Partition) SwapRemovals(colA, colB []int32, s *Scratch) int {
	if s == nil {
		s = NewScratch()
	}
	removals := 0
	for ci, n := 0, p.NumClasses(); ci < n; ci++ {
		cls := p.Class(ci)
		keys, _ := s.sortClassByRanks(cls, colA, colB)
		// Longest non-decreasing subsequence over the B-ranks: tails[k] holds
		// the smallest possible tail of a subsequence of length k+1.
		tails := s.tails[:0]
		for _, key := range keys {
			b := int32(uint32(key))
			// First tail strictly greater than b (upper bound), since equal
			// values extend a non-decreasing subsequence.
			lo, hi := 0, len(tails)
			for lo < hi {
				mid := (lo + hi) / 2
				if tails[mid] <= b {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == len(tails) {
				tails = append(tails, b)
			} else {
				tails[lo] = b
			}
		}
		s.tails = tails[:0]
		removals += len(cls) - len(tails)
	}
	return removals
}

// ConstancyRemovals returns the minimum number of tuples that must be removed
// so that attribute col is constant within every class of the partition — the
// g3 error of the FD X → A (the receiver being Π*X): per class, everything
// but the most frequent rank goes. The frequency count uses a dense scratch
// table over the ranks, so the computation is allocation-free on a warm
// scratch. A nil scratch allocates one.
func (p *Partition) ConstancyRemovals(col []int32, s *Scratch) int {
	if s == nil {
		s = NewScratch()
	}
	removals := 0
	for ci, n := 0, p.NumClasses(); ci < n; ci++ {
		cls := p.Class(ci)
		s.touched = s.touched[:0]
		best := int32(0)
		for _, row := range cls {
			v := col[row]
			if int(v) >= len(s.freq) {
				s.freq = growInt32(s.freq, int(v)+1)
			}
			if s.freq[v] == 0 {
				s.touched = append(s.touched, v)
			}
			s.freq[v]++
			if s.freq[v] > best {
				best = s.freq[v]
			}
		}
		for _, v := range s.touched {
			s.freq[v] = 0
		}
		removals += len(cls) - int(best)
	}
	return removals
}

// sortClassByRanks loads the class's (A-rank, B-rank, row) triples into the
// scratch key buffers and sorts them by (A, B) ascending, returning the
// sorted keys and the rows permuted in lockstep. The buffers are valid until
// the next scratch call.
func (s *Scratch) sortClassByRanks(cls []int32, colA, colB []int32) (keys []uint64, rows []int32) {
	k := len(cls)
	if cap(s.keys) < k {
		n := keyBufCap(cap(s.keys), k)
		s.keys = make([]uint64, n)
		s.keyRows = make([]int32, n)
	}
	keys = s.keys[:k]
	rows = s.keyRows[:k]
	var maxKey uint64
	for j, row := range cls {
		key := pairKey(colA[row], colB[row])
		keys[j] = key
		rows[j] = row
		if key > maxKey {
			maxKey = key
		}
	}
	s.sortKeysRows(keys, rows, maxKey)
	return keys, rows
}

// keyBufCap sizes a key-buffer regrow geometrically (at least doubling), so
// a sequence of classes of increasing size costs O(log max) reallocations
// rather than one per new maximum.
func keyBufCap(have, need int) int {
	c := 2 * have
	if c < need {
		c = need
	}
	if c < 64 {
		c = 64
	}
	return c
}

// insertionCutoff is the class size below which insertion sort beats the
// fixed per-pass overhead (clearing 256 counters) of the radix sort.
const insertionCutoff = 48

// sortKeysRows sorts keys ascending with rows permuted in lockstep: insertion
// sort for small inputs, LSD radix sort (8-bit digits, skipping digits the
// maximum key does not reach) for large ones. Both paths are stable, so the
// resulting order — and any witness derived from it — is deterministic.
func (s *Scratch) sortKeysRows(keys []uint64, rows []int32, maxKey uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	if n <= insertionCutoff {
		for i := 1; i < n; i++ {
			key, row := keys[i], rows[i]
			j := i - 1
			for j >= 0 && keys[j] > key {
				keys[j+1], rows[j+1] = keys[j], rows[j]
				j--
			}
			keys[j+1], rows[j+1] = key, row
		}
		return
	}
	if cap(s.tmpKeys) < n {
		c := keyBufCap(cap(s.tmpKeys), n)
		s.tmpKeys = make([]uint64, c)
		s.tmpRows = make([]int32, c)
	}
	srcK, srcR := keys, rows
	dstK, dstR := s.tmpKeys[:n], s.tmpRows[:n]
	var count [256]int32
	for shift := uint(0); shift < 64 && maxKey>>shift != 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, key := range srcK {
			count[(key>>shift)&0xff]++
		}
		pos := int32(0)
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = pos
			pos += c
		}
		for i, key := range srcK {
			d := (key >> shift) & 0xff
			dstK[count[d]] = key
			dstR[count[d]] = srcR[i]
			count[d]++
		}
		srcK, srcR, dstK, dstR = dstK, dstR, srcK, srcR
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(rows, srcR)
	}
}
