package partition

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPartition builds the stripped partition of a random column with the
// given number of rows and approximate cardinality.
func randomPartition(rng *rand.Rand, rows, domain int) *Partition {
	vals := make([]int, rows)
	for i := range vals {
		vals[i] = rng.Intn(domain)
	}
	col, card := buildColumn(vals)
	return FromColumn(col, card)
}

// TestProductWithMatchesProduct reuses one scratch across many products of
// varying shapes — including relations of different sizes, which forces the
// workspace to grow mid-run — and checks every result against the
// allocation-per-call Product.
func TestProductWithMatchesProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		rows := 2 + rng.Intn(120)
		a := randomPartition(rng, rows, 1+rng.Intn(rows))
		b := randomPartition(rng, rows, 1+rng.Intn(rows))
		want := Product(a, b)
		got := a.ProductWith(b, s)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%d rows): ProductWith = %v, want %v", trial, rows, got, want)
		}
		// The scratch probe must be back to all -1 so the next call is clean.
		for i, v := range s.probe {
			if v != -1 {
				t.Fatalf("trial %d: probe[%d] = %d after ProductWith, want -1", trial, i, v)
			}
		}
	}
}

func TestProductWithNilScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomPartition(rng, 40, 6)
	b := randomPartition(rng, 40, 6)
	if got, want := a.ProductWith(b, nil), Product(a, b); !reflect.DeepEqual(got, want) {
		t.Errorf("ProductWith(nil) = %v, want %v", got, want)
	}
}

func TestProductWithMismatchedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched row counts")
		}
	}()
	FromConstant(3).ProductWith(FromConstant(4), NewScratch())
}

func TestProductWithIndependentResults(t *testing.T) {
	// Results must not alias the scratch: computing a second product may not
	// mutate the first result.
	rng := rand.New(rand.NewSource(11))
	s := NewScratch()
	a := randomPartition(rng, 60, 5)
	b := randomPartition(rng, 60, 7)
	c := randomPartition(rng, 60, 3)
	first := a.ProductWith(b, s)
	snapshot := first.Clone()
	_ = a.ProductWith(c, s)
	_ = b.ProductWith(c, s)
	if !reflect.DeepEqual(first, snapshot) {
		t.Error("later ProductWith calls mutated an earlier result")
	}
}
