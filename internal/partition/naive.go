package partition

import "sort"

// HasSwapNaive checks for swaps between colA and colB within every
// equivalence class by comparing all tuple pairs. It is quadratic per class
// and exists only as the ablation baseline for the sorted-scan check
// (Options.NaiveSwapCheck in the discovery algorithm) and as an independent
// oracle in tests.
func (p *Partition) HasSwapNaive(colA, colB []int32) bool {
	for ci, n := 0, p.NumClasses(); ci < n; ci++ {
		cls := p.Class(ci)
		for i := 0; i < len(cls); i++ {
			for j := 0; j < len(cls); j++ {
				s, t := cls[i], cls[j]
				if colA[s] < colA[t] && colB[t] < colB[s] {
					return true
				}
			}
		}
	}
	return false
}

// ProductNaive computes the stripped partition product by direct map-based
// grouping on (class-in-a, class-in-b) pairs, with classes ordered by their
// first row. It is an independent oracle for the flat ProductWith kernel in
// property tests; production code uses ProductWith.
func ProductNaive(a, b *Partition) *Partition {
	if a.NumRows != b.NumRows {
		panic("partition: product over different relations")
	}
	classOf := func(p *Partition) []int32 {
		out := make([]int32, p.NumRows)
		for i := range out {
			out[i] = -1
		}
		for ci, n := 0, p.NumClasses(); ci < n; ci++ {
			for _, row := range p.Class(ci) {
				out[row] = int32(ci)
			}
		}
		return out
	}
	inA, inB := classOf(a), classOf(b)
	groups := make(map[[2]int32][]int32)
	for row := 0; row < a.NumRows; row++ {
		ca, cb := inA[row], inB[row]
		if ca < 0 || cb < 0 {
			continue
		}
		k := [2]int32{ca, cb}
		groups[k] = append(groups[k], int32(row))
	}
	classes := make([][]int32, 0, len(groups))
	for _, g := range groups {
		if len(g) >= 2 {
			classes = append(classes, g)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return fromClasses(a.NumRows, classes)
}
