package partition

// HasSwapNaive checks for swaps between colA and colB within every
// equivalence class by comparing all tuple pairs. It is quadratic per class
// and exists only as the ablation baseline for the sorted-scan check
// (Options.NaiveSwapCheck in the discovery algorithm) and as an independent
// oracle in tests.
func (p *Partition) HasSwapNaive(colA, colB []int32) bool {
	for _, cls := range p.Classes {
		for i := 0; i < len(cls); i++ {
			for j := 0; j < len(cls); j++ {
				s, t := cls[i], cls[j]
				if colA[s] < colA[t] && colB[t] < colB[s] {
					return true
				}
			}
		}
	}
	return false
}
