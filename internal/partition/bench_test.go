package partition

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the partition substrate: the partition product and the
// swap check dominate FASTOD's inner loop (Section 4.6), so their constants
// matter for every figure.

func randomColumn(n, domain int, seed int64) ([]int32, int) {
	rng := rand.New(rand.NewSource(seed))
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(rng.Intn(domain))
	}
	return col, domain
}

func BenchmarkFromColumn(b *testing.B) {
	col, card := randomColumn(100_000, 1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromColumn(col, card)
	}
}

func BenchmarkProduct(b *testing.B) {
	colA, cardA := randomColumn(100_000, 100, 1)
	colB, cardB := randomColumn(100_000, 100, 2)
	pa := FromColumn(colA, cardA)
	pb := FromColumn(colB, cardB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Product(pa, pb)
	}
}

func BenchmarkProductWithScratch(b *testing.B) {
	// The engine hot path: a warm per-worker scratch makes the product's only
	// allocations the exact-size flat buffers of the result.
	colA, cardA := randomColumn(100_000, 100, 1)
	colB, cardB := randomColumn(100_000, 100, 2)
	pa := FromColumn(colA, cardA)
	pb := FromColumn(colB, cardB)
	s := NewScratch()
	pa.ProductWith(pb, s) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa.ProductWith(pb, s)
	}
}

func BenchmarkHasSwapSortedScan(b *testing.B) {
	ctxCol, ctxCard := randomColumn(50_000, 50, 1)
	colA, _ := randomColumn(50_000, 1000, 2)
	colB, _ := randomColumn(50_000, 1000, 3)
	ctx := FromColumn(ctxCol, ctxCard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.HasSwap(colA, colB)
	}
}

func BenchmarkHasSwapScratch(b *testing.B) {
	// The validation hot path: with a warm per-worker scratch the radix swap
	// check is allocation-free.
	ctxCol, ctxCard := randomColumn(50_000, 50, 1)
	colA, _ := randomColumn(50_000, 1000, 2)
	colB, _ := randomColumn(50_000, 1000, 3)
	ctx := FromColumn(ctxCol, ctxCard)
	s := NewScratch()
	ctx.HasSwapWith(colA, colB, s) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.HasSwapWith(colA, colB, s)
	}
}

func BenchmarkSwapRemovals(b *testing.B) {
	ctxCol, ctxCard := randomColumn(50_000, 50, 1)
	colA, _ := randomColumn(50_000, 1000, 2)
	colB, _ := randomColumn(50_000, 1000, 3)
	ctx := FromColumn(ctxCol, ctxCard)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.SwapRemovals(colA, colB, s)
	}
}

func BenchmarkHasSwapNaive(b *testing.B) {
	// Smaller input: the naive check is quadratic per class.
	ctxCol, ctxCard := randomColumn(5_000, 50, 1)
	colA, _ := randomColumn(5_000, 1000, 2)
	colB, _ := randomColumn(5_000, 1000, 3)
	ctx := FromColumn(ctxCol, ctxCard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.HasSwapNaive(colA, colB)
	}
}

func BenchmarkConstantInClasses(b *testing.B) {
	ctxCol, ctxCard := randomColumn(100_000, 100, 1)
	col, _ := randomColumn(100_000, 5, 2)
	ctx := FromColumn(ctxCol, ctxCard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ConstantInClasses(col)
	}
}
