package partition

import "fmt"

// Product computes the stripped partition of X ∪ Y from the stripped
// partitions of X and Y in time linear in the partition sizes, using the
// standard probe-table construction: tuples that share a class in both inputs
// share a class in the product. This is the only operation FASTOD needs to
// derive the partitions of level l+1 nodes from level l nodes.
//
// Product allocates a fresh workspace per call; hot loops that compute many
// products (the level-generation phase of FASTOD) should hold a Scratch and
// call ProductWith instead.
func Product(a, b *Partition) *Partition {
	return a.ProductWith(b, nil)
}

// Scratch is a reusable workspace for the partition kernels: ProductWith,
// the scratch-backed swap checks (HasSwapWith, FindSwapWith) and the
// approximate-error kernels (SwapRemovals, ConstancyRemovals). A single
// Scratch may be reused across any number of calls, over relations of any
// size — it grows as needed and cleans up after itself — but it must not be
// shared between goroutines: parallel callers hold one Scratch per worker
// (the lattice engine exposes its per-worker scratches for exactly this).
type Scratch struct {
	// probe[row] = index of row's class in the left product operand, or -1 if
	// the row is a singleton there. All entries are -1 between calls.
	probe []int32
	// groupLen[ci] counts the rows of the current right-operand class that
	// fall into left class ci; groupPos[ci] is the arena write cursor assigned
	// to that group (-1 when the group stays singleton). groupLen is all zero
	// between right classes; groupPos is always written before it is read.
	groupLen []int32
	groupPos []int32
	// touched lists the left classes dirtied by the current right class.
	touched []int32
	// outRows and outOffsets stage the product's flat buffers; the result
	// copies them at exact size so no over-capacity is retained by callers
	// (or by a PartitionStore) and the staging arrays amortize across calls.
	outRows    []int32
	outOffsets []int32
	// keys/keyRows and tmpKeys/tmpRows are the (rank-pair, row) buffers of the
	// radix sort behind the swap kernels.
	keys    []uint64
	keyRows []int32
	tmpKeys []uint64
	tmpRows []int32
	// tails is the patience-sorting buffer of SwapRemovals.
	tails []int32
	// freq is the dense rank-frequency table of ConstancyRemovals. All
	// entries are zero between calls.
	freq []int32
}

// NewScratch returns an empty workspace ready for any partition kernel.
func NewScratch() *Scratch { return &Scratch{} }

// ProductWith computes Product(a, b) using s as scratch space, avoiding the
// per-call probe-table and grouping allocations. A nil scratch is allowed and
// makes the call equivalent to Product(a, b). The result is a freshly
// allocated Partition with exact-size flat buffers that share nothing with
// the scratch or the operands.
//
// The class order of the result is deterministic: classes are emitted
// right-operand-major — for each class of b in order, its subclasses in order
// of first appearance — and rows ascend within every class. All callers
// compute any given attribute set's partition through the same operand
// sequence, so identical inputs always yield identical partitions.
func (a *Partition) ProductWith(b *Partition, s *Scratch) *Partition {
	if a.NumRows != b.NumRows {
		// This package cannot know which lattice node asked for the product,
		// so the message carries all the local state it has; the engine's
		// per-node recovery frames attach the node's attribute set on the way
		// out (lattice.PanicContext) and surface the whole thing as a typed
		// internal error instead of a crash.
		panic(fmt.Sprintf("partition: product over different relations (%d vs %d rows, %d vs %d classes)",
			a.NumRows, b.NumRows, a.NumClasses(), b.NumClasses()))
	}
	if s == nil {
		s = NewScratch()
	}
	if len(s.probe) < a.NumRows {
		grown := make([]int32, a.NumRows)
		for i := range grown {
			grown[i] = -1
		}
		s.probe = grown
	}
	if len(s.groupLen) < a.NumClasses() {
		s.groupLen = make([]int32, a.NumClasses())
		s.groupPos = make([]int32, a.NumClasses())
	}
	for ci, n := 0, a.NumClasses(); ci < n; ci++ {
		for _, row := range a.Class(ci) {
			s.probe[row] = int32(ci)
		}
	}
	s.outRows = s.outRows[:0]
	s.outOffsets = append(s.outOffsets[:0], 0)
	// For each class of b, group its rows by their class in a, emitting the
	// groups of size >= 2 straight into the flat staging buffers: one counting
	// pass reserves each group's contiguous arena range, one placement pass
	// fills it.
	for bi, bn := 0, b.NumClasses(); bi < bn; bi++ {
		cls := b.Class(bi)
		s.touched = s.touched[:0]
		for _, row := range cls {
			ca := s.probe[row]
			if ca < 0 {
				continue // singleton in a => singleton in the product
			}
			if s.groupLen[ca] == 0 {
				s.touched = append(s.touched, ca)
			}
			s.groupLen[ca]++
		}
		for _, ca := range s.touched {
			n := s.groupLen[ca]
			if n >= 2 {
				start := int32(len(s.outRows))
				s.outRows = extendInt32(s.outRows, int(n))
				s.groupPos[ca] = start
				s.outOffsets = append(s.outOffsets, start+n)
			} else {
				s.groupPos[ca] = -1
			}
		}
		for _, row := range cls {
			ca := s.probe[row]
			if ca < 0 {
				continue
			}
			pos := s.groupPos[ca]
			if pos < 0 {
				continue
			}
			s.outRows[pos] = row
			s.groupPos[ca] = pos + 1
		}
		for _, ca := range s.touched {
			s.groupLen[ca] = 0
		}
	}
	// Restore the all--1 probe invariant for the next call.
	for _, row := range a.rows {
		s.probe[row] = -1
	}
	out := &Partition{
		NumRows: a.NumRows,
		rows:    make([]int32, len(s.outRows)),
		offsets: make([]int32, len(s.outOffsets)),
	}
	copy(out.rows, s.outRows)
	copy(out.offsets, s.outOffsets)
	return out
}

// extendInt32 grows s by n elements (contents of the new tail unspecified),
// reallocating geometrically so amortized growth is O(1) per element.
func extendInt32(s []int32, n int) []int32 {
	need := len(s) + n
	if need <= cap(s) {
		return s[:need]
	}
	newCap := 2 * cap(s)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	grown := make([]int32, need, newCap)
	copy(grown, s)
	return grown
}
