package partition

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file property-tests the flat kernels — ProductWith, the radix swap
// check and the removal counters — against the independent naive oracles in
// naive.go, on randomized relations of varying size, cardinality and class
// skew, while reusing one Scratch across every trial (including relations of
// different sizes, which forces every scratch buffer to grow mid-run).

// skewedColumn draws a rank-encoded column whose value distribution ranges
// from uniform to heavily skewed (a few huge classes plus a singleton tail),
// re-densifying ranks afterwards.
func skewedColumn(rng *rand.Rand, rows, card int, skew float64) ([]int32, int) {
	raw := make([]int, rows)
	for i := range raw {
		if rng.Float64() < skew {
			raw[i] = 0 // pile onto one heavy value
		} else {
			raw[i] = rng.Intn(card)
		}
	}
	dense := map[int]int32{}
	vals := append([]int(nil), raw...)
	sort.Ints(vals)
	for _, v := range vals {
		if _, ok := dense[v]; !ok {
			dense[v] = int32(len(dense))
		}
	}
	col := make([]int32, rows)
	for i, v := range raw {
		col[i] = dense[v]
	}
	return col, len(dense)
}

// canonClasses returns the classes sorted by first row, the order the naive
// product oracle uses; the flat product's right-operand-major order is
// deterministic but different, so comparisons go through this normal form.
func canonClasses(p *Partition) [][]int32 {
	out := classesOf(p)
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func TestFlatKernelsMatchNaiveOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(1789))
	s := NewScratch() // one scratch across all trials and relation sizes
	for trial := 0; trial < 300; trial++ {
		rows := 2 + rng.Intn(250)
		cardA := 1 + rng.Intn(rows)
		cardB := 1 + rng.Intn(rows)
		skewA := rng.Float64() * rng.Float64() // bias toward mild skew
		skewB := rng.Float64()
		colA, ca := skewedColumn(rng, rows, cardA, skewA)
		colB, cb := skewedColumn(rng, rows, cardB, skewB)
		pa := FromColumn(colA, ca)
		pb := FromColumn(colB, cb)

		// Product: flat scratch-backed kernel vs map-grouping oracle.
		got := pa.ProductWith(pb, s)
		want := ProductNaive(pa, pb)
		if got.NumRows != want.NumRows || got.Size() != want.Size() || got.NumClasses() != want.NumClasses() {
			t.Fatalf("trial %d (%d rows): product shape = %v, want %v", trial, rows, got, want)
		}
		if !reflect.DeepEqual(canonClasses(got), canonClasses(want)) {
			t.Fatalf("trial %d (%d rows): product classes = %v, want %v",
				trial, rows, canonClasses(got), canonClasses(want))
		}
		// The probe invariant must be restored for the next trial.
		for i, v := range s.probe {
			if v != -1 {
				t.Fatalf("trial %d: probe[%d] = %d after ProductWith, want -1", trial, i, v)
			}
		}

		// Swap check on a third column pair within the product context:
		// radix-sorted scan vs all-pairs oracle.
		colX, _ := skewedColumn(rng, rows, 1+rng.Intn(rows), rng.Float64())
		colY, _ := skewedColumn(rng, rows, 1+rng.Intn(rows), rng.Float64())
		for _, ctx := range []*Partition{pa, got, FromConstant(rows)} {
			naive := ctx.HasSwapNaive(colX, colY)
			if fast := ctx.HasSwapWith(colX, colY, s); fast != naive {
				t.Fatalf("trial %d: HasSwapWith = %v, naive oracle = %v (ctx %v)", trial, fast, naive, ctx)
			}
			w, found := ctx.FindSwapWith(colX, colY, s)
			if found != naive {
				t.Fatalf("trial %d: FindSwapWith found = %v, naive oracle = %v", trial, found, naive)
			}
			if found {
				// The witness must be a genuine swap within one context class.
				okDir := (colX[w.RowS] < colX[w.RowT] && colY[w.RowT] < colY[w.RowS]) ||
					(colX[w.RowT] < colX[w.RowS] && colY[w.RowS] < colY[w.RowT])
				if !okDir {
					t.Fatalf("trial %d: witness (%d,%d) is not a swap", trial, w.RowS, w.RowT)
				}
				sameClass := false
				ctx.ForEachClass(func(cls []int32) {
					in := 0
					for _, row := range cls {
						if int(row) == w.RowS || int(row) == w.RowT {
							in++
						}
					}
					if in == 2 {
						sameClass = true
					}
				})
				if !sameClass {
					t.Fatalf("trial %d: witness rows (%d,%d) not in one context class", trial, w.RowS, w.RowT)
				}
			}

			// Removal counters vs direct per-class recomputation.
			if gotR, wantR := ctx.SwapRemovals(colX, colY, s), swapRemovalsNaive(ctx, colX, colY); gotR != wantR {
				t.Fatalf("trial %d: SwapRemovals = %d, naive = %d", trial, gotR, wantR)
			}
			if gotR, wantR := ctx.ConstancyRemovals(colX, s), constancyRemovalsNaive(ctx, colX); gotR != wantR {
				t.Fatalf("trial %d: ConstancyRemovals = %d, naive = %d", trial, gotR, wantR)
			}
			if naive && ctx.SwapRemovals(colX, colY, s) == 0 {
				t.Fatalf("trial %d: swap exists but SwapRemovals = 0", trial)
			}
		}
	}
}

// swapRemovalsNaive recomputes the per-class longest non-decreasing
// subsequence with a comparison sort and quadratic DP — an implementation
// independent of the radix sort and patience-sorting used by SwapRemovals.
func swapRemovalsNaive(p *Partition, colA, colB []int32) int {
	removals := 0
	p.ForEachClass(func(cls []int32) {
		rows := append([]int32(nil), cls...)
		sort.SliceStable(rows, func(i, j int) bool {
			if colA[rows[i]] != colA[rows[j]] {
				return colA[rows[i]] < colA[rows[j]]
			}
			return colB[rows[i]] < colB[rows[j]]
		})
		best := 0
		lnds := make([]int, len(rows))
		for i := range rows {
			lnds[i] = 1
			for j := 0; j < i; j++ {
				if colB[rows[j]] <= colB[rows[i]] && lnds[j]+1 > lnds[i] {
					lnds[i] = lnds[j] + 1
				}
			}
			if lnds[i] > best {
				best = lnds[i]
			}
		}
		removals += len(cls) - best
	})
	return removals
}

// constancyRemovalsNaive recomputes per-class removals with a plain map.
func constancyRemovalsNaive(p *Partition, col []int32) int {
	removals := 0
	p.ForEachClass(func(cls []int32) {
		freq := map[int32]int{}
		best := 0
		for _, row := range cls {
			freq[col[row]]++
			if freq[col[row]] > best {
				best = freq[col[row]]
			}
		}
		removals += len(cls) - best
	})
	return removals
}

// TestRadixSortCrossesCutoff forces classes on both sides of the insertion
// cutoff — including far beyond it, exercising multi-digit radix passes with
// large dense ranks — and checks the swap verdict against the oracle.
func TestRadixSortCrossesCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	s := NewScratch()
	for _, rows := range []int{insertionCutoff - 1, insertionCutoff, insertionCutoff + 1, 4 * insertionCutoff, 1024} {
		for trial := 0; trial < 20; trial++ {
			// One giant class (constant context) with ranks spanning the full
			// row range so the radix sort needs multiple 8-bit digits.
			colA := make([]int32, rows)
			colB := make([]int32, rows)
			for i := range colA {
				colA[i] = int32(rng.Intn(rows))
				colB[i] = int32(rng.Intn(rows))
			}
			ctx := FromConstant(rows)
			if got, want := ctx.HasSwapWith(colA, colB, s), ctx.HasSwapNaive(colA, colB); got != want {
				t.Fatalf("rows=%d trial %d: HasSwapWith = %v, naive = %v", rows, trial, got, want)
			}
			if got, want := ctx.SwapRemovals(colA, colB, s), swapRemovalsNaive(ctx, colA, colB); got != want {
				t.Fatalf("rows=%d trial %d: SwapRemovals = %d, naive = %d", rows, trial, got, want)
			}
		}
	}
}
