package partition

import (
	"math/rand"
	"reflect"
	"testing"
)

// classesOf materializes the stripped classes of a partition for test
// comparisons; production code iterates the flat arena via Class/ForEachClass.
func classesOf(p *Partition) [][]int32 {
	out := make([][]int32, 0, p.NumClasses())
	p.ForEachClass(func(cls []int32) {
		out = append(out, append([]int32(nil), cls...))
	})
	return out
}

// buildColumn turns raw int values into a dense rank-encoded column, the form
// the partition code expects (equal values share a rank, order preserved).
func buildColumn(vals []int) ([]int32, int) {
	distinct := map[int]int32{}
	sorted := append([]int(nil), vals...)
	// simple insertion sort for clarity in tests
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, v := range sorted {
		if _, ok := distinct[v]; !ok {
			distinct[v] = int32(len(distinct))
		}
	}
	out := make([]int32, len(vals))
	for i, v := range vals {
		out[i] = distinct[v]
	}
	return out, len(distinct)
}

func TestFromColumn(t *testing.T) {
	col, card := buildColumn([]int{5, 3, 5, 7, 3, 5})
	p := FromColumn(col, card)
	if p.NumRows != 6 {
		t.Fatalf("NumRows = %d", p.NumRows)
	}
	// value 3 -> rows {1,4}, value 5 -> rows {0,2,5}, value 7 singleton dropped.
	want := [][]int32{{1, 4}, {0, 2, 5}}
	if got := classesOf(p); !reflect.DeepEqual(got, want) {
		t.Errorf("classes = %v, want %v", got, want)
	}
	if p.Size() != 5 || p.NumClasses() != 2 || p.Error() != 3 {
		t.Errorf("Size=%d NumClasses=%d Error=%d", p.Size(), p.NumClasses(), p.Error())
	}
	if p.NumClassesUnstripped() != 3 {
		t.Errorf("NumClassesUnstripped = %d, want 3", p.NumClassesUnstripped())
	}
	if p.IsSuperkey() {
		t.Error("IsSuperkey = true, want false")
	}
}

func TestFromColumnKey(t *testing.T) {
	col, card := buildColumn([]int{4, 1, 3, 2})
	p := FromColumn(col, card)
	if !p.IsSuperkey() || p.NumClasses() != 0 {
		t.Error("all-distinct column should produce an empty stripped partition")
	}
	if p.NumClassesUnstripped() != 4 {
		t.Errorf("NumClassesUnstripped = %d, want 4", p.NumClassesUnstripped())
	}
}

func TestFromColumnDefensiveCardinality(t *testing.T) {
	// Passing a too-small cardinality must still work.
	p := FromColumn([]int32{0, 2, 2}, 1)
	if p.NumClasses() != 1 || p.Class(0)[0] != 1 {
		t.Errorf("classes = %v", classesOf(p))
	}
}

func TestFromColumnGrowthIsGeometric(t *testing.T) {
	// Regression for the defensive bucket growth: a caller passing cardinality
	// 0 for a column of n distinct ranks must trigger O(log n) regrows, not
	// one per rank. With geometric growth the whole construction stays within
	// a few dozen allocations; the old grow-to-exactly-v+1 behavior performed
	// n reallocations (quadratic copied bytes).
	const n = 10_000
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(i)
	}
	var p *Partition
	allocs := testing.AllocsPerRun(5, func() {
		p = FromColumn(col, 0)
	})
	if p.NumRows != n || p.NumClasses() != 0 || !p.IsSuperkey() {
		t.Fatalf("partition = %v, want empty stripped partition over %d rows", p, n)
	}
	if allocs > 50 {
		t.Errorf("FromColumn with cardinality 0 over %d distinct ranks did %.0f allocations, want O(log n)", n, allocs)
	}
	// The result must agree with the correctly-sized construction.
	dup := make([]int32, n)
	for i := range dup {
		dup[i] = int32(i / 2)
	}
	if got, want := classesOf(FromColumn(dup, 0)), classesOf(FromColumn(dup, n/2)); !reflect.DeepEqual(got, want) {
		t.Errorf("undersized cardinality changed the result: %v vs %v", got, want)
	}
}

func TestFromConstant(t *testing.T) {
	p := FromConstant(4)
	if p.NumClasses() != 1 || p.Size() != 4 {
		t.Errorf("FromConstant(4) = %v", p)
	}
	if !reflect.DeepEqual(p.Class(0), []int32{0, 1, 2, 3}) {
		t.Errorf("class = %v", p.Class(0))
	}
	if got := FromConstant(1); got.NumClasses() != 0 {
		t.Error("single-row constant partition should be stripped empty")
	}
	if got := FromConstant(0); got.NumClasses() != 0 || got.NumRows != 0 {
		t.Error("empty relation constant partition should be empty")
	}
}

func TestProduct(t *testing.T) {
	// Table 1 analogue: year = {16,16,16,15,15,15}, position = {s,m,d,s,m,d}
	year, yc := buildColumn([]int{16, 16, 16, 15, 15, 15})
	posit, pc := buildColumn([]int{1, 2, 3, 1, 2, 3})
	pYear := FromColumn(year, yc)
	pPosit := FromColumn(posit, pc)
	prod := Product(pYear, pPosit)
	// year+position is a key for this table: all classes become singletons.
	if !prod.IsSuperkey() {
		t.Errorf("product = %v, want superkey", classesOf(prod))
	}

	// position x bin where bin == position: product equals the position partition.
	prod2 := Product(pPosit, pPosit)
	if !reflect.DeepEqual(classesOf(prod2), classesOf(pPosit)) {
		t.Errorf("product with self = %v, want %v", classesOf(prod2), classesOf(pPosit))
	}
}

func TestProductMatchesDirectGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		colA, ca := buildColumn(a)
		colB, cb := buildColumn(b)
		prod := Product(FromColumn(colA, ca), FromColumn(colB, cb))

		// Direct grouping on the pair (a,b).
		groups := map[[2]int][]int32{}
		for i := 0; i < n; i++ {
			k := [2]int{a[i], b[i]}
			groups[k] = append(groups[k], int32(i))
		}
		wantError := 0
		wantClasses := 0
		for _, g := range groups {
			if len(g) >= 2 {
				wantClasses++
				wantError += len(g) - 1
			}
		}
		if prod.NumClasses() != wantClasses || prod.Error() != wantError {
			t.Fatalf("trial %d: product classes=%d error=%d, want %d/%d",
				trial, prod.NumClasses(), prod.Error(), wantClasses, wantError)
		}
		if !prod.Refines(FromColumn(colA, ca)) || !prod.Refines(FromColumn(colB, cb)) {
			t.Fatalf("trial %d: product does not refine its factors", trial)
		}
	}
}

func TestProductPanicsOnMismatchedRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for partitions over different relations")
		}
	}()
	Product(FromConstant(3), FromConstant(4))
}

func TestConstantInClasses(t *testing.T) {
	// position partition: {secr rows 0,3}, {mngr 1,4}, {direct 2,5}
	posit, pc := buildColumn([]int{1, 2, 3, 1, 2, 3})
	p := FromColumn(posit, pc)

	bin, _ := buildColumn([]int{1, 2, 3, 1, 2, 3})  // constant per position
	sal, _ := buildColumn([]int{5, 8, 10, 4, 6, 8}) // not constant per position
	if !p.ConstantInClasses(bin) {
		t.Error("bin should be constant within position classes (Example 4)")
	}
	if p.ConstantInClasses(sal) {
		t.Error("salary should not be constant within position classes (Example 3 splits)")
	}
}

func TestFindSplit(t *testing.T) {
	posit, pc := buildColumn([]int{1, 2, 3, 1, 2, 3})
	sal, _ := buildColumn([]int{5, 8, 10, 4, 6, 8})
	p := FromColumn(posit, pc)
	w, ok := p.FindSplit(sal)
	if !ok {
		t.Fatal("expected a split witness")
	}
	if posit[w.RowS] != posit[w.RowT] || sal[w.RowS] == sal[w.RowT] {
		t.Errorf("witness rows %d,%d are not a valid split", w.RowS, w.RowT)
	}
	bin, _ := buildColumn([]int{1, 2, 3, 1, 2, 3})
	if _, ok := p.FindSplit(bin); ok {
		t.Error("unexpected split witness for constant attribute")
	}
}

func TestHasSwapTable1(t *testing.T) {
	// Table 1: within context {year}, bin ~ salary holds; but with the empty
	// context, salary ~ subgroup has a swap (t1 vs t2: sal 5K<8K, subg III>II).
	year, yc := buildColumn([]int{16, 16, 16, 15, 15, 15})
	bin, _ := buildColumn([]int{1, 2, 3, 1, 2, 3})
	sal, _ := buildColumn([]int{5000, 8000, 10000, 4500, 6000, 8000})
	// subgroup: III, II, I, III, I, II  -> ranks I<II<III
	subg, _ := buildColumn([]int{3, 2, 1, 3, 1, 2})

	ctxYear := FromColumn(year, yc)
	if ctxYear.HasSwap(bin, sal) {
		t.Error("{year}: bin ~ salary should hold (Example 4)")
	}
	empty := FromConstant(6)
	if !empty.HasSwap(sal, subg) {
		t.Error("{}: salary ~ subgroup should be violated (Example 3 swap)")
	}
	w, ok := empty.FindSwap(sal, subg)
	if !ok {
		t.Fatal("expected a swap witness")
	}
	s, tt := w.RowS, w.RowT
	if !(sal[s] < sal[tt] && subg[tt] < subg[s]) && !(sal[tt] < sal[s] && subg[s] < subg[tt]) {
		t.Errorf("witness (%d,%d) is not a swap: sal=%v subg=%v", s, tt, sal, subg)
	}
}

func TestHasSwapTiesDoNotCount(t *testing.T) {
	// Equal A values never produce a swap regardless of B order.
	a := []int32{0, 0, 0, 0}
	b := []int32{3, 1, 2, 0}
	p := FromConstant(4)
	if p.HasSwap(a, b) {
		t.Error("ties in A must not be swaps")
	}
	// Equal B values with increasing A are fine too.
	if p.HasSwap(b, a) {
		t.Error("ties in B must not be swaps")
	}
}

func TestHasSwapAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		ctxVals := make([]int, n)
		aVals := make([]int, n)
		bVals := make([]int, n)
		for i := 0; i < n; i++ {
			ctxVals[i] = rng.Intn(3)
			aVals[i] = rng.Intn(5)
			bVals[i] = rng.Intn(5)
		}
		ctxCol, cc := buildColumn(ctxVals)
		colA, _ := buildColumn(aVals)
		colB, _ := buildColumn(bVals)
		ctx := FromColumn(ctxCol, cc)

		brute := false
		for s := 0; s < n && !brute; s++ {
			for tt := 0; tt < n; tt++ {
				if ctxVals[s] == ctxVals[tt] && aVals[s] < aVals[tt] && bVals[tt] < bVals[s] {
					brute = true
					break
				}
			}
		}
		if got := ctx.HasSwap(colA, colB); got != brute {
			t.Fatalf("trial %d: HasSwap = %v, brute force = %v\nctx=%v a=%v b=%v",
				trial, got, brute, ctxVals, aVals, bVals)
		}
		if w, ok := ctx.FindSwap(colA, colB); ok {
			s, tt := w.RowS, w.RowT
			if ctxVals[s] != ctxVals[tt] {
				t.Fatalf("trial %d: witness rows in different context classes", trial)
			}
			okDir := (aVals[s] < aVals[tt] && bVals[tt] < bVals[s]) ||
				(aVals[tt] < aVals[s] && bVals[s] < bVals[tt])
			if !okDir {
				t.Fatalf("trial %d: witness (%d,%d) is not a swap", trial, s, tt)
			}
		}
	}
}

func TestRefines(t *testing.T) {
	a, ca := buildColumn([]int{1, 1, 2, 2, 3})
	ab, cab := buildColumn([]int{1, 1, 2, 3, 4})
	pa := FromColumn(a, ca)
	pab := FromColumn(ab, cab)
	if !pab.Refines(pa) {
		t.Error("finer partition should refine coarser one")
	}
	if pa.Refines(pab) {
		t.Error("coarser partition should not refine finer one")
	}
	if pa.Refines(FromConstant(3)) {
		t.Error("partitions over different row counts must not refine each other")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := FromColumn([]int32{0, 0, 1, 1}, 2)
	c := p.Clone()
	//lint:allow classalias the scribble on a private clone is the point: it proves Clone's arena is independent
	c.Class(0)[0] = 99
	if p.Class(0)[0] == 99 {
		t.Error("Clone shares arena storage with the original")
	}
	if p.String() == "" {
		t.Error("String should not be empty")
	}
	if p.FootprintBytes() != 4*(p.Size()+p.NumClasses()+1) {
		t.Errorf("FootprintBytes = %d, want rows+offsets bytes", p.FootprintBytes())
	}
}

func TestErrorCriterionMatchesFDSemantics(t *testing.T) {
	// FD X -> A holds iff Error(ΠX) == Error(ΠXA); validate on random data
	// against a direct check.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		x := make([]int, n)
		a := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Intn(4)
			a[i] = rng.Intn(3)
		}
		colX, cx := buildColumn(x)
		colA, ca := buildColumn(a)
		pX := FromColumn(colX, cx)
		pXA := Product(pX, FromColumn(colA, ca))

		direct := true
		for s := 0; s < n && direct; s++ {
			for tt := 0; tt < n; tt++ {
				if x[s] == x[tt] && a[s] != a[tt] {
					direct = false
					break
				}
			}
		}
		viaError := pX.Error() == pXA.Error()
		viaConstant := pX.ConstantInClasses(colA)
		if viaError != direct || viaConstant != direct {
			t.Fatalf("trial %d: error criterion=%v constant=%v direct=%v", trial, viaError, viaConstant, direct)
		}
	}
}
