// Package partition implements the partition machinery of Section 4.6 of the
// paper: equivalence-class partitions ΠX over attribute sets, stripped
// partitions Π*X (singleton classes removed), linear-time partition products,
// and the sorted-scan swap check used to validate order-compatibility ODs
// X: A ~ B. All operations work on rank-encoded columns (see package
// relation), so value comparisons are integer comparisons.
package partition

import (
	"fmt"
	"sort"
)

// Partition is a stripped partition Π*X of the tuples of a relation with
// respect to some attribute set X: the list of equivalence classes of size at
// least two. Singleton classes are omitted because they can neither falsify a
// constancy OD X: [] ↦ A nor an order-compatibility OD X: A ~ B (Lemma 14).
type Partition struct {
	// NumRows is the total number of tuples in the underlying relation,
	// including those in the dropped singleton classes.
	NumRows int
	// Classes holds the equivalence classes with at least two tuples. Each
	// class is a slice of row indexes in ascending order.
	Classes [][]int32
}

// FromColumn builds the stripped partition of a single rank-encoded column.
// Because ranks are dense (0..cardinality-1), the grouping is a linear-time
// bucket pass; the resulting classes are ordered by rank, so the partition of
// a single attribute doubles as the sorted partition τA of Section 4.6.
func FromColumn(col []int32, cardinality int) *Partition {
	if cardinality < 0 {
		cardinality = 0
	}
	buckets := make([][]int32, cardinality)
	for row, v := range col {
		if int(v) >= len(buckets) {
			// Defensive growth: callers normally pass the true cardinality.
			grown := make([][]int32, int(v)+1)
			copy(grown, buckets)
			buckets = grown
		}
		buckets[v] = append(buckets[v], int32(row))
	}
	p := &Partition{NumRows: len(col)}
	for _, b := range buckets {
		if len(b) >= 2 {
			p.Classes = append(p.Classes, b)
		}
	}
	return p
}

// FromConstant returns the partition for the empty attribute set: all tuples
// fall into one equivalence class.
func FromConstant(numRows int) *Partition {
	p := &Partition{NumRows: numRows}
	if numRows >= 2 {
		cls := make([]int32, numRows)
		for i := range cls {
			cls[i] = int32(i)
		}
		p.Classes = [][]int32{cls}
	}
	return p
}

// NumClasses returns the number of stripped (size >= 2) classes.
func (p *Partition) NumClasses() int { return len(p.Classes) }

// Size returns the total number of tuples contained in stripped classes.
func (p *Partition) Size() int {
	total := 0
	for _, c := range p.Classes {
		total += len(c)
	}
	return total
}

// Error returns e(ΠX) = ||Π*X|| - |Π*X|, the number of tuples that would have
// to be removed to make X a superkey. For partitions over the same relation,
// the FD X → A holds iff Error(ΠX) == Error(ΠXA) (the TANE criterion), because
// ΠXA refines ΠX.
func (p *Partition) Error() int { return p.Size() - p.NumClasses() }

// NumClassesUnstripped returns |ΠX|, the number of equivalence classes
// including singletons.
func (p *Partition) NumClassesUnstripped() int {
	return p.NumRows - p.Size() + p.NumClasses()
}

// IsSuperkey reports whether X is a superkey: every equivalence class is a
// singleton, i.e. the stripped partition is empty.
func (p *Partition) IsSuperkey() bool { return len(p.Classes) == 0 }

// Clone returns a deep copy of the partition.
func (p *Partition) Clone() *Partition {
	out := &Partition{NumRows: p.NumRows, Classes: make([][]int32, len(p.Classes))}
	for i, c := range p.Classes {
		cc := make([]int32, len(c))
		copy(cc, c)
		out.Classes[i] = cc
	}
	return out
}

// String summarizes the partition for diagnostics.
func (p *Partition) String() string {
	return fmt.Sprintf("Partition{rows=%d classes=%d size=%d}", p.NumRows, p.NumClasses(), p.Size())
}

// Product computes the stripped partition of X ∪ Y from the stripped
// partitions of X and Y in time linear in the partition sizes, using the
// standard probe-table construction: tuples that share a class in both inputs
// share a class in the product. This is the only operation FASTOD needs to
// derive the partitions of level l+1 nodes from level l nodes.
//
// Product allocates a fresh workspace per call; hot loops that compute many
// products (the level-generation phase of FASTOD) should hold a Scratch and
// call ProductWith instead.
func Product(a, b *Partition) *Partition {
	return a.ProductWith(b, nil)
}

// Scratch is a reusable workspace for ProductWith. A single Scratch may be
// reused across any number of products, over relations of any size — it grows
// as needed and cleans up after itself — but it must not be shared between
// goroutines: parallel callers hold one Scratch per worker.
type Scratch struct {
	// probe[row] = index of row's class in the left operand, or -1 if the row
	// is a singleton there. All entries are -1 between calls.
	probe []int32
	// groups[ci] collects the rows of the current right-operand class that
	// fall into left class ci. Each bucket is emptied (length reset, capacity
	// kept) before the next class, so its backing arrays amortize across the
	// whole run.
	groups [][]int32
	// touched lists the left classes dirtied by the current right class.
	touched []int32
}

// NewScratch returns an empty workspace ready for ProductWith.
func NewScratch() *Scratch { return &Scratch{} }

// ProductWith computes Product(a, b) using s as scratch space, avoiding the
// per-call probe-table and grouping allocations. A nil scratch is allowed and
// makes the call equivalent to Product(a, b). The result is a freshly
// allocated Partition identical to Product's.
func (a *Partition) ProductWith(b *Partition, s *Scratch) *Partition {
	if a.NumRows != b.NumRows {
		panic(fmt.Sprintf("partition: product over different relations (%d vs %d rows)", a.NumRows, b.NumRows))
	}
	if s == nil {
		s = NewScratch()
	}
	if len(s.probe) < a.NumRows {
		grown := make([]int32, a.NumRows)
		for i := range grown {
			grown[i] = -1
		}
		s.probe = grown
	}
	if len(s.groups) < len(a.Classes) {
		grown := make([][]int32, len(a.Classes))
		copy(grown, s.groups)
		s.groups = grown
	}
	for ci, cls := range a.Classes {
		for _, row := range cls {
			s.probe[row] = int32(ci)
		}
	}
	out := &Partition{NumRows: a.NumRows}
	// For each class of b, group its rows by their class in a.
	for _, cls := range b.Classes {
		s.touched = s.touched[:0]
		for _, row := range cls {
			ca := s.probe[row]
			if ca < 0 {
				continue // singleton in a => singleton in the product
			}
			if len(s.groups[ca]) == 0 {
				s.touched = append(s.touched, ca)
			}
			s.groups[ca] = append(s.groups[ca], row)
		}
		for _, ca := range s.touched {
			rows := s.groups[ca]
			if len(rows) >= 2 {
				cc := make([]int32, len(rows))
				copy(cc, rows)
				out.Classes = append(out.Classes, cc)
			}
			s.groups[ca] = rows[:0]
		}
	}
	// Restore the all--1 probe invariant for the next call.
	for _, cls := range a.Classes {
		for _, row := range cls {
			s.probe[row] = -1
		}
	}
	sortClasses(out.Classes)
	return out
}

// sortClasses establishes a deterministic class order (by first row index) so
// that algorithm output does not depend on map iteration order.
func sortClasses(classes [][]int32) {
	sort.Slice(classes, func(i, j int) bool {
		return classes[i][0] < classes[j][0]
	})
}

// ConstantInClasses reports whether attribute col (rank-encoded) is constant
// within every equivalence class of the partition, i.e. whether the canonical
// OD X: [] ↦ A holds where the receiver is Π*X. Singleton classes are
// trivially constant and are not present in a stripped partition.
func (p *Partition) ConstantInClasses(col []int32) bool {
	for _, cls := range p.Classes {
		first := col[cls[0]]
		for _, row := range cls[1:] {
			if col[row] != first {
				return false
			}
		}
	}
	return true
}

// Refines reports whether p refines q: every class of p is contained in some
// class of q. Both must be partitions over the same relation. Singleton
// classes trivially refine anything, so only stripped classes are checked.
func (p *Partition) Refines(q *Partition) bool {
	if p.NumRows != q.NumRows {
		return false
	}
	probe := make([]int32, q.NumRows)
	for i := range probe {
		probe[i] = -1
	}
	for ci, cls := range q.Classes {
		for _, row := range cls {
			probe[row] = int32(ci)
		}
	}
	for _, cls := range p.Classes {
		want := probe[cls[0]]
		if want < 0 {
			return false
		}
		for _, row := range cls[1:] {
			if probe[row] != want {
				return false
			}
		}
	}
	return true
}

// SwapWitness identifies a pair of rows (s, t) within one equivalence class
// such that s precedes t on colA but t precedes s on colB — a "swap" in the
// sense of Definition 5, restricted to the context defining this partition.
type SwapWitness struct {
	RowS, RowT int
}

// HasSwap reports whether some equivalence class of the context partition
// contains a swap between colA and colB, i.e. whether the canonical OD
// X: A ~ B is violated (the receiver being Π*X). It runs one sorted scan per
// class: rows are ordered by their A-rank, and B-ranks must never decrease
// across strictly increasing A-ranks.
func (p *Partition) HasSwap(colA, colB []int32) bool {
	_, found := p.findSwap(colA, colB, false)
	return found
}

// FindSwap returns a witness pair for a swap between colA and colB within the
// context partition, if one exists.
func (p *Partition) FindSwap(colA, colB []int32) (SwapWitness, bool) {
	return p.findSwap(colA, colB, true)
}

func (p *Partition) findSwap(colA, colB []int32, wantWitness bool) (SwapWitness, bool) {
	type pair struct{ a, b, row int32 }
	var buf []pair
	for _, cls := range p.Classes {
		buf = buf[:0]
		for _, row := range cls {
			buf = append(buf, pair{a: colA[row], b: colB[row], row: row})
		}
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].a != buf[j].a {
				return buf[i].a < buf[j].a
			}
			return buf[i].b < buf[j].b
		})
		// Scan groups of equal A-rank. Every B-rank in the current group must
		// be >= the maximum B-rank seen in strictly smaller A-groups.
		runningMax := int32(-1)
		var runningMaxRow int32 = -1
		i := 0
		for i < len(buf) {
			j := i
			groupMax := buf[i].b
			groupMaxRow := buf[i].row
			for j < len(buf) && buf[j].a == buf[i].a {
				if buf[j].b < runningMax && runningMax >= 0 {
					if wantWitness {
						return SwapWitness{RowS: int(runningMaxRow), RowT: int(buf[j].row)}, true
					}
					return SwapWitness{}, true
				}
				if buf[j].b > groupMax {
					groupMax = buf[j].b
					groupMaxRow = buf[j].row
				}
				j++
			}
			if groupMax > runningMax {
				runningMax = groupMax
				runningMaxRow = groupMaxRow
			}
			i = j
		}
	}
	return SwapWitness{}, false
}

// SplitWitness identifies a pair of rows that agree on the context X but
// disagree on attribute A — a "split" in the sense of Definition 4, i.e. a
// violation of the FD X → A (equivalently of the canonical OD X: [] ↦ A).
type SplitWitness struct {
	RowS, RowT int
}

// FindSplit returns a witness pair for a violation of X: [] ↦ A within the
// context partition, if one exists.
func (p *Partition) FindSplit(col []int32) (SplitWitness, bool) {
	for _, cls := range p.Classes {
		first := col[cls[0]]
		for _, row := range cls[1:] {
			if col[row] != first {
				return SplitWitness{RowS: int(cls[0]), RowT: int(row)}, true
			}
		}
	}
	return SplitWitness{}, false
}
