// Package partition implements the partition machinery of Section 4.6 of the
// paper: equivalence-class partitions ΠX over attribute sets, stripped
// partitions Π*X (singleton classes removed), linear-time partition products,
// and the sorted-scan swap check used to validate order-compatibility ODs
// X: A ~ B. All operations work on rank-encoded columns (see package
// relation), so value comparisons are integer comparisons.
//
// # Memory model
//
// A Partition is stored flat: one rows arena holding the row indexes of every
// stripped class back to back, plus a CSR-style offsets index delimiting the
// classes. A partition therefore costs exactly two backing arrays no matter
// how many classes it has, its classes are contiguous in memory (products and
// scans walk the arena cache-linearly), and its retained footprint is
// byte-exact: FootprintBytes reports it, and the lattice.PartitionStore
// charges entries with it.
//
// # Immutability
//
// Partitions are immutable after construction. Class returns a view into the
// shared arena — callers must not modify it. Every algorithm in this
// repository treats partitions as read-only, which is what allows one
// partition to be shared freely between worker goroutines and between
// discovery runs through a PartitionStore; use Clone for a private mutable
// copy (tests only).
package partition

import "fmt"

// Partition is a stripped partition Π*X of the tuples of a relation with
// respect to some attribute set X: the list of equivalence classes of size at
// least two. Singleton classes are omitted because they can neither falsify a
// constancy OD X: [] ↦ A nor an order-compatibility OD X: A ~ B (Lemma 14).
type Partition struct {
	// NumRows is the total number of tuples in the underlying relation,
	// including those in the dropped singleton classes.
	NumRows int
	// rows is the arena: the row indexes of all stripped classes, class by
	// class, ascending within each class.
	rows []int32
	// offsets delimits the classes: class i is rows[offsets[i]:offsets[i+1]],
	// so len(offsets) is NumClasses()+1 (a single 0 for an empty partition).
	offsets []int32
}

// fromClasses builds a flat partition from materialized class slices. It is
// the bridge used by the naive oracles and in-package tests; the production
// constructors (FromColumn, FromConstant, ProductWith) emit into the flat
// buffers directly.
func fromClasses(numRows int, classes [][]int32) *Partition {
	size := 0
	for _, c := range classes {
		size += len(c)
	}
	p := &Partition{
		NumRows: numRows,
		rows:    make([]int32, 0, size),
		offsets: make([]int32, 1, len(classes)+1),
	}
	for _, c := range classes {
		p.rows = append(p.rows, c...)
		p.offsets = append(p.offsets, int32(len(p.rows)))
	}
	return p
}

// FromColumn builds the stripped partition of a single rank-encoded column.
// Because ranks are dense (0..cardinality-1), the grouping is a two-pass
// counting sort straight into the flat arena; the resulting classes are
// ordered by rank, so the partition of a single attribute doubles as the
// sorted partition τA of Section 4.6.
func FromColumn(col []int32, cardinality int) *Partition {
	if cardinality < 0 {
		cardinality = 0
	}
	counts := make([]int32, cardinality)
	for _, v := range col {
		if int(v) >= len(counts) {
			// Defensive growth: callers normally pass the true cardinality.
			// Grow geometrically so a caller that underestimates badly costs
			// O(log max-rank) regrows, not one per out-of-range rank.
			counts = growInt32(counts, int(v)+1)
		}
		counts[v]++
	}
	size, numClasses := 0, 0
	for _, c := range counts {
		if c >= 2 {
			size += int(c)
			numClasses++
		}
	}
	p := &Partition{
		NumRows: len(col),
		rows:    make([]int32, size),
		offsets: make([]int32, numClasses+1),
	}
	// Rewrite counts[v] into the arena write cursor of v's class (-1 for
	// singleton ranks), recording class start offsets along the way.
	pos, ci := int32(0), 0
	for v, c := range counts {
		if c >= 2 {
			p.offsets[ci] = pos
			ci++
			counts[v] = pos
			pos += c
		} else {
			counts[v] = -1
		}
	}
	p.offsets[numClasses] = pos
	for row, v := range col {
		cur := counts[v]
		if cur < 0 {
			continue
		}
		p.rows[cur] = int32(row)
		counts[v] = cur + 1
	}
	return p
}

// growInt32 returns a zero-extended copy of s with room for at least need
// elements, at least doubling the length so repeated growth amortizes.
func growInt32(s []int32, need int) []int32 {
	newLen := 2 * len(s)
	if newLen < need {
		newLen = need
	}
	if newLen < 4 {
		newLen = 4
	}
	grown := make([]int32, newLen)
	copy(grown, s)
	return grown
}

// FromConstant returns the partition for the empty attribute set: all tuples
// fall into one equivalence class.
func FromConstant(numRows int) *Partition {
	p := &Partition{NumRows: numRows, offsets: []int32{0}}
	if numRows >= 2 {
		p.rows = make([]int32, numRows)
		for i := range p.rows {
			p.rows[i] = int32(i)
		}
		p.offsets = append(p.offsets, int32(numRows))
	}
	return p
}

// NumClasses returns the number of stripped (size >= 2) classes.
func (p *Partition) NumClasses() int {
	if len(p.offsets) == 0 {
		return 0
	}
	return len(p.offsets) - 1
}

// Class returns the i-th stripped class: row indexes in ascending order. The
// returned slice is a view into the partition's arena and must be treated as
// read-only.
func (p *Partition) Class(i int) []int32 {
	return p.rows[p.offsets[i]:p.offsets[i+1]]
}

// ForEachClass calls fn once per stripped class, in class order. The slice
// passed to fn is a read-only view into the arena, valid only for the call.
func (p *Partition) ForEachClass(fn func(cls []int32)) {
	for i, n := 0, p.NumClasses(); i < n; i++ {
		fn(p.Class(i))
	}
}

// Size returns the total number of tuples contained in stripped classes.
func (p *Partition) Size() int { return len(p.rows) }

// FootprintBytes returns the exact number of bytes the partition retains for
// class data: the rows arena plus the class-offset index (4 bytes per entry).
// It is the unit the lattice.PartitionStore charges cached entries with.
func (p *Partition) FootprintBytes() int { return 4 * (len(p.rows) + len(p.offsets)) }

// Error returns e(ΠX) = ||Π*X|| - |Π*X|, the number of tuples that would have
// to be removed to make X a superkey. For partitions over the same relation,
// the FD X → A holds iff Error(ΠX) == Error(ΠXA) (the TANE criterion), because
// ΠXA refines ΠX.
func (p *Partition) Error() int { return p.Size() - p.NumClasses() }

// NumClassesUnstripped returns |ΠX|, the number of equivalence classes
// including singletons.
func (p *Partition) NumClassesUnstripped() int {
	return p.NumRows - p.Size() + p.NumClasses()
}

// IsSuperkey reports whether X is a superkey: every equivalence class is a
// singleton, i.e. the stripped partition is empty.
func (p *Partition) IsSuperkey() bool { return len(p.rows) == 0 }

// Clone returns a deep copy of the partition with its own arena.
func (p *Partition) Clone() *Partition {
	out := &Partition{
		NumRows: p.NumRows,
		rows:    make([]int32, len(p.rows)),
		offsets: make([]int32, len(p.offsets)),
	}
	copy(out.rows, p.rows)
	copy(out.offsets, p.offsets)
	return out
}

// String summarizes the partition for diagnostics.
func (p *Partition) String() string {
	return fmt.Sprintf("Partition{rows=%d classes=%d size=%d}", p.NumRows, p.NumClasses(), p.Size())
}

// ConstantInClasses reports whether attribute col (rank-encoded) is constant
// within every equivalence class of the partition, i.e. whether the canonical
// OD X: [] ↦ A holds where the receiver is Π*X. Singleton classes are
// trivially constant and are not present in a stripped partition.
func (p *Partition) ConstantInClasses(col []int32) bool {
	for ci, n := 0, p.NumClasses(); ci < n; ci++ {
		cls := p.Class(ci)
		first := col[cls[0]]
		for _, row := range cls[1:] {
			if col[row] != first {
				return false
			}
		}
	}
	return true
}

// Refines reports whether p refines q: every class of p is contained in some
// class of q. Both must be partitions over the same relation. Singleton
// classes trivially refine anything, so only stripped classes are checked.
func (p *Partition) Refines(q *Partition) bool {
	if p.NumRows != q.NumRows {
		return false
	}
	probe := make([]int32, q.NumRows)
	for i := range probe {
		probe[i] = -1
	}
	for ci, n := 0, q.NumClasses(); ci < n; ci++ {
		for _, row := range q.Class(ci) {
			probe[row] = int32(ci)
		}
	}
	for ci, n := 0, p.NumClasses(); ci < n; ci++ {
		cls := p.Class(ci)
		want := probe[cls[0]]
		if want < 0 {
			return false
		}
		for _, row := range cls[1:] {
			if probe[row] != want {
				return false
			}
		}
	}
	return true
}

// SplitWitness identifies a pair of rows that agree on the context X but
// disagree on attribute A — a "split" in the sense of Definition 4, i.e. a
// violation of the FD X → A (equivalently of the canonical OD X: [] ↦ A).
type SplitWitness struct {
	RowS, RowT int
}

// FindSplit returns a witness pair for a violation of X: [] ↦ A within the
// context partition, if one exists.
func (p *Partition) FindSplit(col []int32) (SplitWitness, bool) {
	for ci, n := 0, p.NumClasses(); ci < n; ci++ {
		cls := p.Class(ci)
		first := col[cls[0]]
		for _, row := range cls[1:] {
			if col[row] != first {
				return SplitWitness{RowS: int(cls[0]), RowT: int(row)}, true
			}
		}
	}
	return SplitWitness{}, false
}
