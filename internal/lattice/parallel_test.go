package lattice

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(1); got != 1 {
		t.Errorf("ResolveWorkers(1) = %d", got)
	}
	if got := ResolveWorkers(7); got != 7 {
		t.Errorf("ResolveWorkers(7) = %d", got)
	}
	if got := ResolveWorkers(-2); got != 1 {
		t.Errorf("ResolveWorkers(-2) = %d", got)
	}
	if got := ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d, want >= 1", got)
	}
}

func TestParallelForCoversAllItems(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		const n = 1000
		hits := make([]int32, n)
		var mu sync.Mutex
		workersSeen := map[int]bool{}
		ParallelFor(w, n, func(wk, i int) {
			mu.Lock()
			hits[i]++
			workersSeen[wk] = true
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("w=%d: item %d processed %d times", w, i, h)
			}
		}
		for wk := range workersSeen {
			if wk < 0 || wk >= w {
				t.Fatalf("w=%d: worker index %d out of range", w, wk)
			}
		}
	}
	// Zero items must not call fn at all.
	ParallelFor(4, 0, func(_, _ int) { t.Fatal("fn called for empty range") })
	// w <= 0 degenerates to the inline sequential loop, per the contract.
	for _, w := range []int{0, -2} {
		count := 0
		ParallelFor(w, 5, func(wk, _ int) {
			if wk != 0 {
				t.Fatalf("w=%d: worker index %d on the sequential path", w, wk)
			}
			count++
		})
		if count != 5 {
			t.Fatalf("w=%d: %d items processed, want 5", w, count)
		}
	}
}

// TestParallelForChunkedCoversAllItems exercises the chunked handout with
// chunk sizes that do and do not divide the item count.
func TestParallelForChunkedCoversAllItems(t *testing.T) {
	for _, tc := range []struct{ w, n, chunk int }{
		{2, 1000, 7}, {4, 1000, 64}, {4, 63, 64}, {3, 10, 1}, {8, 1000, 0},
	} {
		hits := make([]atomic.Int32, tc.n)
		parallelForChunk(tc.w, tc.n, tc.chunk, nil, nil, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("w=%d n=%d chunk=%d: item %d processed %d times", tc.w, tc.n, tc.chunk, i, got)
			}
		}
	}
}

func TestChunkFor(t *testing.T) {
	if got := chunkFor(4, 10); got != 1 {
		t.Errorf("chunkFor(4, 10) = %d, want 1 (small levels stay maximally balanced)", got)
	}
	if got := chunkFor(4, 100_000); got != 64 {
		t.Errorf("chunkFor(4, 100000) = %d, want capped at 64", got)
	}
	if got := chunkFor(4, 1024); got < 1 || got > 64 {
		t.Errorf("chunkFor(4, 1024) = %d, want within [1, 64]", got)
	}
}

// BenchmarkParallelForHandout measures the cursor-contention effect the
// chunked handout amortizes: many near-empty items (the shape of key-pruned
// superkey levels) dispatched one per atomic fetch versus in batches. On
// multi-core hardware the chunked series should win clearly; on a single CPU
// the two mostly coincide.
func BenchmarkParallelForHandout(b *testing.B) {
	const n = 1 << 17
	out := make([]int32, n)
	for _, w := range []int{2, 4, 8} {
		for _, cfg := range []struct {
			name  string
			chunk int
		}{{"chunk=1", 1}, {"chunk=auto", chunkFor(w, n)}} {
			b.Run("workers="+strconv.Itoa(w)+"/"+cfg.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					parallelForChunk(w, n, cfg.chunk, nil, nil, func(_, item int) {
						out[item] = int32(item) // trivially cheap per-item work
					})
				}
			})
		}
	}
}
