package lattice

import "time"

// Budget bounds the resources one discovery run may consume. It is the
// generalization of the wall-clock/node budget the ORDER baseline always had
// (its factorial search space forced the issue early); with the unified
// engine every level-wise algorithm honors the same two knobs. The zero value
// means "no budget".
//
// A run that exhausts its budget is interrupted, not failed: it stops
// cooperatively, keeps everything discovered so far and reports
// Stats.Interrupted, so a server can always afford to issue a discovery call
// on an arbitrarily wide schema.
type Budget struct {
	// Timeout interrupts the run after the given wall-clock duration
	// (0 = none). The deadline is checked at level barriers and between
	// ParallelFor chunk handouts, so the interrupt latency is bounded by one
	// chunk of work, not one lattice level.
	Timeout time.Duration
	// MaxNodes interrupts the run once it has visited this many lattice
	// nodes (0 = none). It is enforced at level barriers: the level that
	// crosses the bound completes and no further level starts.
	MaxNodes int
}

// IsZero reports whether the budget imposes no bound at all.
func (b Budget) IsZero() bool { return b.Timeout <= 0 && b.MaxNodes <= 0 }

// ProgressEvent is one per-level progress report of a traversal, delivered to
// Config.OnProgress at every level barrier. Long discoveries on wide schemas
// can run for minutes; the event stream is what lets a caller render a
// progress bar, enforce its own policies, or decide to cancel the context.
type ProgressEvent struct {
	// Level is the lattice level that just completed (for the set lattice,
	// the size of the attribute sets processed; for ORDER's list lattice, the
	// length of the attribute lists).
	Level int
	// Nodes is the number of lattice nodes visited at this level.
	Nodes int
	// NodesVisited is the cumulative number of nodes visited so far.
	NodesVisited int
	// PartitionsCached is the number of stripped partitions currently
	// retained: the shared store's size when one is configured, otherwise the
	// run's own retention window. Zero for algorithms that do not use
	// partitions (ORDER).
	PartitionsCached int
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
}
