package lattice

import "time"

// Budget bounds the resources one discovery run may consume. It is the
// generalization of the wall-clock/node budget the ORDER baseline always had
// (its factorial search space forced the issue early); with the unified
// engine every level-wise algorithm honors the same two knobs. The zero value
// means "no budget".
//
// A run that exhausts its budget is interrupted, not failed: it stops
// cooperatively, keeps everything discovered so far and reports
// Stats.Interrupted, so a server can always afford to issue a discovery call
// on an arbitrarily wide schema.
type Budget struct {
	// Timeout interrupts the run after the given wall-clock duration
	// (0 = none). The deadline is checked at level barriers and between
	// ParallelFor chunk handouts, so the interrupt latency is bounded by one
	// chunk of work, not one lattice level.
	Timeout time.Duration
	// MaxNodes interrupts the run once it has visited this many lattice
	// nodes (0 = none). Under the barrier scheduler it is enforced at level
	// barriers: the level that crosses the bound completes and no further
	// level starts. Under the DAG scheduler it is enforced at node handout:
	// at most MaxNodes nodes are ever dispatched.
	MaxNodes int
}

// IsZero reports whether the budget imposes no bound at all.
func (b Budget) IsZero() bool { return b.Timeout <= 0 && b.MaxNodes <= 0 }

// ProgressEvent is one per-level progress report of a traversal, delivered to
// Config.OnProgress at every level barrier. Long discoveries on wide schemas
// can run for minutes; the event stream is what lets a caller render a
// progress bar, enforce its own policies, or decide to cancel the context.
type ProgressEvent struct {
	// Level is the lattice level that just completed (for the set lattice,
	// the size of the attribute sets processed; for ORDER's list lattice, the
	// length of the attribute lists).
	Level int
	// Nodes is the number of lattice nodes visited at this level.
	Nodes int
	// NodesVisited is the cumulative number of nodes visited so far.
	NodesVisited int
	// PartitionsCached is the number of stripped partitions currently
	// retained: the shared store's size when one is configured, otherwise the
	// run's own retention window. Zero for algorithms that do not use
	// partitions (ORDER).
	PartitionsCached int
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Slice identifies the condition slice a conditional-discovery event
	// reports on (nil for unconditional traversals and for the global pass of
	// a conditional run). Conditional discovery emits one event per completed
	// slice with Level = the slice-progress marker; Slice carries which
	// condition that was.
	Slice *SliceInfo
}

// SliceInfo describes one condition slice of a conditional discovery run: the
// equality condition defining it and how many rows satisfy it.
type SliceInfo struct {
	// Attr is the condition attribute (column index) and Value the encoded
	// value the slice fixes it to.
	Attr  int
	Value int32
	// Rows is the number of rows in the slice.
	Rows int
}
