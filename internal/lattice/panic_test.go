package lattice

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// Containment contract under test: a panic anywhere inside the engine — a
// visit function, a partition product, the DAG scheduler's own dispatch and
// steal paths — must (a) not crash the process, (b) surface through Err() as
// a *PanicError carrying the stack and, where known, the node, (c) mark the
// run interrupted, and (d) leave no worker goroutine behind.

func assertContained(t *testing.T, eng *Engine, wantNode bool) *PanicError {
	t.Helper()
	err := eng.Err()
	if err == nil {
		t.Fatal("Err() = nil after a worker panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Err() = %v (%T), want *PanicError", err, err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	if wantNode && !pe.HasNode {
		t.Errorf("PanicError has no node context: %v", pe)
	}
	if pe.HasNode && !strings.Contains(pe.Error(), pe.Node.String()) {
		t.Errorf("Error() %q does not name node %v", pe.Error(), pe.Node)
	}
	return pe
}

// assertInterrupted is the traversal half of the contract: a run that was cut
// short by a contained panic must not pretend its stats describe a complete
// traversal. (Standalone ParallelFor calls have no traversal to mark.)
func assertInterrupted(t *testing.T, eng *Engine) {
	t.Helper()
	if !eng.Stats().Interrupted {
		t.Error("panicked run not marked interrupted")
	}
}

// TestRunNodesVisitPanicContained: a panic thrown by the visit function is
// contained under both schedulers at both worker counts, with the panicking
// node attached.
func TestRunNodesVisitPanicContained(t *testing.T) {
	leakcheck.Check(t)
	enc := encodeFlight(t, 60, 5)
	for _, sched := range []Scheduler{SchedulerBarrier, SchedulerDAG} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s_w%d", sched, workers), func(t *testing.T) {
				eng, err := New(enc, Config{Workers: workers, Scheduler: sched})
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				eng.RunNodes(nil, func(_, _ int, x bitset.AttrSet, _ []any) (any, bool) {
					n++
					if n == 3 {
						panic("poisoned visit")
					}
					return nil, false
				})
				pe := assertContained(t, eng, true)
				assertInterrupted(t, eng)
				if !strings.Contains(fmt.Sprint(pe.Value), "poisoned visit") {
					t.Errorf("recovered value = %v, want the poisoned-visit panic", pe.Value)
				}
			})
		}
	}
}

// TestRunVisitPanicContained: same for the level-visit Run API, where the
// panic unwinds the traversal goroutine itself and is caught by the
// trapTraversal catch-all (no node context — the visit owns a whole level).
func TestRunVisitPanicContained(t *testing.T) {
	leakcheck.Check(t)
	enc := encodeFlight(t, 60, 5)
	eng, err := New(enc, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(func(l int, nodes []bitset.AttrSet) []bitset.AttrSet {
		if l == 2 {
			panic("poisoned level visit")
		}
		return nodes
	})
	assertContained(t, eng, false)
	assertInterrupted(t, eng)
}

// TestParallelForWorkerPanicContained: a panic inside an Engine.ParallelFor
// body (the barrier scheduler's chunk workers) lands in trapWorker, stops the
// sibling workers, and surfaces through Err().
func TestParallelForWorkerPanicContained(t *testing.T) {
	leakcheck.Check(t)
	enc := encodeFlight(t, 60, 5)
	eng, err := New(enc, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.ParallelFor(1000, func(wk, i int) {
		if i == 137 {
			panic("poisoned item")
		}
	})
	// No assertInterrupted here: a standalone ParallelFor runs outside any
	// traversal, so there is no run for the panic to interrupt — the error
	// surfaces, the stats don't change.
	assertContained(t, eng, false)
}

// TestInjectedFaultsContained: panics fired by the injection points inside
// the engine itself — partition products, DAG dispatch, DAG steal — are
// contained exactly like visit panics. These points sit on paths the visit
// function never sees (the steal path runs while the scheduler mutex is
// held), so they are the reason the scheduler needs its own recovery frames.
func TestInjectedFaultsContained(t *testing.T) {
	enc := encodeFlight(t, 60, 5)
	cases := []struct {
		point faultinject.Point
		sched Scheduler
	}{
		{faultinject.PartitionProduct, SchedulerBarrier},
		{faultinject.PartitionProduct, SchedulerDAG},
		{faultinject.NodeDispatch, SchedulerDAG},
		{faultinject.NodeSteal, SchedulerDAG},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			if tc.point == faultinject.NodeSteal && workers == 1 {
				continue // a single worker never steals
			}
			t.Run(fmt.Sprintf("%s_%s_w%d", tc.point, tc.sched, workers), func(t *testing.T) {
				leakcheck.Check(t)
				plan := faultinject.NewPlan(faultinject.Rule{
					Point:  tc.point,
					Action: faultinject.ActionPanic,
					After:  2,
					Times:  1,
				})
				defer faultinject.Enable(plan)()
				eng, err := New(enc, Config{Workers: workers, Scheduler: tc.sched})
				if err != nil {
					t.Fatal(err)
				}
				eng.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) { return nil, false })
				if plan.Fired() == 0 {
					t.Skip("injection point not reached in this configuration")
				}
				assertContained(t, eng, false)
				assertInterrupted(t, eng)
			})
		}
	}
}

// TestInjectedStoreFaultsDegrade: error-action faults at the store points
// have defined degradation paths, not failure paths — a failing Get is a
// miss (the partition is recomputed), a failing evict leaves the store
// temporarily over its bound. Either way the run completes with the same
// node set as a clean run.
func TestInjectedStoreFaultsDegrade(t *testing.T) {
	leakcheck.Check(t)
	enc := encodeFlight(t, 60, 5)
	clean, err := New(enc, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) { return nil, false })
	want := clean.Stats().NodesVisited

	for _, point := range []faultinject.Point{faultinject.StoreGet, faultinject.StoreEvict} {
		t.Run(string(point), func(t *testing.T) {
			plan := faultinject.NewPlan(faultinject.Rule{Point: point, Action: faultinject.ActionError})
			defer faultinject.Enable(plan)()
			// A tight store bound forces evictions so StoreEvict actually
			// fires (at 1 KiB this workload's 3.4 KiB of partitions evict
			// ~24 times; at 4 KiB everything fits and nothing ever evicts).
			store := NewPartitionStore(1024)
			eng, err := New(enc, Config{Workers: 2, Store: store})
			if err != nil {
				t.Fatal(err)
			}
			eng.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) { return nil, false })
			if plan.Fired() == 0 {
				t.Fatalf("no %s faults fired", point)
			}
			if err := eng.Err(); err != nil {
				t.Fatalf("store fault escalated to run failure: %v", err)
			}
			st := eng.Stats()
			if st.Interrupted {
				t.Fatal("degraded run marked interrupted")
			}
			if st.NodesVisited != want {
				t.Fatalf("degraded run visited %d nodes, clean run %d", st.NodesVisited, want)
			}
		})
	}
}

// TestSchedulerSuiteLeaks applies the leak gate to a plain full traversal
// under both schedulers, so a regression that parks workers on the exit path
// of a *successful* run is caught here rather than only under faults.
func TestSchedulerSuiteLeaks(t *testing.T) {
	leakcheck.Check(t)
	enc := encodeFlight(t, 60, 5)
	for _, sched := range []Scheduler{SchedulerBarrier, SchedulerDAG} {
		eng, err := New(enc, Config{Workers: 4, Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		eng.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) { return nil, false })
		if err := eng.Err(); err != nil {
			t.Fatal(err)
		}
	}
}
