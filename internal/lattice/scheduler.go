package lattice

import (
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/partition"
)

// Scheduler selects how RunNodes orders node work.
type Scheduler string

const (
	// SchedulerDAG is the dependency-aware work-stealing scheduler: a
	// level-(l+1) node becomes runnable the moment all l+1 of its immediate
	// subsets have been visited and none pruned it, independent of the rest
	// of level l. Runnable nodes live in per-worker deques with stealing, and
	// the cancellation/budget signals are folded into node handout, so the
	// interrupt latency is at most one node. This is the default.
	SchedulerDAG Scheduler = "dag"
	// SchedulerBarrier is the level-synchronous path: no node at level l+1
	// starts until every node at level l has been visited and the whole next
	// level has been generated. Kept as an option during the transition and
	// as the differential-testing oracle for the DAG scheduler.
	SchedulerBarrier Scheduler = "barrier"
)

// resolve maps the zero value onto the default scheduler.
func (s Scheduler) resolve() Scheduler {
	if s == "" {
		return SchedulerDAG
	}
	return s
}

// Valid reports whether s names a known scheduler; the empty value is valid
// and selects the default.
func (s Scheduler) Valid() bool {
	return s == "" || s == SchedulerDAG || s == SchedulerBarrier
}

// NodeVisit is the node-reentrant visit callback of RunNodes: it validates
// one lattice node and returns the node's result (the algorithm's per-node
// state, e.g. FASTOD's candidate sets) plus its pruning decision. A pruned
// node generates no supersets.
//
// deps carries the results of the node's immediate subsets in ascending order
// of the removed attribute: deps[k] is the result of x with its (k+1)-th
// smallest attribute removed. For level 1 it is [root]. The slice is only
// valid for the duration of the call and must not be retained.
//
// The callback must be safe to run concurrently with itself on different
// nodes, from the given worker goroutine (worker indexes its Scratch and any
// per-worker shards). Under the DAG scheduler, nodes of DIFFERENT levels run
// concurrently too — the only ordering guarantee is that every immediate
// subset of x has completed before x starts. Emission order is therefore
// schedule-dependent; algorithms keep deterministic output by sorting their
// results in a total order at the end of the run.
type NodeVisit func(worker, level int, x bitset.AttrSet, deps []any) (result any, pruned bool)

// RunNodes executes the traversal through the node-reentrant API, under the
// configured scheduler. Both schedulers implement the same contract: visit
// runs exactly once per apriori-reachable node (every immediate subset
// visited, none pruned it), after the node's stripped partition and those of
// its two preceding levels are available through Partition, and with the
// immediate-subset results as deps. Pruning, partition derivation (store-
// first when a store is shared), budget/cancellation and progress reporting
// are handled by the engine.
func (e *Engine) RunNodes(root any, visit NodeVisit) {
	if e.scheduler == SchedulerBarrier {
		e.runNodesBarrier(root, visit)
		return
	}
	e.runNodesDAG(root, visit)
}

// runNodesBarrier adapts the node-reentrant API onto the level-callback Run:
// each level's nodes are visited through the engine's interruptible
// ParallelFor with deps looked up in the previous level's result map, and the
// per-node pruning decisions are folded into the survivor slice Run expects.
func (e *Engine) runNodesBarrier(root any, visit NodeVisit) {
	depsBuf := make([][]any, e.workers)
	for i := range depsBuf {
		depsBuf[i] = make([]any, 0, e.numAttrs)
	}
	var resPrev map[bitset.AttrSet]any
	e.Run(func(l int, level []bitset.AttrSet) []bitset.AttrSet {
		results := make([]any, len(level))
		pruned := make([]bool, len(level))
		e.ParallelFor(len(level), func(wk, i int) {
			x := level[i]
			// Recover here (inside the per-node frame) rather than relying on
			// the worker-level trap alone, so a panicking visit is recorded
			// with the node that poisoned it.
			defer func() {
				if rec := recover(); rec != nil {
					e.recordPanic(rec, x, true)
				}
			}()
			deps := depsBuf[wk][:0]
			if l == 1 {
				deps = append(deps, root)
			} else {
				x.ForEach(func(a int) {
					deps = append(deps, resPrev[x.Remove(a)])
				})
			}
			results[i], pruned[i] = visit(wk, l, x, deps)
		})
		resCur := make(map[bitset.AttrSet]any, len(level))
		for i, x := range level {
			resCur[x] = results[i]
		}
		resPrev = resCur
		if e.Interrupted() {
			// A partially visited level must not prune: the zero-value pruned
			// flags of unvisited nodes are meaningless, and Run stops before
			// the next level is visited anyway.
			return level
		}
		kept := level[:0]
		for i := range level {
			if !pruned[i] {
				kept = append(kept, level[i])
			}
		}
		return kept
	})
}

// partTable is the partition window of a DAG traversal: per-level maps under
// one RWMutex, read from visit callbacks on any worker and written when a
// node's partition is derived. Whole levels are dropped once no future node
// can read them (level j is released at levelDone(j+2)), mirroring the
// barrier path's three-level retention window.
type partTable struct {
	mu     sync.RWMutex
	levels []map[bitset.AttrSet]*partition.Partition
}

func newPartTable(numAttrs int) *partTable {
	t := &partTable{levels: make([]map[bitset.AttrSet]*partition.Partition, numAttrs+1)}
	for i := range t.levels {
		t.levels[i] = make(map[bitset.AttrSet]*partition.Partition)
	}
	return t
}

func (t *partTable) get(x bitset.AttrSet) *partition.Partition {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m := t.levels[x.Len()]
	if m == nil {
		return nil
	}
	return m[x]
}

func (t *partTable) put(level int, x bitset.AttrSet, p *partition.Partition) {
	t.mu.Lock()
	t.levels[level][x] = p
	t.mu.Unlock()
}

func (t *partTable) drop(level int) {
	if level < 0 {
		return
	}
	t.mu.Lock()
	t.levels[level] = nil
	t.mu.Unlock()
}

func (t *partTable) count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, m := range t.levels {
		n += len(m)
	}
	return n
}

// nodeTask is one runnable lattice node: its dependencies are complete and
// their results are captured, only its partition and visit remain.
type nodeTask struct {
	x     bitset.AttrSet
	level int
	deps  []any
}

// dagRun is the shared state of one DAG traversal. Scheduling state — the
// deques, the waiting-candidate counters, the level accounting — lives under
// one central mutex with a sync.Cond for idle workers. A lock-free deque
// would shave contention, but one handout costs tens of nanoseconds while the
// median node costs tens of microseconds (a partition product plus
// validation), so the mutex is ~3 orders of magnitude below the work it
// guards; the simplicity is worth far more than the cycles.
type dagRun struct {
	e     *Engine
	visit NodeVisit

	mu       sync.Mutex
	cond     *sync.Cond
	sleepers int
	done     bool

	// deques holds one LIFO stack per worker: owners push and pop at the
	// tail (depth-first, cache-warm), thieves take the OLDEST task from the
	// front of the longest victim deque — old tasks sit low in the lattice
	// and fan out the most work, so stealing them spreads load fastest.
	deques [][]*nodeTask

	// waiting[l] counts, per level-l candidate, how many of its immediate
	// subsets have completed unpruned. A candidate becomes runnable exactly
	// when the count reaches l — all l immediate subsets survived — which is
	// the same closure the barrier path's prefix-join + allSubsetsPresent
	// computes. The map for level l+1 is dropped wholesale at levelDone(l),
	// discarding candidates that can no longer complete.
	waiting []map[bitset.AttrSet]int

	// results[l] maps completed level-l nodes to their visit results; read
	// when a level-(l+1) candidate's deps are captured, released at
	// levelDone(l) (after which no level-l completion can create candidates).
	results []map[bitset.AttrSet]any

	// Per-level accounting for progress coherence under out-of-order
	// completion: outstanding counts created-but-not-completed tasks,
	// dispatchedAt counts nodes handed to visit, startedAt stamps the first
	// dispatch. levelDone(l) requires levelDone(l-1), so level events fire in
	// level order even when deep nodes finish before shallow stragglers.
	outstanding  []int
	dispatchedAt []int
	startedAt    []time.Time
	levelDone    []bool
	// visitedThrough accumulates dispatchedAt over completed levels: the
	// level-lv event reports the nodes visited through level lv — the
	// barrier's meaning of NodesVisited — not the global dispatch counter,
	// which double-reports deeper nodes already running and would repeat
	// across the levels of one completion cascade.
	visitedThrough int

	inflight     int  // tasks created and not yet completed
	dispatched   int  // nodes handed to visit (the node-budget meter)
	maxDispatchL int  // deepest level dispatched
	latched      bool // a handout refused to dispatch: interrupt or budget

	// Store hit/miss tallies, folded into Stats after the workers join. Kept
	// here (not in e.stats) because exec probes the store off-mutex.
	hits, misses int
}

// runNodesDAG executes the traversal under the dependency-aware scheduler.
func (e *Engine) runNodesDAG(root any, visit NodeVisit) {
	// Contain panics raised on the traversal goroutine itself (seeding, the
	// inline worker loop's scheduling state) and make sure the window table is
	// retired even when the folding code below is unwound past.
	defer e.trapTraversal()
	defer func() { e.dagParts = nil }()
	e.started = time.Now()
	if e.budget.Timeout > 0 {
		e.deadline = e.started.Add(e.budget.Timeout)
	}
	r := &dagRun{e: e, visit: visit}
	r.cond = sync.NewCond(&r.mu)
	r.deques = make([][]*nodeTask, e.workers)
	n := e.numAttrs
	r.waiting = make([]map[bitset.AttrSet]int, n+2)
	r.results = make([]map[bitset.AttrSet]any, n+2)
	for l := 1; l <= n; l++ {
		r.waiting[l] = make(map[bitset.AttrSet]int)
		r.results[l] = make(map[bitset.AttrSet]any)
	}
	r.outstanding = make([]int, n+2)
	r.dispatchedAt = make([]int, n+2)
	r.startedAt = make([]time.Time, n+2)
	r.levelDone = make([]bool, n+2)
	r.levelDone[0] = true // level 0 (the empty set) is conceptually complete

	// Seed: the empty-set partition, then one task per singleton (root is
	// every singleton's sole dependency). Tasks are dealt round-robin so all
	// workers start busy; the window table is published before any worker
	// goroutine exists.
	e.dagParts = newPartTable(n)
	empty := bitset.AttrSet(0)
	p0, ok := r.lookupStore(empty)
	if !ok {
		p0 = partition.FromConstant(e.enc.NumRows())
		e.storePut(empty, p0)
	}
	e.dagParts.put(0, empty, p0)
	for a := 0; a < n; a++ {
		t := &nodeTask{x: bitset.NewAttrSet(a), level: 1, deps: []any{root}}
		wk := a % e.workers
		r.deques[wk] = append(r.deques[wk], t)
	}
	r.outstanding[1] = n
	r.inflight = n

	if e.workers == 1 {
		r.worker(0)
	} else {
		var wg sync.WaitGroup
		for wk := 0; wk < e.workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				r.worker(wk)
			}(wk)
		}
		wg.Wait()
	}

	// Fold the run into the engine's stats. Interrupted means a handout
	// refused to dispatch (interrupt or budget latched while work remained)
	// or tasks were abandoned outright; a traversal that drains naturally
	// never latches, because done is observed before the signals are checked.
	e.stats.NodesVisited += r.dispatched
	if r.maxDispatchL > e.stats.MaxLevelReached {
		e.stats.MaxLevelReached = r.maxDispatchL
	}
	e.stats.PartitionHits += r.hits
	e.stats.PartitionMisses += r.misses
	if r.latched || r.inflight > 0 {
		e.stats.Interrupted = true
	}
}

// worker is one scheduling loop: pull a runnable node, derive its partition,
// visit it, complete it (possibly unlocking supersets), repeat. A panic
// escaping the loop (scheduling-state corruption, an injected handout fault)
// is recovered here so it can never kill the process: the failure is latched
// in the engine and the run aborted. Panics inside node processing are
// recovered one frame deeper, in exec, where the node is known.
func (r *dagRun) worker(wk int) {
	defer func() {
		if rec := recover(); rec != nil {
			r.e.recordPanic(rec, 0, false)
			r.abort()
		}
	}()
	for {
		t := r.next(wk)
		if t == nil {
			return
		}
		r.exec(wk, t)
	}
}

// abort ends the traversal after a contained panic: done wakes every sleeping
// worker, latched marks the run interrupted (abandoned tasks keep inflight
// positive as well). The failed node's task is never completed — its results
// may be inconsistent, and the engine's latched error supersedes them.
func (r *dagRun) abort() {
	r.mu.Lock()
	r.latched = true
	r.done = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// next hands out one runnable node, or nil when the traversal is over. The
// cancellation, deadline and node-budget checks live here, on every handout,
// so an interrupt abandons at most the nodes already running — latency is
// bounded by one node, not one level.
func (r *dagRun) next(wk int) *nodeTask {
	e := r.e
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.done {
			return nil
		}
		if e.checkInterrupt() || (e.budget.MaxNodes > 0 && r.dispatched >= e.budget.MaxNodes) {
			e.stop.Store(true)
			r.latched = true
			r.done = true
			r.cond.Broadcast()
			return nil
		}
		if t := r.pop(wk); t != nil {
			faultinject.Hit(faultinject.NodeDispatch)
			r.dispatched++
			r.dispatchedAt[t.level]++
			if r.startedAt[t.level].IsZero() {
				r.startedAt[t.level] = time.Now()
			}
			if t.level > r.maxDispatchL {
				r.maxDispatchL = t.level
			}
			return t
		}
		r.sleepers++
		r.cond.Wait()
		r.sleepers--
	}
}

// pop takes the newest task from the worker's own deque, else steals the
// oldest task from the longest other deque.
func (r *dagRun) pop(wk int) *nodeTask {
	if d := r.deques[wk]; len(d) > 0 {
		t := d[len(d)-1]
		d[len(d)-1] = nil
		r.deques[wk] = d[:len(d)-1]
		return t
	}
	victim, best := -1, 0
	for v, d := range r.deques {
		if len(d) > best {
			victim, best = v, len(d)
		}
	}
	if victim < 0 {
		return nil
	}
	d := r.deques[victim]
	faultinject.Hit(faultinject.NodeSteal)
	t := d[0]
	r.deques[victim] = d[1:]
	return t
}

// lookupStore probes the shared store, tallying hits and misses in the run
// (the engine's counters are not safe to touch off-mutex).
func (r *dagRun) lookupStore(x bitset.AttrSet) (*partition.Partition, bool) {
	if r.e.store == nil {
		return nil, false
	}
	p, ok := r.e.store.Get(x)
	r.mu.Lock()
	if ok {
		r.hits++
	} else {
		r.misses++
	}
	r.mu.Unlock()
	return p, ok
}

// exec derives the node's stripped partition (store-first: a hit skips the
// product entirely), publishes it to the window, runs the visit and completes
// the node.
func (r *dagRun) exec(wk int, t *nodeTask) {
	defer func() {
		if rec := recover(); rec != nil {
			r.e.recordPanic(rec, t.x, true)
			r.abort()
		}
	}()
	e := r.e
	p, ok := r.lookupStore(t.x)
	if !ok {
		if t.level == 1 {
			a := t.x.Attrs()[0]
			p = partition.FromColumn(e.enc.Column(a), e.enc.Cardinality[a])
		} else {
			// Same generator convention as the barrier path's prefix join:
			// the product of x minus its largest attribute with x minus its
			// second-largest. Both completed before x became runnable, and
			// their partitions stay in the window until x's level is done.
			attrs := t.x.Attrs()
			left := e.dagParts.get(t.x.Remove(attrs[len(attrs)-1]))
			right := e.dagParts.get(t.x.Remove(attrs[len(attrs)-2]))
			faultinject.Hit(faultinject.PartitionProduct)
			p = left.ProductWith(right, e.scratch[wk])
		}
		e.storePut(t.x, p)
	}
	e.dagParts.put(t.level, t.x, p)
	res, pruned := r.visit(wk, t.level, t.x, t.deps)
	r.complete(wk, t, res, pruned)
}

// complete records a node's result, turns its unpruned supersets runnable
// when their last dependency arrives, and advances level accounting.
func (r *dagRun) complete(wk int, t *nodeTask, res any, pruned bool) {
	e := r.e
	r.mu.Lock()
	defer r.mu.Unlock()
	l := t.level
	r.results[l][t.x] = res
	r.outstanding[l]--
	r.inflight--
	created := 0
	if !pruned && l < e.numAttrs && (e.maxLevel <= 0 || l < e.maxLevel) && !e.stopped() {
		w := r.waiting[l+1]
		resL := r.results[l]
		for a := 0; a < e.numAttrs; a++ {
			if t.x.Contains(a) {
				continue
			}
			c := t.x.Add(a)
			w[c]++
			if w[c] < l+1 {
				continue
			}
			// All l+1 immediate subsets completed unpruned: capture their
			// results as deps (ascending removed attribute, the NodeVisit
			// contract) and push the node on this worker's deque.
			delete(w, c)
			deps := make([]any, 0, l+1)
			c.ForEach(func(b int) {
				deps = append(deps, resL[c.Remove(b)])
			})
			r.deques[wk] = append(r.deques[wk], &nodeTask{x: c, level: l + 1, deps: deps})
			r.outstanding[l+1]++
			r.inflight++
			created++
		}
	}
	r.checkLevelDone(l)
	if r.inflight == 0 {
		r.done = true
		r.cond.Broadcast()
	} else if created > 0 && r.sleepers > 0 {
		if created == 1 {
			r.cond.Signal()
		} else {
			r.cond.Broadcast()
		}
	}
}

// checkLevelDone fires level completions in level order: level l is done once
// level l-1 is done (no more level-l candidates can appear) and no level-l
// task is outstanding. Completion releases state no future node can read —
// the waiting map one level up, the level's own results, the partition window
// two levels down — and emits the level's progress event. Events therefore
// stay monotone in Level and NodesVisited even when deep nodes finish before
// shallow stragglers; levels whose tasks were abandoned by an interrupt never
// fire (partial levels emit no event under the DAG scheduler).
func (r *dagRun) checkLevelDone(l int) {
	e := r.e
	for lv := l; lv <= e.numAttrs; lv++ {
		if !r.levelDone[lv-1] || r.outstanding[lv] != 0 {
			return
		}
		if r.levelDone[lv] {
			continue
		}
		r.levelDone[lv] = true
		r.waiting[lv+1] = nil
		r.results[lv] = nil
		e.dagParts.drop(lv - 2)
		r.visitedThrough += r.dispatchedAt[lv]
		if r.dispatchedAt[lv] == 0 {
			continue // an empty frontier level: nothing to report
		}
		if e.onEnd != nil {
			e.onEnd(lv, time.Since(r.startedAt[lv]))
		}
		if e.onProgress != nil {
			e.onProgress(ProgressEvent{
				Level:            lv,
				Nodes:            r.dispatchedAt[lv],
				NodesVisited:     r.visitedThrough,
				PartitionsCached: e.partitionsCached(),
				Elapsed:          time.Since(e.started),
			})
		}
	}
}
