package lattice

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitset"
)

// TestCancelMidLevel: cancelling the context from inside a visit callback's
// ParallelFor must stop the handout within one chunk — most of the level's
// items stay unprocessed — and terminate the traversal with Interrupted set,
// without visiting another level.
func TestCancelMidLevel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		enc := encodeFlight(t, 120, 10)
		ctx, cancel := context.WithCancel(context.Background())
		eng, err := New(enc, Config{Ctx: ctx, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var processed atomic.Int64
		levelsVisited := 0
		lastLevelItems := 0
		eng.Run(func(l int, nodes []bitset.AttrSet) []bitset.AttrSet {
			levelsVisited++
			if l < 2 {
				return nodes // let the lattice widen first
			}
			lastLevelItems = len(nodes)
			eng.ParallelFor(len(nodes), func(_, i int) {
				if processed.Add(1) == 3 {
					cancel()
				}
			})
			return nodes
		})
		if !eng.Stats().Interrupted {
			t.Fatalf("workers=%d: cancelled run not marked interrupted", workers)
		}
		if levelsVisited != 2 {
			t.Errorf("workers=%d: visited %d levels after mid-level cancel, want 2", workers, levelsVisited)
		}
		// Level 2 of a 10-attribute lattice has 45 nodes. The cancel fires at
		// item 3; the handout must stop within one chunk per worker, far
		// short of the full level.
		if n := int(processed.Load()); n >= lastLevelItems {
			t.Errorf("workers=%d: all %d items processed despite mid-level cancel", workers, n)
		}
		cancel()
	}
}

// TestNodeBudgetInterrupts: MaxNodes must stop the traversal at the level
// barrier after the bound is crossed, with coherent partial stats.
func TestNodeBudgetInterrupts(t *testing.T) {
	enc := encodeFlight(t, 100, 8)
	full, err := New(enc, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet { return nodes })
	if full.Stats().Interrupted {
		t.Fatal("unbudgeted run must not be interrupted")
	}

	budgeted, err := New(enc, Config{Workers: 1, Budget: Budget{MaxNodes: 10}})
	if err != nil {
		t.Fatal(err)
	}
	budgeted.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet { return nodes })
	st := budgeted.Stats()
	if !st.Interrupted {
		t.Fatal("over-budget run not marked interrupted")
	}
	if st.NodesVisited < 10 {
		t.Errorf("NodesVisited = %d, want >= MaxNodes before stopping", st.NodesVisited)
	}
	if st.NodesVisited >= full.Stats().NodesVisited {
		t.Errorf("budgeted run visited %d nodes, full run %d — budget had no effect",
			st.NodesVisited, full.Stats().NodesVisited)
	}
	// The level crossing the bound completes; nothing deeper starts. Level 2
	// (8+28 = 36 nodes) crosses a 10-node budget.
	if st.MaxLevelReached != 2 {
		t.Errorf("MaxLevelReached = %d, want 2", st.MaxLevelReached)
	}
}

// TestTimeoutInterrupts: an immediate deadline stops the run at the first
// barrier with Interrupted set and no error.
func TestTimeoutInterrupts(t *testing.T) {
	enc := encodeFlight(t, 100, 8)
	eng, err := New(enc, Config{Workers: 1, Budget: Budget{Timeout: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	visited := 0
	eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet {
		visited += len(nodes)
		return nodes
	})
	if !eng.Stats().Interrupted {
		t.Fatal("timed-out run not marked interrupted")
	}
	if visited != 0 {
		t.Errorf("visited %d nodes under a 1ns timeout, want 0", visited)
	}
}

// TestPreCancelledContext: a context cancelled before Run starts must
// interrupt before any node is visited.
func TestPreCancelledContext(t *testing.T) {
	enc := encodeFlight(t, 50, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := New(enc, Config{Ctx: ctx, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	visited := 0
	eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet {
		visited += len(nodes)
		return nodes
	})
	if !eng.Stats().Interrupted || visited != 0 {
		t.Errorf("pre-cancelled run: interrupted=%v visited=%d, want true/0",
			eng.Stats().Interrupted, visited)
	}
}

// TestProgressEvents: one event per completed level, with monotone cumulative
// counters and the retention window's partition count.
func TestProgressEvents(t *testing.T) {
	enc := encodeFlight(t, 80, 6)
	var events []ProgressEvent
	eng, err := New(enc, Config{
		Workers:    1,
		OnProgress: func(ev ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet { return nodes })
	st := eng.Stats()
	if len(events) != st.MaxLevelReached {
		t.Fatalf("got %d progress events, want one per level (%d)", len(events), st.MaxLevelReached)
	}
	for i, ev := range events {
		if ev.Level != i+1 {
			t.Errorf("event %d has level %d, want %d", i, ev.Level, i+1)
		}
		if ev.PartitionsCached == 0 {
			t.Errorf("event %d reports no cached partitions", i)
		}
		if i > 0 && ev.NodesVisited < events[i-1].NodesVisited+ev.Nodes {
			t.Errorf("event %d: NodesVisited %d not cumulative", i, ev.NodesVisited)
		}
	}
	if last := events[len(events)-1]; last.NodesVisited != st.NodesVisited {
		t.Errorf("final event NodesVisited = %d, engine stats %d", last.NodesVisited, st.NodesVisited)
	}
}

// TestInterruptedRunKeepsCompleteLevels: a node budget that stops the
// traversal mid-lattice must leave every fully visited level's results
// intact — the partial-output contract clients rely on.
func TestInterruptedRunKeepsCompleteLevels(t *testing.T) {
	enc := encodeFlight(t, 100, 8)
	type seen struct{ level, nodes int }
	var fullLevels, partialLevels []seen
	collect := func(out *[]seen) func(int, []bitset.AttrSet) []bitset.AttrSet {
		return func(l int, nodes []bitset.AttrSet) []bitset.AttrSet {
			*out = append(*out, seen{l, len(nodes)})
			return nodes
		}
	}
	full, err := New(enc, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full.Run(collect(&fullLevels))
	budgeted, err := New(enc, Config{Workers: 1, Budget: Budget{MaxNodes: 40}})
	if err != nil {
		t.Fatal(err)
	}
	budgeted.Run(collect(&partialLevels))
	if len(partialLevels) >= len(fullLevels) {
		t.Fatalf("budgeted run visited %d levels, full run %d", len(partialLevels), len(fullLevels))
	}
	for i, lv := range partialLevels {
		if lv != fullLevels[i] {
			t.Errorf("level %d of budgeted run = %+v, full run %+v", i, lv, fullLevels[i])
		}
	}
}
