package lattice

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bitset"
	"repro/internal/relation"
)

// runNodesRecord drives RunNodes under the given scheduler and worker count
// with a visit that (a) checks the deps contract — deps[k] is the result of x
// with its (k+1)-th smallest attribute removed, the root for singletons —
// (b) checks a partition is served for every visited node, and (c) prunes
// every node from level 2 up that contains both attributes 0 and 1, so the
// candidate closure (no superset of a pruned node) is exercised too. Results
// are the node sets themselves, which is what makes (a) checkable.
func runNodesRecord(t *testing.T, enc *relation.Encoded, sched Scheduler, workers int) (map[bitset.AttrSet]int, Stats) {
	t.Helper()
	eng, err := New(enc, Config{Workers: workers, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	visited := make(map[bitset.AttrSet]int)
	root := bitset.AttrSet(0)
	eng.RunNodes(root, func(wk, l int, x bitset.AttrSet, deps []any) (any, bool) {
		attrs := x.Attrs()
		if len(deps) != len(attrs) {
			t.Errorf("%s/w%d node %v: %d deps, want %d", sched, workers, x, len(deps), len(attrs))
		} else {
			for k, a := range attrs {
				if got, want := deps[k].(bitset.AttrSet), x.Remove(a); got != want {
					t.Errorf("%s/w%d node %v: deps[%d] = %v, want %v", sched, workers, x, k, got, want)
				}
			}
		}
		if p := eng.Partition(x); p == nil {
			t.Errorf("%s/w%d node %v: no partition served from window", sched, workers, x)
		}
		mu.Lock()
		if old, dup := visited[x]; dup {
			t.Errorf("%s/w%d node %v visited twice (levels %d and %d)", sched, workers, x, old, l)
		}
		visited[x] = l
		mu.Unlock()
		return x, l >= 2 && x.Contains(0) && x.Contains(1)
	})
	return visited, eng.Stats()
}

// TestRunNodesSchedulerDifferential: the DAG scheduler must visit exactly the
// node set of the barrier scheduler — same nodes, same levels, same stats — at
// every worker count, including under pruning.
func TestRunNodesSchedulerDifferential(t *testing.T) {
	enc := encodeFlight(t, 80, 6)
	ref, refStats := runNodesRecord(t, enc, SchedulerBarrier, 1)
	if len(ref) == 0 || len(ref) >= 1<<6-1 {
		t.Fatalf("reference run visited %d nodes; the pruning rule must bite for the test to mean anything", len(ref))
	}
	for _, sched := range []Scheduler{SchedulerBarrier, SchedulerDAG} {
		for _, workers := range []int{1, 4} {
			if sched == SchedulerBarrier && workers == 1 {
				continue
			}
			got, st := runNodesRecord(t, enc, sched, workers)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s/w%d: visited node set differs from barrier/w1 (%d vs %d nodes)",
					sched, workers, len(got), len(ref))
			}
			if st.NodesVisited != refStats.NodesVisited || st.MaxLevelReached != refStats.MaxLevelReached {
				t.Errorf("%s/w%d: stats (%d nodes, max level %d) differ from barrier/w1 (%d, %d)",
					sched, workers, st.NodesVisited, st.MaxLevelReached,
					refStats.NodesVisited, refStats.MaxLevelReached)
			}
			if st.Interrupted {
				t.Errorf("%s/w%d: unbudgeted run marked interrupted", sched, workers)
			}
		}
	}
}

// TestDAGNodeBudgetLatency: under the DAG scheduler MaxNodes is enforced at
// node handout, so at most MaxNodes nodes are ever dispatched — the barrier
// path, by contrast, finishes the level that crosses the bound. Partial levels
// must emit no progress events: every event describes a fully completed level.
func TestDAGNodeBudgetLatency(t *testing.T) {
	enc := encodeFlight(t, 100, 8)
	for _, workers := range []int{1, 4} {
		var events []ProgressEvent
		var evMu sync.Mutex
		eng, err := New(enc, Config{
			Workers:   workers,
			Scheduler: SchedulerDAG,
			Budget:    Budget{MaxNodes: 10},
			OnProgress: func(ev ProgressEvent) {
				evMu.Lock()
				events = append(events, ev)
				evMu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var visits atomic.Int64
		eng.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) {
			visits.Add(1)
			return nil, false
		})
		st := eng.Stats()
		if !st.Interrupted {
			t.Fatalf("workers=%d: over-budget DAG run not marked interrupted", workers)
		}
		if st.NodesVisited > 10 {
			t.Errorf("workers=%d: %d nodes dispatched, budget was 10 — handout must enforce the bound exactly",
				workers, st.NodesVisited)
		}
		if got := int(visits.Load()); got != st.NodesVisited {
			t.Errorf("workers=%d: %d visits but NodesVisited=%d", workers, got, st.NodesVisited)
		}
		for i, ev := range events {
			if ev.Level != i+1 {
				t.Errorf("workers=%d: event %d has level %d, want %d (complete levels only, in order)",
					workers, i, ev.Level, i+1)
			}
		}
	}
}

// TestDAGCancelLatency: cancelling the context from inside a visit stops
// dispatch at the next handout — at most workers-1 nodes (those already in
// flight on other workers) complete after the cancelling node.
func TestDAGCancelLatency(t *testing.T) {
	const cancelAt = 5
	for _, workers := range []int{1, 4} {
		enc := encodeFlight(t, 100, 8)
		ctx, cancel := context.WithCancel(context.Background())
		eng, err := New(enc, Config{Ctx: ctx, Workers: workers, Scheduler: SchedulerDAG})
		if err != nil {
			t.Fatal(err)
		}
		var visits atomic.Int64
		eng.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) {
			if visits.Add(1) == cancelAt {
				cancel()
			}
			return nil, false
		})
		if !eng.Stats().Interrupted {
			t.Fatalf("workers=%d: cancelled DAG run not marked interrupted", workers)
		}
		if got, max := int(visits.Load()), cancelAt+workers-1; got > max {
			t.Errorf("workers=%d: %d nodes visited after cancel at node %d, want <= %d (one in-flight node per other worker)",
				workers, got, cancelAt, max)
		}
		cancel()
	}
}

// TestDAGProgressCoherence: under out-of-order node completion the per-level
// events must still arrive in level order with NodesVisited equal to the
// cumulative node count through that level, ending at the engine total.
func TestDAGProgressCoherence(t *testing.T) {
	enc := encodeFlight(t, 80, 6)
	var events []ProgressEvent
	var mu sync.Mutex
	eng, err := New(enc, Config{
		Workers:   4,
		Scheduler: SchedulerDAG,
		OnProgress: func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) { return nil, false })
	st := eng.Stats()
	if len(events) != st.MaxLevelReached {
		t.Fatalf("got %d events, want one per level (%d)", len(events), st.MaxLevelReached)
	}
	sum := 0
	for i, ev := range events {
		if ev.Level != i+1 {
			t.Errorf("event %d has level %d, want %d", i, ev.Level, i+1)
		}
		sum += ev.Nodes
		if ev.NodesVisited != sum {
			t.Errorf("event %d: NodesVisited = %d, want cumulative %d", i, ev.NodesVisited, sum)
		}
		if ev.PartitionsCached == 0 {
			t.Errorf("event %d reports no cached partitions", i)
		}
	}
	if sum != st.NodesVisited {
		t.Errorf("events sum to %d nodes, engine visited %d", sum, st.NodesVisited)
	}
}

// TestSchedulerSharedStoreStress: engines under both schedulers hammering one
// PartitionStore concurrently must all complete the full traversal — the
// store's synchronization is the same for barrier level loops and DAG worker
// deques. Run under -race this is the scheduler's data-race canary.
func TestSchedulerSharedStoreStress(t *testing.T) {
	enc := encodeFlight(t, 60, 5)
	store := NewPartitionStore(1 << 20)
	want := -1
	var wg sync.WaitGroup
	results := make([]int, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sched := SchedulerDAG
			if i%2 == 0 {
				sched = SchedulerBarrier
			}
			eng, err := New(enc, Config{Workers: 2, Scheduler: sched, Store: store})
			if err != nil {
				t.Error(err)
				return
			}
			eng.RunNodes(nil, func(_, _ int, _ bitset.AttrSet, _ []any) (any, bool) { return nil, false })
			results[i] = eng.Stats().NodesVisited
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if want == -1 {
			want = got
		}
		if got != want || got == 0 {
			t.Errorf("goroutine %d visited %d nodes, want %d (full lattice for all)", i, got, want)
		}
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Errorf("store served no hits across 8 concurrent full traversals: %+v", st)
	}
}
