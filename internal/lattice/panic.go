package lattice

import (
	"fmt"
	"runtime/debug"

	"repro/internal/bitset"
)

// Fault containment. Every goroutine the engine spawns — ParallelFor chunk
// workers, barrier visit workers, DAG scheduler workers — recovers panics
// instead of letting them kill the process: the first recovered panic is
// latched as a typed *PanicError (value, lattice node when known, stack),
// the cooperative stop flag is tripped so sibling workers drain within one
// chunk/node of work, and the traversal returns with Stats.Interrupted set.
// Clients read the latched failure through Engine.Err after Run/RunNodes and
// propagate it as an error instead of a partial result, because a panicked
// visit may have left per-node state inconsistent.
//
// The traversal goroutine itself (level generation, store probes, DAG
// seeding) is covered by a catch-all recover at the top of Run and
// runNodesDAG, so a poisoned node is contained no matter which goroutine it
// runs on.

// PanicError is the typed failure recorded when a worker panic was recovered
// during a traversal. It carries the panic value, the lattice node whose
// processing raised it (when known), and the stack captured at recovery.
type PanicError struct {
	// Value is the value the worker panicked with.
	Value any
	// Node is the lattice node being processed when the panic was raised;
	// only meaningful when HasNode is true (panics outside node processing —
	// e.g. during level generation bookkeeping — have no node).
	Node    bitset.AttrSet
	HasNode bool
	// Stack is the panicking goroutine's stack, captured inside recover.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.HasNode {
		return "lattice: worker panic at " + PanicContext(e.Node, e.Value)
	}
	return fmt.Sprintf("lattice: worker panic: %v", e.Value)
}

// PanicContext renders a recovered panic value together with the lattice
// node whose processing raised it. The invariant panics deep in
// internal/partition (mismatched product relations) and internal/bitset
// (attribute index out of range) cannot name the node — those packages do
// not know which attribute set is being processed — so the engine's recovery
// paths attach it here, making recovered stacks actionable ("node {A,B,D}"
// instead of just row counts).
func PanicContext(node bitset.AttrSet, rec any) string {
	return fmt.Sprintf("node %s: %v", node, rec)
}

// recordPanic latches a recovered panic as the run's failure (first panic
// wins; later ones are necessarily consequences or duplicates) and trips the
// stop flag so every other worker drains at its next chunk or node handout.
// Safe to call from any goroutine.
func (e *Engine) recordPanic(rec any, node bitset.AttrSet, hasNode bool) {
	stack := debug.Stack()
	e.stop.Store(true)
	e.failMu.Lock()
	if e.fail == nil {
		e.fail = &PanicError{Value: rec, Node: node, HasNode: hasNode, Stack: stack}
	}
	e.failMu.Unlock()
}

// trapWorker is the recover sink for worker goroutines with no node context
// (ParallelFor chunk workers running level generation products or client
// fan-outs).
func (e *Engine) trapWorker(rec any) { e.recordPanic(rec, 0, false) }

// trapTraversal is deferred at the top of Run and runNodesDAG: it contains
// panics raised on the traversal goroutine itself (store probes, prefix
// joins, DAG seeding) and marks the run interrupted, since the loop that
// normally stamps Interrupted was unwound.
func (e *Engine) trapTraversal() {
	if rec := recover(); rec != nil {
		e.recordPanic(rec, 0, false)
		e.stats.Interrupted = true
	}
}

// Err returns the typed *PanicError of the first worker panic this engine
// recovered, or nil if the traversal ran clean. Clients must check it after
// Run/RunNodes and fail the discovery rather than report partial results:
// unlike a budget interrupt, a panic gives no guarantee the per-node state
// merged so far is coherent.
func (e *Engine) Err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	if e.fail == nil {
		return nil
	}
	return e.fail
}
