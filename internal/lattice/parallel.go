package lattice

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The per-level work of a lattice traversal — candidate-set derivation, OD/FD
// validation and partition products — is embarrassingly parallel: every node
// of a level only reads state produced by previous levels. The engine
// therefore shards each level's nodes across a small worker pool and its
// clients merge per-worker results at a level barrier. All merge points are
// deterministic (per-node output slots, counter addition in worker order), so
// a parallel run is byte-identical to a sequential one.

// ResolveWorkers maps an Options.Workers-style request onto a concrete worker
// count: 0 selects runtime.GOMAXPROCS(0), anything below 1 is clamped to 1.
func ResolveWorkers(requested int) int {
	if requested == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// ParallelFor runs fn for every item index in [0, n) using at most w
// goroutines. Items are handed out in small chunks through an atomic cursor
// so that uneven per-item costs (partition sizes vary wildly across nodes)
// balance out without any up-front partitioning, while levels with thousands
// of near-empty nodes (e.g. key-pruned superkey contexts) do not serialize on
// the cursor: the chunk size grows with n so each worker performs a bounded
// number of atomic fetches. fn receives the worker index (0..w-1), which
// callers use to address per-worker scratch buffers and counter shards
// without locks, and the item index, which callers use to write results into
// per-item output slots.
//
// With w <= 1 or a single item the call degenerates to an inline loop with no
// goroutines — the sequential path of the engine.
//
// The package-level form is uninterruptible; Engine.ParallelFor layers the
// engine's cooperative stop checks between chunk handouts.
func ParallelFor(w, n int, fn func(worker, item int)) {
	if w < 1 {
		w = 1
	}
	parallelForChunk(w, n, chunkFor(w, n), nil, nil, fn)
}

// chunkFor picks the batch size handed out per atomic fetch: 1 for small
// levels (maximum load balance), growing with the item count so the cursor is
// touched a bounded number of times per worker. The cap keeps a single
// unlucky chunk of expensive items from stalling the barrier.
func chunkFor(w, n int) int {
	const (
		// targetFetches is the number of cursor fetches each worker should
		// need for an evenly-costed level; more fetches only buy balance.
		targetFetches = 16
		maxChunk      = 64
	)
	if w < 1 {
		w = 1
	}
	c := n / (w * targetFetches)
	if c < 1 {
		return 1
	}
	if c > maxChunk {
		return maxChunk
	}
	return c
}

// parallelForChunk is ParallelFor with an explicit chunk size (the handout
// benchmark uses it to measure chunking against the one-item-per-fetch
// baseline), an optional stop check and an optional panic trap. A non-nil
// stop is polled once per chunk handout — on the sequential path as well as
// by every worker — and once it reports true the remaining items are
// abandoned: cancellation latency is bounded by one chunk, never by the
// whole level. A non-nil trap receives any panic a worker raises (the
// worker's remaining chunks are abandoned; the trap is expected to latch the
// stop signal so siblings drain too); with a nil trap panics propagate to
// the caller, the package-level ParallelFor contract.
func parallelForChunk(w, n, chunk int, stop func() bool, trap func(rec any), fn func(worker, item int)) {
	if w > n {
		w = n
	}
	if chunk < 1 {
		chunk = 1
	}
	if w <= 1 {
		runTrapped(trap, func() {
			for start := 0; start < n; start += chunk {
				if stop != nil && stop() {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(0, i)
				}
			}
		})
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			runTrapped(trap, func() {
				for {
					if stop != nil && stop() {
						return
					}
					start := int(cursor.Add(int64(chunk))) - chunk
					if start >= n {
						return
					}
					end := start + chunk
					if end > n {
						end = n
					}
					for i := start; i < end; i++ {
						fn(wk, i)
					}
				}
			})
		}(wk)
	}
	wg.Wait()
}

// runTrapped runs body, routing a recovered panic to trap; a nil trap lets
// panics propagate unchanged.
func runTrapped(trap func(rec any), body func()) {
	if trap == nil {
		body()
		return
	}
	defer func() {
		if rec := recover(); rec != nil {
			trap(rec)
		}
	}()
	body()
}
