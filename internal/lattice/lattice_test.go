package lattice

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/partition"
	"repro/internal/relation"
)

func encodeFlight(t *testing.T, rows, cols int) *relation.Encoded {
	t.Helper()
	enc, err := relation.Encode(datagen.FlightLike(rows, cols, 2017))
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil relation must be rejected")
	}
	if _, err := New(&relation.Encoded{}, Config{}); err == nil {
		t.Error("zero-column relation must be rejected")
	}
}

// TestStoreBoundToOneRelation: reusing a store for a different relation —
// even one with the same row count, which the per-partition defense cannot
// tell apart — must fail loudly at engine construction instead of silently
// serving the wrong partitions.
func TestStoreBoundToOneRelation(t *testing.T) {
	encA := encodeFlight(t, 200, 5)
	encB, err := relation.Encode(datagen.NCVoterLike(200, 5, 7)) // same rows, different data
	if err != nil {
		t.Fatal(err)
	}
	store := NewPartitionStore(0)
	if _, err := New(encA, Config{Workers: 1, Store: store}); err != nil {
		t.Fatalf("first bind: %v", err)
	}
	if _, err := New(encA, Config{Workers: 1, Store: store}); err != nil {
		t.Fatalf("rebind to the same relation: %v", err)
	}
	if _, err := New(encB, Config{Workers: 1, Store: store}); err == nil {
		t.Fatal("binding the store to a second relation must fail")
	}
	store.Reset()
	if _, err := New(encB, Config{Workers: 1, Store: store}); err != nil {
		t.Fatalf("bind after Reset: %v", err)
	}
}

// TestRunEnumeratesFullLattice: a visit that keeps every node must see every
// non-empty subset of the schema exactly once, level by level, with the
// partitions of the last three levels available.
func TestRunEnumeratesFullLattice(t *testing.T) {
	const cols = 5
	enc := encodeFlight(t, 100, cols)
	eng, err := New(enc, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[bitset.AttrSet]int)
	eng.Run(func(l int, nodes []bitset.AttrSet) []bitset.AttrSet {
		for _, x := range nodes {
			if x.Len() != l {
				t.Errorf("level %d contains node %v of size %d", l, x, x.Len())
			}
			seen[x]++
			if eng.Partition(x) == nil {
				t.Errorf("no partition for node %v at level %d", x, l)
			}
			// Immediate subsets must be resolvable for validation.
			x.ForEach(func(a int) {
				if eng.Partition(x.Remove(a)) == nil {
					t.Errorf("no partition for subset %v of %v", x.Remove(a), x)
				}
			})
		}
		return nodes
	})
	if want := (1 << cols) - 1; len(seen) != want {
		t.Fatalf("visited %d distinct nodes, want %d", len(seen), want)
	}
	for x, n := range seen {
		if n != 1 {
			t.Errorf("node %v visited %d times", x, n)
		}
	}
	st := eng.Stats()
	if st.NodesVisited != (1<<cols)-1 {
		t.Errorf("NodesVisited = %d, want %d", st.NodesVisited, (1<<cols)-1)
	}
	if st.MaxLevelReached != cols {
		t.Errorf("MaxLevelReached = %d, want %d", st.MaxLevelReached, cols)
	}
}

// TestRunPartitionsMatchDirectComputation: partitions handed out by the
// engine must equal the ground-truth product of singleton partitions.
func TestRunPartitionsMatchDirectComputation(t *testing.T) {
	enc := encodeFlight(t, 200, 4)
	eng, err := New(enc, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct := func(x bitset.AttrSet) *partition.Partition {
		p := partition.FromConstant(enc.NumRows())
		x.ForEach(func(a int) {
			p = partition.Product(p, partition.FromColumn(enc.Column(a), enc.Cardinality[a]))
		})
		return p
	}
	eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet {
		for _, x := range nodes {
			got, want := eng.Partition(x), direct(x)
			if got.Error() != want.Error() || got.NumClasses() != want.NumClasses() || got.Size() != want.Size() {
				t.Errorf("partition of %v = %v, want %v", x, got, want)
			}
		}
		return nodes
	})
}

// TestRunPruningStopsGeneration: nodes dropped by the visit callback must not
// generate supersets, and supersets with a missing immediate subset must not
// be generated either.
func TestRunPruningStopsGeneration(t *testing.T) {
	enc := encodeFlight(t, 100, 5)
	eng, err := New(enc, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dropped := bitset.NewAttrSet(0)
	var visited []bitset.AttrSet
	eng.Run(func(l int, nodes []bitset.AttrSet) []bitset.AttrSet {
		visited = append(visited, nodes...)
		if l != 1 {
			return nodes
		}
		kept := nodes[:0]
		for _, x := range nodes {
			if x != dropped {
				kept = append(kept, x)
			}
		}
		return kept
	})
	for _, x := range visited {
		if x != dropped && x.Contains(0) && x.Len() > 1 {
			t.Errorf("superset %v of the dropped node was generated", x)
		}
	}
	// 1 dropped singleton + the full lattice over the remaining 4 attributes.
	if want := 5 + (1<<4 - 1) - 4; len(visited) != want {
		t.Errorf("visited %d nodes, want %d", len(visited), want)
	}
}

func TestRunMaxLevel(t *testing.T) {
	enc := encodeFlight(t, 100, 5)
	eng, err := New(enc, Config{Workers: 1, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := 0
	eng.Run(func(l int, nodes []bitset.AttrSet) []bitset.AttrSet {
		if l > maxSeen {
			maxSeen = l
		}
		return nodes
	})
	if maxSeen != 2 {
		t.Errorf("deepest visited level = %d, want 2", maxSeen)
	}
	if eng.Stats().MaxLevelReached != 2 {
		t.Errorf("MaxLevelReached = %d, want 2", eng.Stats().MaxLevelReached)
	}
}

// TestRunOnLevelEnd: the hook fires once per processed level, in order.
func TestRunOnLevelEnd(t *testing.T) {
	enc := encodeFlight(t, 100, 4)
	var ended []int
	eng, err := New(enc, Config{Workers: 1, OnLevelEnd: func(l int, _ time.Duration) { ended = append(ended, l) }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet { return nodes })
	if len(ended) != 4 {
		t.Fatalf("OnLevelEnd fired %d times, want 4", len(ended))
	}
	for i, l := range ended {
		if l != i+1 {
			t.Errorf("OnLevelEnd order = %v", ended)
			break
		}
	}
}

// TestWorkerInvariance: the engine's traversal (node sets, partitions, store
// interactions) must be identical across worker counts.
func TestWorkerInvariance(t *testing.T) {
	enc := encodeFlight(t, 300, 6)
	trace := func(w int) ([]bitset.AttrSet, Stats) {
		eng, err := New(enc, Config{Workers: w, Store: NewPartitionStore(0)})
		if err != nil {
			t.Fatal(err)
		}
		var visited []bitset.AttrSet
		eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet {
			visited = append(visited, nodes...)
			return nodes
		})
		return visited, eng.Stats()
	}
	seqNodes, seqStats := trace(1)
	for _, w := range []int{2, 4, 0} {
		nodes, stats := trace(w)
		if len(nodes) != len(seqNodes) {
			t.Fatalf("workers=%d: %d nodes, want %d", w, len(nodes), len(seqNodes))
		}
		for i := range seqNodes {
			if nodes[i] != seqNodes[i] {
				t.Fatalf("workers=%d: node %d = %v, want %v", w, i, nodes[i], seqNodes[i])
			}
		}
		if stats != seqStats {
			t.Errorf("workers=%d: stats = %+v, want %+v", w, stats, seqStats)
		}
	}
}

// TestRunMaxLevelSkipsFinalGeneration: the products of level MaxLevel+1 are
// never visited and must not be computed (visible through store traffic).
func TestRunMaxLevelSkipsFinalGeneration(t *testing.T) {
	enc := encodeFlight(t, 100, 5)
	store := NewPartitionStore(0)
	eng, err := New(enc, Config{Workers: 1, MaxLevel: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet { return nodes })
	// Exactly the empty set, 5 singletons and C(5,2)=10 pairs get partitions.
	if want := 1 + 5 + 10; store.Len() != want {
		t.Errorf("store holds %d partitions after a MaxLevel=2 run, want %d", store.Len(), want)
	}
}
