package lattice

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/partition"
	"repro/internal/relation"
)

// DefaultStoreCost is the default memory bound of a PartitionStore, measured
// in retained row references (each costs one int32 plus class overhead); it
// corresponds to roughly 16 MiB of class data.
const DefaultStoreCost = 4 << 20

// PartitionStore memoizes stripped partitions keyed by attribute set, so they
// are computed once and reused across discovery runs: the pruned and
// un-pruned FASTOD passes of one experiment, repeated Discover calls on the
// same dataset (e.g. behind the advisor), or different algorithms (FASTOD,
// TANE, approximate, bidirectional) profiling the same relation.
//
// The store is bounded: every entry is charged its stripped size in row
// references, and least-recently-used entries are evicted once the total
// exceeds the bound, so memory stays predictable on wide relations whose
// lattices materialize millions of attribute sets.
//
// A store belongs to one relation instance: the first engine run binds it to
// its *relation.Encoded, and building an engine over a different relation
// with the same store fails loudly rather than silently serving the wrong
// partitions. (As a second line of defense for direct Put callers, the row
// count is also pinned and mismatching puts are dropped.) Partitions handed
// out are shared and must be treated as immutable — every algorithm in this
// repository already does, since partitions are never mutated after
// construction.
//
// All methods are safe for concurrent use.
type PartitionStore struct {
	mu      sync.Mutex
	maxCost int
	owner   *relation.Encoded // pinned by the first engine bind; nil before
	rows    int               // pinned by the first Put; -1 before
	cost    int
	entries map[bitset.AttrSet]*list.Element
	lru     *list.List // front = most recently used; values are *storeEntry
	stats   StoreStats
}

type storeEntry struct {
	key  bitset.AttrSet
	p    *partition.Partition
	cost int
}

// StoreStats describes a store's accounting at one point in time.
type StoreStats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int
	// Puts counts partitions accepted into the store; Evictions counts
	// entries removed to respect the bound.
	Puts, Evictions int
	// Entries and Cost describe the current contents; Cost never exceeds
	// MaxCost.
	Entries, Cost, MaxCost int
}

// NewPartitionStore builds an empty store bounded to maxCost retained row
// references; maxCost <= 0 selects DefaultStoreCost.
func NewPartitionStore(maxCost int) *PartitionStore {
	if maxCost <= 0 {
		maxCost = DefaultStoreCost
	}
	return &PartitionStore{
		maxCost: maxCost,
		rows:    -1,
		entries: make(map[bitset.AttrSet]*list.Element),
		lru:     list.New(),
	}
}

// entryCost charges a partition its stripped size in row references, plus one
// so that empty (superkey) partitions — cheap but very valuable to cache —
// still carry accounting weight.
func entryCost(p *partition.Partition) int { return p.Size() + 1 }

// bind pins the store to one relation instance. The first bind wins;
// binding to a different relation is an error, which engines surface from
// New so misuse fails before any wrong partition can be served.
func (s *PartitionStore) bind(enc *relation.Encoded) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.owner == nil {
		s.owner = enc
		return nil
	}
	if s.owner != enc {
		return fmt.Errorf("lattice: partition store is bound to a different relation (a store must only be shared between runs over the same relation instance)")
	}
	return nil
}

// Get returns the memoized partition for an attribute set, refreshing its
// recency.
func (s *PartitionStore) Get(x bitset.AttrSet) (*partition.Partition, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[x]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.stats.Hits++
	return el.Value.(*storeEntry).p, true
}

// Put memoizes a partition. Puts for a different relation (row-count
// mismatch with the pinned one) and partitions larger than the whole bound
// are dropped; otherwise least-recently-used entries are evicted until the
// new entry fits.
func (s *PartitionStore) Put(x bitset.AttrSet, p *partition.Partition) {
	if p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rows == -1 {
		s.rows = p.NumRows
	} else if s.rows != p.NumRows {
		return
	}
	cost := entryCost(p)
	if cost > s.maxCost {
		return
	}
	if el, ok := s.entries[x]; ok {
		// Refresh: another run recomputed the same partition (e.g. after an
		// eviction race); keep the existing entry, update recency.
		s.lru.MoveToFront(el)
		return
	}
	for s.cost+cost > s.maxCost {
		s.evictOldest()
	}
	el := s.lru.PushFront(&storeEntry{key: x, p: p, cost: cost})
	s.entries[x] = el
	s.cost += cost
	s.stats.Puts++
}

// evictOldest removes the least-recently-used entry; callers hold the lock
// and guarantee the store is non-empty (cost > 0 whenever the loop runs).
func (s *PartitionStore) evictOldest() {
	el := s.lru.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*storeEntry)
	s.lru.Remove(el)
	delete(s.entries, ent.key)
	s.cost -= ent.cost
	s.stats.Evictions++
}

// Len returns the number of memoized partitions.
func (s *PartitionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store's accounting.
func (s *PartitionStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Cost = s.cost
	st.MaxCost = s.maxCost
	return st
}

// Reset drops every entry and the pinned relation but keeps the cumulative
// hit/miss counters, so a store can be reused for a different relation.
func (s *PartitionStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[bitset.AttrSet]*list.Element)
	s.lru.Init()
	s.cost = 0
	s.rows = -1
	s.owner = nil
}
