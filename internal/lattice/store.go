package lattice

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/partition"
	"repro/internal/relation"
)

// DefaultStoreCost is the default memory bound of a PartitionStore in bytes
// of retained class data (16 MiB). Entry costs are byte-exact: each cached
// partition is charged its flat rows arena plus its class-offset index (see
// partition.FootprintBytes).
const DefaultStoreCost = 16 << 20

// pinnedMaxLevel is the deepest attribute-set level whose entries are pinned:
// the empty-set partition (level 0) and the singleton partitions (level 1)
// seed every traversal, there are at most numAttrs+1 of them, and every
// deeper partition is derived from them — so they are evicted only as a last
// resort, when no deeper entry is left to make room.
const pinnedMaxLevel = 1

// PartitionStore memoizes stripped partitions keyed by attribute set, so they
// are computed once and reused across discovery runs: the pruned and
// un-pruned FASTOD passes of one experiment, repeated Discover calls on the
// same dataset (e.g. behind the advisor), or different algorithms (FASTOD,
// TANE, approximate, bidirectional) profiling the same relation.
//
// The store is bounded: every entry is charged the exact byte size of its
// flat class data (rows arena + offsets index), and entries are evicted once
// the total exceeds the bound, so memory stays predictable on wide relations
// whose lattices materialize millions of attribute sets.
//
// Eviction is level-weighted, not purely LRU: a partition over a small
// attribute set is exponentially more reusable than a deep one (it is a
// sub-expression of exponentially many supersets, and every traversal
// revisits the shallow levels first), so the victim is always the
// least-recently-used entry of the DEEPEST level present, and the level-0/1
// seed partitions are pinned until nothing deeper is left. Within one level
// the policy degenerates to plain LRU.
//
// A store belongs to one relation instance: the first engine run binds it to
// its *relation.Encoded, and building an engine over a different relation
// with the same store fails loudly rather than silently serving the wrong
// partitions. (As a second line of defense for direct Put callers, the row
// count is also pinned and mismatching puts are dropped.) Partitions handed
// out are shared between callers and goroutines; this is safe because
// partitions are immutable after construction — the flat arena is never
// written again, and Class hands out read-only views (see the package
// partition docs for the contract).
//
// All methods are safe for concurrent use.
type PartitionStore struct {
	mu      sync.Mutex
	maxCost int
	owner   *relation.Encoded // pinned by the first engine bind; nil before
	rows    int               // pinned by the first Put; -1 before
	cost    int
	entries map[bitset.AttrSet]*list.Element
	// lrus holds one recency list per attribute-set level (index = |X|);
	// front = most recently used. Values are *storeEntry.
	lrus []*list.List
	// deepest is the highest level with entries, maintained as an eviction
	// scan hint; levels above it are all empty.
	deepest int
	stats   StoreStats
}

type storeEntry struct {
	key   bitset.AttrSet
	p     *partition.Partition
	cost  int
	level int
}

// StoreStats describes a store's accounting at one point in time.
type StoreStats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int
	// Puts counts partitions accepted into the store; Evictions counts
	// entries removed to respect the bound.
	Puts, Evictions int
	// Entries and Cost describe the current contents; Cost is in bytes of
	// retained class data and never exceeds MaxCost.
	Entries, Cost, MaxCost int
}

// NewPartitionStore builds an empty store bounded to maxCost bytes of
// retained class data; maxCost <= 0 selects DefaultStoreCost.
func NewPartitionStore(maxCost int) *PartitionStore {
	if maxCost <= 0 {
		maxCost = DefaultStoreCost
	}
	return &PartitionStore{
		maxCost: maxCost,
		rows:    -1,
		entries: make(map[bitset.AttrSet]*list.Element),
		lrus:    make([]*list.List, bitset.MaxAttrs+1),
	}
}

// entryCost charges a partition its exact flat footprint. Even an empty
// (superkey) partition — cheap but very valuable to cache — carries its
// offsets sentinel, so every entry has positive accounting weight.
func entryCost(p *partition.Partition) int {
	c := p.FootprintBytes()
	if c <= 0 {
		c = 1
	}
	return c
}

// bind pins the store to one relation instance. The first bind wins;
// binding to a different relation is an error, which engines surface from
// New so misuse fails before any wrong partition can be served.
func (s *PartitionStore) bind(enc *relation.Encoded) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.owner == nil {
		s.owner = enc
		return nil
	}
	if s.owner != enc {
		return fmt.Errorf("lattice: partition store is bound to a different relation (a store must only be shared between runs over the same relation instance)")
	}
	return nil
}

// Get returns the memoized partition for an attribute set, refreshing its
// recency within its level.
func (s *PartitionStore) Get(x bitset.AttrSet) (*partition.Partition, bool) {
	if err := faultinject.Fire(faultinject.StoreGet); err != nil {
		// An injected lookup failure degrades to a miss: the caller recomputes
		// the partition, trading CPU for availability. (Fired before the lock
		// so an injected panic never wedges the store.)
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[x]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.lrus[el.Value.(*storeEntry).level].MoveToFront(el)
	s.stats.Hits++
	return el.Value.(*storeEntry).p, true
}

// Put memoizes a partition. Puts for a different relation (row-count
// mismatch with the pinned one) and partitions larger than the whole bound
// are dropped; otherwise entries are evicted — deepest level first, LRU
// within a level — until the new entry fits.
func (s *PartitionStore) Put(x bitset.AttrSet, p *partition.Partition) {
	if p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rows == -1 {
		s.rows = p.NumRows
	} else if s.rows != p.NumRows {
		return
	}
	cost := entryCost(p)
	if cost > s.maxCost {
		return
	}
	if el, ok := s.entries[x]; ok {
		// Refresh: another run recomputed the same partition (e.g. after an
		// eviction race); keep the existing entry, update recency.
		s.lrus[el.Value.(*storeEntry).level].MoveToFront(el)
		return
	}
	for s.cost+cost > s.maxCost {
		if !s.evictOne() {
			break
		}
	}
	level := x.Len()
	if s.lrus[level] == nil {
		s.lrus[level] = list.New()
	}
	el := s.lrus[level].PushFront(&storeEntry{key: x, p: p, cost: cost, level: level})
	s.entries[x] = el
	s.cost += cost
	if level > s.deepest {
		s.deepest = level
	}
	s.stats.Puts++
}

// evictOne removes one entry under the level-weighted policy: the
// least-recently-used entry of the deepest non-empty unpinned level, falling
// back to the pinned seed levels (deepest first) only when nothing else is
// left. It reports whether an entry was evicted; callers hold the lock.
func (s *PartitionStore) evictOne() bool {
	if err := faultinject.Fire(faultinject.StoreEvict); err != nil {
		// An injected eviction failure stops this Put's eviction loop: the
		// store temporarily overshoots its bound instead of failing the run.
		return false
	}
	for pass := 0; pass < 2; pass++ {
		lo := pinnedMaxLevel + 1
		if pass == 1 {
			lo = 0 // fall back to the pinned seed levels
		}
		hi := s.deepest
		if pass == 1 && hi > pinnedMaxLevel {
			hi = pinnedMaxLevel
		}
		for l := hi; l >= lo; l-- {
			lru := s.lrus[l]
			if lru == nil || lru.Len() == 0 {
				continue
			}
			el := lru.Back()
			ent := el.Value.(*storeEntry)
			lru.Remove(el)
			delete(s.entries, ent.key)
			s.cost -= ent.cost
			s.stats.Evictions++
			for s.deepest > 0 && (s.lrus[s.deepest] == nil || s.lrus[s.deepest].Len() == 0) {
				s.deepest--
			}
			return true
		}
	}
	return false
}

// Len returns the number of memoized partitions.
func (s *PartitionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store's accounting.
func (s *PartitionStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Cost = s.cost
	st.MaxCost = s.maxCost
	return st
}

// Reset drops every entry and the pinned relation but keeps the cumulative
// hit/miss counters, so a store can be reused for a different relation.
func (s *PartitionStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[bitset.AttrSet]*list.Element)
	s.lrus = make([]*list.List, bitset.MaxAttrs+1)
	s.deepest = 0
	s.cost = 0
	s.rows = -1
	s.owner = nil
}
