package lattice

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/partition"
)

// colPartition builds a small partition with the given number of rows, all in
// one class (byte-exact cost = 4*(rows + 2): the rows arena plus the
// two-entry offsets index).
func colPartition(rows int) *partition.Partition {
	return partition.FromConstant(rows)
}

// colPartitionCost is the store cost of colPartition(10): 48 bytes.
const colPartitionCost = 4 * (10 + 2)

func TestStoreHitMissAccounting(t *testing.T) {
	s := NewPartitionStore(0)
	x := bitset.NewAttrSet(0)
	if _, ok := s.Get(x); ok {
		t.Fatal("Get on empty store must miss")
	}
	p := colPartition(10)
	s.Put(x, p)
	got, ok := s.Get(x)
	if !ok || got != p {
		t.Fatalf("Get after Put = (%v, %v), want the stored partition", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put, 1 entry", st)
	}
	if st.Cost != p.FootprintBytes() {
		t.Errorf("cost = %d, want byte-exact footprint %d", st.Cost, p.FootprintBytes())
	}
	if st.MaxCost != DefaultStoreCost {
		t.Errorf("maxCost = %d, want default %d", st.MaxCost, DefaultStoreCost)
	}
}

func TestStoreCrossCallReuse(t *testing.T) {
	// Two engine runs over the same relation sharing a store: the second run
	// must find every partition the first one computed.
	enc := encodeFlight(t, 300, 6)
	store := NewPartitionStore(0)
	run := func() Stats {
		eng, err := New(enc, Config{Workers: 1, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(func(_ int, nodes []bitset.AttrSet) []bitset.AttrSet { return nodes })
		return eng.Stats()
	}
	first := run()
	if first.PartitionHits != 0 {
		t.Errorf("first run: %d hits, want 0 (cold store)", first.PartitionHits)
	}
	if first.PartitionMisses == 0 {
		t.Error("first run: no misses recorded on a cold store")
	}
	second := run()
	if second.PartitionMisses != 0 {
		t.Errorf("second run: %d misses, want 0 (warm store)", second.PartitionMisses)
	}
	if second.PartitionHits != first.PartitionMisses {
		t.Errorf("second run: %d hits, want every first-run miss (%d)", second.PartitionHits, first.PartitionMisses)
	}
}

func TestStoreBoundEvicts(t *testing.T) {
	// Each entry costs 48 bytes; a bound of 150 fits three entries. All keys
	// are on the same (pinned seed) level, so the level-weighted policy
	// degenerates to plain LRU via its last-resort fallback.
	s := NewPartitionStore(3*colPartitionCost + 5)
	keys := []bitset.AttrSet{}
	for a := 0; a < 6; a++ {
		x := bitset.NewAttrSet(a)
		keys = append(keys, x)
		s.Put(x, colPartition(10))
	}
	st := s.Stats()
	if st.Entries > 3 {
		t.Errorf("entries = %d, want <= 3 under the bound", st.Entries)
	}
	if st.Cost > st.MaxCost {
		t.Errorf("cost %d exceeds bound %d", st.Cost, st.MaxCost)
	}
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
	// LRU order: the oldest keys were evicted, the newest survive.
	for _, x := range keys[:3] {
		if _, ok := s.Get(x); ok {
			t.Errorf("key %v should have been evicted", x)
		}
	}
	for _, x := range keys[3:] {
		if _, ok := s.Get(x); !ok {
			t.Errorf("key %v should have survived", x)
		}
	}
}

func TestStoreLRURefreshOnGet(t *testing.T) {
	s := NewPartitionStore(3*colPartitionCost + 5) // three 48-byte entries fit
	a, b, c, d := bitset.NewAttrSet(0), bitset.NewAttrSet(1), bitset.NewAttrSet(2), bitset.NewAttrSet(3)
	s.Put(a, colPartition(10))
	s.Put(b, colPartition(10))
	s.Put(c, colPartition(10))
	s.Get(a) // refresh a; b becomes the eviction candidate
	s.Put(d, colPartition(10))
	if _, ok := s.Get(b); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := s.Get(a); !ok {
		t.Error("a was refreshed and should have survived")
	}
}

func TestStoreOversizedEntryRejected(t *testing.T) {
	s := NewPartitionStore(5)
	s.Put(bitset.NewAttrSet(0), colPartition(100)) // cost 408 bytes > bound 5
	if s.Len() != 0 {
		t.Errorf("oversized entry stored; len = %d", s.Len())
	}
}

func TestStoreLevelWeightedEviction(t *testing.T) {
	// Level-weighted policy: when the bound is hit, the victim is the LRU
	// entry of the DEEPEST level, not the globally least-recently-used entry —
	// shallow partitions are exponentially more reusable and must outlive
	// deep ones.
	s := NewPartitionStore(3*colPartitionCost + 5) // three 48-byte entries fit
	l1a := bitset.NewAttrSet(0)                    // level 1 (pinned seed)
	l1b := bitset.NewAttrSet(1)
	d1 := bitset.NewAttrSet(0, 1, 2) // level 3
	d2 := bitset.NewAttrSet(0, 1, 3)
	s.Put(l1a, colPartition(10))
	s.Put(l1b, colPartition(10))
	s.Put(d1, colPartition(10))
	// The store is full. The singletons are the oldest entries, but inserting
	// another deep partition must evict the deep d1, not the stale singletons.
	s.Put(d2, colPartition(10))
	if _, ok := s.Get(d1); ok {
		t.Error("deep entry d1 should have been evicted (deepest level first)")
	}
	for _, x := range []bitset.AttrSet{l1a, l1b, d2} {
		if _, ok := s.Get(x); !ok {
			t.Errorf("entry %v should have survived the deep eviction", x)
		}
	}

	// Within one level the policy is LRU: d2 was just refreshed by Get, so a
	// further deep insert evicts... d2 is the only level-3 entry, so it goes;
	// add a level-2 entry first to check cross-level ordering: the level-3
	// entry is evicted before the level-2 one regardless of recency.
	l2 := bitset.NewAttrSet(2, 3)
	s.Put(l2, colPartition(10)) // store full again: l1a, l1b, d2, l2 minus evictions
	if _, ok := s.Get(d2); ok {
		t.Error("level-3 entry should have been evicted before the level-2 entry")
	}
	if _, ok := s.Get(l2); !ok {
		t.Error("level-2 entry should have survived while a level-3 entry existed")
	}

	// Pinned seed levels go only as a last resort, in LRU order.
	l1c := bitset.NewAttrSet(3)
	s.Put(l1c, colPartition(10)) // only l1a, l1b, l2 remain as victims: l2 is deepest
	if _, ok := s.Get(l2); ok {
		t.Error("level-2 entry should have been evicted before any pinned singleton")
	}
	st := s.Stats()
	if st.Cost > st.MaxCost {
		t.Errorf("cost %d exceeds bound %d", st.Cost, st.MaxCost)
	}
}

func TestStoreRowMismatchRejected(t *testing.T) {
	s := NewPartitionStore(0)
	s.Put(bitset.NewAttrSet(0), colPartition(10)) // pins rows=10
	s.Put(bitset.NewAttrSet(1), colPartition(20)) // different relation: dropped
	if _, ok := s.Get(bitset.NewAttrSet(1)); ok {
		t.Error("partition with mismatched row count must not be stored")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("len after Reset = %d, want 0", s.Len())
	}
	s.Put(bitset.NewAttrSet(1), colPartition(20)) // re-pinned after Reset
	if _, ok := s.Get(bitset.NewAttrSet(1)); !ok {
		t.Error("Reset must unpin the row count")
	}
}
