// Package lattice owns the level-wise apriori driver shared by every
// algorithm in this repository that traverses the set-containment lattice of
// attribute sets with stripped partitions: FASTOD (internal/core), the TANE
// baseline (internal/tane), and the approximate and bidirectional extensions
// (internal/approx, internal/bidir).
//
// The Engine factors out what those traversals have in common — singleton
// seeding, prefix-block joins for the next level (Algorithm 2 of the paper),
// partition products, the bounded per-level partition retention window, and a
// chunked parallel executor — while each algorithm keeps ownership of its
// candidate-set bookkeeping, validation and pruning inside a per-level visit
// callback. A shared PartitionStore memoizes stripped partitions across runs
// (e.g. the pruned and un-pruned FASTOD passes of Figure 6, or repeated
// Discover calls behind the advisor) under a configurable memory bound.
package lattice

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Config configures an Engine.
type Config struct {
	// Ctx, when non-nil, is checked cooperatively throughout the traversal:
	// at every level barrier and between ParallelFor chunk handouts (barrier
	// scheduler) or at every node handout (DAG scheduler). A cancelled
	// context interrupts the run within one chunk — respectively one node —
	// of work; the engine keeps everything computed so far and reports
	// Stats.Interrupted. Nil behaves like context.Background().
	Ctx context.Context
	// Scheduler selects how node work is ordered for the node-reentrant
	// traversal API (RunNodes): the dependency-aware DAG scheduler (the
	// default) or the level-synchronous barrier path. See Scheduler. The
	// level-callback Run API always uses the barrier path.
	Scheduler Scheduler
	// Workers is the number of goroutines used per lattice level, with the
	// same convention as core.Options.Workers: 0 selects runtime.GOMAXPROCS,
	// 1 forces the fully sequential path, negatives clamp to 1.
	Workers int
	// MaxLevel, when positive, stops the traversal after processing the given
	// lattice level. Unlike a budget interrupt, stopping at MaxLevel is a
	// normal completion: the caller asked for a bounded traversal.
	MaxLevel int
	// Budget bounds the traversal's wall-clock time and visited node count;
	// see Budget. An exhausted budget interrupts the run like a cancelled
	// context does.
	Budget Budget
	// Store, when non-nil, is consulted before any stripped partition is
	// computed and receives every partition the run derives, so partitions are
	// reused across runs that share the store. Nil disables cross-run caching;
	// the per-run retention window still guarantees every partition a level
	// needs is available.
	Store *PartitionStore
	// OnLevelEnd, when non-nil, is invoked after each level has been visited
	// and the next level generated, with the wall-clock time the whole level
	// took. Clients use it to record per-level statistics.
	OnLevelEnd func(level int, elapsed time.Duration)
	// OnProgress, when non-nil, receives one ProgressEvent per completed
	// level, including the partial level of an interrupted run. It is invoked
	// from the traversal goroutine (never concurrently).
	OnProgress func(ProgressEvent)
}

// Stats aggregates the work counters the engine maintains on behalf of its
// clients.
type Stats struct {
	// NodesVisited is the total number of lattice nodes handed to visit
	// callbacks.
	NodesVisited int
	// MaxLevelReached is the deepest lattice level that produced nodes.
	MaxLevelReached int
	// PartitionHits and PartitionMisses count the store lookups for lattice
	// node partitions during this run. Both stay zero without a Store.
	PartitionHits   int
	PartitionMisses int
	// Interrupted reports that the traversal stopped early because the
	// context was cancelled or the budget was exhausted. Everything computed
	// before the interrupt is retained; NodesVisited counts the nodes handed
	// to visit callbacks, including those of a partially processed level.
	Interrupted bool
}

// Engine drives one level-wise traversal over one encoded relation. It is not
// safe for concurrent use; concurrent discoveries each build their own Engine
// (they may share a PartitionStore, which is internally synchronized).
type Engine struct {
	enc        *relation.Encoded
	ctx        context.Context
	scheduler  Scheduler
	workers    int
	maxLevel   int
	budget     Budget
	store      *PartitionStore
	onEnd      func(int, time.Duration)
	onProgress func(ProgressEvent)

	// started and deadline frame the run's wall clock: both are set once at
	// the top of Run and only read afterwards, including from worker
	// goroutines. A zero deadline means no timeout.
	started  time.Time
	deadline time.Time
	// stop is the cooperative interrupt flag, latched by checkInterrupt from
	// any goroutine and polled between ParallelFor chunk handouts.
	stop atomic.Bool
	// fail latches the first recovered worker panic (see panic.go); failMu
	// guards it because workers recover concurrently. Read through Err.
	failMu sync.Mutex
	fail   *PanicError

	numAttrs int
	all      bitset.AttrSet

	// scratch holds one partition-product workspace per worker, reused across
	// all levels of the run.
	scratch []*partition.Scratch

	// parts retains the stripped partitions of the last three lattice levels,
	// keyed by level then attribute set. The maps are written only at level
	// barriers and are read-only while a level's nodes are being visited, so
	// visit callbacks may read them from any worker goroutine. Used by the
	// barrier path only.
	parts map[int]map[bitset.AttrSet]*partition.Partition

	// dagParts is the RWMutex-guarded partition window of an active DAG
	// traversal; non-nil exactly while runNodesDAG executes. Partition routes
	// through it when set, so visit callbacks are scheduler-agnostic.
	dagParts *partTable

	stats Stats
}

// New validates the relation and builds an engine.
func New(enc *relation.Encoded, cfg Config) (*Engine, error) {
	if enc == nil {
		return nil, fmt.Errorf("lattice: nil relation")
	}
	if enc.NumCols() == 0 {
		return nil, fmt.Errorf("lattice: relation has no columns")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("lattice: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	if cfg.Store != nil {
		if err := cfg.Store.bind(enc); err != nil {
			return nil, err
		}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		//lint:allow ctxfirst ctx reaches New through Config.Ctx; nil means background by documented default
		ctx = context.Background()
	}
	e := &Engine{
		enc:        enc,
		ctx:        ctx,
		scheduler:  cfg.Scheduler.resolve(),
		workers:    ResolveWorkers(cfg.Workers),
		maxLevel:   cfg.MaxLevel,
		budget:     cfg.Budget,
		store:      cfg.Store,
		onEnd:      cfg.OnLevelEnd,
		onProgress: cfg.OnProgress,
		numAttrs:   enc.NumCols(),
		parts:      make(map[int]map[bitset.AttrSet]*partition.Partition),
	}
	e.scratch = make([]*partition.Scratch, e.workers)
	for i := range e.scratch {
		e.scratch[i] = partition.NewScratch()
	}
	for a := 0; a < e.numAttrs; a++ {
		e.all = e.all.Add(a)
	}
	return e, nil
}

// Workers returns the resolved worker count (>= 1). Clients size per-worker
// shards (counters, buffers) with it.
func (e *Engine) Workers() int { return e.workers }

// Scratch returns the engine's reusable partition workspace for one worker
// index (as handed to ParallelFor and NodeVisit callbacks). The engine only
// ever uses scratch i from worker goroutine i — while generating the next
// level on the barrier path (which never overlaps a visit callback) or while
// deriving a node's partition on the DAG path (on the same goroutine that
// then runs the node's visit) — so visit callbacks are free to use their
// worker's scratch for swap checks, removal counting and ad-hoc products,
// keeping the whole validation hot path allocation-free. A scratch must never
// be used from a different worker index than the one it was requested for.
func (e *Engine) Scratch(worker int) *partition.Scratch { return e.scratch[worker] }

// All returns the full schema R as an attribute set.
func (e *Engine) All() bitset.AttrSet { return e.all }

// Stats returns the engine's work counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Interrupted reports whether the traversal has been interrupted by context
// cancellation or budget exhaustion. Visit callbacks may call it after their
// ParallelFor returns to skip work whose inputs are incomplete (an
// interrupted ParallelFor leaves the remaining per-item slots untouched).
func (e *Engine) Interrupted() bool { return e.stats.Interrupted || e.stop.Load() }

// checkInterrupt evaluates the cancellation signals — the latched stop flag,
// the context, the deadline — and latches the stop flag when any fires. It is
// called between chunk handouts from worker goroutines and at level barriers,
// so it must stay cheap: one atomic load on the fast path.
func (e *Engine) checkInterrupt() bool {
	if e.stop.Load() {
		return true
	}
	select {
	case <-e.ctx.Done():
		e.stop.Store(true)
		return true
	default:
	}
	if !e.deadline.IsZero() && !time.Now().Before(e.deadline) {
		e.stop.Store(true)
		return true
	}
	return false
}

// overNodeBudget reports whether the node budget is exhausted. It is only
// called at level barriers (stats are owned by the traversal goroutine).
func (e *Engine) overNodeBudget() bool {
	return e.budget.MaxNodes > 0 && e.stats.NodesVisited >= e.budget.MaxNodes
}

// partitionsCached counts the stripped partitions currently retained for
// progress reporting: the shared store when configured (partitions survive
// the run), otherwise the run's own retention window.
func (e *Engine) partitionsCached() int {
	if e.store != nil {
		return e.store.Len()
	}
	if t := e.dagParts; t != nil {
		return t.count()
	}
	n := 0
	for _, m := range e.parts {
		n += len(m)
	}
	return n
}

// finishLevel stamps the completed (possibly partial) level's wall-clock time
// and emits its progress event.
func (e *Engine) finishLevel(l, nodes int, start time.Time) {
	if e.onEnd != nil {
		e.onEnd(l, time.Since(start))
	}
	if e.onProgress != nil {
		e.onProgress(ProgressEvent{
			Level:            l,
			Nodes:            nodes,
			NodesVisited:     e.stats.NodesVisited,
			PartitionsCached: e.partitionsCached(),
			Elapsed:          time.Since(e.started),
		})
	}
}

// Partition returns the stripped partition of an attribute set from the
// retention window. During the visit of a level-l node, the partitions of
// levels l-2, l-1 and l are available — exactly what constancy (context size
// l-1) and order-compatibility (context size l-2) validation need. It is safe
// to call from visit worker goroutines; under the DAG scheduler the window is
// per-node rather than per-level (a level-j partition is only released once
// every node that could still read it has completed).
func (e *Engine) Partition(x bitset.AttrSet) *partition.Partition {
	if t := e.dagParts; t != nil {
		return t.get(x)
	}
	return e.parts[x.Len()][x]
}

// ParallelFor shards n items across the engine's worker pool; see the
// package-level ParallelFor for the contract. Unlike the package-level
// function, the engine's ParallelFor is interruptible: the cancellation and
// budget signals are polled between chunk handouts, and once one fires the
// remaining items are left unprocessed (their per-item output slots keep
// their zero values). Callers detect this with Interrupted and must not treat
// the per-item results as complete afterwards; the engine itself stops the
// traversal before any partially generated level is visited.
func (e *Engine) ParallelFor(n int, fn func(worker, item int)) {
	parallelForChunk(e.workers, n, chunkFor(e.workers, n), e.checkInterrupt, e.trapWorker, fn)
}

// Run executes the level-wise traversal. Starting from the singleton level,
// it calls visit once per level with the level number and its nodes; visit
// returns the surviving nodes (its pruning decision — return the input slice
// unchanged to keep everything), and Run generates the next level by joining
// prefix blocks of the survivors, keeping only candidates whose every
// immediate subset survived, and deriving each new node's partition (from the
// store when shared, as a parallel partition product otherwise).
//
// Cancellation and budget signals interrupt the traversal cooperatively: at
// every level barrier and — via the engine's ParallelFor — between chunk
// handouts inside a level, so the interrupt latency is bounded by one chunk
// of work. An interrupted run keeps everything already computed, never visits
// a partially generated level, and reports Stats.Interrupted.
func (e *Engine) Run(visit func(level int, nodes []bitset.AttrSet) []bitset.AttrSet) {
	defer e.trapTraversal()
	e.started = time.Now()
	if e.budget.Timeout > 0 {
		e.deadline = e.started.Add(e.budget.Timeout)
	}
	level := e.firstLevel()
	for l := 1; len(level) > 0 && (e.maxLevel <= 0 || l <= e.maxLevel); l++ {
		// The interrupt may have fired between levels (or during firstLevel,
		// whose singleton partitions would then be incomplete), and the node
		// budget is accounted at this barrier: either way the remaining work
		// is abandoned before the level is visited.
		if e.checkInterrupt() || e.overNodeBudget() {
			e.stop.Store(true)
			e.stats.Interrupted = true
			break
		}
		start := time.Now()
		nodes := len(level)
		e.stats.NodesVisited += nodes
		e.stats.MaxLevelReached = l
		kept := visit(l, level)
		if e.stopped() {
			// The level was only partially processed; its statistics are
			// still stamped so partial reports stay coherent.
			e.stats.Interrupted = true
			e.finishLevel(l, nodes, start)
			break
		}
		if e.maxLevel > 0 && l == e.maxLevel {
			// The loop is about to terminate; don't pay for the partition
			// products of a level that will never be visited.
			level = nil
		} else {
			level = e.nextLevel(kept, l)
			if e.stopped() {
				// Some products of the next level were never computed; the
				// level must not be visited.
				e.stats.Interrupted = true
				e.finishLevel(l, nodes, start)
				break
			}
		}
		// Partitions of level l-2 are no longer needed once level l+1 starts.
		delete(e.parts, l-2)
		e.finishLevel(l, nodes, start)
	}
}

// stopped reports whether the interrupt flag is latched, without re-deriving
// the signals.
func (e *Engine) stopped() bool { return e.stop.Load() }

// storeGet consults the shared store, counting hits and misses. New has
// bound the store to this engine's relation, so a stored partition is always
// the right one.
func (e *Engine) storeGet(x bitset.AttrSet) (*partition.Partition, bool) {
	if e.store == nil {
		return nil, false
	}
	p, ok := e.store.Get(x)
	if ok {
		e.stats.PartitionHits++
	} else {
		e.stats.PartitionMisses++
	}
	return p, ok
}

func (e *Engine) storePut(x bitset.AttrSet, p *partition.Partition) {
	if e.store != nil {
		e.store.Put(x, p)
	}
}

// firstLevel seeds the empty-set partition and the singleton attribute sets;
// per-column partitions are independent and are built in parallel, except
// those already present in the shared store.
func (e *Engine) firstLevel() []bitset.AttrSet {
	empty := bitset.AttrSet(0)
	p0, ok := e.storeGet(empty)
	if !ok {
		p0 = partition.FromConstant(e.enc.NumRows())
		e.storePut(empty, p0)
	}
	e.parts[0] = map[bitset.AttrSet]*partition.Partition{empty: p0}

	level := make([]bitset.AttrSet, e.numAttrs)
	partsArr := make([]*partition.Partition, e.numAttrs)
	miss := make([]int, 0, e.numAttrs)
	for a := 0; a < e.numAttrs; a++ {
		x := bitset.NewAttrSet(a)
		level[a] = x
		if p, ok := e.storeGet(x); ok {
			partsArr[a] = p
		} else {
			miss = append(miss, a)
		}
	}
	e.ParallelFor(len(miss), func(_, k int) {
		a := miss[k]
		partsArr[a] = partition.FromColumn(e.enc.Column(a), e.enc.Cardinality[a])
	})
	e.parts[1] = make(map[bitset.AttrSet]*partition.Partition, e.numAttrs)
	for a := 0; a < e.numAttrs; a++ {
		e.parts[1][level[a]] = partsArr[a]
	}
	for _, a := range miss {
		e.storePut(level[a], partsArr[a])
	}
	return level
}

// nextLevel is Algorithm 2 of the paper: it joins pairs of surviving nodes
// that share all but one attribute (prefix blocks), keeps only candidates
// whose every immediate subset survived, and derives the new nodes'
// partitions. Join enumeration is sequential (cheap bit-set work); the
// partition products — the dominant cost of level generation — run in
// parallel, each worker reusing its own scratch buffer. The shared store is
// probed store-first, during candidate enumeration itself: a hit skips the
// product staging (no generator lookups, no join slot) entirely, so a warm
// store reduces level generation to bit-set work plus map lookups.
func (e *Engine) nextLevel(level []bitset.AttrSet, l int) []bitset.AttrSet {
	if len(level) == 0 {
		return nil
	}
	present := make(map[bitset.AttrSet]bool, len(level))
	for _, x := range level {
		present[x] = true
	}
	// Prefix blocks: nodes that agree on everything except their largest
	// attribute. Sorting the block members keeps generation deterministic.
	blocks := make(map[bitset.AttrSet][]int)
	for _, x := range level {
		attrs := x.Attrs()
		last := attrs[len(attrs)-1]
		prefix := x.Remove(last)
		blocks[prefix] = append(blocks[prefix], last)
	}
	prefixes := make([]bitset.AttrSet, 0, len(blocks))
	for prefix := range blocks {
		prefixes = append(prefixes, prefix)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })

	curParts := e.parts[l]
	next := make([]bitset.AttrSet, 0)
	partsArr := make([]*partition.Partition, 0)
	type join struct{ left, right *partition.Partition }
	// miss and joins run parallel to each other: joins[k] stages the product
	// inputs for candidate index miss[k]. Store hits never occupy a slot.
	miss := make([]int, 0)
	joins := make([]join, 0)
	for _, prefix := range prefixes {
		members := blocks[prefix]
		sort.Ints(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b, c := members[i], members[j]
				x := prefix.Add(b).Add(c)
				if !allSubsetsPresent(x, present) {
					continue
				}
				if p, ok := e.storeGet(x); ok {
					next = append(next, x)
					partsArr = append(partsArr, p)
					continue
				}
				miss = append(miss, len(next))
				joins = append(joins, join{curParts[prefix.Add(b)], curParts[prefix.Add(c)]})
				next = append(next, x)
				partsArr = append(partsArr, nil)
			}
		}
	}

	e.ParallelFor(len(miss), func(wk, k int) {
		i := miss[k]
		x := next[i]
		// A panic inside the product (an invariant violation, or an injected
		// fault) is recorded with the node it was computing, so the recovered
		// stack names the offending attribute set; the worker-level trap would
		// only know the goroutine.
		defer func() {
			if rec := recover(); rec != nil {
				e.recordPanic(rec, x, true)
			}
		}()
		faultinject.Hit(faultinject.PartitionProduct)
		partsArr[i] = joins[k].left.ProductWith(joins[k].right, e.scratch[wk])
	})
	for _, i := range miss {
		e.storePut(next[i], partsArr[i])
	}
	nextParts := make(map[bitset.AttrSet]*partition.Partition, len(next))
	for i, x := range next {
		nextParts[x] = partsArr[i]
	}
	e.parts[l+1] = nextParts
	return next
}

func allSubsetsPresent(x bitset.AttrSet, present map[bitset.AttrSet]bool) bool {
	ok := true
	x.ForEach(func(a int) {
		if ok && !present[x.Remove(a)] {
			ok = false
		}
	})
	return ok
}
