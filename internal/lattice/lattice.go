// Package lattice owns the level-wise apriori driver shared by every
// algorithm in this repository that traverses the set-containment lattice of
// attribute sets with stripped partitions: FASTOD (internal/core), the TANE
// baseline (internal/tane), and the approximate and bidirectional extensions
// (internal/approx, internal/bidir).
//
// The Engine factors out what those traversals have in common — singleton
// seeding, prefix-block joins for the next level (Algorithm 2 of the paper),
// partition products, the bounded per-level partition retention window, and a
// chunked parallel executor — while each algorithm keeps ownership of its
// candidate-set bookkeeping, validation and pruning inside a per-level visit
// callback. A shared PartitionStore memoizes stripped partitions across runs
// (e.g. the pruned and un-pruned FASTOD passes of Figure 6, or repeated
// Discover calls behind the advisor) under a configurable memory bound.
package lattice

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Config configures an Engine.
type Config struct {
	// Workers is the number of goroutines used per lattice level, with the
	// same convention as core.Options.Workers: 0 selects runtime.GOMAXPROCS,
	// 1 forces the fully sequential path, negatives clamp to 1.
	Workers int
	// MaxLevel, when positive, stops the traversal after processing the given
	// lattice level.
	MaxLevel int
	// Store, when non-nil, is consulted before any stripped partition is
	// computed and receives every partition the run derives, so partitions are
	// reused across runs that share the store. Nil disables cross-run caching;
	// the per-run retention window still guarantees every partition a level
	// needs is available.
	Store *PartitionStore
	// OnLevelEnd, when non-nil, is invoked after each level has been visited
	// and the next level generated, with the wall-clock time the whole level
	// took. Clients use it to record per-level statistics.
	OnLevelEnd func(level int, elapsed time.Duration)
}

// Stats aggregates the work counters the engine maintains on behalf of its
// clients.
type Stats struct {
	// NodesVisited is the total number of lattice nodes handed to visit
	// callbacks.
	NodesVisited int
	// MaxLevelReached is the deepest lattice level that produced nodes.
	MaxLevelReached int
	// PartitionHits and PartitionMisses count the store lookups for lattice
	// node partitions during this run. Both stay zero without a Store.
	PartitionHits   int
	PartitionMisses int
}

// Engine drives one level-wise traversal over one encoded relation. It is not
// safe for concurrent use; concurrent discoveries each build their own Engine
// (they may share a PartitionStore, which is internally synchronized).
type Engine struct {
	enc      *relation.Encoded
	workers  int
	maxLevel int
	store    *PartitionStore
	onEnd    func(int, time.Duration)

	numAttrs int
	all      bitset.AttrSet

	// scratch holds one partition-product workspace per worker, reused across
	// all levels of the run.
	scratch []*partition.Scratch

	// parts retains the stripped partitions of the last three lattice levels,
	// keyed by level then attribute set. The maps are written only at level
	// barriers and are read-only while a level's nodes are being visited, so
	// visit callbacks may read them from any worker goroutine.
	parts map[int]map[bitset.AttrSet]*partition.Partition

	stats Stats
}

// New validates the relation and builds an engine.
func New(enc *relation.Encoded, cfg Config) (*Engine, error) {
	if enc == nil {
		return nil, fmt.Errorf("lattice: nil relation")
	}
	if enc.NumCols() == 0 {
		return nil, fmt.Errorf("lattice: relation has no columns")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("lattice: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	if cfg.Store != nil {
		if err := cfg.Store.bind(enc); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		enc:      enc,
		workers:  ResolveWorkers(cfg.Workers),
		maxLevel: cfg.MaxLevel,
		store:    cfg.Store,
		onEnd:    cfg.OnLevelEnd,
		numAttrs: enc.NumCols(),
		parts:    make(map[int]map[bitset.AttrSet]*partition.Partition),
	}
	e.scratch = make([]*partition.Scratch, e.workers)
	for i := range e.scratch {
		e.scratch[i] = partition.NewScratch()
	}
	for a := 0; a < e.numAttrs; a++ {
		e.all = e.all.Add(a)
	}
	return e, nil
}

// Workers returns the resolved worker count (>= 1). Clients size per-worker
// shards (counters, buffers) with it.
func (e *Engine) Workers() int { return e.workers }

// Scratch returns the engine's reusable partition workspace for one worker
// index (as handed to ParallelFor callbacks). The engine itself uses the
// scratches only while generating the next level, which never overlaps a
// visit callback, so visit callbacks are free to use them for swap checks,
// removal counting and ad-hoc products — keeping the whole validation hot
// path allocation-free. A scratch must never be used from a different worker
// index than the one it was requested for.
func (e *Engine) Scratch(worker int) *partition.Scratch { return e.scratch[worker] }

// All returns the full schema R as an attribute set.
func (e *Engine) All() bitset.AttrSet { return e.all }

// Stats returns the engine's work counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Partition returns the stripped partition of an attribute set from the
// retention window. During the visit of level l, the partitions of levels
// l-2, l-1 and l are available — exactly what constancy (context size l-1)
// and order-compatibility (context size l-2) validation need. It is safe to
// call from visit worker goroutines.
func (e *Engine) Partition(x bitset.AttrSet) *partition.Partition {
	return e.parts[x.Len()][x]
}

// ParallelFor shards n items across the engine's worker pool; see the
// package-level ParallelFor for the contract.
func (e *Engine) ParallelFor(n int, fn func(worker, item int)) {
	ParallelFor(e.workers, n, fn)
}

// Run executes the level-wise traversal. Starting from the singleton level,
// it calls visit once per level with the level number and its nodes; visit
// returns the surviving nodes (its pruning decision — return the input slice
// unchanged to keep everything), and Run generates the next level by joining
// prefix blocks of the survivors, keeping only candidates whose every
// immediate subset survived, and deriving each new node's partition (from the
// store when shared, as a parallel partition product otherwise).
func (e *Engine) Run(visit func(level int, nodes []bitset.AttrSet) []bitset.AttrSet) {
	level := e.firstLevel()
	for l := 1; len(level) > 0 && (e.maxLevel <= 0 || l <= e.maxLevel); l++ {
		start := time.Now()
		e.stats.NodesVisited += len(level)
		e.stats.MaxLevelReached = l
		kept := visit(l, level)
		if e.maxLevel > 0 && l == e.maxLevel {
			// The loop is about to terminate; don't pay for the partition
			// products of a level that will never be visited.
			level = nil
		} else {
			level = e.nextLevel(kept, l)
		}
		// Partitions of level l-2 are no longer needed once level l+1 starts.
		delete(e.parts, l-2)
		if e.onEnd != nil {
			e.onEnd(l, time.Since(start))
		}
	}
}

// storeGet consults the shared store, counting hits and misses. New has
// bound the store to this engine's relation, so a stored partition is always
// the right one.
func (e *Engine) storeGet(x bitset.AttrSet) (*partition.Partition, bool) {
	if e.store == nil {
		return nil, false
	}
	p, ok := e.store.Get(x)
	if ok {
		e.stats.PartitionHits++
	} else {
		e.stats.PartitionMisses++
	}
	return p, ok
}

func (e *Engine) storePut(x bitset.AttrSet, p *partition.Partition) {
	if e.store != nil {
		e.store.Put(x, p)
	}
}

// firstLevel seeds the empty-set partition and the singleton attribute sets;
// per-column partitions are independent and are built in parallel, except
// those already present in the shared store.
func (e *Engine) firstLevel() []bitset.AttrSet {
	empty := bitset.AttrSet(0)
	p0, ok := e.storeGet(empty)
	if !ok {
		p0 = partition.FromConstant(e.enc.NumRows())
		e.storePut(empty, p0)
	}
	e.parts[0] = map[bitset.AttrSet]*partition.Partition{empty: p0}

	level := make([]bitset.AttrSet, e.numAttrs)
	partsArr := make([]*partition.Partition, e.numAttrs)
	miss := make([]int, 0, e.numAttrs)
	for a := 0; a < e.numAttrs; a++ {
		x := bitset.NewAttrSet(a)
		level[a] = x
		if p, ok := e.storeGet(x); ok {
			partsArr[a] = p
		} else {
			miss = append(miss, a)
		}
	}
	e.ParallelFor(len(miss), func(_, k int) {
		a := miss[k]
		partsArr[a] = partition.FromColumn(e.enc.Column(a), e.enc.Cardinality[a])
	})
	e.parts[1] = make(map[bitset.AttrSet]*partition.Partition, e.numAttrs)
	for a := 0; a < e.numAttrs; a++ {
		e.parts[1][level[a]] = partsArr[a]
	}
	for _, a := range miss {
		e.storePut(level[a], partsArr[a])
	}
	return level
}

// nextLevel is Algorithm 2 of the paper: it joins pairs of surviving nodes
// that share all but one attribute (prefix blocks), keeps only candidates
// whose every immediate subset survived, and derives the new nodes'
// partitions. Join enumeration is sequential (cheap bit-set work); the
// partition products — the dominant cost of level generation — run in
// parallel, each worker reusing its own scratch buffer. Store lookups happen
// sequentially before the parallel phase so only genuine misses are computed.
func (e *Engine) nextLevel(level []bitset.AttrSet, l int) []bitset.AttrSet {
	if len(level) == 0 {
		return nil
	}
	present := make(map[bitset.AttrSet]bool, len(level))
	for _, x := range level {
		present[x] = true
	}
	// Prefix blocks: nodes that agree on everything except their largest
	// attribute. Sorting the block members keeps generation deterministic.
	blocks := make(map[bitset.AttrSet][]int)
	for _, x := range level {
		attrs := x.Attrs()
		last := attrs[len(attrs)-1]
		prefix := x.Remove(last)
		blocks[prefix] = append(blocks[prefix], last)
	}
	prefixes := make([]bitset.AttrSet, 0, len(blocks))
	for prefix := range blocks {
		prefixes = append(prefixes, prefix)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })

	curParts := e.parts[l]
	next := make([]bitset.AttrSet, 0)
	type join struct{ left, right *partition.Partition }
	joins := make([]join, 0)
	for _, prefix := range prefixes {
		members := blocks[prefix]
		sort.Ints(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b, c := members[i], members[j]
				x := prefix.Add(b).Add(c)
				if !allSubsetsPresent(x, present) {
					continue
				}
				next = append(next, x)
				joins = append(joins, join{curParts[prefix.Add(b)], curParts[prefix.Add(c)]})
			}
		}
	}

	partsArr := make([]*partition.Partition, len(next))
	miss := make([]int, 0, len(next))
	for i, x := range next {
		if p, ok := e.storeGet(x); ok {
			partsArr[i] = p
		} else {
			miss = append(miss, i)
		}
	}
	e.ParallelFor(len(miss), func(wk, k int) {
		i := miss[k]
		partsArr[i] = joins[i].left.ProductWith(joins[i].right, e.scratch[wk])
	})
	for _, i := range miss {
		e.storePut(next[i], partsArr[i])
	}
	nextParts := make(map[bitset.AttrSet]*partition.Partition, len(next))
	for i, x := range next {
		nextParts[x] = partsArr[i]
	}
	e.parts[l+1] = nextParts
	return next
}

func allSubsetsPresent(x bitset.AttrSet, present map[bitset.AttrSet]bool) bool {
	ok := true
	x.ForEach(func(a int) {
		if ok && !present[x.Remove(a)] {
			ok = false
		}
	})
	return ok
}
