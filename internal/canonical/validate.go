package canonical

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Holds reports whether the canonical OD is satisfied by the encoded relation
// instance, by materializing the partition of the context and checking the
// constancy or no-swap condition within every equivalence class (Definition 6).
// It is independent of the discovery algorithms and serves as their oracle.
func Holds(enc *relation.Encoded, od OD) (bool, error) {
	if err := checkAttrs(enc, od); err != nil {
		return false, err
	}
	if od.IsTrivial() {
		return true, nil
	}
	ctx := ContextPartition(enc, od.Context)
	switch od.Kind {
	case Constancy:
		return ctx.ConstantInClasses(enc.Column(od.A)), nil
	case OrderCompatible:
		return !ctx.HasSwap(enc.Column(od.A), enc.Column(od.B)), nil
	default:
		return false, fmt.Errorf("canonical: unknown kind %v", od.Kind)
	}
}

// MustHold is Holds for ODs known to reference valid attributes; it panics on
// structural errors and is intended for tests and internal callers. Callers
// validating externally supplied ODs (e.g. parsed expressions) must use Holds
// and handle the error; the panic message names the offending OD so that a
// recovered stack identifies it.
func MustHold(enc *relation.Encoded, od OD) bool {
	ok, err := Holds(enc, od)
	if err != nil {
		panic(fmt.Sprintf("canonical: od %v: %v", od, err))
	}
	return ok
}

// Violation describes why a canonical OD fails on an instance: a pair of rows
// forming a split (constancy OD) or a swap (order-compatibility OD).
type Violation struct {
	OD OD
	// RowS and RowT are the witnessing tuple indexes.
	RowS, RowT int
	// IsSwap is true for order-compatibility violations, false for splits.
	IsSwap bool
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	kind := "split"
	if v.IsSwap {
		kind = "swap"
	}
	return fmt.Sprintf("%s violated by %s over rows (%d,%d)", v.OD, kind, v.RowS, v.RowT)
}

// FindViolation returns a witness pair for a violated canonical OD, if any.
func FindViolation(enc *relation.Encoded, od OD) (Violation, bool, error) {
	if err := checkAttrs(enc, od); err != nil {
		return Violation{}, false, err
	}
	if od.IsTrivial() {
		return Violation{}, false, nil
	}
	ctx := ContextPartition(enc, od.Context)
	switch od.Kind {
	case Constancy:
		if w, ok := ctx.FindSplit(enc.Column(od.A)); ok {
			return Violation{OD: od, RowS: w.RowS, RowT: w.RowT, IsSwap: false}, true, nil
		}
	case OrderCompatible:
		if w, ok := ctx.FindSwap(enc.Column(od.A), enc.Column(od.B)); ok {
			return Violation{OD: od, RowS: w.RowS, RowT: w.RowT, IsSwap: true}, true, nil
		}
	}
	return Violation{}, false, nil
}

// ContextPartition computes the stripped partition of the relation with
// respect to the attribute set ctx by multiplying single-attribute partitions.
// The empty context yields the single-class partition.
func ContextPartition(enc *relation.Encoded, ctx bitset.AttrSet) *partition.Partition {
	return contextPartitionWith(enc, ctx, nil)
}

// contextPartitionWith is ContextPartition reusing a scratch workspace across
// the product chain (and across calls, for loops like ReferenceDiscover).
func contextPartitionWith(enc *relation.Encoded, ctx bitset.AttrSet, s *partition.Scratch) *partition.Partition {
	if s == nil {
		s = partition.NewScratch()
	}
	p := partition.FromConstant(enc.NumRows())
	ctx.ForEach(func(a int) {
		p = p.ProductWith(partition.FromColumn(enc.Column(a), enc.Cardinality[a]), s)
	})
	return p
}

func checkAttrs(enc *relation.Encoded, od OD) error {
	check := func(a int) error {
		if a < 0 || a >= enc.NumCols() {
			return fmt.Errorf("canonical: attribute %d out of range for relation with %d columns", a, enc.NumCols())
		}
		return nil
	}
	for _, a := range od.Context.Attrs() {
		if err := check(a); err != nil {
			return err
		}
	}
	if err := check(od.A); err != nil {
		return err
	}
	if od.Kind == OrderCompatible {
		if err := check(od.B); err != nil {
			return err
		}
	}
	return nil
}

// ReferenceDiscover enumerates every non-trivial canonical OD over the
// relation's schema, checks it directly against the instance, and returns the
// complete minimal set in the sense of Section 4.1:
//
//   - X: [] ↦ A is minimal iff it holds, is non-trivial, and no proper subset
//     context Y ⊂ X has Y: [] ↦ A holding;
//   - X: A ~ B is minimal iff it holds, is non-trivial, no proper subset
//     context has A ~ B holding, and neither X: [] ↦ A nor X: [] ↦ B holds.
//
// The enumeration is exponential in the number of attributes and quadratic in
// the number of rows in the worst case; it is the oracle used to verify that
// FASTOD is complete and minimal, and is exported through the public API as a
// slow reference implementation. Relations with more than 20 attributes are
// rejected to avoid accidental blow-ups.
func ReferenceDiscover(enc *relation.Encoded) ([]OD, error) {
	n := enc.NumCols()
	if n > 20 {
		return nil, fmt.Errorf("canonical: reference discovery limited to 20 attributes, got %d", n)
	}
	// holdsConst[ctx][a] and holdsOC[ctx][pair] memoize validity per context.
	type pairKey struct{ a, b int }
	holdsConst := make(map[bitset.AttrSet]map[int]bool)
	holdsOC := make(map[bitset.AttrSet]map[pairKey]bool)

	// One scratch serves every context partition and swap check of the
	// enumeration — the loop is allocation-heavy enough without them.
	scratch := partition.NewScratch()
	contexts := allSubsets(n)
	for _, ctx := range contexts {
		p := contextPartitionWith(enc, ctx, scratch)
		cm := make(map[int]bool)
		om := make(map[pairKey]bool)
		for a := 0; a < n; a++ {
			if ctx.Contains(a) {
				continue
			}
			cm[a] = p.ConstantInClasses(enc.Column(a))
			for b := a + 1; b < n; b++ {
				if ctx.Contains(b) {
					continue
				}
				om[pairKey{a, b}] = !p.HasSwapWith(enc.Column(a), enc.Column(b), scratch)
			}
		}
		holdsConst[ctx] = cm
		holdsOC[ctx] = om
	}

	var out []OD
	for _, ctx := range contexts {
		for a := 0; a < n; a++ {
			if ctx.Contains(a) || !holdsConst[ctx][a] {
				continue
			}
			minimal := true
			for _, sub := range ctx.Subsets() {
				if holdsConst[sub][a] {
					minimal = false
					break
				}
			}
			if minimal {
				out = append(out, NewConstancy(ctx, a))
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if ctx.Contains(a) || ctx.Contains(b) || !holdsOC[ctx][pairKey{a, b}] {
					continue
				}
				if holdsConst[ctx][a] || holdsConst[ctx][b] {
					continue // Propagate makes it non-minimal
				}
				minimal := true
				for _, sub := range ctx.Subsets() {
					if holdsOC[sub][pairKey{a, b}] {
						minimal = false
						break
					}
				}
				if minimal {
					out = append(out, NewOrderCompatible(ctx, a, b))
				}
			}
		}
	}
	Sort(out)
	return out, nil
}

// allSubsets enumerates every subset of {0..n-1} ordered by size then value,
// so that subsets always precede supersets.
func allSubsets(n int) []bitset.AttrSet {
	total := 1 << uint(n)
	out := make([]bitset.AttrSet, 0, total)
	for mask := 0; mask < total; mask++ {
		out = append(out, bitset.AttrSet(mask))
	}
	// Order by cardinality, then numeric value, so iteration is level-wise.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i] < out[j]
	})
	return out
}
