package canonical

import (
	"fmt"

	"repro/internal/bitset"
)

// This file implements the set-based axiomatization of Figure 2 as explicit
// inference-rule applications. Each rule takes its premises and returns the
// conclusion (or an error if the premises do not have the required shape).
// The rules are the formal core of the paper's Section 3.2; they are used by
// the tests to verify soundness (every derived OD holds whenever the premises
// hold) and by the discovery algorithm's documentation of its pruning rules
// (Lemmas 5 and 6 are derived rules built from Strengthen, Propagate and
// Chain).

// AxiomReflexivity returns X: [] ↦ A for A ∈ X (always true).
func AxiomReflexivity(ctx bitset.AttrSet, a int) (OD, error) {
	if !ctx.Contains(a) {
		return OD{}, fmt.Errorf("canonical: Reflexivity requires A ∈ X, got A=%d X=%v", a, ctx)
	}
	return NewConstancy(ctx, a), nil
}

// AxiomIdentity returns X: A ~ A (always true). The result is trivial by
// construction.
func AxiomIdentity(ctx bitset.AttrSet, a int) OD {
	return OD{Context: ctx, Kind: OrderCompatible, A: a, B: a}
}

// AxiomCommutativity maps X: A ~ B to X: B ~ A. Canonical ODs store the pair
// normalized, so the conclusion equals the premise; the rule exists to mirror
// Figure 2 and to document why only one of the two orientations is stored.
func AxiomCommutativity(premise OD) (OD, error) {
	if premise.Kind != OrderCompatible {
		return OD{}, fmt.Errorf("canonical: Commutativity applies to order-compatibility ODs, got %v", premise)
	}
	return premise, nil
}

// AxiomStrengthen applies
//
//	X: [] ↦ A    XA: [] ↦ B
//	------------------------
//	       X: [] ↦ B
func AxiomStrengthen(first, second OD) (OD, error) {
	if first.Kind != Constancy || second.Kind != Constancy {
		return OD{}, fmt.Errorf("canonical: Strengthen requires two constancy ODs")
	}
	wantCtx := first.Context.Add(first.A)
	if !second.Context.Equal(wantCtx) {
		return OD{}, fmt.Errorf("canonical: Strengthen requires the second context to be XA = %v, got %v", wantCtx, second.Context)
	}
	return NewConstancy(first.Context, second.A), nil
}

// AxiomPropagate applies
//
//	X: [] ↦ A
//	-----------
//	X: A ~ B      for any attribute B
func AxiomPropagate(premise OD, b int) (OD, error) {
	if premise.Kind != Constancy {
		return OD{}, fmt.Errorf("canonical: Propagate requires a constancy OD, got %v", premise)
	}
	if premise.A == b {
		return AxiomIdentity(premise.Context, b), nil
	}
	return NewOrderCompatible(premise.Context, premise.A, b), nil
}

// AxiomAugmentationI applies
//
//	X: [] ↦ A
//	-----------
//	ZX: [] ↦ A
func AxiomAugmentationI(premise OD, z bitset.AttrSet) (OD, error) {
	if premise.Kind != Constancy {
		return OD{}, fmt.Errorf("canonical: Augmentation-I requires a constancy OD, got %v", premise)
	}
	return NewConstancy(premise.Context.Union(z), premise.A), nil
}

// AxiomAugmentationII applies
//
//	X: A ~ B
//	-----------
//	ZX: A ~ B
func AxiomAugmentationII(premise OD, z bitset.AttrSet) (OD, error) {
	if premise.Kind != OrderCompatible {
		return OD{}, fmt.Errorf("canonical: Augmentation-II requires an order-compatibility OD, got %v", premise)
	}
	ctx := premise.Context.Union(z)
	if premise.A == premise.B {
		return OD{Context: ctx, Kind: OrderCompatible, A: premise.A, B: premise.B}, nil
	}
	return NewOrderCompatible(ctx, premise.A, premise.B), nil
}

// AxiomChain applies the Chain rule of Figure 2:
//
//	X: A ~ B1,  ∀i X: Bi ~ Bi+1,  X: Bn ~ C,  ∀i XBi: A ~ C
//	---------------------------------------------------------
//	                      X: A ~ C
//
// The premises must all share the context ctx; chain is the list B1..Bn.
// The function validates the premise shapes and returns the conclusion.
func AxiomChain(ctx bitset.AttrSet, a int, chain []int, c int, premises []OD) (OD, error) {
	if len(chain) == 0 {
		return OD{}, fmt.Errorf("canonical: Chain requires at least one intermediate attribute")
	}
	need := make(map[OD]bool)
	addOC := func(context bitset.AttrSet, x, y int) {
		if x == y || context.Contains(x) || context.Contains(y) {
			return // trivial premises are free
		}
		need[NewOrderCompatible(context, x, y)] = true
	}
	addOC(ctx, a, chain[0])
	for i := 0; i+1 < len(chain); i++ {
		addOC(ctx, chain[i], chain[i+1])
	}
	addOC(ctx, chain[len(chain)-1], c)
	for _, b := range chain {
		addOC(ctx.Add(b), a, c)
	}
	have := make(map[OD]bool, len(premises))
	for _, p := range premises {
		have[p] = true
	}
	for p := range need {
		if !have[p] {
			return OD{}, fmt.Errorf("canonical: Chain premise %v missing", p)
		}
	}
	if a == c {
		return AxiomIdentity(ctx, a), nil
	}
	return NewOrderCompatible(ctx, a, c), nil
}

// DerivedLemma5 is the pruning rule of Lemma 5 (derived from Strengthen):
// if B ∈ X, X\B: [] ↦ B holds and X: [] ↦ A holds, then X\B: [] ↦ A holds.
// It returns the strengthened OD.
func DerivedLemma5(xMinusBToB, xToA OD) (OD, error) {
	if xMinusBToB.Kind != Constancy || xToA.Kind != Constancy {
		return OD{}, fmt.Errorf("canonical: Lemma 5 requires constancy ODs")
	}
	x := xToA.Context
	b := xMinusBToB.A
	if !x.Contains(b) || !xMinusBToB.Context.Equal(x.Remove(b)) {
		return OD{}, fmt.Errorf("canonical: Lemma 5 premise contexts do not line up")
	}
	return NewConstancy(x.Remove(b), xToA.A), nil
}

// DerivedLemma6 is the pruning rule of Lemma 6 (derived from Propagate and
// Chain): if C ∈ X, X\C: [] ↦ C holds and X: A ~ B holds, then X\C: A ~ B
// holds. It returns the strengthened OD.
func DerivedLemma6(xMinusCToC, xAB OD) (OD, error) {
	if xMinusCToC.Kind != Constancy || xAB.Kind != OrderCompatible {
		return OD{}, fmt.Errorf("canonical: Lemma 6 requires a constancy and an order-compatibility OD")
	}
	x := xAB.Context
	c := xMinusCToC.A
	if !x.Contains(c) || !xMinusCToC.Context.Equal(x.Remove(c)) {
		return OD{}, fmt.Errorf("canonical: Lemma 6 premise contexts do not line up")
	}
	ctx := x.Remove(c)
	if xAB.A == xAB.B {
		return AxiomIdentity(ctx, xAB.A), nil
	}
	return NewOrderCompatible(ctx, xAB.A, xAB.B), nil
}
