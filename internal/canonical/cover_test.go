package canonical

import (
	"testing"

	"repro/internal/bitset"
)

func TestCoverImplication(t *testing.T) {
	// Cover: {0}: [] -> 1,  {}: 2 ~ 3
	cover := NewCover([]OD{
		NewConstancy(bitset.NewAttrSet(0), 1),
		NewOrderCompatible(bitset.AttrSet(0), 2, 3),
	})
	if cover.Size() != 2 {
		t.Fatalf("Size = %d", cover.Size())
	}

	// Augmentation-I: {0,2}: [] -> 1 is implied.
	if !cover.ImpliesConstancy(bitset.NewAttrSet(0, 2), 1) {
		t.Error("Augmentation-I implication failed")
	}
	// Not implied: {}: [] -> 1 (strictly smaller context).
	if cover.ImpliesConstancy(bitset.AttrSet(0), 1) {
		t.Error("smaller context must not be implied")
	}
	// Reflexivity: {1}: [] -> 1.
	if !cover.ImpliesConstancy(bitset.NewAttrSet(1), 1) {
		t.Error("Reflexivity implication failed")
	}
	// Augmentation-II: {5}: 2 ~ 3 implied; symmetric orientation too.
	if !cover.ImpliesOrderCompat(bitset.NewAttrSet(5), 2, 3) {
		t.Error("Augmentation-II implication failed")
	}
	if !cover.ImpliesOrderCompat(bitset.NewAttrSet(5), 3, 2) {
		t.Error("Commutativity implication failed")
	}
	// Propagate: {0}: 1 ~ 7 implied because 1 is constant in context {0}.
	if !cover.ImpliesOrderCompat(bitset.NewAttrSet(0), 1, 7) {
		t.Error("Propagate implication failed")
	}
	// Identity / Normalization trivia.
	if !cover.ImpliesOrderCompat(bitset.AttrSet(0), 4, 4) {
		t.Error("Identity implication failed")
	}
	if !cover.ImpliesOrderCompat(bitset.NewAttrSet(4), 4, 6) {
		t.Error("Normalization implication failed")
	}
	// Not implied: {}: 2 ~ 7.
	if cover.ImpliesOrderCompat(bitset.AttrSet(0), 2, 7) {
		t.Error("unrelated pair must not be implied")
	}

	// Implies / ImpliesAll wrappers.
	if !cover.Implies(NewConstancy(bitset.NewAttrSet(0, 3), 1)) {
		t.Error("Implies failed")
	}
	if cover.Implies(OD{Kind: Kind(9)}) {
		t.Error("unknown kind must not be implied")
	}
	missing, ok := cover.ImpliesAll([]OD{
		NewConstancy(bitset.NewAttrSet(0), 1),
		NewConstancy(bitset.AttrSet(0), 7),
	})
	if ok || !missing.Equal(NewConstancy(bitset.AttrSet(0), 7)) {
		t.Errorf("ImpliesAll = %v %v", missing, ok)
	}
	if _, ok := cover.ImpliesAll([]OD{NewConstancy(bitset.NewAttrSet(0), 1)}); !ok {
		t.Error("ImpliesAll should succeed for implied ODs")
	}
}

func TestCoverIgnoresTrivialODs(t *testing.T) {
	cover := NewCover([]OD{
		NewConstancy(bitset.NewAttrSet(0), 0),
		OD{Context: bitset.AttrSet(0), Kind: OrderCompatible, A: 1, B: 1},
	})
	if cover.Size() != 0 {
		t.Errorf("Size = %d, want 0 (trivial ODs ignored)", cover.Size())
	}
}

func TestMinimize(t *testing.T) {
	ods := []OD{
		NewConstancy(bitset.NewAttrSet(0), 1),
		NewConstancy(bitset.NewAttrSet(0, 2), 1),       // implied by the first (Aug-I)
		NewOrderCompatible(bitset.NewAttrSet(0), 1, 3), // implied by the first (Propagate)
		NewOrderCompatible(bitset.AttrSet(0), 2, 3),
		NewOrderCompatible(bitset.NewAttrSet(5), 2, 3), // implied by the previous (Aug-II)
		NewConstancy(bitset.NewAttrSet(1), 1),          // trivial
		NewConstancy(bitset.NewAttrSet(0), 1),          // duplicate
	}
	got := Minimize(ods)
	want := []OD{
		NewOrderCompatible(bitset.AttrSet(0), 2, 3),
		NewConstancy(bitset.NewAttrSet(0), 1),
	}
	Sort(want)
	if len(got) != len(want) {
		t.Fatalf("Minimize = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Minimize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMinimizeEmpty(t *testing.T) {
	if got := Minimize(nil); len(got) != 0 {
		t.Errorf("Minimize(nil) = %v", got)
	}
}
