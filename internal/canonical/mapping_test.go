package canonical

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/listod"
	"repro/internal/relation"
)

// TestMapListODExample5 checks the worked Example 5 of the paper: the OD
// [A,B] ↦ [C,D] maps to {A,B}: []↦C, {A,B}: []↦D, {}: A~C, {A}: B~C,
// {C}: A~D and {A,C}: B~D.
func TestMapListODExample5(t *testing.T) {
	const a, b, c, d = 0, 1, 2, 3
	got := MapListODNonTrivial(listod.Spec{a, b}, listod.Spec{c, d})
	want := []OD{
		NewConstancy(bitset.NewAttrSet(a, b), c),
		NewConstancy(bitset.NewAttrSet(a, b), d),
		NewOrderCompatible(bitset.AttrSet(0), a, c),
		NewOrderCompatible(bitset.NewAttrSet(a), b, c),
		NewOrderCompatible(bitset.NewAttrSet(c), a, d),
		NewOrderCompatible(bitset.NewAttrSet(a, c), b, d),
	}
	Sort(want)
	if len(got) != len(want) {
		t.Fatalf("mapping size = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("mapping[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMapListODSizeIsPolynomial(t *testing.T) {
	x := listod.Spec{0, 1, 2}
	y := listod.Spec{3, 4}
	all := MapListOD(x, y)
	// |Y| constancy ODs plus |X|*|Y| order-compatibility ODs.
	if len(all) != len(y)+len(x)*len(y) {
		t.Errorf("mapping size = %d, want %d", len(all), len(y)+len(x)*len(y))
	}
}

func TestMapListODWithRepeatsAndIdentity(t *testing.T) {
	// [A] ↦ [A,B]: the pair (A,A) is trivial, the context of B's pair is {A}.
	got := MapListODNonTrivial(listod.Spec{0}, listod.Spec{0, 1})
	want := []OD{
		NewConstancy(bitset.NewAttrSet(0), 0), // trivial, filtered
		NewConstancy(bitset.NewAttrSet(0), 1),
	}
	_ = want
	// After filtering trivial ODs only {0}: []↦1 and {0}: 0~1-style trivia remain;
	// the order-compatibility ODs all mention attribute 0 in context or are identity.
	if len(got) != 1 || !got[0].Equal(NewConstancy(bitset.NewAttrSet(0), 1)) {
		t.Errorf("mapping = %v, want only {0}: [] -> 1", got)
	}
}

func TestMapFDAndMapOrderCompatibility(t *testing.T) {
	fds := MapFD(listod.Spec{0, 1}, listod.Spec{2, 3})
	if len(fds) != 2 || fds[0].Kind != Constancy || fds[1].A != 3 {
		t.Errorf("MapFD = %v", fds)
	}
	ocs := MapOrderCompatibility(listod.Spec{0}, listod.Spec{1, 0})
	// pairs: (0,1) ctx {}; (0,0) identity ctx {1}
	if len(ocs) != 2 {
		t.Fatalf("MapOrderCompatibility = %v", ocs)
	}
	if !ocs[0].Equal(NewOrderCompatible(bitset.AttrSet(0), 0, 1)) {
		t.Errorf("ocs[0] = %v", ocs[0])
	}
	if !ocs[1].IsTrivial() {
		t.Errorf("ocs[1] should be trivial identity, got %v", ocs[1])
	}
}

// TestTheorem5Equivalence is the central mapping property: a list-based OD
// holds on an instance iff every canonical OD in its Theorem-5 image holds.
func TestTheorem5Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		rows := 2 + rng.Intn(16)
		cols := 2 + rng.Intn(4)
		r := datagen.RandomStructuredRelation(rows, cols, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSpec(rng, cols)
		y := randomSpec(rng, cols)

		listHolds := listod.HoldsBruteForce(enc, x, y)
		mapped := MapListOD(x, y)
		allHold := true
		for _, od := range mapped {
			if !MustHold(enc, od) {
				allHold = false
				break
			}
		}
		if listHolds != allHold {
			t.Fatalf("trial %d: Theorem 5 violated for X=%v Y=%v: list=%v canonical=%v\nmapped=%v",
				trial, x, y, listHolds, allHold, mapped)
		}
	}
}

// TestTheorem3And4 checks the two halves of the mapping separately:
// X ↦ XY iff all constancy images hold, and X ~ Y iff all OC images hold.
func TestTheorem3And4(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 150; trial++ {
		rows := 2 + rng.Intn(14)
		cols := 2 + rng.Intn(4)
		r := datagen.RandomStructuredRelation(rows, cols, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSpec(rng, cols)
		y := randomSpec(rng, cols)

		fdHolds := listod.HoldsBruteForce(enc, x, x.Concat(y))
		fdMapped := true
		for _, od := range MapFD(x, y) {
			if !MustHold(enc, od) {
				fdMapped = false
				break
			}
		}
		if fdHolds != fdMapped {
			t.Fatalf("trial %d: Theorem 3 violated for X=%v Y=%v", trial, x, y)
		}

		ocHolds := listod.OrderCompatible(enc, x, y)
		ocMapped := true
		for _, od := range MapOrderCompatibility(x, y) {
			if !MustHold(enc, od) {
				ocMapped = false
				break
			}
		}
		if ocHolds != ocMapped {
			t.Fatalf("trial %d: Theorem 4 violated for X=%v Y=%v", trial, x, y)
		}
	}
}

func randomSpec(rng *rand.Rand, cols int) listod.Spec {
	n := rng.Intn(3)
	out := make(listod.Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rng.Intn(cols))
	}
	return out
}
