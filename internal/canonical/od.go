// Package canonical implements the paper's central representational idea: the
// set-based canonical form for order dependencies (Section 3). A canonical OD
// is either a constancy OD  X: [] ↦ A  ("A is constant within each
// equivalence class of the context X") or an order-compatibility OD
// X: A ~ B  ("A and B have no swaps within each equivalence class of X").
//
// The package provides the polynomial mapping from list-based ODs to
// canonical ODs (Theorem 5), the set-based inference rules of Figure 2,
// implication reasoning over sets of canonical ODs (covers), direct
// validation of canonical ODs against relation instances, and a brute-force
// reference discoverer used as the ground truth in tests.
package canonical

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// Kind distinguishes the two canonical OD shapes.
type Kind int

const (
	// Constancy is X: [] ↦ A. Its list-based reading is X' ↦ X'A for any
	// permutation X' of X, i.e. the FD X → A.
	Constancy Kind = iota
	// OrderCompatible is X: A ~ B. Its list-based reading is X'A ~ X'B for
	// any permutation X' of X.
	OrderCompatible
)

// String returns "constancy" or "order-compatible".
func (k Kind) String() string {
	switch k {
	case Constancy:
		return "constancy"
	case OrderCompatible:
		return "order-compatible"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// OD is a set-based canonical order dependency. For OrderCompatible ODs the
// attribute pair is stored normalized with A < B, because order compatibility
// is symmetric (Commutativity axiom).
type OD struct {
	// Context is the attribute set X within whose equivalence classes the
	// condition must hold.
	Context bitset.AttrSet
	Kind    Kind
	// A is the constant attribute (Constancy) or the smaller attribute of the
	// pair (OrderCompatible).
	A int
	// B is the larger attribute of the pair; unused for Constancy ODs.
	B int
}

// NewConstancy builds the canonical OD  ctx: [] ↦ a.
func NewConstancy(ctx bitset.AttrSet, a int) OD {
	return OD{Context: ctx, Kind: Constancy, A: a}
}

// NewOrderCompatible builds the canonical OD  ctx: a ~ b  with the pair
// normalized so that A < B. It panics if a == b; use IsTrivial-aware callers
// for the identity case.
func NewOrderCompatible(ctx bitset.AttrSet, a, b int) OD {
	p := bitset.NewPair(a, b)
	return OD{Context: ctx, Kind: OrderCompatible, A: p.A, B: p.B}
}

// Pair returns the attribute pair of an OrderCompatible OD.
func (od OD) Pair() bitset.Pair {
	return bitset.Pair{A: od.A, B: od.B}
}

// IsTrivial reports whether the OD holds on every relation instance:
// a constancy OD is trivial when A ∈ X (Reflexivity); an order-compatibility
// OD is trivial when A ∈ X or B ∈ X (Normalization, Lemma 4) or A = B
// (Identity).
func (od OD) IsTrivial() bool {
	switch od.Kind {
	case Constancy:
		return od.Context.Contains(od.A)
	case OrderCompatible:
		return od.A == od.B || od.Context.Contains(od.A) || od.Context.Contains(od.B)
	default:
		return false
	}
}

// Attributes returns the set of all attributes mentioned by the OD (context
// plus right-hand attributes).
func (od OD) Attributes() bitset.AttrSet {
	s := od.Context.Add(od.A)
	if od.Kind == OrderCompatible {
		s = s.Add(od.B)
	}
	return s
}

// Equal reports whether two canonical ODs are identical.
func (od OD) Equal(other OD) bool {
	return od.Context == other.Context && od.Kind == other.Kind && od.A == other.A && od.B == other.B
}

// String renders the OD with attribute indexes, e.g. "{0,1}: [] -> 2" or
// "{0}: 1 ~ 3".
func (od OD) String() string {
	if od.Kind == Constancy {
		return fmt.Sprintf("%s: [] -> %d", od.Context, od.A)
	}
	return fmt.Sprintf("%s: %d ~ %d", od.Context, od.A, od.B)
}

// NamesString renders the OD using attribute names, e.g. "{yr}: [] -> bin".
func (od OD) NamesString(names []string) string {
	name := func(a int) string {
		if a >= 0 && a < len(names) {
			return names[a]
		}
		return fmt.Sprintf("#%d", a)
	}
	if od.Kind == Constancy {
		return fmt.Sprintf("%s: [] -> %s", od.Context.Names(names), name(od.A))
	}
	return fmt.Sprintf("%s: %s ~ %s", od.Context.Names(names), name(od.A), name(od.B))
}

// Less defines a deterministic total order over canonical ODs, used to sort
// discovery output: by context size, then context bits, then kind, then the
// right-hand attributes.
func Less(a, b OD) bool {
	if a.Context.Len() != b.Context.Len() {
		return a.Context.Len() < b.Context.Len()
	}
	if a.Context != b.Context {
		return a.Context < b.Context
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Sort orders a slice of canonical ODs deterministically (see Less).
func Sort(ods []OD) {
	sort.Slice(ods, func(i, j int) bool { return Less(ods[i], ods[j]) })
}

// Count summarizes a set of canonical ODs the way the paper reports results:
// total, number of constancy (FD-flavoured) ODs and number of
// order-compatibility ODs.
type Count struct {
	Total       int
	Constancy   int
	OrderCompat int
}

// CountByKind tallies a slice of canonical ODs.
func CountByKind(ods []OD) Count {
	var c Count
	for _, od := range ods {
		c.Total++
		if od.Kind == Constancy {
			c.Constancy++
		} else {
			c.OrderCompat++
		}
	}
	return c
}

// String renders the count like the figures in the paper: "17 (16 + 1)".
func (c Count) String() string {
	return fmt.Sprintf("%d (%d + %d)", c.Total, c.Constancy, c.OrderCompat)
}
