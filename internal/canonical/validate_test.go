package canonical

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/listod"
	"repro/internal/relation"
)

func encodeEmployees(t *testing.T) (*relation.Encoded, map[string]int) {
	t.Helper()
	enc, err := relation.Encode(datagen.Employees())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	idx := map[string]int{}
	for i, n := range enc.ColumnNames {
		idx[n] = i
	}
	return enc, idx
}

// TestHoldsExample4 checks the worked Example 4 of the paper against Table 1:
// {position}: [] ↦ bin holds, {year}: bin ~ salary holds, while
// {year}: bin ~ subgroup and {position}: [] ↦ salary do not.
func TestHoldsExample4(t *testing.T) {
	enc, idx := encodeEmployees(t)
	posit, bin, sal, subg, yr := idx["posit"], idx["bin"], idx["sal"], idx["subg"], idx["yr"]

	cases := []struct {
		od   OD
		want bool
	}{
		{NewConstancy(bitset.NewAttrSet(posit), bin), true},
		{NewOrderCompatible(bitset.NewAttrSet(yr), bin, sal), true},
		{NewOrderCompatible(bitset.NewAttrSet(yr), bin, subg), false},
		{NewConstancy(bitset.NewAttrSet(posit), sal), false},
	}
	for _, tc := range cases {
		got, err := Holds(enc, tc.od)
		if err != nil {
			t.Fatalf("Holds(%v): %v", tc.od, err)
		}
		if got != tc.want {
			t.Errorf("Holds(%v) = %v, want %v", tc.od.NamesString(enc.ColumnNames), got, tc.want)
		}
	}
}

func TestHoldsTrivialAndErrors(t *testing.T) {
	enc, _ := encodeEmployees(t)
	trivial := NewConstancy(bitset.NewAttrSet(0), 0)
	if ok, err := Holds(enc, trivial); err != nil || !ok {
		t.Error("trivial OD must hold")
	}
	if _, err := Holds(enc, NewConstancy(bitset.NewAttrSet(0), 60)); err == nil {
		t.Error("expected error for out-of-range attribute")
	}
	if _, err := Holds(enc, NewConstancy(bitset.NewAttrSet(60), 0)); err == nil {
		t.Error("expected error for out-of-range context attribute")
	}
	if _, err := Holds(enc, NewOrderCompatible(bitset.AttrSet(0), 0, 61)); err == nil {
		t.Error("expected error for out-of-range pair attribute")
	}
	if _, _, err := FindViolation(enc, NewConstancy(bitset.NewAttrSet(60), 0)); err == nil {
		t.Error("FindViolation should propagate attribute errors")
	}
	bad := OD{Context: bitset.AttrSet(0), Kind: Kind(9), A: 0}
	if _, err := Holds(enc, bad); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestMustHoldPanicsOnError(t *testing.T) {
	enc, _ := encodeEmployees(t)
	defer func() {
		if recover() == nil {
			t.Error("MustHold should panic on structural errors")
		}
	}()
	MustHold(enc, NewConstancy(bitset.NewAttrSet(0), 63))
}

func TestFindViolationWitnesses(t *testing.T) {
	enc, idx := encodeEmployees(t)
	posit, sal, subg := idx["posit"], idx["sal"], idx["subg"]

	v, found, err := FindViolation(enc, NewConstancy(bitset.NewAttrSet(posit), sal))
	if err != nil || !found {
		t.Fatalf("expected split violation, err=%v", err)
	}
	if v.IsSwap {
		t.Error("constancy violation must be a split")
	}
	if enc.Column(posit)[v.RowS] != enc.Column(posit)[v.RowT] || enc.Column(sal)[v.RowS] == enc.Column(sal)[v.RowT] {
		t.Error("split witness is not valid")
	}
	if v.String() == "" {
		t.Error("violation string empty")
	}

	v, found, err = FindViolation(enc, NewOrderCompatible(bitset.AttrSet(0), sal, subg))
	if err != nil || !found {
		t.Fatalf("expected swap violation, err=%v", err)
	}
	if !v.IsSwap {
		t.Error("order-compatibility violation must be a swap")
	}

	// Holding OD: no violation.
	if _, found, _ := FindViolation(enc, NewConstancy(bitset.NewAttrSet(sal), idx["tax"])); found {
		t.Error("unexpected violation for holding OD")
	}
	// Trivial OD: no violation.
	if _, found, _ := FindViolation(enc, NewConstancy(bitset.NewAttrSet(sal), sal)); found {
		t.Error("unexpected violation for trivial OD")
	}
}

func TestContextPartitionEmptyAndSingle(t *testing.T) {
	enc, idx := encodeEmployees(t)
	p := ContextPartition(enc, bitset.AttrSet(0))
	if p.NumClasses() != 1 || p.Size() != enc.NumRows() {
		t.Errorf("empty-context partition = %v", p)
	}
	pYear := ContextPartition(enc, bitset.NewAttrSet(idx["yr"]))
	if pYear.NumClasses() != 2 {
		t.Errorf("year partition classes = %d, want 2", pYear.NumClasses())
	}
	pKey := ContextPartition(enc, bitset.NewAttrSet(idx["ID"], idx["yr"]))
	if !pKey.IsSuperkey() {
		t.Error("ID,yr should be a key of Table 1")
	}
}

// TestHoldsPermutationInvariance verifies the claim behind Definition 6: the
// validity of a canonical OD does not depend on which permutation of the
// context is used, because only the equivalence classes of the context matter.
func TestHoldsPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		r := datagen.RandomStructuredRelation(2+rng.Intn(12), 4, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		ctx := bitset.NewAttrSet(0, 1)
		od := NewOrderCompatible(ctx, 2, 3)
		// Direct canonical check vs list-based checks over both permutations.
		got := MustHold(enc, od)
		perm1 := listodOrderCompatible(enc, []int{0, 1}, 2, 3)
		perm2 := listodOrderCompatible(enc, []int{1, 0}, 2, 3)
		if got != perm1 || got != perm2 {
			t.Fatalf("trial %d: permutation dependence detected (canonical=%v, perm1=%v, perm2=%v)", trial, got, perm1, perm2)
		}
	}
}

// listodOrderCompatible checks X'A ~ X'B through the list-based machinery.
func listodOrderCompatible(enc *relation.Encoded, ctx []int, a, b int) bool {
	x := append(append(listod.Spec{}, ctx...), a)
	y := append(append(listod.Spec{}, ctx...), b)
	return listod.OrderCompatible(enc, x, y)
}

func TestReferenceDiscoverTable1(t *testing.T) {
	enc, idx := encodeEmployees(t)
	ods, err := ReferenceDiscover(enc)
	if err != nil {
		t.Fatalf("ReferenceDiscover: %v", err)
	}
	if len(ods) == 0 {
		t.Fatal("expected some ODs on Table 1")
	}
	cover := NewCover(ods)

	// Every reported OD must hold and be non-trivial.
	for _, od := range ods {
		if od.IsTrivial() {
			t.Errorf("trivial OD in output: %v", od)
		}
		if !MustHold(enc, od) {
			t.Errorf("reported OD does not hold: %v", od.NamesString(enc.ColumnNames))
		}
	}

	// Expected members (or implied): salary determines tax; salary and tax are
	// order compatible with the empty context.
	sal, tax, perc := idx["sal"], idx["tax"], idx["perc"]
	if !cover.ImpliesConstancy(bitset.NewAttrSet(sal), tax) {
		t.Error("{sal}: [] -> tax should be implied by the reference output")
	}
	if !cover.ImpliesOrderCompat(bitset.AttrSet(0), sal, tax) {
		t.Error("{}: sal ~ tax should be implied by the reference output")
	}
	if !cover.ImpliesConstancy(bitset.NewAttrSet(sal), perc) {
		t.Error("{sal}: [] -> perc should be implied by the reference output")
	}
	// The salary/subgroup swap means {}: sal ~ subg must NOT be implied.
	if cover.ImpliesOrderCompat(bitset.AttrSet(0), sal, idx["subg"]) {
		t.Error("{}: sal ~ subg must not be implied (swap in Table 1)")
	}
}

func TestReferenceDiscoverRejectsWideSchemas(t *testing.T) {
	r := datagen.FlightLike(10, 21, 1)
	enc, err := relation.Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReferenceDiscover(enc); err == nil {
		t.Error("expected error for > 20 attributes")
	}
}

// TestReferenceDiscoverExactness: on random small relations, the cover of the
// reference output implies exactly the canonical ODs that hold.
func TestReferenceDiscoverExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		r := datagen.RandomStructuredRelation(2+rng.Intn(12), 4, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		ods, err := ReferenceDiscover(enc)
		if err != nil {
			t.Fatal(err)
		}
		cover := NewCover(ods)
		n := enc.NumCols()
		for mask := 0; mask < 1<<uint(n); mask++ {
			ctx := bitset.AttrSet(mask)
			for a := 0; a < n; a++ {
				if ctx.Contains(a) {
					continue
				}
				od := NewConstancy(ctx, a)
				if MustHold(enc, od) != cover.Implies(od) {
					t.Fatalf("trial %d: constancy implication mismatch for %v", trial, od)
				}
				for b := a + 1; b < n; b++ {
					if ctx.Contains(b) {
						continue
					}
					oc := NewOrderCompatible(ctx, a, b)
					if MustHold(enc, oc) != cover.Implies(oc) {
						t.Fatalf("trial %d: order-compat implication mismatch for %v", trial, oc)
					}
				}
			}
		}
	}
}
