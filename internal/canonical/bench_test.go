package canonical

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/listod"
	"repro/internal/relation"
)

// Micro-benchmarks for the canonical-form machinery: the Theorem-5 mapping,
// direct validation of canonical ODs and cover implication.

func BenchmarkMapListOD(b *testing.B) {
	x := listod.Spec{0, 1, 2, 3}
	y := listod.Spec{4, 5, 6, 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MapListODNonTrivial(x, y)
	}
}

func BenchmarkHoldsConstancy(b *testing.B) {
	enc, err := relation.Encode(datagen.FlightLike(10_000, 8, 1))
	if err != nil {
		b.Fatal(err)
	}
	od := NewConstancy(contextOf(2, 3), 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Holds(enc, od); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHoldsOrderCompatible(b *testing.B) {
	enc, err := relation.Encode(datagen.FlightLike(10_000, 8, 1))
	if err != nil {
		b.Fatal(err)
	}
	od := NewOrderCompatible(contextOf(2), 4, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Holds(enc, od); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverImplies(b *testing.B) {
	enc, err := relation.Encode(datagen.FlightLike(500, 10, 1))
	if err != nil {
		b.Fatal(err)
	}
	ods, err := ReferenceDiscover(enc.ProjectColumns(6))
	if err != nil {
		b.Fatal(err)
	}
	cover := NewCover(ods)
	probe := NewOrderCompatible(contextOf(1, 2), 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cover.Implies(probe)
	}
}

func contextOf(attrs ...int) bitset.AttrSet {
	return bitset.NewAttrSet(attrs...)
}
