package canonical

import (
	"testing"

	"repro/internal/bitset"
)

func TestKindString(t *testing.T) {
	if Constancy.String() != "constancy" || OrderCompatible.String() != "order-compatible" {
		t.Error("Kind.String incorrect")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string incorrect")
	}
}

func TestODConstructorsAndAccessors(t *testing.T) {
	ctx := bitset.NewAttrSet(0, 1)
	c := NewConstancy(ctx, 3)
	if c.Kind != Constancy || c.A != 3 || !c.Context.Equal(ctx) {
		t.Errorf("NewConstancy = %v", c)
	}
	oc := NewOrderCompatible(ctx, 5, 2)
	if oc.A != 2 || oc.B != 5 {
		t.Errorf("NewOrderCompatible should normalize pair, got %v", oc)
	}
	if oc.Pair() != bitset.NewPair(2, 5) {
		t.Errorf("Pair = %v", oc.Pair())
	}
	if !c.Attributes().Equal(bitset.NewAttrSet(0, 1, 3)) {
		t.Errorf("Attributes = %v", c.Attributes())
	}
	if !oc.Attributes().Equal(bitset.NewAttrSet(0, 1, 2, 5)) {
		t.Errorf("Attributes = %v", oc.Attributes())
	}
	if !c.Equal(NewConstancy(ctx, 3)) || c.Equal(oc) {
		t.Error("Equal incorrect")
	}
}

func TestODTriviality(t *testing.T) {
	ctx := bitset.NewAttrSet(0, 1)
	cases := []struct {
		od   OD
		want bool
	}{
		{NewConstancy(ctx, 0), true},                                // Reflexivity
		{NewConstancy(ctx, 2), false},                               //
		{NewOrderCompatible(ctx, 0, 2), true},                       // A in context
		{NewOrderCompatible(ctx, 2, 1), true},                       // B in context
		{NewOrderCompatible(ctx, 2, 3), false},                      //
		{OD{Context: ctx, Kind: OrderCompatible, A: 4, B: 4}, true}, // Identity
		{OD{Context: ctx, Kind: Kind(7)}, false},                    // unknown kind
	}
	for _, tc := range cases {
		if got := tc.od.IsTrivial(); got != tc.want {
			t.Errorf("IsTrivial(%v) = %v, want %v", tc.od, got, tc.want)
		}
	}
}

func TestODStrings(t *testing.T) {
	names := []string{"yr", "posit", "bin", "sal"}
	c := NewConstancy(bitset.NewAttrSet(1), 2)
	if c.String() != "{1}: [] -> 2" {
		t.Errorf("String = %q", c.String())
	}
	if c.NamesString(names) != "{posit}: [] -> bin" {
		t.Errorf("NamesString = %q", c.NamesString(names))
	}
	oc := NewOrderCompatible(bitset.NewAttrSet(0), 2, 3)
	if oc.String() != "{0}: 2 ~ 3" {
		t.Errorf("String = %q", oc.String())
	}
	if oc.NamesString(names) != "{yr}: bin ~ sal" {
		t.Errorf("NamesString = %q", oc.NamesString(names))
	}
	out := NewConstancy(bitset.AttrSet(0), 9)
	if out.NamesString(names) != "{}: [] -> #9" {
		t.Errorf("NamesString out of range = %q", out.NamesString(names))
	}
}

func TestSortAndLess(t *testing.T) {
	ods := []OD{
		NewOrderCompatible(bitset.NewAttrSet(0), 1, 2),
		NewConstancy(bitset.NewAttrSet(0), 2),
		NewConstancy(bitset.AttrSet(0), 1),
		NewConstancy(bitset.NewAttrSet(0, 1), 2),
		NewConstancy(bitset.NewAttrSet(0), 1),
	}
	Sort(ods)
	// Empty context first, then size-1 contexts with constancy before
	// order-compatible, then size-2 contexts.
	if !ods[0].Equal(NewConstancy(bitset.AttrSet(0), 1)) {
		t.Errorf("ods[0] = %v", ods[0])
	}
	if !ods[1].Equal(NewConstancy(bitset.NewAttrSet(0), 1)) || !ods[2].Equal(NewConstancy(bitset.NewAttrSet(0), 2)) {
		t.Errorf("ods[1,2] = %v %v", ods[1], ods[2])
	}
	if ods[3].Kind != OrderCompatible {
		t.Errorf("ods[3] = %v", ods[3])
	}
	if !ods[4].Equal(NewConstancy(bitset.NewAttrSet(0, 1), 2)) {
		t.Errorf("ods[4] = %v", ods[4])
	}
	if Less(ods[0], ods[0]) {
		t.Error("Less must be irreflexive")
	}
}

func TestCountByKind(t *testing.T) {
	ods := []OD{
		NewConstancy(bitset.AttrSet(0), 1),
		NewConstancy(bitset.NewAttrSet(2), 1),
		NewOrderCompatible(bitset.AttrSet(0), 1, 2),
	}
	c := CountByKind(ods)
	if c.Total != 3 || c.Constancy != 2 || c.OrderCompat != 1 {
		t.Errorf("CountByKind = %+v", c)
	}
	if c.String() != "3 (2 + 1)" {
		t.Errorf("Count.String = %q", c.String())
	}
}
