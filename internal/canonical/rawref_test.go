package canonical

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/relation"
)

func randomRelation(t *testing.T, seed int64, rows, cols int) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	header := make([]string, cols)
	for c := range header {
		header[c] = string(rune('A' + c))
	}
	data := make([][]string, rows)
	vals := []string{"", "1", "2", "3", "10", "x"}
	for r := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = vals[rng.Intn(len(vals))]
		}
		data[r] = row
	}
	rel, err := relation.FromRows("rand", header, data)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return rel
}

// Under the default (nil) spec the raw oracle must agree with the encoded
// oracle, both per-OD and as a complete minimal discovery.
func TestRawOracleMatchesEncodedOracleDefaultSpec(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rel := randomRelation(t, seed, 30, 4)
		enc, err := relation.Encode(rel)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		encODs, err := ReferenceDiscover(enc)
		if err != nil {
			t.Fatalf("ReferenceDiscover: %v", err)
		}
		rawODs, err := ReferenceDiscoverRaw(rel, nil)
		if err != nil {
			t.Fatalf("ReferenceDiscoverRaw: %v", err)
		}
		if !reflect.DeepEqual(encODs, rawODs) {
			t.Fatalf("seed %d: encoded oracle and raw oracle disagree:\nenc: %v\nraw: %v", seed, encODs, rawODs)
		}
		for _, od := range encODs {
			ok, err := HoldsRaw(rel, nil, od)
			if err != nil || !ok {
				t.Fatalf("seed %d: HoldsRaw(%v) = %v, %v", seed, od, ok, err)
			}
		}
	}
}

// Under a non-default spec, encoded-oracle discovery on EncodeSpec output
// must equal raw discovery on the raw relation under the same spec.
func TestRawOracleMatchesEncodedOracleUnderSpec(t *testing.T) {
	specs := []relation.OrderSpec{
		{{Direction: relation.Desc}, {}, {Nulls: relation.NullsLast}, {}},
		{{Nulls: relation.NullsLast}, {Collation: relation.CollateCaseInsensitive}, {Direction: relation.Desc, Nulls: relation.NullsLast}, {Collation: relation.CollateLexicographic}},
	}
	for seed := int64(5); seed <= 7; seed++ {
		rel := randomRelation(t, seed, 24, 4)
		for si, spec := range specs {
			// The random relation mixes ints and strings; force explicit
			// collations to stay total where the default could reject.
			total := make(relation.OrderSpec, len(spec))
			copy(total, spec)
			for i := range total {
				if total[i].Collation == relation.CollateDefault {
					total[i].Collation = relation.CollateNumeric
				}
			}
			enc, err := relation.EncodeSpec(rel, total)
			if err != nil {
				t.Fatalf("seed %d spec %d: EncodeSpec: %v", seed, si, err)
			}
			encODs, err := ReferenceDiscover(enc)
			if err != nil {
				t.Fatalf("ReferenceDiscover: %v", err)
			}
			rawODs, err := ReferenceDiscoverRaw(rel, total)
			if err != nil {
				t.Fatalf("ReferenceDiscoverRaw: %v", err)
			}
			if !reflect.DeepEqual(encODs, rawODs) {
				t.Fatalf("seed %d spec %d: disagree:\nenc: %v\nraw: %v", seed, si, encODs, rawODs)
			}
		}
	}
}

func TestHoldsRawValidation(t *testing.T) {
	rel, err := relation.FromRows("t", []string{"A", "B"}, [][]string{{"1", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HoldsRaw(rel, relation.OrderSpec{{}}, NewConstancy(0, 1)); err == nil {
		t.Fatal("want error for short spec")
	}
	if _, err := HoldsRaw(rel, nil, NewConstancy(0, 7)); err == nil {
		t.Fatal("want error for out-of-range attribute")
	}
	if _, err := ReferenceDiscoverRaw(rel, relation.OrderSpec{{Direction: 9}, {}}); err == nil {
		t.Fatal("want error for invalid column order")
	}
}
