package canonical

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/relation"
)

// This file is the raw-value half of the ordering oracle: it evaluates
// canonical ODs directly on the raw (string) relation under an OrderSpec,
// using relation.Compare pairwise — no rank encoding, no partitions, no
// shared code with the discovery path. Differential suites run discovery on
// the spec-encoded relation and assert the result equals what these
// functions compute on raw values; disagreement means the encoding failed
// to compile the spec away.

// rawInstance pairs a raw relation with per-attribute comparators under a
// validated OrderSpec.
type rawInstance struct {
	rel  *relation.Relation
	spec relation.OrderSpec // len == NumCols (expanded from nil)
}

func newRawInstance(rel *relation.Relation, spec relation.OrderSpec) (*rawInstance, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if spec == nil {
		spec = make(relation.OrderSpec, rel.NumCols())
	}
	if len(spec) != rel.NumCols() {
		return nil, fmt.Errorf("canonical: order spec has %d entries, relation has %d columns", len(spec), rel.NumCols())
	}
	for i, co := range spec {
		if err := co.Validate(); err != nil {
			return nil, fmt.Errorf("canonical: column %q: %w", rel.Columns[i].Name, err)
		}
	}
	return &rawInstance{rel: rel, spec: spec}, nil
}

// cmp orders rows s and t by attribute a under the spec.
func (ri *rawInstance) cmp(a, s, t int) int {
	col := ri.rel.Columns[a]
	return relation.Compare(ri.spec[a], col.Type, col.Raw[s], col.Raw[t])
}

// contextClasses partitions the rows into equivalence classes of the context
// (rows pairwise equal on every context attribute under the spec's
// collations). Quadratic and proud of it — this is the oracle.
func (ri *rawInstance) contextClasses(ctx bitset.AttrSet) [][]int {
	attrs := ctx.Attrs()
	var classes [][]int
	n := ri.rel.NumRows()
rows:
	for r := 0; r < n; r++ {
		for ci, class := range classes {
			rep := class[0]
			same := true
			for _, a := range attrs {
				if ri.cmp(a, rep, r) != 0 {
					same = false
					break
				}
			}
			if same {
				classes[ci] = append(classes[ci], r)
				continue rows
			}
		}
		classes = append(classes, []int{r})
	}
	return classes
}

// constantIn reports whether attribute a is constant (all values equal under
// its collation) within every class.
func (ri *rawInstance) constantIn(classes [][]int, a int) bool {
	for _, class := range classes {
		for _, r := range class[1:] {
			if ri.cmp(a, class[0], r) != 0 {
				return false
			}
		}
	}
	return true
}

// swapFreeIn reports whether attributes a and b are order-compatible (no
// pair of rows with a strictly increasing and b strictly decreasing) within
// every class.
func (ri *rawInstance) swapFreeIn(classes [][]int, a, b int) bool {
	for _, class := range classes {
		for i, s := range class {
			for _, t := range class[i+1:] {
				ca, cb := ri.cmp(a, s, t), ri.cmp(b, s, t)
				if (ca < 0 && cb > 0) || (ca > 0 && cb < 0) {
					return false
				}
			}
		}
	}
	return true
}

// HoldsRaw reports whether the canonical OD is satisfied by the RAW relation
// instance under the ordering spec, comparing raw values pairwise with
// relation.Compare. It never looks at a rank encoding, making it the
// independent oracle for EncodeSpec-based discovery: for any relation r and
// spec s, Holds(EncodeSpec(r, s), od) must equal HoldsRaw(r, s, od).
func HoldsRaw(rel *relation.Relation, spec relation.OrderSpec, od OD) (bool, error) {
	ri, err := newRawInstance(rel, spec)
	if err != nil {
		return false, err
	}
	if err := checkAttrsRaw(rel, od); err != nil {
		return false, err
	}
	if od.IsTrivial() {
		return true, nil
	}
	classes := ri.contextClasses(od.Context)
	switch od.Kind {
	case Constancy:
		return ri.constantIn(classes, od.A), nil
	case OrderCompatible:
		return ri.swapFreeIn(classes, od.A, od.B), nil
	default:
		return false, fmt.Errorf("canonical: unknown kind %v", od.Kind)
	}
}

func checkAttrsRaw(rel *relation.Relation, od OD) error {
	n := rel.NumCols()
	check := func(a int) error {
		if a < 0 || a >= n {
			return fmt.Errorf("canonical: attribute %d out of range for relation with %d columns", a, n)
		}
		return nil
	}
	for _, a := range od.Context.Attrs() {
		if err := check(a); err != nil {
			return err
		}
	}
	if err := check(od.A); err != nil {
		return err
	}
	if od.Kind == OrderCompatible {
		return check(od.B)
	}
	return nil
}

// ReferenceDiscoverRaw is ReferenceDiscover evaluated directly on raw values
// under an ordering spec: it enumerates every non-trivial canonical OD,
// checks it pairwise on raw strings with relation.Compare, and returns the
// complete minimal set under the same minimality rules as ReferenceDiscover.
// It shares no code with either the encoding or the partition machinery, so
// equality with spec-encoded discovery is evidence the whole spec-to-rank
// pipeline is sound. Doubly exponential and quadratic in rows; relations
// with more than 14 attributes are rejected.
func ReferenceDiscoverRaw(rel *relation.Relation, spec relation.OrderSpec) ([]OD, error) {
	ri, err := newRawInstance(rel, spec)
	if err != nil {
		return nil, err
	}
	n := rel.NumCols()
	if n > 14 {
		return nil, fmt.Errorf("canonical: raw reference discovery limited to 14 attributes, got %d", n)
	}
	type pairKey struct{ a, b int }
	holdsConst := make(map[bitset.AttrSet]map[int]bool)
	holdsOC := make(map[bitset.AttrSet]map[pairKey]bool)

	contexts := allSubsets(n)
	for _, ctx := range contexts {
		classes := ri.contextClasses(ctx)
		cm := make(map[int]bool)
		om := make(map[pairKey]bool)
		for a := 0; a < n; a++ {
			if ctx.Contains(a) {
				continue
			}
			cm[a] = ri.constantIn(classes, a)
			for b := a + 1; b < n; b++ {
				if ctx.Contains(b) {
					continue
				}
				om[pairKey{a, b}] = ri.swapFreeIn(classes, a, b)
			}
		}
		holdsConst[ctx] = cm
		holdsOC[ctx] = om
	}

	var out []OD
	for _, ctx := range contexts {
		for a := 0; a < n; a++ {
			if ctx.Contains(a) || !holdsConst[ctx][a] {
				continue
			}
			minimal := true
			for _, sub := range ctx.Subsets() {
				if holdsConst[sub][a] {
					minimal = false
					break
				}
			}
			if minimal {
				out = append(out, NewConstancy(ctx, a))
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if ctx.Contains(a) || ctx.Contains(b) || !holdsOC[ctx][pairKey{a, b}] {
					continue
				}
				if holdsConst[ctx][a] || holdsConst[ctx][b] {
					continue // Propagate makes it non-minimal
				}
				minimal := true
				for _, sub := range ctx.Subsets() {
					if holdsOC[sub][pairKey{a, b}] {
						minimal = false
						break
					}
				}
				if minimal {
					out = append(out, NewOrderCompatible(ctx, a, b))
				}
			}
		}
	}
	Sort(out)
	return out, nil
}
