package canonical

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/relation"
)

func TestAxiomConstructorsValidateShapes(t *testing.T) {
	ctx := bitset.NewAttrSet(0, 1)

	if _, err := AxiomReflexivity(ctx, 2); err == nil {
		t.Error("Reflexivity must require A ∈ X")
	}
	if od, err := AxiomReflexivity(ctx, 1); err != nil || !od.IsTrivial() {
		t.Error("Reflexivity conclusion must be a trivial constancy OD")
	}

	if !AxiomIdentity(ctx, 3).IsTrivial() {
		t.Error("Identity conclusion must be trivial")
	}

	if _, err := AxiomCommutativity(NewConstancy(ctx, 2)); err == nil {
		t.Error("Commutativity must reject constancy ODs")
	}
	oc := NewOrderCompatible(ctx, 2, 3)
	if got, err := AxiomCommutativity(oc); err != nil || !got.Equal(oc) {
		t.Error("Commutativity must return the normalized premise")
	}

	if _, err := AxiomStrengthen(oc, oc); err == nil {
		t.Error("Strengthen must require constancy premises")
	}
	if _, err := AxiomStrengthen(NewConstancy(ctx, 2), NewConstancy(ctx, 3)); err == nil {
		t.Error("Strengthen must require the second context to be XA")
	}
	got, err := AxiomStrengthen(NewConstancy(ctx, 2), NewConstancy(ctx.Add(2), 3))
	if err != nil || !got.Equal(NewConstancy(ctx, 3)) {
		t.Errorf("Strengthen = %v, %v", got, err)
	}

	if _, err := AxiomPropagate(oc, 4); err == nil {
		t.Error("Propagate must require a constancy premise")
	}
	if got, err := AxiomPropagate(NewConstancy(ctx, 2), 2); err != nil || !got.IsTrivial() {
		t.Error("Propagate with B = A must produce the trivial identity")
	}
	if got, err := AxiomPropagate(NewConstancy(ctx, 2), 5); err != nil || !got.Equal(NewOrderCompatible(ctx, 2, 5)) {
		t.Errorf("Propagate = %v, %v", got, err)
	}

	if _, err := AxiomAugmentationI(oc, ctx); err == nil {
		t.Error("Augmentation-I must require a constancy premise")
	}
	if got, err := AxiomAugmentationI(NewConstancy(ctx, 2), bitset.NewAttrSet(5)); err != nil ||
		!got.Equal(NewConstancy(ctx.Add(5), 2)) {
		t.Errorf("Augmentation-I = %v, %v", got, err)
	}

	if _, err := AxiomAugmentationII(NewConstancy(ctx, 2), ctx); err == nil {
		t.Error("Augmentation-II must require an order-compatibility premise")
	}
	if got, err := AxiomAugmentationII(oc, bitset.NewAttrSet(5)); err != nil ||
		!got.Equal(NewOrderCompatible(ctx.Add(5), 2, 3)) {
		t.Errorf("Augmentation-II = %v, %v", got, err)
	}
	ident := AxiomIdentity(ctx, 4)
	if got, err := AxiomAugmentationII(ident, bitset.NewAttrSet(5)); err != nil || !got.IsTrivial() {
		t.Errorf("Augmentation-II on identity = %v, %v", got, err)
	}

	if _, err := DerivedLemma5(oc, oc); err == nil {
		t.Error("Lemma 5 must require constancy premises")
	}
	if _, err := DerivedLemma6(oc, oc); err == nil {
		t.Error("Lemma 6 must require a constancy first premise")
	}
}

func TestAxiomChainShapeValidation(t *testing.T) {
	ctx := bitset.AttrSet(0)
	if _, err := AxiomChain(ctx, 0, nil, 1, nil); err == nil {
		t.Error("Chain must require a non-empty chain")
	}
	// Missing premises.
	if _, err := AxiomChain(ctx, 0, []int{1}, 2, nil); err == nil {
		t.Error("Chain must require all premises")
	}
	premises := []OD{
		NewOrderCompatible(ctx, 0, 1),
		NewOrderCompatible(ctx, 1, 2),
		NewOrderCompatible(ctx.Add(1), 0, 2),
	}
	got, err := AxiomChain(ctx, 0, []int{1}, 2, premises)
	if err != nil || !got.Equal(NewOrderCompatible(ctx, 0, 2)) {
		t.Errorf("Chain = %v, %v", got, err)
	}
	// a == c yields the trivial identity.
	selfPremises := []OD{
		NewOrderCompatible(ctx, 0, 1),
		NewOrderCompatible(ctx, 0, 1),
	}
	got, err = AxiomChain(ctx, 0, []int{1}, 0, selfPremises)
	if err != nil || !got.IsTrivial() {
		t.Errorf("Chain with A = C should be trivial, got %v, %v", got, err)
	}
}

// TestAxiomSoundnessOnInstances is the semantic soundness check (Theorem 6):
// whenever all premises of a rule hold on an instance, the conclusion holds.
func TestAxiomSoundnessOnInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const cols = 4
	for trial := 0; trial < 120; trial++ {
		r := datagen.RandomStructuredRelation(2+rng.Intn(12), cols, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		randomCtx := func() bitset.AttrSet {
			return bitset.AttrSet(rng.Intn(1 << cols))
		}

		// Strengthen.
		ctx := randomCtx()
		a, b := rng.Intn(cols), rng.Intn(cols)
		if a != b && !ctx.Contains(a) && !ctx.Contains(b) {
			p1 := NewConstancy(ctx, a)
			p2 := NewConstancy(ctx.Add(a), b)
			if MustHold(enc, p1) && MustHold(enc, p2) {
				concl, err := AxiomStrengthen(p1, p2)
				if err != nil {
					t.Fatal(err)
				}
				if !MustHold(enc, concl) {
					t.Fatalf("Strengthen unsound: %v, %v => %v", p1, p2, concl)
				}
			}
		}

		// Propagate.
		if a != b {
			p := NewConstancy(ctx, a)
			if MustHold(enc, p) {
				concl, err := AxiomPropagate(p, b)
				if err != nil {
					t.Fatal(err)
				}
				if !MustHold(enc, concl) {
					t.Fatalf("Propagate unsound: %v => %v", p, concl)
				}
			}
		}

		// Augmentation-I and II.
		z := randomCtx()
		pc := NewConstancy(ctx, a)
		if MustHold(enc, pc) {
			concl, _ := AxiomAugmentationI(pc, z)
			if !MustHold(enc, concl) {
				t.Fatalf("Augmentation-I unsound: %v + %v => %v", pc, z, concl)
			}
		}
		if a != b {
			poc := NewOrderCompatible(ctx, a, b)
			if MustHold(enc, poc) {
				concl, _ := AxiomAugmentationII(poc, z)
				if !MustHold(enc, concl) {
					t.Fatalf("Augmentation-II unsound: %v + %v => %v", poc, z, concl)
				}
			}
		}

		// Lemma 5: B ∈ X, X\B: []↦B, X: []↦A => X\B: []↦A.
		xl := randomCtx()
		if xl.Len() >= 1 {
			attrs := xl.Attrs()
			bAttr := attrs[rng.Intn(len(attrs))]
			aAttr := rng.Intn(cols)
			if !xl.Contains(aAttr) {
				p1 := NewConstancy(xl.Remove(bAttr), bAttr)
				p2 := NewConstancy(xl, aAttr)
				if MustHold(enc, p1) && MustHold(enc, p2) {
					concl, err := DerivedLemma5(p1, p2)
					if err != nil {
						t.Fatal(err)
					}
					if !MustHold(enc, concl) {
						t.Fatalf("Lemma 5 unsound: %v, %v => %v", p1, p2, concl)
					}
				}
			}
		}

		// Lemma 6: C ∈ X, X\C: []↦C, X: A~B => X\C: A~B.
		if xl.Len() >= 1 && a != b && !xl.Contains(a) && !xl.Contains(b) {
			attrs := xl.Attrs()
			cAttr := attrs[rng.Intn(len(attrs))]
			p1 := NewConstancy(xl.Remove(cAttr), cAttr)
			p2 := NewOrderCompatible(xl, a, b)
			if MustHold(enc, p1) && MustHold(enc, p2) {
				concl, err := DerivedLemma6(p1, p2)
				if err != nil {
					t.Fatal(err)
				}
				if !MustHold(enc, concl) {
					t.Fatalf("Lemma 6 unsound: %v, %v => %v", p1, p2, concl)
				}
			}
		}

		// Chain with a single intermediate attribute.
		cAttr := rng.Intn(cols)
		bChain := rng.Intn(cols)
		if a != cAttr && !ctx.Contains(a) && !ctx.Contains(cAttr) && !ctx.Contains(bChain) &&
			a != bChain && cAttr != bChain {
			premises := []OD{
				NewOrderCompatible(ctx, a, bChain),
				NewOrderCompatible(ctx, bChain, cAttr),
				NewOrderCompatible(ctx.Add(bChain), a, cAttr),
			}
			all := true
			for _, p := range premises {
				if !MustHold(enc, p) {
					all = false
					break
				}
			}
			if all {
				concl, err := AxiomChain(ctx, a, []int{bChain}, cAttr, premises)
				if err != nil {
					t.Fatal(err)
				}
				if !MustHold(enc, concl) {
					t.Fatalf("Chain unsound: %v => %v", premises, concl)
				}
			}
		}
	}
}
