package canonical

import (
	"repro/internal/bitset"
	"repro/internal/listod"
)

// MapListOD performs the polynomial mapping of Theorem 5: the list-based OD
// X ↦ Y is equivalent to the conjunction of
//
//	∀j              set(X): [] ↦ Yj
//	∀i,j  {X1..Xi-1, Y1..Yj-1}: Xi ~ Yj
//
// The returned slice has size at most |X|·|Y| + |Y|; trivial canonical ODs
// (identity pairs, attributes already in the context) are included so that
// the mapping is literally the one in the paper — callers that only care
// about information content can filter with OD.IsTrivial.
func MapListOD(x, y listod.Spec) []OD {
	var out []OD
	xSet := specToSet(x)
	for _, yj := range y {
		out = append(out, NewConstancy(xSet, yj))
	}
	for i, xi := range x {
		for j, yj := range y {
			ctx := specToSet(x[:i]).Union(specToSet(y[:j]))
			if xi == yj {
				// Identity pair: X: A ~ A is trivially true (Identity axiom).
				// NewOrderCompatible rejects equal attributes, so build the
				// trivial OD directly; IsTrivial classifies it via A == B.
				out = append(out, OD{Context: ctx, Kind: OrderCompatible, A: xi, B: yj})
				continue
			}
			out = append(out, NewOrderCompatible(ctx, xi, yj))
		}
	}
	return out
}

// MapListODNonTrivial is MapListOD with trivial canonical ODs removed and
// duplicates collapsed. This is the form used when comparing the information
// content of list-based and set-based representations.
func MapListODNonTrivial(x, y listod.Spec) []OD {
	all := MapListOD(x, y)
	seen := make(map[OD]bool, len(all))
	out := make([]OD, 0, len(all))
	for _, od := range all {
		if od.IsTrivial() || seen[od] {
			continue
		}
		seen[od] = true
		out = append(out, od)
	}
	Sort(out)
	return out
}

// MapOrderCompatibility maps the order-compatibility statement X ~ Y
// (Theorem 4) to canonical ODs: ∀i,j {X1..Xi-1, Y1..Yj-1}: Xi ~ Yj.
func MapOrderCompatibility(x, y listod.Spec) []OD {
	var out []OD
	for i, xi := range x {
		for j, yj := range y {
			ctx := specToSet(x[:i]).Union(specToSet(y[:j]))
			if xi == yj {
				out = append(out, OD{Context: ctx, Kind: OrderCompatible, A: xi, B: yj})
				continue
			}
			out = append(out, NewOrderCompatible(ctx, xi, yj))
		}
	}
	return out
}

// MapFD maps the functional dependency statement X ↦ XY (Theorem 3) to
// canonical constancy ODs: ∀j set(X): [] ↦ Yj.
func MapFD(x, y listod.Spec) []OD {
	xSet := specToSet(x)
	out := make([]OD, 0, len(y))
	for _, yj := range y {
		out = append(out, NewConstancy(xSet, yj))
	}
	return out
}

func specToSet(s listod.Spec) bitset.AttrSet {
	var out bitset.AttrSet
	for _, a := range s {
		out = out.Add(a)
	}
	return out
}
