package canonical

import (
	"repro/internal/bitset"
)

// Cover is a set of canonical ODs together with implication reasoning based
// on the set-based axioms of Figure 2. It answers "does this OD follow from
// the set?" using the upward-closure axioms:
//
//   - Reflexivity / Identity / Normalization: trivial ODs are always implied.
//   - Augmentation-I: Y: [] ↦ A implies X: [] ↦ A for every X ⊇ Y.
//   - Augmentation-II: Y: A ~ B implies X: A ~ B for every X ⊇ Y.
//   - Propagate: X: [] ↦ A (or ↦ B) implies X: A ~ B.
//
// For a complete minimal set produced over an instance (FASTOD output or
// ReferenceDiscover output), this reconstruction is exact: an OD holds on the
// instance iff Implies returns true (tested in the core package). For an
// arbitrary OD set it is a sound under-approximation of full implication.
type Cover struct {
	// constancy[a] lists the contexts X with X: [] ↦ a in the cover.
	constancy map[int][]bitset.AttrSet
	// orderCompat[pair] lists the contexts X with X: pair.A ~ pair.B.
	orderCompat map[bitset.Pair][]bitset.AttrSet
	size        int
}

// NewCover builds a cover from a slice of canonical ODs. Trivial ODs are
// ignored because they carry no information.
func NewCover(ods []OD) *Cover {
	c := &Cover{
		constancy:   make(map[int][]bitset.AttrSet),
		orderCompat: make(map[bitset.Pair][]bitset.AttrSet),
	}
	for _, od := range ods {
		c.Add(od)
	}
	return c
}

// Add inserts one OD into the cover.
func (c *Cover) Add(od OD) {
	if od.IsTrivial() {
		return
	}
	switch od.Kind {
	case Constancy:
		c.constancy[od.A] = append(c.constancy[od.A], od.Context)
	case OrderCompatible:
		p := od.Pair()
		c.orderCompat[p] = append(c.orderCompat[p], od.Context)
	}
	c.size++
}

// Size returns the number of non-trivial ODs added to the cover.
func (c *Cover) Size() int { return c.size }

// ImpliesConstancy reports whether ctx: [] ↦ a follows from the cover.
func (c *Cover) ImpliesConstancy(ctx bitset.AttrSet, a int) bool {
	if ctx.Contains(a) {
		return true // Reflexivity
	}
	for _, base := range c.constancy[a] {
		if base.IsSubsetOf(ctx) {
			return true // Augmentation-I
		}
	}
	return false
}

// ImpliesOrderCompat reports whether ctx: a ~ b follows from the cover.
func (c *Cover) ImpliesOrderCompat(ctx bitset.AttrSet, a, b int) bool {
	if a == b || ctx.Contains(a) || ctx.Contains(b) {
		return true // Identity / Normalization
	}
	p := bitset.NewPair(a, b)
	for _, base := range c.orderCompat[p] {
		if base.IsSubsetOf(ctx) {
			return true // Augmentation-II
		}
	}
	// Propagate: a constant attribute is order compatible with everything.
	return c.ImpliesConstancy(ctx, a) || c.ImpliesConstancy(ctx, b)
}

// Implies reports whether the given canonical OD follows from the cover.
func (c *Cover) Implies(od OD) bool {
	switch od.Kind {
	case Constancy:
		return c.ImpliesConstancy(od.Context, od.A)
	case OrderCompatible:
		return c.ImpliesOrderCompat(od.Context, od.A, od.B)
	default:
		return false
	}
}

// ImpliesAll reports whether every OD in the slice follows from the cover,
// returning the first counterexample otherwise.
func (c *Cover) ImpliesAll(ods []OD) (OD, bool) {
	for _, od := range ods {
		if !c.Implies(od) {
			return od, false
		}
	}
	return OD{}, true
}

// Minimize returns the subset of the input ODs that are not implied by the
// other ODs in the input: it removes trivial ODs, ODs whose context is a
// superset of another OD's context for the same right-hand side, and
// order-compatibility ODs already implied by a constancy OD via Propagate.
// The result is sorted deterministically.
func Minimize(ods []OD) []OD {
	var out []OD
	for i, od := range ods {
		if od.IsTrivial() {
			continue
		}
		// Build a cover of everything except od (and except duplicates of od).
		rest := make([]OD, 0, len(ods)-1)
		for j, other := range ods {
			if j == i || other.Equal(od) {
				continue
			}
			rest = append(rest, other)
		}
		if !NewCover(rest).Implies(od) {
			out = append(out, od)
		}
	}
	// Deduplicate: equal ODs may both survive when each was excluded while
	// testing the other.
	seen := make(map[OD]bool, len(out))
	dedup := out[:0]
	for _, od := range out {
		if !seen[od] {
			seen[od] = true
			dedup = append(dedup, od)
		}
	}
	Sort(dedup)
	return dedup
}
