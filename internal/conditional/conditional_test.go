package conditional

import (
	"strconv"
	"testing"

	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
)

// bracketRelation builds a relation where "rate" increases with "income"
// within each country, but the two countries use opposite scales so the OD
// fails globally: a textbook conditional OD.
func bracketRelation(t *testing.T) *relation.Encoded {
	t.Helper()
	header := []string{"country", "income", "rate", "noise"}
	var rows [][]string
	for i := 0; i < 30; i++ {
		// Country A: rate = income/3 (monotone).
		rows = append(rows, []string{"A", strconv.Itoa(1000 + i*10), strconv.Itoa(10 + i/3), strconv.Itoa(i % 4)})
		// Country B: rate falls as income rises, breaking the global OD.
		rows = append(rows, []string{"B", strconv.Itoa(1000 + i*10), strconv.Itoa(90 - i/3), strconv.Itoa(i % 5)})
	}
	rel, err := relation.FromRows("brackets", header, rows)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := relation.Encode(rel)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestDiscoverValidation(t *testing.T) {
	if _, err := Discover(nil, Options{}); err == nil {
		t.Error("nil relation must be rejected")
	}
	if _, err := Discover(&relation.Encoded{}, Options{}); err == nil {
		t.Error("empty relation must be rejected")
	}
	enc := bracketRelation(t)
	if _, err := Discover(enc, Options{ConditionAttrs: []int{99}}); err == nil {
		t.Error("out-of-range condition attribute must be rejected")
	}
}

func TestDiscoverFindsBracketRule(t *testing.T) {
	enc := bracketRelation(t)
	res, err := Discover(enc, Options{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if res.Global == nil || res.SlicesExamined == 0 || res.Elapsed <= 0 {
		t.Fatalf("result metadata incomplete: %+v", res)
	}
	incomeIdx, rateIdx, countryIdx := 1, 2, 0

	// The unconditional OD {}: income ~ rate must NOT hold globally.
	globalCover := canonical.NewCover(res.Global.ODs)
	target := canonical.NewOrderCompatible(0, incomeIdx, rateIdx)
	if globalCover.Implies(target) {
		t.Fatal("fixture broken: income ~ rate should fail globally")
	}

	// Within country A income and rate rise together, so the conditional OD
	// {}: income ~ rate must be reported for exactly one country slice (in
	// country B the rate falls as income rises, so it fails there too).
	found := 0
	for _, cod := range res.ODs {
		if cod.Condition.Attr != countryIdx {
			continue
		}
		if cod.OD.Kind == canonical.OrderCompatible && cod.OD.A == incomeIdx && cod.OD.B == rateIdx && cod.OD.Context.IsEmpty() {
			found++
		}
		if cod.NamesString(enc.ColumnNames) == "" {
			t.Error("NamesString should not be empty")
		}
	}
	if found != 1 {
		t.Errorf("expected {}: income ~ rate conditionally in exactly one country, found %d", found)
	}
}

func TestDiscoverSkipsGloballyImpliedAndConditionAttribute(t *testing.T) {
	enc := bracketRelation(t)
	res, err := Discover(enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	globalCover := canonical.NewCover(res.Global.ODs)
	for _, cod := range res.ODs {
		if globalCover.Implies(cod.OD) {
			t.Errorf("conditional OD %v is already implied globally", cod.OD)
		}
		if cod.OD.Attributes().Contains(cod.Condition.Attr) {
			t.Errorf("conditional OD %v mentions its own condition attribute", cod.OD)
		}
	}
}

func TestDiscoverRespectsBounds(t *testing.T) {
	enc := bracketRelation(t)
	// income has ~30 distinct values; with the default cardinality bound it
	// must not be used as a condition attribute.
	res, err := Discover(enc, Options{MaxConditionCardinality: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, cod := range res.ODs {
		if cod.Condition.Attr == 1 {
			t.Errorf("high-cardinality attribute used as condition: %+v", cod.Condition)
		}
	}
	// MinSliceRows larger than every slice suppresses all conditional ODs.
	res, err = Discover(enc, Options{MinSliceRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ODs) != 0 || res.SlicesExamined != 0 {
		t.Errorf("expected no slices with MinSliceRows=1000, got %d ODs over %d slices", len(res.ODs), res.SlicesExamined)
	}
	// Restricting condition attributes is honoured.
	res, err = Discover(enc, Options{ConditionAttrs: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cod := range res.ODs {
		if cod.Condition.Attr != 3 {
			t.Errorf("condition attribute %d not in the allowed list", cod.Condition.Attr)
		}
	}
}

func TestDiscoverOnEmployees(t *testing.T) {
	// Smoke test on Table 1 with a depth limit passed through to FASTOD.
	enc, err := relation.Encode(datagen.Employees())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(enc, Options{Discovery: core.Options{MaxLevel: 3}, MinSliceRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cod := range res.ODs {
		if cod.OD.Context.Len() > 2 {
			t.Errorf("conditional OD %v exceeds the discovery depth limit", cod.OD)
		}
	}
}

// TestMaxLevelReachedCoversSlicePasses is the regression test for the stats
// under-report fixed alongside the report cache: Result.MaxLevelReached must
// be the deepest lattice level processed by ANY pass — the unconditional pass
// or a slice pass — verified here against an oracle that re-runs FASTOD on
// every slice the conditional traversal visits. Before the fix the field did
// not exist and callers (run.go) reported the unconditional pass alone.
func TestMaxLevelReachedCoversSlicePasses(t *testing.T) {
	for _, enc := range []*relation.Encoded{
		bracketRelation(t),
		mustEncode(t, datagen.HepatitisLike(80, 5, 7)),
	} {
		res, err := Discover(enc, Options{})
		if err != nil {
			t.Fatalf("Discover: %v", err)
		}
		// Oracle: the global pass plus an independent FASTOD run per slice,
		// replicating the slicing rules (default cardinality/row bounds).
		global, err := core.Discover(enc, core.Options{})
		if err != nil {
			t.Fatalf("core.Discover: %v", err)
		}
		want := global.Stats.MaxLevelReached
		for attr := 0; attr < enc.NumCols(); attr++ {
			if enc.Cardinality[attr] < 2 || enc.Cardinality[attr] > 16 {
				continue
			}
			groups := make(map[int32][]int)
			for row, v := range enc.Column(attr) {
				groups[v] = append(groups[v], row)
			}
			for _, rows := range groups {
				if len(rows) < 4 {
					continue
				}
				slice, err := enc.SelectRows(rows)
				if err != nil {
					t.Fatalf("SelectRows: %v", err)
				}
				sliceRes, err := core.Discover(slice, core.Options{})
				if err != nil {
					t.Fatalf("slice core.Discover: %v", err)
				}
				if sliceRes.Stats.MaxLevelReached > want {
					want = sliceRes.Stats.MaxLevelReached
				}
			}
		}
		if res.MaxLevelReached != want {
			t.Errorf("%s: MaxLevelReached = %d, want max over all passes %d",
				enc.Name, res.MaxLevelReached, want)
		}
		if res.MaxLevelReached < res.Global.Stats.MaxLevelReached {
			t.Errorf("%s: MaxLevelReached = %d below the unconditional pass's %d",
				enc.Name, res.MaxLevelReached, res.Global.Stats.MaxLevelReached)
		}
	}
}

func mustEncode(t *testing.T, rel *relation.Relation) *relation.Encoded {
	t.Helper()
	enc, err := relation.Encode(rel)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}
