// Package conditional implements conditional order dependencies, the third
// extension named in the paper's conclusion: canonical ODs that hold on the
// portion of a relation selected by a condition ("binding") on some attribute,
// even though they fail on the full relation. A typical example is a tax
// bracket rule that holds within each country but not across countries.
//
// Discovery partitions the relation by each candidate condition attribute
// (bounded-cardinality attributes only), runs FASTOD on every partition slice,
// and reports the ODs that hold in a slice but are not implied by the ODs of
// the full relation. Condition slices are disjoint row subsets, so the slice
// passes fan out across the worker pool under the run's one shared budget.
package conditional

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/relation"
)

// SliceProgressLevel is the ProgressEvent.Level marker of per-slice progress
// events. The unconditional pass reports ordinary lattice levels (1, 2, ...);
// once slice passes begin, each processed condition slice reports exactly one
// event carrying this level, the slice's lattice-node count in Nodes, the
// run's cumulative total in NodesVisited, and the condition that defined the
// slice in the event's Slice field (attribute, encoded value, row count).
// Without the marker long conditional discoveries go dark after the
// unconditional pass even though most of the work — one FASTOD run per
// condition slice — is still ahead. With slice passes running in parallel,
// events arrive in completion order (serialized, never concurrently), so
// consumers must not assume the enumeration order of conditions.
const SliceProgressLevel = -1

// Defaults resolved for the zero values of the corresponding Options knobs.
// Exported so request canonicalization (the report cache's fingerprint) can
// map "0" and the explicit default onto the same effective request.
const (
	// DefaultMaxConditionCardinality bounds condition-attribute cardinality.
	DefaultMaxConditionCardinality = 16
	// DefaultMinSliceRows is the smallest condition slice processed.
	DefaultMinSliceRows = 4
)

// Condition is an equality binding "attribute = value" selecting a portion of
// the relation. Value is the raw rank of the encoded column; Rows is the
// number of tuples it selects.
type Condition struct {
	Attr  int
	Value int32
	Rows  int
}

// OD is a conditional canonical OD: the embedded OD holds on the tuples
// selected by the condition but is not implied by the unconditional ODs.
type OD struct {
	Condition Condition
	OD        canonical.OD
}

// Options configures conditional discovery.
type Options struct {
	// MaxConditionCardinality bounds how many distinct values a condition
	// attribute may have (default 16): attributes with more values fragment
	// the relation into slivers that yield spurious dependencies.
	MaxConditionCardinality int
	// MinSliceRows skips condition values selecting fewer tuples than this
	// (default 2's complement of nothing — default 4), again to avoid
	// trivially-holding ODs on tiny slices.
	MinSliceRows int
	// ConditionAttrs restricts which attributes may serve as conditions
	// (default: every attribute within the cardinality bound).
	ConditionAttrs []int
	// Discovery is passed through to the per-slice FASTOD runs (e.g.
	// MaxLevel to bound context sizes). Discovery.Workers additionally sets
	// how many condition slices are processed concurrently: with more than
	// one worker, slices fan out across the pool and each slice pass runs
	// sequentially inside. The merged output of a complete run is identical
	// for every worker count.
	Discovery core.Options
}

// Result is the outcome of a conditional discovery run.
type Result struct {
	// Global is the unconditional discovery result on the full relation.
	Global *core.Result
	// ODs are the conditional ODs found, sorted by condition then OD.
	ODs []OD
	// SlicesExamined counts (attribute, value) slices that were processed.
	SlicesExamined int
	// NodesVisited totals the lattice nodes of the unconditional pass and
	// every slice pass, the quantity Options.Discovery.Budget.MaxNodes bounds.
	NodesVisited int
	// MaxLevelReached is the deepest lattice level processed by ANY pass of
	// the run — the unconditional pass or a slice pass — not just the
	// unconditional one. (With today's exact discovery a slice can never out-
	// run the full relation: dependencies survive row restriction, so slices
	// prune at least as early. The max is taken anyway so the counter stays
	// honest if a pass is ever bounded or restarted asymmetrically.)
	MaxLevelReached int
	// Interrupted reports that the run stopped early — during the
	// unconditional pass, between slices, or inside a slice — because the
	// context was cancelled or the shared budget exhausted. The result then
	// holds every conditional OD confirmed before the interrupt.
	Interrupted bool
	Elapsed     time.Duration
}

// Discover runs conditional discovery with a background context; see
// DiscoverContext.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	//lint:allow ctxfirst convenience wrapper kept for callers that cannot cancel; DiscoverContext is the cancellable entry point
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext finds conditional canonical ODs. An OD is reported for a
// condition slice only if it is minimal on that slice (FASTOD's own
// minimality) and not already implied by the unconditional ODs of the full
// relation — otherwise a conditional report would just restate global
// knowledge.
//
// The context and Options.Discovery.Budget are honored across the whole run,
// not per inner discovery: the wall-clock deadline and the node allowance are
// shared by the unconditional pass and every slice pass, so a budgeted
// conditional run is bounded even when the relation fragments into many
// slices. An interrupted run keeps the conditional ODs confirmed so far and
// sets Result.Interrupted.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("conditional: empty relation")
	}
	if opts.MaxConditionCardinality <= 0 {
		opts.MaxConditionCardinality = DefaultMaxConditionCardinality
	}
	if opts.MinSliceRows <= 0 {
		opts.MinSliceRows = DefaultMinSliceRows
	}
	start := time.Now()
	budget := opts.Discovery.Budget
	var deadline time.Time
	if budget.Timeout > 0 {
		deadline = start.Add(budget.Timeout)
	}

	global, err := core.DiscoverContext(ctx, enc, opts.Discovery)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Global:          global,
		NodesVisited:    global.Stats.NodesVisited,
		MaxLevelReached: global.Stats.MaxLevelReached,
	}
	if global.Stats.Interrupted {
		res.Interrupted = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	// Condition slices are distinct relations; a partition store supplied for
	// the global run must not leak into them (a store is bound to exactly one
	// relation instance). Slice runs draw on the remainder of the shared
	// budget, computed before each slice. Per-level progress stays with the
	// unconditional pass (slice lattices are tiny and many); instead each
	// completed slice reports one SliceProgressLevel event below.
	sliceOpts := opts.Discovery
	sliceOpts.Partitions = nil
	sliceOpts.Progress = nil
	globalCover := canonical.NewCover(global.ODs)

	condAttrs := opts.ConditionAttrs
	if condAttrs == nil {
		for a := 0; a < enc.NumCols(); a++ {
			if enc.Cardinality[a] >= 2 && enc.Cardinality[a] <= opts.MaxConditionCardinality {
				condAttrs = append(condAttrs, a)
			}
		}
	}

	// Enumerate every (attribute, value) slice job up front in deterministic
	// order — condition attributes in option order, values ascending — so
	// invalid attributes fail before any slice work and the parallel pool has
	// a fixed job list to draw from.
	type sliceJob struct {
		attr  int
		value int32
		rows  []int
	}
	var jobs []sliceJob
	for _, attr := range condAttrs {
		if attr < 0 || attr >= enc.NumCols() {
			return nil, fmt.Errorf("conditional: condition attribute %d out of range", attr)
		}
		// Group row indexes by the condition attribute's value.
		groups := make(map[int32][]int)
		for row, v := range enc.Column(attr) {
			groups[v] = append(groups[v], row)
		}
		values := make([]int32, 0, len(groups))
		for v := range groups {
			values = append(values, v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for _, v := range values {
			if len(groups[v]) < opts.MinSliceRows {
				continue
			}
			jobs = append(jobs, sliceJob{attr: attr, value: v, rows: groups[v]})
		}
	}

	// Slice passes fan out across the run's worker pool. With W > 1 workers
	// each slice runs with Workers: 1 and W slices run at once: slice lattices
	// are small and numerous, so parallelism across slices beats parallelism
	// inside each tiny slice. With one worker (or a single job) the sequential
	// path keeps the inner runs' own parallelism setting.
	workers := lattice.ResolveWorkers(opts.Discovery.Workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers > 1 {
		sliceOpts.Workers = 1
	}

	// outcomes[i] holds job i's filtered conditional ODs; merging in job order
	// after the pool drains makes a complete run byte-identical to a
	// sequential one regardless of worker count. Counters (NodesVisited,
	// SlicesExamined, MaxLevelReached) commute, so they merge at completion.
	type sliceOutcome struct {
		ods []OD
	}
	outcomes := make([]sliceOutcome, len(jobs))
	var (
		mu      sync.Mutex
		cursor  int
		stopped bool
		runErr  error
	)
	// remainingBudget converts the shared allowance into the budget for the
	// next slice run; exhausted reports that nothing is left. Callers hold mu
	// (it reads the accumulated node count). Each concurrent slice is handed
	// the allowance remaining when it starts, so in-flight slices can jointly
	// overshoot MaxNodes by the nodes of the other W-1 running slices — the
	// bound is enforced at every handout, not retroactively across workers.
	remainingBudget := func() (lattice.Budget, bool) {
		var b lattice.Budget
		if ctx.Err() != nil {
			return b, true
		}
		if budget.Timeout > 0 {
			left := time.Until(deadline)
			if left <= 0 {
				return b, true
			}
			b.Timeout = left
		}
		if budget.MaxNodes > 0 {
			left := budget.MaxNodes - res.NodesVisited
			if left <= 0 {
				return b, true
			}
			b.MaxNodes = left
		}
		return b, false
	}
	runWorker := func() {
		for {
			mu.Lock()
			if stopped || runErr != nil || cursor >= len(jobs) {
				mu.Unlock()
				return
			}
			left, exhausted := remainingBudget()
			if exhausted {
				res.Interrupted = true
				stopped = true
				mu.Unlock()
				return
			}
			i := cursor
			cursor++
			mu.Unlock()

			job := jobs[i]
			jobOpts := sliceOpts
			jobOpts.Budget = left
			slice, err := enc.SelectRows(job.rows)
			var sliceRes *core.Result
			if err == nil {
				sliceRes, err = core.DiscoverContext(ctx, slice, jobOpts)
			}
			if err != nil {
				mu.Lock()
				if runErr == nil {
					runErr = err
				}
				mu.Unlock()
				return
			}
			// Filter off the lock: the cover is read-only after construction.
			cond := Condition{Attr: job.attr, Value: job.value, Rows: len(job.rows)}
			var kept []OD
			for _, od := range sliceRes.ODs {
				// Skip ODs that mention the condition attribute itself: within
				// the slice it is constant, so such ODs carry no information.
				if od.Attributes().Contains(job.attr) {
					continue
				}
				if globalCover.Implies(od) {
					continue
				}
				kept = append(kept, OD{Condition: cond, OD: od})
			}

			mu.Lock()
			res.NodesVisited += sliceRes.Stats.NodesVisited
			if sliceRes.Stats.MaxLevelReached > res.MaxLevelReached {
				res.MaxLevelReached = sliceRes.Stats.MaxLevelReached
			}
			res.SlicesExamined++
			outcomes[i] = sliceOutcome{ods: kept}
			if opts.Discovery.Progress != nil {
				opts.Discovery.Progress(lattice.ProgressEvent{
					Level:        SliceProgressLevel,
					Nodes:        sliceRes.Stats.NodesVisited,
					NodesVisited: res.NodesVisited,
					Elapsed:      time.Since(start),
					Slice:        &lattice.SliceInfo{Attr: job.attr, Value: job.value, Rows: len(job.rows)},
				})
			}
			if sliceRes.Stats.Interrupted {
				// The budget ran out inside the slice. The ODs it emitted up
				// to the interrupt are valid on the slice (each was verified
				// individually) and are kept; the rest of the search is
				// abandoned. In-flight slices on other workers finish their
				// own (already budgeted) runs and their results are kept too.
				res.Interrupted = true
				stopped = true
			}
			mu.Unlock()
		}
	}
	// The fan-out goroutines are engine-spawned workers in the sense of the
	// fault-containment contract: a panic in the slice scaffolding (row
	// selection, cover filtering, result merging) must become a typed error,
	// not a dead process. Panics inside a slice's own discovery are already
	// contained by that slice's engine and arrive here as runErr.
	safeRunWorker := func() {
		defer func() {
			if rec := recover(); rec != nil {
				err := &lattice.PanicError{Value: rec, Stack: debug.Stack()}
				mu.Lock()
				if runErr == nil {
					runErr = err
				}
				stopped = true
				mu.Unlock()
			}
		}()
		runWorker()
	}
	if workers <= 1 {
		safeRunWorker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				safeRunWorker()
			}()
		}
		wg.Wait()
	}
	if runErr != nil {
		return nil, runErr
	}
	for i := range outcomes {
		res.ODs = append(res.ODs, outcomes[i].ods...)
	}

	sort.Slice(res.ODs, func(i, j int) bool {
		a, b := res.ODs[i], res.ODs[j]
		if a.Condition.Attr != b.Condition.Attr {
			return a.Condition.Attr < b.Condition.Attr
		}
		if a.Condition.Value != b.Condition.Value {
			return a.Condition.Value < b.Condition.Value
		}
		return canonical.Less(a.OD, b.OD)
	})
	res.Elapsed = time.Since(start)
	return res, nil
}

// NamesString renders the condition binding using attribute names; the value
// is shown as its rank because raw values are not retained in the encoded
// relation. Every front end (CLI, HTTP JSON) renders conditions through this
// one helper so the syntax cannot drift between them.
func (c Condition) NamesString(names []string) string {
	attr := fmt.Sprintf("#%d", c.Attr)
	if c.Attr >= 0 && c.Attr < len(names) {
		attr = names[c.Attr]
	}
	return fmt.Sprintf("%s=rank(%d)", attr, c.Value)
}

// NamesString renders a conditional OD using attribute names.
func (c OD) NamesString(names []string) string {
	return fmt.Sprintf("[%s, %d rows] %s", c.Condition.NamesString(names), c.Condition.Rows, c.OD.NamesString(names))
}
