// Package conditional implements conditional order dependencies, the third
// extension named in the paper's conclusion: canonical ODs that hold on the
// portion of a relation selected by a condition ("binding") on some attribute,
// even though they fail on the full relation. A typical example is a tax
// bracket rule that holds within each country but not across countries.
//
// Discovery partitions the relation by each candidate condition attribute
// (bounded-cardinality attributes only), runs FASTOD on every partition slice,
// and reports the ODs that hold in a slice but are not implied by the ODs of
// the full relation.
package conditional

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/relation"
)

// SliceProgressLevel is the ProgressEvent.Level marker of per-slice progress
// events. The unconditional pass reports ordinary lattice levels (1, 2, ...);
// once slice passes begin, each processed condition slice reports exactly one
// event carrying this level, the slice's lattice-node count in Nodes and the
// run's cumulative total in NodesVisited. Without the marker long conditional
// discoveries go dark after the unconditional pass even though most of the
// work — one FASTOD run per condition slice — is still ahead.
const SliceProgressLevel = -1

// Defaults resolved for the zero values of the corresponding Options knobs.
// Exported so request canonicalization (the report cache's fingerprint) can
// map "0" and the explicit default onto the same effective request.
const (
	// DefaultMaxConditionCardinality bounds condition-attribute cardinality.
	DefaultMaxConditionCardinality = 16
	// DefaultMinSliceRows is the smallest condition slice processed.
	DefaultMinSliceRows = 4
)

// Condition is an equality binding "attribute = value" selecting a portion of
// the relation. Value is the raw rank of the encoded column; Rows is the
// number of tuples it selects.
type Condition struct {
	Attr  int
	Value int32
	Rows  int
}

// OD is a conditional canonical OD: the embedded OD holds on the tuples
// selected by the condition but is not implied by the unconditional ODs.
type OD struct {
	Condition Condition
	OD        canonical.OD
}

// Options configures conditional discovery.
type Options struct {
	// MaxConditionCardinality bounds how many distinct values a condition
	// attribute may have (default 16): attributes with more values fragment
	// the relation into slivers that yield spurious dependencies.
	MaxConditionCardinality int
	// MinSliceRows skips condition values selecting fewer tuples than this
	// (default 2's complement of nothing — default 4), again to avoid
	// trivially-holding ODs on tiny slices.
	MinSliceRows int
	// ConditionAttrs restricts which attributes may serve as conditions
	// (default: every attribute within the cardinality bound).
	ConditionAttrs []int
	// Discovery is passed through to the per-slice FASTOD runs (e.g.
	// MaxLevel to bound context sizes).
	Discovery core.Options
}

// Result is the outcome of a conditional discovery run.
type Result struct {
	// Global is the unconditional discovery result on the full relation.
	Global *core.Result
	// ODs are the conditional ODs found, sorted by condition then OD.
	ODs []OD
	// SlicesExamined counts (attribute, value) slices that were processed.
	SlicesExamined int
	// NodesVisited totals the lattice nodes of the unconditional pass and
	// every slice pass, the quantity Options.Discovery.Budget.MaxNodes bounds.
	NodesVisited int
	// MaxLevelReached is the deepest lattice level processed by ANY pass of
	// the run — the unconditional pass or a slice pass — not just the
	// unconditional one. (With today's exact discovery a slice can never out-
	// run the full relation: dependencies survive row restriction, so slices
	// prune at least as early. The max is taken anyway so the counter stays
	// honest if a pass is ever bounded or restarted asymmetrically.)
	MaxLevelReached int
	// Interrupted reports that the run stopped early — during the
	// unconditional pass, between slices, or inside a slice — because the
	// context was cancelled or the shared budget exhausted. The result then
	// holds every conditional OD confirmed before the interrupt.
	Interrupted bool
	Elapsed     time.Duration
}

// Discover runs conditional discovery with a background context; see
// DiscoverContext.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext finds conditional canonical ODs. An OD is reported for a
// condition slice only if it is minimal on that slice (FASTOD's own
// minimality) and not already implied by the unconditional ODs of the full
// relation — otherwise a conditional report would just restate global
// knowledge.
//
// The context and Options.Discovery.Budget are honored across the whole run,
// not per inner discovery: the wall-clock deadline and the node allowance are
// shared by the unconditional pass and every slice pass, so a budgeted
// conditional run is bounded even when the relation fragments into many
// slices. An interrupted run keeps the conditional ODs confirmed so far and
// sets Result.Interrupted.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("conditional: empty relation")
	}
	if opts.MaxConditionCardinality <= 0 {
		opts.MaxConditionCardinality = DefaultMaxConditionCardinality
	}
	if opts.MinSliceRows <= 0 {
		opts.MinSliceRows = DefaultMinSliceRows
	}
	start := time.Now()
	budget := opts.Discovery.Budget
	var deadline time.Time
	if budget.Timeout > 0 {
		deadline = start.Add(budget.Timeout)
	}

	global, err := core.DiscoverContext(ctx, enc, opts.Discovery)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Global:          global,
		NodesVisited:    global.Stats.NodesVisited,
		MaxLevelReached: global.Stats.MaxLevelReached,
	}
	if global.Stats.Interrupted {
		res.Interrupted = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	// Condition slices are distinct relations; a partition store supplied for
	// the global run must not leak into them (a store is bound to exactly one
	// relation instance). Slice runs draw on the remainder of the shared
	// budget, computed before each slice. Per-level progress stays with the
	// unconditional pass (slice lattices are tiny and many); instead each
	// completed slice reports one SliceProgressLevel event below.
	sliceOpts := opts.Discovery
	sliceOpts.Partitions = nil
	sliceOpts.Progress = nil
	// remainingBudget converts the shared allowance into the budget for the
	// next slice run; exhausted reports that nothing is left.
	remainingBudget := func() (lattice.Budget, bool) {
		var b lattice.Budget
		if ctx.Err() != nil {
			return b, true
		}
		if budget.Timeout > 0 {
			left := time.Until(deadline)
			if left <= 0 {
				return b, true
			}
			b.Timeout = left
		}
		if budget.MaxNodes > 0 {
			left := budget.MaxNodes - res.NodesVisited
			if left <= 0 {
				return b, true
			}
			b.MaxNodes = left
		}
		return b, false
	}
	globalCover := canonical.NewCover(global.ODs)

	condAttrs := opts.ConditionAttrs
	if condAttrs == nil {
		for a := 0; a < enc.NumCols(); a++ {
			if enc.Cardinality[a] >= 2 && enc.Cardinality[a] <= opts.MaxConditionCardinality {
				condAttrs = append(condAttrs, a)
			}
		}
	}

slices:
	for _, attr := range condAttrs {
		if attr < 0 || attr >= enc.NumCols() {
			return nil, fmt.Errorf("conditional: condition attribute %d out of range", attr)
		}
		// Group row indexes by the condition attribute's value.
		groups := make(map[int32][]int)
		for row, v := range enc.Column(attr) {
			groups[v] = append(groups[v], row)
		}
		values := make([]int32, 0, len(groups))
		for v := range groups {
			values = append(values, v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

		for _, v := range values {
			rows := groups[v]
			if len(rows) < opts.MinSliceRows {
				continue
			}
			left, exhausted := remainingBudget()
			if exhausted {
				res.Interrupted = true
				break slices
			}
			sliceOpts.Budget = left
			slice, err := enc.SelectRows(rows)
			if err != nil {
				return nil, err
			}
			sliceRes, err := core.DiscoverContext(ctx, slice, sliceOpts)
			if err != nil {
				return nil, err
			}
			res.NodesVisited += sliceRes.Stats.NodesVisited
			if sliceRes.Stats.MaxLevelReached > res.MaxLevelReached {
				res.MaxLevelReached = sliceRes.Stats.MaxLevelReached
			}
			res.SlicesExamined++
			if opts.Discovery.Progress != nil {
				opts.Discovery.Progress(lattice.ProgressEvent{
					Level:        SliceProgressLevel,
					Nodes:        sliceRes.Stats.NodesVisited,
					NodesVisited: res.NodesVisited,
					Elapsed:      time.Since(start),
				})
			}
			cond := Condition{Attr: attr, Value: v, Rows: len(rows)}
			for _, od := range sliceRes.ODs {
				// Skip ODs that mention the condition attribute itself: within
				// the slice it is constant, so such ODs carry no information.
				if od.Attributes().Contains(attr) {
					continue
				}
				if globalCover.Implies(od) {
					continue
				}
				res.ODs = append(res.ODs, OD{Condition: cond, OD: od})
			}
			if sliceRes.Stats.Interrupted {
				// The budget ran out inside the slice. The ODs it emitted up
				// to the interrupt are valid on the slice (each was verified
				// individually) and are kept; the rest of the search is
				// abandoned.
				res.Interrupted = true
				break slices
			}
		}
	}

	sort.Slice(res.ODs, func(i, j int) bool {
		a, b := res.ODs[i], res.ODs[j]
		if a.Condition.Attr != b.Condition.Attr {
			return a.Condition.Attr < b.Condition.Attr
		}
		if a.Condition.Value != b.Condition.Value {
			return a.Condition.Value < b.Condition.Value
		}
		return canonical.Less(a.OD, b.OD)
	})
	res.Elapsed = time.Since(start)
	return res, nil
}

// NamesString renders the condition binding using attribute names; the value
// is shown as its rank because raw values are not retained in the encoded
// relation. Every front end (CLI, HTTP JSON) renders conditions through this
// one helper so the syntax cannot drift between them.
func (c Condition) NamesString(names []string) string {
	attr := fmt.Sprintf("#%d", c.Attr)
	if c.Attr >= 0 && c.Attr < len(names) {
		attr = names[c.Attr]
	}
	return fmt.Sprintf("%s=rank(%d)", attr, c.Value)
}

// NamesString renders a conditional OD using attribute names.
func (c OD) NamesString(names []string) string {
	return fmt.Sprintf("[%s, %d rows] %s", c.Condition.NamesString(names), c.Condition.Rows, c.OD.NamesString(names))
}
