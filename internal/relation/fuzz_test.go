package relation

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzReadCSV drives the CSV decode path — the only place untrusted bytes
// enter the system (odserve uploads, CLI file loads) — with hostile input.
// The properties under test:
//
//  1. ReadCSV never panics, whatever the bytes (it must return an error,
//     which the server maps to a 400, never take the process down);
//  2. an accepted relation passes its own Validate invariants;
//  3. an accepted relation survives a write/read round trip with its shape
//     intact (the writer quotes whatever the reader accepted).
//
// The checked-in corpus under testdata/fuzz/FuzzReadCSV covers the known
// nasty classes — hostile header names, ragged rows, quoted fields spanning
// lines, and invalid UTF-8 — so `go test` replays them even when no fuzzing
// budget is spent.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n"))
	f.Add([]byte("a,b\n1\n1,2,3\n"))                                               // ragged rows
	f.Add([]byte("\"a\nb\",c\n\"x,y\",z\n"))                                       // newline and comma inside quotes
	f.Add([]byte("a,a\n1,2\n"))                                                    // duplicate header
	f.Add([]byte(",\n,\n"))                                                        // empty names and fields
	f.Add([]byte("a\xff\xfe,b\n\x80,2\n"))                                         // invalid UTF-8
	f.Add([]byte("a,b\n\"" + string(bytes.Repeat([]byte("x"), 1<<12)) + "\",2\n")) // huge quoted field
	f.Add([]byte("a,b\r\n1,2\r\n"))                                                // CRLF endings
	f.Add([]byte("\xef\xbb\xbfa,b\n1,2\n"))                                        // BOM in header
	f.Add([]byte("a,b\n\"unterminated,2\n"))                                       // unterminated quote

	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := ReadCSV("fuzz", bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking on it is not
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("accepted relation fails Validate: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := WriteCSV(rel, &buf); err != nil {
			t.Fatalf("accepted relation fails WriteCSV: %v\ninput: %q", err, data)
		}
		again, err := ReadCSV("fuzz-roundtrip", &buf)
		if err != nil {
			t.Fatalf("round trip fails to re-read: %v\ninput: %q", err, data)
		}
		// Shape, not content: encoding/csv normalizes \r\n to \n inside
		// quoted fields, so bytes may differ — rows and columns may not.
		if again.NumRows() != rel.NumRows() || again.NumCols() != rel.NumCols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d\ninput: %q",
				rel.NumRows(), rel.NumCols(), again.NumRows(), again.NumCols(), data)
		}
		// Column names must round-trip exactly when valid UTF-8 (the writer
		// emits them verbatim).
		for i, name := range rel.ColumnNames() {
			if utf8.ValidString(name) && again.ColumnNames()[i] != name {
				t.Fatalf("column %d name changed: %q -> %q", i, name, again.ColumnNames()[i])
			}
		}
	})
}
