package relation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file makes ordering semantics a first-class, per-attribute input of
// the rank encoding instead of an encode-time constant. An OrderSpec chooses,
// per column, the sort direction, the NULL placement and the collation under
// which raw values are compared; EncodeSpec compiles all of it away into
// plain dense ranks, so the discovery algorithms never see the spec — they
// keep operating on integers whose order IS the requested order.
//
// The contract, spec-aware form of the Section 4.6 encoding invariant:
//
//	rank(a) == rank(b)  ⇔  a and b are equal under the column's collation
//	rank(a) <  rank(b)  ⇔  a sorts strictly before b under the column order
//
// Compare is the independent reference implementation of that order over raw
// values; FuzzEncodeSpec differences the two against each other.

// Direction is the per-attribute sort direction of an OrderSpec. The zero
// value is ascending.
type Direction uint8

// Sort directions.
const (
	// Asc sorts non-null values ascending (the default).
	Asc Direction = iota
	// Desc sorts non-null values descending. NULL placement is NOT affected:
	// it is controlled independently by NullOrder, as in SQL.
	Desc
)

// String renders the direction in the spec grammar ("asc"/"desc").
func (d Direction) String() string {
	switch d {
	case Asc:
		return "asc"
	case Desc:
		return "desc"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// ParseDirection parses a direction keyword, case-insensitively. The empty
// string selects the default (ascending).
func ParseDirection(s string) (Direction, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "asc", "ascending":
		return Asc, nil
	case "desc", "descending":
		return Desc, nil
	default:
		return 0, fmt.Errorf("relation: unknown direction %q (want \"asc\" or \"desc\")", s)
	}
}

// NullOrder places NULLs (empty-string values) relative to every non-null
// value, independent of Direction. The zero value is NULLS FIRST, matching
// the historical behavior of Encode.
type NullOrder uint8

// NULL placements.
const (
	// NullsFirst sorts NULLs before every non-null value (the default).
	NullsFirst NullOrder = iota
	// NullsLast sorts NULLs after every non-null value.
	NullsLast
)

// String renders the placement in the spec grammar ("first"/"last").
func (n NullOrder) String() string {
	switch n {
	case NullsFirst:
		return "first"
	case NullsLast:
		return "last"
	default:
		return fmt.Sprintf("NullOrder(%d)", int(n))
	}
}

// ParseNullOrder parses a NULL placement keyword, case-insensitively. The
// empty string selects the default (NULLS FIRST).
func ParseNullOrder(s string) (NullOrder, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "first":
		return NullsFirst, nil
	case "last":
		return NullsLast, nil
	default:
		return 0, fmt.Errorf("relation: unknown null placement %q (want \"first\" or \"last\")", s)
	}
}

// Collation chooses the comparator (and therefore the equivalence classes)
// non-null values of one column are ranked under. The zero value defers to
// the column's sniffed or declared Type, which is the historical behavior.
type Collation uint8

// Collations.
const (
	// CollateDefault compares by the column's Type (int/float/date/string),
	// breaking numeric and date ties by the raw string so distinct raw values
	// always get distinct ranks. Unparseable values are an encoding error,
	// exactly as before OrderSpec existed.
	CollateDefault Collation = iota
	// CollateLexicographic compares raw strings bytewise, whatever the
	// column's type.
	CollateLexicographic
	// CollateNumeric parses values as floats. Equal numbers are EQUAL (so
	// "1" and "1.0" merge into one equivalence class); values that do not
	// parse (or parse to NaN) sort after every number, ordered bytewise
	// among themselves. Total on any input — never an encoding error.
	CollateNumeric
	// CollateDate parses values as dates (the same layouts the sniffer
	// accepts). Equal instants are EQUAL; unparseable values sort after
	// every date, ordered bytewise among themselves.
	CollateDate
	// CollateCaseInsensitive compares strings.ToLower of the raw values;
	// case variants of one word merge into one equivalence class.
	CollateCaseInsensitive
	// CollateRank orders values by their position in the user-supplied
	// ColumnOrder.Ranks list (a user-defined order, e.g. Low < Medium <
	// High). Values absent from the list sort after every listed value,
	// ordered bytewise among themselves.
	CollateRank
)

// String renders the collation in the spec grammar.
func (c Collation) String() string {
	switch c {
	case CollateDefault:
		return "default"
	case CollateLexicographic:
		return "lexicographic"
	case CollateNumeric:
		return "numeric"
	case CollateDate:
		return "date"
	case CollateCaseInsensitive:
		return "case-insensitive"
	case CollateRank:
		return "rank"
	default:
		return fmt.Sprintf("Collation(%d)", int(c))
	}
}

// ParseCollation parses a collation name, case-insensitively, accepting the
// short aliases "lex" and "ci". The empty string selects the default.
func ParseCollation(s string) (Collation, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "default":
		return CollateDefault, nil
	case "lex", "lexicographic":
		return CollateLexicographic, nil
	case "numeric":
		return CollateNumeric, nil
	case "date":
		return CollateDate, nil
	case "ci", "case-insensitive":
		return CollateCaseInsensitive, nil
	case "rank":
		return CollateRank, nil
	default:
		return 0, fmt.Errorf("relation: unknown collation %q (want default, lexicographic, numeric, date, case-insensitive or rank)", s)
	}
}

// ColumnOrder is the ordering specification of one column: direction, NULL
// placement and collation. The zero value is the historical default order
// (ascending, NULLS FIRST, type-driven comparison).
type ColumnOrder struct {
	Direction Direction
	Nulls     NullOrder
	Collation Collation
	// Ranks is the user-defined value order of CollateRank (first entry
	// sorts lowest); it must be empty for every other collation.
	Ranks []string
}

// IsDefault reports whether the order is the zero default, i.e. encoding
// under it is identical to plain Encode.
func (co ColumnOrder) IsDefault() bool {
	return co.Direction == Asc && co.Nulls == NullsFirst &&
		co.Collation == CollateDefault && len(co.Ranks) == 0
}

// Validate checks the order is internally consistent: enums in range, and a
// rank list present exactly when CollateRank asks for one (non-empty, no
// duplicate values — a duplicated value would make its rank ambiguous).
func (co ColumnOrder) Validate() error {
	if co.Direction != Asc && co.Direction != Desc {
		return fmt.Errorf("relation: invalid direction %d", co.Direction)
	}
	if co.Nulls != NullsFirst && co.Nulls != NullsLast {
		return fmt.Errorf("relation: invalid null placement %d", co.Nulls)
	}
	switch co.Collation {
	case CollateDefault, CollateLexicographic, CollateNumeric, CollateDate, CollateCaseInsensitive:
		if len(co.Ranks) > 0 {
			return fmt.Errorf("relation: Ranks set with collation %q (only \"rank\" reads them)", co.Collation)
		}
	case CollateRank:
		if len(co.Ranks) == 0 {
			return fmt.Errorf("relation: rank collation requires a non-empty rank list")
		}
		seen := make(map[string]bool, len(co.Ranks))
		for _, v := range co.Ranks {
			if v == "" {
				return fmt.Errorf("relation: rank list contains an empty value (NULL placement is controlled by NullOrder)")
			}
			if seen[v] {
				return fmt.Errorf("relation: rank list repeats value %q", v)
			}
			seen[v] = true
		}
	default:
		return fmt.Errorf("relation: invalid collation %d", co.Collation)
	}
	return nil
}

// String renders the order in the spec grammar, e.g. "desc nulls last
// collate numeric". The default collation is omitted; rank lists are quoted.
func (co ColumnOrder) String() string {
	var b strings.Builder
	b.WriteString(co.Direction.String())
	b.WriteString(" nulls ")
	b.WriteString(co.Nulls.String())
	if co.Collation != CollateDefault {
		b.WriteString(" collate ")
		b.WriteString(co.Collation.String())
	}
	for i, v := range co.Ranks {
		if i == 0 {
			b.WriteString(" (")
		} else {
			b.WriteString(" < ")
		}
		b.WriteString(strconv.Quote(v))
	}
	if len(co.Ranks) > 0 {
		b.WriteString(")")
	}
	return b.String()
}

// OrderSpec is a per-column ordering specification for a whole relation,
// positional with its columns. nil means "every column default"; otherwise
// the length must equal the relation's column count.
type OrderSpec []ColumnOrder

// EncodeSpec converts a raw relation into its rank-encoded form under the
// given ordering spec: per column, distinct values are ordered by
// Compare(spec[col], col.Type, ·, ·) and replaced by their dense 0-based
// rank, with values equal under the collation sharing one rank. A nil spec
// is the all-default spec, making EncodeSpec(r, nil) identical to Encode(r).
func EncodeSpec(r *Relation, spec OrderSpec) (*Encoded, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if spec != nil && len(spec) != r.NumCols() {
		return nil, fmt.Errorf("relation: order spec has %d entries, relation has %d columns", len(spec), r.NumCols())
	}
	rows := r.NumRows()
	enc := &Encoded{
		Name:        r.Name,
		ColumnNames: r.ColumnNames(),
		Values:      make([][]int32, r.NumCols()),
		Cardinality: make([]int, r.NumCols()),
		rows:        rows,
	}
	for ci, col := range r.Columns {
		var co ColumnOrder
		if spec != nil {
			co = spec[ci]
		}
		if err := co.Validate(); err != nil {
			return nil, fmt.Errorf("relation: column %q: %w", col.Name, err)
		}
		ranks, card, err := encodeColumn(col, co)
		if err != nil {
			return nil, fmt.Errorf("relation: column %q: %w", col.Name, err)
		}
		enc.Values[ci] = ranks
		enc.Cardinality[ci] = card
	}
	return enc, nil
}

// encodeColumn rank-encodes one column under a column order. Distinct raw
// values are keyed, sorted under the order, and grouped: values whose keys
// compare equal (possible only under the merging collations — numeric, date,
// case-insensitive, rank) share one dense rank.
func encodeColumn(col Column, co ColumnOrder) ([]int32, int, error) {
	distinct := make(map[string]struct{}, len(col.Raw))
	for _, v := range col.Raw {
		distinct[v] = struct{}{}
	}
	values := make([]string, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	maker := newKeyMaker(co, col.Type)
	keys := make(map[string]sortKey, len(values))
	for _, v := range values {
		k, err := maker.key(v)
		if err != nil {
			return nil, 0, err
		}
		keys[v] = k
	}
	sort.Slice(values, func(i, j int) bool {
		return co.compareKeys(keys[values[i]], keys[values[j]]) < 0
	})
	rank := make(map[string]int32, len(values))
	next := int32(0)
	for i, v := range values {
		if i > 0 && co.compareKeys(keys[values[i-1]], keys[v]) != 0 {
			next++
		}
		rank[v] = next
	}
	out := make([]int32, len(col.Raw))
	for i, v := range col.Raw {
		out[i] = rank[v]
	}
	card := 0
	if len(values) > 0 {
		card = int(next) + 1
	}
	return out, card, nil
}

// sortKey is the comparison key of one raw value under a column order. Keys
// of one column are totally ordered by ColumnOrder.compareKeys; two keys
// compare equal exactly when the raw values are equal under the collation.
type sortKey struct {
	null bool
	// bucket separates a collation's primary values (parsed numbers/dates,
	// listed ranks — bucket 0) from its fallback values (bucket 1), which
	// sort after every primary value.
	bucket uint8
	// num orders bucket-0 values of the numeric-like collations (the parsed
	// number, the date's unix time, or the rank-list index).
	num float64
	// str orders string-compared values (raw, lowered, or fallback-bucket).
	str string
	// tie is the raw-value tiebreak of non-merging collations; hasTie
	// distinguishes "no tiebreak: equal keys merge" from an empty tie.
	tie    string
	hasTie bool
}

// compareKeys totally orders two non-null-aware keys under the column order:
// nulls are placed by Nulls independent of Direction, and Direction inverts
// the whole non-null comparison.
func (co ColumnOrder) compareKeys(a, b sortKey) int {
	if a.null || b.null {
		switch {
		case a.null && b.null:
			return 0
		case a.null:
			if co.Nulls == NullsLast {
				return 1
			}
			return -1
		default:
			if co.Nulls == NullsLast {
				return -1
			}
			return 1
		}
	}
	c := rawKeyCompare(a, b)
	if co.Direction == Desc {
		c = -c
	}
	return c
}

// rawKeyCompare orders two non-null keys ascending: bucket, then numeric
// magnitude, then string comparand, then the raw tiebreak (when present).
func rawKeyCompare(a, b sortKey) int {
	if a.bucket != b.bucket {
		return int(a.bucket) - int(b.bucket)
	}
	if a.num != b.num {
		if a.num < b.num {
			return -1
		}
		return 1
	}
	if c := strings.Compare(a.str, b.str); c != 0 {
		return c
	}
	if a.hasTie || b.hasTie {
		return strings.Compare(a.tie, b.tie)
	}
	return 0
}

// keyMaker builds sort keys for one column's values under one column order;
// it pre-indexes the rank list of CollateRank so key building stays O(1).
type keyMaker struct {
	co    ColumnOrder
	typ   Type
	ranks map[string]int
}

func newKeyMaker(co ColumnOrder, t Type) keyMaker {
	m := keyMaker{co: co, typ: t}
	if co.Collation == CollateRank {
		m.ranks = make(map[string]int, len(co.Ranks))
		for i, v := range co.Ranks {
			m.ranks[v] = i
		}
	}
	return m
}

func (m keyMaker) key(raw string) (sortKey, error) {
	if raw == "" {
		return sortKey{null: true}, nil
	}
	switch m.co.Collation {
	case CollateLexicographic:
		return sortKey{str: raw}, nil
	case CollateCaseInsensitive:
		return sortKey{str: strings.ToLower(raw)}, nil
	case CollateNumeric:
		if f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64); err == nil && !math.IsNaN(f) {
			return sortKey{num: f}, nil
		}
		return sortKey{bucket: 1, str: raw}, nil
	case CollateDate:
		if ts, ok := parseDate(raw); ok {
			return sortKey{num: float64(ts)}, nil
		}
		return sortKey{bucket: 1, str: raw}, nil
	case CollateRank:
		if i, ok := m.ranks[raw]; ok {
			return sortKey{num: float64(i)}, nil
		}
		return sortKey{bucket: 1, str: raw}, nil
	default:
		return makeDefaultKey(m.typ, raw)
	}
}

// makeDefaultKey is the type-driven key of CollateDefault: the historical
// Encode behavior, including its errors on values that contradict the
// declared type. Ties between distinct raw values that parse equal (e.g.
// "1" and "1.0" as floats) are broken by the raw string, so distinct raw
// values keep distinct ranks under the default collation.
func makeDefaultKey(t Type, raw string) (sortKey, error) {
	switch t {
	case TypeInt:
		n, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return sortKey{}, fmt.Errorf("value %q is not an integer: %w", raw, err)
		}
		return sortKey{num: float64(n), tie: raw, hasTie: true}, nil
	case TypeFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return sortKey{}, fmt.Errorf("value %q is not a float: %w", raw, err)
		}
		if math.IsNaN(f) {
			// NaN breaks the strict weak order of float comparison (it is
			// neither less than nor equal to anything); park it in the
			// fallback bucket, ordered by raw string, to keep the key order
			// total and deterministic.
			return sortKey{bucket: 1, str: raw, tie: raw, hasTie: true}, nil
		}
		return sortKey{num: f, tie: raw, hasTie: true}, nil
	case TypeDate:
		if ts, ok := parseDate(raw); ok {
			return sortKey{num: float64(ts), tie: raw, hasTie: true}, nil
		}
		return sortKey{}, fmt.Errorf("value %q is not a recognized date", raw)
	default:
		return sortKey{str: raw}, nil
	}
}

// parseDate parses a raw value under the first matching accepted layout and
// returns its unix time.
func parseDate(raw string) (int64, bool) {
	v := strings.TrimSpace(raw)
	for _, layout := range dateLayouts {
		if ts, err := time.Parse(layout, v); err == nil {
			return ts.Unix(), true
		}
	}
	return 0, false
}

// Compare is the reference comparator of the spec-to-rank contract: it
// orders two raw values of a column with type t directly under the column
// order, independently of the key-based encoding path. It is total on any
// input (even values Encode would reject under CollateDefault — those fall
// back to bytewise order so the comparator never errors), and EncodeSpec
// guarantees sign(rank(a)-rank(b)) == sign(Compare(co, t, a, b)) for every
// pair of values of an encoded column; FuzzEncodeSpec enforces exactly that.
func Compare(co ColumnOrder, t Type, a, b string) int {
	if a == "" || b == "" {
		switch {
		case a == "" && b == "":
			return 0
		case a == "":
			if co.Nulls == NullsLast {
				return 1
			}
			return -1
		default:
			if co.Nulls == NullsLast {
				return -1
			}
			return 1
		}
	}
	c := compareNonNull(co, t, a, b)
	if co.Direction == Desc {
		c = -c
	}
	return c
}

// compareNonNull orders two non-null values ascending under the collation.
func compareNonNull(co ColumnOrder, t Type, a, b string) int {
	switch co.Collation {
	case CollateLexicographic:
		return strings.Compare(a, b)
	case CollateCaseInsensitive:
		return strings.Compare(strings.ToLower(a), strings.ToLower(b))
	case CollateNumeric:
		fa, oka := parseNumeric(a)
		fb, okb := parseNumeric(b)
		return comparePrimary(fa, oka, fb, okb, a, b, false)
	case CollateDate:
		da, oka := parseDate(a)
		db, okb := parseDate(b)
		return comparePrimary(float64(da), oka, float64(db), okb, a, b, false)
	case CollateRank:
		ia, oka := rankIndex(co.Ranks, a)
		ib, okb := rankIndex(co.Ranks, b)
		return comparePrimary(float64(ia), oka, float64(ib), okb, a, b, false)
	default:
		switch t {
		case TypeInt, TypeFloat:
			fa, oka := parseNumeric(a)
			fb, okb := parseNumeric(b)
			return comparePrimary(fa, oka, fb, okb, a, b, true)
		case TypeDate:
			da, oka := parseDate(a)
			db, okb := parseDate(b)
			return comparePrimary(float64(da), oka, float64(db), okb, a, b, true)
		default:
			return strings.Compare(a, b)
		}
	}
}

// comparePrimary orders two values that each either carry a primary numeric
// magnitude (ok) or fall back to bytewise order: primaries first, then
// magnitude, then — for non-merging (default) collations — the raw string.
func comparePrimary(fa float64, oka bool, fb float64, okb bool, a, b string, tieOnRaw bool) int {
	switch {
	case oka && okb:
		if fa != fb {
			if fa < fb {
				return -1
			}
			return 1
		}
		if tieOnRaw {
			return strings.Compare(a, b)
		}
		return 0
	case oka:
		return -1
	case okb:
		return 1
	default:
		return strings.Compare(a, b)
	}
}

// parseNumeric parses a float, rejecting NaN (which would break totality).
func parseNumeric(raw string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}

// rankIndex is the naive rank-list lookup of the reference comparator (the
// encode path pre-indexes; this one deliberately stays independent).
func rankIndex(ranks []string, v string) (int, bool) {
	for i, r := range ranks {
		if r == v {
			return i, true
		}
	}
	return 0, false
}
