package relation

import (
	"strings"
	"testing"
)

// FuzzEncodeSpec differences the two independent implementations of the
// ordering contract against each other: EncodeSpec's key-based rank encoding
// versus the naive pairwise reference comparator Compare. For a random
// column under a random ColumnOrder it checks that
//
//  1. ranks are dense (every rank in [0, cardinality) occurs),
//  2. rank order equals a naive spec-aware sort: for every pair of rows,
//     sign(rank_i - rank_j) == sign(Compare(co, type, raw_i, raw_j)),
//  3. re-encoding under the reversed spec (direction and NULL placement both
//     flipped) reverses every strict inequality and keeps every equality.
func FuzzEncodeSpec(f *testing.F) {
	f.Add("1\n2\n\n10", 0, 0, 0, "")
	f.Add("10\n2\n7\n2\n100", 1, 1, 0, "")
	f.Add("Red\nred\nBLUE\nblue", 0, 0, 4, "")
	f.Add("1.5\nn/a\nNaN\n2\n2.0\n?", 0, 1, 2, "")
	f.Add("2012-01-02\n2011/05/06\nnot a date\n2011-05-06", 1, 0, 3, "")
	f.Add("high\nlow\nmedium\nunknown\nlow\n", 0, 1, 5, "low\nmedium\nhigh")
	f.Add("2006-01-02\n2006/01/02\n01/02/2006", 0, 0, 0, "")
	f.Add("\n\n\n", 1, 1, 1, "")
	f.Fuzz(func(t *testing.T, colData string, dir, nulls, coll int, ranksData string) {
		raw := strings.Split(colData, "\n")
		if len(raw) > 64 {
			raw = raw[:64]
		}
		mod := func(v, n int) int {
			m := v % n
			if m < 0 {
				m += n
			}
			return m
		}
		collations := []Collation{
			CollateDefault, CollateLexicographic, CollateNumeric,
			CollateDate, CollateCaseInsensitive, CollateRank,
		}
		co := ColumnOrder{
			Direction: Direction(mod(dir, 2)),
			Nulls:     NullOrder(mod(nulls, 2)),
			Collation: collations[mod(coll, len(collations))],
		}
		if co.Collation == CollateRank {
			seen := make(map[string]bool)
			for _, v := range strings.Split(ranksData, "\n") {
				if v == "" || seen[v] || len(co.Ranks) >= 16 {
					continue
				}
				seen[v] = true
				co.Ranks = append(co.Ranks, v)
			}
			if len(co.Ranks) == 0 {
				co.Collation = CollateLexicographic
			}
		}
		typ := SniffType(raw)
		encode := func(order ColumnOrder) ([]int32, int, bool) {
			r := New("fuzz", Column{Name: "a", Type: typ, Raw: raw})
			enc, err := EncodeSpec(r, OrderSpec{order})
			if err != nil {
				// Only the typed default collation may reject values (e.g.
				// whitespace-only strings the sniffer treats as missing);
				// every explicit collation is total.
				if order.Collation != CollateDefault {
					t.Fatalf("EncodeSpec with explicit collation %v errored: %v", order.Collation, err)
				}
				return nil, 0, false
			}
			return enc.Values[0], enc.Cardinality[0], true
		}
		ranks, card, ok := encode(co)
		if !ok {
			return
		}
		// Density: every rank in [0, card) occurs, none outside.
		used := make([]bool, card)
		for i, r := range ranks {
			if int(r) < 0 || int(r) >= card {
				t.Fatalf("row %d: rank %d outside [0,%d)", i, r, card)
			}
			used[r] = true
		}
		for r, u := range used {
			if !u {
				t.Fatalf("rank %d unused (cardinality %d not dense)", r, card)
			}
		}
		// Rank order == naive spec-aware comparison of raw values.
		for i := range raw {
			for j := range raw {
				want := Compare(co, typ, raw[i], raw[j])
				got := int(ranks[i]) - int(ranks[j])
				if (want < 0) != (got < 0) || (want == 0) != (got == 0) {
					t.Fatalf("order %+v type %v: rows %d,%d (%q,%q): Compare %d, rank delta %d",
						co, typ, i, j, raw[i], raw[j], want, got)
				}
			}
		}
		// The reversed spec reverses strict inequalities and keeps equalities.
		rev := co
		rev.Direction = Asc + Desc - co.Direction
		rev.Nulls = NullsFirst + NullsLast - co.Nulls
		rranks, rcard, ok := encode(rev)
		if !ok {
			t.Fatalf("reverse encode failed after forward encode succeeded")
		}
		if rcard != card {
			t.Fatalf("reversing the spec changed cardinality: %d vs %d", card, rcard)
		}
		for i := range raw {
			for j := range raw {
				if (ranks[i] < ranks[j]) != (rranks[i] > rranks[j]) {
					t.Fatalf("reverse of %+v: rows %d,%d (%q,%q): forward %d,%d reverse %d,%d",
						co, i, j, raw[i], raw[j], ranks[i], ranks[j], rranks[i], rranks[j])
				}
			}
		}
	})
}
