package relation

import (
	"reflect"
	"strings"
	"testing"
)

func encodeOne(t *testing.T, typ Type, raw []string, co ColumnOrder) ([]int32, int) {
	t.Helper()
	r := New("t", Column{Name: "a", Type: typ, Raw: raw})
	enc, err := EncodeSpec(r, OrderSpec{co})
	if err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	return enc.Values[0], enc.Cardinality[0]
}

func TestEncodeSpecNilMatchesEncode(t *testing.T) {
	r := New("t",
		Column{Name: "i", Type: TypeInt, Raw: []string{"10", "2", "", "7", "2"}},
		Column{Name: "s", Type: TypeString, Raw: []string{"b", "a", "c", "", "a"}},
		Column{Name: "d", Type: TypeDate, Raw: []string{"2012-01-02", "2011-05-06", "", "2012-01-01", "2011-05-06"}},
	)
	plain, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	spec, err := EncodeSpec(r, nil)
	if err != nil {
		t.Fatalf("EncodeSpec(nil): %v", err)
	}
	if !reflect.DeepEqual(plain, spec) {
		t.Fatalf("Encode and EncodeSpec(nil) disagree:\n%+v\n%+v", plain, spec)
	}
	defaults := make(OrderSpec, r.NumCols())
	spec2, err := EncodeSpec(r, defaults)
	if err != nil {
		t.Fatalf("EncodeSpec(defaults): %v", err)
	}
	if !reflect.DeepEqual(plain, spec2) {
		t.Fatalf("Encode and EncodeSpec(all-default) disagree")
	}
}

func TestEncodeSpecDescReversesStrictOrder(t *testing.T) {
	raw := []string{"10", "2", "7", "2", "100"}
	asc, cardAsc := encodeOne(t, TypeInt, raw, ColumnOrder{})
	desc, cardDesc := encodeOne(t, TypeInt, raw, ColumnOrder{Direction: Desc})
	if cardAsc != cardDesc {
		t.Fatalf("cardinality changed under desc: %d vs %d", cardAsc, cardDesc)
	}
	for i := range raw {
		for j := range raw {
			if (asc[i] < asc[j]) != (desc[i] > desc[j]) {
				t.Fatalf("rows %d,%d: asc ranks %d,%d desc ranks %d,%d", i, j, asc[i], asc[j], desc[i], desc[j])
			}
		}
	}
}

func TestEncodeSpecNullPlacement(t *testing.T) {
	raw := []string{"5", "", "1", ""}
	first, _ := encodeOne(t, TypeInt, raw, ColumnOrder{})
	if first[1] != 0 || first[3] != 0 {
		t.Fatalf("NULLS FIRST: want rank 0 for nulls, got %v", first)
	}
	last, card := encodeOne(t, TypeInt, raw, ColumnOrder{Nulls: NullsLast})
	if int(last[1]) != card-1 || int(last[3]) != card-1 {
		t.Fatalf("NULLS LAST: want rank %d for nulls, got %v", card-1, last)
	}
	// Desc must NOT move the nulls: placement is independent of direction.
	descFirst, _ := encodeOne(t, TypeInt, raw, ColumnOrder{Direction: Desc})
	if descFirst[1] != 0 {
		t.Fatalf("desc + NULLS FIRST: want rank 0 for nulls, got %v", descFirst)
	}
	descLast, card2 := encodeOne(t, TypeInt, raw, ColumnOrder{Direction: Desc, Nulls: NullsLast})
	if int(descLast[1]) != card2-1 {
		t.Fatalf("desc + NULLS LAST: want rank %d for nulls, got %v", card2-1, descLast)
	}
}

// An all-NULL column must encode deterministically (single rank 0, cardinality
// 1) under both NULL placements — there is nothing to place the NULLs against.
func TestEncodeSpecAllNullColumn(t *testing.T) {
	raw := []string{"", "", ""}
	for _, co := range []ColumnOrder{
		{},
		{Nulls: NullsLast},
		{Direction: Desc, Nulls: NullsLast},
		{Collation: CollateNumeric, Nulls: NullsLast},
	} {
		ranks, card := encodeOne(t, TypeString, raw, co)
		if card != 1 {
			t.Fatalf("%v: all-NULL column cardinality = %d, want 1", co, card)
		}
		for i, r := range ranks {
			if r != 0 {
				t.Fatalf("%v: row %d rank = %d, want 0", co, i, r)
			}
		}
	}
	// Same under the typed default path (an all-NULL int column).
	ranks, card := encodeOne(t, TypeInt, raw, ColumnOrder{Nulls: NullsLast})
	if card != 1 || ranks[0] != 0 {
		t.Fatalf("all-NULL int column: ranks %v card %d", ranks, card)
	}
}

// Mixed date layouts within one column must sniff as string (no single
// chronological interpretation covers them), not silently mis-rank.
func TestSniffTypeMixedDateLayouts(t *testing.T) {
	if got := SniffType([]string{"2006-01-02", "2007-03-04"}); got != TypeDate {
		t.Fatalf("consistent layout: got %v, want date", got)
	}
	if got := SniffType([]string{"2006-01-02", "2006/01/02"}); got != TypeString {
		t.Fatalf("mixed layouts: got %v, want string", got)
	}
	if got := SniffType([]string{"01/02/2006", "", "03/04/2007"}); got != TypeDate {
		t.Fatalf("consistent slash layout with NULLs: got %v, want date", got)
	}
	if got := SniffType([]string{"01/02/2006", "2006-01-02T15:04:05Z"}); got != TypeString {
		t.Fatalf("slash + RFC3339 mix: got %v, want string", got)
	}
}

func TestEncodeSpecCaseInsensitiveMerges(t *testing.T) {
	raw := []string{"Red", "red", "BLUE", "blue", "Green"}
	ranks, card := encodeOne(t, TypeString, raw, ColumnOrder{Collation: CollateCaseInsensitive})
	if card != 3 {
		t.Fatalf("cardinality = %d, want 3 (case variants merge)", card)
	}
	if ranks[0] != ranks[1] || ranks[2] != ranks[3] {
		t.Fatalf("case variants got distinct ranks: %v", ranks)
	}
	// blue < green < red case-insensitively.
	if !(ranks[2] < ranks[4] && ranks[4] < ranks[0]) {
		t.Fatalf("unexpected order: %v", ranks)
	}
}

func TestEncodeSpecNumericCollationIsTotal(t *testing.T) {
	// A string-typed column with junk: numeric collation must encode without
	// error, numbers by value first, junk after (bytewise).
	raw := []string{"10", "2", "n/a", "1.5", "NaN", "?", "2.0"}
	ranks, _ := encodeOne(t, TypeString, raw, ColumnOrder{Collation: CollateNumeric})
	// 1.5 < 2 == 2.0 < 10 < junk
	if !(ranks[3] < ranks[1] && ranks[1] < ranks[0]) {
		t.Fatalf("numeric order wrong: %v", ranks)
	}
	if ranks[1] != ranks[6] {
		t.Fatalf("\"2\" and \"2.0\" must merge under numeric collation: %v", ranks)
	}
	for _, junk := range []int{2, 4, 5} {
		if ranks[junk] <= ranks[0] {
			t.Fatalf("junk value (row %d) must sort after all numbers: %v", junk, ranks)
		}
	}
}

func TestEncodeSpecDateCollation(t *testing.T) {
	raw := []string{"2012-01-02", "2011/05/06", "not a date", "2011-05-06"}
	ranks, _ := encodeOne(t, TypeString, raw, ColumnOrder{Collation: CollateDate})
	// 2011-05-06 (both layouts, same instant → merge) < 2012-01-02 < junk.
	if ranks[1] != ranks[3] {
		t.Fatalf("same instant in two layouts must merge: %v", ranks)
	}
	if !(ranks[1] < ranks[0] && ranks[0] < ranks[2]) {
		t.Fatalf("date order wrong: %v", ranks)
	}
}

func TestEncodeSpecRankCollation(t *testing.T) {
	raw := []string{"high", "low", "medium", "unknown", "low"}
	co := ColumnOrder{Collation: CollateRank, Ranks: []string{"low", "medium", "high"}}
	ranks, card := encodeOne(t, TypeString, raw, co)
	if card != 4 {
		t.Fatalf("cardinality = %d, want 4", card)
	}
	if !(ranks[1] < ranks[2] && ranks[2] < ranks[0] && ranks[0] < ranks[3]) {
		t.Fatalf("rank-list order wrong: %v", ranks)
	}
	if ranks[1] != ranks[4] {
		t.Fatalf("equal values must share a rank: %v", ranks)
	}
}

func TestEncodeSpecLexOverridesType(t *testing.T) {
	// "10" < "2" bytewise even though the column is int-typed.
	raw := []string{"10", "2"}
	ranks, _ := encodeOne(t, TypeInt, raw, ColumnOrder{Collation: CollateLexicographic})
	if !(ranks[0] < ranks[1]) {
		t.Fatalf("lexicographic collation must ignore the int type: %v", ranks)
	}
}

func TestColumnOrderValidate(t *testing.T) {
	cases := []struct {
		co   ColumnOrder
		want string // substring of the error, "" = valid
	}{
		{ColumnOrder{}, ""},
		{ColumnOrder{Direction: Desc, Nulls: NullsLast, Collation: CollateCaseInsensitive}, ""},
		{ColumnOrder{Collation: CollateRank, Ranks: []string{"a", "b"}}, ""},
		{ColumnOrder{Direction: 9}, "invalid direction"},
		{ColumnOrder{Nulls: 9}, "invalid null placement"},
		{ColumnOrder{Collation: 99}, "invalid collation"},
		{ColumnOrder{Collation: CollateRank}, "non-empty rank list"},
		{ColumnOrder{Collation: CollateRank, Ranks: []string{"a", "a"}}, "repeats value"},
		{ColumnOrder{Collation: CollateRank, Ranks: []string{"a", ""}}, "empty value"},
		{ColumnOrder{Ranks: []string{"a"}}, "Ranks set with collation"},
	}
	for _, tc := range cases {
		err := tc.co.Validate()
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%+v: unexpected error %v", tc.co, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%+v: error %v, want substring %q", tc.co, err, tc.want)
		}
	}
}

func TestEncodeSpecLengthMismatch(t *testing.T) {
	r := New("t", Column{Name: "a", Raw: []string{"x"}}, Column{Name: "b", Raw: []string{"y"}})
	if _, err := EncodeSpec(r, OrderSpec{{}}); err == nil {
		t.Fatal("want error for 1-entry spec on 2-column relation")
	}
}

func TestParseOrderEnums(t *testing.T) {
	if d, err := ParseDirection("DESC"); err != nil || d != Desc {
		t.Fatalf("ParseDirection(DESC) = %v, %v", d, err)
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Fatal("want error for unknown direction")
	}
	if n, err := ParseNullOrder("Last"); err != nil || n != NullsLast {
		t.Fatalf("ParseNullOrder(Last) = %v, %v", n, err)
	}
	if _, err := ParseNullOrder("middle"); err == nil {
		t.Fatal("want error for unknown null placement")
	}
	for in, want := range map[string]Collation{
		"":                 CollateDefault,
		"lex":              CollateLexicographic,
		"CI":               CollateCaseInsensitive,
		"numeric":          CollateNumeric,
		"date":             CollateDate,
		"case-insensitive": CollateCaseInsensitive,
		"rank":             CollateRank,
	} {
		if c, err := ParseCollation(in); err != nil || c != want {
			t.Fatalf("ParseCollation(%q) = %v, %v", in, c, err)
		}
	}
	if _, err := ParseCollation("emoji"); err == nil {
		t.Fatal("want error for unknown collation")
	}
}

func TestColumnOrderString(t *testing.T) {
	co := ColumnOrder{Direction: Desc, Nulls: NullsLast, Collation: CollateRank, Ranks: []string{"lo", "hi"}}
	got := co.String()
	want := `desc nulls last collate rank ("lo" < "hi")`
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := (ColumnOrder{}).String(); got != "asc nulls first" {
		t.Fatalf("default String() = %q", got)
	}
}

// Compare must agree with the encoding on every pair of encoded values.
func TestCompareAgreesWithEncode(t *testing.T) {
	cols := []struct {
		typ Type
		raw []string
	}{
		{TypeInt, []string{"10", "2", "", "-3", "7", "2"}},
		{TypeFloat, []string{"1.5", "", "2", "-0.25", "1.50"}},
		{TypeDate, []string{"2012-01-02", "2011-05-06", "", "2020-12-31"}},
		{TypeString, []string{"b", "A", "", "a", "10", "2", "n/a"}},
	}
	orders := []ColumnOrder{
		{},
		{Direction: Desc},
		{Nulls: NullsLast},
		{Direction: Desc, Nulls: NullsLast},
		{Collation: CollateLexicographic},
		{Collation: CollateCaseInsensitive, Direction: Desc},
		{Collation: CollateNumeric, Nulls: NullsLast},
		{Collation: CollateDate},
		{Collation: CollateRank, Ranks: []string{"b", "a", "10"}},
	}
	sign := func(x int) int {
		switch {
		case x < 0:
			return -1
		case x > 0:
			return 1
		default:
			return 0
		}
	}
	for _, col := range cols {
		for _, co := range orders {
			// The typed default collation rejects junk at encode time; these
			// fixtures are crafted so every declared type parses.
			ranks, _ := encodeOne(t, col.typ, col.raw, co)
			for i, a := range col.raw {
				for j, b := range col.raw {
					want := sign(int(ranks[i]) - int(ranks[j]))
					got := sign(Compare(co, col.typ, a, b))
					if got != want {
						t.Fatalf("type %v order %+v: Compare(%q,%q) sign %d, ranks %d vs %d",
							col.typ, co, a, b, got, ranks[i], ranks[j])
					}
				}
			}
		}
	}
}
