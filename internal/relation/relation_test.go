package relation

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func mustRelation(t *testing.T, header []string, rows [][]string) *Relation {
	t.Helper()
	r, err := FromRows("test", header, rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return r
}

func TestFromRowsAndAccessors(t *testing.T) {
	r := mustRelation(t, []string{"id", "name", "sal"}, [][]string{
		{"1", "ann", "5.5"},
		{"2", "bob", "8.25"},
	})
	if r.NumRows() != 2 || r.NumCols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", r.NumRows(), r.NumCols())
	}
	if got := r.ColumnNames(); !reflect.DeepEqual(got, []string{"id", "name", "sal"}) {
		t.Errorf("ColumnNames = %v", got)
	}
	if r.ColumnIndex("name") != 1 || r.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex incorrect")
	}
	if r.Columns[0].Type != TypeInt || r.Columns[1].Type != TypeString || r.Columns[2].Type != TypeFloat {
		t.Errorf("sniffed types = %v %v %v", r.Columns[0].Type, r.Columns[1].Type, r.Columns[2].Type)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		rel  *Relation
	}{
		{"no columns", New("x")},
		{"duplicate names", New("x",
			Column{Name: "a", Raw: []string{"1"}},
			Column{Name: "a", Raw: []string{"2"}})},
		{"ragged columns", New("x",
			Column{Name: "a", Raw: []string{"1", "2"}},
			Column{Name: "b", Raw: []string{"1"}})},
		{"empty name", New("x", Column{Name: "", Raw: []string{"1"}})},
	}
	for _, tc := range cases {
		if err := tc.rel.Validate(); err == nil {
			t.Errorf("%s: Validate returned nil, want error", tc.name)
		}
	}
}

func TestValidateTooManyColumns(t *testing.T) {
	cols := make([]Column, 65)
	for i := range cols {
		cols[i] = Column{Name: "c" + strconv.Itoa(i), Raw: []string{"1"}}
	}
	if err := New("wide", cols...).Validate(); err == nil {
		t.Error("expected error for 65 columns")
	}
}

func TestFromRowsRaggedRow(t *testing.T) {
	if _, err := FromRows("x", []string{"a", "b"}, [][]string{{"1"}}); err == nil {
		t.Error("expected error for ragged row")
	}
}

func TestSniffType(t *testing.T) {
	cases := []struct {
		vals []string
		want Type
	}{
		{[]string{"1", "2", "-5"}, TypeInt},
		{[]string{"1.5", "2"}, TypeFloat},
		{[]string{"2012-01-01", "2013-05-06"}, TypeDate},
		{[]string{"abc", "1"}, TypeString},
		{[]string{"", ""}, TypeString},
		{[]string{"", "7"}, TypeInt},
	}
	for _, tc := range cases {
		if got := SniffType(tc.vals); got != tc.want {
			t.Errorf("SniffType(%v) = %v, want %v", tc.vals, got, tc.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeString: "string", TypeInt: "int", TypeFloat: "float", TypeDate: "date", Type(9): "Type(9)",
	} {
		if typ.String() != want {
			t.Errorf("Type.String() = %q, want %q", typ.String(), want)
		}
	}
}

func TestEncodePreservesOrderAndEquality(t *testing.T) {
	r := mustRelation(t, []string{"num", "txt", "date"}, [][]string{
		{"10", "b", "2013-01-01"},
		{"2", "a", "2012-06-01"},
		{"10", "c", "2012-06-01"},
		{"-3", "a", "2014-12-31"},
	})
	enc, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// num: -3 < 2 < 10, so ranks are (2, 1, 2, 0)
	wantNum := []int32{2, 1, 2, 0}
	if !reflect.DeepEqual(enc.Column(0), wantNum) {
		t.Errorf("num ranks = %v, want %v", enc.Column(0), wantNum)
	}
	// txt: a < b < c
	wantTxt := []int32{1, 0, 2, 0}
	if !reflect.DeepEqual(enc.Column(1), wantTxt) {
		t.Errorf("txt ranks = %v, want %v", enc.Column(1), wantTxt)
	}
	// date: 2012-06-01 < 2013-01-01 < 2014-12-31
	wantDate := []int32{1, 0, 0, 2}
	if !reflect.DeepEqual(enc.Column(2), wantDate) {
		t.Errorf("date ranks = %v, want %v", enc.Column(2), wantDate)
	}
	if enc.Cardinality[0] != 3 || enc.Cardinality[1] != 3 || enc.Cardinality[2] != 3 {
		t.Errorf("cardinalities = %v", enc.Cardinality)
	}
}

func TestEncodeIntegerOrderIsNumericNotLexicographic(t *testing.T) {
	r := mustRelation(t, []string{"n"}, [][]string{{"9"}, {"10"}, {"100"}})
	enc, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(enc.Column(0), want) {
		t.Errorf("ranks = %v, want %v (numeric order)", enc.Column(0), want)
	}
}

func TestEncodeNullsFirst(t *testing.T) {
	r := mustRelation(t, []string{"n"}, [][]string{{"5"}, {""}, {"1"}})
	enc, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	want := []int32{2, 0, 1}
	if !reflect.DeepEqual(enc.Column(0), want) {
		t.Errorf("ranks = %v, want %v (empty value first)", enc.Column(0), want)
	}
}

func TestEncodeErrorsOnBadValue(t *testing.T) {
	r := New("bad", Column{Name: "n", Type: TypeInt, Raw: []string{"1", "abc"}})
	if _, err := Encode(r); err == nil {
		t.Error("expected error encoding non-integer value in an int column")
	}
	r2 := New("bad", Column{Name: "d", Type: TypeDate, Raw: []string{"not-a-date"}})
	if _, err := Encode(r2); err == nil {
		t.Error("expected error encoding non-date value in a date column")
	}
	r3 := New("bad", Column{Name: "f", Type: TypeFloat, Raw: []string{"x"}})
	if _, err := Encode(r3); err == nil {
		t.Error("expected error encoding non-float value in a float column")
	}
}

func TestProjectAndHead(t *testing.T) {
	r := mustRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "9"}, {"2", "y", "8"}, {"3", "z", "7"},
	})
	p, err := r.Project([]int{2, 0})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if got := p.ColumnNames(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Errorf("projected names = %v", got)
	}
	if p.Columns[0].Raw[1] != "8" {
		t.Errorf("projected value = %q, want 8", p.Columns[0].Raw[1])
	}
	if _, err := r.Project([]int{5}); err == nil {
		t.Error("expected error projecting out-of-range column")
	}

	h := r.Head(2)
	if h.NumRows() != 2 || h.Columns[1].Raw[1] != "y" {
		t.Errorf("Head(2) wrong: %d rows", h.NumRows())
	}
	if r.Head(10).NumRows() != 3 {
		t.Error("Head beyond row count should clamp")
	}
}

func TestEncodedSelectRows(t *testing.T) {
	r := mustRelation(t, []string{"a", "b"}, [][]string{
		{"3", "x"}, {"1", "y"}, {"2", "x"}, {"1", "z"},
	})
	enc, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	sel, err := enc.SelectRows([]int{3, 1, 1})
	if err != nil {
		t.Fatalf("SelectRows: %v", err)
	}
	if sel.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", sel.NumRows())
	}
	if sel.Column(0)[0] != enc.Column(0)[3] || sel.Column(1)[1] != enc.Column(1)[1] {
		t.Error("selected values do not match source rows")
	}
	if sel.Cardinality[0] != 1 || sel.Cardinality[1] != 2 {
		t.Errorf("cardinalities = %v, want [1 2]", sel.Cardinality)
	}
	if _, err := enc.SelectRows([]int{4}); err == nil {
		t.Error("out-of-range row should error")
	}
	if _, err := enc.SelectRows([]int{-1}); err == nil {
		t.Error("negative row should error")
	}
}

func TestEncodedProjectColumnsAndHeadRows(t *testing.T) {
	r := mustRelation(t, []string{"a", "b"}, [][]string{
		{"3", "x"}, {"1", "y"}, {"2", "x"}, {"1", "z"},
	})
	enc, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	p := enc.ProjectColumns(1)
	if p.NumCols() != 1 || p.ColumnNames[0] != "a" {
		t.Errorf("ProjectColumns(1) = %v", p.ColumnNames)
	}
	if enc.ProjectColumns(99).NumCols() != 2 {
		t.Error("ProjectColumns should clamp to the column count")
	}
	h := enc.HeadRows(2)
	if h.NumRows() != 2 {
		t.Fatalf("HeadRows(2) rows = %d", h.NumRows())
	}
	if h.Cardinality[0] != 2 || h.Cardinality[1] != 2 {
		t.Errorf("HeadRows cardinalities = %v, want [2 2]", h.Cardinality)
	}
	if enc.HeadRows(100).NumRows() != 4 {
		t.Error("HeadRows beyond row count should clamp")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := mustRelation(t, []string{"id", "name"}, [][]string{
		{"1", "ann"}, {"2", "bo,b"}, {"3", `qu"ote`},
	})
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("roundtrip", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(back.Rows(), r.Rows()) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", back.Rows(), r.Rows())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("empty", strings.NewReader("")); err == nil {
		t.Error("expected error for empty csv")
	}
	if _, err := ReadCSV("ragged", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("expected error for ragged csv")
	}
	if _, err := ReadCSVFile("/nonexistent/file.csv"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	r := mustRelation(t, []string{"a"}, [][]string{{"1"}, {"2"}})
	path := t.TempDir() + "/out.csv"
	if err := WriteCSVFile(r, path); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if back.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", back.NumRows())
	}
}

// Property: rank encoding preserves pairwise order and equality of integer
// columns.
func TestEncodeOrderPreservationQuick(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		raw := make([]string, len(vals))
		for i, v := range vals {
			raw[i] = strconv.Itoa(int(v))
		}
		r := New("q", Column{Name: "n", Type: TypeInt, Raw: raw})
		enc, err := Encode(r)
		if err != nil {
			return false
		}
		col := enc.Column(0)
		for i := range vals {
			for j := range vals {
				if (vals[i] < vals[j]) != (col[i] < col[j]) {
					return false
				}
				if (vals[i] == vals[j]) != (col[i] == col[j]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ranks are dense, i.e. exactly the integers 0..cardinality-1 occur.
func TestEncodeDenseRanksQuick(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		raw := make([]string, len(vals))
		for i, v := range vals {
			raw[i] = strconv.Itoa(int(v))
		}
		r := New("q", Column{Name: "n", Type: TypeInt, Raw: raw})
		enc, err := Encode(r)
		if err != nil {
			return false
		}
		seen := map[int32]bool{}
		for _, v := range enc.Column(0) {
			seen[v] = true
		}
		if len(seen) != enc.Cardinality[0] {
			return false
		}
		ranks := make([]int, 0, len(seen))
		for v := range seen {
			ranks = append(ranks, int(v))
		}
		sort.Ints(ranks)
		for i, v := range ranks {
			if v != i {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
