package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"repro/internal/faultinject"
)

// ReadCSV parses a CSV stream with a header row into a relation, sniffing
// column types from the data. name is used only for diagnostics.
func ReadCSV(name string, src io.Reader) (*Relation, error) {
	if err := faultinject.Fire(faultinject.CSVDecode); err != nil {
		return nil, fmt.Errorf("relation: reading csv %s: %w", name, err)
	}
	reader := csv.NewReader(src)
	reader.FieldsPerRecord = -1 // validated by FromRows with a clearer error
	records, err := reader.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv %s is empty", name)
	}
	return FromRows(name, records[0], records[1:])
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: %w", err)
	}
	defer f.Close()
	return ReadCSV(path, f)
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(r *Relation, dst io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	w := csv.NewWriter(dst)
	if err := w.Write(r.ColumnNames()); err != nil {
		return fmt.Errorf("relation: writing csv header: %w", err)
	}
	for _, row := range r.Rows() {
		if err := w.Write(row); err != nil {
			return fmt.Errorf("relation: writing csv row: %w", err)
		}
	}
	w.Flush()
	return w.Error()
}

// WriteCSVFile writes the relation to the given path, creating or truncating
// the file.
func WriteCSVFile(r *Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("relation: %w", err)
	}
	defer f.Close()
	return WriteCSV(r, f)
}
