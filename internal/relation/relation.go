// Package relation provides the tabular substrate for order-dependency
// discovery: a typed relation instance, CSV input/output, and the
// order-preserving integer (rank) encoding of column values described in
// Section 4.6 of the paper ("The values of the columns are replaced with
// integers ... in a way that the equivalence classes do not change and the
// ordering is preserved").
//
// Ordering semantics are first-class: an OrderSpec chooses, per column, the
// sort direction (Asc/Desc), the NULL placement (NullsFirst/NullsLast) and
// the collation (type-driven default, lexicographic, numeric, date,
// case-insensitive, or a user-defined rank list), and EncodeSpec compiles
// the whole spec into plain dense ranks. Downstream algorithms never see
// the spec — integer order IS the requested order.
package relation

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type identifies how raw values of a column are interpreted for ordering.
type Type int

// Column types. Numbers are ordered numerically, strings lexicographically
// and dates chronologically (all ascending), per Section 2.1 of the paper.
const (
	TypeString Type = iota
	TypeInt
	TypeFloat
	TypeDate
)

// String returns a human-readable name for the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeDate:
		return "date"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// dateLayouts are the date formats the type sniffer and parser accept.
var dateLayouts = []string{"2006-01-02", "2006/01/02", "01/02/2006", time.RFC3339}

// Column is a single named, typed column of raw values. Raw values are kept
// as strings; Encode produces the rank representation used by the discovery
// algorithms.
type Column struct {
	Name string
	Type Type
	// Raw holds the original textual values, one per row.
	Raw []string
}

// Relation is a relation instance: an ordered list of columns of equal
// length. It is the input to all discovery algorithms in this module.
type Relation struct {
	Name    string
	Columns []Column
}

// New creates an empty relation with the given name and column definitions.
func New(name string, cols ...Column) *Relation {
	return &Relation{Name: name, Columns: cols}
}

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int {
	if len(r.Columns) == 0 {
		return 0
	}
	return len(r.Columns[0].Raw)
}

// NumCols returns the number of attributes.
func (r *Relation) NumCols() int { return len(r.Columns) }

// ColumnNames returns the attribute names in schema order.
func (r *Relation) ColumnNames() []string {
	names := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		names[i] = c.Name
	}
	return names
}

// ColumnIndex returns the index of the named column, or -1 if absent.
func (r *Relation) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural consistency: at least one column, unique column
// names, and equal column lengths.
func (r *Relation) Validate() error {
	if len(r.Columns) == 0 {
		return errors.New("relation: no columns")
	}
	if len(r.Columns) > 64 {
		return fmt.Errorf("relation: %d columns exceeds the 64-attribute limit", len(r.Columns))
	}
	seen := make(map[string]bool, len(r.Columns))
	n := len(r.Columns[0].Raw)
	for i, c := range r.Columns {
		if c.Name == "" {
			return fmt.Errorf("relation: column %d has an empty name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("relation: duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
		if len(c.Raw) != n {
			return fmt.Errorf("relation: column %q has %d rows, expected %d", c.Name, len(c.Raw), n)
		}
	}
	return nil
}

// Project returns a new relation containing only the columns at the given
// indexes, in the given order. Row order is preserved.
func (r *Relation) Project(cols []int) (*Relation, error) {
	out := &Relation{Name: r.Name, Columns: make([]Column, 0, len(cols))}
	for _, ci := range cols {
		if ci < 0 || ci >= len(r.Columns) {
			return nil, fmt.Errorf("relation: project column index %d out of range", ci)
		}
		src := r.Columns[ci]
		raw := make([]string, len(src.Raw))
		copy(raw, src.Raw)
		out.Columns = append(out.Columns, Column{Name: src.Name, Type: src.Type, Raw: raw})
	}
	return out, nil
}

// Head returns a new relation containing only the first n rows (or all rows
// if n exceeds the row count). Column order and types are preserved.
func (r *Relation) Head(n int) *Relation {
	if n > r.NumRows() {
		n = r.NumRows()
	}
	out := &Relation{Name: r.Name, Columns: make([]Column, len(r.Columns))}
	for i, c := range r.Columns {
		raw := make([]string, n)
		copy(raw, c.Raw[:n])
		out.Columns[i] = Column{Name: c.Name, Type: c.Type, Raw: raw}
	}
	return out
}

// Encoded is the rank-encoded form of a relation: every column value is
// replaced by a dense integer rank such that equal raw values get equal
// ranks and the ordering of ranks matches the ordering of raw values for the
// column's type. All discovery algorithms operate on this representation.
type Encoded struct {
	Name string
	// ColumnNames holds the attribute names in schema order.
	ColumnNames []string
	// Values[col][row] is the rank of the value of attribute col in tuple row.
	Values [][]int32
	// Cardinality[col] is the number of distinct values in attribute col.
	Cardinality []int
	rows        int
}

// NumRows returns the number of tuples in the encoded relation.
func (e *Encoded) NumRows() int { return e.rows }

// NumCols returns the number of attributes in the encoded relation.
func (e *Encoded) NumCols() int { return len(e.ColumnNames) }

// Column returns the rank column for attribute index a.
func (e *Encoded) Column(a int) []int32 { return e.Values[a] }

// ColumnIndex returns the index of the named column, or -1 if absent.
func (e *Encoded) ColumnIndex(name string) int {
	for i, n := range e.ColumnNames {
		if n == name {
			return i
		}
	}
	return -1
}

// ProjectColumns returns an encoded relation restricted to the first k
// attributes. It shares the underlying rank slices (no copy); callers must
// treat the result as read-only, which every algorithm in this module does.
func (e *Encoded) ProjectColumns(k int) *Encoded {
	if k > e.NumCols() {
		k = e.NumCols()
	}
	return &Encoded{
		Name:        e.Name,
		ColumnNames: e.ColumnNames[:k],
		Values:      e.Values[:k],
		Cardinality: e.Cardinality[:k],
		rows:        e.rows,
	}
}

// SelectRows returns an encoded relation containing only the given tuples, in
// the given order. Ranks are not re-densified: equality and relative order
// are preserved, which is all the algorithms require. Row indexes must be in
// range; duplicates are allowed (the result simply repeats the tuple).
func (e *Encoded) SelectRows(rows []int) (*Encoded, error) {
	vals := make([][]int32, len(e.Values))
	card := make([]int, len(e.Values))
	for ci, col := range e.Values {
		out := make([]int32, len(rows))
		distinct := make(map[int32]struct{})
		for i, r := range rows {
			if r < 0 || r >= e.rows {
				return nil, fmt.Errorf("relation: selected row %d out of range [0,%d)", r, e.rows)
			}
			out[i] = col[r]
			distinct[col[r]] = struct{}{}
		}
		vals[ci] = out
		card[ci] = len(distinct)
	}
	return &Encoded{
		Name:        e.Name,
		ColumnNames: e.ColumnNames,
		Values:      vals,
		Cardinality: card,
		rows:        len(rows),
	}, nil
}

// HeadRows returns an encoded relation restricted to the first n tuples.
// Ranks are not re-densified: equality and relative order are preserved,
// which is all the algorithms require.
func (e *Encoded) HeadRows(n int) *Encoded {
	if n > e.rows {
		n = e.rows
	}
	vals := make([][]int32, len(e.Values))
	card := make([]int, len(e.Values))
	for i, col := range e.Values {
		vals[i] = col[:n]
		distinct := make(map[int32]struct{})
		for _, v := range col[:n] {
			distinct[v] = struct{}{}
		}
		card[i] = len(distinct)
	}
	return &Encoded{
		Name:        e.Name,
		ColumnNames: e.ColumnNames,
		Values:      vals,
		Cardinality: card,
		rows:        n,
	}
}

// Encode converts a raw relation into its rank-encoded form under the
// default ordering: each column is encoded independently, its distinct
// values sorted according to the column type (ascending, missing values —
// empty strings — first, mirroring SQL NULLS FIRST) and replaced by their
// dense rank (0-based). Encode(r) is exactly EncodeSpec(r, nil); pass an
// OrderSpec to EncodeSpec to choose per-column direction, NULL placement
// and collation instead. Either way the encoding honors the spec-to-rank
// contract: equal ranks ⇔ equal values under the collation, and rank order
// ⇔ value order under the column order.
func Encode(r *Relation) (*Encoded, error) {
	return EncodeSpec(r, nil)
}

// SniffType inspects sample values and returns the most specific type that
// parses every non-empty value: int, then float, then date, then string.
// Dates only sniff when ONE accepted layout parses every non-empty value;
// columns mixing layouts (e.g. "2006-01-02" and "01/02/2006") fall back to
// string, because no single chronological interpretation covers them. The
// sniffed type is only a default — an OrderSpec collation overrides it at
// encode time.
func SniffType(values []string) Type {
	isInt, isFloat := true, true
	layoutOK := make([]bool, len(dateLayouts))
	for i := range layoutOK {
		layoutOK[i] = true
	}
	isDate := true
	nonEmpty := 0
	for _, v := range values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		nonEmpty++
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			isFloat = false
		}
		if isDate {
			any := false
			for li, layout := range dateLayouts {
				if !layoutOK[li] {
					continue
				}
				if _, err := time.Parse(layout, v); err != nil {
					layoutOK[li] = false
				} else {
					any = true
				}
			}
			isDate = any
		}
		if !isInt && !isFloat && !isDate {
			return TypeString
		}
	}
	if nonEmpty == 0 {
		return TypeString
	}
	switch {
	case isInt:
		return TypeInt
	case isFloat:
		return TypeFloat
	case isDate:
		return TypeDate
	default:
		return TypeString
	}
}

// FromRows builds a relation from a header and row-major string data,
// sniffing each column's type. It is the common path for test fixtures and
// synthetic generators.
func FromRows(name string, header []string, rows [][]string) (*Relation, error) {
	if len(header) == 0 {
		return nil, errors.New("relation: empty header")
	}
	cols := make([]Column, len(header))
	for ci, h := range header {
		raw := make([]string, len(rows))
		for ri, row := range rows {
			if len(row) != len(header) {
				return nil, fmt.Errorf("relation: row %d has %d fields, expected %d", ri, len(row), len(header))
			}
			raw[ri] = row[ci]
		}
		cols[ci] = Column{Name: h, Type: SniffType(raw), Raw: raw}
	}
	r := New(name, cols...)
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Rows returns the relation contents in row-major raw form (useful for
// round-tripping through CSV and for tests).
func (r *Relation) Rows() [][]string {
	n := r.NumRows()
	out := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(r.Columns))
		for j, c := range r.Columns {
			row[j] = c.Raw[i]
		}
		out[i] = row
	}
	return out
}
