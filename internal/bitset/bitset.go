// Package bitset provides compact attribute-set representations used by the
// level-wise lattice algorithms (FASTOD, TANE). A relation schema is limited
// to 64 attributes, which matches the widest dataset in the paper's
// evaluation (flight, 40 attributes) with room to spare.
package bitset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxAttrs is the maximum number of attributes an AttrSet can hold.
const MaxAttrs = 64

// AttrSet is a set of attribute indexes in [0, MaxAttrs), stored as a bitmask.
// The zero value is the empty set. AttrSet is a value type: all operations
// return new sets and never mutate the receiver.
type AttrSet uint64

// NewAttrSet builds a set containing the given attribute indexes.
// It panics if an index is out of range, since that is a programming error.
func NewAttrSet(attrs ...int) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s = s.Add(a)
	}
	return s
}

// Add returns the set with attribute a added.
func (s AttrSet) Add(a int) AttrSet {
	checkIndex(a)
	return s | (1 << uint(a))
}

// Remove returns the set with attribute a removed.
func (s AttrSet) Remove(a int) AttrSet {
	checkIndex(a)
	return s &^ (1 << uint(a))
}

// Contains reports whether attribute a is in the set.
func (s AttrSet) Contains(a int) bool {
	checkIndex(a)
	return s&(1<<uint(a)) != 0
}

// Union returns the union of s and t.
func (s AttrSet) Union(t AttrSet) AttrSet { return s | t }

// Intersect returns the intersection of s and t.
func (s AttrSet) Intersect(t AttrSet) AttrSet { return s & t }

// Diff returns s with all attributes of t removed.
func (s AttrSet) Diff(t AttrSet) AttrSet { return s &^ t }

// IsEmpty reports whether the set has no attributes.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// Len returns the number of attributes in the set.
func (s AttrSet) Len() int { return bits.OnesCount64(uint64(s)) }

// IsSubsetOf reports whether every attribute of s is also in t.
func (s AttrSet) IsSubsetOf(t AttrSet) bool { return s&^t == 0 }

// Equal reports whether the two sets contain exactly the same attributes.
func (s AttrSet) Equal(t AttrSet) bool { return s == t }

// Attrs returns the attribute indexes in ascending order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; {
		a := bits.TrailingZeros64(v)
		out = append(out, a)
		v &^= 1 << uint(a)
	}
	return out
}

// ForEach calls fn for every attribute in ascending order.
func (s AttrSet) ForEach(fn func(a int)) {
	for v := uint64(s); v != 0; {
		a := bits.TrailingZeros64(v)
		fn(a)
		v &^= 1 << uint(a)
	}
}

// Rank returns the number of attributes in s smaller than a — the position of
// a in the ascending enumeration of s when a is a member. The lattice
// algorithms use it to index per-node dependency slices that are ordered by
// ascending removed attribute.
func (s AttrSet) Rank(a int) int {
	checkIndex(a)
	return bits.OnesCount64(uint64(s) & (1<<uint(a) - 1))
}

// Subsets returns every proper subset of s obtained by removing exactly one
// attribute, in ascending order of the removed attribute.
func (s AttrSet) Subsets() []AttrSet {
	out := make([]AttrSet, 0, s.Len())
	s.ForEach(func(a int) { out = append(out, s.Remove(a)) })
	return out
}

// String renders the set like {0,2,5} using attribute indexes.
func (s AttrSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(a int) {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
		first = false
	})
	b.WriteByte('}')
	return b.String()
}

// Names renders the set like {A,C} using the provided attribute names,
// sorted by attribute index.
func (s AttrSet) Names(names []string) string {
	parts := make([]string, 0, s.Len())
	s.ForEach(func(a int) {
		if a < len(names) {
			parts = append(parts, names[a])
		} else {
			parts = append(parts, fmt.Sprintf("#%d", a))
		}
	})
	return "{" + strings.Join(parts, ",") + "}"
}

// checkIndex guards the package's one invariant. The panic deliberately does
// not try to name a lattice node — this package sits below the lattice and
// cannot know one; the engine's recovery frames add that context
// (lattice.PanicContext) when the panic crosses a worker boundary.
func checkIndex(a int) {
	if a < 0 || a >= MaxAttrs {
		panic(fmt.Sprintf("bitset: attribute index %d out of range [0,%d)", a, MaxAttrs))
	}
}

// Pair is an unordered pair of distinct attributes {A,B}. It is normalized so
// that A < B, which makes it usable as a map key and comparable.
type Pair struct {
	A, B int
}

// NewPair returns the normalized pair for attributes a and b.
// It panics if a == b because canonical order-compatibility ODs are defined
// only over distinct attributes.
func NewPair(a, b int) Pair {
	checkIndex(a)
	checkIndex(b)
	if a == b {
		panic(fmt.Sprintf("bitset: pair requires distinct attributes, got %d twice", a))
	}
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// AsSet returns the pair as a two-attribute set.
func (p Pair) AsSet() AttrSet { return NewAttrSet(p.A, p.B) }

// String renders the pair like (1,3).
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.A, p.B) }

// PairSet is a set of unordered attribute pairs. It backs the C+s(X)
// candidate sets in FASTOD. The zero value is an empty set ready for use
// after a call to NewPairSet; use NewPairSet to construct.
type PairSet struct {
	pairs map[Pair]struct{}
}

// NewPairSet returns an empty pair set.
func NewPairSet() *PairSet {
	return &PairSet{pairs: make(map[Pair]struct{})}
}

// Add inserts the pair into the set.
func (ps *PairSet) Add(p Pair) { ps.pairs[p] = struct{}{} }

// Remove deletes the pair from the set. Removing an absent pair is a no-op.
func (ps *PairSet) Remove(p Pair) { delete(ps.pairs, p) }

// Contains reports whether the pair is in the set.
func (ps *PairSet) Contains(p Pair) bool {
	_, ok := ps.pairs[p]
	return ok
}

// Len returns the number of pairs in the set.
func (ps *PairSet) Len() int { return len(ps.pairs) }

// IsEmpty reports whether the set has no pairs.
func (ps *PairSet) IsEmpty() bool { return len(ps.pairs) == 0 }

// Pairs returns the pairs sorted by (A,B) for deterministic iteration.
func (ps *PairSet) Pairs() []Pair {
	out := make([]Pair, 0, len(ps.pairs))
	for p := range ps.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Clone returns an independent copy of the set.
func (ps *PairSet) Clone() *PairSet {
	out := NewPairSet()
	for p := range ps.pairs {
		out.pairs[p] = struct{}{}
	}
	return out
}

// Intersect returns a new set containing pairs present in both sets.
func (ps *PairSet) Intersect(other *PairSet) *PairSet {
	out := NewPairSet()
	for p := range ps.pairs {
		if other.Contains(p) {
			out.pairs[p] = struct{}{}
		}
	}
	return out
}

// Union returns a new set containing pairs present in either set.
func (ps *PairSet) Union(other *PairSet) *PairSet {
	out := ps.Clone()
	for p := range other.pairs {
		out.pairs[p] = struct{}{}
	}
	return out
}
