package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(1, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, a := range []int{1, 3, 5} {
		if !s.Contains(a) {
			t.Errorf("Contains(%d) = false, want true", a)
		}
	}
	for _, a := range []int{0, 2, 4, 63} {
		if s.Contains(a) {
			t.Errorf("Contains(%d) = true, want false", a)
		}
	}
	if got := s.String(); got != "{1,3,5}" {
		t.Errorf("String = %q, want {1,3,5}", got)
	}
}

func TestAttrSetAddRemoveIdempotent(t *testing.T) {
	s := NewAttrSet(2)
	if s.Add(2) != s {
		t.Error("adding an existing attribute changed the set")
	}
	if s.Remove(7) != s {
		t.Error("removing an absent attribute changed the set")
	}
	if !s.Remove(2).IsEmpty() {
		t.Error("removing the only attribute did not produce the empty set")
	}
}

func TestAttrSetOps(t *testing.T) {
	a := NewAttrSet(0, 1, 2)
	b := NewAttrSet(2, 3)
	if got := a.Union(b); !got.Equal(NewAttrSet(0, 1, 2, 3)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewAttrSet(2)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(NewAttrSet(0, 1)) {
		t.Errorf("Diff = %v", got)
	}
	if !NewAttrSet(1).IsSubsetOf(a) || b.IsSubsetOf(a) {
		t.Error("IsSubsetOf incorrect")
	}
	if !AttrSet(0).IsSubsetOf(a) {
		t.Error("empty set must be a subset of everything")
	}
}

func TestAttrSetAttrsSorted(t *testing.T) {
	s := NewAttrSet(9, 4, 63, 0)
	got := s.Attrs()
	want := []int{0, 4, 9, 63}
	if len(got) != len(want) {
		t.Fatalf("Attrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attrs = %v, want %v", got, want)
		}
	}
}

func TestAttrSetSubsets(t *testing.T) {
	s := NewAttrSet(1, 4, 6)
	subs := s.Subsets()
	if len(subs) != 3 {
		t.Fatalf("len(Subsets) = %d, want 3", len(subs))
	}
	want := []AttrSet{NewAttrSet(4, 6), NewAttrSet(1, 6), NewAttrSet(1, 4)}
	for i, sub := range subs {
		if !sub.Equal(want[i]) {
			t.Errorf("Subsets[%d] = %v, want %v", i, sub, want[i])
		}
		if !sub.IsSubsetOf(s) || sub.Len() != s.Len()-1 {
			t.Errorf("Subsets[%d] = %v is not an immediate subset", i, sub)
		}
	}
}

func TestAttrSetNames(t *testing.T) {
	names := []string{"A", "B", "C"}
	if got := NewAttrSet(0, 2).Names(names); got != "{A,C}" {
		t.Errorf("Names = %q, want {A,C}", got)
	}
	if got := NewAttrSet(5).Names(names); got != "{#5}" {
		t.Errorf("Names with missing name = %q, want {#5}", got)
	}
}

func TestAttrSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	NewAttrSet(64)
}

func TestPairNormalization(t *testing.T) {
	p := NewPair(5, 2)
	if p.A != 2 || p.B != 5 {
		t.Errorf("NewPair(5,2) = %v, want (2,5)", p)
	}
	if p != NewPair(2, 5) {
		t.Error("pairs with swapped arguments must be equal")
	}
	if !p.AsSet().Equal(NewAttrSet(2, 5)) {
		t.Errorf("AsSet = %v", p.AsSet())
	}
}

func TestPairPanicsOnEqualAttrs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for identical attributes")
		}
	}()
	NewPair(3, 3)
}

func TestPairSetBasics(t *testing.T) {
	ps := NewPairSet()
	if !ps.IsEmpty() {
		t.Fatal("new pair set should be empty")
	}
	ps.Add(NewPair(0, 1))
	ps.Add(NewPair(1, 0)) // same pair, normalized
	ps.Add(NewPair(2, 3))
	if ps.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ps.Len())
	}
	if !ps.Contains(NewPair(1, 0)) {
		t.Error("Contains failed for normalized pair")
	}
	ps.Remove(NewPair(0, 1))
	if ps.Contains(NewPair(0, 1)) || ps.Len() != 1 {
		t.Error("Remove failed")
	}
}

func TestPairSetSetOps(t *testing.T) {
	a := NewPairSet()
	a.Add(NewPair(0, 1))
	a.Add(NewPair(0, 2))
	b := NewPairSet()
	b.Add(NewPair(0, 2))
	b.Add(NewPair(1, 2))

	inter := a.Intersect(b)
	if inter.Len() != 1 || !inter.Contains(NewPair(0, 2)) {
		t.Errorf("Intersect = %v", inter.Pairs())
	}
	uni := a.Union(b)
	if uni.Len() != 3 {
		t.Errorf("Union len = %d, want 3", uni.Len())
	}
	clone := a.Clone()
	clone.Remove(NewPair(0, 1))
	if !a.Contains(NewPair(0, 1)) {
		t.Error("Clone is not independent of the original")
	}
}

func TestPairSetPairsSorted(t *testing.T) {
	ps := NewPairSet()
	ps.Add(NewPair(3, 1))
	ps.Add(NewPair(0, 2))
	ps.Add(NewPair(0, 1))
	got := ps.Pairs()
	want := []Pair{{0, 1}, {0, 2}, {1, 3}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pairs = %v, want %v", got, want)
		}
	}
}

// Property: union and intersection behave like their mathematical definitions
// on membership, for arbitrary bitmasks.
func TestAttrSetAlgebraQuick(t *testing.T) {
	f := func(x, y uint64, attr uint8) bool {
		a, b := AttrSet(x), AttrSet(y)
		i := int(attr % MaxAttrs)
		inUnion := a.Union(b).Contains(i) == (a.Contains(i) || b.Contains(i))
		inInter := a.Intersect(b).Contains(i) == (a.Contains(i) && b.Contains(i))
		inDiff := a.Diff(b).Contains(i) == (a.Contains(i) && !b.Contains(i))
		return inUnion && inInter && inDiff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Attrs round-trips through NewAttrSet.
func TestAttrSetRoundTripQuick(t *testing.T) {
	f := func(x uint64) bool {
		s := AttrSet(x)
		return NewAttrSet(s.Attrs()...).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the immediate subsets of a set each have exactly one fewer
// attribute and their union (for |s| >= 2) is the original set.
func TestAttrSetSubsetsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := AttrSet(rng.Uint64())
		if s.Len() < 2 {
			continue
		}
		var union AttrSet
		for _, sub := range s.Subsets() {
			if sub.Len() != s.Len()-1 || !sub.IsSubsetOf(s) {
				t.Fatalf("bad subset %v of %v", sub, s)
			}
			union = union.Union(sub)
		}
		if !union.Equal(s) {
			t.Fatalf("union of subsets %v != %v", union, s)
		}
	}
}
