package leakcheck

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSettleCatchesLeak proves the detector actually detects: a goroutine
// deliberately parked on a channel past the settle deadline must be reported,
// with the parked stack in the message so the leak is attributable.
func TestSettleCatchesLeak(t *testing.T) {
	snap := Snap()

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		<-release // parked until the test releases it
	}()
	<-started

	msg, ok := snap.Settle(100 * time.Millisecond)
	if ok {
		t.Fatal("Settle reported ok with a goroutine deliberately parked past the deadline")
	}
	if !strings.Contains(msg, "goroutine leak") {
		t.Errorf("leak message %q does not identify itself as a leak", msg)
	}
	if !strings.Contains(msg, "TestSettleCatchesLeak") {
		t.Errorf("leak message does not include the parked goroutine's stack:\n%s", msg)
	}

	// Release the goroutine and confirm the same snapshot settles clean, so
	// this test cannot itself leak into the next one.
	close(release)
	wg.Wait()
	if msg, ok := snap.Settle(2 * time.Second); !ok {
		t.Errorf("count did not settle after the leak was released: %s", msg)
	}
}

// TestSettleWaitsForAsyncExit mirrors the engine contract the checker was
// built for: workers that are still draining when the test body returns must
// not be reported, because "will exit" is the contract, not "have exited".
func TestSettleWaitsForAsyncExit(t *testing.T) {
	snap := Snap()

	for i := 0; i < 8; i++ {
		go func() {
			time.Sleep(50 * time.Millisecond) // exits during the settle window
		}()
	}

	if msg, ok := snap.Settle(2 * time.Second); !ok {
		t.Errorf("Settle flagged workers that exit within the deadline: %s", msg)
	}
}

// TestSettleToleratesCountDropping covers the system-goroutine case: helpers
// that predate the snapshot (runtime timers, another suite's stragglers) may
// exit during the wait, leaving the count below the snapshot. That is not a
// failure.
func TestSettleToleratesCountDropping(t *testing.T) {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	snap := Snap() // counts the goroutine above
	close(done)    // ...which exits during the settle window

	if msg, ok := snap.Settle(2 * time.Second); !ok {
		t.Errorf("Settle failed when the count dropped below the snapshot: %s", msg)
	}
}

// TestCheckPassesOnCleanTest exercises the real entry point end to end on a
// test that cleans up after itself.
func TestCheckPassesOnCleanTest(t *testing.T) {
	Check(t)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(10 * time.Millisecond)
		}()
	}
	wg.Wait()
	// Check's cleanup runs after the test body and must observe a settled
	// count; if it does not, this test fails via t.Error.
}
