// Package leakcheck asserts that a test does not leak goroutines.
//
// The engine's containment contract is not just "Run returns an error instead
// of crashing" but "and every worker it started has exited" — a contained
// panic that leaves a worker parked on a condition variable passes the first
// half and fails the second invisibly, until enough leaked workers pile up to
// matter. Check makes the second half observable: it snapshots the goroutine
// count when called and, at cleanup time, polls until the count returns to
// the snapshot or a deadline passes.
//
// The check is count-based rather than stack-based on purpose: it needs no
// allow-list maintenance, and the suites that use it (scheduler, server,
// chaos) create goroutines in the hundreds per test, so an off-by-a-few
// steady-state drift would still be caught. Runtime-internal helpers that
// appear once per process (e.g. the first timer goroutine) are absorbed by
// calling Check after the suite has warmed up, and by the retry loop.
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// settleTimeout is how long the cleanup waits for workers to drain before
// declaring a leak. Workers exit asynchronously after the coordinator returns
// (the engine's contract is "will exit", not "have exited"), so the wait has
// to be generous enough for a loaded CI runner.
const settleTimeout = 2 * time.Second

// Check snapshots the current goroutine count and registers a cleanup that
// fails t if the count has not returned to the snapshot within ~2s. Call it
// at the top of a test (not a parallel one — the count is process-global).
func Check(t *testing.T) {
	t.Helper()
	snap := Snap()
	t.Cleanup(func() {
		if msg, ok := snap.Settle(settleTimeout); !ok {
			t.Error(msg)
		}
	})
}

// A Snapshot is a point-in-time goroutine count to settle back to. It exists
// so the settle logic is testable without a failing *testing.T: Check is
// Snap + Settle wired into t.Cleanup.
type Snapshot struct {
	before int
}

// Snap records the current goroutine count.
func Snap() Snapshot {
	return Snapshot{before: runtime.NumGoroutine()}
}

// Settle polls until the goroutine count returns to (or below) the snapshot,
// or timeout passes. It reports ok=true when the count settled; otherwise the
// returned message describes the leak, including all goroutine stacks.
// A count below the snapshot is fine: goroutines that predate the snapshot
// (runtime helpers, another test's stragglers) may exit during the wait.
func (s Snapshot) Settle(timeout time.Duration) (msg string, ok bool) {
	deadline := time.Now().Add(timeout)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= s.before || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if now > s.before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		return fmt.Sprintf("goroutine leak: %d before, %d after\n%s", s.before, now, buf[:n]), false
	}
	return "", true
}
