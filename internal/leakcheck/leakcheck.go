// Package leakcheck asserts that a test does not leak goroutines.
//
// The engine's containment contract is not just "Run returns an error instead
// of crashing" but "and every worker it started has exited" — a contained
// panic that leaves a worker parked on a condition variable passes the first
// half and fails the second invisibly, until enough leaked workers pile up to
// matter. Check makes the second half observable: it snapshots the goroutine
// count when called and, at cleanup time, polls until the count returns to
// the snapshot or a deadline passes.
//
// The check is count-based rather than stack-based on purpose: it needs no
// allow-list maintenance, and the suites that use it (scheduler, server,
// chaos) create goroutines in the hundreds per test, so an off-by-a-few
// steady-state drift would still be caught. Runtime-internal helpers that
// appear once per process (e.g. the first timer goroutine) are absorbed by
// calling Check after the suite has warmed up, and by the retry loop.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and registers a cleanup that
// fails t if the count has not returned to the snapshot within ~2s. Call it
// at the top of a test (not a parallel one — the count is process-global).
func Check(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Workers exit asynchronously after the coordinator returns (the
		// engine's contract is "will exit", not "have exited"), so poll.
		deadline := time.Now().Add(2 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if now > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
	})
}
