// Package bidir implements bidirectional order dependencies, the second
// extension the paper's conclusion calls for (and the subject of its
// reference [25]): order specifications in which each attribute may be
// ordered ascending or descending, as in SQL "ORDER BY A ASC, B DESC".
//
// The canonical set-based machinery carries over almost unchanged: constancy
// ODs are direction-free, and order compatibility within a context splits
// into two polarities — A and B move together (ascending/ascending, which
// equals descending/descending) or in opposition (ascending/descending).
// Discovery therefore only needs to check both polarities per attribute pair.
package bidir

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/lattice"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Direction is the sort direction of one attribute in a specification.
type Direction int

// Sort directions.
const (
	Asc Direction = iota
	Desc
)

// String returns "asc" or "desc".
func (d Direction) String() string {
	if d == Desc {
		return "desc"
	}
	return "asc"
}

// DirectedAttr is one attribute of a bidirectional order specification.
type DirectedAttr struct {
	Attr int
	Dir  Direction
}

// Spec is a bidirectional order specification: a list of attributes each with
// its own direction, defining a lexicographic order.
type Spec []DirectedAttr

// String renders the spec like [0 asc,2 desc].
func (s Spec) String() string {
	parts := make([]string, len(s))
	for i, da := range s {
		parts[i] = fmt.Sprintf("%d %s", da.Attr, da.Dir)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Names renders the spec like [year asc,salary desc].
func (s Spec) Names(names []string) string {
	parts := make([]string, len(s))
	for i, da := range s {
		name := fmt.Sprintf("#%d", da.Attr)
		if da.Attr >= 0 && da.Attr < len(names) {
			name = names[da.Attr]
		}
		parts[i] = name + " " + da.Dir.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Compare compares tuples s and t under the bidirectional lexicographic order
// of the spec: negative if s precedes t strictly, zero if the projections are
// equivalent, positive otherwise.
func Compare(enc *relation.Encoded, spec Spec, s, t int) int {
	for _, da := range spec {
		col := enc.Column(da.Attr)
		vs, vt := col[s], col[t]
		if vs == vt {
			continue
		}
		less := vs < vt
		if da.Dir == Desc {
			less = !less
		}
		if less {
			return -1
		}
		return 1
	}
	return 0
}

// Holds reports whether the bidirectional OD X ↦ Y holds: for every pair of
// tuples, s ⪯X t implies s ⪯Y t. It sorts once by (X, Y) and scans, like the
// unidirectional check.
func Holds(enc *relation.Encoded, x, y Spec) bool {
	n := enc.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		c := Compare(enc, x, order[i], order[j])
		if c != 0 {
			return c < 0
		}
		return order[i] < order[j]
	})
	prevGroupStart := -1
	start := 0
	for i := 1; i <= n; i++ {
		if i < n && Compare(enc, x, order[i], order[start]) == 0 {
			continue
		}
		// Group [start, i): all tuples equal on X must be equal on Y.
		for j := start + 1; j < i; j++ {
			if Compare(enc, y, order[start], order[j]) != 0 {
				return false
			}
		}
		// Successive groups must be non-decreasing on Y.
		if prevGroupStart >= 0 && Compare(enc, y, order[start], order[prevGroupStart]) < 0 {
			return false
		}
		prevGroupStart = start
		start = i
	}
	return true
}

// OrderCompatible reports X ~ Y for bidirectional specifications: XY ↔ YX.
func OrderCompatible(enc *relation.Encoded, x, y Spec) bool {
	xy := append(append(Spec{}, x...), y...)
	yx := append(append(Spec{}, y...), x...)
	return Holds(enc, xy, yx) && Holds(enc, yx, xy)
}

// Polarity describes how two attributes relate within a context.
type Polarity int

// Polarities of an order-compatibility relationship.
const (
	// SameDirection means ascending/ascending (equivalently
	// descending/descending) compatibility: the attributes move together.
	SameDirection Polarity = iota
	// OppositeDirection means ascending/descending compatibility: one
	// attribute rises while the other falls.
	OppositeDirection
)

// String returns "same" or "opposite".
func (p Polarity) String() string {
	if p == OppositeDirection {
		return "opposite"
	}
	return "same"
}

// OD is a bidirectional canonical OD. Constancy ODs are identical to the
// unidirectional ones (direction is irrelevant when a value is constant);
// order-compatibility ODs additionally carry a polarity.
type OD struct {
	Context bitset.AttrSet
	Kind    canonical.Kind
	A, B    int
	// Polarity is meaningful only for order-compatibility ODs.
	Polarity Polarity
}

// NewConstancy builds ctx: [] ↦ a.
func NewConstancy(ctx bitset.AttrSet, a int) OD {
	return OD{Context: ctx, Kind: canonical.Constancy, A: a}
}

// NewOrderCompatible builds ctx: a ~ b with the given polarity, normalizing
// the pair so that A < B (polarity is symmetric under swapping the pair).
func NewOrderCompatible(ctx bitset.AttrSet, a, b int, p Polarity) OD {
	pair := bitset.NewPair(a, b)
	return OD{Context: ctx, Kind: canonical.OrderCompatible, A: pair.A, B: pair.B, Polarity: p}
}

// IsTrivial mirrors the unidirectional notion of triviality.
func (od OD) IsTrivial() bool {
	switch od.Kind {
	case canonical.Constancy:
		return od.Context.Contains(od.A)
	case canonical.OrderCompatible:
		return od.A == od.B || od.Context.Contains(od.A) || od.Context.Contains(od.B)
	default:
		return false
	}
}

// String renders the OD with attribute indexes.
func (od OD) String() string {
	if od.Kind == canonical.Constancy {
		return fmt.Sprintf("%s: [] -> %d", od.Context, od.A)
	}
	return fmt.Sprintf("%s: %d ~ %d (%s)", od.Context, od.A, od.B, od.Polarity)
}

// NamesString renders the OD with attribute names.
func (od OD) NamesString(names []string) string {
	name := func(a int) string {
		if a >= 0 && a < len(names) {
			return names[a]
		}
		return fmt.Sprintf("#%d", a)
	}
	if od.Kind == canonical.Constancy {
		return fmt.Sprintf("%s: [] -> %s", od.Context.Names(names), name(od.A))
	}
	return fmt.Sprintf("%s: %s ~ %s (%s)", od.Context.Names(names), name(od.A), name(od.B), od.Polarity)
}

// Holds checks a bidirectional canonical OD directly against the instance.
func (od OD) Holds(enc *relation.Encoded) (bool, error) {
	if err := checkAttrs(enc, od); err != nil {
		return false, err
	}
	if od.IsTrivial() {
		return true, nil
	}
	ctx := contextPartition(enc, od.Context)
	switch od.Kind {
	case canonical.Constancy:
		return ctx.ConstantInClasses(enc.Column(od.A)), nil
	case canonical.OrderCompatible:
		colB := enc.Column(od.B)
		if od.Polarity == OppositeDirection {
			colB = reverseRanks(colB, enc.Cardinality[od.B])
		}
		return !ctx.HasSwap(enc.Column(od.A), colB), nil
	default:
		return false, fmt.Errorf("bidir: unknown kind %v", od.Kind)
	}
}

// reverseRanks flips a rank-encoded column so that descending order on the
// original equals ascending order on the result.
func reverseRanks(col []int32, cardinality int) []int32 {
	out := make([]int32, len(col))
	top := int32(cardinality - 1)
	for i, v := range col {
		out[i] = top - v
	}
	return out
}

func contextPartition(enc *relation.Encoded, ctx bitset.AttrSet) *partition.Partition {
	s := partition.NewScratch()
	p := partition.FromConstant(enc.NumRows())
	ctx.ForEach(func(a int) {
		p = p.ProductWith(partition.FromColumn(enc.Column(a), enc.Cardinality[a]), s)
	})
	return p
}

func checkAttrs(enc *relation.Encoded, od OD) error {
	check := func(a int) error {
		if a < 0 || a >= enc.NumCols() {
			return fmt.Errorf("bidir: attribute %d out of range for relation with %d columns", a, enc.NumCols())
		}
		return nil
	}
	for _, a := range od.Context.Attrs() {
		if err := check(a); err != nil {
			return err
		}
	}
	if err := check(od.A); err != nil {
		return err
	}
	if od.Kind == canonical.OrderCompatible {
		return check(od.B)
	}
	return nil
}

// Options configures bidirectional discovery.
type Options struct {
	// MaxLevel, when positive, bounds the processed lattice level.
	MaxLevel int
	// Workers is the number of goroutines processing lattice nodes, with the
	// same convention as core.Options.Workers (0 = GOMAXPROCS, 1 =
	// sequential). The output is identical regardless of the setting.
	Workers int
	// Scheduler selects the node ordering (DAG work-stealing by default,
	// level-synchronous barrier as an option); see core.Options.Scheduler.
	Scheduler lattice.Scheduler
	// Budget bounds the run's wall-clock time and visited lattice nodes; see
	// core.Options.Budget for the interrupt semantics.
	Budget lattice.Budget
	// Progress, when non-nil, receives one event per completed lattice level;
	// see core.Options.Progress.
	Progress func(lattice.ProgressEvent)
	// Partitions, when non-nil, shares stripped partitions with other runs
	// over the same relation; see core.Options.Partitions.
	Partitions *lattice.PartitionStore
}

// Result is the outcome of bidirectional discovery.
type Result struct {
	ODs          []OD
	Elapsed      time.Duration
	NodesVisited int
	// Stats carries the engine's traversal counters (nodes, partition store
	// hits/misses, interruption).
	Stats lattice.Stats
	// Interrupted reports that the run stopped early on context cancellation
	// or budget exhaustion; ODs then holds everything found up to the
	// interrupt.
	Interrupted bool
}

// Discover finds the minimal bidirectional canonical ODs of a relation:
// constancy ODs exactly as in the unidirectional case plus, for every
// attribute pair and context, whether the pair is order compatible in the
// same direction, in opposite directions, or both (which only happens when
// one attribute is constant within the context — then Propagate already makes
// the OD non-minimal). Minimality follows the unidirectional rules: no subset
// context may satisfy the same OD (with the same polarity) and neither paired
// attribute may be constant in the context.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	//lint:allow ctxfirst convenience wrapper kept for callers that cannot cancel; DiscoverContext is the cancellable entry point
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext is Discover with cooperative cancellation and budgeting
// (see core.DiscoverContext): an interrupted run returns the bidirectional
// ODs found so far with Interrupted set instead of an error.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("bidir: empty relation")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("bidir: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	start := time.Now()
	n := enc.NumCols()
	res := &Result{}

	eng, err := lattice.New(enc, lattice.Config{
		Ctx:        ctx,
		Scheduler:  opts.Scheduler,
		Workers:    opts.Workers,
		MaxLevel:   opts.MaxLevel,
		Budget:     opts.Budget,
		Store:      opts.Partitions,
		OnProgress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}

	type polKey struct {
		pair bitset.Pair
		pol  Polarity
	}
	satisfiedConst := make(map[int][]bitset.AttrSet)
	satisfiedOC := make(map[polKey][]bitset.AttrSet)
	hasSubset := func(list []bitset.AttrSet, ctx bitset.AttrSet) bool {
		for _, s := range list {
			if s.IsSubsetOf(ctx) {
				return true
			}
		}
		return false
	}

	// Pre-reverse every column once for the opposite-direction checks.
	reversed := make([][]int32, n)
	for a := 0; a < n; a++ {
		reversed[a] = reverseRanks(enc.Column(a), enc.Cardinality[a])
	}

	// Node-reentrant discovery with shared satisfied-lists under one mutex.
	// The minimality gates stay schedule-independent: an entry S relevant to
	// node X (S ⊆ context ⊂ X) was discovered at the node S ∪ {checked
	// attrs}, a subset of X — and the scheduler guarantees every subset of X
	// completed (and published its discoveries) before X starts. Entries from
	// concurrently running nodes are never subsets of X's contexts, so they
	// cannot flip a gate; the lock only makes the slice reads safe. Each
	// visit evaluates its gates under the lock, runs the expensive partition
	// checks off it, and publishes its discoveries before completing.
	type constCand struct {
		a   int
		ctx bitset.AttrSet
	}
	type ocCand struct {
		a, b int
		ctx  bitset.AttrSet
		pol  Polarity
	}
	var mu sync.Mutex
	eng.RunNodes(nil, func(wk, l int, x bitset.AttrSet, _ []any) (any, bool) {
		scratch := eng.Scratch(wk)
		attrs := x.Attrs()
		var constCands []constCand
		var ocCands []ocCand
		mu.Lock()
		for _, a := range attrs {
			ctx := x.Remove(a)
			if !hasSubset(satisfiedConst[a], ctx) {
				constCands = append(constCands, constCand{a: a, ctx: ctx})
			}
		}
		if l >= 2 {
			for p := 0; p < len(attrs); p++ {
				for q := p + 1; q < len(attrs); q++ {
					a, b := attrs[p], attrs[q]
					ctx := x.Remove(a).Remove(b)
					if hasSubset(satisfiedConst[a], ctx) || hasSubset(satisfiedConst[b], ctx) {
						continue // Propagate: constant attributes are compatible both ways
					}
					pair := bitset.NewPair(a, b)
					for _, pol := range []Polarity{SameDirection, OppositeDirection} {
						if !hasSubset(satisfiedOC[polKey{pair: pair, pol: pol}], ctx) {
							ocCands = append(ocCands, ocCand{a: a, b: b, ctx: ctx, pol: pol})
						}
					}
				}
			}
		}
		mu.Unlock()

		var found []OD
		for _, c := range constCands {
			if eng.Partition(c.ctx).ConstantInClasses(enc.Column(c.a)) {
				found = append(found, NewConstancy(c.ctx, c.a))
			}
		}
		for _, c := range ocCands {
			colB := enc.Column(c.b)
			if c.pol == OppositeDirection {
				colB = reversed[c.b]
			}
			if !eng.Partition(c.ctx).HasSwapWith(enc.Column(c.a), colB, scratch) {
				found = append(found, NewOrderCompatible(c.ctx, c.a, c.b, c.pol))
			}
		}

		if len(found) > 0 {
			mu.Lock()
			for _, od := range found {
				res.ODs = append(res.ODs, od)
				if od.Kind == canonical.Constancy {
					satisfiedConst[od.A] = append(satisfiedConst[od.A], od.Context)
				} else {
					key := polKey{pair: bitset.NewPair(od.A, od.B), pol: od.Polarity}
					satisfiedOC[key] = append(satisfiedOC[key], od.Context)
				}
			}
			mu.Unlock()
		}
		return nil, false
	})
	if err := eng.Err(); err != nil {
		// A recovered worker panic: fail the discovery rather than report a
		// possibly incoherent partial.
		return nil, err
	}
	res.Stats = eng.Stats()
	res.NodesVisited = res.Stats.NodesVisited
	res.Interrupted = res.Stats.Interrupted

	sort.Slice(res.ODs, func(i, j int) bool { return less(res.ODs[i], res.ODs[j]) })
	res.Elapsed = time.Since(start)
	return res, nil
}

func less(a, b OD) bool {
	if a.Context.Len() != b.Context.Len() {
		return a.Context.Len() < b.Context.Len()
	}
	if a.Context != b.Context {
		return a.Context < b.Context
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.Polarity < b.Polarity
}
