package bidir

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
)

func encode(t *testing.T, r *relation.Relation) *relation.Encoded {
	t.Helper()
	enc, err := relation.Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return enc
}

// opposing builds a relation where b falls as a rises (plus noise column c).
func opposing(t *testing.T, rows int) *relation.Encoded {
	t.Helper()
	data := make([][]string, rows)
	for i := 0; i < rows; i++ {
		data[i] = []string{strconv.Itoa(i), strconv.Itoa(rows - i), strconv.Itoa(i % 3)}
	}
	rel, err := relation.FromRows("opposing", []string{"a", "b", "c"}, data)
	if err != nil {
		t.Fatal(err)
	}
	return encode(t, rel)
}

func TestDirectionAndPolarityStrings(t *testing.T) {
	if Asc.String() != "asc" || Desc.String() != "desc" {
		t.Error("Direction.String incorrect")
	}
	if SameDirection.String() != "same" || OppositeDirection.String() != "opposite" {
		t.Error("Polarity.String incorrect")
	}
	s := Spec{{Attr: 0, Dir: Asc}, {Attr: 2, Dir: Desc}}
	if s.String() != "[0 asc,2 desc]" {
		t.Errorf("Spec.String = %q", s.String())
	}
	if s.Names([]string{"a", "b", "c"}) != "[a asc,c desc]" {
		t.Errorf("Spec.Names = %q", s.Names([]string{"a", "b", "c"}))
	}
	if (Spec{{Attr: 9}}).Names([]string{"a"}) != "[#9 asc]" {
		t.Error("Spec.Names out of range incorrect")
	}
}

func TestCompareWithDirections(t *testing.T) {
	enc := opposing(t, 10)
	// a ascending: row 0 before row 5.
	if Compare(enc, Spec{{Attr: 0, Dir: Asc}}, 0, 5) >= 0 {
		t.Error("ascending comparison wrong")
	}
	// a descending: row 5 before row 0.
	if Compare(enc, Spec{{Attr: 0, Dir: Desc}}, 0, 5) <= 0 {
		t.Error("descending comparison wrong")
	}
	// Equal projection on empty spec.
	if Compare(enc, Spec{}, 1, 2) != 0 {
		t.Error("empty spec comparison wrong")
	}
}

func TestHoldsBidirectional(t *testing.T) {
	enc := opposing(t, 20)
	aAsc := Spec{{Attr: 0, Dir: Asc}}
	bAsc := Spec{{Attr: 1, Dir: Asc}}
	bDesc := Spec{{Attr: 1, Dir: Desc}}

	// a ascending orders b descending (b falls as a rises).
	if !Holds(enc, aAsc, bDesc) {
		t.Error("[a asc] -> [b desc] should hold")
	}
	if Holds(enc, aAsc, bAsc) {
		t.Error("[a asc] -> [b asc] should not hold")
	}
	if !OrderCompatible(enc, aAsc, bDesc) {
		t.Error("[a asc] ~ [b desc] should hold")
	}
	if OrderCompatible(enc, aAsc, bAsc) {
		t.Error("[a asc] ~ [b asc] should not hold")
	}
}

// Property: unidirectional Holds agrees with bidirectional Holds when every
// direction is ascending.
func TestHoldsMatchesUnidirectional(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(16), 4, 3, rng.Int63())
		enc := encode(t, rel)
		res, err := core.Discover(enc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, od := range res.ODs {
			if od.Kind != canonical.OrderCompatible {
				continue
			}
			bidirOD := NewOrderCompatible(od.Context, od.A, od.B, SameDirection)
			holds, err := bidirOD.Holds(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !holds {
				t.Fatalf("trial %d: %v holds unidirectionally but not bidirectionally", trial, od)
			}
		}
	}
}

func TestODHelpers(t *testing.T) {
	ctx := bitset.NewAttrSet(0)
	c := NewConstancy(ctx, 1)
	if c.String() != "{0}: [] -> 1" {
		t.Errorf("String = %q", c.String())
	}
	if c.NamesString([]string{"a", "b"}) != "{a}: [] -> b" {
		t.Errorf("NamesString = %q", c.NamesString([]string{"a", "b"}))
	}
	oc := NewOrderCompatible(ctx, 2, 1, OppositeDirection)
	if oc.A != 1 || oc.B != 2 {
		t.Error("pair not normalized")
	}
	if oc.String() != "{0}: 1 ~ 2 (opposite)" {
		t.Errorf("String = %q", oc.String())
	}
	if oc.NamesString([]string{"a", "b", "c"}) != "{a}: b ~ c (opposite)" {
		t.Errorf("NamesString = %q", oc.NamesString([]string{"a", "b", "c"}))
	}
	if (OD{Kind: canonical.Kind(9)}).NamesString([]string{"x"}) == "" {
		// NamesString for unknown kinds is undefined but must not panic; the
		// zero-value path goes through the constancy branch.
		t.Log("unknown kind rendered")
	}

	if !NewConstancy(ctx, 0).IsTrivial() || NewConstancy(ctx, 1).IsTrivial() {
		t.Error("constancy triviality incorrect")
	}
	if !NewOrderCompatible(ctx, 0, 1, SameDirection).IsTrivial() {
		t.Error("pair with context attribute should be trivial")
	}
	if (OD{Kind: canonical.Kind(9)}).IsTrivial() {
		t.Error("unknown kind should not be trivial")
	}
}

func TestODHoldsValidation(t *testing.T) {
	enc := opposing(t, 10)
	if _, err := NewConstancy(bitset.NewAttrSet(60), 0).Holds(enc); err == nil {
		t.Error("expected error for out-of-range context")
	}
	if _, err := NewConstancy(bitset.AttrSet(0), 60).Holds(enc); err == nil {
		t.Error("expected error for out-of-range attribute")
	}
	if _, err := NewOrderCompatible(bitset.AttrSet(0), 0, 60, SameDirection).Holds(enc); err == nil {
		t.Error("expected error for out-of-range pair attribute")
	}
	if ok, err := NewConstancy(bitset.NewAttrSet(1), 1).Holds(enc); err != nil || !ok {
		t.Error("trivial OD must hold")
	}
	if _, err := (OD{Context: bitset.AttrSet(0), Kind: canonical.Kind(9), A: 0}).Holds(enc); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestDiscoverValidation(t *testing.T) {
	if _, err := Discover(nil, Options{}); err == nil {
		t.Error("nil relation must be rejected")
	}
	if _, err := Discover(&relation.Encoded{}, Options{}); err == nil {
		t.Error("empty relation must be rejected")
	}
}

func TestDiscoverOpposingColumns(t *testing.T) {
	enc := opposing(t, 30)
	res, err := Discover(enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundOpposite := false
	foundSame := false
	for _, od := range res.ODs {
		if od.Kind != canonical.OrderCompatible {
			continue
		}
		if od.A == 0 && od.B == 1 && od.Context.IsEmpty() {
			if od.Polarity == OppositeDirection {
				foundOpposite = true
			} else {
				foundSame = true
			}
		}
	}
	if !foundOpposite {
		t.Error("expected {}: a ~ b (opposite) to be discovered")
	}
	if foundSame {
		t.Error("{}: a ~ b (same) must not be discovered for opposing columns")
	}
	if res.Elapsed <= 0 || res.NodesVisited == 0 {
		t.Error("stats not recorded")
	}
}

// TestDiscoverSameDirectionSubsumesUnidirectional: every unidirectional
// minimal order-compatibility OD appears in the bidirectional output with the
// SameDirection polarity (same contexts), and constancy ODs coincide exactly.
func TestDiscoverSameDirectionSubsumesUnidirectional(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(16), 4, 3, rng.Int63())
		enc := encode(t, rel)
		uni, err := core.Discover(enc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bi, err := Discover(enc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		biSet := make(map[OD]bool, len(bi.ODs))
		for _, od := range bi.ODs {
			biSet[od] = true
			// Everything reported must hold and be non-trivial.
			holds, err := od.Holds(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !holds || od.IsTrivial() {
				t.Fatalf("trial %d: invalid OD in bidirectional output: %v", trial, od)
			}
		}
		for _, od := range uni.ODs {
			var want OD
			if od.Kind == canonical.Constancy {
				want = NewConstancy(od.Context, od.A)
			} else {
				want = NewOrderCompatible(od.Context, od.A, od.B, SameDirection)
			}
			if !biSet[want] {
				t.Fatalf("trial %d: unidirectional OD %v missing from bidirectional output", trial, od)
			}
		}
	}
}

func TestDiscoverMaxLevel(t *testing.T) {
	enc := encode(t, datagen.Employees())
	res, err := Discover(enc, Options{MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, od := range res.ODs {
		if od.Context.Len() > 1 {
			t.Errorf("OD %v exceeds MaxLevel=2", od)
		}
	}
}

// differentialRelations builds the seeded datagen relations the differential
// suite runs over, mirroring internal/core/parallel_test.go (bidirectional
// discovery enumerates the full lattice, so the shapes are kept moderate).
func differentialRelations(t *testing.T) map[string]*relation.Encoded {
	t.Helper()
	rels := map[string]*relation.Relation{
		"flight-500x8":     datagen.FlightLike(500, 8, 2017),
		"ncvoter-400x6":    datagen.NCVoterLike(400, 6, 2017),
		"hepatitis-155x8":  datagen.HepatitisLike(155, 8, 2017),
		"random-200x5":     datagen.RandomRelation(200, 5, 4, 42),
		"structured-400x6": datagen.RandomStructuredRelation(400, 6, 3, 99),
	}
	out := make(map[string]*relation.Encoded, len(rels))
	for name, r := range rels {
		out[name] = encode(t, r)
	}
	return out
}

// TestParallelMatchesSequentialDifferential: a Workers=4 run must be
// indistinguishable from a Workers=1 run — same sorted OD list (kind,
// context, pair and polarity), same node counter — on every seeded dataset.
func TestParallelMatchesSequentialDifferential(t *testing.T) {
	for name, enc := range differentialRelations(t) {
		seq, err := Discover(enc, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := Discover(enc, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if par.NodesVisited != seq.NodesVisited {
			t.Errorf("%s: NodesVisited = %d, want %d", name, par.NodesVisited, seq.NodesVisited)
		}
		if len(par.ODs) != len(seq.ODs) {
			t.Fatalf("%s: %d ODs, want %d", name, len(par.ODs), len(seq.ODs))
		}
		for i := range seq.ODs {
			if par.ODs[i] != seq.ODs[i] {
				t.Fatalf("%s: OD %d = %v, want %v", name, i, par.ODs[i], seq.ODs[i])
			}
		}
	}
}

// TestParallelWorkerCounts sweeps worker counts on one dataset, including 0
// (GOMAXPROCS), oversubscription and the MaxLevel bound.
func TestParallelWorkerCounts(t *testing.T) {
	enc := encode(t, datagen.FlightLike(300, 6, 2017))
	for _, opts := range []Options{{}, {MaxLevel: 3}} {
		seqOpts := opts
		seqOpts.Workers = 1
		want, err := Discover(enc, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 8, 64, -3} {
			parOpts := opts
			parOpts.Workers = w
			got, err := Discover(enc, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.ODs) != len(want.ODs) {
				t.Fatalf("workers=%d maxlevel=%d: %d ODs, want %d", w, opts.MaxLevel, len(got.ODs), len(want.ODs))
			}
			for i := range want.ODs {
				if got.ODs[i] != want.ODs[i] {
					t.Fatalf("workers=%d: OD %d = %v, want %v", w, i, got.ODs[i], want.ODs[i])
				}
			}
		}
	}
}
