// Package core implements FASTOD, the paper's order-dependency discovery
// algorithm (Section 4): a level-wise traversal of the set-containment
// lattice of attribute sets that emits the complete, minimal set of set-based
// canonical ODs holding on a relation instance. The package also provides the
// un-pruned variant used for the Figure 6 ablation and per-level statistics
// used for the Figure 7 experiment.
package core

import (
	"time"

	"repro/internal/canonical"
	"repro/internal/lattice"
)

// Options configures a discovery run. The zero value is the paper's FASTOD
// configuration with all optimizations enabled, running one worker per
// available CPU.
type Options struct {
	// Workers is the number of goroutines processing lattice nodes. A node
	// only depends on its immediate subsets, so the per-node phases —
	// candidate-set derivation, FD/swap validation and partition products —
	// run concurrently across nodes and the results are merged at node
	// completion: counters commute and the OD list is sorted in a total order
	// at the end, so the result (ODs, counts and work counters) is identical
	// to a sequential run regardless of the setting. 0 selects
	// runtime.GOMAXPROCS(0); 1 forces the fully sequential path with no
	// goroutines; values below zero are treated as 1.
	Workers int

	// Scheduler selects how node work is ordered: the dependency-aware
	// work-stealing DAG scheduler (the default), which starts a node the
	// moment its immediate subsets are done, or the level-synchronous barrier
	// path. Both produce byte-identical results; see lattice.Scheduler.
	Scheduler lattice.Scheduler

	// Budget bounds the run's wall-clock time and visited lattice nodes (see
	// lattice.Budget; the zero value means no bound). An exhausted budget
	// interrupts the run cooperatively: the Result carries every OD found so
	// far with coherent partial statistics and Stats.Interrupted set, instead
	// of an error.
	Budget lattice.Budget

	// Progress, when non-nil, receives one event per completed lattice level
	// (including the partial level of an interrupted run). It is invoked from
	// the discovery goroutine, never concurrently.
	Progress func(lattice.ProgressEvent)

	// Partitions, when non-nil, is a shared partition store: the run consults
	// it before computing any stripped partition and records every partition
	// it derives, so partitions are reused across runs that pass the same
	// store — the pruned and un-pruned passes of one experiment, repeated
	// Discover calls on the same dataset, or the TANE/approximate/
	// bidirectional algorithms profiling the same relation. The store is
	// bounded (see lattice.NewPartitionStore) and must only ever be shared
	// between runs over the same relation instance. Nil disables cross-run
	// caching; the output is identical either way.
	Partitions *lattice.PartitionStore

	// DisablePruning turns off the minimality machinery entirely (candidate
	// sets C+c/C+s, node deletion, key pruning). Every valid OD — minimal or
	// not — is then enumerated and verified, which reproduces the
	// "FASTOD-No Pruning" series of Figure 6. The traversal still proceeds
	// level by level over the set lattice.
	DisablePruning bool

	// DisableKeyPruning turns off the Lemma 12/13 shortcut that skips
	// validation when the candidate's context is a superkey (its stripped
	// partition is empty). Used by the ablation benchmarks.
	DisableKeyPruning bool

	// DisableNodePruning turns off pruneLevels (Lemma 11): nodes whose
	// candidate sets are both empty are then kept and keep generating
	// children. Used by the ablation benchmarks.
	DisableNodePruning bool

	// NaiveSwapCheck replaces the sorted-scan swap check of Section 4.6 with
	// a quadratic per-class pairwise comparison. Used by the ablation
	// benchmarks; results are identical, only slower.
	NaiveSwapCheck bool

	// CountOnly suppresses materializing the discovered ODs and only counts
	// them. This keeps the no-pruning runs (whose OD counts explode into the
	// millions) within memory budget.
	CountOnly bool

	// MaxLevel, when positive, stops the traversal after processing the given
	// lattice level (context size + right-hand side attributes). The output is
	// then complete only up to that level; Figure 7 uses it to report
	// per-level behaviour.
	MaxLevel int

	// CollectLevelStats records per-level timing and OD counts (Figure 7).
	CollectLevelStats bool
}

// LevelStat records what happened while processing one lattice level.
type LevelStat struct {
	// Level is the lattice level l, i.e. the size of the attribute sets
	// processed. Canonical ODs emitted at level l have contexts of size l-1
	// (constancy) or l-2 (order compatibility).
	Level int
	// Nodes is the number of attribute sets processed at this level after any
	// pruning of the previous level.
	Nodes int
	// Constancy and OrderCompat count the ODs emitted at this level.
	Constancy   int
	OrderCompat int
	// Elapsed is the wall-clock time spent in computeODs, pruneLevels and
	// calculateNextLevel for this level.
	Elapsed time.Duration
}

// Stats aggregates counters describing the work a discovery run performed.
type Stats struct {
	// NodesVisited is the total number of lattice nodes processed.
	NodesVisited int
	// FDChecks and SwapChecks count the validation operations performed.
	FDChecks   int
	SwapChecks int
	// KeyPrunes counts validations skipped because the context was a superkey.
	KeyPrunes int
	// NodesPruned counts lattice nodes deleted by pruneLevels.
	NodesPruned int
	// MaxLevelReached is the deepest lattice level that produced candidates.
	MaxLevelReached int
	// PartitionHits and PartitionMisses count lattice-node partitions served
	// from and missing in the shared partition store (Options.Partitions)
	// during this run. Both are zero when no store is configured.
	PartitionHits   int
	PartitionMisses int
	// Interrupted reports that the run stopped early because its context was
	// cancelled or its budget exhausted; the result then holds everything
	// discovered up to the interrupt (complete through the last fully
	// processed lattice level).
	Interrupted bool
}

// Result is the outcome of a discovery run.
type Result struct {
	// ODs is the discovered set of canonical ODs, sorted deterministically.
	// With Options.CountOnly it is nil.
	ODs []canonical.OD
	// Counts tallies the discovered ODs by kind, matching the way the paper
	// reports results ("#ODs (#FDs + #OCDs)"). It is filled even in
	// CountOnly mode.
	Counts canonical.Count
	// Levels holds per-level statistics when Options.CollectLevelStats is set.
	Levels []LevelStat
	// Stats holds aggregate work counters.
	Stats Stats
	// Elapsed is the total wall-clock duration of the run.
	Elapsed time.Duration
	// ColumnNames echoes the relation's attribute names so results can be
	// rendered without carrying the input around.
	ColumnNames []string
}

// ConstancyODs returns only the constancy (FD-flavoured) ODs of the result.
func (r *Result) ConstancyODs() []canonical.OD {
	return r.filter(canonical.Constancy)
}

// OrderCompatibleODs returns only the order-compatibility ODs of the result.
func (r *Result) OrderCompatibleODs() []canonical.OD {
	return r.filter(canonical.OrderCompatible)
}

func (r *Result) filter(kind canonical.Kind) []canonical.OD {
	var out []canonical.OD
	for _, od := range r.ODs {
		if od.Kind == kind {
			out = append(out, od)
		}
	}
	return out
}
