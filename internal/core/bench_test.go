package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// Micro-benchmarks for the FASTOD driver itself, complementing the
// figure-level benchmarks at the repository root.

func benchRelation(b *testing.B, rows, cols int) *relation.Encoded {
	b.Helper()
	enc, err := relation.Encode(datagen.FlightLike(rows, cols, 2017))
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

func BenchmarkDiscoverFlight1Kx10(b *testing.B) {
	enc := benchRelation(b, 1000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(enc, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoverRowsScaling(b *testing.B) {
	for _, rows := range []int{1000, 2000, 4000, 8000} {
		enc := benchRelation(b, rows, 8)
		b.Run(sizeLabel(rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Discover(enc, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDiscoverNoPruning(b *testing.B) {
	enc := benchRelation(b, 500, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(enc, Options{DisablePruning: true, CountOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeLabel(rows int) string {
	switch {
	case rows >= 1000 && rows%1000 == 0:
		return itoa(rows/1000) + "Krows"
	default:
		return itoa(rows) + "rows"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
