package core

import (
	"strconv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// Micro-benchmarks for the FASTOD driver itself, complementing the
// figure-level benchmarks at the repository root.

func benchRelation(b *testing.B, rows, cols int) *relation.Encoded {
	b.Helper()
	enc, err := relation.Encode(datagen.FlightLike(rows, cols, 2017))
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

// Single-configuration benchmarks pin Workers: 1 so their series stay
// comparable with runs recorded before the parallel engine existed; the
// scaling benchmarks below measure the parallel trajectory explicitly.

func BenchmarkDiscoverFlight1Kx10(b *testing.B) {
	enc := benchRelation(b, 1000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(enc, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoverRowsScaling tracks the sequential-vs-parallel trajectory
// of the engine as the row count grows: each size runs with Workers=1 (the
// sequential path) and Workers=4 (the sharded level-parallel path). On a
// multi-core machine the parallel series should pull ahead as rows grow; on a
// single-core machine the two series bound the pool's scheduling overhead.
func BenchmarkDiscoverRowsScaling(b *testing.B) {
	for _, rows := range []int{1000, 2000, 4000, 8000} {
		enc := benchRelation(b, rows, 8)
		for _, cfg := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par4", 4}} {
			b.Run(sizeLabel(rows)+"/"+cfg.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Discover(enc, Options{Workers: cfg.workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDiscoverWorkersScaling sweeps the worker count at a fixed shape,
// capturing the speedup curve of the level-parallel engine.
func BenchmarkDiscoverWorkersScaling(b *testing.B) {
	enc := benchRelation(b, 4000, 10)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Discover(enc, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDiscoverNoPruning(b *testing.B) {
	enc := benchRelation(b, 500, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(enc, Options{Workers: 1, DisablePruning: true, CountOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeLabel(rows int) string {
	switch {
	case rows >= 1000 && rows%1000 == 0:
		return strconv.Itoa(rows/1000) + "Krows"
	default:
		return strconv.Itoa(rows) + "rows"
	}
}
