package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/lattice"
	"repro/internal/relation"
)

// Differential tests for the parallel engine: a parallel run must be
// indistinguishable from a sequential one — same sorted OD list, same counts,
// same work counters — on every dataset shape and option combination.

// assertResultsEqual compares everything about two discovery results except
// wall-clock timings.
func assertResultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Counts != want.Counts {
		t.Errorf("%s: counts = %+v, want %+v", label, got.Counts, want.Counts)
	}
	if len(got.ODs) != len(want.ODs) {
		t.Fatalf("%s: %d ODs, want %d", label, len(got.ODs), len(want.ODs))
	}
	for i := range want.ODs {
		if !got.ODs[i].Equal(want.ODs[i]) {
			t.Fatalf("%s: OD %d = %v, want %v", label, i, got.ODs[i], want.ODs[i])
		}
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats = %+v, want %+v", label, got.Stats, want.Stats)
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d level stats, want %d", label, len(got.Levels), len(want.Levels))
	}
	for i := range want.Levels {
		g, w := got.Levels[i], want.Levels[i]
		g.Elapsed, w.Elapsed = 0, 0
		if g != w {
			t.Errorf("%s: level stat %d = %+v, want %+v", label, i, got.Levels[i], want.Levels[i])
		}
	}
}

// differentialRelations builds the seeded datagen relations the differential
// suite runs over: varying row counts, column counts and cardinality
// profiles (constants, keys, FD chains, monotone families, random noise).
func differentialRelations(t *testing.T) map[string]*relation.Encoded {
	t.Helper()
	rels := map[string]*relation.Relation{
		"flight-2000x8":    datagen.FlightLike(2000, 8, 2017),
		"flight-300x10":    datagen.FlightLike(300, 10, 7),
		"ncvoter-1000x6":   datagen.NCVoterLike(1000, 6, 2017),
		"hepatitis-155x8":  datagen.HepatitisLike(155, 8, 2017),
		"dbtesma-500x8":    datagen.DBTesmaLike(500, 8, 2017),
		"random-200x5":     datagen.RandomRelation(200, 5, 4, 42),
		"structured-400x6": datagen.RandomStructuredRelation(400, 6, 3, 99),
	}
	out := make(map[string]*relation.Encoded, len(rels))
	for name, r := range rels {
		out[name] = encode(t, r)
	}
	return out
}

func TestParallelMatchesSequentialDifferential(t *testing.T) {
	for name, enc := range differentialRelations(t) {
		seq := discover(t, enc, Options{Workers: 1, CollectLevelStats: true})
		par := discover(t, enc, Options{Workers: 4, CollectLevelStats: true})
		assertResultsEqual(t, name, par, seq)
	}
}

// TestParallelWorkerCounts sweeps worker counts, including 0 (GOMAXPROCS)
// and counts exceeding the number of lattice nodes per level.
func TestParallelWorkerCounts(t *testing.T) {
	enc := encode(t, datagen.FlightLike(500, 8, 2017))
	want := discover(t, enc, Options{Workers: 1})
	for _, w := range []int{0, 2, 3, 4, 8, 64} {
		got := discover(t, enc, Options{Workers: w})
		assertResultsEqual(t, fmt.Sprintf("workers=%d", w), got, want)
	}
	// Negative values clamp to the sequential path.
	got := discover(t, enc, Options{Workers: -3})
	assertResultsEqual(t, "workers=-3", got, want)
}

// TestParallelOptionVariants runs the differential check across the engine's
// option surface: ablations, no-pruning, count-only and depth limits all must
// be worker-count invariant.
func TestParallelOptionVariants(t *testing.T) {
	enc := encode(t, datagen.FlightLike(400, 8, 2017))
	variants := map[string]Options{
		"default":           {},
		"no-pruning":        {DisablePruning: true},
		"no-pruning-counts": {DisablePruning: true, CountOnly: true},
		"count-only":        {CountOnly: true},
		"no-key-pruning":    {DisableKeyPruning: true},
		"no-node-pruning":   {DisableNodePruning: true},
		"naive-swap":        {NaiveSwapCheck: true},
		"max-level-3":       {MaxLevel: 3, CollectLevelStats: true},
	}
	for name, opts := range variants {
		seqOpts, parOpts := opts, opts
		seqOpts.Workers = 1
		parOpts.Workers = 4
		seq := discover(t, enc, seqOpts)
		par := discover(t, enc, parOpts)
		assertResultsEqual(t, name, par, seq)
	}
}

// TestParallelDiscoverConcurrentCallers exercises the engine's only intended
// sharing model — none: independent discoveries, each internally parallel,
// run concurrently over the same encoded relation. Run under -race this
// doubles as the data-race probe for the level-barrier design.
func TestParallelDiscoverConcurrentCallers(t *testing.T) {
	enc := encode(t, datagen.FlightLike(300, 8, 2017))
	want := discover(t, enc, Options{Workers: 1})

	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := Discover(enc, Options{Workers: 4})
			if err != nil {
				errs <- fmt.Errorf("caller %d: %v", g, err)
				return
			}
			if res.Counts != want.Counts || len(res.ODs) != len(want.ODs) {
				errs <- fmt.Errorf("caller %d: counts %+v, want %+v", g, res.Counts, want.Counts)
				return
			}
			for i := range want.ODs {
				if !res.ODs[i].Equal(want.ODs[i]) {
					errs <- fmt.Errorf("caller %d: OD %d = %v, want %v", g, i, res.ODs[i], want.ODs[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// The parallelFor/resolveWorkers unit tests moved to internal/lattice with
// the executor itself; the tests below cover what core still owns — the
// deterministic merge of per-worker results — plus the partition store's
// cross-run behaviour as seen through Discover.

// assertSameODs compares only the discovered dependencies and counts,
// ignoring work counters — used where cache warmth legitimately changes
// Stats (PartitionHits/Misses) but must never change the output.
func assertSameODs(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Counts != want.Counts {
		t.Errorf("%s: counts = %+v, want %+v", label, got.Counts, want.Counts)
	}
	if len(got.ODs) != len(want.ODs) {
		t.Fatalf("%s: %d ODs, want %d", label, len(got.ODs), len(want.ODs))
	}
	for i := range want.ODs {
		if !got.ODs[i].Equal(want.ODs[i]) {
			t.Fatalf("%s: OD %d = %v, want %v", label, i, got.ODs[i], want.ODs[i])
		}
	}
}

// TestPartitionStoreSharedAcrossPasses exercises the Figure 6 pattern: the
// pruned and un-pruned FASTOD passes over one relation sharing a partition
// store. The second pass must reuse the first pass's partitions (measured
// cache hits) and both outputs must be identical to store-less runs.
func TestPartitionStoreSharedAcrossPasses(t *testing.T) {
	enc := encode(t, datagen.FlightLike(500, 8, 2017))
	store := lattice.NewPartitionStore(0)

	pruned, err := Discover(enc, Options{Workers: 1, Partitions: store})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats.PartitionHits != 0 {
		t.Errorf("cold pass: %d hits, want 0", pruned.Stats.PartitionHits)
	}
	if pruned.Stats.PartitionMisses == 0 {
		t.Error("cold pass recorded no misses")
	}
	assertSameODs(t, "pruned+store", pruned, discover(t, enc, Options{Workers: 1}))

	unpruned, err := Discover(enc, Options{Workers: 4, Partitions: store, DisablePruning: true, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if unpruned.Stats.PartitionHits == 0 {
		t.Error("un-pruned pass over a shared store recorded no cache hits")
	}
	noStore := discover(t, enc, Options{Workers: 1, DisablePruning: true, CountOnly: true})
	if unpruned.Counts != noStore.Counts {
		t.Errorf("un-pruned counts with store = %+v, want %+v", unpruned.Counts, noStore.Counts)
	}

	st := store.Stats()
	if st.Hits != pruned.Stats.PartitionHits+unpruned.Stats.PartitionHits {
		t.Errorf("store hits = %d, want %d", st.Hits, pruned.Stats.PartitionHits+unpruned.Stats.PartitionHits)
	}
	if st.Misses != pruned.Stats.PartitionMisses+unpruned.Stats.PartitionMisses {
		t.Errorf("store misses = %d, want %d", st.Misses, pruned.Stats.PartitionMisses+unpruned.Stats.PartitionMisses)
	}
}

// TestPartitionStoreRepeatedDiscover: a second identical run over a warm
// store must compute no partitions at all and still produce identical output
// — the advisor's repeated-Discover pattern.
func TestPartitionStoreRepeatedDiscover(t *testing.T) {
	enc := encode(t, datagen.FlightLike(400, 8, 2017))
	store := lattice.NewPartitionStore(0)
	first, err := Discover(enc, Options{Workers: 1, Partitions: store})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Discover(enc, Options{Workers: 1, Partitions: store})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.PartitionMisses != 0 {
		t.Errorf("warm run: %d misses, want 0", second.Stats.PartitionMisses)
	}
	if second.Stats.PartitionHits != first.Stats.PartitionMisses {
		t.Errorf("warm run: %d hits, want %d", second.Stats.PartitionHits, first.Stats.PartitionMisses)
	}
	assertSameODs(t, "warm", second, first)
}

// TestPartitionStoreBoundedDiscover: a store far too small for the lattice
// must evict rather than grow, and must not perturb the output.
func TestPartitionStoreBoundedDiscover(t *testing.T) {
	enc := encode(t, datagen.FlightLike(300, 8, 2017))
	store := lattice.NewPartitionStore(2048) // a handful of 300-row partitions
	res, err := Discover(enc, Options{Workers: 1, Partitions: store})
	if err != nil {
		t.Fatal(err)
	}
	assertSameODs(t, "bounded", res, discover(t, enc, Options{Workers: 1}))
	st := store.Stats()
	if st.Cost > st.MaxCost {
		t.Errorf("store cost %d exceeds bound %d", st.Cost, st.MaxCost)
	}
	if st.Evictions == 0 {
		t.Error("undersized store recorded no evictions")
	}
}
