package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// Differential tests for the parallel engine: a parallel run must be
// indistinguishable from a sequential one — same sorted OD list, same counts,
// same work counters — on every dataset shape and option combination.

// assertResultsEqual compares everything about two discovery results except
// wall-clock timings.
func assertResultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Counts != want.Counts {
		t.Errorf("%s: counts = %+v, want %+v", label, got.Counts, want.Counts)
	}
	if len(got.ODs) != len(want.ODs) {
		t.Fatalf("%s: %d ODs, want %d", label, len(got.ODs), len(want.ODs))
	}
	for i := range want.ODs {
		if !got.ODs[i].Equal(want.ODs[i]) {
			t.Fatalf("%s: OD %d = %v, want %v", label, i, got.ODs[i], want.ODs[i])
		}
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats = %+v, want %+v", label, got.Stats, want.Stats)
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d level stats, want %d", label, len(got.Levels), len(want.Levels))
	}
	for i := range want.Levels {
		g, w := got.Levels[i], want.Levels[i]
		g.Elapsed, w.Elapsed = 0, 0
		if g != w {
			t.Errorf("%s: level stat %d = %+v, want %+v", label, i, got.Levels[i], want.Levels[i])
		}
	}
}

// differentialRelations builds the seeded datagen relations the differential
// suite runs over: varying row counts, column counts and cardinality
// profiles (constants, keys, FD chains, monotone families, random noise).
func differentialRelations(t *testing.T) map[string]*relation.Encoded {
	t.Helper()
	rels := map[string]*relation.Relation{
		"flight-2000x8":    datagen.FlightLike(2000, 8, 2017),
		"flight-300x10":    datagen.FlightLike(300, 10, 7),
		"ncvoter-1000x6":   datagen.NCVoterLike(1000, 6, 2017),
		"hepatitis-155x8":  datagen.HepatitisLike(155, 8, 2017),
		"dbtesma-500x8":    datagen.DBTesmaLike(500, 8, 2017),
		"random-200x5":     datagen.RandomRelation(200, 5, 4, 42),
		"structured-400x6": datagen.RandomStructuredRelation(400, 6, 3, 99),
	}
	out := make(map[string]*relation.Encoded, len(rels))
	for name, r := range rels {
		out[name] = encode(t, r)
	}
	return out
}

func TestParallelMatchesSequentialDifferential(t *testing.T) {
	for name, enc := range differentialRelations(t) {
		seq := discover(t, enc, Options{Workers: 1, CollectLevelStats: true})
		par := discover(t, enc, Options{Workers: 4, CollectLevelStats: true})
		assertResultsEqual(t, name, par, seq)
	}
}

// TestParallelWorkerCounts sweeps worker counts, including 0 (GOMAXPROCS)
// and counts exceeding the number of lattice nodes per level.
func TestParallelWorkerCounts(t *testing.T) {
	enc := encode(t, datagen.FlightLike(500, 8, 2017))
	want := discover(t, enc, Options{Workers: 1})
	for _, w := range []int{0, 2, 3, 4, 8, 64} {
		got := discover(t, enc, Options{Workers: w})
		assertResultsEqual(t, fmt.Sprintf("workers=%d", w), got, want)
	}
	// Negative values clamp to the sequential path.
	got := discover(t, enc, Options{Workers: -3})
	assertResultsEqual(t, "workers=-3", got, want)
}

// TestParallelOptionVariants runs the differential check across the engine's
// option surface: ablations, no-pruning, count-only and depth limits all must
// be worker-count invariant.
func TestParallelOptionVariants(t *testing.T) {
	enc := encode(t, datagen.FlightLike(400, 8, 2017))
	variants := map[string]Options{
		"default":           {},
		"no-pruning":        {DisablePruning: true},
		"no-pruning-counts": {DisablePruning: true, CountOnly: true},
		"count-only":        {CountOnly: true},
		"no-key-pruning":    {DisableKeyPruning: true},
		"no-node-pruning":   {DisableNodePruning: true},
		"naive-swap":        {NaiveSwapCheck: true},
		"max-level-3":       {MaxLevel: 3, CollectLevelStats: true},
	}
	for name, opts := range variants {
		seqOpts, parOpts := opts, opts
		seqOpts.Workers = 1
		parOpts.Workers = 4
		seq := discover(t, enc, seqOpts)
		par := discover(t, enc, parOpts)
		assertResultsEqual(t, name, par, seq)
	}
}

// TestParallelDiscoverConcurrentCallers exercises the engine's only intended
// sharing model — none: independent discoveries, each internally parallel,
// run concurrently over the same encoded relation. Run under -race this
// doubles as the data-race probe for the level-barrier design.
func TestParallelDiscoverConcurrentCallers(t *testing.T) {
	enc := encode(t, datagen.FlightLike(300, 8, 2017))
	want := discover(t, enc, Options{Workers: 1})

	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := Discover(enc, Options{Workers: 4})
			if err != nil {
				errs <- fmt.Errorf("caller %d: %v", g, err)
				return
			}
			if res.Counts != want.Counts || len(res.ODs) != len(want.ODs) {
				errs <- fmt.Errorf("caller %d: counts %+v, want %+v", g, res.Counts, want.Counts)
				return
			}
			for i := range want.ODs {
				if !res.ODs[i].Equal(want.ODs[i]) {
					errs <- fmt.Errorf("caller %d: OD %d = %v, want %v", g, i, res.ODs[i], want.ODs[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(1); got != 1 {
		t.Errorf("resolveWorkers(1) = %d", got)
	}
	if got := resolveWorkers(7); got != 7 {
		t.Errorf("resolveWorkers(7) = %d", got)
	}
	if got := resolveWorkers(-2); got != 1 {
		t.Errorf("resolveWorkers(-2) = %d", got)
	}
	if got := resolveWorkers(0); got < 1 {
		t.Errorf("resolveWorkers(0) = %d, want >= 1", got)
	}
}

func TestParallelForCoversAllItems(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		const n = 1000
		hits := make([]int32, n)
		var mu sync.Mutex
		workersSeen := map[int]bool{}
		parallelFor(w, n, func(wk, i int) {
			mu.Lock()
			hits[i]++
			workersSeen[wk] = true
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("w=%d: item %d processed %d times", w, i, h)
			}
		}
		for wk := range workersSeen {
			if wk < 0 || wk >= w {
				t.Fatalf("w=%d: worker index %d out of range", w, wk)
			}
		}
	}
	// Zero items must not call fn at all.
	parallelFor(4, 0, func(_, _ int) { t.Fatal("fn called for empty range") })
}
