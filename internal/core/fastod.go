package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/lattice"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Discover runs FASTOD with a background context; see DiscoverContext.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	//lint:allow ctxfirst convenience wrapper kept for callers that cannot cancel; DiscoverContext is the cancellable entry point
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext runs FASTOD (Algorithm 1 of the paper) over an encoded
// relation instance and returns the complete, minimal set of canonical ODs
// that hold, or — with Options.DisablePruning — every valid OD, minimal or
// not. The context and Options.Budget are checked cooperatively — at node
// handout under the DAG scheduler, at level barriers and between parallel
// chunk handouts under the barrier scheduler; a cancelled or over-budget run
// returns the ODs discovered so far with Stats.Interrupted set rather than an
// error.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil {
		return nil, fmt.Errorf("core: nil relation")
	}
	if enc.NumCols() == 0 {
		return nil, fmt.Errorf("core: relation has no columns")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("core: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	start := time.Now()
	d, err := newDiscoverer(ctx, enc, opts)
	if err != nil {
		return nil, err
	}
	if opts.DisablePruning {
		d.runNoPruning()
	} else {
		d.run()
	}
	if err := d.eng.Err(); err != nil {
		// A recovered worker panic: the per-node state merged so far may be
		// incoherent (unlike a budget interrupt, which stops at safe points),
		// so fail the discovery rather than report a partial.
		return nil, err
	}
	res := d.result
	if !opts.CountOnly {
		// Node completion order is schedule-dependent (under the DAG scheduler
		// even across levels); the total order restores a byte-identical
		// output for any scheduler and worker count.
		canonical.Sort(res.ODs)
		res.Counts = canonical.CountByKind(res.ODs)
	}
	res.Elapsed = time.Since(start)
	res.ColumnNames = append([]string(nil), enc.ColumnNames...)
	return res, nil
}

// discoverer carries the per-run state of the lattice traversal. The
// traversal itself — node generation and scheduling, partition products and
// retention, the worker pool — is owned by the shared lattice engine; this
// type contributes FASTOD's candidate-set bookkeeping (Algorithms 3 and 4)
// through the engine's node-reentrant visit callback.
type discoverer struct {
	enc  *relation.Encoded
	opts Options

	numAttrs int
	all      bitset.AttrSet // the full schema R
	eng      *lattice.Engine

	// shards accumulate per-worker validation counters across the whole run;
	// they are summed into the result at finish (addition commutes, so the
	// totals match a sequential run exactly).
	shards []checkShard

	// mu guards the node-completion merge: the result's OD list and counters,
	// the per-level stats. Nodes complete out of order under the DAG
	// scheduler, so the merge moved from the level barrier to per-node
	// completion; determinism survives because counters commute and the OD
	// list is sorted in a total order at the end of the run.
	mu         sync.Mutex
	levelStats map[int]*LevelStat

	result *Result
}

// nodeState is the per-node result the traversal threads along dependency
// edges: the node's candidate sets C+c(X) and C+s(X), exactly the state
// Algorithm 3 reads from the immediate subsets of each node it processes.
type nodeState struct {
	cc bitset.AttrSet
	cs *bitset.PairSet
}

func newDiscoverer(ctx context.Context, enc *relation.Encoded, opts Options) (*discoverer, error) {
	d := &discoverer{
		enc:        enc,
		opts:       opts,
		numAttrs:   enc.NumCols(),
		levelStats: make(map[int]*LevelStat),
		result:     &Result{},
	}
	eng, err := lattice.New(enc, lattice.Config{
		Ctx:        ctx,
		Scheduler:  opts.Scheduler,
		Workers:    opts.Workers,
		MaxLevel:   opts.MaxLevel,
		Budget:     opts.Budget,
		Store:      opts.Partitions,
		OnLevelEnd: d.levelEnd,
		OnProgress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	d.eng = eng
	d.all = eng.All()
	d.shards = make([]checkShard, eng.Workers())
	return d, nil
}

// levelEnd stamps a completed level's wall-clock time and, when requested,
// publishes its LevelStat. The engine invokes it in level order under both
// schedulers; levels cut short by an interrupt never fully complete under the
// DAG scheduler and are then absent from Result.Levels.
func (d *discoverer) levelEnd(l int, elapsed time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.levelStats[l]
	if st == nil {
		return
	}
	st.Elapsed = elapsed
	if d.opts.CollectLevelStats {
		d.result.Levels = append(d.result.Levels, *st)
	}
	delete(d.levelStats, l)
}

// flushNode merges one completed node into the run: its discovered ODs, the
// per-kind counters, its level's stats and the pruning tally.
func (d *discoverer) flushNode(l int, buf *emitBuffer, pruned bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.levelStats[l]
	if st == nil {
		st = &LevelStat{Level: l}
		d.levelStats[l] = st
	}
	st.Nodes++
	st.Constancy += buf.constancy
	st.OrderCompat += buf.orderCompat
	d.result.Counts.Constancy += buf.constancy
	d.result.Counts.OrderCompat += buf.orderCompat
	d.result.Counts.Total += buf.constancy + buf.orderCompat
	d.result.ODs = append(d.result.ODs, buf.ods...)
	if pruned {
		d.result.Stats.NodesPruned++
	}
}

// finish folds the per-worker shards and the engine's traversal counters into
// the result.
func (d *discoverer) finish() {
	d.mergeShards(d.shards)
	st := d.eng.Stats()
	d.result.Stats.NodesVisited = st.NodesVisited
	d.result.Stats.MaxLevelReached = st.MaxLevelReached
	d.result.Stats.PartitionHits = st.PartitionHits
	d.result.Stats.PartitionMisses = st.PartitionMisses
	d.result.Stats.Interrupted = st.Interrupted
}

// run executes FASTOD with the full candidate-set machinery (Algorithms 1-4).
// The root state seeds every singleton with C+c(∅) = R and C+s(∅) = ∅.
func (d *discoverer) run() {
	root := &nodeState{cc: d.all, cs: bitset.NewPairSet()}
	d.eng.RunNodes(root, d.visitNode)
	d.finish()
}

// visitNode is Algorithm 3 for one lattice node: it derives the candidate
// sets C+c(X) and C+s(X) from the immediate-subset states in deps, validates
// the candidate ODs, emits the minimal ones, and decides Algorithm 4's
// pruning (both candidate sets empty — Lemma 11). It only reads the node's
// deps and the engine's partition window, so it is node-reentrant: the
// scheduler may run it concurrently on any set of mutually non-dependent
// nodes, across levels.
func (d *discoverer) visitNode(wk, l int, x bitset.AttrSet, deps []any) (any, bool) {
	sh := &d.shards[wk]
	// deps are ordered by ascending removed attribute, so the state of X\{a}
	// sits at a's rank within X.
	prev := func(a int) *nodeState { return deps[x.Rank(a)].(*nodeState) }

	// Pass 1 (lines 1-8): candidate sets from the immediate subsets.
	cc := d.all
	x.ForEach(func(a int) {
		cc = cc.Intersect(prev(a).cc)
	})
	var cs *bitset.PairSet
	switch {
	case l == 2:
		attrs := x.Attrs()
		cs = bitset.NewPairSet()
		cs.Add(bitset.NewPair(attrs[0], attrs[1]))
	case l > 2:
		union := bitset.NewPairSet()
		x.ForEach(func(c int) {
			union = union.Union(prev(c).cs)
		})
		cs = bitset.NewPairSet()
		for _, p := range union.Pairs() {
			keep := true
			x.Diff(p.AsSet()).ForEach(func(dAttr int) {
				if !keep {
					return
				}
				if !prev(dAttr).cs.Contains(p) {
					keep = false
				}
			})
			if keep {
				cs.Add(p)
			}
		}
	default:
		cs = bitset.NewPairSet()
	}

	// Pass 2 (lines 9-25): validation and emission.
	var buf emitBuffer

	// Constancy candidates X\A: [] ↦ A for A ∈ X ∩ C+c(X) (Lemma 7).
	for _, a := range x.Intersect(cc).Attrs() {
		ctx := x.Remove(a)
		if d.checkConstancy(ctx, x, sh) {
			d.bufferOD(&buf, canonical.NewConstancy(ctx, a))
			cc = cc.Remove(a)
			cc = cc.Intersect(x) // remove all B ∈ R \ X (line 14)
		}
	}

	// Order-compatibility candidates X\{A,B}: A ~ B for {A,B} ∈ C+s(X)
	// (Lemma 8).
	for _, p := range cs.Pairs() {
		a, b := p.A, p.B
		if !prev(b).cc.Contains(a) || !prev(a).cc.Contains(b) {
			cs.Remove(p) // line 19: constancy in a sub-context makes it non-minimal
			continue
		}
		ctx := x.Remove(a).Remove(b)
		valid, minimal := d.checkOrderCompat(ctx, a, b, sh, d.eng.Scratch(wk))
		if valid {
			if minimal {
				d.bufferOD(&buf, canonical.NewOrderCompatible(ctx, a, b))
			}
			cs.Remove(p) // line 22
		}
	}

	pruned := l >= 2 && !d.opts.DisableNodePruning && cc.IsEmpty() && cs.IsEmpty()
	d.flushNode(l, &buf, pruned)
	return &nodeState{cc: cc, cs: cs}, pruned
}

// checkConstancy validates X\A: [] ↦ A using the partition-error criterion of
// Section 4.6: the FD holds iff e(Π_ctx) == e(Π_x), because Π_x refines
// Π_ctx. When the context is a superkey the OD holds trivially (Lemma 12) and
// the comparison is skipped under key pruning. Counters go to the calling
// worker's shard; the engine guarantees the partitions of a node and its two
// preceding levels are readable while the node runs.
func (d *discoverer) checkConstancy(ctx, x bitset.AttrSet, sh *checkShard) bool {
	sh.fdChecks++
	ctxPart := d.eng.Partition(ctx)
	if !d.opts.DisableKeyPruning && ctxPart.IsSuperkey() {
		sh.keyPrunes++
		return true
	}
	return ctxPart.Error() == d.eng.Partition(x).Error()
}

// checkOrderCompat validates X\{A,B}: A ~ B by scanning the equivalence
// classes of the context partition for swaps, using the calling worker's
// engine scratch so the radix-sorted check allocates nothing. It returns
// (valid, minimal): when the context is a superkey the OD is valid but never
// minimal (Lemma 13), so it is removed from the candidate set without being
// emitted.
func (d *discoverer) checkOrderCompat(ctx bitset.AttrSet, a, b int, sh *checkShard, s *partition.Scratch) (valid, minimal bool) {
	sh.swapChecks++
	ctxPart := d.eng.Partition(ctx)
	if !d.opts.DisableKeyPruning && ctxPart.IsSuperkey() {
		sh.keyPrunes++
		return true, false
	}
	colA, colB := d.enc.Column(a), d.enc.Column(b)
	if d.opts.NaiveSwapCheck {
		return !ctxPart.HasSwapNaive(colA, colB), true
	}
	return !ctxPart.HasSwapWith(colA, colB, s), true
}

// runNoPruning enumerates the full set lattice and validates every candidate
// OD without any minimality reasoning. It reproduces the "FASTOD-No Pruning"
// configuration of Figure 6: the output contains every valid OD, including
// all the redundant ones. Nodes carry no state (the validations only read the
// partition window), so the visit ignores root and deps and never prunes.
func (d *discoverer) runNoPruning() {
	d.eng.RunNodes(nil, func(wk, l int, x bitset.AttrSet, _ []any) (any, bool) {
		sh := &d.shards[wk]
		var buf emitBuffer
		attrs := x.Attrs()
		for _, a := range attrs {
			ctx := x.Remove(a)
			if d.checkConstancy(ctx, x, sh) {
				d.bufferOD(&buf, canonical.NewConstancy(ctx, a))
			}
		}
		if l >= 2 {
			for p := 0; p < len(attrs); p++ {
				for q := p + 1; q < len(attrs); q++ {
					a, b := attrs[p], attrs[q]
					ctx := x.Remove(a).Remove(b)
					if valid, _ := d.checkOrderCompat(ctx, a, b, sh, d.eng.Scratch(wk)); valid {
						d.bufferOD(&buf, canonical.NewOrderCompatible(ctx, a, b))
					}
				}
			}
		}
		d.flushNode(l, &buf, false)
		return nil, false
	})
	d.finish()
}
