package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Discover runs FASTOD (Algorithm 1 of the paper) over an encoded relation
// instance and returns the complete, minimal set of canonical ODs that hold,
// or — with Options.DisablePruning — every valid OD, minimal or not.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil {
		return nil, fmt.Errorf("core: nil relation")
	}
	if enc.NumCols() == 0 {
		return nil, fmt.Errorf("core: relation has no columns")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("core: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	start := time.Now()
	d := newDiscoverer(enc, opts)
	if opts.DisablePruning {
		d.runNoPruning()
	} else {
		d.run()
	}
	res := d.result
	if !opts.CountOnly {
		canonical.Sort(res.ODs)
		res.Counts = canonical.CountByKind(res.ODs)
	}
	res.Elapsed = time.Since(start)
	res.ColumnNames = append([]string(nil), enc.ColumnNames...)
	return res, nil
}

// discoverer carries the per-run state of the level-wise traversal.
type discoverer struct {
	enc  *relation.Encoded
	opts Options

	numAttrs int
	all      bitset.AttrSet // the full schema R
	workers  int            // resolved worker count (>= 1)

	// Per-level state, keyed by lattice level. Only the last three levels of
	// partitions and the last two levels of candidate sets are retained.
	// These maps are written solely at level barriers and are read-only while
	// a level's nodes are being processed in parallel.
	parts map[int]map[bitset.AttrSet]*partition.Partition
	cc    map[int]map[bitset.AttrSet]bitset.AttrSet
	cs    map[int]map[bitset.AttrSet]*bitset.PairSet

	// scratch holds one partition-product workspace per worker, reused across
	// all levels of the run.
	scratch []*partition.Scratch

	result *Result
}

func newDiscoverer(enc *relation.Encoded, opts Options) *discoverer {
	d := &discoverer{
		enc:      enc,
		opts:     opts,
		numAttrs: enc.NumCols(),
		workers:  resolveWorkers(opts.Workers),
		parts:    make(map[int]map[bitset.AttrSet]*partition.Partition),
		cc:       make(map[int]map[bitset.AttrSet]bitset.AttrSet),
		cs:       make(map[int]map[bitset.AttrSet]*bitset.PairSet),
		result:   &Result{},
	}
	d.scratch = make([]*partition.Scratch, d.workers)
	for i := range d.scratch {
		d.scratch[i] = partition.NewScratch()
	}
	for a := 0; a < d.numAttrs; a++ {
		d.all = d.all.Add(a)
	}
	return d
}

// run executes FASTOD with the full candidate-set machinery (Algorithms 1-4).
func (d *discoverer) run() {
	empty := bitset.AttrSet(0)
	d.parts[0] = map[bitset.AttrSet]*partition.Partition{empty: partition.FromConstant(d.enc.NumRows())}
	d.cc[0] = map[bitset.AttrSet]bitset.AttrSet{empty: d.all}
	d.cs[0] = map[bitset.AttrSet]*bitset.PairSet{empty: bitset.NewPairSet()}

	level := d.firstLevel()
	l := 1
	for len(level) > 0 && (d.opts.MaxLevel <= 0 || l <= d.opts.MaxLevel) {
		levelStart := time.Now()
		stat := LevelStat{Level: l, Nodes: len(level)}
		d.result.Stats.NodesVisited += len(level)
		d.result.Stats.MaxLevelReached = l

		d.computeODs(level, l, &stat)
		level = d.pruneLevels(level, l)
		next := d.calculateNextLevel(level, l)

		stat.Elapsed = time.Since(levelStart)
		if d.opts.CollectLevelStats {
			d.result.Levels = append(d.result.Levels, stat)
		}
		// Partitions of level l-2 and candidate sets of level l-1 are no
		// longer needed once level l+1 starts.
		delete(d.parts, l-2)
		delete(d.cc, l-1)
		delete(d.cs, l-1)
		level = next
		l++
	}
}

// firstLevel builds the singleton attribute sets and their partitions; the
// per-column partitions are independent and built in parallel.
func (d *discoverer) firstLevel() []bitset.AttrSet {
	level := make([]bitset.AttrSet, 0, d.numAttrs)
	partsArr := make([]*partition.Partition, d.numAttrs)
	parallelFor(d.workers, d.numAttrs, func(_, a int) {
		partsArr[a] = partition.FromColumn(d.enc.Column(a), d.enc.Cardinality[a])
	})
	d.parts[1] = make(map[bitset.AttrSet]*partition.Partition, d.numAttrs)
	for a := 0; a < d.numAttrs; a++ {
		s := bitset.NewAttrSet(a)
		level = append(level, s)
		d.parts[1][s] = partsArr[a]
	}
	return level
}

// computeODs is Algorithm 3: it derives the candidate sets C+c(X) and C+s(X)
// for every node of the level, validates the candidate ODs, and emits the
// minimal ones.
//
// Both passes of the algorithm only read previous-level state (ccPrev/csPrev,
// the partition maps) plus the node's own candidate sets, so the per-node
// work is sharded across the worker pool: each node writes its results into
// slots indexed by its position in the level (no locks, no shared maps), and
// the level barrier below merges them back deterministically.
func (d *discoverer) computeODs(level []bitset.AttrSet, l int, stat *LevelStat) {
	ccPrev := d.cc[l-1]
	csPrev := d.cs[l-1]
	n := len(level)
	ccArr := make([]bitset.AttrSet, n)
	csArr := make([]*bitset.PairSet, n)
	emitted := make([]emitBuffer, n)
	shards := make([]checkShard, d.workers)

	parallelFor(d.workers, n, func(wk, i int) {
		x := level[i]
		sh := &shards[wk]

		// Pass 1 (lines 1-8): candidate sets from the previous level.
		cc := d.all
		x.ForEach(func(a int) {
			cc = cc.Intersect(ccPrev[x.Remove(a)])
		})
		var cs *bitset.PairSet
		switch {
		case l == 2:
			attrs := x.Attrs()
			cs = bitset.NewPairSet()
			cs.Add(bitset.NewPair(attrs[0], attrs[1]))
		case l > 2:
			union := bitset.NewPairSet()
			x.ForEach(func(c int) {
				union = union.Union(csPrev[x.Remove(c)])
			})
			cs = bitset.NewPairSet()
			for _, p := range union.Pairs() {
				keep := true
				x.Diff(p.AsSet()).ForEach(func(dAttr int) {
					if !keep {
						return
					}
					if !csPrev[x.Remove(dAttr)].Contains(p) {
						keep = false
					}
				})
				if keep {
					cs.Add(p)
				}
			}
		default:
			cs = bitset.NewPairSet()
		}

		// Pass 2 (lines 9-25): validation and emission.

		// Constancy candidates X\A: [] ↦ A for A ∈ X ∩ C+c(X) (Lemma 7).
		for _, a := range x.Intersect(cc).Attrs() {
			ctx := x.Remove(a)
			if d.checkConstancy(ctx, x, sh) {
				d.bufferOD(&emitted[i], canonical.NewConstancy(ctx, a))
				cc = cc.Remove(a)
				cc = cc.Intersect(x) // remove all B ∈ R \ X (line 14)
			}
		}

		// Order-compatibility candidates X\{A,B}: A ~ B for {A,B} ∈ C+s(X)
		// (Lemma 8).
		for _, p := range cs.Pairs() {
			a, b := p.A, p.B
			if !ccPrev[x.Remove(b)].Contains(a) || !ccPrev[x.Remove(a)].Contains(b) {
				cs.Remove(p) // line 19: constancy in a sub-context makes it non-minimal
				continue
			}
			ctx := x.Remove(a).Remove(b)
			valid, minimal := d.checkOrderCompat(ctx, a, b, sh)
			if valid {
				if minimal {
					d.bufferOD(&emitted[i], canonical.NewOrderCompatible(ctx, a, b))
				}
				cs.Remove(p) // line 22
			}
		}

		ccArr[i] = cc
		csArr[i] = cs
	})

	// Level barrier: fold worker counters into the run totals, emit buffered
	// ODs in node order, and publish the per-node candidate sets as the maps
	// the next level's derivations read.
	d.mergeShards(shards)
	d.flushEmits(emitted, stat)
	ccCur := make(map[bitset.AttrSet]bitset.AttrSet, n)
	csCur := make(map[bitset.AttrSet]*bitset.PairSet, n)
	for i, x := range level {
		ccCur[x] = ccArr[i]
		csCur[x] = csArr[i]
	}
	d.cc[l] = ccCur
	d.cs[l] = csCur
}

// checkConstancy validates X\A: [] ↦ A using the partition-error criterion of
// Section 4.6: the FD holds iff e(Π_ctx) == e(Π_x), because Π_x refines
// Π_ctx. When the context is a superkey the OD holds trivially (Lemma 12) and
// the comparison is skipped under key pruning. Counters go to the calling
// worker's shard; the partition maps are read-only during a level.
func (d *discoverer) checkConstancy(ctx, x bitset.AttrSet, sh *checkShard) bool {
	sh.fdChecks++
	ctxPart := d.parts[ctx.Len()][ctx]
	if !d.opts.DisableKeyPruning && ctxPart.IsSuperkey() {
		sh.keyPrunes++
		return true
	}
	return ctxPart.Error() == d.parts[x.Len()][x].Error()
}

// checkOrderCompat validates X\{A,B}: A ~ B by scanning the equivalence
// classes of the context partition for swaps. It returns (valid, minimal):
// when the context is a superkey the OD is valid but never minimal
// (Lemma 13), so it is removed from the candidate set without being emitted.
func (d *discoverer) checkOrderCompat(ctx bitset.AttrSet, a, b int, sh *checkShard) (valid, minimal bool) {
	sh.swapChecks++
	ctxPart := d.parts[ctx.Len()][ctx]
	if !d.opts.DisableKeyPruning && ctxPart.IsSuperkey() {
		sh.keyPrunes++
		return true, false
	}
	colA, colB := d.enc.Column(a), d.enc.Column(b)
	if d.opts.NaiveSwapCheck {
		return !ctxPart.HasSwapNaive(colA, colB), true
	}
	return !ctxPart.HasSwap(colA, colB), true
}

// pruneLevels is Algorithm 4: nodes whose candidate sets are both empty can
// no longer contribute minimal ODs at any superset (Lemma 11) and are removed
// from the level before the next level is generated.
func (d *discoverer) pruneLevels(level []bitset.AttrSet, l int) []bitset.AttrSet {
	if l < 2 || d.opts.DisableNodePruning {
		return level
	}
	ccCur := d.cc[l]
	csCur := d.cs[l]
	kept := level[:0]
	for _, x := range level {
		if ccCur[x].IsEmpty() && csCur[x].IsEmpty() {
			d.result.Stats.NodesPruned++
			continue
		}
		kept = append(kept, x)
	}
	return kept
}

// calculateNextLevel is Algorithm 2: it joins pairs of nodes that share all
// but one attribute (prefix blocks), keeps only candidates whose every
// immediate subset survived at the current level, and derives the new node's
// partition as the product of the two generating nodes' partitions.
func (d *discoverer) calculateNextLevel(level []bitset.AttrSet, l int) []bitset.AttrSet {
	if len(level) == 0 {
		return nil
	}
	present := make(map[bitset.AttrSet]bool, len(level))
	for _, x := range level {
		present[x] = true
	}
	// Prefix blocks: nodes that agree on everything except their largest
	// attribute. Sorting the block members keeps generation deterministic.
	blocks := make(map[bitset.AttrSet][]int)
	for _, x := range level {
		attrs := x.Attrs()
		last := attrs[len(attrs)-1]
		prefix := x.Remove(last)
		blocks[prefix] = append(blocks[prefix], last)
	}
	prefixes := make([]bitset.AttrSet, 0, len(blocks))
	for prefix := range blocks {
		prefixes = append(prefixes, prefix)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })

	// Enumerate the surviving joins sequentially (cheap bit-set work), then
	// compute the partition products — the dominant cost of level generation —
	// in parallel, each worker reusing its own scratch buffer.
	curParts := d.parts[l]
	next := make([]bitset.AttrSet, 0)
	type join struct{ left, right *partition.Partition }
	joins := make([]join, 0)
	for _, prefix := range prefixes {
		members := blocks[prefix]
		sort.Ints(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b, c := members[i], members[j]
				x := prefix.Add(b).Add(c)
				if !allSubsetsPresent(x, present) {
					continue
				}
				next = append(next, x)
				joins = append(joins, join{curParts[prefix.Add(b)], curParts[prefix.Add(c)]})
			}
		}
	}
	partsArr := make([]*partition.Partition, len(next))
	parallelFor(d.workers, len(next), func(wk, i int) {
		partsArr[i] = joins[i].left.ProductWith(joins[i].right, d.scratch[wk])
	})
	nextParts := make(map[bitset.AttrSet]*partition.Partition, len(next))
	for i, x := range next {
		nextParts[x] = partsArr[i]
	}
	d.parts[l+1] = nextParts
	return next
}

func allSubsetsPresent(x bitset.AttrSet, present map[bitset.AttrSet]bool) bool {
	ok := true
	x.ForEach(func(a int) {
		if ok && !present[x.Remove(a)] {
			ok = false
		}
	})
	return ok
}

// runNoPruning enumerates the full set lattice level by level and validates
// every candidate OD without any minimality reasoning. It reproduces the
// "FASTOD-No Pruning" configuration of Figure 6: the output contains every
// valid OD, including all the redundant ones. The per-node validation uses
// the same sharded worker pool as the pruned traversal.
func (d *discoverer) runNoPruning() {
	empty := bitset.AttrSet(0)
	d.parts[0] = map[bitset.AttrSet]*partition.Partition{empty: partition.FromConstant(d.enc.NumRows())}

	level := d.firstLevel()
	l := 1
	for len(level) > 0 && (d.opts.MaxLevel <= 0 || l <= d.opts.MaxLevel) {
		levelStart := time.Now()
		stat := LevelStat{Level: l, Nodes: len(level)}
		d.result.Stats.NodesVisited += len(level)
		d.result.Stats.MaxLevelReached = l

		emitted := make([]emitBuffer, len(level))
		shards := make([]checkShard, d.workers)
		parallelFor(d.workers, len(level), func(wk, i int) {
			x := level[i]
			sh := &shards[wk]
			attrs := x.Attrs()
			for _, a := range attrs {
				ctx := x.Remove(a)
				if d.checkConstancy(ctx, x, sh) {
					d.bufferOD(&emitted[i], canonical.NewConstancy(ctx, a))
				}
			}
			if l >= 2 {
				for p := 0; p < len(attrs); p++ {
					for q := p + 1; q < len(attrs); q++ {
						a, b := attrs[p], attrs[q]
						ctx := x.Remove(a).Remove(b)
						if valid, _ := d.checkOrderCompat(ctx, a, b, sh); valid {
							d.bufferOD(&emitted[i], canonical.NewOrderCompatible(ctx, a, b))
						}
					}
				}
			}
		})
		d.mergeShards(shards)
		d.flushEmits(emitted, &stat)

		next := d.calculateNextLevel(level, l)
		stat.Elapsed = time.Since(levelStart)
		if d.opts.CollectLevelStats {
			d.result.Levels = append(d.result.Levels, stat)
		}
		delete(d.parts, l-2)
		level = next
		l++
	}
}
