package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/lattice"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Discover runs FASTOD with a background context; see DiscoverContext.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext runs FASTOD (Algorithm 1 of the paper) over an encoded
// relation instance and returns the complete, minimal set of canonical ODs
// that hold, or — with Options.DisablePruning — every valid OD, minimal or
// not. The context and Options.Budget are checked cooperatively at level
// barriers and between parallel chunk handouts; a cancelled or over-budget
// run returns the ODs discovered so far with Stats.Interrupted set rather
// than an error.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil {
		return nil, fmt.Errorf("core: nil relation")
	}
	if enc.NumCols() == 0 {
		return nil, fmt.Errorf("core: relation has no columns")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("core: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	start := time.Now()
	d, err := newDiscoverer(ctx, enc, opts)
	if err != nil {
		return nil, err
	}
	if opts.DisablePruning {
		d.runNoPruning()
	} else {
		d.run()
	}
	res := d.result
	if !opts.CountOnly {
		canonical.Sort(res.ODs)
		res.Counts = canonical.CountByKind(res.ODs)
	}
	res.Elapsed = time.Since(start)
	res.ColumnNames = append([]string(nil), enc.ColumnNames...)
	return res, nil
}

// discoverer carries the per-run state of the level-wise traversal. The
// traversal itself — node generation, partition products and retention, the
// worker pool — is owned by the shared lattice engine; this type contributes
// FASTOD's candidate-set bookkeeping (Algorithms 3 and 4) through the
// engine's per-level visit callback.
type discoverer struct {
	enc  *relation.Encoded
	opts Options

	numAttrs int
	all      bitset.AttrSet // the full schema R
	eng      *lattice.Engine

	// Candidate sets per level: only the last two levels are retained. The
	// maps are written solely at level barriers and are read-only while a
	// level's nodes are being processed in parallel.
	cc map[int]map[bitset.AttrSet]bitset.AttrSet
	cs map[int]map[bitset.AttrSet]*bitset.PairSet

	// pending is the LevelStat of the level currently being visited; the
	// engine's OnLevelEnd hook stamps its elapsed time (which includes
	// next-level generation, as before the engine extraction).
	pending *LevelStat

	result *Result
}

func newDiscoverer(ctx context.Context, enc *relation.Encoded, opts Options) (*discoverer, error) {
	d := &discoverer{
		enc:      enc,
		opts:     opts,
		numAttrs: enc.NumCols(),
		cc:       make(map[int]map[bitset.AttrSet]bitset.AttrSet),
		cs:       make(map[int]map[bitset.AttrSet]*bitset.PairSet),
		result:   &Result{},
	}
	eng, err := lattice.New(enc, lattice.Config{
		Ctx:        ctx,
		Workers:    opts.Workers,
		MaxLevel:   opts.MaxLevel,
		Budget:     opts.Budget,
		Store:      opts.Partitions,
		OnLevelEnd: d.levelEnd,
		OnProgress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	d.eng = eng
	d.all = eng.All()
	return d, nil
}

// levelEnd stamps the pending level's wall-clock time once the engine has
// finished generating its successor level.
func (d *discoverer) levelEnd(_ int, elapsed time.Duration) {
	if d.pending == nil {
		return
	}
	d.pending.Elapsed = elapsed
	if d.opts.CollectLevelStats {
		d.result.Levels = append(d.result.Levels, *d.pending)
	}
	d.pending = nil
}

// finish folds the engine's traversal counters into the result.
func (d *discoverer) finish() {
	st := d.eng.Stats()
	d.result.Stats.NodesVisited = st.NodesVisited
	d.result.Stats.MaxLevelReached = st.MaxLevelReached
	d.result.Stats.PartitionHits = st.PartitionHits
	d.result.Stats.PartitionMisses = st.PartitionMisses
	d.result.Stats.Interrupted = st.Interrupted
}

// run executes FASTOD with the full candidate-set machinery (Algorithms 1-4).
func (d *discoverer) run() {
	empty := bitset.AttrSet(0)
	d.cc[0] = map[bitset.AttrSet]bitset.AttrSet{empty: d.all}
	d.cs[0] = map[bitset.AttrSet]*bitset.PairSet{empty: bitset.NewPairSet()}

	d.eng.Run(func(l int, level []bitset.AttrSet) []bitset.AttrSet {
		stat := LevelStat{Level: l, Nodes: len(level)}
		d.pending = &stat
		d.computeODs(level, l, &stat)
		if d.eng.Interrupted() {
			// The level was cut short: the ODs found so far are already
			// buffered into the result, but the per-node candidate sets are
			// incomplete, so no pruning decision may be taken. The engine
			// stops the traversal before generating another level.
			return level
		}
		kept := d.pruneLevels(level, l)
		// Candidate sets of level l-1 are no longer needed once level l+1
		// starts.
		delete(d.cc, l-1)
		delete(d.cs, l-1)
		return kept
	})
	d.finish()
}

// computeODs is Algorithm 3: it derives the candidate sets C+c(X) and C+s(X)
// for every node of the level, validates the candidate ODs, and emits the
// minimal ones.
//
// Both passes of the algorithm only read previous-level state (ccPrev/csPrev,
// the engine's partition window) plus the node's own candidate sets, so the
// per-node work is sharded across the worker pool: each node writes its
// results into slots indexed by its position in the level (no locks, no
// shared maps), and the level barrier below merges them back
// deterministically.
func (d *discoverer) computeODs(level []bitset.AttrSet, l int, stat *LevelStat) {
	ccPrev := d.cc[l-1]
	csPrev := d.cs[l-1]
	n := len(level)
	ccArr := make([]bitset.AttrSet, n)
	csArr := make([]*bitset.PairSet, n)
	emitted := make([]emitBuffer, n)
	shards := make([]checkShard, d.eng.Workers())

	d.eng.ParallelFor(n, func(wk, i int) {
		x := level[i]
		sh := &shards[wk]

		// Pass 1 (lines 1-8): candidate sets from the previous level.
		cc := d.all
		x.ForEach(func(a int) {
			cc = cc.Intersect(ccPrev[x.Remove(a)])
		})
		var cs *bitset.PairSet
		switch {
		case l == 2:
			attrs := x.Attrs()
			cs = bitset.NewPairSet()
			cs.Add(bitset.NewPair(attrs[0], attrs[1]))
		case l > 2:
			union := bitset.NewPairSet()
			x.ForEach(func(c int) {
				union = union.Union(csPrev[x.Remove(c)])
			})
			cs = bitset.NewPairSet()
			for _, p := range union.Pairs() {
				keep := true
				x.Diff(p.AsSet()).ForEach(func(dAttr int) {
					if !keep {
						return
					}
					if !csPrev[x.Remove(dAttr)].Contains(p) {
						keep = false
					}
				})
				if keep {
					cs.Add(p)
				}
			}
		default:
			cs = bitset.NewPairSet()
		}

		// Pass 2 (lines 9-25): validation and emission.

		// Constancy candidates X\A: [] ↦ A for A ∈ X ∩ C+c(X) (Lemma 7).
		for _, a := range x.Intersect(cc).Attrs() {
			ctx := x.Remove(a)
			if d.checkConstancy(ctx, x, sh) {
				d.bufferOD(&emitted[i], canonical.NewConstancy(ctx, a))
				cc = cc.Remove(a)
				cc = cc.Intersect(x) // remove all B ∈ R \ X (line 14)
			}
		}

		// Order-compatibility candidates X\{A,B}: A ~ B for {A,B} ∈ C+s(X)
		// (Lemma 8).
		for _, p := range cs.Pairs() {
			a, b := p.A, p.B
			if !ccPrev[x.Remove(b)].Contains(a) || !ccPrev[x.Remove(a)].Contains(b) {
				cs.Remove(p) // line 19: constancy in a sub-context makes it non-minimal
				continue
			}
			ctx := x.Remove(a).Remove(b)
			valid, minimal := d.checkOrderCompat(ctx, a, b, sh, d.eng.Scratch(wk))
			if valid {
				if minimal {
					d.bufferOD(&emitted[i], canonical.NewOrderCompatible(ctx, a, b))
				}
				cs.Remove(p) // line 22
			}
		}

		ccArr[i] = cc
		csArr[i] = cs
	})

	// Level barrier: fold worker counters into the run totals, emit buffered
	// ODs in node order, and publish the per-node candidate sets as the maps
	// the next level's derivations read.
	d.mergeShards(shards)
	d.flushEmits(emitted, stat)
	ccCur := make(map[bitset.AttrSet]bitset.AttrSet, n)
	csCur := make(map[bitset.AttrSet]*bitset.PairSet, n)
	for i, x := range level {
		ccCur[x] = ccArr[i]
		csCur[x] = csArr[i]
	}
	d.cc[l] = ccCur
	d.cs[l] = csCur
}

// checkConstancy validates X\A: [] ↦ A using the partition-error criterion of
// Section 4.6: the FD holds iff e(Π_ctx) == e(Π_x), because Π_x refines
// Π_ctx. When the context is a superkey the OD holds trivially (Lemma 12) and
// the comparison is skipped under key pruning. Counters go to the calling
// worker's shard; the engine's partition window is read-only during a level.
func (d *discoverer) checkConstancy(ctx, x bitset.AttrSet, sh *checkShard) bool {
	sh.fdChecks++
	ctxPart := d.eng.Partition(ctx)
	if !d.opts.DisableKeyPruning && ctxPart.IsSuperkey() {
		sh.keyPrunes++
		return true
	}
	return ctxPart.Error() == d.eng.Partition(x).Error()
}

// checkOrderCompat validates X\{A,B}: A ~ B by scanning the equivalence
// classes of the context partition for swaps, using the calling worker's
// engine scratch so the radix-sorted check allocates nothing. It returns
// (valid, minimal): when the context is a superkey the OD is valid but never
// minimal (Lemma 13), so it is removed from the candidate set without being
// emitted.
func (d *discoverer) checkOrderCompat(ctx bitset.AttrSet, a, b int, sh *checkShard, s *partition.Scratch) (valid, minimal bool) {
	sh.swapChecks++
	ctxPart := d.eng.Partition(ctx)
	if !d.opts.DisableKeyPruning && ctxPart.IsSuperkey() {
		sh.keyPrunes++
		return true, false
	}
	colA, colB := d.enc.Column(a), d.enc.Column(b)
	if d.opts.NaiveSwapCheck {
		return !ctxPart.HasSwapNaive(colA, colB), true
	}
	return !ctxPart.HasSwapWith(colA, colB, s), true
}

// pruneLevels is Algorithm 4: nodes whose candidate sets are both empty can
// no longer contribute minimal ODs at any superset (Lemma 11) and are removed
// from the level before the engine generates the next one.
func (d *discoverer) pruneLevels(level []bitset.AttrSet, l int) []bitset.AttrSet {
	if l < 2 || d.opts.DisableNodePruning {
		return level
	}
	ccCur := d.cc[l]
	csCur := d.cs[l]
	kept := level[:0]
	for _, x := range level {
		if ccCur[x].IsEmpty() && csCur[x].IsEmpty() {
			d.result.Stats.NodesPruned++
			continue
		}
		kept = append(kept, x)
	}
	return kept
}

// runNoPruning enumerates the full set lattice level by level and validates
// every candidate OD without any minimality reasoning. It reproduces the
// "FASTOD-No Pruning" configuration of Figure 6: the output contains every
// valid OD, including all the redundant ones. The per-node validation uses
// the same sharded worker pool as the pruned traversal.
func (d *discoverer) runNoPruning() {
	d.eng.Run(func(l int, level []bitset.AttrSet) []bitset.AttrSet {
		stat := LevelStat{Level: l, Nodes: len(level)}
		d.pending = &stat

		emitted := make([]emitBuffer, len(level))
		shards := make([]checkShard, d.eng.Workers())
		d.eng.ParallelFor(len(level), func(wk, i int) {
			x := level[i]
			sh := &shards[wk]
			attrs := x.Attrs()
			for _, a := range attrs {
				ctx := x.Remove(a)
				if d.checkConstancy(ctx, x, sh) {
					d.bufferOD(&emitted[i], canonical.NewConstancy(ctx, a))
				}
			}
			if l >= 2 {
				for p := 0; p < len(attrs); p++ {
					for q := p + 1; q < len(attrs); q++ {
						a, b := attrs[p], attrs[q]
						ctx := x.Remove(a).Remove(b)
						if valid, _ := d.checkOrderCompat(ctx, a, b, sh, d.eng.Scratch(wk)); valid {
							d.bufferOD(&emitted[i], canonical.NewOrderCompatible(ctx, a, b))
						}
					}
				}
			}
		})
		d.mergeShards(shards)
		d.flushEmits(emitted, &stat)
		return level
	})
	d.finish()
}
