package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/canonical"
)

// The per-level work of FASTOD — candidate-set derivation, OD validation and
// partition products — is embarrassingly parallel: every lattice node of a
// level only reads state produced by previous levels. The engine therefore
// shards each level's nodes across a small worker pool and merges the
// per-worker results at a level barrier. All merge points are deterministic
// (per-node output slots, counter addition in worker order), so a parallel
// run is byte-identical to a sequential one.

// resolveWorkers maps Options.Workers onto a concrete worker count:
// 0 selects runtime.GOMAXPROCS(0), anything below 1 is clamped to 1.
func resolveWorkers(requested int) int {
	if requested == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// parallelFor runs fn for every item index in [0, n) using at most w
// goroutines. Items are handed out one at a time through an atomic cursor so
// that uneven per-item costs (partition sizes vary wildly across nodes)
// balance out without any up-front partitioning. fn receives the worker index
// (0..w-1), which callers use to address per-worker scratch buffers and
// counter shards without locks, and the item index, which callers use to
// write results into per-item output slots.
//
// With w <= 1 or a single item the call degenerates to an inline loop with no
// goroutines — the sequential path of the engine.
func parallelFor(w, n int, fn func(worker, item int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
}

// checkShard accumulates the validation counters of one worker during a
// level. Shards are padded to a cache line so that concurrent increments by
// neighbouring workers do not false-share; they are summed into Result.Stats
// at the level barrier (addition commutes, so totals match the sequential
// run exactly).
type checkShard struct {
	fdChecks   int
	swapChecks int
	keyPrunes  int
	_          [40]byte
}

// mergeShards folds per-worker validation counters into the run totals.
func (d *discoverer) mergeShards(shards []checkShard) {
	for i := range shards {
		d.result.Stats.FDChecks += shards[i].fdChecks
		d.result.Stats.SwapChecks += shards[i].swapChecks
		d.result.Stats.KeyPrunes += shards[i].keyPrunes
	}
}

// emitBuffer collects the ODs discovered at a single lattice node. Each node
// owns one buffer (indexed by its position in the level), so workers never
// contend; buffers are flushed in node order at the level barrier, which
// keeps the emission order identical to the sequential traversal. In
// CountOnly mode only the per-kind counters are kept, so the no-pruning runs
// (whose OD counts explode into the millions) stay within memory budget.
type emitBuffer struct {
	constancy   int
	orderCompat int
	ods         []canonical.OD
}

// bufferOD parks one discovered OD in a node's emission buffer.
func (d *discoverer) bufferOD(buf *emitBuffer, od canonical.OD) {
	if od.Kind == canonical.Constancy {
		buf.constancy++
	} else {
		buf.orderCompat++
	}
	if !d.opts.CountOnly {
		buf.ods = append(buf.ods, od)
	}
}

// flushEmits merges the per-node emission buffers into the result in node
// order — the same order the sequential traversal emits in.
func (d *discoverer) flushEmits(bufs []emitBuffer, stat *LevelStat) {
	for i := range bufs {
		b := &bufs[i]
		stat.Constancy += b.constancy
		stat.OrderCompat += b.orderCompat
		d.result.Counts.Constancy += b.constancy
		d.result.Counts.OrderCompat += b.orderCompat
		d.result.Counts.Total += b.constancy + b.orderCompat
		d.result.ODs = append(d.result.ODs, b.ods...)
	}
}
