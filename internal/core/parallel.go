package core

import (
	"repro/internal/canonical"
)

// The worker pool and node scheduling live in internal/lattice since the
// engine extraction; this file keeps FASTOD's deterministic merge machinery:
// per-worker counter shards and per-node emission buffers that are folded
// into the result at node completion, so a parallel run is byte-identical to
// a sequential one under either scheduler.

// checkShard accumulates the validation counters of one worker across the
// run. Shards are padded to a cache line so that concurrent increments by
// neighbouring workers do not false-share; they are summed into Result.Stats
// at finish (addition commutes, so totals match the sequential run exactly).
type checkShard struct {
	fdChecks   int
	swapChecks int
	keyPrunes  int
	_          [40]byte
}

// mergeShards folds per-worker validation counters into the run totals.
func (d *discoverer) mergeShards(shards []checkShard) {
	for i := range shards {
		d.result.Stats.FDChecks += shards[i].fdChecks
		d.result.Stats.SwapChecks += shards[i].swapChecks
		d.result.Stats.KeyPrunes += shards[i].keyPrunes
	}
}

// emitBuffer collects the ODs discovered at a single lattice node. Each node
// owns one stack-local buffer, so workers never contend while validating;
// the buffer is merged under the discoverer's mutex when the node completes
// (emission order is schedule-dependent, the final sort restores it). In
// CountOnly mode only the per-kind counters are kept, so the no-pruning runs
// (whose OD counts explode into the millions) stay within memory budget.
type emitBuffer struct {
	constancy   int
	orderCompat int
	ods         []canonical.OD
}

// bufferOD parks one discovered OD in a node's emission buffer.
func (d *discoverer) bufferOD(buf *emitBuffer, od canonical.OD) {
	if od.Kind == canonical.Constancy {
		buf.constancy++
	} else {
		buf.orderCompat++
	}
	if !d.opts.CountOnly {
		buf.ods = append(buf.ods, od)
	}
}

// flushEmits merges the per-node emission buffers into the result in node
// order — the same order the sequential traversal emits in.
func (d *discoverer) flushEmits(bufs []emitBuffer, stat *LevelStat) {
	for i := range bufs {
		b := &bufs[i]
		stat.Constancy += b.constancy
		stat.OrderCompat += b.orderCompat
		d.result.Counts.Constancy += b.constancy
		d.result.Counts.OrderCompat += b.orderCompat
		d.result.Counts.Total += b.constancy + b.orderCompat
		d.result.ODs = append(d.result.ODs, b.ods...)
	}
}
