package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/datagen"
	"repro/internal/relation"
)

func encode(t *testing.T, r *relation.Relation) *relation.Encoded {
	t.Helper()
	enc, err := relation.Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return enc
}

func discover(t *testing.T, enc *relation.Encoded, opts Options) *Result {
	t.Helper()
	res, err := Discover(enc, opts)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	return res
}

func TestDiscoverInputValidation(t *testing.T) {
	if _, err := Discover(nil, Options{}); err == nil {
		t.Error("nil relation must be rejected")
	}
	empty := &relation.Encoded{}
	if _, err := Discover(empty, Options{}); err == nil {
		t.Error("zero-column relation must be rejected")
	}
}

func TestDiscoverTable1(t *testing.T) {
	enc := encode(t, datagen.Employees())
	idx := map[string]int{}
	for i, n := range enc.ColumnNames {
		idx[n] = i
	}
	res := discover(t, enc, Options{})
	if len(res.ODs) == 0 {
		t.Fatal("expected ODs on Table 1")
	}
	if res.Counts.Total != len(res.ODs) {
		t.Errorf("Counts.Total = %d, len(ODs) = %d", res.Counts.Total, len(res.ODs))
	}
	if res.Counts.Constancy+res.Counts.OrderCompat != res.Counts.Total {
		t.Errorf("count breakdown inconsistent: %+v", res.Counts)
	}

	// Every reported OD holds and is non-trivial.
	for _, od := range res.ODs {
		if od.IsTrivial() {
			t.Errorf("trivial OD reported: %v", od)
		}
		if !canonical.MustHold(enc, od) {
			t.Errorf("reported OD does not hold: %v", od.NamesString(enc.ColumnNames))
		}
	}

	cover := canonical.NewCover(res.ODs)
	sal, tax, perc := idx["sal"], idx["tax"], idx["perc"]
	grp, subg := idx["grp"], idx["subg"]
	yr, bin := idx["yr"], idx["bin"]

	// The paper's running examples (Example 1 mapped through Theorem 5).
	expectations := []struct {
		od   canonical.OD
		want bool
	}{
		{canonical.NewConstancy(bitset.NewAttrSet(sal), tax), true},
		{canonical.NewConstancy(bitset.NewAttrSet(sal), perc), true},
		{canonical.NewConstancy(bitset.NewAttrSet(sal), grp), true},
		{canonical.NewConstancy(bitset.NewAttrSet(sal), subg), true},
		{canonical.NewOrderCompatible(bitset.AttrSet(0), sal, tax), true},
		{canonical.NewOrderCompatible(bitset.NewAttrSet(yr), bin, sal), true},
		{canonical.NewOrderCompatible(bitset.AttrSet(0), sal, subg), false}, // swap (Example 3)
		{canonical.NewConstancy(bitset.NewAttrSet(idx["posit"]), sal), false},
	}
	for _, e := range expectations {
		if got := cover.Implies(e.od); got != e.want {
			t.Errorf("cover.Implies(%v) = %v, want %v", e.od.NamesString(enc.ColumnNames), got, e.want)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	if len(res.ColumnNames) != enc.NumCols() {
		t.Error("ColumnNames not propagated")
	}
}

func TestDiscoverConstantColumn(t *testing.T) {
	enc := encode(t, datagen.FlightLike(60, 6, 1))
	res := discover(t, enc, Options{})
	// flight-like data has a constant year column at index 0: {}: [] -> year
	// must be discovered at level 1 with the empty context.
	found := false
	for _, od := range res.ODs {
		if od.Kind == canonical.Constancy && od.Context.IsEmpty() && od.A == 0 {
			found = true
		}
	}
	if !found {
		t.Error("constant column not reported as {}: [] -> year")
	}
}

func TestDiscoverMatchesReferenceOnRandomRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		rows := 2 + rng.Intn(20)
		cols := 2 + rng.Intn(4) // up to 5 attributes
		var rel *relation.Relation
		if trial%2 == 0 {
			rel = datagen.RandomRelation(rows, cols, 2+rng.Intn(3), rng.Int63())
		} else {
			rel = datagen.RandomStructuredRelation(rows, cols, 3, rng.Int63())
		}
		enc := encode(t, rel)
		want, err := canonical.ReferenceDiscover(enc)
		if err != nil {
			t.Fatal(err)
		}
		got := discover(t, enc, Options{}).ODs
		if len(got) != len(want) {
			t.Fatalf("trial %d (%dx%d): FASTOD found %d ODs, reference %d\n got: %v\nwant: %v",
				trial, rows, cols, len(got), len(want), got, want)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: OD %d differs: got %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestDiscoverCompleteness: the cover of FASTOD's output implies exactly the
// canonical ODs that hold on the instance (Theorem 8).
func TestDiscoverCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(16), 4, 3, rng.Int63())
		enc := encode(t, rel)
		res := discover(t, enc, Options{})
		cover := canonical.NewCover(res.ODs)
		n := enc.NumCols()
		for mask := 0; mask < 1<<uint(n); mask++ {
			ctx := bitset.AttrSet(mask)
			for a := 0; a < n; a++ {
				if ctx.Contains(a) {
					continue
				}
				od := canonical.NewConstancy(ctx, a)
				if canonical.MustHold(enc, od) != cover.Implies(od) {
					t.Fatalf("trial %d: completeness mismatch for %v", trial, od)
				}
				for b := a + 1; b < n; b++ {
					if ctx.Contains(b) {
						continue
					}
					oc := canonical.NewOrderCompatible(ctx, a, b)
					if canonical.MustHold(enc, oc) != cover.Implies(oc) {
						t.Fatalf("trial %d: completeness mismatch for %v", trial, oc)
					}
				}
			}
		}
	}
}

// TestDiscoverMinimality: no reported OD is implied by the others.
func TestDiscoverMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(16), 4, 3, rng.Int63())
		enc := encode(t, rel)
		res := discover(t, enc, Options{})
		minimized := canonical.Minimize(res.ODs)
		if len(minimized) != len(res.ODs) {
			t.Fatalf("trial %d: output is not minimal: %d ODs reduce to %d", trial, len(res.ODs), len(minimized))
		}
	}
}

func TestDiscoverNoPruningSupersetAndMinimization(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(12), 4, 3, rng.Int63())
		enc := encode(t, rel)
		minimal := discover(t, enc, Options{})
		all := discover(t, enc, Options{DisablePruning: true})

		if all.Counts.Total < minimal.Counts.Total {
			t.Fatalf("trial %d: no-pruning found fewer ODs (%d) than pruned (%d)",
				trial, all.Counts.Total, minimal.Counts.Total)
		}
		// Every OD in the un-pruned output must hold; every minimal OD must be
		// present in the un-pruned output.
		allSet := make(map[canonical.OD]bool, len(all.ODs))
		for _, od := range all.ODs {
			if !canonical.MustHold(enc, od) {
				t.Fatalf("trial %d: invalid OD in no-pruning output: %v", trial, od)
			}
			allSet[od] = true
		}
		for _, od := range minimal.ODs {
			if !allSet[od] {
				t.Fatalf("trial %d: minimal OD %v missing from no-pruning output", trial, od)
			}
		}
		// Minimizing the un-pruned output must reproduce the minimal output.
		reduced := canonical.Minimize(all.ODs)
		if len(reduced) != len(minimal.ODs) {
			t.Fatalf("trial %d: Minimize(all) has %d ODs, FASTOD minimal has %d",
				trial, len(reduced), len(minimal.ODs))
		}
		for i := range reduced {
			if !reduced[i].Equal(minimal.ODs[i]) {
				t.Fatalf("trial %d: minimized OD %d = %v, want %v", trial, i, reduced[i], minimal.ODs[i])
			}
		}
	}
}

func TestDiscoverOptionVariantsAgree(t *testing.T) {
	enc := encode(t, datagen.RandomStructuredRelation(40, 5, 3, 123))
	base := discover(t, enc, Options{})
	variants := map[string]Options{
		"naive swap check": {NaiveSwapCheck: true},
		"no key pruning":   {DisableKeyPruning: true},
		"no node pruning":  {DisableNodePruning: true},
		"no key, no node":  {DisableKeyPruning: true, DisableNodePruning: true},
	}
	for name, opts := range variants {
		got := discover(t, enc, opts)
		if len(got.ODs) != len(base.ODs) {
			t.Errorf("%s: %d ODs, want %d", name, len(got.ODs), len(base.ODs))
			continue
		}
		for i := range base.ODs {
			if !got.ODs[i].Equal(base.ODs[i]) {
				t.Errorf("%s: OD %d = %v, want %v", name, i, got.ODs[i], base.ODs[i])
				break
			}
		}
	}
}

func TestDiscoverCountOnly(t *testing.T) {
	enc := encode(t, datagen.Employees())
	full := discover(t, enc, Options{})
	counted := discover(t, enc, Options{CountOnly: true})
	if counted.ODs != nil {
		t.Error("CountOnly must not materialize ODs")
	}
	if counted.Counts != full.Counts {
		t.Errorf("CountOnly counts = %+v, want %+v", counted.Counts, full.Counts)
	}
}

func TestDiscoverMaxLevelAndLevelStats(t *testing.T) {
	enc := encode(t, datagen.Employees())
	res := discover(t, enc, Options{MaxLevel: 2, CollectLevelStats: true})
	if len(res.Levels) != 2 {
		t.Fatalf("levels recorded = %d, want 2", len(res.Levels))
	}
	if res.Levels[0].Level != 1 || res.Levels[1].Level != 2 {
		t.Errorf("level numbering wrong: %+v", res.Levels)
	}
	if res.Levels[1].Nodes == 0 {
		t.Error("level 2 should have nodes")
	}
	// All ODs from a depth-limited run must still hold and have small contexts.
	for _, od := range res.ODs {
		if !canonical.MustHold(enc, od) {
			t.Errorf("OD from depth-limited run does not hold: %v", od)
		}
		if od.Context.Len() > 1 {
			t.Errorf("OD context too large for MaxLevel=2: %v", od)
		}
	}
	// Stats should reflect the traversal.
	if res.Stats.NodesVisited == 0 || res.Stats.MaxLevelReached != 2 {
		t.Errorf("stats = %+v", res.Stats)
	}
	sumC, sumO := 0, 0
	for _, ls := range res.Levels {
		sumC += ls.Constancy
		sumO += ls.OrderCompat
	}
	if sumC != res.Counts.Constancy || sumO != res.Counts.OrderCompat {
		t.Errorf("per-level counts (%d,%d) do not add up to totals %+v", sumC, sumO, res.Counts)
	}
}

func TestDiscoverResultFilters(t *testing.T) {
	enc := encode(t, datagen.Employees())
	res := discover(t, enc, Options{})
	fds := res.ConstancyODs()
	ocs := res.OrderCompatibleODs()
	if len(fds)+len(ocs) != len(res.ODs) {
		t.Errorf("filters lose ODs: %d + %d != %d", len(fds), len(ocs), len(res.ODs))
	}
	for _, od := range fds {
		if od.Kind != canonical.Constancy {
			t.Error("ConstancyODs returned a non-constancy OD")
		}
	}
	for _, od := range ocs {
		if od.Kind != canonical.OrderCompatible {
			t.Error("OrderCompatibleODs returned a constancy OD")
		}
	}
}

func TestDiscoverSingleColumnAndKeyRelation(t *testing.T) {
	// Single constant column.
	rel, err := relation.FromRows("one", []string{"c"}, [][]string{{"5"}, {"5"}, {"5"}})
	if err != nil {
		t.Fatal(err)
	}
	res := discover(t, encode(t, rel), Options{})
	if len(res.ODs) != 1 || !res.ODs[0].Equal(canonical.NewConstancy(bitset.AttrSet(0), 0)) {
		t.Errorf("constant single column ODs = %v", res.ODs)
	}

	// Two-column key relation: each column is a key, so each determines the
	// other, and the pair is order compatible or not depending on the order.
	rel2, err := relation.FromRows("keys", []string{"a", "b"}, [][]string{
		{"1", "30"}, {"2", "20"}, {"3", "10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc2 := encode(t, rel2)
	res2 := discover(t, enc2, Options{})
	cover := canonical.NewCover(res2.ODs)
	if !cover.ImpliesConstancy(bitset.NewAttrSet(0), 1) || !cover.ImpliesConstancy(bitset.NewAttrSet(1), 0) {
		t.Error("key columns must determine each other")
	}
	// a ascending while b descending: no order compatibility at the empty context.
	if cover.ImpliesOrderCompat(bitset.AttrSet(0), 0, 1) {
		t.Error("{}: a ~ b must not hold for reversed orders")
	}
}

func TestDiscoverDateDimQueryOptimizationODs(t *testing.T) {
	enc := encode(t, datagen.DateDim(200))
	idx := map[string]int{}
	for i, n := range enc.ColumnNames {
		idx[n] = i
	}
	res := discover(t, enc, Options{})
	cover := canonical.NewCover(res.ODs)
	// The introduction's motivating ODs: the surrogate key orders the date and
	// the year, and month determines/orders quarter.
	if !cover.ImpliesConstancy(bitset.NewAttrSet(idx["d_date_sk"]), idx["d_year"]) {
		t.Error("{d_date_sk}: [] -> d_year should be implied")
	}
	if !cover.ImpliesOrderCompat(bitset.AttrSet(0), idx["d_date_sk"], idx["d_year"]) {
		t.Error("{}: d_date_sk ~ d_year should be implied")
	}
	if !cover.ImpliesConstancy(bitset.NewAttrSet(idx["d_month"]), idx["d_quarter"]) {
		t.Error("{d_month}: [] -> d_quarter should be implied")
	}
	if !cover.ImpliesOrderCompat(bitset.AttrSet(0), idx["d_month"], idx["d_quarter"]) {
		t.Error("{}: d_month ~ d_quarter should be implied")
	}
	// d_version is constant.
	if !cover.ImpliesConstancy(bitset.AttrSet(0), idx["d_version"]) {
		t.Error("{}: [] -> d_version should be implied")
	}
}
