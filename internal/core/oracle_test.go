package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/tane"
)

// Oracle tests: FASTOD's output is cross-checked against two independent
// implementations — the TANE baseline for the constancy (FD) fragment, and a
// tiny brute-force row-pair checker for the full canonical-OD semantics.
// Discovery runs with Workers: 4 so the oracles also vouch for the parallel
// engine.

// bruteConstancyHolds checks X: [] ↦ A by definition: every pair of rows that
// agrees on all attributes of ctx must agree on a.
func bruteConstancyHolds(enc *relation.Encoded, ctx bitset.AttrSet, a int) bool {
	n := enc.NumRows()
	col := enc.Column(a)
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if rowsAgreeOn(enc, ctx, s, t) && col[s] != col[t] {
				return false
			}
		}
	}
	return true
}

// bruteOrderCompatHolds checks X: A ~ B by definition: no pair of rows that
// agrees on ctx may order one way on A and the opposite way on B (a swap).
func bruteOrderCompatHolds(enc *relation.Encoded, ctx bitset.AttrSet, a, b int) bool {
	n := enc.NumRows()
	colA, colB := enc.Column(a), enc.Column(b)
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if !rowsAgreeOn(enc, ctx, s, t) {
				continue
			}
			da := int(colA[s]) - int(colA[t])
			db := int(colB[s]) - int(colB[t])
			if (da < 0 && db > 0) || (da > 0 && db < 0) {
				return false
			}
		}
	}
	return true
}

func rowsAgreeOn(enc *relation.Encoded, ctx bitset.AttrSet, s, t int) bool {
	agree := true
	ctx.ForEach(func(c int) {
		if agree && enc.Column(c)[s] != enc.Column(c)[t] {
			agree = false
		}
	})
	return agree
}

// bruteHolds dispatches a canonical OD to the row-pair checkers.
func bruteHolds(enc *relation.Encoded, od canonical.OD) bool {
	if od.Kind == canonical.Constancy {
		return bruteConstancyHolds(enc, od.Context, od.A)
	}
	return bruteOrderCompatHolds(enc, od.Context, od.A, od.B)
}

// oracleRelations are small random instances (≤ 6 columns) so the quadratic
// brute force and the exponential context enumeration stay cheap.
func oracleRelations(t *testing.T) []*relation.Encoded {
	t.Helper()
	rng := rand.New(rand.NewSource(2017))
	var out []*relation.Encoded
	for trial := 0; trial < 12; trial++ {
		rows := 5 + rng.Intn(25)
		cols := 2 + rng.Intn(5) // up to 6 attributes
		var rel *relation.Relation
		if trial%2 == 0 {
			rel = datagen.RandomRelation(rows, cols, 2+rng.Intn(4), rng.Int63())
		} else {
			rel = datagen.RandomStructuredRelation(rows, cols, 3, rng.Int63())
		}
		out = append(out, encode(t, rel))
	}
	out = append(out,
		encode(t, datagen.Employees()),
		encode(t, datagen.FlightLike(40, 6, 5)),
	)
	return out
}

// TestOracleConstancyAgainstTANE: the constancy fragment of FASTOD's output
// must be exactly TANE's set of minimal functional dependencies — the two
// implementations share the lattice machinery but none of the OD-specific
// code, so agreement is strong evidence for both.
func TestOracleConstancyAgainstTANE(t *testing.T) {
	for i, enc := range oracleRelations(t) {
		res := discover(t, enc, Options{Workers: 4})
		tres, err := tane.Discover(enc, tane.Options{})
		if err != nil {
			t.Fatalf("relation %d: tane: %v", i, err)
		}
		want := make(map[tane.FD]bool, len(tres.FDs))
		for _, fd := range tres.FDs {
			want[fd] = true
		}
		got := make(map[tane.FD]bool)
		for _, od := range res.ConstancyODs() {
			got[tane.FD{LHS: od.Context, RHS: od.A}] = true
		}
		for fd := range want {
			if !got[fd] {
				t.Errorf("relation %d: TANE FD %v missing from FASTOD constancy ODs", i, fd)
			}
		}
		for fd := range got {
			if !want[fd] {
				t.Errorf("relation %d: FASTOD constancy OD %v not reported by TANE", i, fd)
			}
		}
	}
}

// TestOracleAgainstBruteForce: every emitted OD must hold under the
// brute-force definition (soundness), and the implication cover of the output
// must decide every candidate canonical OD exactly as the brute force does
// (completeness).
func TestOracleAgainstBruteForce(t *testing.T) {
	for i, enc := range oracleRelations(t) {
		res := discover(t, enc, Options{Workers: 4})
		for _, od := range res.ODs {
			if !bruteHolds(enc, od) {
				t.Errorf("relation %d: emitted OD %v fails the brute-force check", i, od)
			}
		}
		cover := canonical.NewCover(res.ODs)
		n := enc.NumCols()
		for mask := 0; mask < 1<<uint(n); mask++ {
			ctx := bitset.AttrSet(mask)
			for a := 0; a < n; a++ {
				if ctx.Contains(a) {
					continue
				}
				od := canonical.NewConstancy(ctx, a)
				if bruteHolds(enc, od) != cover.Implies(od) {
					t.Fatalf("relation %d: constancy mismatch for %v: brute=%v cover=%v",
						i, od, bruteHolds(enc, od), cover.Implies(od))
				}
				for b := a + 1; b < n; b++ {
					if ctx.Contains(b) {
						continue
					}
					oc := canonical.NewOrderCompatible(ctx, a, b)
					if bruteHolds(enc, oc) != cover.Implies(oc) {
						t.Fatalf("relation %d: order-compat mismatch for %v: brute=%v cover=%v",
							i, oc, bruteHolds(enc, oc), cover.Implies(oc))
					}
				}
			}
		}
	}
}
