package advisor

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
)

// dateDimAdvisor discovers ODs over the TPC-DS-style date dimension and
// wraps them in an advisor, the setting of Query 1 in the paper.
func dateDimAdvisor(t *testing.T) (*Advisor, []string) {
	t.Helper()
	rel := datagen.DateDim(3 * 365)
	enc, err := relation.Encode(rel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(enc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(res.ODs, enc.ColumnNames), enc.ColumnNames
}

func TestImpliesListOD(t *testing.T) {
	adv, _ := dateDimAdvisor(t)
	ok, err := adv.ImpliesListOD([]string{"d_date_sk"}, []string{"d_year"})
	if err != nil || !ok {
		t.Errorf("d_date_sk -> d_year = %v, %v", ok, err)
	}
	ok, err = adv.ImpliesListOD([]string{"d_month"}, []string{"d_quarter"})
	if err != nil || !ok {
		t.Errorf("d_month -> d_quarter = %v, %v", ok, err)
	}
	ok, err = adv.ImpliesListOD([]string{"d_quarter"}, []string{"d_month"})
	if err != nil || ok {
		t.Errorf("d_quarter -> d_month = %v, %v (should not be implied)", ok, err)
	}
	if _, err := adv.ImpliesListOD([]string{"bogus"}, []string{"d_year"}); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := adv.ImpliesListOD([]string{"d_year"}, []string{"bogus"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestConstantColumns(t *testing.T) {
	adv, _ := dateDimAdvisor(t)
	constants := adv.ConstantColumns()
	found := false
	for _, c := range constants {
		if c == "d_version" {
			found = true
		}
	}
	if !found {
		t.Errorf("ConstantColumns = %v, want to include d_version", constants)
	}
}

func TestSimplifyOrderBy(t *testing.T) {
	adv, _ := dateDimAdvisor(t)
	// The prefix-based rule drops an attribute when the attributes kept so
	// far already determine it. With the surrogate key first, everything
	// after it is redundant.
	got, err := adv.SimplifyOrderBy([]string{"d_date_sk", "d_year", "d_quarter"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "d_date_sk" {
		t.Errorf("SimplifyOrderBy = %v, want [d_date_sk] (the key determines everything)", got)
	}
	// A constant column is always dropped unless it is first with nothing
	// before it... the empty prefix determines it, so it is dropped too.
	got, err = adv.SimplifyOrderBy([]string{"d_version", "d_year"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "d_year" {
		t.Errorf("SimplifyOrderBy = %v, want [d_year]", got)
	}
	if _, err := adv.SimplifyOrderBy([]string{"bogus"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestSimplifyGroupBy(t *testing.T) {
	adv, _ := dateDimAdvisor(t)
	// GROUP BY d_year, d_quarter, d_month: the quarter is determined by the
	// month, so it can be removed (the FD-based rewrite from the paper).
	got, err := adv.SimplifyGroupBy([]string{"d_year", "d_quarter", "d_month"})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(got, ",")
	if strings.Contains(joined, "d_quarter") {
		t.Errorf("SimplifyGroupBy = %v, want d_quarter removed", got)
	}
	if !strings.Contains(joined, "d_month") {
		t.Errorf("SimplifyGroupBy = %v, must keep d_month", got)
	}
	if _, err := adv.SimplifyGroupBy([]string{"bogus"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestIndexSatisfiesOrderByAndRangeRewrites(t *testing.T) {
	adv, _ := dateDimAdvisor(t)
	ok, err := adv.IndexSatisfiesOrderBy([]string{"d_date_sk"}, []string{"d_year", "d_quarter"})
	if err != nil || !ok {
		t.Errorf("index d_date_sk should satisfy ORDER BY d_year, d_quarter: %v %v", ok, err)
	}
	ok, err = adv.IndexSatisfiesOrderBy([]string{"d_day"}, []string{"d_year"})
	if err != nil || ok {
		t.Errorf("index d_day should not satisfy ORDER BY d_year: %v %v", ok, err)
	}

	rewrites, err := adv.RangeRewrites("d_year")
	if err != nil {
		t.Fatal(err)
	}
	foundSK := false
	for _, r := range rewrites {
		if r == "d_date_sk" {
			foundSK = true
		}
	}
	if !foundSK {
		t.Errorf("RangeRewrites(d_year) = %v, want to include d_date_sk", rewrites)
	}
	if _, err := adv.RangeRewrites("bogus"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestAdvise(t *testing.T) {
	adv, _ := dateDimAdvisor(t)
	suggestions, err := adv.Advise(Query{
		OrderBy:         []string{"d_version", "d_year", "d_quarter", "d_month"},
		GroupBy:         []string{"d_year", "d_quarter", "d_month"},
		RangePredicates: []string{"d_year"},
		Indexes:         [][]string{{"d_date_sk"}, {"d_day"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[SuggestionKind]int{}
	for _, s := range suggestions {
		kinds[s.Kind]++
		if s.Message == "" {
			t.Errorf("suggestion %v has empty message", s.Kind)
		}
	}
	if kinds[DropConstant] == 0 {
		t.Error("expected a drop-constant suggestion for d_version")
	}
	if kinds[SimplifiedOrderBy] == 0 {
		t.Error("expected an order-by simplification")
	}
	if kinds[SimplifiedGroupBy] == 0 {
		t.Error("expected a group-by simplification")
	}
	if kinds[SortElimination] == 0 {
		t.Error("expected a sort-elimination suggestion from the d_date_sk index")
	}
	if kinds[JoinElimination] == 0 {
		t.Error("expected a join-elimination suggestion for the d_year range predicate")
	}

	if _, err := adv.Advise(Query{OrderBy: []string{"bogus"}}); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := adv.Advise(Query{GroupBy: []string{"bogus"}}); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := adv.Advise(Query{RangePredicates: []string{"bogus"}}); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := adv.Advise(Query{OrderBy: []string{"d_year"}, Indexes: [][]string{{"bogus"}}}); err == nil {
		t.Error("unknown index column should error")
	}
}

func TestSuggestionKindString(t *testing.T) {
	for kind, want := range map[SuggestionKind]string{
		DropConstant:      "drop-constant",
		SimplifiedOrderBy: "simplify-order-by",
		SimplifiedGroupBy: "simplify-group-by",
		SortElimination:   "sort-elimination",
		JoinElimination:   "join-elimination",
		SuggestionKind(9): "SuggestionKind(9)",
	} {
		if kind.String() != want {
			t.Errorf("String() = %q, want %q", kind.String(), want)
		}
	}
}

func TestAdvisorOnEmployees(t *testing.T) {
	rel := datagen.Employees()
	enc, err := relation.Encode(rel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(enc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	adv := New(res.ODs, enc.ColumnNames)
	// The index on (yr, sal) satisfies ORDER BY yr, bin — the rewrite from
	// Example 1 of the paper.
	ok, err := adv.IndexSatisfiesOrderBy([]string{"yr", "sal"}, []string{"yr", "bin"})
	if err != nil || !ok {
		t.Errorf("index (yr,sal) should satisfy ORDER BY yr, bin: %v %v", ok, err)
	}
}
