// Package advisor turns a set of discovered order dependencies into concrete
// query-optimization advice, implementing the rewrites the paper's
// introduction motivates with Query 1: simplifying ORDER BY and GROUP BY
// clauses, matching interesting orders to indexes, eliminating sorts, and
// rewriting range predicates on dimension attributes into ranges over
// order-equivalent surrogate keys so that joins can be eliminated.
//
// The advisor only uses the OD cover (implication over the discovered
// canonical ODs); it never rescans the data.
package advisor

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/listod"
)

// Advisor answers rewrite questions against a fixed set of canonical ODs.
type Advisor struct {
	cover *canonical.Cover
	names []string
	index map[string]int
}

// New builds an advisor from discovered canonical ODs and the relation's
// column names.
func New(ods []canonical.OD, columnNames []string) *Advisor {
	idx := make(map[string]int, len(columnNames))
	for i, n := range columnNames {
		idx[n] = i
	}
	return &Advisor{cover: canonical.NewCover(ods), names: columnNames, index: idx}
}

// resolve maps a column name to its index.
func (a *Advisor) resolve(name string) (int, error) {
	if i, ok := a.index[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("advisor: unknown column %q", name)
}

func (a *Advisor) resolveAll(names []string) (listod.Spec, error) {
	out := make(listod.Spec, 0, len(names))
	for _, n := range names {
		i, err := a.resolve(n)
		if err != nil {
			return nil, err
		}
		out = append(out, i)
	}
	return out, nil
}

// ImpliesListOD reports whether the list-based OD "left ↦ right" follows from
// the discovered ODs, by mapping it through Theorem 5 and checking every
// canonical image against the cover.
func (a *Advisor) ImpliesListOD(left, right []string) (bool, error) {
	l, err := a.resolveAll(left)
	if err != nil {
		return false, err
	}
	r, err := a.resolveAll(right)
	if err != nil {
		return false, err
	}
	return a.impliesListOD(l, r), nil
}

func (a *Advisor) impliesListOD(left, right listod.Spec) bool {
	for _, od := range canonical.MapListOD(left, right) {
		if od.IsTrivial() {
			continue
		}
		if !a.cover.Implies(od) {
			return false
		}
	}
	return true
}

// ConstantColumns returns the columns that are constant across the whole
// relation ({}: [] ↦ A); they can be removed from any ORDER BY or GROUP BY.
func (a *Advisor) ConstantColumns() []string {
	var out []string
	for i, name := range a.names {
		if a.cover.ImpliesConstancy(bitset.AttrSet(0), i) {
			out = append(out, name)
		}
	}
	return out
}

// SimplifyOrderBy removes attributes of an ORDER BY list that are redundant:
// an attribute can be dropped when it is constant within every equivalence
// class of the attributes that precede it (then ties on the prefix are also
// ties on the attribute, so the produced order is unchanged). The returned
// list preserves the original order of the surviving attributes.
func (a *Advisor) SimplifyOrderBy(orderBy []string) ([]string, error) {
	spec, err := a.resolveAll(orderBy)
	if err != nil {
		return nil, err
	}
	var kept []string
	var prefix bitset.AttrSet
	for i, attr := range spec {
		if a.cover.ImpliesConstancy(prefix, attr) {
			continue // redundant: determined by the attributes kept so far
		}
		kept = append(kept, orderBy[i])
		prefix = prefix.Add(attr)
	}
	return kept, nil
}

// SimplifyGroupBy removes attributes functionally determined by the remaining
// GROUP BY attributes (the FD-based rewrite that the paper notes optimizers
// already perform, subsumed here by constancy ODs).
func (a *Advisor) SimplifyGroupBy(groupBy []string) ([]string, error) {
	spec, err := a.resolveAll(groupBy)
	if err != nil {
		return nil, err
	}
	removed := make([]bool, len(spec))
	for i, attr := range spec {
		var rest bitset.AttrSet
		for j, other := range spec {
			if i == j || removed[j] {
				continue
			}
			rest = rest.Add(other)
		}
		if a.cover.ImpliesConstancy(rest, attr) {
			removed[i] = true
		}
	}
	var kept []string
	for i, name := range groupBy {
		if !removed[i] {
			kept = append(kept, name)
		}
	}
	return kept, nil
}

// IndexSatisfiesOrderBy reports whether an index sorted on indexColumns also
// delivers the requested ORDER BY, i.e. whether the list OD
// indexColumns ↦ orderBy follows from the discovered dependencies. A true
// result means the sort operator can be removed from the plan.
func (a *Advisor) IndexSatisfiesOrderBy(indexColumns, orderBy []string) (bool, error) {
	return a.ImpliesListOD(indexColumns, orderBy)
}

// RangeRewrites returns the columns K such that a range predicate on the
// given column can be rewritten as a range over K: the OD [K] ↦ [column]
// must follow from the discovered dependencies (K orders the column), which
// is the surrogate-key join-elimination rewrite of Section 1.1. The given
// column itself is excluded.
func (a *Advisor) RangeRewrites(column string) ([]string, error) {
	target, err := a.resolve(column)
	if err != nil {
		return nil, err
	}
	var out []string
	for i, name := range a.names {
		if i == target {
			continue
		}
		if a.impliesListOD(listod.Spec{i}, listod.Spec{target}) {
			out = append(out, name)
		}
	}
	return out, nil
}

// SuggestionKind classifies a piece of advice.
type SuggestionKind int

// Suggestion kinds.
const (
	// DropConstant advises removing a constant column from a clause.
	DropConstant SuggestionKind = iota
	// SimplifiedOrderBy advises replacing the ORDER BY list.
	SimplifiedOrderBy
	// SimplifiedGroupBy advises replacing the GROUP BY list.
	SimplifiedGroupBy
	// SortElimination advises that an index already delivers the ORDER BY.
	SortElimination
	// JoinElimination advises rewriting a range predicate over a surrogate key.
	JoinElimination
)

// String names the suggestion kind.
func (k SuggestionKind) String() string {
	switch k {
	case DropConstant:
		return "drop-constant"
	case SimplifiedOrderBy:
		return "simplify-order-by"
	case SimplifiedGroupBy:
		return "simplify-group-by"
	case SortElimination:
		return "sort-elimination"
	case JoinElimination:
		return "join-elimination"
	default:
		return fmt.Sprintf("SuggestionKind(%d)", int(k))
	}
}

// Suggestion is one piece of advice for a query.
type Suggestion struct {
	Kind    SuggestionKind
	Message string
	// Columns carries the columns the suggestion refers to (the simplified
	// clause, the index, or the rewrite target), depending on the kind.
	Columns []string
}

// Query describes the ordering-relevant parts of a query.
type Query struct {
	OrderBy []string
	GroupBy []string
	// RangePredicates lists columns carrying range predicates (e.g. BETWEEN).
	RangePredicates []string
	// Indexes lists available sorted indexes as column lists.
	Indexes [][]string
}

// Advise produces every applicable suggestion for the query.
func (a *Advisor) Advise(q Query) ([]Suggestion, error) {
	var out []Suggestion

	constants := a.ConstantColumns()
	constantSet := make(map[string]bool, len(constants))
	for _, c := range constants {
		constantSet[c] = true
	}
	for _, col := range append(append([]string{}, q.OrderBy...), q.GroupBy...) {
		if constantSet[col] {
			out = append(out, Suggestion{
				Kind:    DropConstant,
				Message: fmt.Sprintf("column %s is constant and can be removed from ORDER BY / GROUP BY", col),
				Columns: []string{col},
			})
		}
	}

	if len(q.OrderBy) > 0 {
		simplified, err := a.SimplifyOrderBy(q.OrderBy)
		if err != nil {
			return nil, err
		}
		if len(simplified) < len(q.OrderBy) {
			out = append(out, Suggestion{
				Kind:    SimplifiedOrderBy,
				Message: fmt.Sprintf("ORDER BY %s is equivalent to ORDER BY %s", strings.Join(q.OrderBy, ", "), strings.Join(simplified, ", ")),
				Columns: simplified,
			})
		}
		for _, index := range q.Indexes {
			ok, err := a.IndexSatisfiesOrderBy(index, q.OrderBy)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, Suggestion{
					Kind:    SortElimination,
					Message: fmt.Sprintf("index on (%s) already delivers ORDER BY %s; the sort can be removed", strings.Join(index, ", "), strings.Join(q.OrderBy, ", ")),
					Columns: index,
				})
			}
		}
	}

	if len(q.GroupBy) > 0 {
		simplified, err := a.SimplifyGroupBy(q.GroupBy)
		if err != nil {
			return nil, err
		}
		if len(simplified) < len(q.GroupBy) {
			out = append(out, Suggestion{
				Kind:    SimplifiedGroupBy,
				Message: fmt.Sprintf("GROUP BY %s is equivalent to GROUP BY %s", strings.Join(q.GroupBy, ", "), strings.Join(simplified, ", ")),
				Columns: simplified,
			})
		}
	}

	for _, col := range q.RangePredicates {
		rewrites, err := a.RangeRewrites(col)
		if err != nil {
			return nil, err
		}
		if len(rewrites) > 0 {
			out = append(out, Suggestion{
				Kind: JoinElimination,
				Message: fmt.Sprintf("the range predicate on %s can be rewritten as a range over %s (each orders %s), enabling join elimination",
					col, strings.Join(rewrites, " or "), col),
				Columns: rewrites,
			})
		}
	}
	return out, nil
}
