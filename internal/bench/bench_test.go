package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/tane"
)

func TestGenerators(t *testing.T) {
	gens := Generators()
	if len(gens) != 4 {
		t.Fatalf("expected 4 generators, got %d", len(gens))
	}
	for _, g := range gens {
		enc, err := Encode(g, 50, 6, 1)
		if err != nil {
			t.Errorf("%s: Encode: %v", g.Name, err)
			continue
		}
		if enc.NumCols() != 6 {
			t.Errorf("%s: cols = %d", g.Name, enc.NumCols())
		}
	}
	if _, err := GeneratorByName("flight"); err != nil {
		t.Error(err)
	}
	if _, err := GeneratorByName("nope"); err == nil {
		t.Error("expected error for unknown generator")
	}
}

func TestRunnersProduceMeasurements(t *testing.T) {
	gen, err := GeneratorByName("flight")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(gen, 100, 6, 1)
	if err != nil {
		t.Fatal(err)
	}

	mF, err := RunFASTOD(context.Background(), enc, "flight", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mF.Algorithm != AlgFASTOD || mF.Counts.Total == 0 || mF.Rows != 100 || mF.Cols != 6 {
		t.Errorf("FASTOD measurement = %+v", mF)
	}
	mNP, err := RunFASTOD(context.Background(), enc, "flight", core.Options{DisablePruning: true, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if mNP.Algorithm != AlgFASTODNoPruning {
		t.Errorf("no-pruning algorithm label = %q", mNP.Algorithm)
	}
	if mNP.Counts.Total < mF.Counts.Total {
		t.Errorf("no-pruning found fewer ODs (%d) than pruned (%d)", mNP.Counts.Total, mF.Counts.Total)
	}

	mT, err := RunTANE(context.Background(), enc, "flight", tane.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mT.Counts.Constancy != mF.Counts.Constancy {
		t.Errorf("TANE FD count %d != FASTOD constancy count %d", mT.Counts.Constancy, mF.Counts.Constancy)
	}

	mO, err := RunORDER(context.Background(), enc, "flight", lattice.Budget{Timeout: 2 * time.Second, MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if mO.Algorithm != AlgORDER {
		t.Errorf("ORDER measurement = %+v", mO)
	}

	table := FormatTable("smoke", []Measurement{mF, mT, mO, mNP})
	if !strings.Contains(table, "FASTOD") || !strings.Contains(table, "TANE") {
		t.Errorf("FormatTable output missing algorithms:\n%s", table)
	}
}

func TestMeasurementStringMarksBudget(t *testing.T) {
	m := Measurement{Dataset: "x", Algorithm: AlgORDER, TimedOut: true}
	if !strings.Contains(m.String(), "*budget") {
		t.Error("timed-out measurement should be marked")
	}
}

func TestFiguresQuickConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke tests skipped in -short mode")
	}
	cfg := QuickConfig()
	// Shrink further: the goal here is only to exercise every code path.
	cfg.RowScales = []int{100, 200}
	cfg.RowScaleCols = 5
	cfg.ColScales = map[string][]int{"flight": {4, 5}, "hepatitis": {4}, "ncvoter": {4}, "dbtesma": {4}}
	cfg.PruningRowScales = []int{100, 200}
	cfg.PruningColScales = []int{4, 5}
	cfg.LevelCols = 6
	cfg.LevelRows = 100
	cfg.ORDERBudget = lattice.Budget{Timeout: time.Second, MaxNodes: 20000}

	f4, err := Figure4(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	// 3 datasets x 2 row scales x 3 algorithms.
	if len(f4) != 18 {
		t.Errorf("Figure4 measurements = %d, want 18", len(f4))
	}

	f5, err := Figure5(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(f5) != (2+1+1+1)*3 {
		t.Errorf("Figure5 measurements = %d, want 15", len(f5))
	}

	f6, err := Figure6(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(f6) != (2+2)*2 {
		t.Errorf("Figure6 measurements = %d, want 8", len(f6))
	}
	// The un-pruned runs must never find fewer ODs than the pruned runs on
	// the same configuration.
	for i := 0; i+1 < len(f6); i += 2 {
		if f6[i].Algorithm != AlgFASTOD || f6[i+1].Algorithm != AlgFASTODNoPruning {
			t.Fatalf("Figure6 ordering unexpected at %d: %s then %s", i, f6[i].Algorithm, f6[i+1].Algorithm)
		}
		if f6[i+1].Counts.Total < f6[i].Counts.Total {
			t.Errorf("no-pruning count %d < pruned count %d at %d rows/%d cols",
				f6[i+1].Counts.Total, f6[i].Counts.Total, f6[i].Rows, f6[i].Cols)
		}
	}

	f7, err := Figure7(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if len(f7) == 0 || f7[0].Level != 1 {
		t.Errorf("Figure7 levels = %+v", f7)
	}
	out := FormatLevelTable("levels", f7)
	if !strings.Contains(out, "level") {
		t.Errorf("FormatLevelTable output:\n%s", out)
	}

	// Table1 single-shot comparison.
	gen, _ := GeneratorByName("flight")
	enc, err := Encode(gen, 100, 5, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	single, err := Table1(context.Background(), enc, "flight", cfg)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(single) != 3 {
		t.Errorf("Table1 measurements = %d, want 3", len(single))
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	def := DefaultConfig()
	if len(def.RowScales) == 0 || def.RowScaleCols == 0 || len(def.ColScales) != 4 {
		t.Errorf("DefaultConfig incomplete: %+v", def)
	}
	quick := QuickConfig()
	if quick.RowScales[len(quick.RowScales)-1] > def.RowScales[len(def.RowScales)-1] {
		t.Error("quick config should not exceed the default config scales")
	}
}
