package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/tane"
)

// Config scales the experiments. The paper runs on hundreds of thousands of
// tuples and up to 40 attributes on a server-class machine; the defaults here
// finish on a laptop in a few minutes while preserving the curves' shapes.
// Quick mode shrinks them further for use inside `go test -bench`.
type Config struct {
	// Seed makes dataset generation deterministic.
	Seed int64
	// Workers is passed through to Options.Workers for every FASTOD and TANE
	// run (both share the level-parallel lattice engine). DefaultConfig and
	// QuickConfig pin it to 1 (sequential) so the figures stay comparable
	// with the paper's single-threaded measurements; set 0 (all CPUs) or
	// higher explicitly to measure the parallel engine. ORDER remains
	// single-threaded (its depth-first list-lattice search does not go
	// through the engine).
	Workers int
	// ORDERBudget bounds each ORDER run (it is factorial in attributes).
	ORDERBudget lattice.Budget
	// Budget, when non-zero, bounds each FASTOD and TANE run; interrupted
	// runs are reported as partial measurements (TimedOut set), not errors.
	Budget lattice.Budget
	// RowScales lists the tuple counts for the row-scalability experiment
	// (Figure 4), applied to every dataset.
	RowScales []int
	// RowScaleCols is the attribute count used in Figure 4 (10 in the paper).
	RowScaleCols int
	// ColScales lists the attribute counts per dataset for Figure 5.
	ColScales map[string][]int
	// PruningRowScales / PruningColScales configure Figure 6 (flight only).
	PruningRowScales []int
	PruningColScales []int
	// LevelCols / LevelRows configure Figure 7.
	LevelCols int
	LevelRows int
}

// DefaultConfig returns the laptop-scale configuration described in
// EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Seed:         2017,
		Workers:      1,
		ORDERBudget:  lattice.Budget{Timeout: 20 * time.Second, MaxNodes: 1_500_000},
		RowScales:    []int{2000, 4000, 6000, 8000, 10000},
		RowScaleCols: 10,
		ColScales: map[string][]int{
			"flight":    {5, 10, 15, 18},
			"hepatitis": {5, 10, 12, 14},
			"ncvoter":   {5, 8, 10, 12},
			"dbtesma":   {5, 10, 15, 18},
		},
		PruningRowScales: []int{2000, 4000, 6000, 8000, 10000},
		PruningColScales: []int{4, 6, 8, 10, 12},
		LevelCols:        16,
		LevelRows:        1000,
	}
}

// QuickConfig returns a much smaller configuration used by the Go benchmarks
// and smoke tests.
func QuickConfig() Config {
	return Config{
		Seed:         2017,
		Workers:      1,
		ORDERBudget:  lattice.Budget{Timeout: 2 * time.Second, MaxNodes: 100_000},
		RowScales:    []int{200, 400, 600, 800, 1000},
		RowScaleCols: 8,
		ColScales: map[string][]int{
			"flight":    {4, 6, 8, 10},
			"hepatitis": {4, 6, 8, 10},
			"ncvoter":   {4, 6, 8},
			"dbtesma":   {4, 6, 8, 10},
		},
		PruningRowScales: []int{200, 400, 600, 800, 1000},
		PruningColScales: []int{4, 6, 8, 10},
		LevelCols:        10,
		LevelRows:        300,
	}
}

// Figure4 reproduces Exp-1/Exp-3/Exp-4 of the paper: runtime and output size
// of TANE, FASTOD and ORDER while the number of tuples grows, on the
// flight-, ncvoter- and dbtesma-like datasets with a fixed attribute count.
func Figure4(ctx context.Context, cfg Config) ([]Measurement, error) {
	datasets := []string{"flight", "ncvoter", "dbtesma"}
	var out []Measurement
	for _, name := range datasets {
		gen, err := GeneratorByName(name)
		if err != nil {
			return nil, err
		}
		for _, rows := range cfg.RowScales {
			if ctx.Err() != nil {
				return out, nil
			}
			enc, err := Encode(gen, rows, cfg.RowScaleCols, cfg.Seed)
			if err != nil {
				return nil, err
			}
			m, err := RunTANE(ctx, enc, name, tane.Options{Workers: cfg.Workers, Budget: cfg.Budget})
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			m, err = RunFASTOD(ctx, enc, name, core.Options{Workers: cfg.Workers, Budget: cfg.Budget})
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			m, err = RunORDER(ctx, enc, name, cfg.ORDERBudget)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Figure5 reproduces Exp-2/Exp-3/Exp-4: runtime and output size of TANE,
// FASTOD and ORDER while the number of attributes grows, on all four
// datasets with a fixed tuple count.
func Figure5(ctx context.Context, cfg Config) ([]Measurement, error) {
	var out []Measurement
	for _, gen := range Generators() {
		scales, ok := cfg.ColScales[gen.Name]
		if !ok {
			continue
		}
		for _, cols := range scales {
			if ctx.Err() != nil {
				return out, nil
			}
			enc, err := Encode(gen, gen.BaseRows, cols, cfg.Seed)
			if err != nil {
				return nil, err
			}
			m, err := RunTANE(ctx, enc, gen.Name, tane.Options{Workers: cfg.Workers, Budget: cfg.Budget})
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			m, err = RunFASTOD(ctx, enc, gen.Name, core.Options{Workers: cfg.Workers, Budget: cfg.Budget})
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			m, err = RunORDER(ctx, enc, gen.Name, cfg.ORDERBudget)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Figure6 reproduces Exp-5/Exp-6: FASTOD with and without its pruning rules,
// scaling rows (at RowScaleCols attributes) and columns (at LevelRows tuples)
// on the flight-like dataset. The un-pruned variant counts every valid OD,
// which is what the paper reports as the number of redundant ODs.
func Figure6(ctx context.Context, cfg Config) ([]Measurement, error) {
	gen, err := GeneratorByName("flight")
	if err != nil {
		return nil, err
	}
	var out []Measurement
	for _, rows := range cfg.PruningRowScales {
		if ctx.Err() != nil {
			return out, nil
		}
		enc, err := Encode(gen, rows, cfg.RowScaleCols, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := RunFASTOD(ctx, enc, "flight", core.Options{Workers: cfg.Workers, Budget: cfg.Budget})
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		m, err = RunFASTOD(ctx, enc, "flight", core.Options{Workers: cfg.Workers, Budget: cfg.Budget, DisablePruning: true, CountOnly: true})
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	for _, cols := range cfg.PruningColScales {
		if ctx.Err() != nil {
			return out, nil
		}
		enc, err := Encode(gen, cfg.LevelRows, cols, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := RunFASTOD(ctx, enc, "flight", core.Options{Workers: cfg.Workers, Budget: cfg.Budget})
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		m, err = RunFASTOD(ctx, enc, "flight", core.Options{Workers: cfg.Workers, Budget: cfg.Budget, DisablePruning: true, CountOnly: true})
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// LevelMeasurement is one row of the Figure 7 table: per-lattice-level
// runtime and OD counts.
type LevelMeasurement struct {
	Level       int
	Nodes       int
	Elapsed     time.Duration
	Constancy   int
	OrderCompat int
}

// Figure7 reproduces Exp-7: the time spent and the ODs found at each level of
// the set-containment lattice on the flight-like dataset.
func Figure7(ctx context.Context, cfg Config) ([]LevelMeasurement, error) {
	gen, err := GeneratorByName("flight")
	if err != nil {
		return nil, err
	}
	enc, err := Encode(gen, cfg.LevelRows, cfg.LevelCols, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := core.DiscoverContext(ctx, enc, core.Options{Workers: cfg.Workers, Budget: cfg.Budget, CollectLevelStats: true})
	if err != nil {
		return nil, err
	}
	out := make([]LevelMeasurement, 0, len(res.Levels))
	for _, ls := range res.Levels {
		out = append(out, LevelMeasurement{
			Level:       ls.Level,
			Nodes:       ls.Nodes,
			Elapsed:     ls.Elapsed,
			Constancy:   ls.Constancy,
			OrderCompat: ls.OrderCompat,
		})
	}
	return out, nil
}

// FormatLevelTable renders Figure 7's rows.
func FormatLevelTable(title string, ms []LevelMeasurement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-6s %-8s %-14s %s\n", "level", "nodes", "time", "#ODs (#FDs + #OCDs)")
	for _, m := range ms {
		total := m.Constancy + m.OrderCompat
		fmt.Fprintf(&b, "%-6d %-8d %-14v %d (%d + %d)\n",
			m.Level, m.Nodes, m.Elapsed.Round(time.Microsecond), total, m.Constancy, m.OrderCompat)
	}
	return b.String()
}

// Table1 runs the three algorithms on one dataset configuration; it backs the
// odbench "single" mode used for ad-hoc comparisons on user CSV files. The
// FASTOD/TANE budget and worker count come from cfg (ORDER keeps its own
// budget, as in the figure experiments).
func Table1(ctx context.Context, enc *relation.Encoded, name string, cfg Config) ([]Measurement, error) {
	var out []Measurement
	m, err := RunTANE(ctx, enc, name, tane.Options{Workers: cfg.Workers, Budget: cfg.Budget})
	if err != nil {
		return nil, err
	}
	out = append(out, m)
	m, err = RunFASTOD(ctx, enc, name, core.Options{Workers: cfg.Workers, Budget: cfg.Budget})
	if err != nil {
		return nil, err
	}
	out = append(out, m)
	m, err = RunORDER(ctx, enc, name, cfg.ORDERBudget)
	if err != nil {
		return nil, err
	}
	out = append(out, m)
	return out, nil
}
