// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 5): scalability in the number of tuples (Figure 4),
// scalability in the number of attributes (Figure 5), the impact of pruning
// (Figure 6) and the per-lattice-level behaviour (Figure 7). Each experiment
// builds the synthetic stand-in datasets, runs FASTOD and the baselines, and
// returns structured measurements that the odbench command renders as the
// same series the paper plots.
//
// Absolute numbers differ from the paper (different hardware, language and
// data), but the shapes the paper argues from — linear growth in tuples,
// exponential growth in attributes, FASTOD ≪ ORDER for complete discovery,
// TANE < FASTOD, and orders-of-magnitude savings from pruning — are
// reproduced. EXPERIMENTS.md records the paper-vs-measured comparison.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/lattice"
	"repro/internal/order"
	"repro/internal/relation"
	"repro/internal/tane"
)

// Algorithm names used in measurements.
const (
	AlgFASTOD          = "FASTOD"
	AlgFASTODNoPruning = "FASTOD-NoPruning"
	AlgTANE            = "TANE"
	AlgORDER           = "ORDER"
)

// Measurement is one data point of an experiment series: one algorithm run on
// one dataset configuration.
type Measurement struct {
	Dataset   string
	Rows      int
	Cols      int
	Algorithm string
	Elapsed   time.Duration
	// Counts reports discovered set-based ODs (#total, #FDs, #OCDs). For TANE
	// only the constancy field is populated; for ORDER the counts are of its
	// canonical image.
	Counts canonical.Count
	// ListODs is the number of list-based ODs found (ORDER only).
	ListODs int
	// TimedOut reports that the run hit its budget before finishing (ORDER on
	// wide schemas, mirroring the "* 5h" annotations in the paper).
	TimedOut bool
}

// String renders the measurement as one row of a results table.
func (m Measurement) String() string {
	status := ""
	if m.TimedOut {
		status = " *budget"
	}
	return fmt.Sprintf("%-14s rows=%-7d cols=%-3d %-18s %12v  %s%s",
		m.Dataset, m.Rows, m.Cols, m.Algorithm, m.Elapsed.Round(time.Microsecond), m.Counts, status)
}

// DatasetGen builds one of the named synthetic datasets at a given size.
type DatasetGen struct {
	Name string
	// Build returns a relation with the requested shape.
	Build func(rows, cols int, seed int64) *relation.Relation
	// BaseRows is the row count used by the column-scaling experiment.
	BaseRows int
}

// Generators returns the four dataset stand-ins keyed by the paper's names.
func Generators() []DatasetGen {
	return []DatasetGen{
		{Name: "flight", Build: datagen.FlightLike, BaseRows: 1000},
		{Name: "ncvoter", Build: datagen.NCVoterLike, BaseRows: 1000},
		{Name: "hepatitis", Build: func(rows, cols int, seed int64) *relation.Relation {
			return datagen.HepatitisLike(rows, cols, seed)
		}, BaseRows: 155},
		{Name: "dbtesma", Build: datagen.DBTesmaLike, BaseRows: 1000},
	}
}

// GeneratorByName returns the generator with the given name.
func GeneratorByName(name string) (DatasetGen, error) {
	for _, g := range Generators() {
		if g.Name == name {
			return g, nil
		}
	}
	return DatasetGen{}, fmt.Errorf("bench: unknown dataset %q", name)
}

// Encode builds and rank-encodes one synthetic dataset.
func Encode(g DatasetGen, rows, cols int, seed int64) (*relation.Encoded, error) {
	return relation.Encode(g.Build(rows, cols, seed))
}

// RunFASTOD measures one FASTOD run. A run interrupted by the context or by
// opts.Budget is reported as a partial measurement with TimedOut set.
func RunFASTOD(ctx context.Context, enc *relation.Encoded, dataset string, opts core.Options) (Measurement, error) {
	res, err := core.DiscoverContext(ctx, enc, opts)
	if err != nil {
		return Measurement{}, err
	}
	alg := AlgFASTOD
	if opts.DisablePruning {
		alg = AlgFASTODNoPruning
	}
	return Measurement{
		Dataset:   dataset,
		Rows:      enc.NumRows(),
		Cols:      enc.NumCols(),
		Algorithm: alg,
		Elapsed:   res.Elapsed,
		Counts:    res.Counts,
		TimedOut:  res.Stats.Interrupted,
	}, nil
}

// RunTANE measures one TANE run; interrupts are reported like RunFASTOD's.
func RunTANE(ctx context.Context, enc *relation.Encoded, dataset string, opts tane.Options) (Measurement, error) {
	res, err := tane.DiscoverContext(ctx, enc, opts)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Dataset:   dataset,
		Rows:      enc.NumRows(),
		Cols:      enc.NumCols(),
		Algorithm: AlgTANE,
		Elapsed:   res.Elapsed,
		Counts:    canonical.Count{Total: len(res.FDs), Constancy: len(res.FDs)},
		TimedOut:  res.Interrupted,
	}, nil
}

// RunORDER measures one ORDER run under the given budget.
func RunORDER(ctx context.Context, enc *relation.Encoded, dataset string, budget lattice.Budget) (Measurement, error) {
	res, err := order.DiscoverContext(ctx, enc, order.Options{Budget: budget})
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Dataset:   dataset,
		Rows:      enc.NumRows(),
		Cols:      enc.NumCols(),
		Algorithm: AlgORDER,
		Elapsed:   res.Elapsed,
		Counts:    res.Counts,
		ListODs:   len(res.ODs),
		TimedOut:  res.Interrupted,
	}, nil
}

// FormatTable renders measurements grouped by dataset, in input order.
func FormatTable(title string, ms []Measurement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, m := range ms {
		fmt.Fprintf(&b, "%s\n", m)
	}
	return b.String()
}
