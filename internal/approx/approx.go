// Package approx implements approximate order dependencies, the first
// extension the paper's conclusion calls for: canonical ODs that "almost
// hold" on a relation instance within a specified error threshold. The error
// of an OD is the minimum fraction of tuples that must be removed for the OD
// to hold exactly (the g3 measure used for approximate FDs by TANE, extended
// here to order compatibility), so exact ODs have error 0 and the measure is
// monotone: enlarging the context never increases the error.
package approx

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Error reports how far an OD is from holding exactly.
type Error struct {
	// Removals is the minimum number of tuples whose removal makes the OD
	// hold exactly.
	Removals int
	// Rate is Removals divided by the number of tuples (0 for an empty
	// relation), the normalized g3-style error in [0, 1).
	Rate float64
}

// ErrorOf computes the error of a canonical OD on the encoded relation.
func ErrorOf(enc *relation.Encoded, od canonical.OD) (Error, error) {
	switch od.Kind {
	case canonical.Constancy:
		return constancyError(enc, od.Context, od.A)
	case canonical.OrderCompatible:
		return orderCompatError(enc, od.Context, od.A, od.B)
	default:
		return Error{}, fmt.Errorf("approx: unknown OD kind %v", od.Kind)
	}
}

// constancyError computes the error of X: [] ↦ A: within each equivalence
// class of ΠX all tuples must agree on A, so the removals per class are the
// class size minus the most frequent A value in it. The per-class counting is
// the flat ConstancyRemovals kernel of package partition.
func constancyError(enc *relation.Encoded, ctx bitset.AttrSet, a int) (Error, error) {
	if err := checkAttr(enc, a); err != nil {
		return Error{}, err
	}
	if ctx.Contains(a) {
		return Error{}, nil // trivial
	}
	s := partition.NewScratch()
	p, err := contextPartition(enc, ctx, s)
	if err != nil {
		return Error{}, err
	}
	return newError(p.ConstancyRemovals(enc.Column(a), s), enc.NumRows()), nil
}

// orderCompatError computes the error of X: A ~ B: within each equivalence
// class the largest swap-free subset is the longest non-decreasing
// subsequence of B-ranks once the class is ordered by (A, B) — the
// SwapRemovals kernel of package partition (radix sort plus patience
// sorting); everything else must be removed.
func orderCompatError(enc *relation.Encoded, ctx bitset.AttrSet, a, b int) (Error, error) {
	if err := checkAttr(enc, a); err != nil {
		return Error{}, err
	}
	if err := checkAttr(enc, b); err != nil {
		return Error{}, err
	}
	if a == b || ctx.Contains(a) || ctx.Contains(b) {
		return Error{}, nil // trivial
	}
	s := partition.NewScratch()
	p, err := contextPartition(enc, ctx, s)
	if err != nil {
		return Error{}, err
	}
	return newError(p.SwapRemovals(enc.Column(a), enc.Column(b), s), enc.NumRows()), nil
}

func newError(removals, rows int) Error {
	e := Error{Removals: removals}
	if rows > 0 {
		e.Rate = float64(removals) / float64(rows)
	}
	return e
}

func contextPartition(enc *relation.Encoded, ctx bitset.AttrSet, s *partition.Scratch) (*partition.Partition, error) {
	for _, a := range ctx.Attrs() {
		if err := checkAttr(enc, a); err != nil {
			return nil, err
		}
	}
	p := partition.FromConstant(enc.NumRows())
	ctx.ForEach(func(a int) {
		p = p.ProductWith(partition.FromColumn(enc.Column(a), enc.Cardinality[a]), s)
	})
	return p, nil
}

func checkAttr(enc *relation.Encoded, a int) error {
	if a < 0 || a >= enc.NumCols() {
		return fmt.Errorf("approx: attribute %d out of range for relation with %d columns", a, enc.NumCols())
	}
	return nil
}

// ODError pairs an OD with its measured error; Profile returns one per input
// OD, which is the data-quality report used by the approximate example.
type ODError struct {
	OD    canonical.OD
	Error Error
}

// Profile measures the error of every OD in the slice.
func Profile(enc *relation.Encoded, ods []canonical.OD) ([]ODError, error) {
	out := make([]ODError, 0, len(ods))
	for _, od := range ods {
		e, err := ErrorOf(enc, od)
		if err != nil {
			return nil, err
		}
		out = append(out, ODError{OD: od, Error: e})
	}
	return out, nil
}
