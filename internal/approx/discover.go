package approx

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Options configures approximate discovery.
type Options struct {
	// Threshold is the maximum allowed error rate in [0, 1). Threshold 0
	// makes the output coincide with exact discovery.
	Threshold float64
	// MaxLevel, when positive, bounds the lattice level processed (context
	// size + right-hand attributes), which bounds cost on wide schemas.
	MaxLevel int
}

// Discovered is one approximate OD in the output, together with its error.
type Discovered struct {
	OD    canonical.OD
	Error Error
}

// Result is the outcome of an approximate discovery run.
type Result struct {
	ODs     []Discovered
	Elapsed time.Duration
	// NodesVisited counts lattice nodes processed.
	NodesVisited int
}

// Counts tallies the output by kind the way exact results are reported.
func (r *Result) Counts() canonical.Count {
	ods := make([]canonical.OD, 0, len(r.ODs))
	for _, d := range r.ODs {
		ods = append(ods, d.OD)
	}
	return canonical.CountByKind(ods)
}

// Discover finds the minimal canonical ODs whose error rate is at most the
// threshold. Because the error measure is monotone (a larger context never
// has a larger error), the notion of minimality is the same as in exact
// discovery: an OD is reported only if no proper subset context already
// meets the threshold, and an order-compatibility OD only if neither of its
// attributes is (approximately) constant in its context — the approximate
// analogue of the Propagate rule, which holds because removing the tuples
// that break the constancy of A also removes every swap between A and B.
//
// The traversal is level-wise over the set-containment lattice like FASTOD,
// but validates candidates by computing their error directly; it trades some
// of FASTOD's pruning for simplicity since thresholds are typically used on
// modest schemas during data profiling.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("approx: empty relation")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("approx: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	if opts.Threshold < 0 || opts.Threshold >= 1 {
		return nil, fmt.Errorf("approx: threshold %v outside [0, 1)", opts.Threshold)
	}
	start := time.Now()
	n := enc.NumCols()
	res := &Result{}

	// satisfiedConst[a] lists contexts where a is approximately constant;
	// satisfiedOC[pair] lists contexts where the pair is approximately order
	// compatible. Both are used for the subset-minimality test.
	satisfiedConst := make(map[int][]bitset.AttrSet)
	satisfiedOC := make(map[bitset.Pair][]bitset.AttrSet)
	hasSubset := func(list []bitset.AttrSet, ctx bitset.AttrSet) bool {
		for _, s := range list {
			if s.IsSubsetOf(ctx) {
				return true
			}
		}
		return false
	}

	parts := map[int]map[bitset.AttrSet]*partition.Partition{
		0: {bitset.AttrSet(0): partition.FromConstant(enc.NumRows())},
		1: {},
	}
	var level []bitset.AttrSet
	for a := 0; a < n; a++ {
		s := bitset.NewAttrSet(a)
		level = append(level, s)
		parts[1][s] = partition.FromColumn(enc.Column(a), enc.Cardinality[a])
	}

	colErr := func(ctxPart *partition.Partition, a int) Error {
		col := enc.Column(a)
		removals := 0
		freq := make(map[int32]int)
		for _, cls := range ctxPart.Classes {
			for k := range freq {
				delete(freq, k)
			}
			best := 0
			for _, row := range cls {
				freq[col[row]]++
				if freq[col[row]] > best {
					best = freq[col[row]]
				}
			}
			removals += len(cls) - best
		}
		return newError(removals, enc.NumRows())
	}
	pairErr := func(ctxPart *partition.Partition, a, b int) Error {
		colA, colB := enc.Column(a), enc.Column(b)
		removals := 0
		for _, cls := range ctxPart.Classes {
			removals += len(cls) - maxSwapFree(cls, colA, colB)
		}
		return newError(removals, enc.NumRows())
	}

	for l := 1; len(level) > 0 && (opts.MaxLevel <= 0 || l <= opts.MaxLevel); l++ {
		res.NodesVisited += len(level)
		for _, x := range level {
			xPart := parts[l][x]
			_ = xPart
			// Constancy candidates: X\A: [] ↦ A.
			for _, a := range x.Attrs() {
				ctx := x.Remove(a)
				if hasSubset(satisfiedConst[a], ctx) {
					continue // not minimal
				}
				e := colErr(parts[l-1][ctx], a)
				if e.Rate <= opts.Threshold {
					satisfiedConst[a] = append(satisfiedConst[a], ctx)
					res.ODs = append(res.ODs, Discovered{OD: canonical.NewConstancy(ctx, a), Error: e})
				}
			}
			// Order-compatibility candidates: X\{A,B}: A ~ B.
			if l >= 2 {
				attrs := x.Attrs()
				for i := 0; i < len(attrs); i++ {
					for j := i + 1; j < len(attrs); j++ {
						a, b := attrs[i], attrs[j]
						ctx := x.Remove(a).Remove(b)
						p := bitset.NewPair(a, b)
						if hasSubset(satisfiedOC[p], ctx) {
							continue // not minimal (Augmentation-II analogue)
						}
						if hasSubset(satisfiedConst[a], ctx) || hasSubset(satisfiedConst[b], ctx) {
							continue // not minimal (Propagate analogue)
						}
						e := pairErr(parts[l-2][ctx], a, b)
						if e.Rate <= opts.Threshold {
							satisfiedOC[p] = append(satisfiedOC[p], ctx)
							res.ODs = append(res.ODs, Discovered{OD: canonical.NewOrderCompatible(ctx, a, b), Error: e})
						}
					}
				}
			}
		}
		level, parts[l+1] = nextLevel(level, parts[l])
		delete(parts, l-2)
	}

	sort.Slice(res.ODs, func(i, j int) bool { return canonical.Less(res.ODs[i].OD, res.ODs[j].OD) })
	res.Elapsed = time.Since(start)
	return res, nil
}

// nextLevel joins prefix blocks exactly like the exact algorithms do.
func nextLevel(level []bitset.AttrSet, parts map[bitset.AttrSet]*partition.Partition) ([]bitset.AttrSet, map[bitset.AttrSet]*partition.Partition) {
	blocks := make(map[bitset.AttrSet][]int)
	for _, x := range level {
		attrs := x.Attrs()
		last := attrs[len(attrs)-1]
		blocks[x.Remove(last)] = append(blocks[x.Remove(last)], last)
	}
	prefixes := make([]bitset.AttrSet, 0, len(blocks))
	for p := range blocks {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })

	var next []bitset.AttrSet
	nextParts := make(map[bitset.AttrSet]*partition.Partition)
	for _, prefix := range prefixes {
		members := blocks[prefix]
		sort.Ints(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				x := prefix.Add(members[i]).Add(members[j])
				next = append(next, x)
				nextParts[x] = partition.Product(parts[prefix.Add(members[i])], parts[prefix.Add(members[j])])
			}
		}
	}
	return next, nextParts
}
