package approx

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/lattice"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Options configures approximate discovery.
type Options struct {
	// Threshold is the maximum allowed error rate in [0, 1). Threshold 0
	// makes the output coincide with exact discovery.
	Threshold float64
	// MaxLevel, when positive, bounds the lattice level processed (context
	// size + right-hand attributes), which bounds cost on wide schemas.
	MaxLevel int
	// Workers is the number of goroutines processing lattice nodes, with the
	// same convention as core.Options.Workers (0 = GOMAXPROCS, 1 =
	// sequential). The output is identical regardless of the setting.
	Workers int
	// Scheduler selects the node ordering (DAG work-stealing by default,
	// level-synchronous barrier as an option); see core.Options.Scheduler.
	Scheduler lattice.Scheduler
	// Budget bounds the run's wall-clock time and visited lattice nodes; see
	// core.Options.Budget for the interrupt semantics.
	Budget lattice.Budget
	// Progress, when non-nil, receives one event per completed lattice level;
	// see core.Options.Progress.
	Progress func(lattice.ProgressEvent)
	// Partitions, when non-nil, shares stripped partitions with other runs
	// over the same relation; see core.Options.Partitions.
	Partitions *lattice.PartitionStore
}

// Discovered is one approximate OD in the output, together with its error.
type Discovered struct {
	OD    canonical.OD
	Error Error
}

// Result is the outcome of an approximate discovery run.
type Result struct {
	ODs     []Discovered
	Elapsed time.Duration
	// NodesVisited counts lattice nodes processed.
	NodesVisited int
	// Stats carries the engine's traversal counters (nodes, partition store
	// hits/misses, interruption).
	Stats lattice.Stats
	// Interrupted reports that the run stopped early on context cancellation
	// or budget exhaustion; ODs then holds everything found up to the
	// interrupt.
	Interrupted bool
}

// Counts tallies the output by kind the way exact results are reported.
func (r *Result) Counts() canonical.Count {
	ods := make([]canonical.OD, 0, len(r.ODs))
	for _, d := range r.ODs {
		ods = append(ods, d.OD)
	}
	return canonical.CountByKind(ods)
}

// Discover finds the minimal canonical ODs whose error rate is at most the
// threshold. Because the error measure is monotone (a larger context never
// has a larger error), the notion of minimality is the same as in exact
// discovery: an OD is reported only if no proper subset context already
// meets the threshold, and an order-compatibility OD only if neither of its
// attributes is (approximately) constant in its context — the approximate
// analogue of the Propagate rule, which holds because removing the tuples
// that break the constancy of A also removes every swap between A and B.
//
// The traversal is level-wise over the set-containment lattice — driven by
// the shared engine in internal/lattice, like FASTOD — but validates
// candidates by computing their error directly; it trades some of FASTOD's
// pruning for simplicity since thresholds are typically used on modest
// schemas during data profiling.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	//lint:allow ctxfirst convenience wrapper kept for callers that cannot cancel; DiscoverContext is the cancellable entry point
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext is Discover with cooperative cancellation and budgeting
// (see core.DiscoverContext): an interrupted run returns the approximate ODs
// found so far with Interrupted set instead of an error.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("approx: empty relation")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("approx: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	if opts.Threshold < 0 || opts.Threshold >= 1 {
		return nil, fmt.Errorf("approx: threshold %v outside [0, 1)", opts.Threshold)
	}
	start := time.Now()
	res := &Result{}

	eng, err := lattice.New(enc, lattice.Config{
		Ctx:        ctx,
		Scheduler:  opts.Scheduler,
		Workers:    opts.Workers,
		MaxLevel:   opts.MaxLevel,
		Budget:     opts.Budget,
		Store:      opts.Partitions,
		OnProgress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}

	// satisfiedConst[a] lists contexts where a is approximately constant;
	// satisfiedOC[pair] lists contexts where the pair is approximately order
	// compatible. Both are used for the subset-minimality test.
	satisfiedConst := make(map[int][]bitset.AttrSet)
	satisfiedOC := make(map[bitset.Pair][]bitset.AttrSet)
	hasSubset := func(list []bitset.AttrSet, ctx bitset.AttrSet) bool {
		for _, s := range list {
			if s.IsSubsetOf(ctx) {
				return true
			}
		}
		return false
	}

	// Per-class error counting runs on the flat partition kernels with the
	// engine's per-worker scratches: allocation-free on the hot path.
	colErr := func(ctxPart *partition.Partition, a int, s *partition.Scratch) Error {
		return newError(ctxPart.ConstancyRemovals(enc.Column(a), s), enc.NumRows())
	}
	pairErr := func(ctxPart *partition.Partition, a, b int, s *partition.Scratch) Error {
		return newError(ctxPart.SwapRemovals(enc.Column(a), enc.Column(b), s), enc.NumRows())
	}

	// Node-reentrant validation with the satisfied-lists under one mutex,
	// following the same argument as internal/bidir: any list entry that can
	// gate node X originates at a subset node of X, which the scheduler
	// guarantees completed (and published) before X starts; entries from
	// concurrently running nodes are never subsets of X's contexts, so they
	// cannot flip a gate. Each visit evaluates its minimality gates under the
	// lock, computes the error counts off it, and publishes its discoveries
	// before completing.
	type constCand struct {
		a   int
		ctx bitset.AttrSet
	}
	type ocCand struct {
		a, b int
		ctx  bitset.AttrSet
	}
	var mu sync.Mutex
	eng.RunNodes(nil, func(wk, l int, x bitset.AttrSet, _ []any) (any, bool) {
		scratch := eng.Scratch(wk)
		attrs := x.Attrs()
		var constCands []constCand
		var ocCands []ocCand
		mu.Lock()
		// Constancy candidates: X\A: [] ↦ A.
		for _, a := range attrs {
			ctx := x.Remove(a)
			if !hasSubset(satisfiedConst[a], ctx) {
				constCands = append(constCands, constCand{a: a, ctx: ctx})
			}
		}
		// Order-compatibility candidates: X\{A,B}: A ~ B.
		if l >= 2 {
			for p := 0; p < len(attrs); p++ {
				for q := p + 1; q < len(attrs); q++ {
					a, b := attrs[p], attrs[q]
					ctx := x.Remove(a).Remove(b)
					if hasSubset(satisfiedOC[bitset.NewPair(a, b)], ctx) {
						continue // not minimal (Augmentation-II analogue)
					}
					if hasSubset(satisfiedConst[a], ctx) || hasSubset(satisfiedConst[b], ctx) {
						continue // not minimal (Propagate analogue)
					}
					ocCands = append(ocCands, ocCand{a: a, b: b, ctx: ctx})
				}
			}
		}
		mu.Unlock()

		var found []Discovered
		for _, c := range constCands {
			e := colErr(eng.Partition(c.ctx), c.a, scratch)
			if e.Rate <= opts.Threshold {
				found = append(found, Discovered{OD: canonical.NewConstancy(c.ctx, c.a), Error: e})
			}
		}
		for _, c := range ocCands {
			e := pairErr(eng.Partition(c.ctx), c.a, c.b, scratch)
			if e.Rate <= opts.Threshold {
				found = append(found, Discovered{OD: canonical.NewOrderCompatible(c.ctx, c.a, c.b), Error: e})
			}
		}

		if len(found) > 0 {
			mu.Lock()
			for _, d := range found {
				res.ODs = append(res.ODs, d)
				if d.OD.Kind == canonical.Constancy {
					satisfiedConst[d.OD.A] = append(satisfiedConst[d.OD.A], d.OD.Context)
				} else {
					pair := bitset.NewPair(d.OD.A, d.OD.B)
					satisfiedOC[pair] = append(satisfiedOC[pair], d.OD.Context)
				}
			}
			mu.Unlock()
		}
		return nil, false
	})
	if err := eng.Err(); err != nil {
		// A recovered worker panic: fail the discovery rather than report a
		// possibly incoherent partial.
		return nil, err
	}
	res.Stats = eng.Stats()
	res.NodesVisited = res.Stats.NodesVisited
	res.Interrupted = res.Stats.Interrupted

	sort.Slice(res.ODs, func(i, j int) bool { return canonical.Less(res.ODs[i].OD, res.ODs[j].OD) })
	res.Elapsed = time.Since(start)
	return res, nil
}
