package approx

import (
	"math/rand"
	"testing"

	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
)

func TestDiscoverValidation(t *testing.T) {
	if _, err := Discover(nil, Options{}); err == nil {
		t.Error("nil relation must be rejected")
	}
	if _, err := Discover(&relation.Encoded{}, Options{}); err == nil {
		t.Error("empty relation must be rejected")
	}
	enc := encode(t, datagen.Employees())
	if _, err := Discover(enc, Options{Threshold: -0.1}); err == nil {
		t.Error("negative threshold must be rejected")
	}
	if _, err := Discover(enc, Options{Threshold: 1.0}); err == nil {
		t.Error("threshold >= 1 must be rejected")
	}
}

// TestDiscoverThresholdZeroMatchesExact: with threshold 0 the approximate
// discovery must return exactly the exact minimal set.
func TestDiscoverThresholdZeroMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(16), 4, 3, rng.Int63())
		enc := encode(t, rel)
		exact, err := core.Discover(enc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := Discover(enc, Options{Threshold: 0})
		if err != nil {
			t.Fatal(err)
		}
		if len(approx.ODs) != len(exact.ODs) {
			t.Fatalf("trial %d: approximate@0 found %d ODs, exact found %d\napprox: %v\nexact: %v",
				trial, len(approx.ODs), len(exact.ODs), approx.ODs, exact.ODs)
		}
		for i := range exact.ODs {
			if !approx.ODs[i].OD.Equal(exact.ODs[i]) {
				t.Fatalf("trial %d: OD %d = %v, want %v", trial, i, approx.ODs[i].OD, exact.ODs[i])
			}
			if approx.ODs[i].Error.Removals != 0 {
				t.Fatalf("trial %d: exact OD %v reported with non-zero error", trial, approx.ODs[i].OD)
			}
		}
	}
}

// TestDiscoverMonotoneInThreshold: raising the threshold can only make the
// covered dependency space grow (every OD implied at a lower threshold is
// implied at a higher one), and every reported OD must meet the threshold.
func TestDiscoverMonotoneInThreshold(t *testing.T) {
	enc := encode(t, datagen.NCVoterLike(200, 5, 7))
	thresholds := []float64{0, 0.05, 0.2, 0.5}
	var prev []Discovered
	for i, th := range thresholds {
		res, err := Discover(enc, Options{Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.ODs {
			if d.Error.Rate > th+1e-12 {
				t.Errorf("threshold %v: reported OD %v has error %v", th, d.OD, d.Error.Rate)
			}
		}
		if i > 0 {
			// Every previously reported OD must still be within threshold now,
			// and must be implied by the new output in the minimality sense:
			// some subset context with the same right-hand side is reported.
			cur := make([]canonical.OD, 0, len(res.ODs))
			for _, d := range res.ODs {
				cur = append(cur, d.OD)
			}
			cover := canonical.NewCover(cur)
			for _, d := range prev {
				if !cover.Implies(d.OD) {
					t.Errorf("threshold %v: OD %v from lower threshold no longer implied", th, d.OD)
				}
			}
		}
		prev = res.ODs
	}
}

// TestDiscoverApproximateFindsNearlyHoldingODs: corrupt a clean dataset
// slightly; exact discovery loses the OD but approximate discovery with a
// tolerant threshold recovers it.
func TestDiscoverApproximateFindsNearlyHoldingODs(t *testing.T) {
	// Two full years of days so d_year is not constant, then swap a few
	// d_year values between rows to create a small number of violations.
	clean := datagen.DateDim(730)
	dirty, _, err := datagen.InjectSwapViolations(clean, "d_year", 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	enc := encode(t, dirty)
	skIdx := 0 // d_date_sk
	yearIdx := 2
	target := canonical.NewOrderCompatible(0, skIdx, yearIdx) // {}: d_date_sk ~ d_year

	exact, err := core.Discover(enc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if canonical.NewCover(exact.ODs).Implies(target) {
		t.Fatal("corruption failed: exact discovery still implies the target OD")
	}

	res, err := Discover(enc, Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ods := make([]canonical.OD, 0, len(res.ODs))
	for _, d := range res.ODs {
		ods = append(ods, d.OD)
	}
	if !canonical.NewCover(ods).Implies(target) {
		t.Error("approximate discovery at 5% should recover {}: d_date_sk ~ d_year")
	}
	if res.Counts().Total != len(res.ODs) {
		t.Error("Counts inconsistent with output length")
	}
	if res.Elapsed <= 0 || res.NodesVisited == 0 {
		t.Error("stats not recorded")
	}
}

func TestDiscoverMaxLevel(t *testing.T) {
	enc := encode(t, datagen.Employees())
	res, err := Discover(enc, Options{Threshold: 0.1, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.ODs {
		if d.OD.Context.Len() > 1 {
			t.Errorf("OD %v exceeds MaxLevel=2", d.OD)
		}
	}
}

// TestDiscoverReportedODsAreMinimal: no reported OD has a reported subset
// context with the same right-hand side (context minimality), nor an
// approximately constant attribute in its context pair (Propagate analogue).
func TestDiscoverReportedODsAreMinimal(t *testing.T) {
	enc := encode(t, datagen.HepatitisLike(80, 6, 5))
	res, err := Discover(enc, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.ODs {
		for j, other := range res.ODs {
			if i == j || d.OD.Kind != other.OD.Kind {
				continue
			}
			sameRHS := d.OD.A == other.OD.A && d.OD.B == other.OD.B
			if sameRHS && other.OD.Context != d.OD.Context && other.OD.Context.IsSubsetOf(d.OD.Context) {
				t.Errorf("OD %v is not minimal: %v has a subset context", d.OD, other.OD)
			}
		}
	}
}

// differentialRelations builds the seeded datagen relations the differential
// suite runs over, mirroring internal/core/parallel_test.go (approximate
// discovery enumerates the full lattice, so the shapes are kept moderate).
func differentialRelations(t *testing.T) map[string]*relation.Encoded {
	t.Helper()
	rels := map[string]*relation.Relation{
		"flight-500x8":     datagen.FlightLike(500, 8, 2017),
		"ncvoter-400x6":    datagen.NCVoterLike(400, 6, 2017),
		"hepatitis-155x8":  datagen.HepatitisLike(155, 8, 2017),
		"random-200x5":     datagen.RandomRelation(200, 5, 4, 42),
		"structured-400x6": datagen.RandomStructuredRelation(400, 6, 3, 99),
	}
	out := make(map[string]*relation.Encoded, len(rels))
	for name, r := range rels {
		out[name] = encode(t, r)
	}
	return out
}

// TestParallelMatchesSequentialDifferential: a Workers=4 run must be
// indistinguishable from a Workers=1 run — same sorted OD list with the same
// measured errors, same node counter — on every seeded dataset, at an exact
// and a lenient threshold.
func TestParallelMatchesSequentialDifferential(t *testing.T) {
	for name, enc := range differentialRelations(t) {
		for _, threshold := range []float64{0, 0.05} {
			seq, err := Discover(enc, Options{Workers: 1, Threshold: threshold})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			par, err := Discover(enc, Options{Workers: 4, Threshold: threshold})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if par.NodesVisited != seq.NodesVisited {
				t.Errorf("%s@%v: NodesVisited = %d, want %d", name, threshold, par.NodesVisited, seq.NodesVisited)
			}
			if len(par.ODs) != len(seq.ODs) {
				t.Fatalf("%s@%v: %d ODs, want %d", name, threshold, len(par.ODs), len(seq.ODs))
			}
			for i := range seq.ODs {
				if par.ODs[i] != seq.ODs[i] {
					t.Fatalf("%s@%v: OD %d = %+v, want %+v", name, threshold, i, par.ODs[i], seq.ODs[i])
				}
			}
		}
	}
}

// TestParallelWorkerCounts sweeps worker counts on one dataset, including 0
// (GOMAXPROCS), oversubscription and the MaxLevel bound.
func TestParallelWorkerCounts(t *testing.T) {
	enc := encode(t, datagen.FlightLike(300, 6, 2017))
	for _, opts := range []Options{{Threshold: 0.02}, {Threshold: 0.02, MaxLevel: 3}} {
		seqOpts := opts
		seqOpts.Workers = 1
		want, err := Discover(enc, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 8, 64, -3} {
			parOpts := opts
			parOpts.Workers = w
			got, err := Discover(enc, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.ODs) != len(want.ODs) {
				t.Fatalf("workers=%d maxlevel=%d: %d ODs, want %d", w, opts.MaxLevel, len(got.ODs), len(want.ODs))
			}
			for i := range want.ODs {
				if got.ODs[i] != want.ODs[i] {
					t.Fatalf("workers=%d: OD %d = %+v, want %+v", w, i, got.ODs[i], want.ODs[i])
				}
			}
		}
	}
}
