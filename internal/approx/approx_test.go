package approx

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/datagen"
	"repro/internal/partition"
	"repro/internal/relation"
)

func encode(t *testing.T, r *relation.Relation) *relation.Encoded {
	t.Helper()
	enc, err := relation.Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return enc
}

func TestErrorOfExactODsIsZero(t *testing.T) {
	enc := encode(t, datagen.Employees())
	idx := map[string]int{}
	for i, n := range enc.ColumnNames {
		idx[n] = i
	}
	exact := []canonical.OD{
		canonical.NewConstancy(bitset.NewAttrSet(idx["sal"]), idx["tax"]),
		canonical.NewOrderCompatible(bitset.AttrSet(0), idx["sal"], idx["tax"]),
		canonical.NewConstancy(bitset.NewAttrSet(idx["sal"]), idx["sal"]), // trivial
	}
	for _, od := range exact {
		e, err := ErrorOf(enc, od)
		if err != nil {
			t.Fatalf("ErrorOf(%v): %v", od, err)
		}
		if e.Removals != 0 || e.Rate != 0 {
			t.Errorf("ErrorOf(%v) = %+v, want zero", od.NamesString(enc.ColumnNames), e)
		}
	}
}

func TestErrorOfViolatedODs(t *testing.T) {
	enc := encode(t, datagen.Employees())
	idx := map[string]int{}
	for i, n := range enc.ColumnNames {
		idx[n] = i
	}
	// {posit}: [] -> sal: each position class has 2 distinct salaries over 2
	// tuples, so one removal per class = 3 removals out of 6 tuples.
	e, err := ErrorOf(enc, canonical.NewConstancy(bitset.NewAttrSet(idx["posit"]), idx["sal"]))
	if err != nil {
		t.Fatal(err)
	}
	if e.Removals != 3 || math.Abs(e.Rate-0.5) > 1e-9 {
		t.Errorf("posit->sal error = %+v, want 3 removals (rate 0.5)", e)
	}
	// {}: sal ~ subg has a swap; removing one tuple fixes... compute and check
	// it is strictly between 0 and 1 and achievable.
	e, err = ErrorOf(enc, canonical.NewOrderCompatible(bitset.AttrSet(0), idx["sal"], idx["subg"]))
	if err != nil {
		t.Fatal(err)
	}
	if e.Removals <= 0 || e.Removals >= enc.NumRows() {
		t.Errorf("sal ~ subg removals = %d, want in (0, rows)", e.Removals)
	}
}

func TestErrorOfAttributeValidation(t *testing.T) {
	enc := encode(t, datagen.Employees())
	if _, err := ErrorOf(enc, canonical.NewConstancy(bitset.AttrSet(0), 63)); err == nil {
		t.Error("expected error for out-of-range attribute")
	}
	if _, err := ErrorOf(enc, canonical.NewOrderCompatible(bitset.AttrSet(0), 0, 63)); err == nil {
		t.Error("expected error for out-of-range pair attribute")
	}
	if _, err := ErrorOf(enc, canonical.NewConstancy(bitset.NewAttrSet(63), 0)); err == nil {
		t.Error("expected error for out-of-range context attribute")
	}
	if _, err := ErrorOf(enc, canonical.OD{Kind: canonical.Kind(9)}); err == nil {
		t.Error("expected error for unknown kind")
	}
}

// TestErrorMatchesMinimumRemovalsBruteForce verifies the removal counts
// against exhaustive search over subsets on tiny relations.
func TestErrorMatchesMinimumRemovalsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		rows := 2 + rng.Intn(8) // brute force over subsets: keep tiny
		rel := datagen.RandomRelation(rows, 3, 3, rng.Int63())
		enc := encode(t, rel)

		ods := []canonical.OD{
			canonical.NewConstancy(bitset.NewAttrSet(0), 1),
			canonical.NewOrderCompatible(bitset.NewAttrSet(2), 0, 1),
			canonical.NewOrderCompatible(bitset.AttrSet(0), 1, 2),
		}
		for _, od := range ods {
			e, err := ErrorOf(enc, od)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteMinRemovals(enc, od)
			if e.Removals != want {
				t.Fatalf("trial %d: ErrorOf(%v).Removals = %d, brute force = %d",
					trial, od, e.Removals, want)
			}
		}
	}
}

// bruteMinRemovals finds the smallest number of rows whose removal makes the
// OD hold, by trying all subsets of rows (ascending cardinality).
func bruteMinRemovals(enc *relation.Encoded, od canonical.OD) int {
	n := enc.NumRows()
	for k := 0; k <= n; k++ {
		if existsKeepSet(enc, od, n, n-k) {
			return k
		}
	}
	return n
}

// existsKeepSet reports whether some subset of `keep` rows satisfies the OD.
func existsKeepSet(enc *relation.Encoded, od canonical.OD, n, keep int) bool {
	rows := make([]int, 0, keep)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(rows) == keep {
			return holdsOnSubset(enc, od, rows)
		}
		for i := start; i < n; i++ {
			rows = append(rows, i)
			if rec(i + 1) {
				return true
			}
			rows = rows[:len(rows)-1]
		}
		return false
	}
	return rec(0)
}

// holdsOnSubset checks the canonical OD over just the given rows.
func holdsOnSubset(enc *relation.Encoded, od canonical.OD, rows []int) bool {
	ctxAttrs := od.Context.Attrs()
	sameCtx := func(s, t int) bool {
		for _, a := range ctxAttrs {
			if enc.Column(a)[s] != enc.Column(a)[t] {
				return false
			}
		}
		return true
	}
	for _, s := range rows {
		for _, t := range rows {
			if !sameCtx(s, t) {
				continue
			}
			switch od.Kind {
			case canonical.Constancy:
				if enc.Column(od.A)[s] != enc.Column(od.A)[t] {
					return false
				}
			case canonical.OrderCompatible:
				a, b := enc.Column(od.A), enc.Column(od.B)
				if a[s] < a[t] && b[t] < b[s] {
					return false
				}
			}
		}
	}
	return true
}

func TestProfile(t *testing.T) {
	enc := encode(t, datagen.Employees())
	ods := []canonical.OD{
		canonical.NewConstancy(bitset.NewAttrSet(4), 6), // sal -> tax (holds)
		canonical.NewConstancy(bitset.NewAttrSet(2), 4), // posit -> sal (violated)
	}
	prof, err := Profile(enc, ods)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 2 {
		t.Fatalf("Profile len = %d", len(prof))
	}
	if prof[0].Error.Removals != 0 || prof[1].Error.Removals == 0 {
		t.Errorf("Profile = %+v", prof)
	}
	if _, err := Profile(enc, []canonical.OD{canonical.NewConstancy(bitset.AttrSet(0), 63)}); err == nil {
		t.Error("expected error for invalid OD")
	}
}

func TestSwapRemovalsHandlesTies(t *testing.T) {
	// Rows with equal A never conflict; equal B never conflict.
	colA := []int32{0, 0, 1, 1, 2}
	colB := []int32{5, 1, 3, 3, 2}
	// One class holding all five rows (the empty context).
	cls := partition.FromConstant(5)
	// Largest swap-free subset is rows {1,2,3} (A = 0,1,1 and B = 1,3,3):
	// row 0 (B=5) conflicts with every larger-A row, and row 4 (A=2,B=2)
	// conflicts with rows 2 and 3 — so two removals.
	got := cls.SwapRemovals(colA, colB, nil)
	if got != 2 {
		t.Errorf("SwapRemovals = %d, want 2", got)
	}
}
