package tane

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
)

func encode(t *testing.T, r *relation.Relation) *relation.Encoded {
	t.Helper()
	enc, err := relation.Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return enc
}

func TestDiscoverValidation(t *testing.T) {
	if _, err := Discover(nil, Options{}); err == nil {
		t.Error("nil relation must be rejected")
	}
	if _, err := Discover(&relation.Encoded{}, Options{}); err == nil {
		t.Error("empty relation must be rejected")
	}
}

func TestFDStrings(t *testing.T) {
	fd := FD{LHS: bitset.NewAttrSet(0, 2), RHS: 1}
	if fd.String() != "{0,2} -> 1" {
		t.Errorf("String = %q", fd.String())
	}
	if fd.NamesString([]string{"a", "b", "c"}) != "{a,c} -> b" {
		t.Errorf("NamesString = %q", fd.NamesString([]string{"a", "b", "c"}))
	}
	if (FD{LHS: bitset.AttrSet(0), RHS: 9}).NamesString([]string{"a"}) != "{} -> #9" {
		t.Error("NamesString out of range incorrect")
	}
}

func TestDiscoverTable1FDs(t *testing.T) {
	enc := encode(t, datagen.Employees())
	idx := map[string]int{}
	for i, n := range enc.ColumnNames {
		idx[n] = i
	}
	res, err := Discover(enc, Options{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(res.FDs) == 0 {
		t.Fatal("expected FDs on Table 1")
	}
	has := func(lhs bitset.AttrSet, rhs int) bool {
		for _, fd := range res.FDs {
			if fd.LHS.IsSubsetOf(lhs) && fd.RHS == rhs {
				return true
			}
		}
		return false
	}
	// salary -> tax, salary -> percentage hold (Lemma 1 applied to Example 1).
	if !has(bitset.NewAttrSet(idx["sal"]), idx["tax"]) {
		t.Error("sal -> tax missing")
	}
	if !has(bitset.NewAttrSet(idx["sal"]), idx["perc"]) {
		t.Error("sal -> perc missing")
	}
	// position does not determine salary.
	for _, fd := range res.FDs {
		if fd.LHS.Equal(bitset.NewAttrSet(idx["posit"])) && fd.RHS == idx["sal"] {
			t.Error("posit -> sal must not be reported")
		}
	}
	if res.Elapsed <= 0 || res.NodesVisited == 0 {
		t.Error("stats not recorded")
	}
}

// TestTANEMatchesFASTODFDs: the FD fragment of FASTOD's output (constancy ODs)
// must coincide with TANE's minimal FDs — Experiment 4's premise that the FD
// counts of the two algorithms agree.
func TestTANEMatchesFASTODFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(20), 2+rng.Intn(4), 3, rng.Int63())
		enc := encode(t, rel)

		taneRes, err := Discover(enc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fastodRes, err := core.Discover(enc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fastodFDs := fastodRes.ConstancyODs()
		if len(taneRes.FDs) != len(fastodFDs) {
			t.Fatalf("trial %d: TANE found %d FDs, FASTOD found %d constancy ODs\nTANE: %v\nFASTOD: %v",
				trial, len(taneRes.FDs), len(fastodFDs), taneRes.FDs, fastodFDs)
		}
		for i, fd := range taneRes.FDs {
			want := canonical.NewConstancy(fd.LHS, fd.RHS)
			if !fastodFDs[i].Equal(want) {
				t.Fatalf("trial %d: FD %d mismatch: TANE %v, FASTOD %v", trial, i, want, fastodFDs[i])
			}
		}
	}
}

func TestDiscoverMaxLevel(t *testing.T) {
	enc := encode(t, datagen.Employees())
	res, err := Discover(enc, Options{MaxLevel: 2})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	for _, fd := range res.FDs {
		if fd.LHS.Len() > 1 {
			t.Errorf("FD %v exceeds MaxLevel=2", fd)
		}
	}
}

func TestDiscoverKeyRelation(t *testing.T) {
	// A relation whose first column is a key: every other attribute is
	// determined by it, and minimality keeps the LHS at the key column alone.
	rel := datagen.DBTesmaLike(50, 5, 3)
	enc := encode(t, rel)
	res, err := Discover(enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cover := map[int]bool{}
	for _, fd := range res.FDs {
		if fd.LHS.Equal(bitset.NewAttrSet(0)) {
			cover[fd.RHS] = true
		}
	}
	for a := 1; a < enc.NumCols(); a++ {
		if !cover[a] {
			t.Errorf("pk -> column %d missing", a)
		}
	}
}

// differentialRelations builds the seeded datagen relations the differential
// suite runs over, mirroring internal/core/parallel_test.go: varying row
// counts, column counts and cardinality profiles.
func differentialRelations(t *testing.T) map[string]*relation.Encoded {
	t.Helper()
	rels := map[string]*relation.Relation{
		"flight-2000x8":    datagen.FlightLike(2000, 8, 2017),
		"flight-300x10":    datagen.FlightLike(300, 10, 7),
		"ncvoter-1000x6":   datagen.NCVoterLike(1000, 6, 2017),
		"hepatitis-155x8":  datagen.HepatitisLike(155, 8, 2017),
		"dbtesma-500x8":    datagen.DBTesmaLike(500, 8, 2017),
		"random-200x5":     datagen.RandomRelation(200, 5, 4, 42),
		"structured-400x6": datagen.RandomStructuredRelation(400, 6, 3, 99),
	}
	out := make(map[string]*relation.Encoded, len(rels))
	for name, r := range rels {
		out[name] = encode(t, r)
	}
	return out
}

// TestParallelMatchesSequentialDifferential: a Workers=4 run must be
// indistinguishable from a Workers=1 run — same sorted FD list, same node
// counter — on every seeded dataset.
func TestParallelMatchesSequentialDifferential(t *testing.T) {
	for name, enc := range differentialRelations(t) {
		seq, err := Discover(enc, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := Discover(enc, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if par.NodesVisited != seq.NodesVisited {
			t.Errorf("%s: NodesVisited = %d, want %d", name, par.NodesVisited, seq.NodesVisited)
		}
		if len(par.FDs) != len(seq.FDs) {
			t.Fatalf("%s: %d FDs, want %d", name, len(par.FDs), len(seq.FDs))
		}
		for i := range seq.FDs {
			if par.FDs[i] != seq.FDs[i] {
				t.Fatalf("%s: FD %d = %v, want %v", name, i, par.FDs[i], seq.FDs[i])
			}
		}
	}
}

// TestParallelWorkerCounts sweeps worker counts, including 0 (GOMAXPROCS),
// counts exceeding the number of lattice nodes per level, and MaxLevel.
func TestParallelWorkerCounts(t *testing.T) {
	enc := encode(t, datagen.FlightLike(500, 8, 2017))
	for _, opts := range []Options{{}, {MaxLevel: 3}} {
		seqOpts := opts
		seqOpts.Workers = 1
		want, err := Discover(enc, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 8, 64, -3} {
			parOpts := opts
			parOpts.Workers = w
			got, err := Discover(enc, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.FDs) != len(want.FDs) {
				t.Fatalf("workers=%d maxlevel=%d: %d FDs, want %d", w, opts.MaxLevel, len(got.FDs), len(want.FDs))
			}
			for i := range want.FDs {
				if got.FDs[i] != want.FDs[i] {
					t.Fatalf("workers=%d: FD %d = %v, want %v", w, i, got.FDs[i], want.FDs[i])
				}
			}
		}
	}
}
