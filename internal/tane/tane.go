// Package tane is a clean-room implementation of the TANE functional
// dependency discovery algorithm (Huhtala et al., ICDE 1998), the FD-only
// baseline the paper compares FASTOD against in Experiment 4. Like FASTOD it
// traverses the set-containment lattice level by level with stripped
// partitions and candidate sets; unlike FASTOD it only looks for splits, so
// it cannot discover order semantics.
package tane

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/partition"
	"repro/internal/relation"
)

// FD is a minimal functional dependency LHS → RHS with a single right-hand
// side attribute, the canonical output form of TANE.
type FD struct {
	LHS bitset.AttrSet
	RHS int
}

// String renders the FD with attribute indexes.
func (fd FD) String() string { return fmt.Sprintf("%s -> %d", fd.LHS, fd.RHS) }

// NamesString renders the FD with attribute names.
func (fd FD) NamesString(names []string) string {
	rhs := fmt.Sprintf("#%d", fd.RHS)
	if fd.RHS >= 0 && fd.RHS < len(names) {
		rhs = names[fd.RHS]
	}
	return fd.LHS.Names(names) + " -> " + rhs
}

// Options configures a TANE run.
type Options struct {
	// MaxLevel, when positive, bounds the lattice level that is processed.
	MaxLevel int
}

// Result is the outcome of a TANE run.
type Result struct {
	FDs     []FD
	Elapsed time.Duration
	// NodesVisited counts lattice nodes processed, for comparison with FASTOD.
	NodesVisited int
}

// Discover runs TANE over an encoded relation and returns the complete set of
// minimal, non-trivial functional dependencies with singleton right-hand
// sides.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("tane: empty relation")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("tane: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	start := time.Now()
	n := enc.NumCols()
	var all bitset.AttrSet
	for a := 0; a < n; a++ {
		all = all.Add(a)
	}

	res := &Result{}
	empty := bitset.AttrSet(0)
	parts := map[int]map[bitset.AttrSet]*partition.Partition{
		0: {empty: partition.FromConstant(enc.NumRows())},
		1: {},
	}
	cplus := map[int]map[bitset.AttrSet]bitset.AttrSet{
		0: {empty: all},
	}

	level := make([]bitset.AttrSet, 0, n)
	for a := 0; a < n; a++ {
		s := bitset.NewAttrSet(a)
		level = append(level, s)
		parts[1][s] = partition.FromColumn(enc.Column(a), enc.Cardinality[a])
	}

	l := 1
	for len(level) > 0 && (opts.MaxLevel <= 0 || l <= opts.MaxLevel) {
		res.NodesVisited += len(level)
		ccPrev := cplus[l-1]
		ccCur := make(map[bitset.AttrSet]bitset.AttrSet, len(level))

		// Candidate sets.
		for _, x := range level {
			cc := all
			x.ForEach(func(a int) { cc = cc.Intersect(ccPrev[x.Remove(a)]) })
			ccCur[x] = cc
		}
		// Validation: X\A → A for A ∈ X ∩ C+(X).
		for _, x := range level {
			cc := ccCur[x]
			for _, a := range x.Intersect(cc).Attrs() {
				ctx := x.Remove(a)
				ctxPart := parts[l-1][ctx]
				valid := ctxPart.IsSuperkey() || ctxPart.Error() == parts[l][x].Error()
				if valid {
					res.FDs = append(res.FDs, FD{LHS: ctx, RHS: a})
					cc = cc.Remove(a)
					cc = cc.Intersect(x)
				}
			}
			ccCur[x] = cc
		}
		cplus[l] = ccCur

		// Prune nodes with empty candidate sets, then generate the next level.
		kept := level[:0]
		for _, x := range level {
			if l >= 2 && ccCur[x].IsEmpty() {
				continue
			}
			kept = append(kept, x)
		}
		level = kept

		next, nextParts := nextLevel(level, parts[l])
		parts[l+1] = nextParts
		delete(parts, l-1)
		delete(cplus, l-1)
		level = next
		l++
	}

	sort.Slice(res.FDs, func(i, j int) bool {
		a, b := res.FDs[i], res.FDs[j]
		if a.LHS.Len() != b.LHS.Len() {
			return a.LHS.Len() < b.LHS.Len()
		}
		if a.LHS != b.LHS {
			return a.LHS < b.LHS
		}
		return a.RHS < b.RHS
	})
	res.Elapsed = time.Since(start)
	return res, nil
}

// nextLevel joins prefix blocks to produce the next lattice level and its
// partitions, mirroring FASTOD's calculateNextLevel.
func nextLevel(level []bitset.AttrSet, parts map[bitset.AttrSet]*partition.Partition) ([]bitset.AttrSet, map[bitset.AttrSet]*partition.Partition) {
	present := make(map[bitset.AttrSet]bool, len(level))
	for _, x := range level {
		present[x] = true
	}
	blocks := make(map[bitset.AttrSet][]int)
	for _, x := range level {
		attrs := x.Attrs()
		last := attrs[len(attrs)-1]
		blocks[x.Remove(last)] = append(blocks[x.Remove(last)], last)
	}
	prefixes := make([]bitset.AttrSet, 0, len(blocks))
	for p := range blocks {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })

	var next []bitset.AttrSet
	nextParts := make(map[bitset.AttrSet]*partition.Partition)
	for _, prefix := range prefixes {
		members := blocks[prefix]
		sort.Ints(members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				x := prefix.Add(members[i]).Add(members[j])
				ok := true
				x.ForEach(func(a int) {
					if ok && !present[x.Remove(a)] {
						ok = false
					}
				})
				if !ok {
					continue
				}
				next = append(next, x)
				nextParts[x] = partition.Product(parts[prefix.Add(members[i])], parts[prefix.Add(members[j])])
			}
		}
	}
	return next, nextParts
}
