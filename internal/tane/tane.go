// Package tane is a clean-room implementation of the TANE functional
// dependency discovery algorithm (Huhtala et al., ICDE 1998), the FD-only
// baseline the paper compares FASTOD against in Experiment 4. Like FASTOD it
// traverses the set-containment lattice level by level with stripped
// partitions and candidate sets — the traversal itself (node generation,
// partition products, the worker pool) is the shared engine in
// internal/lattice — but it only looks for splits, so it cannot discover
// order semantics.
package tane

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/lattice"
	"repro/internal/relation"
)

// FD is a minimal functional dependency LHS → RHS with a single right-hand
// side attribute, the canonical output form of TANE.
type FD struct {
	LHS bitset.AttrSet
	RHS int
}

// String renders the FD with attribute indexes.
func (fd FD) String() string { return fmt.Sprintf("%s -> %d", fd.LHS, fd.RHS) }

// NamesString renders the FD with attribute names.
func (fd FD) NamesString(names []string) string {
	rhs := fmt.Sprintf("#%d", fd.RHS)
	if fd.RHS >= 0 && fd.RHS < len(names) {
		rhs = names[fd.RHS]
	}
	return fd.LHS.Names(names) + " -> " + rhs
}

// Options configures a TANE run.
type Options struct {
	// MaxLevel, when positive, bounds the lattice level that is processed.
	MaxLevel int
	// Workers is the number of goroutines processing lattice nodes, with the
	// same convention as core.Options.Workers (0 = GOMAXPROCS, 1 =
	// sequential). The output is identical regardless of the setting.
	Workers int
	// Scheduler selects the node ordering (DAG work-stealing by default,
	// level-synchronous barrier as an option); see core.Options.Scheduler.
	Scheduler lattice.Scheduler
	// Budget bounds the run's wall-clock time and visited lattice nodes; see
	// core.Options.Budget for the interrupt semantics.
	Budget lattice.Budget
	// Progress, when non-nil, receives one event per completed lattice level;
	// see core.Options.Progress.
	Progress func(lattice.ProgressEvent)
	// Partitions, when non-nil, shares stripped partitions with other runs
	// over the same relation; see core.Options.Partitions.
	Partitions *lattice.PartitionStore
}

// Result is the outcome of a TANE run.
type Result struct {
	FDs     []FD
	Elapsed time.Duration
	// NodesVisited counts lattice nodes processed, for comparison with FASTOD.
	NodesVisited int
	// Stats carries the engine's traversal counters (nodes, partition store
	// hits/misses, interruption).
	Stats lattice.Stats
	// Interrupted reports that the run stopped early on context cancellation
	// or budget exhaustion; FDs then holds everything found up to the
	// interrupt.
	Interrupted bool
}

// Discover runs TANE with a background context; see DiscoverContext.
func Discover(enc *relation.Encoded, opts Options) (*Result, error) {
	//lint:allow ctxfirst convenience wrapper kept for callers that cannot cancel; DiscoverContext is the cancellable entry point
	return DiscoverContext(context.Background(), enc, opts)
}

// DiscoverContext runs TANE over an encoded relation and returns the complete
// set of minimal, non-trivial functional dependencies with singleton
// right-hand sides. Cancellation and Options.Budget are honored cooperatively
// (see core.DiscoverContext): an interrupted run returns partial FDs with
// Interrupted set.
func DiscoverContext(ctx context.Context, enc *relation.Encoded, opts Options) (*Result, error) {
	if enc == nil || enc.NumCols() == 0 {
		return nil, fmt.Errorf("tane: empty relation")
	}
	if enc.NumCols() > bitset.MaxAttrs {
		return nil, fmt.Errorf("tane: relation has %d columns, maximum is %d", enc.NumCols(), bitset.MaxAttrs)
	}
	start := time.Now()
	eng, err := lattice.New(enc, lattice.Config{
		Ctx:        ctx,
		Scheduler:  opts.Scheduler,
		Workers:    opts.Workers,
		MaxLevel:   opts.MaxLevel,
		Budget:     opts.Budget,
		Store:      opts.Partitions,
		OnProgress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	all := eng.All()
	res := &Result{}

	// The per-node visit: derive C+(X) from the immediate-subset candidate
	// sets in deps, validate X\A → A for A ∈ X ∩ C+(X) against the partition
	// window, and prune nodes whose candidate set empties (no superset can
	// yield a minimal FD). Discovered FDs are merged under a mutex at node
	// completion — emission order is schedule-dependent, the final total-order
	// sort restores determinism.
	var mu sync.Mutex
	root := all
	eng.RunNodes(root, func(wk, l int, x bitset.AttrSet, deps []any) (any, bool) {
		cc := all
		var i int
		x.ForEach(func(a int) {
			cc = cc.Intersect(deps[i].(bitset.AttrSet))
			i++
		})
		var found []FD
		for _, a := range x.Intersect(cc).Attrs() {
			ctx := x.Remove(a)
			ctxPart := eng.Partition(ctx)
			valid := ctxPart.IsSuperkey() || ctxPart.Error() == eng.Partition(x).Error()
			if valid {
				found = append(found, FD{LHS: ctx, RHS: a})
				cc = cc.Remove(a)
				cc = cc.Intersect(x)
			}
		}
		if len(found) > 0 {
			mu.Lock()
			res.FDs = append(res.FDs, found...)
			mu.Unlock()
		}
		return cc, l >= 2 && cc.IsEmpty()
	})
	if err := eng.Err(); err != nil {
		// A recovered worker panic: the FDs merged so far may be incoherent,
		// so fail the discovery instead of reporting a partial.
		return nil, err
	}
	res.Stats = eng.Stats()
	res.NodesVisited = res.Stats.NodesVisited
	res.Interrupted = res.Stats.Interrupted

	sort.Slice(res.FDs, func(i, j int) bool {
		a, b := res.FDs[i], res.FDs[j]
		if a.LHS.Len() != b.LHS.Len() {
			return a.LHS.Len() < b.LHS.Len()
		}
		if a.LHS != b.LHS {
			return a.LHS < b.LHS
		}
		return a.RHS < b.RHS
	})
	res.Elapsed = time.Since(start)
	return res, nil
}
