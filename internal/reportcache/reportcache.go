// Package reportcache is a bounded, concurrency-safe LRU cache of whole
// discovery reports — the answer-level analog of lattice.PartitionStore.
// Where the partition store amortizes the sub-expressions of ONE run, the
// report cache amortizes entire runs across users: a profiling service's
// dominant access pattern is many clients asking the same questions of the
// same dataset, and the second identical question should cost a map lookup,
// not a lattice traversal.
//
// Keys are opaque strings assembled by Key from the three coordinates that
// fully determine a complete report: a dataset name, its content-version
// stamp (fastod.Dataset.Version — any mutation bumps it, so stale entries die
// by construction rather than by explicit invalidation), and the canonical
// request fingerprint (fastod.Request.Fingerprint — requests differing only
// in execution knobs such as Workers share an entry).
//
// Correctness rules are enforced IN the cache, not left to callers: an
// interrupted (partial) report is never stored — where a run stops on budget
// exhaustion depends on machine load and worker scheduling, so a partial
// report is not a function of its key and must be recomputed every time.
// Entries larger than the whole bound are refused rather than evicting
// everything else.
package reportcache

import (
	"container/list"
	"fmt"
	"sync"

	fastod "repro"
)

// DefaultMaxBytes is the default cache bound: 32 MiB of estimated retained
// report data.
const DefaultMaxBytes = 32 << 20

// Cache is the bounded LRU report cache. All methods are safe for concurrent
// use. Reports handed out are shared, not copied — callers must treat them as
// immutable, the same contract discovery results already carry.
type Cache struct {
	mu       sync.Mutex
	maxBytes int
	bytes    int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; values are *entry
	stats    Stats
}

type entry struct {
	key  string
	rep  *fastod.Report
	cost int
}

// Stats describes a cache's accounting at one point in time, mirroring the
// shape of lattice.StoreStats so operators read both the same way.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int
	// Puts counts reports accepted into the cache; Rejects counts Put calls
	// refused by the correctness rules (interrupted reports, reports larger
	// than the whole bound); Evictions counts entries removed for space.
	Puts, Rejects, Evictions int
	// Entries and Cost describe the current contents; Cost is the estimated
	// retained bytes and never exceeds MaxCost.
	Entries, Cost, MaxCost int
}

// New builds an empty cache bounded to maxBytes of estimated report data;
// maxBytes <= 0 selects DefaultMaxBytes.
func New(maxBytes int) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Key assembles the cache key of one (dataset, version, request) coordinate.
// The version separator cannot occur in a fingerprint and versions are
// process-unique (see fastod.Dataset.Version), so distinct coordinates can
// never collide even when dataset names contain unusual characters.
func Key(dataset string, version uint64, fingerprint string) string {
	return fmt.Sprintf("%s@%d|%s", dataset, version, fingerprint)
}

// Get returns the cached report for a key, refreshing its recency.
func (c *Cache) Get(key string) (*fastod.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*entry).rep, true
}

// Put stores a complete report under a key and reports whether it was
// accepted. Nil and interrupted reports are refused (a partial report is not
// a function of its key — see the package comment), as are reports whose
// estimated size exceeds the whole bound. Storing under an existing key
// refreshes recency and keeps the existing report: complete reports for one
// key are interchangeable, so the first one in wins.
func (c *Cache) Put(key string, rep *fastod.Report) bool {
	if rep == nil || rep.Interrupted {
		c.mu.Lock()
		c.stats.Rejects++
		c.mu.Unlock()
		return false
	}
	cost := reportCost(rep)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.maxBytes {
		c.stats.Rejects++
		return false
	}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return true
	}
	for c.bytes+cost > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.entries, ent.key)
		c.bytes -= ent.cost
		c.stats.Evictions++
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, rep: rep, cost: cost})
	c.bytes += cost
	c.stats.Puts++
	return true
}

// Len returns the number of cached reports.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache's accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Cost = c.bytes
	st.MaxCost = c.maxBytes
	return st
}

// Per-element cost estimates of reportCost, in bytes. Unlike the partition
// store's byte-exact accounting these are approximations (reports are pointer
// shaped, not flat arenas); they only need to be proportional so the bound
// tracks real memory within a small constant factor.
const (
	baseReportCost = 512 // envelope, payload struct, slice headers
	odCost         = 40  // canonical/bidir OD: context set + kind + attrs
	levelStatCost  = 64
	stringCost     = 32 // column name: header + short string data
)

// reportCost estimates the retained bytes of a report's payload.
func reportCost(rep *fastod.Report) int {
	cost := baseReportCost
	addResult := func(res *fastod.Result) {
		if res == nil {
			return
		}
		cost += len(res.ODs)*odCost + len(res.Levels)*levelStatCost + len(res.ColumnNames)*stringCost
	}
	switch {
	case rep.FASTOD != nil:
		addResult(rep.FASTOD)
	case rep.TANE != nil:
		cost += len(rep.TANE.FDs) * odCost
	case rep.Approx != nil:
		cost += len(rep.Approx.ODs) * (odCost + 24) // OD + measured error
	case rep.Bidir != nil:
		cost += len(rep.Bidir.ODs) * (odCost + 8) // OD + polarity
	case rep.Conditional != nil:
		addResult(rep.Conditional.Global)
		cost += len(rep.Conditional.ODs) * (odCost + 32) // OD + condition
	case rep.ORDER != nil:
		res := rep.ORDER
		cost += len(res.Canonical) * odCost
		for _, od := range res.ODs {
			cost += 48 + 8*(len(od.Left)+len(od.Right))
		}
	}
	return cost
}
