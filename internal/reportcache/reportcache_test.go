package reportcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	fastod "repro"
	"repro/internal/approx"
)

// report builds a minimal complete FASTOD report with n dependencies, so
// tests can steer entry costs.
func report(n int) *fastod.Report {
	res := &fastod.Result{}
	for i := 0; i < n; i++ {
		res.ODs = append(res.ODs, fastod.NewConstancyOD([]int{0}, i%8))
	}
	return &fastod.Report{Algorithm: fastod.AlgorithmFASTOD, FASTOD: res}
}

func TestGetPutHitMiss(t *testing.T) {
	c := New(0)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on an empty cache")
	}
	rep := report(3)
	if !c.Put("k", rep) {
		t.Fatal("Put of a complete report refused")
	}
	got, ok := c.Get("k")
	if !ok || got != rep {
		t.Fatalf("Get = (%v, %v), want the stored report", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put, 1 entry", st)
	}
	if st.Cost <= 0 || st.MaxCost != DefaultMaxBytes {
		t.Errorf("stats = %+v, want positive cost under the default bound", st)
	}
}

func TestInterruptedReportsAreNeverCached(t *testing.T) {
	c := New(0)
	rep := report(1)
	rep.Interrupted = true
	if c.Put("k", rep) {
		t.Fatal("Put accepted an interrupted report")
	}
	if c.Put("k", nil) {
		t.Fatal("Put accepted a nil report")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("interrupted report was served")
	}
	if st := c.Stats(); st.Rejects != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 2 rejects and no entries", st)
	}
}

func TestBoundAndLRUEviction(t *testing.T) {
	// Size the bound to hold roughly three of the five entries.
	cost := reportCost(report(10))
	c := New(3*cost + cost/2)
	for i := 0; i < 5; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), report(10)) {
			t.Fatalf("Put k%d refused", i)
		}
	}
	st := c.Stats()
	if st.Cost > st.MaxCost {
		t.Errorf("cost %d exceeds the bound %d", st.Cost, st.MaxCost)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite exceeding the bound")
	}
	// The oldest entries are gone, the newest survive.
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 survived eviction ahead of newer entries")
	}
	if _, ok := c.Get("k4"); !ok {
		t.Error("newest entry k4 was evicted")
	}
	// Refreshing k2's recency must make k3 the next victim.
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("k2 missing before the recency check")
	}
	for i := 5; i < 7; i++ {
		c.Put(fmt.Sprintf("k%d", i), report(10))
	}
	if _, ok := c.Get("k2"); !ok {
		t.Error("recently used k2 was evicted before stale k3")
	}
	if _, ok := c.Get("k3"); ok {
		t.Error("stale k3 survived while newer entries were inserted")
	}
}

func TestOversizedReportRefused(t *testing.T) {
	c := New(1024)
	if c.Put("big", report(10_000)) {
		t.Fatal("Put accepted a report larger than the whole bound")
	}
	if st := c.Stats(); st.Rejects != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 reject and no entries", st)
	}
}

func TestPutExistingKeyKeepsFirstReport(t *testing.T) {
	c := New(0)
	first, second := report(2), report(2)
	c.Put("k", first)
	if !c.Put("k", second) {
		t.Fatal("Put on an existing key refused")
	}
	if got, _ := c.Get("k"); got != first {
		t.Error("Put on an existing key replaced the report")
	}
	if st := c.Stats(); st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want one put and one entry", st)
	}
}

func TestKeySeparatesCoordinates(t *testing.T) {
	// Distinct (dataset, version, fingerprint) coordinates must yield
	// distinct keys, including adversarial dataset names.
	keys := map[string]bool{
		Key("a", 1, "alg=fastod"):             true,
		Key("a", 2, "alg=fastod"):             true,
		Key("b", 1, "alg=fastod"):             true,
		Key("a", 1, "alg=tane"):               true,
		Key("a@2", 1, "alg=fastod"):           true,
		Key("a", 21, "alg=fastod"):            true,
		Key("a@2|x", 3, "alg=tane"):           true,
		Key("a", 2, "x|alg=tane"):             true,
		Key("a@1|alg=x", 1, "y"):              true,
		Key("a@1", 1, "alg=x|y"):              true,
		Key("weird|name", 7, "f"):             true,
		Key("weird", 7, "name|f"):             true,
		Key("", 0, ""):                        true,
		Key("a", 12, "alg=fastod3"):           true,
		Key("a", 123, "alg=fastod"):           true,
		Key("a1", 23, "alg=fastod"):           true,
		Key("x", 1, "thr=0x1p-04"):            true,
		Key("x", 1, "thr=0x1p-03"):            true,
		Key("x", 11, "thr=0x1p-04"):           true,
		Key("x1", 1, "thr=0x1p-04"):           true,
		Key("y", 1, "attrs=1,2"):              true,
		Key("y", 1, "attrs=12"):               true,
		Key("y", 1, "attrs=auto"):             true,
		Key("y", 1, "attrs="):                 true,
		Key("z", 1, strings.Repeat("f", 100)): true,
	}
	if len(keys) != 25 {
		t.Fatalf("coordinate collision: %d distinct keys, want 25", len(keys))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(reportCost(report(5)) * 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w+i)%16)
				if rep, ok := c.Get(key); ok && rep == nil {
					t.Error("hit returned a nil report")
					return
				}
				c.Put(key, report(5))
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Cost > st.MaxCost {
		t.Errorf("cost %d exceeds bound %d after concurrent churn", st.Cost, st.MaxCost)
	}
}

func TestCostCoversEveryPayload(t *testing.T) {
	base := reportCost(&fastod.Report{})
	for name, rep := range map[string]*fastod.Report{
		"fastod":      {FASTOD: &fastod.Result{ODs: report(4).FASTOD.ODs}},
		"tane":        {TANE: &fastod.TANEResult{FDs: make([]fastod.FD, 4)}},
		"approx":      {Approx: &fastod.ApproxResult{ODs: make([]approx.Discovered, 4)}},
		"bidir":       {Bidir: &fastod.BidirResult{ODs: make([]fastod.BidirOD, 4)}},
		"conditional": {Conditional: &fastod.ConditionalResult{ODs: make([]fastod.ConditionalOD, 4)}},
		"order":       {ORDER: &fastod.ORDERResult{ODs: make([]fastod.ListOD, 4)}},
	} {
		if got := reportCost(rep); got <= base {
			t.Errorf("%s payload not charged: cost %d <= empty %d", name, got, base)
		}
	}
}
