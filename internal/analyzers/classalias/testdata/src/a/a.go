// Fixture for the classalias analyzer: arena views from Class/ForEachClass
// are read-only and must not outlive a ForEachClass callback.
package a

import "partition"

type holder struct {
	view []int32
}

func writes(p *partition.Partition) {
	p.Class(0)[0] = 99 // want `write through a partition Class view`

	cls := p.Class(1)
	cls[0] = 7 // want `write through arena view cls`
	cls[0]++   // want `write through arena view cls`

	cls = append(cls, 3) // want `append to arena view cls`
}

func reads(p *partition.Partition) int32 {
	cls := p.Class(0)
	var sum int32
	for _, row := range cls { // ok: reading a view is the point of the API
		sum += row
	}
	if len(cls) > 0 {
		sum += cls[len(cls)-1]
	}
	return sum
}

func retains(p *partition.Partition, h *holder, ch chan []int32) [][]int32 {
	var rows [][]int32
	var saved []int32
	p.ForEachClass(func(cls []int32) {
		saved = cls              // want `ForEachClass view cls retained past the callback`
		h.view = cls             // want `ForEachClass view cls retained past the callback`
		rows = append(rows, cls) // want `ForEachClass view cls retained past the callback`
		ch <- cls                // want `ForEachClass view cls sent on a channel`
	})
	_ = saved
	return rows
}

func copiesAreFine(p *partition.Partition) [][]int32 {
	var rows [][]int32
	p.ForEachClass(func(cls []int32) {
		rows = append(rows, append([]int32(nil), cls...)) // ok: a copy escapes, not the view
		local := cls                                      // ok: dies with the callback
		_ = local
		var flat []int32
		flat = append(flat, cls...) // ok: ... copies the rows out into a callback-local
		_ = flat
	})
	return rows
}

func allowlisted(p *partition.Partition) {
	//lint:allow classalias scribbling on a private clone is the test's job
	p.Class(0)[0] = 1
}
