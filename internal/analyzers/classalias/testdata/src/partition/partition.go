// Package partition is a hermetic stand-in for the repo's stripped-partition
// arena: the classalias analyzer matches methods by name on types from a
// package named partition, so fixtures exercise the contract without loading
// the real engine.
package partition

// Partition is a stripped partition backed by a flat rows arena.
type Partition struct {
	rows    []int32
	offsets []int32
}

// NumClasses returns the number of stripped classes.
func (p *Partition) NumClasses() int { return len(p.offsets) - 1 }

// Class returns the i-th class as a read-only view into the arena.
func (p *Partition) Class(i int) []int32 {
	return p.rows[p.offsets[i]:p.offsets[i+1]]
}

// ForEachClass calls fn once per class; the view is valid only for the call.
func (p *Partition) ForEachClass(fn func(cls []int32)) {
	for i, n := 0, p.NumClasses(); i < n; i++ {
		fn(p.Class(i))
	}
}
