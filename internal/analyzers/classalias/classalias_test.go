package classalias_test

import (
	"testing"

	"repro/internal/analyzers/analysistest"
	"repro/internal/analyzers/classalias"
)

func TestClassAlias(t *testing.T) {
	analysistest.Run(t, classalias.New(), "a")
}
