// Package classalias enforces the flat-arena contract from the partition
// package: Class(i) and the slice handed to a ForEachClass callback are views
// into the partition's shared rows arena. They are read-only, and the
// callback's view is valid only for the duration of the call.
//
// Flagged patterns:
//
//   - writing through a view: p.Class(i)[j] = v, or cls[j] = v where cls was
//     bound from Class or is a ForEachClass callback parameter — this
//     corrupts every other holder of the partition, including the lattice
//     partition cache;
//   - appending to a view (append(cls, ...) with the view as the first
//     argument): the view's capacity extends to the end of the arena, so the
//     append can silently overwrite the next class's rows;
//   - retaining a ForEachClass callback view past the callback: assigning it
//     to a variable declared outside the callback, storing it in a field,
//     map or slice element, appending it to an outer collection, or sending
//     it on a channel. Copy first (append([]int32(nil), cls...)) if the rows
//     must outlive the call.
//
// Alias tracking is single-level and per function: a view laundered through
// a second variable or returned from a helper is not seen. The analyzer
// recognizes the partition package by name, so fixtures can use a hermetic
// stand-in; "//lint:allow classalias <reason>" suppresses deliberate
// violations such as tests scribbling on a private clone.
package classalias

import (
	"go/ast"
	"go/types"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/astwalk"
)

// New returns the classalias analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "classalias",
		Doc:  "forbids writing through or retaining partition Class/ForEachClass arena views",
		Run:  run,
	}
}

type aliasKind int

const (
	aliasClass    aliasKind = iota // bound from a Class(i) call
	aliasCallback                  // ForEachClass callback parameter
)

type alias struct {
	kind aliasKind
	// body is the region the view may legally live in: the callback body
	// for aliasCallback, nil (no retention check) for aliasClass.
	body *ast.BlockStmt
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		aliases := collectAliases(pass, f)
		checkFile(pass, f, aliases)
	}
	return nil
}

// isPartitionMethodCall reports whether call invokes the named method on a
// value whose type comes from a package named "partition".
func isPartitionMethodCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return astwalk.ObjectInPackage(obj, "partition")
}

func collectAliases(pass *analysis.Pass, f *ast.File) map[types.Object]alias {
	aliases := make(map[types.Object]alias)
	bind := func(lhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			aliases[obj] = alias{kind: aliasClass}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isPartitionMethodCall(pass.Info, call, "Class") {
					bind(n.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if i >= len(n.Names) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isPartitionMethodCall(pass.Info, call, "Class") {
					bind(n.Names[i])
				}
			}
		case *ast.CallExpr:
			if !isPartitionMethodCall(pass.Info, n, "ForEachClass") || len(n.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(n.Args[0]).(*ast.FuncLit)
			if !ok || lit.Type.Params == nil {
				return true
			}
			for _, field := range lit.Type.Params.List {
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							aliases[obj] = alias{kind: aliasCallback, body: lit.Body}
						}
					}
				}
			}
		}
		return true
	})
	return aliases
}

func checkFile(pass *analysis.Pass, f *ast.File, aliases map[types.Object]alias) {
	resolve := func(e ast.Expr) (types.Object, alias, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, alias{}, false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return nil, alias{}, false
		}
		a, ok := aliases[obj]
		return obj, a, ok
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWriteThrough(pass, lhs, resolve)
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				checkRetention(pass, n.Lhs[i], rhs, resolve)
			}
		case *ast.IncDecStmt:
			checkWriteThrough(pass, n.X, resolve)
		case *ast.CallExpr:
			checkAppendToView(pass, n, resolve)
		case *ast.SendStmt:
			if obj, a, ok := resolve(n.Value); ok && a.kind == aliasCallback {
				pass.Reportf(n.Value.Pos(), "ForEachClass view %s sent on a channel: the receiver observes an arena view that is only valid during the callback; send a copy, or //lint:allow classalias <reason>", obj.Name())
			}
		}
		return true
	})
}

// checkWriteThrough flags assignments whose target indexes into an arena
// view, either directly (p.Class(i)[j] = v) or through an alias (cls[j] = v).
func checkWriteThrough(pass *analysis.Pass, lhs ast.Expr, resolve func(ast.Expr) (types.Object, alias, bool)) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if call, ok := ast.Unparen(ix.X).(*ast.CallExpr); ok && isPartitionMethodCall(pass.Info, call, "Class") {
		pass.Reportf(lhs.Pos(), "write through a partition Class view mutates the shared arena behind every holder of this partition; build a new partition instead, or //lint:allow classalias <reason>")
		return
	}
	if obj, _, ok := resolve(ix.X); ok {
		pass.Reportf(lhs.Pos(), "write through arena view %s mutates the shared arena behind every holder of this partition; build a new partition instead, or //lint:allow classalias <reason>", obj.Name())
	}
}

// checkAppendToView flags append(view, ...): capacity reaches into the next
// class, so the append may overwrite arena rows in place.
func checkAppendToView(pass *analysis.Pass, call *ast.CallExpr, resolve func(ast.Expr) (types.Object, alias, bool)) {
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" || len(call.Args) == 0 {
		return
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if obj, _, ok := resolve(call.Args[0]); ok {
		pass.Reportf(call.Args[0].Pos(), "append to arena view %s: its capacity extends into the next class, so the append may overwrite arena rows; copy the view first, or //lint:allow classalias <reason>", obj.Name())
	}
}

// checkRetention flags a ForEachClass callback view escaping the callback:
// assigned to an outer variable, a field, a map or slice element, or appended
// (as an element or via ...) into an outer collection.
func checkRetention(pass *analysis.Pass, lhs, rhs ast.Expr, resolve func(ast.Expr) (types.Object, alias, bool)) {
	viewArg := func(e ast.Expr) (types.Object, bool) {
		if obj, a, ok := resolve(e); ok && a.kind == aliasCallback {
			return obj, true
		}
		return nil, false
	}

	var obj types.Object
	var a alias
	var escaped bool
	if o, al, ok := resolve(rhs); ok && al.kind == aliasCallback {
		obj, a, escaped = o, al, true
	} else if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		// rows = append(rows, cls) / append(rows, cls...)
		if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fun.Name == "append" {
			if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
				for _, arg := range call.Args[1:] {
					if o, ok := viewArg(arg); ok {
						// append(dst, cls...) copies the rows out; only
						// retaining the slice itself aliases the arena.
						if call.Ellipsis == 0 {
							obj, escaped = o, true
							if al, ok2 := resolveAlias(pass, arg, resolve); ok2 {
								a = al
							}
						}
					}
				}
			}
		}
	}
	if !escaped {
		return
	}
	if storesOutside(pass, lhs, a.body) {
		pass.Reportf(rhs.Pos(), "ForEachClass view %s retained past the callback: the arena view is only valid during the call; copy it (append([]int32(nil), %s...)), or //lint:allow classalias <reason>", obj.Name(), obj.Name())
	}
}

func resolveAlias(pass *analysis.Pass, e ast.Expr, resolve func(ast.Expr) (types.Object, alias, bool)) (alias, bool) {
	if _, a, ok := resolve(e); ok {
		return a, true
	}
	return alias{}, false
}

// storesOutside reports whether assigning to lhs stores the value somewhere
// that outlives body: a field, map or slice element, a dereference, or a
// variable declared outside body.
func storesOutside(pass *analysis.Pass, lhs ast.Expr, body *ast.BlockStmt) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil || body == nil {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
