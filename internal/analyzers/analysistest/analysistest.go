// Package analysistest runs one analyzer over fixture packages and checks
// its diagnostics against "// want" expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest (which the repo's offline
// build cannot depend on).
//
// Fixtures live under the analyzer's testdata/src/<pkg>/ directory. A line
// expecting a diagnostic carries a trailing comment:
//
//	leak = cls // want `retains a partition class view`
//
// The quoted text is a regular expression matched against the diagnostic
// message; one want per line. Lines without a want comment must produce no
// diagnostic, so every fixture is simultaneously a firing and a non-firing
// test. lint:allow suppressions are honored exactly as in real runs, which
// lets fixtures prove the escape hatch works.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/driver"
)

// Run analyzes the named fixture packages (directories under
// testdata/src, e.g. "a" or "a/sub") with a and compares diagnostics
// against want comments across all loaded fixture files.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(driver.Options{
		Dir:      root,
		Patterns: pkgs,
		Tests:    true,
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}

	wants := collectWants(t, root, pkgs)
	for _, d := range diags {
		key := lineKey{d.Position.Filename, d.Position.Line}
		w := wants[key]
		switch {
		case w == nil:
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Position, d.Analyzer, d.Message)
		case w.matched:
			t.Errorf("%s: more than one diagnostic on a line with a single want: [%s] %s", d.Position, d.Analyzer, d.Message)
		case !w.re.MatchString(d.Message):
			t.Errorf("%s: diagnostic %q does not match want %q", d.Position, d.Message, w.re)
		default:
			w.matched = true
		}
	}
	for key, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRx = regexp.MustCompile("//\\s*want\\s+[`\"](.+)[`\"]\\s*$")

func collectWants(t *testing.T, root string, pkgs []string) map[lineKey]*want {
	t.Helper()
	wants := make(map[lineKey]*want)
	for _, pkg := range pkgs {
		dir := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(strings.TrimPrefix(pkg, "./"), "/...")))
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		subdirs, err := filepath.Glob(filepath.Join(dir, "*", "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, file := range append(matches, subdirs...) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRx.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, m[1], err)
				}
				wants[lineKey{file, i + 1}] = &want{re: re}
			}
		}
	}
	return wants
}
