package ctxfirst_test

import (
	"testing"

	"repro/internal/analyzers/analysistest"
	"repro/internal/analyzers/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, ctxfirst.New(), "a")
}
