// Fixture for the ctxfirst analyzer. The context and testing imports
// resolve to the hermetic stand-in packages beside this fixture.
package a

import (
	"context"
	"testing"
)

func use(ctx context.Context) {}

// Rule 1: ctx first.

func Good(ctx context.Context, n int) { use(ctx) }

func helper(t *testing.T, ctx context.Context) { use(ctx) } // ok: testing.T may lead

func tbHelper(tb testing.TB, ctx context.Context) { use(ctx) } // ok: testing.TB may lead

func Bad(n int, ctx context.Context) { use(ctx) } // want `context.Context is parameter 2`

var _ = func(name string, ctx context.Context) { use(ctx) } // want `context.Context is parameter 2`

func worse(t *testing.T, n int, ctx context.Context) { use(ctx) } // want `context.Context is parameter 3`

// Rule 2: exported ctx-less functions must not bake in a root context.

func Exported() {
	use(context.Background()) // want `bakes context.Background`
}

func ExportedVia() {
	ctx := context.Background() // want `bakes context.Background`
	use(ctx)
}

// Deprecated: use Good, which threads the caller's ctx.
func ExportedDeprecated() {
	use(context.Background()) // ok: frozen compatibility wrapper
}

func unexported() {
	use(context.Background()) // ok: rule 2 binds the exported surface only
}

// Rule 3: a function holding a ctx must not detach callees from it.

func WithCtx(ctx context.Context) {
	use(context.TODO())                                         // want `detaching it from cancellation`
	sub, cancel := context.WithTimeout(context.Background(), 5) // want `detaching it from cancellation`
	cancel()
	use(sub)
}

func normalize(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() // ok: nil normalization is an assignment
	}
	use(ctx)
}

func shutdown(ctx context.Context) {
	<-ctx.Done()
	//lint:allow ctxfirst graceful shutdown must outlive the cancelled request ctx
	fresh, cancel := context.WithTimeout(context.Background(), 5)
	cancel()
	use(fresh)
}
