// Package context is a hermetic stand-in for the standard context package:
// the ctxfirst analyzer matches by package name/path, so fixtures stay fast
// by not pulling the real dependency tree through the source importer.
package context

// Context mirrors the standard interface shape.
type Context interface {
	Done() <-chan struct{}
}

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }

// Background returns a fresh root context.
func Background() Context { return emptyCtx{} }

// TODO returns a placeholder root context.
func TODO() Context { return emptyCtx{} }

// WithTimeout derives a context (stand-in signature).
func WithTimeout(parent Context, millis int64) (Context, func()) {
	return parent, func() {}
}
