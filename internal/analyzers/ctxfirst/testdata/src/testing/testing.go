// Package testing is a hermetic stand-in for the standard testing package,
// used to prove the ctxfirst analyzer tolerates the "t before ctx" helper
// convention.
package testing

// T mirrors testing.T.
type T struct{}

// TB mirrors testing.TB.
type TB interface {
	Helper()
}
