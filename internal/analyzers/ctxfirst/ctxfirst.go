// Package ctxfirst enforces the Run path's context-plumbing contract: work
// that can block must be cancellable from the outside, which means
// context.Context travels as the first parameter and is never silently
// replaced by context.Background on the way to the engine.
//
// Three rules:
//
//  1. A function with a context.Context parameter takes it first (a leading
//     *testing.T/B/F or testing.TB is tolerated for test helpers).
//  2. An exported production function with no ctx parameter must not bake
//     context.Background()/TODO() into a call: its callers can never cancel
//     the work. Functions documented "Deprecated:" are exempt — the frozen
//     pre-Run compatibility wrappers are exactly the sanctioned exception.
//  3. A production function that already receives a ctx must not hand
//     context.Background()/TODO() to a callee, which would detach that call
//     from cancellation. (Assigning "ctx = context.Background()" to
//     normalize a nil ctx is not a call argument and stays legal.)
//
// Deliberate detachments — e.g. a graceful-shutdown path that must outlive
// the cancelled request context — use "//lint:allow ctxfirst <reason>".
package ctxfirst

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/astwalk"
)

// New returns the ctxfirst analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "ctxfirst",
		Doc:  "enforces context.Context as first parameter and forbids dropping the caller's ctx for context.Background on the Run path",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		isTest := pass.IsTestFile(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkParamOrder(pass, n.Type)
				if !isTest && n.Body != nil {
					checkBackgroundUse(pass, n)
				}
			case *ast.FuncLit:
				checkParamOrder(pass, n.Type)
			}
			return true
		})
	}
	return nil
}

// checkParamOrder flags a context.Context parameter that is not first
// (ignoring a leading testing.T/B/F/TB, the accepted helper convention).
func checkParamOrder(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	var params []types.Type
	var positions []token.Pos
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			params = append(params, t)
			positions = append(positions, field.Pos())
		}
	}
	firstAllowed := 0
	if len(params) > 0 && isTestingParam(params[0]) {
		firstAllowed = 1
	}
	for i, t := range params {
		if isContext(t) && i > firstAllowed {
			pass.Reportf(positions[i], "context.Context is parameter %d; the Run path takes ctx first so call chains thread it uniformly", i+1)
			return
		}
	}
}

// checkBackgroundUse applies rules 2 and 3 to one declared function.
func checkBackgroundUse(pass *analysis.Pass, fn *ast.FuncDecl) {
	hasCtx := funcHasCtxParam(pass.Info, fn.Type)
	exported := fn.Name.IsExported()
	if !hasCtx && (!exported || isDeprecated(fn)) {
		return
	}
	astwalk.WithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBackgroundOrTODO(pass.Info, call) {
			return true
		}
		if hasCtx {
			// Only flag the fresh context when it is fed straight into
			// another call; "ctx = context.Background()" nil-normalization
			// is legal and stays an assignment, not a call argument.
			if !isCallArgument(call, stack) {
				return true
			}
			pass.Reportf(call.Pos(), "%s already receives a ctx but hands %s to a callee, detaching it from cancellation; pass the caller's ctx (or //lint:allow ctxfirst <reason> for deliberate detachment)", fn.Name.Name, callName(call))
		} else {
			pass.Reportf(call.Pos(), "exported %s bakes %s in, so callers can never cancel the work; take ctx context.Context as the first parameter (or document the function Deprecated:)", fn.Name.Name, callName(call))
		}
		return true
	})
}

func isCallArgument(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range parent.Args {
		if ast.Unparen(arg) == call {
			return true
		}
	}
	return false
}

func funcHasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContext(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	return astwalk.NamedFromPackage(t, "Context", "context")
}

func isTestingParam(t types.Type) bool {
	for _, name := range []string{"T", "B", "F", "TB"} {
		if astwalk.NamedFromPackage(t, name, "testing") {
			return true
		}
	}
	return false
}

func isBackgroundOrTODO(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return "context." + sel.Sel.Name + "()"
	}
	return "context.Background()"
}

func isDeprecated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "Deprecated:") {
			return true
		}
	}
	return false
}
