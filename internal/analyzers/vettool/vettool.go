// Package vettool implements the build-system side of the `go vet -vettool`
// protocol, so cmd/odlint can be driven by the go toolchain:
//
//	go vet -vettool=$(which odlint) ./...
//
// The protocol (reverse-engineered from cmd/go/internal/vet and the
// unitchecker vendored into GOROOT) has three invocation shapes:
//
//	odlint -V=full    print an executable fingerprint for the build cache
//	odlint -flags     describe supported flags in JSON (we declare none)
//	odlint unit.cfg   analyze the single package unit described by the JSON
//	                  config: parse cfg.GoFiles, type-check against the
//	                  compiler export data in cfg.PackageFile, run the suite,
//	                  print diagnostics to stderr, exit 1 if any
//
// Differences from the standalone odlint mode, both inherent to go vet's
// one-process-per-package model:
//
//   - analyzer Finish hooks (cross-package checks, e.g. faultpoint's
//     every-point-is-wired pass) do not run;
//   - unused lint:allow comments are not reported, because the diagnostic an
//     allow suppresses may be one only the standalone mode can produce.
//
// The standalone mode is therefore authoritative; vettool mode exists so the
// suite also slots into go vet workflows and toolchain caching.
package vettool

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/driver"
)

// Config mirrors the JSON config the go command writes for each vet unit
// (unitchecker.Config in x/tools; stable, as cmd/go itself depends on it).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Intercept handles the vettool protocol invocations. It returns false if
// args is not a vettool invocation (the caller should run standalone mode);
// otherwise it performs the request and exits the process.
func Intercept(args []string, analyzers []*analysis.Analyzer) bool {
	if len(args) != 1 {
		return false
	}
	switch {
	case args[0] == "-V=full":
		printVersion()
		os.Exit(0)
	case args[0] == "-flags":
		fmt.Println("[]") // no tool-specific flags
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0], analyzers))
	}
	return false
}

// printVersion emulates objabi.AddVersionFlag's -V=full output: cmd/go hashes
// this line into the build cache key, so analysis re-runs when the tool binary
// changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "odlint:", err)
	os.Exit(1)
}

// runUnit analyzes one package unit and returns the process exit code.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %w", cfgFile, err))
	}

	// The go command expects a facts file for downstream units regardless of
	// findings. The suite keeps no cross-unit facts, so it is always empty.
	writeFacts := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeFacts()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeFacts()
				return 0 // the compiler reports the parse error
			}
			fatal(err)
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // resolve vendoring etc.
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImp.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts()
			return 0 // the compiler reports the type error
		}
		fatal(err)
	}

	var raw []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { raw = append(raw, d) }
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, report)
		if err := a.Run(pass); err != nil {
			fatal(fmt.Errorf("%s: %s: %w", a.Name, cfg.ImportPath, err))
		}
		// Finish hooks are skipped: they need the whole program, and this
		// process sees one package unit. Standalone odlint runs them.
	}
	findings := driver.Resolve(fset, files, raw, false)

	writeFacts()
	for _, d := range findings {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
