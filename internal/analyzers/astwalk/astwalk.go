// Package astwalk holds the small AST utilities the odlint analyzers share:
// a stack-carrying traversal (the standard ast.Inspect loses ancestry, which
// most retention/context checks need) and predicates for recognizing the
// engine's panic-recovery and package-identity idioms.
package astwalk

import (
	"go/ast"
	"go/types"
)

// WithStack walks root in depth-first order calling fn with each node and
// the stack of its ancestors (outermost first, not including n). If fn
// returns false the node's children are skipped.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped, so no pop will arrive for n.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// CallsRecover reports whether the function literal body calls recover()
// directly (not inside a nested function literal).
func CallsRecover(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "recover" {
				if obj, ok := info.Uses[id].(*types.Builtin); ok && obj.Name() == "recover" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// HasTopLevelRecover reports whether a function body's top-level statements
// include "defer func() { ... recover() ... }()" — the engine's trapped-
// worker idiom.
func HasTopLevelRecover(body *ast.BlockStmt, info *types.Info) bool {
	if body == nil {
		return false
	}
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && CallsRecover(lit.Body, info) {
			return true
		}
	}
	return false
}

// Callee resolves the object a call expression invokes: a function, method
// or variable of function type, reached through a plain identifier or a
// selector. Returns nil for func literals and anything unresolvable.
func Callee(call *ast.CallExpr, info *types.Info) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// NamedFromPackage reports whether t (or the type it points to) is a named
// type with the given name whose package is named pkgName. Matching by
// package name rather than import path keeps analyzers testable against
// fixture stand-ins of internal packages.
func NamedFromPackage(t types.Type, name, pkgName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// ObjectInPackage reports whether obj is declared in a package named pkgName.
func ObjectInPackage(obj types.Object, pkgName string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}
