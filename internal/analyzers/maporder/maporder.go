// Package maporder guards the determinism contract: reports are
// byte-identical across schedulers and worker counts (TestSchedulerDifferential),
// so no Go map's nondeterministic iteration order may leak into ordered
// output. The sanctioned idiom — used throughout the engine, e.g. collecting
// a slice's condition values — is to drain the map into a slice and sort it
// before anything order-sensitive consumes it.
//
// The analyzer flags, inside any "for ... range m" over a map:
//
//   - a send into a channel: the receiver observes map order directly;
//   - an append to a slice declared outside the loop, unless that slice is
//     later passed to a sort or slices call in the same function — the
//     collect-then-sort idiom.
//
// This is a syntactic approximation of "flows toward a Report, ProgressEvent
// or SSE write": it cannot see across function boundaries, so a collector
// that is sorted by its caller, or an accumulator whose order is genuinely
// irrelevant (a set destined for another map), is annotated
// "//lint:allow maporder <reason>" at the append.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/astwalk"
)

// New returns the maporder analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "maporder",
		Doc:  "flags map-iteration order leaking into ordered output (appends without a later sort, channel sends)",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		astwalk.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.Info.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			checkMapRange(pass, rs, enclosingFuncBody(rs, stack))
			return true
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function containing rs.
func enclosingFuncBody(rs *ast.RangeStmt, stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: the receiver observes nondeterministic map order; collect into a slice, sort, then send (or //lint:allow maporder <reason>)")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				target := appendTarget(pass.Info, n.Lhs[i], rhs)
				if target == nil {
					continue
				}
				if declaredWithin(target, rs.Body) {
					continue // loop-local accumulator dies with the iteration
				}
				if sortedAfter(pass.Info, funcBody, rs, target) {
					continue // the collect-then-sort idiom
				}
				pass.Reportf(rhs.Pos(), "append to %s while ranging over a map, with no later sort in this function: element order is nondeterministic and breaks byte-identical reports; sort %s after the loop, sort it in the caller, or //lint:allow maporder <reason>", target.Name(), target.Name())
			}
		}
		return true
	})
}

// appendTarget returns the object of lhs when the assignment has the shape
// "x = append(x, ...)" with x a slice-typed identifier.
func appendTarget(info *types.Info, lhs, rhs ast.Expr) types.Object {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
		return nil
	}
	return obj
}

func declaredWithin(obj types.Object, body *ast.BlockStmt) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// after the range statement, anywhere later in the enclosing function.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			argFound := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
					argFound = true
					return false
				}
				return true
			})
			if argFound {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
