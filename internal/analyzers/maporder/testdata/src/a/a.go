// Fixture for the maporder analyzer: map iteration order must not leak into
// ordered output.
package a

import "sort"

func collectThenSort(groups map[string][]int) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k) // ok: sorted after the loop
	}
	sort.Strings(keys)
	return keys
}

func sortSliceIdiom(groups map[int]string) []string {
	var values []string
	for _, v := range groups {
		values = append(values, v) // ok: sort.Slice below references values
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	return values
}

func neverSorted(groups map[string]int) []string {
	var out []string
	for k := range groups {
		out = append(out, k) // want `append to out while ranging over a map, with no later sort`
	}
	return out
}

func sendsDirectly(groups map[string]int, ch chan string) {
	for k := range groups {
		ch <- k // want `channel send inside map iteration`
	}
}

func loopLocal(groups map[string][]int) int {
	total := 0
	for _, vs := range groups {
		var squares []int
		for _, v := range vs {
			squares = append(squares, v*v) // ok: accumulator scoped to the iteration
		}
		total += len(squares)
	}
	return total
}

func notAMap(vs []int) []int {
	var out []int
	for _, v := range vs {
		out = append(out, v) // ok: slice iteration is ordered
	}
	return out
}

func allowlisted(set map[string]struct{}) map[string]struct{} {
	var keys []string
	for k := range set {
		//lint:allow maporder keys feed another map so order is irrelevant
		keys = append(keys, k)
	}
	dup := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		dup[k] = struct{}{}
	}
	return dup
}

// The spec-canonicalization idiom: per-column order overrides live in a map
// keyed by column name, and the canonical form materializes them as a slice
// sorted by that name. The analyzer must accept the sorted materialization
// and still flag the variant that forgets the sort.
type columnOrder struct {
	column    string
	direction int
}

func canonicalizeSpecs(byColumn map[string]columnOrder) []columnOrder {
	out := make([]columnOrder, 0, len(byColumn))
	for _, o := range byColumn {
		out = append(out, o) // ok: sorted by column name below
	}
	sort.Slice(out, func(i, j int) bool { return out[i].column < out[j].column })
	return out
}

func canonicalizeSpecsUnsorted(byColumn map[string]columnOrder) []columnOrder {
	out := make([]columnOrder, 0, len(byColumn))
	for _, o := range byColumn {
		out = append(out, o) // want `append to out while ranging over a map, with no later sort`
	}
	return out
}

// The rank-encoding idiom: a map of distinct raw values drained into a slice
// that is key-sorted immediately afterwards.
func distinctRanks(distinct map[string]bool) map[string]int {
	values := make([]string, 0, len(distinct))
	for v := range distinct {
		values = append(values, v) // ok: key-sorted below before ranks are assigned
	}
	sort.Strings(values)
	ranks := make(map[string]int, len(values))
	for i, v := range values {
		ranks[v] = i
	}
	return ranks
}

func sortedInClosure(groups map[string]int) func() []string {
	return func() []string {
		var keys []string
		for k := range groups {
			keys = append(keys, k) // ok: sorted before the closure returns
		}
		sort.Strings(keys)
		return keys
	}
}
