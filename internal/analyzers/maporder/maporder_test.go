package maporder_test

import (
	"testing"

	"repro/internal/analyzers/analysistest"
	"repro/internal/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.New(), "a")
}
