// Package driver loads Go packages from source and runs the project's
// static-analysis suite over them.
//
// It fills the role golang.org/x/tools/go/packages + multichecker would play,
// using only the standard library: repo packages (and test fixtures) are
// parsed and type-checked from source, while imports that resolve to neither
// the module nor the load root fall through to go/importer's source importer,
// which reads GOROOT. Nothing here shells out to the go tool, so the driver
// works in the offline build environment the repo targets.
//
// The driver also owns the suppression mechanism shared by every analyzer:
// a "//lint:allow <analyzer> <reason>" comment on the flagged line, or on the
// line directly above it, silences that analyzer's diagnostics there. The
// reason is mandatory — an allow without one is itself reported — and, when
// ReportUnusedAllows is set (the odlint default), an allow that suppresses
// nothing is reported too, so stale escape hatches cannot accumulate.
package driver

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analyzers/analysis"
)

// Options configures one analysis run.
type Options struct {
	// Dir is the load root: the module root for real runs, or a fixture
	// source root (testdata/src) for analysistest runs.
	Dir string
	// Patterns name what to analyze, relative to Dir: "./..." for the whole
	// tree, "./internal/lattice" or "fixturepkg" for single packages, and
	// "fixturepkg/..." for fixture subtrees.
	Patterns []string
	// Tests includes _test.go files: in-package test files are type-checked
	// together with the package, external foo_test packages become analysis
	// units of their own. Individual analyzers may still skip test files for
	// production-only invariants (Pass.IsTestFile).
	Tests bool
	// ReportUnusedAllows reports lint:allow comments that suppressed nothing.
	ReportUnusedAllows bool
}

// Diagnostic is a resolved, printable finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Run loads every package matched by opts and applies each analyzer to each
// package, then runs analyzer Finish hooks and resolves suppressions.
func Run(opts Options, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	ld := newLoader(opts.Dir)
	dirs, err := expandPatterns(opts.Dir, opts.Patterns)
	if err != nil {
		return nil, err
	}
	var units []*unit
	for _, dir := range dirs {
		us, err := ld.analysisUnits(dir, opts.Tests)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}

	var raw []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { raw = append(raw, d) }
	for _, a := range analyzers {
		for _, u := range units {
			pass := analysis.NewPass(a, ld.fset, u.files, u.pkg, u.info, report)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.path, err)
			}
		}
		if a.Finish != nil {
			if err := a.Finish(report); err != nil {
				return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
			}
		}
	}

	var allFiles []*ast.File
	for _, u := range units {
		allFiles = append(allFiles, u.files...)
	}
	return Resolve(ld.fset, allFiles, raw, opts.ReportUnusedAllows), nil
}

// Resolve turns raw analyzer diagnostics into the final finding list: it
// applies lint:allow suppressions found in files, reports malformed (and,
// optionally, unused) allows, dedups, and sorts by position. It is shared by
// Run and by the unitchecker-mode entry point, which loads packages through
// the go toolchain instead of this driver.
func Resolve(fset *token.FileSet, files []*ast.File, raw []analysis.Diagnostic, reportUnusedAllows bool) []Diagnostic {
	allows := collectAllows(fset, files)
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, d := range raw {
		rd := Diagnostic{Position: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: d.Message}
		if allows.suppresses(rd) {
			continue
		}
		if key := rd.String(); !seen[key] {
			seen[key] = true
			out = append(out, rd)
		}
	}
	out = append(out, allows.problems(reportUnusedAllows)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// AllowDirective is the comment prefix of the suppression escape hatch.
const AllowDirective = "lint:allow"

type allowEntry struct {
	file     string
	line     int
	analyzer string
	pos      token.Position
	used     bool
}

type allowSet struct {
	entries   []*allowEntry
	malformed []Diagnostic
}

// collectAllows scans every analyzed file for lint:allow comments.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{}
	seenFile := make(map[string]bool) // test variants share prod files; scan once
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if seenFile[name] {
			continue
		}
		seenFile[name] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, AllowDirective))
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Position: pos,
						Analyzer: "lint",
						Message:  "malformed lint:allow: need \"//lint:allow <analyzer> <reason>\" — the reason is not optional",
					})
					continue
				}
				s.entries = append(s.entries, &allowEntry{
					file: pos.Filename, line: pos.Line, analyzer: fields[0], pos: pos,
				})
			}
		}
	}
	return s
}

// suppresses reports whether d is covered by an allow on its own line or the
// line directly above, and marks that allow used.
func (s *allowSet) suppresses(d Diagnostic) bool {
	for _, e := range s.entries {
		if e.file != d.Position.Filename || e.analyzer != d.Analyzer {
			continue
		}
		if e.line == d.Position.Line || e.line == d.Position.Line-1 {
			e.used = true
			return true
		}
	}
	return false
}

func (s *allowSet) problems(reportUnused bool) []Diagnostic {
	out := append([]Diagnostic(nil), s.malformed...)
	if reportUnused {
		for _, e := range s.entries {
			if !e.used {
				out = append(out, Diagnostic{
					Position: e.pos,
					Analyzer: "lint",
					Message:  fmt.Sprintf("unused lint:allow for %q: nothing is suppressed here anymore; delete the comment", e.analyzer),
				})
			}
		}
	}
	return out
}

// expandPatterns resolves patterns to package directories under root.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// unit is one analysis unit: a package (possibly test-augmented) or an
// external test package.
type unit struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	root       string
	modulePath string
	fset       *token.FileSet
	std        types.Importer
	deps       map[string]*unit // prod-only variants, keyed by import path
}

func newLoader(root string) *loader {
	// The source importer consults build.Default; with cgo enabled it would
	// try to preprocess cgo files in packages like net. The pure-Go variants
	// type-check fine and are all the analyzers need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		root:       root,
		modulePath: readModulePath(filepath.Join(root, "go.mod")),
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		deps:       make(map[string]*unit),
	}
}

func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// dirFor maps an import path to a directory under the load root, or "" if
// the path is not local (and should fall through to the GOROOT importer).
func (ld *loader) dirFor(path string) string {
	if ld.modulePath != "" {
		if path == ld.modulePath {
			return ld.root
		}
		if rest, ok := strings.CutPrefix(path, ld.modulePath+"/"); ok {
			return filepath.Join(ld.root, filepath.FromSlash(rest))
		}
		return ""
	}
	// Fixture mode: any path that exists under the root is local.
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	if hasGoFiles(dir) {
		return dir
	}
	return ""
}

// pathFor maps a directory under the load root to its import path.
func (ld *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if ld.modulePath != "" {
		if rel == "." {
			return ld.modulePath, nil
		}
		return ld.modulePath + "/" + rel, nil
	}
	return rel, nil
}

// Import implements types.Importer over local packages with a GOROOT source
// fallback, letting the type checker pull in any dependency it meets.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := ld.dirFor(path); dir != "" {
		u, err := ld.loadDep(path, dir)
		if err != nil {
			return nil, err
		}
		return u.pkg, nil
	}
	return ld.std.Import(path)
}

// loadDep loads a local package (production files only) for use as an import.
func (ld *loader) loadDep(path, dir string) (*unit, error) {
	if u, ok := ld.deps[path]; ok {
		return u, nil
	}
	prod, _, _, err := ld.parseDir(dir)
	if err != nil {
		return nil, err
	}
	u, err := ld.check(path, prod, ld)
	if err != nil {
		return nil, err
	}
	ld.deps[path] = u
	return u, nil
}

// analysisUnits loads the package in dir for analysis: the production
// package (test-augmented when tests is set and in-package test files
// exist), plus the external test package when one exists.
func (ld *loader) analysisUnits(dir string, tests bool) ([]*unit, error) {
	path, err := ld.pathFor(dir)
	if err != nil {
		return nil, err
	}
	prod, inTest, extTest, err := ld.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(prod) == 0 && len(inTest) == 0 && len(extTest) == 0 {
		return nil, nil
	}
	var units []*unit
	base := prod
	if tests {
		base = append(append([]*ast.File(nil), prod...), inTest...)
	}
	if len(base) > 0 {
		u, err := ld.check(path, base, ld)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
		if tests && len(extTest) > 0 {
			// The external foo_test package must see the test-augmented
			// variant of foo (the export_test.go convention).
			imp := importerFunc(func(p string) (*types.Package, error) {
				if p == path {
					return u.pkg, nil
				}
				return ld.Import(p)
			})
			tu, err := ld.check(path+"_test", extTest, imp)
			if err != nil {
				return nil, err
			}
			units = append(units, tu)
		}
	}
	return units, nil
}

// parseDir parses every .go file in dir into production files, in-package
// test files and external (foo_test) test files.
func (ld *loader) parseDir(dir string) (prod, inTest, extTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			prod = append(prod, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return prod, inTest, extTest, nil
}

// check type-checks files as package path using imp for imports.
func (ld *loader) check(path string, files []*ast.File, imp types.Importer) (*unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &unit{path: path, files: files, pkg: pkg, info: info}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
