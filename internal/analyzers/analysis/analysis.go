// Package analysis defines the core types of the project's static-analysis
// suite: Analyzer, Pass and Diagnostic, mirroring the shape of
// golang.org/x/tools/go/analysis so the odlint analyzers read like standard
// vet checks. The x/tools module is deliberately not a dependency — the repo
// builds offline with a bare go.mod — so this package carries the minimal
// subset the suite needs, plus one extension the standard framework lacks:
// a whole-program Finish hook for cross-package invariants (used by the
// faultpoint analyzer's declared-but-never-wired check).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check. Analyzers are stateless from the
// driver's point of view; an analyzer that needs cross-package state (for a
// Finish check) closes over it in its constructor, and callers must build a
// fresh instance per run.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name> <reason>" suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by "odlint -list".
	Doc string
	// Run inspects one package and reports violations through pass.Report.
	Run func(pass *Pass) error
	// Finish, if non-nil, runs once after Run has seen every package in the
	// job, for whole-program checks that no single package can decide.
	// Diagnostics are reported through the same Report used by the passes.
	Finish func(report func(Diagnostic)) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed files, comments included. Test files
	// are present only when the driver was configured with Tests: true.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its usage maps
	// (Types, Defs, Uses, Selections, Implicits).
	Pkg  *types.Package
	Info *types.Info
	// report delivers a diagnostic to the driver (set by the driver).
	report func(Diagnostic)
}

// NewPass assembles a pass; it is exported for the driver and tests.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, report: report}
}

// IsTestFile reports whether f was parsed from a _test.go file. Analyzers
// that enforce production-only invariants (nakedgo, the ctxfirst context
// plumbing rules) use it to skip test code by design rather than by driver
// configuration.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return isTestFilename(name)
}

func isTestFilename(name string) bool {
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// Reportf reports a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}
