package nakedgo_test

import (
	"testing"

	"repro/internal/analyzers/analysistest"
	"repro/internal/analyzers/nakedgo"
)

func TestNakedGo(t *testing.T) {
	analysistest.Run(t, nakedgo.New(), "a")
}
