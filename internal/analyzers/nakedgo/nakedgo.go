// Package nakedgo enforces the engine's fault-containment invariant: every
// goroutine spawned in production code must be panic-safe. PR 8 bought the
// guarantee that a panicking worker becomes a typed error instead of a dead
// process; this analyzer keeps it true as the codebase grows.
//
// A "go" statement passes if the goroutine provably routes panics somewhere:
//
//   - the spawned function literal's top level defers a recover
//     ("defer func() { if rec := recover(); ... }()"), or
//   - the literal's top level calls a panic-safe function — one whose own
//     body defers a recover at its top level, like the engine's runTrapped
//     wrapper, the DAG scheduler's worker method, or a local closure such as
//     conditional discovery's safeRunWorker — or
//   - the "go" statement directly names such a panic-safe function.
//
// Anything else is a naked goroutine and is flagged. Test files are skipped
// by design: a panicking test goroutine crashing the test binary is the
// desired outcome there. Deliberate exceptions in production code use
// "//lint:allow nakedgo <reason>".
package nakedgo

import (
	"go/ast"
	"go/types"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/astwalk"
)

// New returns the nakedgo analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "nakedgo",
		Doc:  "flags goroutines that neither recover panics nor route through a panic-safe helper (fault-containment contract)",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	safe := collectPanicSafe(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtIsSafe(g, pass.Info, safe) {
				pass.Reportf(g.Pos(), "naked goroutine: the spawned function neither defers a recover nor routes through a panic-safe helper; a panic here kills the process instead of becoming a typed error (wrap the body in a defer/recover, call a trapped helper, or annotate //lint:allow nakedgo <reason>)")
			}
			return true
		})
	}
	return nil
}

// collectPanicSafe indexes every function-shaped object in the package whose
// body opens with a top-level deferred recover: declared functions, methods,
// and local closures bound to a variable.
func collectPanicSafe(pass *analysis.Pass) map[types.Object]bool {
	safe := make(map[types.Object]bool)
	record := func(id *ast.Ident) {
		if obj := pass.Info.Defs[id]; obj != nil {
			safe[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			safe[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && astwalk.HasTopLevelRecover(n.Body, pass.Info) {
					record(n.Name)
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && astwalk.HasTopLevelRecover(lit.Body, pass.Info) {
						record(id)
					}
				}
			case *ast.ValueSpec:
				for i, rhs := range n.Values {
					if lit, ok := rhs.(*ast.FuncLit); ok && i < len(n.Names) && astwalk.HasTopLevelRecover(lit.Body, pass.Info) {
						record(n.Names[i])
					}
				}
			}
			return true
		})
	}
	return safe
}

func goStmtIsSafe(g *ast.GoStmt, info *types.Info, safe map[types.Object]bool) bool {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if astwalk.HasTopLevelRecover(fun.Body, info) {
			return true
		}
		// A top-level call (or defer) into a panic-safe function also
		// contains the goroutine: its panics never unwind past the helper.
		for _, stmt := range fun.Body.List {
			var call *ast.CallExpr
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			}
			if call == nil {
				continue
			}
			if obj := astwalk.Callee(call, info); obj != nil && safe[obj] {
				return true
			}
		}
		return false
	default:
		obj := astwalk.Callee(g.Call, info)
		return obj != nil && safe[obj]
	}
}
