package a

// Test files are exempt from nakedgo by design: a panicking test goroutine
// crashing the test binary is the desired outcome in tests.
func spawnInTest() {
	go cleanup()
	go func() {}()
}
