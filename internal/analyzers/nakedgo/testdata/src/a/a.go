// Fixture for the nakedgo analyzer: every goroutine spawned in production
// code must recover panics itself or route through a panic-safe helper.
package a

// trapped mirrors internal/lattice's runTrapped: a helper whose top level
// defers a recover, so goroutines may route through it.
func trapped(body func()) {
	defer func() {
		if rec := recover(); rec != nil {
			_ = rec
		}
	}()
	body()
}

type engine struct{}

// worker mirrors the DAG scheduler's worker method: panic-safe by its own
// top-level deferred recover.
func (e *engine) worker(wk int) {
	defer func() {
		if rec := recover(); rec != nil {
			_ = rec
		}
	}()
	_ = wk
}

// drain has no recover anywhere: spawning it naked must fire.
func (e *engine) drain() {}

func cleanup() {}

func spawnSafe() {
	go trapped(func() {})              // ok: names a panic-safe helper
	go func() { trapped(func() {}) }() // ok: routes through the helper
	go func() {                        // ok: own top-level defer-recover
		defer func() {
			if rec := recover(); rec != nil {
				_ = rec
			}
		}()
		cleanup()
	}()

	e := &engine{}
	go e.worker(1) // ok: panic-safe method

	safeRun := func() {
		defer func() {
			_ = recover()
		}()
		cleanup()
	}
	go func() { safeRun() }() // ok: local panic-safe closure
	go safeRun()              // ok: spawning the closure directly

	var wg struct{ done func() }
	wg.done = cleanup
	go func() { // ok: helper call after an unrelated defer, the engine idiom
		defer wg.done()
		trapped(cleanup)
	}()
}

func spawnNaked() {
	go func() {}() // want `naked goroutine`

	e := &engine{}
	go e.drain() // want `naked goroutine`
	go cleanup() // want `naked goroutine`
	go func() {  // want `naked goroutine`
		defer cleanup() // deferring a non-safe function does not contain panics
		panic("boom")
	}()

	deepRecover := func() {
		func() {
			defer func() { _ = recover() }()
		}()
	}
	go deepRecover() // want `naked goroutine`
}

func allowlisted() {
	//lint:allow nakedgo fixture demonstrates the escape hatch
	go cleanup()
}
