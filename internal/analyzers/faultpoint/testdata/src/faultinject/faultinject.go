// Package faultinject is a hermetic stand-in for the repo's fault-injection
// registry: the faultpoint analyzer matches the package by name and its
// exported Point type, so fixtures exercise both checks without loading the
// real engine packages.
package faultinject

// Point names a registered injection site.
type Point string

const (
	// WiredPoint is referenced by the consumer fixture package.
	WiredPoint Point = "wired.point"
	// UnwiredPoint is declared but never referenced outside this package.
	UnwiredPoint Point = "unwired.point" // want `declared but never wired`
	// TestOnlyPoint is exempted by its marker. faultpoint:test-only
	TestOnlyPoint Point = "test.only"
)

// EnginePoints mirrors the real package's sweep list; references from inside
// the declaring package do not count as wiring.
var EnginePoints = []Point{WiredPoint, UnwiredPoint, TestOnlyPoint}

// Rule mirrors the real armed-rule struct.
type Rule struct {
	Point Point
	After int64
}

// Fire consults the armed plan at point.
func Fire(p Point) error { _ = p; return nil }

// Hit is Fire for call sites with no error path.
func Hit(p Point) { _ = p }
