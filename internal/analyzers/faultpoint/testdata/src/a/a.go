// Fixture for the faultpoint analyzer's per-package check: injection points
// must be named by constants declared in the faultinject package.
package a

import "faultinject"

func wire() {
	faultinject.Hit(faultinject.WiredPoint)      // ok: declared constant
	_ = faultinject.Fire(faultinject.WiredPoint) // ok: declared constant

	faultinject.Hit("ad.hoc")                          // want `stringly-typed faultinject point "ad.hoc"`
	_ = faultinject.Fire(faultinject.Point("convert")) // want `stringly-typed faultinject point "convert"`

	good := faultinject.Rule{Point: faultinject.WiredPoint, After: 1}
	_ = good
	bad := faultinject.Rule{Point: "rule.literal"} // want `stringly-typed faultinject point "rule.literal"`
	_ = bad

	for _, p := range faultinject.EnginePoints {
		faultinject.Hit(p) // ok: non-constant values flow freely
	}
}

// A Point constant declared outside faultinject is a shadow registry.
const local faultinject.Point = "shadow" // want `stringly-typed faultinject point "shadow"`

func useLocal() {
	faultinject.Hit(local) // want `stringly-typed faultinject point local`
}

func escapeHatch() {
	//lint:allow faultpoint fixture demonstrates the escape hatch
	faultinject.Hit("escape.hatch")
}
