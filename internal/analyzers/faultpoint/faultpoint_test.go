package faultpoint_test

import (
	"testing"

	"repro/internal/analyzers/analysistest"
	"repro/internal/analyzers/faultpoint"
)

func TestFaultPoint(t *testing.T) {
	analysistest.Run(t, faultpoint.New(), "a", "faultinject")
}
