// Package faultpoint enforces the fault-injection registry contract from
// PR 8: every injection site names a declared faultinject.Point constant —
// never an ad-hoc string — and every declared point is actually wired into
// a hot path somewhere in the program.
//
// Two checks:
//
//  1. Per package: any constant expression of type faultinject.Point outside
//     the faultinject package itself must be a reference to a constant
//     declared there. String literals ('Fire("store.get")') and local
//     conversions ('faultinject.Point("x")') are flagged: a typo'd point
//     name silently never fires, which is exactly the failure mode the
//     typed registry exists to prevent. Non-constant values (variables,
//     struct fields, range elements) flow freely.
//
//  2. Whole program (Finish): every Point constant declared in faultinject
//     must be referenced by at least one other package — a Fire/Hit call, a
//     Rule literal, a chaos-suite sweep — or carry a "// faultpoint:test-only"
//     marker on its declaration. A declared-but-unwired point is dead
//     configuration that the chaos suite believes it covers but never hits.
//
// The faultinject package is recognized by name and its exported Point type,
// so analysis fixtures can substitute a hermetic stand-in.
package faultpoint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/astwalk"
)

// TestOnlyMarker exempts a declared point from the must-be-wired check.
const TestOnlyMarker = "faultpoint:test-only"

type declaredPoint struct {
	name     string
	pos      token.Pos
	testOnly bool
}

type checker struct {
	declared []declaredPoint
	used     map[string]bool // const name -> referenced outside faultinject
}

// New returns a fresh faultpoint analyzer; the instance carries the
// cross-package wiring state consumed by its Finish hook, so build a new one
// per run.
func New() *analysis.Analyzer {
	c := &checker{used: make(map[string]bool)}
	return &analysis.Analyzer{
		Name:   "faultpoint",
		Doc:    "requires faultinject points to be declared Point constants and every declared point to be wired to a hit site",
		Run:    c.run,
		Finish: c.finish,
	}
}

func (c *checker) run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "faultinject" {
		c.collectDeclared(pass)
		return nil
	}
	for _, f := range pass.Files {
		c.checkFile(pass, f)
	}
	return nil
}

// collectDeclared records every Point constant (and its test-only marker)
// declared in the faultinject package.
func (c *checker) collectDeclared(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			declDoc := commentHasMarker(gd.Doc)
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				testOnly := declDoc || commentHasMarker(vs.Doc) || commentHasMarker(vs.Comment)
				for _, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !isPointType(obj.Type()) {
						continue
					}
					c.declared = append(c.declared, declaredPoint{
						name:     name.Name,
						pos:      name.Pos(),
						testOnly: testOnly,
					})
				}
			}
		}
	}
}

// checkFile flags stringly-typed Point constants and records references to
// declared ones.
func (c *checker) checkFile(pass *analysis.Pass, f *ast.File) {
	var violations []ast.Expr
	ast.Inspect(f, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Value == nil || !isPointType(tv.Type) {
			return true
		}
		if obj := referencedConst(pass.Info, e); obj != nil {
			if astwalk.ObjectInPackage(obj, "faultinject") {
				c.used[obj.Name()] = true
				return true
			}
			// A constant of type Point declared outside faultinject is a
			// shadow registry; fall through to flag it at the use.
		}
		violations = append(violations, e)
		return false // don't descend: the literal inside a conversion is covered
	})
	for _, e := range violations {
		pass.Reportf(e.Pos(), "stringly-typed faultinject point %s: use a Point constant declared in the faultinject package, so the chaos sweep and the hit site cannot drift apart", exprText(e))
	}
}

func (c *checker) finish(report func(analysis.Diagnostic)) error {
	for _, d := range c.declared {
		if d.testOnly || c.used[d.name] {
			continue
		}
		report(analysis.Diagnostic{
			Pos:      d.pos,
			Analyzer: "faultpoint",
			Message:  "faultinject point " + d.name + " is declared but never wired to a hit site outside the faultinject package; thread it into the hot path, delete it, or mark it // faultpoint:test-only",
		})
	}
	return nil
}

func isPointType(t types.Type) bool {
	return astwalk.NamedFromPackage(t, "Point", "faultinject")
}

// referencedConst returns the constant object e names, if e is a plain
// identifier or selector reference.
func referencedConst(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Const); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[e.Sel].(*types.Const); ok {
			return obj
		}
	}
	return nil
}

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return exprText(e.Args[0])
		}
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "value"
}

func commentHasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, TestOnlyMarker) {
			return true
		}
	}
	return false
}
