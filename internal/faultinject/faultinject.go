// Package faultinject provides deterministic fault injection for the
// discovery engine and the odserve service.
//
// Production code calls Fire (or Hit) at named injection points threaded
// into the hot paths: partition products, partition-store lookups and
// evictions, DAG node dispatch and stealing, CSV decoding and SSE writes.
// When no plan is armed — the production state — Fire is a single atomic
// pointer load that returns nil; no locks, no allocation, no time reads.
//
// Tests arm a Plan describing, per point, which hit should fire and what
// should happen: a panic (exercising the engine's containment layer), an
// error (exercising graceful-degradation paths), or a delay (exercising
// budget/interrupt paths). Schedules are deterministic: rules trigger on
// exact per-point hit counts, so a seeded test reproduces byte-identically.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Point names a registered injection site. Points are plain strings so new
// sites need no central registry edit, but the canonical engine/service
// sites are declared below and swept by the chaos suite.
type Point string

// Canonical injection points. Keep in sync with the chaos suite sweep.
const (
	// PartitionProduct fires before a stripped-partition product is
	// computed for a lattice node (both schedulers).
	PartitionProduct Point = "partition.product"
	// StoreGet fires inside PartitionStore.Get before the lookup.
	StoreGet Point = "store.get"
	// StoreEvict fires inside the store's evictOne before a victim is
	// chosen.
	StoreEvict Point = "store.evict"
	// NodeDispatch fires when the DAG scheduler hands a node to a worker.
	NodeDispatch Point = "node.dispatch"
	// NodeSteal fires when a DAG worker steals from another deque.
	NodeSteal Point = "node.steal"
	// CSVDecode fires at the head of CSV decoding (relation.ReadCSV).
	CSVDecode Point = "csv.decode"
	// SSEWrite fires before each SSE progress frame is written.
	SSEWrite Point = "sse.write"
)

// EnginePoints are the injection points that live inside a discovery run
// (as opposed to the service I/O points). The chaos suite sweeps these.
var EnginePoints = []Point{PartitionProduct, StoreGet, StoreEvict, NodeDispatch, NodeSteal}

// Action selects what an armed rule does when it triggers.
type Action uint8

const (
	// ActionPanic panics with a *Panicked value carrying the point.
	ActionPanic Action = iota
	// ActionError makes Fire return an error wrapping ErrInjected.
	ActionError
	// ActionDelay sleeps for Rule.Delay, then behaves as a no-op.
	ActionDelay
)

func (a Action) String() string {
	switch a {
	case ActionPanic:
		return "panic"
	case ActionError:
		return "error"
	case ActionDelay:
		return "delay"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// ErrInjected is the sentinel wrapped by every error Fire returns; callers
// and tests match it with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Panicked is the value ActionPanic panics with, so recovery layers and
// tests can recognize an injected panic and report which point raised it.
type Panicked struct {
	Point Point
	Hit   int64
}

func (p *Panicked) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// Rule arms one behavior at one point.
type Rule struct {
	Point  Point
	Action Action
	// After is how many hits at Point pass untouched before the rule
	// starts firing: 0 fires on the very first hit, 2 on the third.
	After int64
	// Times bounds how many hits fire once the rule is active;
	// 0 means every subsequent hit fires.
	Times int64
	// Delay is the sleep duration for ActionDelay.
	Delay time.Duration
}

// Plan is a set of armed rules plus per-point hit accounting.
type Plan struct {
	rules map[Point][]Rule
	hits  map[Point]*atomic.Int64
	fired atomic.Int64
}

// NewPlan builds a plan from rules. Multiple rules per point are allowed;
// the first matching rule (in argument order) wins per hit.
func NewPlan(rules ...Rule) *Plan {
	p := &Plan{
		rules: make(map[Point][]Rule, len(rules)),
		hits:  make(map[Point]*atomic.Int64, len(rules)),
	}
	for _, r := range rules {
		p.rules[r.Point] = append(p.rules[r.Point], r)
		if p.hits[r.Point] == nil {
			p.hits[r.Point] = new(atomic.Int64)
		}
	}
	return p
}

// Seeded derives a deterministic one-rule plan for point: the seed picks
// which hit (within the first maxAfter+1) triggers the action. Chaos tests
// use it to vary where in a traversal a fault lands without losing
// reproducibility.
func Seeded(seed int64, point Point, action Action, maxAfter int64, delay time.Duration) *Plan {
	rng := rand.New(rand.NewSource(seed))
	after := int64(0)
	if maxAfter > 0 {
		after = rng.Int63n(maxAfter + 1)
	}
	return NewPlan(Rule{Point: point, Action: action, After: after, Times: 1, Delay: delay})
}

// Hits reports how many times point was reached while this plan was armed.
func (p *Plan) Hits(point Point) int64 {
	c := p.hits[point]
	if c == nil {
		return 0
	}
	return c.Load()
}

// Fired reports how many rule activations (panics, errors, delays) this
// plan has produced.
func (p *Plan) Fired() int64 { return p.fired.Load() }

// active is the armed plan; nil in production. Fire's fast path is this
// single atomic load.
var active atomic.Pointer[Plan]

// Enable arms plan process-wide and returns a disarm func. Exactly one
// plan may be armed at a time; arming over a live plan panics, because two
// overlapping chaos tests would corrupt each other's schedules.
func Enable(p *Plan) (disarm func()) {
	if p == nil {
		panic("faultinject: Enable(nil)")
	}
	if !active.CompareAndSwap(nil, p) {
		panic("faultinject: a plan is already armed")
	}
	return func() { active.CompareAndSwap(p, nil) }
}

// Enabled reports whether a plan is currently armed. The engine's chaos
// suite uses it to guard debug-only bookkeeping.
func Enabled() bool { return active.Load() != nil }

// Fire consults the armed plan at point. Disarmed (the production state)
// it returns nil after one atomic load. Armed, it counts the hit and
// applies the first matching rule: ActionPanic panics with *Panicked,
// ActionError returns an error wrapping ErrInjected, ActionDelay sleeps
// and returns nil.
func Fire(point Point) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fire(point)
}

// Hit is Fire for call sites with no error path: an ActionError rule at
// such a point escalates to a panic (which the engine contains), so every
// registered point can express all three actions.
func Hit(point Point) {
	if err := Fire(point); err != nil {
		panic(&Panicked{Point: point, Hit: activeHits(point)})
	}
}

func activeHits(point Point) int64 {
	if p := active.Load(); p != nil {
		return p.Hits(point)
	}
	return 0
}

func (p *Plan) fire(point Point) error {
	rules := p.rules[point]
	if len(rules) == 0 {
		return nil
	}
	n := p.hits[point].Add(1)
	for _, r := range rules {
		if n <= r.After {
			continue
		}
		if r.Times > 0 && n > r.After+r.Times {
			continue
		}
		p.fired.Add(1)
		switch r.Action {
		case ActionPanic:
			panic(&Panicked{Point: point, Hit: n})
		case ActionError:
			return fmt.Errorf("%w at %s (hit %d)", ErrInjected, point, n)
		case ActionDelay:
			time.Sleep(r.Delay)
			return nil
		}
	}
	return nil
}
