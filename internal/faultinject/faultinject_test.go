package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFireWithoutPlanIsNoop(t *testing.T) {
	if Enabled() {
		t.Fatal("no plan armed, Enabled() = true")
	}
	if err := Fire(PartitionProduct); err != nil {
		t.Fatalf("Fire with no plan: %v", err)
	}
	Hit(NodeDispatch) // must not panic
}

func TestErrorRuleFiresOnSchedule(t *testing.T) {
	p := NewPlan(Rule{Point: StoreGet, Action: ActionError, After: 2, Times: 1})
	defer Enable(p)()

	for i := 1; i <= 2; i++ {
		if err := Fire(StoreGet); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	err := Fire(StoreGet)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 = %v, want ErrInjected", err)
	}
	if err := Fire(StoreGet); err != nil {
		t.Fatalf("Times=1 rule fired twice: %v", err)
	}
	if got := p.Hits(StoreGet); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
	if got := p.Fired(); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	// Other points are untouched by the plan.
	if err := Fire(StoreEvict); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestTimesZeroFiresForever(t *testing.T) {
	p := NewPlan(Rule{Point: CSVDecode, Action: ActionError, After: 1})
	defer Enable(p)()

	if err := Fire(CSVDecode); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	for i := 2; i <= 5; i++ {
		if err := Fire(CSVDecode); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d = %v, want ErrInjected", i, err)
		}
	}
}

func TestPanicRule(t *testing.T) {
	defer Enable(NewPlan(Rule{Point: NodeSteal, Action: ActionPanic, Times: 1}))()

	defer func() {
		rec := recover()
		pk, ok := rec.(*Panicked)
		if !ok {
			t.Fatalf("recovered %v (%T), want *Panicked", rec, rec)
		}
		if pk.Point != NodeSteal || pk.Hit != 1 {
			t.Fatalf("Panicked = %+v", pk)
		}
	}()
	Hit(NodeSteal)
	t.Fatal("Hit did not panic")
}

func TestDelayRule(t *testing.T) {
	defer Enable(NewPlan(Rule{Point: SSEWrite, Action: ActionDelay, Delay: 10 * time.Millisecond, Times: 1}))()

	start := time.Now()
	if err := Fire(SSEWrite); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("Fire returned after %v, want >= 10ms", d)
	}
}

func TestEnableRejectsOverlap(t *testing.T) {
	disarm := Enable(NewPlan())
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping Enable did not panic")
		}
		disarm()
	}()
	Enable(NewPlan())
}

func TestDisarmRestoresFastPath(t *testing.T) {
	Enable(NewPlan(Rule{Point: StoreGet, Action: ActionError}))()
	if Enabled() {
		t.Fatal("disarmed plan still enabled")
	}
	if err := Fire(StoreGet); err != nil {
		t.Fatalf("Fire after disarm: %v", err)
	}
}

func TestSeededIsDeterministic(t *testing.T) {
	a := Seeded(42, PartitionProduct, ActionPanic, 10, 0)
	b := Seeded(42, PartitionProduct, ActionPanic, 10, 0)
	if len(a.rules[PartitionProduct]) != 1 || len(b.rules[PartitionProduct]) != 1 {
		t.Fatalf("Seeded rules: %v / %v", a.rules, b.rules)
	}
	ra, rb := a.rules[PartitionProduct][0], b.rules[PartitionProduct][0]
	if ra != rb {
		t.Fatalf("same seed produced different rules: %+v vs %+v", ra, rb)
	}
	if ra.After < 0 || ra.After > 10 {
		t.Fatalf("After = %d, want in [0, 10]", ra.After)
	}
	if c := Seeded(43, PartitionProduct, ActionPanic, 1<<20, 0); c.rules[PartitionProduct][0] == ra {
		// Not strictly impossible, but with maxAfter 2^20 a collision means
		// the seed is being ignored.
		t.Fatalf("different seeds produced identical rules: %+v", ra)
	}
}
