package server

import (
	"testing"
	"time"

	fastod "repro"
)

func TestCapBudget(t *testing.T) {
	max := fastod.Budget{Timeout: 10 * time.Second, MaxNodes: 1000}
	cases := []struct {
		name string
		req  fastod.Budget
		want fastod.Budget
	}{
		{"zero means the cap, never unbounded", fastod.Budget{}, max},
		{"below the cap passes through", fastod.Budget{Timeout: time.Second, MaxNodes: 10}, fastod.Budget{Timeout: time.Second, MaxNodes: 10}},
		{"above the cap clamps", fastod.Budget{Timeout: time.Minute, MaxNodes: 1 << 30}, max},
		{"knobs clamp independently", fastod.Budget{Timeout: time.Minute, MaxNodes: 5}, fastod.Budget{Timeout: 10 * time.Second, MaxNodes: 5}},
		// Negative knobs pass through so Validate can reject them with a 400
		// instead of the cap silently repairing an invalid request.
		{"negative passes through for validation", fastod.Budget{Timeout: -1, MaxNodes: -2}, fastod.Budget{Timeout: -1, MaxNodes: -2}},
	}
	for _, tc := range cases {
		if got := capBudget(tc.req, max); got != tc.want {
			t.Errorf("%s: capBudget(%+v) = %+v, want %+v", tc.name, tc.req, got, tc.want)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	s := New(Config{})
	if cap(s.sem) != DefaultMaxConcurrent {
		t.Errorf("semaphore capacity = %d, want %d", cap(s.sem), DefaultMaxConcurrent)
	}
	if s.maxBudget != fastod.DefaultBudget() {
		t.Errorf("maxBudget = %+v, want DefaultBudget %+v", s.maxBudget, fastod.DefaultBudget())
	}
	if s.maxUploadBytes != DefaultMaxUploadBytes || s.maxDatasets != DefaultMaxDatasets {
		t.Errorf("limits = (%d, %d), want defaults", s.maxUploadBytes, s.maxDatasets)
	}
}

func TestAcquireRespectsCancellation(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	release := s.acquire(nil)
	if release == nil {
		t.Fatal("acquire on an idle server failed")
	}
	// The only slot is taken: a caller whose request is already done must
	// give up instead of queueing forever.
	done := make(chan struct{})
	close(done)
	if got := s.acquire(done); got != nil {
		t.Fatal("acquire with a closed done channel should return nil")
	}
	// After release the slot is free again. (A closed done is not used here:
	// with both select cases ready, acquire may legitimately pick either.)
	release()
	if release = s.acquire(nil); release == nil {
		t.Fatal("acquire after release should succeed")
	}
	release()
}

func TestAddDatasetLimits(t *testing.T) {
	s := New(Config{MaxDatasets: 1})
	if err := s.AddDataset("", fastod.EmployeesExample()); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := s.AddDataset("a", fastod.EmployeesExample()); err != nil {
		t.Fatalf("first AddDataset: %v", err)
	}
	if err := s.AddDataset("a", fastod.EmployeesExample()); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if err := s.AddDataset("b", fastod.EmployeesExample()); err == nil {
		t.Error("dataset limit must be enforced")
	}
}
