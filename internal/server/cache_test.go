package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
)

// discoverRaw POSTs a JSON discovery request and returns the status plus the
// exact response bytes, for byte-identical replay assertions.
func discoverRaw(t *testing.T, url, dataset, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/datasets/"+dataset+"/discover", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading discover response: %v", err)
	}
	return resp.StatusCode, raw
}

func TestDiscoverCacheHitReplaysByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()

	body := `{"algorithm":"fastod"}`
	_, first := discoverRaw(t, ts.URL, "emp", body)
	_, second := discoverRaw(t, ts.URL, "emp", body)
	_, third := discoverRaw(t, ts.URL, "emp", body)

	var miss, hit DiscoverResponse
	if err := json.Unmarshal(first, &miss); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &hit); err != nil {
		t.Fatal(err)
	}
	if miss.Cached {
		t.Error("first request reported cached")
	}
	if !hit.Cached {
		t.Fatal("second identical request not served from the cache")
	}
	// Replays of the same stored report are byte-identical, and a hit differs
	// from its miss only by the cached marker: the stored report carries the
	// original run's stats and elapsed time.
	if !bytes.Equal(second, third) {
		t.Errorf("two cache hits differ:\n %s\n %s", second, third)
	}
	normalized := bytes.Replace(first, []byte(`"cached":false`), []byte(`"cached":true`), 1)
	if !bytes.Equal(normalized, second) {
		t.Errorf("hit is not a replay of the miss:\n %s\n %s", normalized, second)
	}

	st := s.ReportCacheStats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v, want 2 hits, 1 miss, 1 entry", st)
	}
}

func TestDiscoverCacheIsWorkerInvariant(t *testing.T) {
	// Workers is an execution knob with no effect on the output, so requests
	// differing only in it must share a cache entry. An empty body and an
	// explicit default algorithm are likewise the same question.
	s, ts := newTestServer(t, Config{})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()

	discoverRaw(t, ts.URL, "emp", `{"workers":1}`)
	for _, body := range []string{`{"workers":4}`, `{"algorithm":"fastod"}`, ``} {
		var out DiscoverResponse
		_, raw := discoverRaw(t, ts.URL, "emp", body)
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Cached {
			t.Errorf("request %q missed the cache populated by workers:1", body)
		}
	}
	if st := s.ReportCacheStats(); st.Entries != 1 {
		t.Errorf("worker variants split into %d cache entries, want 1", st.Entries)
	}
}

func TestDiscoverCacheDistinguishesOrderSpecs(t *testing.T) {
	// Requests differing only in order_specs ask different questions (the
	// lattice runs over different rank encodings), so they must never share a
	// cache entry — while each spec replays from its own entry.
	s, ts := newTestServer(t, Config{})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()

	bodies := []string{
		`{"order_specs":[{"column":"sal","direction":"desc"}]}`,
		`{"order_specs":[{"column":"sal","direction":"desc","nulls":"last"}]}`,
	}
	for _, body := range bodies {
		var out DiscoverResponse
		_, raw := discoverRaw(t, ts.URL, "emp", body)
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if out.Cached {
			t.Errorf("first request under spec %q reported cached", body)
		}
	}
	for _, body := range bodies {
		var out DiscoverResponse
		_, raw := discoverRaw(t, ts.URL, "emp", body)
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Cached {
			t.Errorf("repeat request under spec %q missed the cache", body)
		}
	}
	if st := s.ReportCacheStats(); st.Entries != 2 || st.Misses != 2 || st.Hits != 2 {
		t.Errorf("cache stats = %+v, want 2 entries, 2 misses, 2 hits", st)
	}

	// Spelling variants of the same canonical spec are the same question: the
	// default placement written out explicitly must hit the desc entry.
	var out DiscoverResponse
	_, raw := discoverRaw(t, ts.URL, "emp",
		`{"order_specs":[{"column":"sal","direction":"DESC","nulls":"first"}]}`)
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("canonically-equal spec spelling missed the cache")
	}
}

func TestDiscoverCacheInvalidatedOnVersionBump(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()

	discoverRaw(t, ts.URL, "emp", ``)
	ds, ok := s.dataset("emp")
	if !ok {
		t.Fatal("uploaded dataset missing")
	}
	ds.BumpVersion()
	var out DiscoverResponse
	_, raw := discoverRaw(t, ts.URL, "emp", ``)
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Error("report served from the cache across a dataset version bump")
	}
	// The fresh report was stored under the new version; the old entry is
	// stranded (and will age out via LRU), not served.
	_, raw = discoverRaw(t, ts.URL, "emp", ``)
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("post-bump report not cached under the new version")
	}
}

func TestInterruptedReportsAreNeverCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	upload(t, ts, "flight", csvOf(t, datagen.FlightLike(300, 6, 2017))).Body.Close()

	for i := 0; i < 2; i++ {
		var out DiscoverResponse
		_, raw := discoverRaw(t, ts.URL, "flight", `{"max_nodes":1}`)
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Interrupted {
			t.Fatalf("run %d with max_nodes=1 not interrupted", i)
		}
		if out.Cached {
			t.Fatalf("run %d served an interrupted report from the cache", i)
		}
	}
	if st := s.ReportCacheStats(); st.Entries != 0 || st.Rejects != 2 {
		t.Errorf("cache stats = %+v, want 0 entries and 2 rejected puts", st)
	}
}

func TestDiscoverStreamCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	upload(t, ts, "flight", csvOf(t, datagen.FlightLike(300, 6, 2017))).Body.Close()

	// Populate through the plain endpoint; the stream shares the cache (the
	// report is the same either way), and workers is not part of the key.
	discoverRaw(t, ts.URL, "flight", ``)

	resp, err := http.Post(ts.URL+"/v1/datasets/flight/discover/stream", "application/json", strings.NewReader(`{"workers":1}`))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	events := parseSSE(t, resp.Body)
	// A cache hit has no run to report progress on: the stream is exactly one
	// final report event.
	if len(events) != 1 || events[0].name != "report" {
		names := make([]string, len(events))
		for i, ev := range events {
			names[i] = ev.name
		}
		t.Fatalf("cached stream events = %v, want exactly [report]", names)
	}
	var out DiscoverResponse
	if err := json.Unmarshal([]byte(events[0].data), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached || out.Interrupted || out.Count == 0 {
		t.Errorf("cached stream report %+v, want a complete cached report", out)
	}
}

func TestHealthzReportsCacheStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()
	discoverRaw(t, ts.URL, "emp", ``)
	discoverRaw(t, ts.URL, "emp", ``)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", health.Status)
	}
	rc := health.ReportCache
	if rc.Hits != 1 || rc.Misses != 1 || rc.Entries != 1 {
		t.Errorf("healthz report_cache = %+v, want 1 hit, 1 miss, 1 entry", rc)
	}
	if rc.CostBytes <= 0 || rc.MaxCostBytes != DefaultReportCacheBytes {
		t.Errorf("healthz report_cache accounting = %+v, want positive cost under the default bound", rc)
	}
}

func TestDiscoverBodyTooLargeIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRequestBytes: 64})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()

	big := `{"algorithm":"fastod","fastod":{` + strings.Repeat(" ", 128) + `}}`
	status, raw := discoverRaw(t, ts.URL, "emp", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d (%s), want 413", status, raw)
	}
	// A body within the bound still works.
	if status, _ := discoverRaw(t, ts.URL, "emp", `{"workers":1}`); status != http.StatusOK {
		t.Errorf("small body status = %d, want 200", status)
	}
}

func TestDiscoverTrailingGarbageIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()

	// Each body starts with one valid JSON value; everything after it must
	// make the request fail, not be silently dropped.
	for _, body := range []string{
		`{}{"workers":-1}`,
		`{} 5`,
		`{"workers":1}[]`,
		`{} trailing`,
		`null null`,
	} {
		status, raw := discoverRaw(t, ts.URL, "emp", body)
		if status != http.StatusBadRequest {
			t.Errorf("body %q status = %d (%s), want 400", body, status, raw)
			continue
		}
		var errBody errorBody
		if err := json.Unmarshal(raw, &errBody); err != nil {
			t.Fatalf("decoding error response %q: %v", raw, err)
		}
		if !strings.Contains(errBody.Error, "trailing") && !strings.Contains(errBody.Error, "single JSON") {
			t.Errorf("body %q error %q does not mention the trailing data", body, errBody.Error)
		}
	}
}

func TestConcurrentUploadSameNameRace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csv := csvOf(t, datagen.Employees())

	const racers = 8
	statuses := make([]int, racers)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			resp := upload(t, ts, "emp", csv)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	start.Done()
	wg.Wait()

	var created, conflict, other int
	for _, code := range statuses {
		switch code {
		case http.StatusCreated:
			created++
		case http.StatusConflict:
			conflict++
		default:
			other++
		}
	}
	// Exactly one racer wins; every loser sees the conflict, never a 500 and
	// never a second 201.
	if created != 1 || conflict != racers-1 || other != 0 {
		t.Errorf("race outcome: %d created, %d conflict, %d other (statuses %v), want 1/%d/0",
			created, conflict, other, statuses, racers-1)
	}
}
