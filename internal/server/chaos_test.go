package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fastod "repro"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// The service-level chaos tests: the engine's containment guarantees are only
// useful if the HTTP layer above them keeps its own invariants when they fire
// — the run-semaphore slot comes back, the client gets a structured error
// with a correlatable request ID, the stack lands in the server log and never
// on the wire, and the process keeps serving.

func addFlight(t *testing.T, s *Server) {
	t.Helper()
	if err := s.AddDataset("flight", fastod.SyntheticFlight(100, 5, 2017)); err != nil {
		t.Fatal(err)
	}
}

// TestPanicReleasesSemaphoreSlot: with MaxConcurrent=1, a run killed by an
// injected worker panic must return its semaphore slot — the follow-up
// request on the same server must run (not starve waiting for the slot) and
// succeed once the fault is disarmed.
func TestPanicReleasesSemaphoreSlot(t *testing.T) {
	leakcheck.Check(t)
	var logBuf bytes.Buffer
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		ErrorLog:      log.New(&logBuf, "", 0),
	})
	addFlight(t, s)

	disarm := faultinject.Enable(faultinject.NewPlan(faultinject.Rule{
		Point:  faultinject.PartitionProduct,
		Action: faultinject.ActionPanic,
		Times:  1,
	}))
	status, _, errBody := discover(t, ts, "flight", `{}`)
	disarm()

	if status != http.StatusInternalServerError {
		t.Fatalf("poisoned run returned %d, want 500 (body %+v)", status, errBody)
	}
	if errBody.RequestID == "" {
		t.Error("500 body has no request_id")
	}
	if strings.Contains(errBody.Error, "goroutine") {
		t.Errorf("stack leaked to the client: %q", errBody.Error)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, errBody.RequestID) {
		t.Errorf("server log does not mention request %s:\n%s", errBody.RequestID, logged)
	}
	if !strings.Contains(logged, "goroutine") {
		t.Errorf("server log carries no stack trace:\n%s", logged)
	}

	// Budget the retry so a leaked slot fails fast as 503 instead of hanging
	// the test: beginRun gives up when the request deadline passes while
	// still waiting for a slot.
	status, resp, errBody := discover(t, ts, "flight", `{"timeout_ms": 2000}`)
	if status != http.StatusOK {
		t.Fatalf("run after contained panic returned %d (%+v): the semaphore slot did not come back", status, errBody)
	}
	if resp.Count == 0 || resp.Interrupted {
		t.Fatalf("recovery run is not a clean full run: %+v", resp)
	}

	// The failure is visible on /healthz as a counter, not as degraded state
	// (one contained panic does not impair the server).
	health := getHealth(t, ts)
	if health.Runtime.InternalErrors < 1 {
		t.Errorf("healthz internal_errors = %d, want >= 1", health.Runtime.InternalErrors)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status = %q after recovery, want ok", health.Status)
	}
}

// TestSoftMemoryShedding: with an absurdly small heap limit the server must
// shed new runs with 503 + Retry-After before starting them, report itself
// degraded on /healthz, and count the shed requests.
func TestSoftMemoryShedding(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{MaxHeapBytes: 1})
	addFlight(t, s)

	resp, err := http.Post(ts.URL+"/v1/datasets/flight/discover", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("discover over the heap limit returned %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 carries no Retry-After header")
	}

	health := getHealth(t, ts)
	if health.Status != "degraded" {
		t.Errorf("healthz status = %q over the heap limit, want degraded", health.Status)
	}
	if health.Runtime.ShedRequests < 1 {
		t.Errorf("healthz shed_requests = %d, want >= 1", health.Runtime.ShedRequests)
	}
	if health.Runtime.HeapBytes == 0 || health.Runtime.Goroutines == 0 {
		t.Errorf("healthz runtime gauges are empty: %+v", health.Runtime)
	}
	// Reads (healthz, listings) are never shed — only run admission is.
	if lr, err := http.Get(ts.URL + "/v1/datasets"); err != nil || lr.StatusCode != http.StatusOK {
		t.Errorf("dataset listing sheds under memory pressure: %v / %v", err, lr.Status)
	} else {
		lr.Body.Close()
	}
}

// TestStreamChaos: an injected worker panic mid-stream surfaces as a
// structured SSE "error" event carrying a request ID, and an injected SSE
// write failure drops exactly that frame without killing the stream or the
// run — in both cases the connection ends cleanly and the server keeps going.
func TestStreamChaos(t *testing.T) {
	leakcheck.Check(t)
	var logBuf bytes.Buffer
	s, ts := newTestServer(t, Config{ErrorLog: log.New(&logBuf, "", 0)})
	addFlight(t, s)

	stream := func(body string) (events map[string][]string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/datasets/flight/discover/stream", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream returned %d", resp.StatusCode)
		}
		events = make(map[string][]string)
		var event string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				event = v
			} else if v, ok := strings.CutPrefix(line, "data: "); ok {
				events[event] = append(events[event], v)
			}
		}
		if err := sc.Err(); err != nil && err != io.EOF {
			t.Fatalf("reading stream: %v", err)
		}
		return events
	}

	// Worker panic mid-run: the stream ends with an error event, not a
	// severed connection, and the request ID in it matches the log line.
	disarm := faultinject.Enable(faultinject.NewPlan(faultinject.Rule{
		Point:  faultinject.PartitionProduct,
		Action: faultinject.ActionPanic,
		Times:  1,
	}))
	events := stream(`{}`)
	disarm()
	if len(events["error"]) != 1 {
		t.Fatalf("poisoned stream emitted %d error events, want 1 (%v)", len(events["error"]), events)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(events["error"][0]), &eb); err != nil {
		t.Fatalf("decoding error event %q: %v", events["error"][0], err)
	}
	if eb.RequestID == "" || !strings.Contains(logBuf.String(), eb.RequestID) {
		t.Errorf("stream error %+v is not correlated with the log:\n%s", eb, logBuf.String())
	}
	if len(events["report"]) != 0 {
		t.Error("poisoned stream also emitted a report")
	}

	// Dropped frames: the first three progress writes fail, the report frame
	// must still arrive (each write failure is contained to its frame).
	disarm = faultinject.Enable(faultinject.NewPlan(faultinject.Rule{
		Point:  faultinject.SSEWrite,
		Action: faultinject.ActionError,
		Times:  3,
	}))
	events = stream(`{}`)
	disarm()
	if len(events["report"]) != 1 {
		t.Fatalf("stream with dropped frames emitted %d reports, want 1 (%v)", len(events["report"]), events)
	}
	var rep DiscoverResponse
	if err := json.Unmarshal([]byte(events["report"][0]), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Count == 0 || rep.Interrupted {
		t.Errorf("run behind a lossy stream is not clean: %+v", rep)
	}
}

func getHealth(t *testing.T, ts *httptest.Server) HealthResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	return health
}
