package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	fastod "repro"
	"repro/internal/datagen"
	"repro/internal/relation"
)

// csvOf renders a generated relation as the CSV bytes a client would upload.
func csvOf(t *testing.T, rel *relation.Relation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := relation.WriteCSV(rel, &buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// upload POSTs CSV bytes as a named dataset and returns the response.
func upload(t *testing.T, ts *httptest.Server, name string, csv []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets?name="+name, "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatalf("upload %s: %v", name, err)
	}
	return resp
}

// discover POSTs a JSON discovery request and decodes the response body.
func discover(t *testing.T, ts *httptest.Server, dataset, body string) (int, DiscoverResponse, errorBody) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets/"+dataset+"/discover", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading discover response: %v", err)
	}
	var out DiscoverResponse
	var errBody errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding discover response %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &errBody); err != nil {
		t.Fatalf("decoding error response %q: %v", raw, err)
	}
	return resp.StatusCode, out, errBody
}

func TestUploadListDiscover(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csv := csvOf(t, datagen.Employees())

	resp := upload(t, ts, "employees", csv)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, want 201", resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	resp.Body.Close()
	if info.Name != "employees" || info.Rows != 6 || len(info.Columns) != 9 {
		t.Errorf("upload info = %+v, want employees 6x9", info)
	}

	// The dataset shows up in the listing.
	listResp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var list DatasetList
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	listResp.Body.Close()
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "employees" {
		t.Errorf("list = %+v, want exactly employees", list)
	}

	// A default (empty-body) discover is a budget-capped FASTOD run.
	status, out, _ := discover(t, ts, "employees", "")
	if status != http.StatusOK {
		t.Fatalf("discover status = %d, want 200", status)
	}
	if out.Algorithm != "fastod" || out.Interrupted || out.Count == 0 || len(out.Dependencies) != out.Count {
		t.Errorf("discover response = %+v, want a complete fastod report", out)
	}
	if out.Budget.TimeoutMS == 0 || out.Budget.MaxNodes == 0 {
		t.Errorf("budget %+v not capped by the server default", out.Budget)
	}
	if out.Workers < 1 {
		t.Errorf("workers = %d, want the resolved effective count", out.Workers)
	}

	// Repeated discovery hits the dataset's shared partition cache.
	status, out, _ = discover(t, ts, "employees", `{"algorithm":"tane"}`)
	if status != http.StatusOK {
		t.Fatalf("tane discover status = %d, want 200", status)
	}
	if out.Stats.PartitionHits == 0 {
		t.Errorf("second run on the dataset had no partition hits: %+v", out.Stats)
	}

	// Count-only runs report a tally but materialize nothing — the
	// dependency list must still be an empty array, never JSON null.
	func() {
		resp, err := http.Post(ts.URL+"/v1/datasets/employees/discover", "application/json",
			strings.NewReader(`{"fastod":{"count_only":true}}`))
		if err != nil {
			t.Fatalf("count-only discover: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(raw), `"dependencies":[]`) {
			t.Errorf("count-only response lacks an empty dependencies array: %s", raw)
		}
	}()

	// Duplicate uploads conflict; unnamed uploads are rejected.
	if resp := upload(t, ts, "employees", csv); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate upload status = %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp, err = http.Post(ts.URL+"/v1/datasets", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatalf("unnamed upload: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unnamed upload status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestUploadDatasetLimitIs507(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDatasets: 1})
	csv := csvOf(t, datagen.Employees())
	resp := upload(t, ts, "a", csv)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first upload status = %d, want 201", resp.StatusCode)
	}
	resp = upload(t, ts, "b", csv)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Errorf("upload beyond the dataset limit status = %d, want 507", resp.StatusCode)
	}
}

func TestDiscoverRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := upload(t, ts, "emp", csvOf(t, datagen.Employees()))
	resp.Body.Close()

	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"out-of-range threshold", `{"algorithm":"approx","approx":{"threshold":1.5}}`, "Threshold"},
		{"negative workers", `{"workers":-3}`, "Workers"},
		{"negative max_level", `{"max_level":-1}`, "MaxLevel"},
		{"negative min_slice_rows", `{"algorithm":"conditional","conditional":{"min_slice_rows":-1}}`, "MinSliceRows"},
		{"out-of-range condition attr", `{"algorithm":"conditional","conditional":{"condition_attrs":[99]}}`, "ConditionAttrs"},
		{"unknown algorithm", `{"algorithm":"magic"}`, "algorithm"},
		{"unknown field", `{"algorithmm":"fastod"}`, "unknown field"},
		{"not json", `{{{`, "decoding"},
	}
	for _, tc := range cases {
		status, _, errBody := discover(t, ts, "emp", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, status)
			continue
		}
		if !strings.Contains(errBody.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, errBody.Error, tc.want)
		}
	}

	// Validation failures must name the typed error so clients can grep for
	// it the way the library greps errors.Is.
	status, _, errBody := discover(t, ts, "emp", `{"workers":-3}`)
	if status != http.StatusBadRequest || !strings.Contains(errBody.Error, "invalid request") {
		t.Errorf("validation error = %d %q, want 400 mentioning the typed invalid-request error", status, errBody.Error)
	}

	if status, _, _ := discover(t, ts, "nope", ""); status != http.StatusNotFound {
		t.Errorf("unknown dataset status = %d, want 404", status)
	}
}

func TestDiscoverInterruptedIsA200(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := upload(t, ts, "flight", csvOf(t, datagen.FlightLike(300, 6, 2017)))
	resp.Body.Close()

	// A one-node allowance trips at the first level barrier, deterministically:
	// the run returns a partial report, and the server reports it as success.
	status, out, _ := discover(t, ts, "flight", `{"max_nodes":1}`)
	if status != http.StatusOK {
		t.Fatalf("budgeted discover status = %d, want 200", status)
	}
	if !out.Interrupted {
		t.Fatalf("run with max_nodes=1 not interrupted: %+v", out)
	}
	if out.Budget.MaxNodes != 1 {
		t.Errorf("effective budget %+v, want the requested 1-node allowance", out.Budget)
	}
	if out.Stats.NodesVisited == 0 {
		t.Errorf("interrupted run reports no work: %+v", out.Stats)
	}
}

func TestDiscoverOverBudgetRequestIsCapped(t *testing.T) {
	cap := fastod.Budget{Timeout: 8 * time.Second, MaxNodes: 500}
	_, ts := newTestServer(t, Config{MaxBudget: cap})
	resp := upload(t, ts, "emp", csvOf(t, datagen.Employees()))
	resp.Body.Close()

	status, out, _ := discover(t, ts, "emp", `{"timeout_ms":3600000,"max_nodes":1000000000}`)
	if status != http.StatusOK {
		t.Fatalf("discover status = %d, want 200", status)
	}
	if out.Budget.TimeoutMS != cap.Timeout.Milliseconds() || out.Budget.MaxNodes != cap.MaxNodes {
		t.Errorf("effective budget %+v, want the server cap %+v", out.Budget, cap)
	}
}

func TestDiscoverStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := upload(t, ts, "flight", csvOf(t, datagen.FlightLike(300, 6, 2017)))
	resp.Body.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets/flight/discover/stream", "application/json", strings.NewReader(`{"workers":1}`))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	events := parseSSE(t, resp.Body)
	if len(events) < 2 {
		t.Fatalf("stream yielded %d events, want progress + report", len(events))
	}
	var progress int
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("event %q before the final report, want progress", ev.name)
		}
		var pe ProgressEvent
		if err := json.Unmarshal([]byte(ev.data), &pe); err != nil {
			t.Fatalf("decoding progress event %q: %v", ev.data, err)
		}
		if pe.Level <= 0 || pe.Nodes <= 0 || pe.NodesVisited < pe.Nodes {
			t.Errorf("implausible progress event %+v", pe)
		}
		progress++
	}
	if progress < 2 {
		t.Errorf("only %d progress events on a multi-level dataset, want >= 2", progress)
	}
	last := events[len(events)-1]
	if last.name != "report" {
		t.Fatalf("final event %q, want report", last.name)
	}
	var out DiscoverResponse
	if err := json.Unmarshal([]byte(last.data), &out); err != nil {
		t.Fatalf("decoding final report %q: %v", last.data, err)
	}
	if out.Interrupted || out.Count == 0 {
		t.Errorf("final report %+v, want a complete run with dependencies", out)
	}
	// The stream's validation errors are still plain HTTP 400s — including
	// the dataset-aware check that only fails against this dataset's width,
	// which must be caught before the 200/SSE header goes out.
	for _, body := range []string{
		`{"workers":-1}`,
		`{"algorithm":"conditional","conditional":{"condition_attrs":[99]}}`,
	} {
		bad, err := http.Post(ts.URL+"/v1/datasets/flight/discover/stream", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("invalid stream request: %v", err)
		}
		bad.Body.Close()
		if bad.StatusCode != http.StatusBadRequest {
			t.Errorf("invalid stream request %s status = %d, want 400", body, bad.StatusCode)
		}
	}
}

func TestDiscoverStreamConditionalSliceEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := upload(t, ts, "hep", csvOf(t, datagen.HepatitisLike(80, 5, 7)))
	resp.Body.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets/hep/discover/stream", "application/json",
		strings.NewReader(`{"algorithm":"conditional","workers":1}`))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	var slices int
	events := parseSSE(t, resp.Body)
	for _, ev := range events {
		if ev.name != "progress" {
			continue
		}
		var pe ProgressEvent
		if err := json.Unmarshal([]byte(ev.data), &pe); err != nil {
			t.Fatalf("decoding progress event %q: %v", ev.data, err)
		}
		if pe.Slice {
			if pe.Nodes <= 0 || pe.NodesVisited < pe.Nodes {
				t.Errorf("implausible slice event %+v", pe)
			}
			slices++
		}
	}
	if slices == 0 {
		t.Error("conditional stream yielded no per-slice progress events")
	}
	if events[len(events)-1].name != "report" {
		t.Errorf("final event %q, want report", events[len(events)-1].name)
	}
}

func TestDiscover503WhenSaturatedAndCancelled(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxConcurrent: 1})
	if err := s.AddDataset("emp", nil); err == nil {
		t.Fatal("nil dataset must be rejected")
	}
	if err := s.AddDataset("emp", fastod.EmployeesExample()); err != nil {
		t.Fatalf("AddDataset: %v", err)
	}
	// Occupy the only run slot, then issue a request whose context is already
	// cancelled: it must fail fast with 503 instead of queueing forever.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequestWithContext(ctx, "POST", "/v1/datasets/emp/discover", strings.NewReader(""))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("saturated+cancelled discover status = %d, want 503", rec.Code)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// parseSSE reads a whole SSE stream into its events.
func parseSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	var events []sseEvent
	for _, block := range strings.Split(strings.TrimSpace(string(raw)), "\n\n") {
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
		if ev.name == "" && ev.data == "" {
			continue
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatalf("no SSE events in stream %q", raw)
	}
	return events
}

func TestUploadReportsSchema(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := upload(t, ts, "emp", csvOf(t, datagen.Employees()))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, want 201", resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	if len(info.Schema) != len(info.Columns) {
		t.Fatalf("schema has %d entries for %d columns", len(info.Schema), len(info.Columns))
	}
	byName := make(map[string]ColumnInfo, len(info.Schema))
	for i, c := range info.Schema {
		if c.Name != info.Columns[i] {
			t.Errorf("schema[%d].Name = %q, want %q (schema order must match column order)", i, c.Name, info.Columns[i])
		}
		if c.DefaultOrder != "asc nulls first" {
			t.Errorf("schema[%d].DefaultOrder = %q, want the documented default", i, c.DefaultOrder)
		}
		byName[c.Name] = c
	}
	// The sniffer's verdict is what the client needs to pick a collation
	// override: sal is numeric, posit is a string.
	if byName["sal"].Type != "int" {
		t.Errorf("sal sniffed as %q, want int", byName["sal"].Type)
	}
	if byName["posit"].Type != "string" {
		t.Errorf("posit sniffed as %q, want string", byName["posit"].Type)
	}

	// GET returns the same schema.
	got, err := http.Get(ts.URL + "/v1/datasets/emp")
	if err != nil {
		t.Fatalf("GET dataset: %v", err)
	}
	defer got.Body.Close()
	var info2 DatasetInfo
	if err := json.NewDecoder(got.Body).Decode(&info2); err != nil {
		t.Fatalf("decoding GET response: %v", err)
	}
	if !reflect.DeepEqual(info, info2) {
		t.Errorf("GET schema diverges from upload schema:\n %+v\n %+v", info, info2)
	}
}

func TestDiscoverOrderSpecErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	upload(t, ts, "emp", csvOf(t, datagen.Employees())).Body.Close()

	cases := []struct{ body, want string }{
		{`{"order_specs":[{"column":"sal","direction":"sideways"}]}`, "unknown direction"},
		{`{"order_specs":[{"column":"sal","nulls":"middle"}]}`, "unknown null placement"},
		{`{"order_specs":[{"column":"sal","collation":"emoji"}]}`, "unknown collation"},
		{`{"order_specs":[{"column":"ghost","direction":"desc"}]}`, "unknown column"},
		{`{"order_specs":[{"column":"sal","collation":"rank"}]}`, "rank"},
		{`{"order_specs":[{"column":"sal","direction":"desc"},{"column":"sal","direction":"desc"}]}`, "twice"},
	}
	for _, tc := range cases {
		status, _, errBody := discover(t, ts, "emp", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("body %s status = %d, want 400", tc.body, status)
			continue
		}
		if !strings.Contains(errBody.Error, tc.want) {
			t.Errorf("body %s error = %q, want substring %q", tc.body, errBody.Error, tc.want)
		}
	}

	// A valid spec with a rank collation and list works end to end.
	status, out, errBody := discover(t, ts, "emp",
		`{"order_specs":[{"column":"subg","collation":"rank","ranks":["I","II","III"]}]}`)
	if status != http.StatusOK {
		t.Fatalf("rank-collation discover status = %d (%+v)", status, errBody)
	}
	if out.Count == 0 {
		t.Error("rank-collation discover found nothing on the employees fixture")
	}
}
