package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"

	fastod "repro"
	"repro/internal/faultinject"
)

// handleHealthz is the readiness probe: the process is up and the mux routes.
// The body doubles as the operator's dashboard: report-cache accounting,
// goroutine/heap gauges and the contained-failure counters ride along, and
// Status flips to "degraded" while the soft-memory admission check is
// shedding load — all observable without a metrics stack.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthResponse())
}

// healthResponse assembles the /healthz body from the server's gauges.
func (s *Server) healthResponse() HealthResponse {
	resp := healthResponse(s.reports.Stats())
	resp.Runtime = RuntimeInfo{
		Goroutines:     runtime.NumGoroutine(),
		HeapBytes:      s.mem.heapBytes(),
		HeapLimitBytes: s.maxHeapBytes,
		InternalErrors: s.internalErrors.Load(),
		ShedRequests:   s.shedRequests.Load(),
	}
	if s.overSoftMemory() {
		resp.Status = "degraded"
	}
	return resp
}

// newRequestID mints the opaque ID that ties a 500 response to the log line
// carrying its stack. Collisions are harmless (the ID only scopes a log
// search), so 8 random bytes suffice.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// serveRunError writes the error response of a failed discovery run. Client
// errors (ErrInvalidRequest) pass through as 400s. Server-side failures —
// above all contained worker panics (fastod.ErrInternal) — become structured
// 500 JSON carrying the request ID, while the captured stack goes to the
// server log only (operators need it; clients must not see it).
func (s *Server) serveRunError(w http.ResponseWriter, name, reqID string, err error) {
	status := statusOf(err)
	if status != http.StatusInternalServerError {
		writeError(w, status, err)
		return
	}
	s.logRunFailure(name, reqID, err)
	writeJSON(w, status, errorBody{Error: err.Error(), RequestID: reqID})
}

// logRunFailure records a contained run failure with its stack (when the
// typed error carries one) under the request ID echoed to the client.
func (s *Server) logRunFailure(name, reqID string, err error) {
	s.internalErrors.Add(1)
	var ie *fastod.InternalError
	if errors.As(err, &ie) && len(ie.Stack) > 0 {
		node := ie.Node
		if node == "" {
			node = "(none)"
		}
		s.logger.Printf("discover %s: request %s: contained worker panic, node %s: %v\n%s", name, reqID, node, err, ie.Stack)
		return
	}
	s.logger.Printf("discover %s: request %s: run failed: %v", name, reqID, err)
}

// handleUpload creates a named dataset from a CSV request body:
// POST /v1/datasets?name=N. The dataset gets a shared partition cache so all
// subsequent discovery requests against it reuse partitions.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing required query parameter %q (the dataset name)", "name"))
		return
	}
	// Refuse doomed uploads before parsing a potentially huge CSV body; the
	// authoritative (race-free) check is AddDataset's, under its lock.
	if _, exists := s.dataset(name); exists {
		writeError(w, http.StatusConflict, fmt.Errorf("server: %w: %q", ErrDatasetExists, name))
		return
	}
	if s.atCapacity() {
		writeError(w, http.StatusInsufficientStorage, fmt.Errorf("server: %w (%d)", ErrDatasetLimit, s.maxDatasets))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxUploadBytes)
	ds, err := fastod.LoadCSV(name, body)
	if err != nil {
		// Oversized and malformed uploads are both the client's doing.
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	if err := s.AddDataset(name, ds); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrDatasetExists):
			status = http.StatusConflict
		case errors.Is(err, ErrDatasetLimit):
			status = http.StatusInsufficientStorage
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, datasetInfo(name, ds))
}

// handleListDatasets lists the resident datasets: GET /v1/datasets.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DatasetList{Datasets: s.datasetInfos()})
}

// handleGetDataset describes one dataset: GET /v1/datasets/{name}.
func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.dataset(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no dataset %q (upload one with POST /v1/datasets?name=%s)", name, name))
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo(name, ds))
}

// handleDiscover runs one discovery request and returns the report as JSON:
// POST /v1/datasets/{name}/discover. Interrupted runs (budget or deadline
// exhausted) are successes — HTTP 200 with "interrupted": true and the
// partial report — because the partial-result contract guarantees every
// reported dependency is individually valid. Invalid requests are 400s via
// fastod.ErrInvalidRequest; algorithm failures are 500s.
// A cache hit skips the run AND the run semaphore: replaying a stored report
// is a map lookup plus JSON encoding, so it must never queue behind actual
// discovery work.
func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	ds, req, ok := s.prepareDiscover(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	key, version, cacheable := cacheKey(name, ds, req)
	if cacheable {
		if rep, hit := s.reports.Get(key); hit {
			writeJSON(w, http.StatusOK, discoverResponse(name, req, rep, ds.ColumnNames(), true))
			return
		}
	}
	ctx, end, ok := s.beginRun(w, r, req)
	if !ok {
		return
	}
	// The deferred release (not a release on the success path) is
	// load-bearing for fault containment: even if the run or the response
	// encoding panics out of this handler, the semaphore slot comes back.
	defer end()

	rep, err := ds.Run(ctx, req)
	if err != nil {
		s.serveRunError(w, name, newRequestID(), err)
		return
	}
	// Cache only reports that are still current: if the dataset version moved
	// while the run executed, the report may mix pre- and post-mutation data
	// and is served once but never stored. The cache itself refuses
	// interrupted partials.
	if cacheable && ds.Version() == version {
		s.reports.Put(key, rep)
	}
	writeJSON(w, http.StatusOK, discoverResponse(name, req, rep, ds.ColumnNames(), false))
}

// handleDiscoverStream is handleDiscover over Server-Sent Events:
// POST /v1/datasets/{name}/discover/stream emits one "progress" event per
// completed lattice level (and per condition slice), then a final "report"
// event with the same JSON body handleDiscover returns. Request validation
// failures still surface as plain HTTP 400s — the stream only starts once
// the run does. Run failures after that arrive as a terminal "error" event,
// since the 200 header is already on the wire.
func (s *Server) handleDiscoverStream(w http.ResponseWriter, r *http.Request) {
	ds, req, ok := s.prepareDiscover(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("response writer does not support streaming"))
		return
	}
	name := r.PathValue("name")
	startStream := func() {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()
	}
	// A cache hit replays the final "report" event immediately — no progress
	// events (no run is happening to report on), no run-semaphore wait.
	key, version, cacheable := cacheKey(name, ds, req)
	if cacheable {
		if rep, hit := s.reports.Get(key); hit {
			startStream()
			writeSSE(w, "report", discoverResponse(name, req, rep, ds.ColumnNames(), true))
			flusher.Flush()
			return
		}
	}
	ctx, end, ok := s.beginRun(w, r, req)
	if !ok {
		return
	}
	// Deferred for the same fault-containment reason as handleDiscover: a
	// panic mid-stream must never leak the semaphore slot.
	defer end()
	startStream()

	// Progress callbacks are serialized by the library (conditional slice
	// passes run in parallel but emit under one mutex), so writes to the
	// stream never interleave even when events originate on worker goroutines.
	onProgress := func(ev fastod.ProgressEvent) {
		writeSSE(w, "progress", progressEvent(ev))
		flusher.Flush()
	}
	rep, err := ds.RunWithProgress(ctx, req, onProgress)
	if err != nil {
		reqID := newRequestID()
		if statusOf(err) == http.StatusInternalServerError {
			s.logRunFailure(name, reqID, err)
		}
		writeSSE(w, "error", errorBody{Error: err.Error(), RequestID: reqID})
		flusher.Flush()
		return
	}
	// Same rule as handleDiscover: store only if the dataset version did not
	// move during the run (the cache refuses interrupted partials itself).
	if cacheable && ds.Version() == version {
		s.reports.Put(key, rep)
	}
	writeSSE(w, "report", discoverResponse(name, req, rep, ds.ColumnNames(), false))
	flusher.Flush()
}

// prepareDiscover resolves the dataset, decodes the JSON request, applies the
// server-side budget cap and validates — everything that can still produce a
// clean client error before any discovery work starts. On failure it writes
// the error response and returns ok=false.
func (s *Server) prepareDiscover(w http.ResponseWriter, r *http.Request) (*fastod.Dataset, fastod.Request, bool) {
	name := r.PathValue("name")
	ds, ok := s.dataset(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no dataset %q (upload one with POST /v1/datasets?name=%s)", name, name))
		return nil, fastod.Request{}, false
	}
	// The request body is bounded like the upload path: a JSON request has no
	// business being megabytes, and an unbounded decoder would buffer whatever
	// a client streams at it. MaxBytesReader also hard-closes the connection
	// on overrun, so an abusive client cannot keep feeding.
	body := http.MaxBytesReader(w, r.Body, s.maxRequestBytes)
	var q DiscoverRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err := dec.Decode(&q)
	switch {
	case errors.Is(err, io.EOF):
		// An empty body is a default FASTOD run — and trivially has nothing
		// trailing it.
	case err != nil:
		// Anything undecodable is the client's doing: 400, or 413 when the
		// decoder hit the body bound.
		writeError(w, requestBodyStatus(err), fmt.Errorf("decoding request body: %w", err))
		return nil, fastod.Request{}, false
	default:
		// Exactly one JSON value is allowed. Without this check a body like
		// `{}{"workers":-1}` would silently run a default discovery and drop
		// everything after the first object — a malformed request accepted
		// and half-ignored instead of rejected.
		var trailing json.RawMessage
		if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
			if err == nil {
				err = errors.New("request body must be a single JSON object")
			}
			writeError(w, requestBodyStatus(err), fmt.Errorf("trailing data after the JSON request object: %w", err))
			return nil, fastod.Request{}, false
		}
	}
	req, err := q.toRequest()
	if err != nil {
		// Unparseable order-spec enums are the client's doing, like any other
		// malformed field.
		writeError(w, http.StatusBadRequest, err)
		return nil, fastod.Request{}, false
	}
	req.Budget = capBudget(req.Budget, s.maxBudget)
	// The dataset-aware variant, so even failures Validate alone cannot see
	// (condition attrs beyond the dataset's width) become clean 400s here —
	// before the SSE handler commits its 200 header to the wire.
	if err := ds.ValidateRequest(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, fastod.Request{}, false
	}
	return ds, req, true
}

// runContext derives the run's context: the request context bounded by the
// effective budget timeout, so a client that disconnects and a deadline that
// fires both interrupt the run the same cooperative way.
func (s *Server) runContext(parent context.Context, req fastod.Request) (context.Context, context.CancelFunc) {
	if req.Budget.Timeout > 0 {
		return context.WithTimeout(parent, req.Budget.Timeout)
	}
	return context.WithCancel(parent)
}

// beginRun derives the run context and takes one slot of the global run
// semaphore. The deadline starts before the semaphore wait, so it bounds
// queue time plus run time: a saturated server cannot hold a 50ms request
// hostage for another run's 30s budget. On failure the 503 is already
// written; on success the caller must defer end().
func (s *Server) beginRun(w http.ResponseWriter, r *http.Request, req fastod.Request) (ctx context.Context, end func(), ok bool) {
	// Soft-memory admission: when the live heap is already over the limit,
	// starting another run only moves the process closer to an OOM kill that
	// would take every in-flight request with it. Shedding with Retry-After
	// converts that cliff into per-request backpressure; runs already holding
	// a slot finish normally.
	if s.overSoftMemory() {
		s.shedRequests.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server heap is over its soft memory limit (%d bytes); retry later", s.maxHeapBytes))
		return nil, nil, false
	}
	ctx, cancel := s.runContext(r.Context(), req)
	release := s.acquire(ctx.Done())
	if release == nil {
		cancel()
		writeError(w, http.StatusServiceUnavailable, errors.New("deadline expired or request cancelled while waiting for a run slot"))
		return nil, nil, false
	}
	return ctx, func() { release(); cancel() }, true
}

// requestBodyStatus maps a request-body decode failure onto its HTTP status:
// 413 when the body bound was hit (mirroring the upload path), 400 otherwise.
func requestBodyStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusOf maps a Run error onto an HTTP status: typed validation failures
// are the client's fault, everything else is ours.
func statusOf(err error) int {
	if errors.Is(err, fastod.ErrInvalidRequest) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the status line is gone; nothing left to signal
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeSSE writes one Server-Sent Event with a JSON data payload. json.Marshal
// never emits raw newlines, so the payload always fits one data: line.
func writeSSE(w io.Writer, event string, body any) {
	if err := faultinject.Fire(faultinject.SSEWrite); err != nil {
		// An injected write failure drops the frame: SSE delivery is
		// best-effort, and the client's retry/reconnect logic owns recovery.
		return
	}
	data, err := json.Marshal(body)
	if err != nil {
		data, _ = json.Marshal(errorBody{Error: err.Error()})
		event = "error"
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
