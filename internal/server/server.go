// Package server exposes the unified Run discovery API over HTTP with JSON,
// turning the library into a deployable discovery service in the style of the
// Metanome-class platforms the paper's experimental setup assumes: datasets
// are uploaded once as CSV, then profiled repeatedly — by any of the six
// algorithms — through budgeted, cancellable discovery requests.
//
// Endpoints:
//
//	POST /v1/datasets?name=N           upload a CSV body as dataset N
//	GET  /v1/datasets                  list loaded datasets
//	GET  /v1/datasets/{name}           describe one dataset
//	POST /v1/datasets/{name}/discover  run discovery, JSON request/response
//	POST /v1/datasets/{name}/discover/stream
//	                                   same, but stream per-level progress
//	                                   events as SSE before the final report
//	GET  /healthz                      readiness probe
//
// Every uploaded dataset gets a shared partition cache
// (fastod.Dataset.EnablePartitionCache), so repeated discovery requests
// against the same dataset reuse stripped partitions across algorithms — the
// access pattern a profiling service spends most of its time on. One level
// above it, a bounded report cache (internal/reportcache) memoizes whole
// completed reports by (dataset name, dataset version, canonical request
// fingerprint): a repeated question skips the run — and the run semaphore —
// entirely and is answered in microseconds with "cached": true. Interrupted
// (partial) reports are never cached, and any dataset version bump
// invalidates by construction since the version is part of the key.
//
// Resource discipline: a global semaphore bounds how many discovery runs
// execute at once, and a server-side budget cap bounds each run's wall-clock
// time and visited lattice nodes, so no request — including one that asks for
// no budget at all — can run away. A request that exhausts its budget is not
// an error: it yields HTTP 200 with "interrupted": true and the partial
// report (see the fastod.Report partial-result contract). Invalid requests
// are rejected up front via fastod.ErrInvalidRequest and map to HTTP 400;
// only genuine algorithm/input failures map to HTTP 500.
package server

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	fastod "repro"
	"repro/internal/reportcache"
)

// Typed AddDataset failures, so the upload handler can map each to its HTTP
// status with errors.Is instead of guessing from server state.
var (
	// ErrDatasetExists reports a name collision with a resident dataset.
	ErrDatasetExists = errors.New("dataset already exists")
	// ErrDatasetLimit reports that the server is at its dataset capacity.
	ErrDatasetLimit = errors.New("dataset limit reached")
)

// Config tunes a Server. The zero value is usable: DefaultBudget caps every
// run, DefaultMaxConcurrent bounds parallel runs and DefaultMaxUploadBytes
// bounds CSV uploads.
type Config struct {
	// MaxConcurrent bounds how many discovery runs may execute at once
	// (<= 0 selects DefaultMaxConcurrent). Further discover requests wait
	// until a slot frees or their own context/deadline fires.
	MaxConcurrent int
	// MaxBudget caps every run's budget knob-by-knob: a request may ask for
	// less than the cap, never for more, and an absent (zero) knob — which
	// the library reads as "unbounded" — is replaced by the cap. Zero knobs
	// here select fastod.DefaultBudget()'s values.
	MaxBudget fastod.Budget
	// MaxUploadBytes bounds the size of one CSV upload body
	// (<= 0 selects DefaultMaxUploadBytes).
	MaxUploadBytes int64
	// MaxDatasets bounds how many datasets may be resident at once
	// (<= 0 selects DefaultMaxDatasets). Uploads beyond it are refused —
	// eviction is a deliberate non-feature for now (see ROADMAP).
	MaxDatasets int
	// MaxRequestBytes bounds the size of one JSON discover request body
	// (<= 0 selects DefaultMaxRequestBytes). Oversized bodies are refused
	// with 413, mirroring the CSV upload path.
	MaxRequestBytes int64
	// ReportCacheBytes bounds the report cache — completed discovery reports
	// memoized by (dataset name, dataset version, canonical request), so a
	// repeated question costs a map lookup instead of a run (<= 0 selects
	// reportcache.DefaultMaxBytes). Interrupted reports are never cached.
	ReportCacheBytes int
	// MaxHeapBytes is the soft-memory admission limit: when the live heap
	// exceeds it, new discover requests are shed with 503 + Retry-After
	// before they can allocate the process toward an OOM kill, and /healthz
	// reports "degraded". Requests already running finish normally (their
	// memory is already committed; killing them would waste it). Zero
	// disables the check — the limit depends on the deployment's memory
	// envelope, so there is no meaningful universal default.
	MaxHeapBytes uint64
	// ErrorLog receives contained run failures (one line plus the captured
	// stack, tagged with the per-request ID echoed to the client). Nil
	// selects log.Default().
	ErrorLog *log.Logger
}

// Defaults for Config's zero values.
const (
	DefaultMaxConcurrent    = 4
	DefaultMaxUploadBytes   = 64 << 20
	DefaultMaxDatasets      = 64
	DefaultMaxRequestBytes  = 1 << 20
	DefaultReportCacheBytes = reportcache.DefaultMaxBytes
)

// Server is the HTTP discovery service: a named collection of uploaded
// datasets plus the resource limits every discovery run is subject to.
// All methods are safe for concurrent use.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*fastod.Dataset

	sem             chan struct{}
	maxBudget       fastod.Budget
	maxUploadBytes  int64
	maxDatasets     int
	maxRequestBytes int64
	maxHeapBytes    uint64
	reports         *reportcache.Cache
	logger          *log.Logger

	// internalErrors counts contained run failures (recovered panics mapped
	// to 500s); shedRequests counts discover requests refused by the
	// soft-memory admission check. Both surface on /healthz.
	internalErrors atomic.Int64
	shedRequests   atomic.Int64
	mem            memGauge
}

// memGauge reads the live heap size through runtime/metrics, caching the
// sample briefly so the admission check on every discover request costs an
// atomic-scale read instead of a metrics sweep.
type memGauge struct {
	mu      sync.Mutex
	readAt  time.Time
	heap    uint64
	samples []metrics.Sample
}

// memGaugeTTL bounds how stale an admission decision's heap reading can be.
const memGaugeTTL = 250 * time.Millisecond

func (g *memGauge) heapBytes() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.readAt.IsZero() && time.Since(g.readAt) < memGaugeTTL {
		return g.heap
	}
	if g.samples == nil {
		g.samples = []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	}
	metrics.Read(g.samples)
	if g.samples[0].Value.Kind() == metrics.KindUint64 {
		g.heap = g.samples[0].Value.Uint64()
	}
	g.readAt = time.Now()
	return g.heap
}

// Normalized returns the config with zero values replaced by the defaults:
// the limits a Server built from it actually enforces. Front ends log these,
// not the raw flag values.
func (c Config) Normalized() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = DefaultMaxDatasets
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if c.ReportCacheBytes <= 0 {
		c.ReportCacheBytes = DefaultReportCacheBytes
	}
	def := fastod.DefaultBudget()
	if c.MaxBudget.Timeout <= 0 {
		c.MaxBudget.Timeout = def.Timeout
	}
	if c.MaxBudget.MaxNodes <= 0 {
		c.MaxBudget.MaxNodes = def.MaxNodes
	}
	return c
}

// New builds a Server from the config (zero values select the defaults).
func New(cfg Config) *Server {
	cfg = cfg.Normalized()
	logger := cfg.ErrorLog
	if logger == nil {
		logger = log.Default()
	}
	return &Server{
		datasets:        make(map[string]*fastod.Dataset),
		sem:             make(chan struct{}, cfg.MaxConcurrent),
		maxBudget:       cfg.MaxBudget,
		maxUploadBytes:  cfg.MaxUploadBytes,
		maxDatasets:     cfg.MaxDatasets,
		maxRequestBytes: cfg.MaxRequestBytes,
		maxHeapBytes:    cfg.MaxHeapBytes,
		reports:         reportcache.New(cfg.ReportCacheBytes),
		logger:          logger,
	}
}

// overSoftMemory reports whether the soft-memory admission limit is exceeded
// (always false when the limit is disabled).
func (s *Server) overSoftMemory() bool {
	return s.maxHeapBytes > 0 && s.mem.heapBytes() > s.maxHeapBytes
}

// Handler returns the service's HTTP handler (an http.ServeMux using
// method+path patterns); mount it on any http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/datasets", s.handleUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/discover", s.handleDiscover)
	mux.HandleFunc("POST /v1/datasets/{name}/discover/stream", s.handleDiscoverStream)
	return mux
}

// AddDataset registers an already-built dataset under the given name (used
// by odserve's -preload and by tests) and attaches the shared partition
// cache exactly like an upload would. It fails if the name is taken or the
// dataset limit is reached.
func (s *Server) AddDataset(name string, ds *fastod.Dataset) error {
	if name == "" {
		return fmt.Errorf("server: empty dataset name")
	}
	if ds == nil {
		return fmt.Errorf("server: nil dataset %q", name)
	}
	ds.EnablePartitionCache(0)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return fmt.Errorf("server: %w: %q", ErrDatasetExists, name)
	}
	if len(s.datasets) >= s.maxDatasets {
		return fmt.Errorf("server: %w (%d)", ErrDatasetLimit, s.maxDatasets)
	}
	s.datasets[name] = ds
	return nil
}

// atCapacity reports whether the dataset limit is reached. Advisory only —
// AddDataset re-checks under its write lock.
func (s *Server) atCapacity() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.datasets) >= s.maxDatasets
}

// dataset looks a dataset up by name.
func (s *Server) dataset(name string) (*fastod.Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.datasets[name]
	return ds, ok
}

// datasetInfos snapshots every resident dataset's description under one
// read lock, sorted by name.
func (s *Server) datasetInfos() []DatasetInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for name, ds := range s.datasets {
		infos = append(infos, datasetInfo(name, ds))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// acquire takes one slot of the global run semaphore, waiting until either a
// slot frees or done fires; the returned release func is nil in the latter
// case. Waiting (rather than failing fast) keeps bursty clients simple: the
// per-request deadline still bounds the total wait+run time.
func (s *Server) acquire(done <-chan struct{}) (release func()) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	case <-done:
		return nil
	}
}

// cacheKey computes the report-cache coordinate of one discover request: the
// key plus the dataset version stamp it captured (re-checked after the run so
// a report computed across a concurrent mutation is never cached), or
// cacheable=false when the request must not be cached at all. The one
// uncacheable shape today is an explicit Request.Partitions override: such a
// run bypasses the dataset's own store, so its provenance is not fully
// described by (dataset, version, request). Interrupted reports are refused
// by the cache itself (see reportcache.Cache.Put).
func cacheKey(name string, ds *fastod.Dataset, req fastod.Request) (key string, version uint64, cacheable bool) {
	if req.Partitions != nil {
		return "", 0, false
	}
	version = ds.Version()
	return reportcache.Key(name, version, req.Fingerprint()), version, true
}

// ReportCacheStats returns a snapshot of the report cache's accounting (the
// healthz payload; exported for tests and operators embedding the server).
func (s *Server) ReportCacheStats() reportcache.Stats { return s.reports.Stats() }

// capBudget clamps a requested budget to the server-wide cap, knob by knob: a
// zero knob means the client asked for no bound, which on a shared server
// becomes the cap itself — never unbounded. Negative knobs pass through so
// request validation can reject them with a 400 rather than being silently
// "fixed" here.
func capBudget(req, max fastod.Budget) fastod.Budget {
	if req.Timeout == 0 || req.Timeout > max.Timeout {
		req.Timeout = max.Timeout
	}
	if req.MaxNodes == 0 || req.MaxNodes > max.MaxNodes {
		req.MaxNodes = max.MaxNodes
	}
	return req
}
