package server

import (
	"fmt"
	"time"

	fastod "repro"
	"repro/internal/reportcache"
)

// The wire types of the service: a JSON mirror of fastod.Request on the way
// in, and a flattened, renderer-backed view of fastod.Report on the way out.
// Dependencies travel as their textual form (the same syntax the CLIs print
// and internal/odparse parses) rather than as index-level structs — the
// server knows the column names, the client usually does not.

// DiscoverRequest is the JSON mirror of fastod.Request. The per-request
// deadline travels as timeout_ms and is mapped onto both Budget.Timeout and
// the run's context; max_nodes bounds visited lattice nodes. Absent fields
// take the library defaults, and both budget knobs are clamped to the
// server-side cap (see Config.MaxBudget) before the run starts.
type DiscoverRequest struct {
	Algorithm string `json:"algorithm,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	MaxLevel  int    `json:"max_level,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	MaxNodes  int    `json:"max_nodes,omitempty"`

	// OrderSpecs override per-column ordering semantics for the run. The
	// entries become Request.OrderSpecs and therefore part of the report-cache
	// key: two requests differing only here never share a cached report.
	OrderSpecs []OrderSpecJSON `json:"order_specs,omitempty"`

	FASTOD      *FASTODOptions      `json:"fastod,omitempty"`
	Approx      *ApproxOptions      `json:"approx,omitempty"`
	Conditional *ConditionalOptions `json:"conditional,omitempty"`
}

// OrderSpecJSON is the wire form of one fastod.AttrOrder. The enums travel as
// their textual spellings ("asc"/"desc", "first"/"last", "lexicographic",
// "numeric", "date", "case-insensitive", "rank"; case-insensitive, empty =
// default); Ranks carries the value list of the rank collation, lowest first.
type OrderSpecJSON struct {
	Column    string   `json:"column"`
	Direction string   `json:"direction,omitempty"`
	Nulls     string   `json:"nulls,omitempty"`
	Collation string   `json:"collation,omitempty"`
	Ranks     []string `json:"ranks,omitempty"`
}

// toAttrOrder parses the textual enum spellings. Failures are client errors:
// the caller maps them onto HTTP 400.
func (o OrderSpecJSON) toAttrOrder() (fastod.AttrOrder, error) {
	dir, err := fastod.ParseOrderDirection(o.Direction)
	if err != nil {
		return fastod.AttrOrder{}, fmt.Errorf("order_specs entry %q: %w", o.Column, err)
	}
	nulls, err := fastod.ParseNullOrder(o.Nulls)
	if err != nil {
		return fastod.AttrOrder{}, fmt.Errorf("order_specs entry %q: %w", o.Column, err)
	}
	coll, err := fastod.ParseCollation(o.Collation)
	if err != nil {
		return fastod.AttrOrder{}, fmt.Errorf("order_specs entry %q: %w", o.Column, err)
	}
	return fastod.AttrOrder{
		Column:    o.Column,
		Direction: dir,
		Nulls:     nulls,
		Collation: coll,
		Ranks:     o.Ranks,
	}, nil
}

// FASTODOptions mirrors fastod.FASTODRunOptions.
type FASTODOptions struct {
	DisablePruning     bool `json:"disable_pruning,omitempty"`
	DisableKeyPruning  bool `json:"disable_key_pruning,omitempty"`
	DisableNodePruning bool `json:"disable_node_pruning,omitempty"`
	NaiveSwapCheck     bool `json:"naive_swap_check,omitempty"`
	CountOnly          bool `json:"count_only,omitempty"`
	CollectLevelStats  bool `json:"collect_level_stats,omitempty"`
}

// ApproxOptions mirrors fastod.ApproxRunOptions.
type ApproxOptions struct {
	Threshold float64 `json:"threshold"`
}

// ConditionalOptions mirrors fastod.ConditionalRunOptions.
type ConditionalOptions struct {
	MaxConditionCardinality int   `json:"max_condition_cardinality,omitempty"`
	MinSliceRows            int   `json:"min_slice_rows,omitempty"`
	ConditionAttrs          []int `json:"condition_attrs,omitempty"`
}

// toRequest maps the wire request onto the library envelope. The only
// validation here is parsing the textual order-spec enums (the mapping cannot
// exist without it); everything else is Request.Validate's, so invalid values
// (negative workers, out-of-range thresholds) surface as typed 400s, not
// decode quirks.
func (q DiscoverRequest) toRequest() (fastod.Request, error) {
	req := fastod.Request{
		Algorithm: fastod.Algorithm(q.Algorithm),
		RunOptions: fastod.RunOptions{
			Workers:   q.Workers,
			Scheduler: fastod.Scheduler(q.Scheduler),
			MaxLevel:  q.MaxLevel,
			Budget: fastod.Budget{
				Timeout:  time.Duration(q.TimeoutMS) * time.Millisecond,
				MaxNodes: q.MaxNodes,
			},
		},
	}
	for _, o := range q.OrderSpecs {
		ao, err := o.toAttrOrder()
		if err != nil {
			return fastod.Request{}, err
		}
		req.OrderSpecs = append(req.OrderSpecs, ao)
	}
	if q.FASTOD != nil {
		req.FASTOD = fastod.FASTODRunOptions{
			DisablePruning:     q.FASTOD.DisablePruning,
			DisableKeyPruning:  q.FASTOD.DisableKeyPruning,
			DisableNodePruning: q.FASTOD.DisableNodePruning,
			NaiveSwapCheck:     q.FASTOD.NaiveSwapCheck,
			CountOnly:          q.FASTOD.CountOnly,
			CollectLevelStats:  q.FASTOD.CollectLevelStats,
		}
	}
	if q.Approx != nil {
		req.Approx = fastod.ApproxRunOptions{Threshold: q.Approx.Threshold}
	}
	if q.Conditional != nil {
		req.Conditional = fastod.ConditionalRunOptions{
			MaxConditionCardinality: q.Conditional.MaxConditionCardinality,
			MinSliceRows:            q.Conditional.MinSliceRows,
			ConditionAttrs:          q.Conditional.ConditionAttrs,
		}
	}
	return req, nil
}

// ColumnInfo is the per-column schema entry of DatasetInfo: the sniffed (or
// declared) type that drives the default collation, and the default order the
// column is encoded under — what an order_specs entry would override.
type ColumnInfo struct {
	Name         string `json:"name"`
	Type         string `json:"type"`
	DefaultOrder string `json:"default_order"`
}

// DatasetInfo describes one resident dataset. Schema is returned both by the
// upload response and GET /v1/datasets/{name}, so clients can inspect the
// sniffed types before choosing order_specs overrides.
type DatasetInfo struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Columns []string     `json:"columns"`
	Schema  []ColumnInfo `json:"schema"`
}

func datasetInfo(name string, ds *fastod.Dataset) DatasetInfo {
	names, types := ds.ColumnNames(), ds.ColumnTypes()
	schema := make([]ColumnInfo, len(names))
	for i, n := range names {
		schema[i] = ColumnInfo{Name: n, Type: types[i], DefaultOrder: "asc nulls first"}
	}
	return DatasetInfo{Name: name, Rows: ds.NumRows(), Columns: names, Schema: schema}
}

// DatasetList is the response of GET /v1/datasets.
type DatasetList struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// BudgetInfo reports the budget a run was actually subject to, after the
// server-side cap.
type BudgetInfo struct {
	TimeoutMS int64 `json:"timeout_ms"`
	MaxNodes  int   `json:"max_nodes"`
}

// StatsInfo mirrors fastod.RunStats.
type StatsInfo struct {
	NodesVisited    int `json:"nodes_visited"`
	MaxLevelReached int `json:"max_level_reached"`
	PartitionHits   int `json:"partition_hits"`
	PartitionMisses int `json:"partition_misses"`
}

// CountInfo is the paper-style tally of discovered canonical ODs.
type CountInfo struct {
	Total       int `json:"total"`
	Constancy   int `json:"constancy"`
	OrderCompat int `json:"order_compatible"`
}

// Dependency is one discovered dependency rendered over column names. OD uses
// the parseable textual syntax of the CLIs; Error and Condition are filled by
// the approximate and conditional algorithms respectively.
type Dependency struct {
	OD string `json:"od"`
	// Error is the measured error rate of an approximate OD.
	Error *float64 `json:"error,omitempty"`
	// Condition and Rows describe the slice a conditional OD holds on.
	Condition string `json:"condition,omitempty"`
	Rows      int    `json:"rows,omitempty"`
}

// DiscoverResponse is the response of the discover endpoints: the effective
// run parameters (workers after resolution, budget after the cap), the
// interrupted flag of the partial-result contract, unified stats, and the
// dependencies rendered over the dataset's column names.
type DiscoverResponse struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	// Workers is the effective worker count of the run (after resolving the
	// requested value; 0 selects all CPUs), not the raw request value.
	Workers int        `json:"workers"`
	Budget  BudgetInfo `json:"budget"`
	// Interrupted reports the run was cut short by its budget or deadline;
	// Dependencies then hold everything discovered before the interrupt.
	Interrupted bool `json:"interrupted"`
	// Cached reports the response was served from the report cache: no run
	// happened, and ElapsedMS/Stats describe the original cached run. Always
	// present (not omitempty) so clients and smoke tests can assert both
	// polarities.
	Cached    bool       `json:"cached"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Stats     StatsInfo  `json:"stats"`
	Counts    *CountInfo `json:"counts,omitempty"`
	// Count is len(Dependencies), except in count-only mode where it reports
	// the tally of a run that materialized nothing.
	Count        int          `json:"count"`
	Dependencies []Dependency `json:"dependencies"`
	// SlicesExamined counts processed condition slices (conditional only).
	SlicesExamined int `json:"slices_examined,omitempty"`
}

// ProgressEvent is the SSE form of fastod.ProgressEvent. Slice marks the
// per-condition-slice events of conditional runs (their Level is the
// SliceProgressLevel sentinel, not a lattice level); such events also carry
// the condition that defined the slice — attribute index, encoded value rank
// and selected row count — so stream consumers can show which binding is
// being processed, not just that one finished.
type ProgressEvent struct {
	Level            int     `json:"level"`
	Slice            bool    `json:"slice,omitempty"`
	ConditionAttr    *int    `json:"condition_attr,omitempty"`
	ConditionValue   *int32  `json:"condition_value,omitempty"`
	SliceRows        int     `json:"slice_rows,omitempty"`
	Nodes            int     `json:"nodes"`
	NodesVisited     int     `json:"nodes_visited"`
	PartitionsCached int     `json:"partitions_cached"`
	ElapsedMS        float64 `json:"elapsed_ms"`
}

func progressEvent(ev fastod.ProgressEvent) ProgressEvent {
	out := ProgressEvent{
		Level:            ev.Level,
		Slice:            ev.Level == fastod.SliceProgressLevel,
		Nodes:            ev.Nodes,
		NodesVisited:     ev.NodesVisited,
		PartitionsCached: ev.PartitionsCached,
		ElapsedMS:        ms(ev.Elapsed),
	}
	if ev.Slice != nil {
		// Pointers rather than omitempty values: attribute 0 and value rank 0
		// are legitimate conditions that must not vanish from the wire.
		attr, value := ev.Slice.Attr, ev.Slice.Value
		out.ConditionAttr = &attr
		out.ConditionValue = &value
		out.SliceRows = ev.Slice.Rows
	}
	return out
}

// CacheStatsInfo mirrors reportcache.Stats on the wire (the /healthz body),
// the report-cache analog of the partition store's StoreStats.
type CacheStatsInfo struct {
	Hits         int `json:"hits"`
	Misses       int `json:"misses"`
	Puts         int `json:"puts"`
	Rejects      int `json:"rejects"`
	Evictions    int `json:"evictions"`
	Entries      int `json:"entries"`
	CostBytes    int `json:"cost_bytes"`
	MaxCostBytes int `json:"max_cost_bytes"`
}

// RuntimeInfo is the process-health slice of /healthz: live goroutine and
// heap gauges next to the counters that record how often the server has had
// to contain a failure (internal_errors) or shed load (shed_requests).
type RuntimeInfo struct {
	Goroutines     int    `json:"goroutines"`
	HeapBytes      uint64 `json:"heap_bytes"`
	HeapLimitBytes uint64 `json:"heap_limit_bytes,omitempty"`
	InternalErrors int64  `json:"internal_errors"`
	ShedRequests   int64  `json:"shed_requests"`
}

// HealthResponse is the response of GET /healthz. Status is "ok" normally and
// "degraded" while the heap sits over the soft memory limit (new discover
// requests are then shed with 503).
type HealthResponse struct {
	Status      string         `json:"status"`
	ReportCache CacheStatsInfo `json:"report_cache"`
	Runtime     RuntimeInfo    `json:"runtime"`
}

func healthResponse(st reportcache.Stats) HealthResponse {
	return HealthResponse{
		Status: "ok",
		ReportCache: CacheStatsInfo{
			Hits:         st.Hits,
			Misses:       st.Misses,
			Puts:         st.Puts,
			Rejects:      st.Rejects,
			Evictions:    st.Evictions,
			Entries:      st.Entries,
			CostBytes:    st.Cost,
			MaxCostBytes: st.MaxCost,
		},
	}
}

// errorBody is the uniform JSON error envelope. RequestID is set on
// internal-error responses so a client report can be correlated with the
// server-side log line that carries the recovered stack.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// discoverResponse flattens a Report into the wire response, rendering each
// payload's dependencies over the dataset's column names.
func discoverResponse(dataset string, req fastod.Request, rep *fastod.Report, names []string, cached bool) DiscoverResponse {
	resp := DiscoverResponse{
		Dataset:   dataset,
		Algorithm: string(rep.Algorithm),
		Workers:   req.EffectiveWorkers(),
		Budget: BudgetInfo{
			TimeoutMS: req.Budget.Timeout.Milliseconds(),
			MaxNodes:  req.Budget.MaxNodes,
		},
		Interrupted: rep.Interrupted,
		Cached:      cached,
		ElapsedMS:   ms(rep.Elapsed),
		Stats: StatsInfo{
			NodesVisited:    rep.Stats.NodesVisited,
			MaxLevelReached: rep.Stats.MaxLevelReached,
			PartitionHits:   rep.Stats.PartitionHits,
			PartitionMisses: rep.Stats.PartitionMisses,
		},
		// Marshal as [] rather than null when a run discovers nothing (or
		// materializes nothing, in count-only mode).
		Dependencies: []Dependency{},
	}
	switch {
	case rep.FASTOD != nil:
		res := rep.FASTOD
		resp.Counts = &CountInfo{Total: res.Counts.Total, Constancy: res.Counts.Constancy, OrderCompat: res.Counts.OrderCompat}
		resp.Count = res.Counts.Total
		for _, od := range res.ODs {
			resp.Dependencies = append(resp.Dependencies, Dependency{OD: od.NamesString(names)})
		}
	case rep.TANE != nil:
		res := rep.TANE
		resp.Count = len(res.FDs)
		for _, fd := range res.FDs {
			resp.Dependencies = append(resp.Dependencies, Dependency{OD: fd.NamesString(names)})
		}
	case rep.Approx != nil:
		res := rep.Approx
		counts := res.Counts()
		resp.Counts = &CountInfo{Total: counts.Total, Constancy: counts.Constancy, OrderCompat: counts.OrderCompat}
		resp.Count = len(res.ODs)
		for _, d := range res.ODs {
			rate := d.Error.Rate
			resp.Dependencies = append(resp.Dependencies, Dependency{OD: d.OD.NamesString(names), Error: &rate})
		}
	case rep.Bidir != nil:
		res := rep.Bidir
		resp.Count = len(res.ODs)
		for _, od := range res.ODs {
			resp.Dependencies = append(resp.Dependencies, Dependency{OD: od.NamesString(names)})
		}
	case rep.Conditional != nil:
		res := rep.Conditional
		resp.Count = len(res.ODs)
		resp.SlicesExamined = res.SlicesExamined
		for _, c := range res.ODs {
			resp.Dependencies = append(resp.Dependencies, Dependency{
				OD:        c.OD.NamesString(names),
				Condition: c.Condition.NamesString(names),
				Rows:      c.Condition.Rows,
			})
		}
	case rep.ORDER != nil:
		res := rep.ORDER
		resp.Counts = &CountInfo{Total: res.Counts.Total, Constancy: res.Counts.Constancy, OrderCompat: res.Counts.OrderCompat}
		resp.Count = len(res.ODs)
		for _, od := range res.ODs {
			resp.Dependencies = append(resp.Dependencies, Dependency{OD: od.Names(names)})
		}
	}
	return resp
}
