// Package datagen produces the relation instances used by the examples,
// tests and benchmarks. The paper evaluates FASTOD on four datasets (flight,
// ncvoter, hepatitis, dbtesma) that are not redistributable here, so this
// package provides synthetic stand-ins that reproduce the *dependency
// structure* those datasets exhibit — constants, functional-dependency
// hierarchies, order-compatible (monotone) column families, keys and noise —
// which is what determines both algorithm runtime and the number and kind of
// discovered ODs. See DESIGN.md, "Substitutions".
//
// All generators are deterministic for a given seed.
package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/relation"
)

// ColumnKind describes how a synthetic column is derived.
type ColumnKind int

// Supported synthetic column kinds.
const (
	// KindConstant produces a single repeated value (e.g. flight's year=2012).
	KindConstant ColumnKind = iota
	// KindSequential produces a strictly increasing value per row (a key,
	// e.g. a surrogate key such as d_date_sk).
	KindSequential
	// KindRandom produces uniform random integers over a bounded domain.
	KindRandom
	// KindDerivedFD produces a deterministic function of a source column:
	// the FD source → column holds by construction.
	KindDerivedFD
	// KindMonotone produces a non-decreasing coarsening of a hidden driver
	// column: every pair of such columns over the same driver is order
	// compatible, but neither functionally determines the other unless the
	// granularities divide evenly.
	KindMonotone
)

// ColumnSpec configures a single synthetic column.
type ColumnSpec struct {
	Name string
	Kind ColumnKind
	// Domain bounds the number of distinct values (KindRandom, KindDerivedFD)
	// or the bucket width of the driver coarsening (KindMonotone).
	Domain int
	// Source is the index of the source column (KindDerivedFD) or of the
	// hidden driver (KindMonotone).
	Source int
	// Value is the constant value for KindConstant.
	Value int
}

// Spec configures a full synthetic relation.
type Spec struct {
	Name string
	Rows int
	Seed int64
	// Drivers is the number of hidden monotone driver sequences available to
	// KindMonotone columns (referenced by ColumnSpec.Source).
	Drivers int
	Columns []ColumnSpec
}

// Generate materializes a relation from a spec. Column values are emitted as
// decimal strings and typed as integers, which keeps rank encoding exact.
func Generate(spec Spec) (*relation.Relation, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("datagen: negative row count %d", spec.Rows)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Hidden drivers: strictly increasing sequences with random step sizes,
	// shared by the monotone columns that reference them.
	drivers := make([][]int, spec.Drivers)
	for d := range drivers {
		drivers[d] = make([]int, spec.Rows)
		cur := 0
		for i := 0; i < spec.Rows; i++ {
			cur += 1 + rng.Intn(3)
			drivers[d][i] = cur
		}
	}

	cols := make([][]int, len(spec.Columns))
	for ci, cs := range spec.Columns {
		vals := make([]int, spec.Rows)
		switch cs.Kind {
		case KindConstant:
			for i := range vals {
				vals[i] = cs.Value
			}
		case KindSequential:
			for i := range vals {
				vals[i] = i + 1
			}
		case KindRandom:
			domain := cs.Domain
			if domain < 1 {
				domain = 2
			}
			for i := range vals {
				vals[i] = rng.Intn(domain)
			}
		case KindDerivedFD:
			if cs.Source < 0 || cs.Source >= ci {
				return nil, fmt.Errorf("datagen: column %q: derived source %d must precede column %d", cs.Name, cs.Source, ci)
			}
			domain := cs.Domain
			if domain < 1 {
				domain = 2
			}
			src := cols[cs.Source]
			for i := range vals {
				// A fixed mixing function keeps the mapping deterministic per
				// source value, so the FD source → column holds exactly.
				v := src[i]
				vals[i] = ((v*2654435761 + 40503) >> 4) % domain
				if vals[i] < 0 {
					vals[i] = -vals[i]
				}
			}
		case KindMonotone:
			if cs.Source < 0 || cs.Source >= len(drivers) {
				return nil, fmt.Errorf("datagen: column %q: driver %d out of range (have %d drivers)", cs.Name, cs.Source, len(drivers))
			}
			width := cs.Domain
			if width < 1 {
				width = 1
			}
			for i := range vals {
				vals[i] = drivers[cs.Source][i] / width
			}
		default:
			return nil, fmt.Errorf("datagen: column %q: unknown kind %d", cs.Name, cs.Kind)
		}
		cols[ci] = vals
	}

	columns := make([]relation.Column, len(spec.Columns))
	for ci, cs := range spec.Columns {
		raw := make([]string, spec.Rows)
		for i, v := range cols[ci] {
			raw[i] = strconv.Itoa(v)
		}
		columns[ci] = relation.Column{Name: cs.Name, Type: relation.TypeInt, Raw: raw}
	}
	r := relation.New(spec.Name, columns...)
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustGenerate is Generate for specs known to be valid at compile time; it
// panics on error and is intended for the preset constructors below. Callers
// holding a runtime spec must use Generate and handle the error instead —
// this helper exists only where a failure is a bug in the preset itself, and
// its panic message names the spec so the recovered stack (see
// lattice.PanicError) identifies which one.
func MustGenerate(spec Spec) *relation.Relation {
	r, err := Generate(spec)
	if err != nil {
		panic(fmt.Sprintf("datagen: preset spec %q: %v", spec.Name, err))
	}
	return r
}

// clampCols bounds the requested column count to [1, 64].
func clampCols(cols int) int {
	if cols < 1 {
		cols = 1
	}
	if cols > 64 {
		cols = 64
	}
	return cols
}

// FlightLike builds a stand-in for the HPI flight dataset: a constant year
// column (all flights from 2012, Section 5.3), a surrogate-key column, FD
// hierarchies (e.g. airport → city → state) and a family of schedule-time
// columns that are order compatible with one another. FD-flavoured ODs
// dominate at small column counts and order-compatible ODs appear as more
// schedule columns are included, matching the counts reported in Figure 5.
func FlightLike(rows, cols int, seed int64) *relation.Relation {
	cols = clampCols(cols)
	spec := Spec{Name: "flight-like", Rows: rows, Seed: seed, Drivers: 2}
	for i := 0; i < cols; i++ {
		var cs ColumnSpec
		switch {
		case i == 0:
			cs = ColumnSpec{Name: "year", Kind: KindConstant, Value: 2012}
		case i == 1:
			cs = ColumnSpec{Name: "flight_sk", Kind: KindSequential}
		case i%5 == 2:
			cs = ColumnSpec{Name: name("carrier", i), Kind: KindRandom, Domain: 8 + i}
		case i%5 == 3:
			cs = ColumnSpec{Name: name("carrier_name", i), Kind: KindDerivedFD, Source: i - 1, Domain: 6 + i/2}
		case i%5 == 4:
			cs = ColumnSpec{Name: name("dep_time", i), Kind: KindMonotone, Source: 0, Domain: 2 + i%7}
		case i%5 == 0:
			cs = ColumnSpec{Name: name("arr_time", i), Kind: KindMonotone, Source: 1, Domain: 3 + i%5}
		default:
			cs = ColumnSpec{Name: name("attr", i), Kind: KindRandom, Domain: 20 + i}
		}
		spec.Columns = append(spec.Columns, cs)
	}
	return MustGenerate(spec)
}

// NCVoterLike builds a stand-in for the ncvoter dataset: mostly
// high-cardinality personal attributes with very few functional dependencies
// but many order-compatible column pairs (registration dates, age-derived
// fields), which makes order-compatibility ODs dominate the result as in the
// paper's ncvoter numbers (e.g. 77 = 4 FDs + 73 OCDs at 10 attributes).
func NCVoterLike(rows, cols int, seed int64) *relation.Relation {
	cols = clampCols(cols)
	spec := Spec{Name: "ncvoter-like", Rows: rows, Seed: seed, Drivers: 3}
	for i := 0; i < cols; i++ {
		var cs ColumnSpec
		switch {
		case i == 0:
			cs = ColumnSpec{Name: "voter_id", Kind: KindSequential}
		case i%3 == 1:
			cs = ColumnSpec{Name: name("reg_date", i), Kind: KindMonotone, Source: i % 3, Domain: 2 + i%6}
		case i%3 == 2:
			cs = ColumnSpec{Name: name("age_band", i), Kind: KindMonotone, Source: (i + 1) % 3, Domain: 3 + i%5}
		default:
			cs = ColumnSpec{Name: name("name", i), Kind: KindRandom, Domain: rows/2 + 2}
		}
		spec.Columns = append(spec.Columns, cs)
	}
	return MustGenerate(spec)
}

// HepatitisLike builds a stand-in for the UCI hepatitis dataset: very few
// rows (155 in the paper) and tiny categorical domains, which yields hundreds
// of ODs because small contexts already make most attributes constant.
func HepatitisLike(rows, cols int, seed int64) *relation.Relation {
	cols = clampCols(cols)
	if rows <= 0 {
		rows = 155
	}
	spec := Spec{Name: "hepatitis-like", Rows: rows, Seed: seed, Drivers: 1}
	for i := 0; i < cols; i++ {
		var cs ColumnSpec
		switch {
		case i%7 == 6:
			cs = ColumnSpec{Name: name("age", i), Kind: KindMonotone, Source: 0, Domain: 5}
		case i%4 == 3:
			cs = ColumnSpec{Name: name("derived", i), Kind: KindDerivedFD, Source: i - 1, Domain: 2}
		default:
			cs = ColumnSpec{Name: name("flag", i), Kind: KindRandom, Domain: 2 + i%3}
		}
		spec.Columns = append(spec.Columns, cs)
	}
	return MustGenerate(spec)
}

// DBTesmaLike builds a stand-in for the dbtesma generator output: a synthetic
// benchmark table rich in functional dependencies (generated hierarchies) with
// almost no order-compatible pairs, matching the paper's counts where nearly
// all discovered ODs are FD-flavoured (e.g. 3,133 = 3,120 FDs + 13 OCDs).
func DBTesmaLike(rows, cols int, seed int64) *relation.Relation {
	cols = clampCols(cols)
	spec := Spec{Name: "dbtesma-like", Rows: rows, Seed: seed, Drivers: 1}
	for i := 0; i < cols; i++ {
		var cs ColumnSpec
		switch {
		case i == 0:
			cs = ColumnSpec{Name: "pk", Kind: KindSequential}
		case i%2 == 1:
			cs = ColumnSpec{Name: name("dim", i), Kind: KindRandom, Domain: 12 + 3*i}
		default:
			cs = ColumnSpec{Name: name("dim_attr", i), Kind: KindDerivedFD, Source: i - 1, Domain: 4 + i}
		}
		spec.Columns = append(spec.Columns, cs)
	}
	return MustGenerate(spec)
}

func name(prefix string, i int) string { return prefix + "_" + strconv.Itoa(i) }
