package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/relation"
)

// Messy generators: relations whose raw values stress the ordering semantics
// layer instead of the lattice — NULL-dense columns, numeric values spelled
// inconsistently ("7" next to "7.0"), dates, case-varied strings, and columns
// whose mixed spellings defeat the type sniffer entirely. They back the
// property suites that compare spec-encoded discovery against the raw-value
// oracle: a generator that only emits clean decimal integers would never
// exercise NULL placement or collation overrides.

// MessyKind selects the value flavor of one messy column.
type MessyKind int

// Messy column flavors.
const (
	// MessyInt emits decimal integers (sniffed TypeInt).
	MessyInt MessyKind = iota
	// MessyFloat emits floats with varied spellings of equal values ("2.5"
	// vs "2.50"), so numeric collation merges what lexicographic splits.
	MessyFloat
	// MessyDate emits ISO dates from a small window (sniffed TypeDate).
	MessyDate
	// MessyMixedDate emits the same dates in alternating layouts, which the
	// sniffer must refuse (mixed layouts fall back to TypeString).
	MessyMixedDate
	// MessyString emits short strings with case variants ("ab" vs "AB"), so
	// the case-insensitive collation merges what the default splits.
	MessyString
	// MessyAllNull emits only NULLs (the all-NULL edge case).
	MessyAllNull
)

// messyValue draws one non-null raw value of the given flavor.
func messyValue(rng *rand.Rand, kind MessyKind) string {
	switch kind {
	case MessyFloat:
		v := rng.Intn(6)
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%d.5", v)
		}
		return fmt.Sprintf("%d.50", v)
	case MessyDate:
		return fmt.Sprintf("2017-0%d-1%d", 1+rng.Intn(4), rng.Intn(5))
	case MessyMixedDate:
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("2017-0%d-1%d", 1+rng.Intn(4), rng.Intn(5))
		}
		return fmt.Sprintf("2017/0%d/1%d", 1+rng.Intn(4), rng.Intn(5))
	case MessyString:
		words := []string{"ab", "AB", "Ab", "cd", "CD", "ef", "x", ""}
		return words[rng.Intn(len(words)-1)] + words[rng.Intn(len(words))]
	default: // MessyInt
		return strconv.Itoa(rng.Intn(10) - 3)
	}
}

// MessyRelation builds a rows×cols relation cycling through the messy column
// flavors, with each cell independently replaced by NULL at the given
// density. Deterministic per seed; types are re-sniffed from the raw values,
// so a NULL-dense integer column is still TypeInt while a mixed-date column
// degrades to TypeString exactly as CSV ingest would.
func MessyRelation(rows, cols int, nullDensity float64, seed int64) *relation.Relation {
	cols = clampCols(cols)
	if rows < 1 {
		rows = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []MessyKind{MessyInt, MessyFloat, MessyString, MessyDate, MessyMixedDate, MessyAllNull}
	header := make([]string, cols)
	data := make([][]string, rows)
	for i := range data {
		data[i] = make([]string, cols)
	}
	for c := 0; c < cols; c++ {
		kind := kinds[c%len(kinds)]
		header[c] = fmt.Sprintf("m%d_%s", c, messyKindName(kind))
		for r := 0; r < rows; r++ {
			if kind == MessyAllNull || rng.Float64() < nullDensity {
				continue // cells start empty, i.e. NULL
			}
			data[r][c] = messyValue(rng, kind)
		}
	}
	rel, err := relation.FromRows(fmt.Sprintf("messy-%dx%d-%d", cols, rows, seed), header, data)
	if err != nil {
		panic(fmt.Sprintf("datagen: messy relation: %v", err))
	}
	return rel
}

// MessyWideShallow is the wide-and-shallow property-suite shape: 8 columns of
// 25 rows, every flavor present, a third of the cells NULL. Small enough for
// the brute-force raw oracle, wide enough for non-trivial contexts.
func MessyWideShallow(seed int64) *relation.Relation {
	return MessyRelation(25, 8, 0.33, seed)
}

// MessyDeepNarrow is the deep-and-narrow shape: 4 columns of 300 rows, NULLs
// sparse enough that value order dominates but dense enough that placement
// matters on every column.
func MessyDeepNarrow(seed int64) *relation.Relation {
	return MessyRelation(300, 4, 0.12, seed)
}

func messyKindName(k MessyKind) string {
	switch k {
	case MessyFloat:
		return "float"
	case MessyDate:
		return "date"
	case MessyMixedDate:
		return "mixdate"
	case MessyString:
		return "str"
	case MessyAllNull:
		return "null"
	default:
		return "int"
	}
}
