package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/relation"
)

// Employees returns Table 1 of the paper: the employee salary/tax relation
// used as the running example. Column order matches the paper:
// ID, yr, posit, bin, sal, perc, tax, grp, subg.
func Employees() *relation.Relation {
	header := []string{"ID", "yr", "posit", "bin", "sal", "perc", "tax", "grp", "subg"}
	rows := [][]string{
		{"10", "16", "secr", "1", "5000", "20", "1000", "A", "III"},
		{"11", "16", "mngr", "2", "8000", "25", "2000", "C", "II"},
		{"12", "16", "direct", "3", "10000", "30", "3000", "D", "I"},
		{"10", "15", "secr", "1", "4500", "20", "900", "A", "III"},
		{"11", "15", "mngr", "2", "6000", "25", "1500", "C", "I"},
		{"12", "15", "direct", "3", "8000", "25", "2000", "C", "II"},
	}
	r, err := relation.FromRows("employees", header, rows)
	if err != nil {
		panic(fmt.Sprintf("datagen: employees fixture: %v", err))
	}
	// Roman-numeral subgroups must order I < II < III; lexicographic order
	// happens to agree (I < II < III), so string typing is fine. Grades A < C < D
	// likewise. Nothing to adjust, but keep the check close to the data.
	return r
}

// DateDim returns a TPC-DS-style date dimension used by the query
// optimization example (Query 1 in the paper's introduction): a surrogate key
// d_date_sk assigned in chronological order plus calendar attributes. By
// construction the ODs d_date_sk ↦ d_date, d_date_sk ↦ d_year,
// d_month_seq ↦ d_quarter_seq and the constancy of d_version hold.
func DateDim(days int) *relation.Relation {
	if days <= 0 {
		days = 365
	}
	header := []string{"d_date_sk", "d_date", "d_year", "d_quarter", "d_month", "d_week", "d_day", "d_version"}
	rows := make([][]string, days)
	for i := 0; i < days; i++ {
		dayOfYear := i % 365
		year := 2012 + i/365
		month := dayOfYear/31 + 1
		quarter := (month-1)/3 + 1
		week := dayOfYear/7 + 1
		day := dayOfYear%31 + 1
		rows[i] = []string{
			strconv.Itoa(2450000 + i),
			fmt.Sprintf("%04d-%02d-%02d", year, month, day%28+1),
			strconv.Itoa(year),
			strconv.Itoa(quarter),
			strconv.Itoa(month),
			strconv.Itoa(week),
			strconv.Itoa(day),
			"1",
		}
	}
	r, err := relation.FromRows("date_dim", header, rows)
	if err != nil {
		panic(fmt.Sprintf("datagen: date_dim fixture: %v", err))
	}
	return r
}

// InjectSwapViolations returns a copy of the relation in which n pairs of
// values of column col have been swapped between rows, creating order
// violations (swaps and possibly splits) that the data-quality example
// detects. The second return value lists the affected row indexes.
func InjectSwapViolations(r *relation.Relation, colName string, n int, seed int64) (*relation.Relation, []int, error) {
	ci := r.ColumnIndex(colName)
	if ci < 0 {
		return nil, nil, fmt.Errorf("datagen: column %q not found", colName)
	}
	out, err := r.Project(identity(r.NumCols()))
	if err != nil {
		return nil, nil, err
	}
	out.Name = r.Name + "-dirty"
	rng := rand.New(rand.NewSource(seed))
	affected := make([]int, 0, 2*n)
	rows := out.NumRows()
	if rows < 2 {
		return out, nil, nil
	}
	for k := 0; k < n; k++ {
		i := rng.Intn(rows)
		j := rng.Intn(rows)
		if i == j {
			j = (j + 1) % rows
		}
		raw := out.Columns[ci].Raw
		raw[i], raw[j] = raw[j], raw[i]
		affected = append(affected, i, j)
	}
	return out, affected, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RandomRelation builds a small relation with uniformly random values over a
// bounded domain. It backs the property-based tests that compare FASTOD
// against brute-force discovery: small domains make dependencies likely
// enough to exercise every code path.
func RandomRelation(rows, cols, domain int, seed int64) *relation.Relation {
	if domain < 1 {
		domain = 1
	}
	spec := Spec{Name: "random", Rows: rows, Seed: seed, Drivers: 1}
	for i := 0; i < clampCols(cols); i++ {
		spec.Columns = append(spec.Columns, ColumnSpec{
			Name: name("c", i), Kind: KindRandom, Domain: domain,
		})
	}
	return MustGenerate(spec)
}

// RandomStructuredRelation builds a small relation that mixes random,
// derived-FD and monotone columns so that randomized tests also cover
// datasets where many ODs hold.
func RandomStructuredRelation(rows, cols, domain int, seed int64) *relation.Relation {
	if domain < 1 {
		domain = 1
	}
	spec := Spec{Name: "random-structured", Rows: rows, Seed: seed, Drivers: 2}
	for i := 0; i < clampCols(cols); i++ {
		cs := ColumnSpec{Name: name("c", i), Kind: KindRandom, Domain: domain}
		switch i % 3 {
		case 1:
			if i > 0 {
				cs = ColumnSpec{Name: name("c", i), Kind: KindDerivedFD, Source: i - 1, Domain: domain}
			}
		case 2:
			cs = ColumnSpec{Name: name("c", i), Kind: KindMonotone, Source: i % 2, Domain: 1 + domain/2}
		}
		spec.Columns = append(spec.Columns, cs)
	}
	return MustGenerate(spec)
}
