package datagen

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/relation"
)

func TestGenerateConstantSequentialRandom(t *testing.T) {
	spec := Spec{
		Name: "t", Rows: 10, Seed: 1, Drivers: 1,
		Columns: []ColumnSpec{
			{Name: "const", Kind: KindConstant, Value: 7},
			{Name: "seq", Kind: KindSequential},
			{Name: "rnd", Kind: KindRandom, Domain: 3},
		},
	}
	r, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if r.NumRows() != 10 || r.NumCols() != 3 {
		t.Fatalf("dims %dx%d", r.NumRows(), r.NumCols())
	}
	for i := 0; i < 10; i++ {
		if r.Columns[0].Raw[i] != "7" {
			t.Errorf("constant row %d = %q", i, r.Columns[0].Raw[i])
		}
		if r.Columns[1].Raw[i] != strconv.Itoa(i+1) {
			t.Errorf("sequential row %d = %q", i, r.Columns[1].Raw[i])
		}
		v, _ := strconv.Atoi(r.Columns[2].Raw[i])
		if v < 0 || v >= 3 {
			t.Errorf("random value %d out of domain", v)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := FlightLike(50, 10, 42)
	b := FlightLike(50, 10, 42)
	c := FlightLike(50, 10, 43)
	if !reflect.DeepEqual(a.Rows(), b.Rows()) {
		t.Error("same seed must produce identical data")
	}
	if reflect.DeepEqual(a.Rows(), c.Rows()) {
		t.Error("different seeds should produce different data")
	}
}

func TestGenerateDerivedFDHolds(t *testing.T) {
	spec := Spec{
		Name: "t", Rows: 200, Seed: 5, Drivers: 1,
		Columns: []ColumnSpec{
			{Name: "src", Kind: KindRandom, Domain: 9},
			{Name: "dst", Kind: KindDerivedFD, Source: 0, Domain: 4},
		},
	}
	r, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// src -> dst must hold exactly.
	seen := map[string]string{}
	for i := 0; i < r.NumRows(); i++ {
		s, d := r.Columns[0].Raw[i], r.Columns[1].Raw[i]
		if prev, ok := seen[s]; ok && prev != d {
			t.Fatalf("FD src->dst violated: src=%s has dst %s and %s", s, prev, d)
		}
		seen[s] = d
	}
}

func TestGenerateMonotoneIsOrderCompatibleWithDriverSiblings(t *testing.T) {
	spec := Spec{
		Name: "t", Rows: 300, Seed: 9, Drivers: 1,
		Columns: []ColumnSpec{
			{Name: "coarse", Kind: KindMonotone, Source: 0, Domain: 5},
			{Name: "fine", Kind: KindMonotone, Source: 0, Domain: 2},
		},
	}
	r, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a := intCol(t, r, 0)
	b := intCol(t, r, 1)
	for i := range a {
		for j := range a {
			if a[i] < a[j] && b[j] < b[i] {
				t.Fatalf("swap between sibling monotone columns at rows %d,%d", i, j)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Rows: -1}); err == nil {
		t.Error("negative rows should error")
	}
	if _, err := Generate(Spec{Rows: 1, Columns: []ColumnSpec{{Name: "x", Kind: KindDerivedFD, Source: 0}}}); err == nil {
		t.Error("derived column referencing itself should error")
	}
	if _, err := Generate(Spec{Rows: 1, Columns: []ColumnSpec{{Name: "x", Kind: KindMonotone, Source: 3}}}); err == nil {
		t.Error("monotone column with out-of-range driver should error")
	}
	if _, err := Generate(Spec{Rows: 1, Columns: []ColumnSpec{{Name: "x", Kind: ColumnKind(99)}}}); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on invalid spec")
		}
	}()
	MustGenerate(Spec{Rows: -1})
}

func TestPresetShapes(t *testing.T) {
	cases := []struct {
		name string
		rel  *relation.Relation
		rows int
		cols int
	}{
		{"flight", FlightLike(40, 12, 1), 40, 12},
		{"ncvoter", NCVoterLike(40, 8, 1), 40, 8},
		{"hepatitis", HepatitisLike(0, 10, 1), 155, 10},
		{"dbtesma", DBTesmaLike(40, 9, 1), 40, 9},
	}
	for _, tc := range cases {
		if err := tc.rel.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", tc.name, err)
		}
		if tc.rel.NumRows() != tc.rows || tc.rel.NumCols() != tc.cols {
			t.Errorf("%s: dims %dx%d, want %dx%d", tc.name, tc.rel.NumRows(), tc.rel.NumCols(), tc.rows, tc.cols)
		}
		if _, err := relation.Encode(tc.rel); err != nil {
			t.Errorf("%s: Encode: %v", tc.name, err)
		}
	}
	// Column-count clamping.
	if got := FlightLike(10, 100, 1).NumCols(); got != 64 {
		t.Errorf("FlightLike clamped cols = %d, want 64", got)
	}
	if got := FlightLike(10, 0, 1).NumCols(); got != 1 {
		t.Errorf("FlightLike clamped cols = %d, want 1", got)
	}
}

func TestFlightLikeHasConstantYearAndKey(t *testing.T) {
	r := FlightLike(100, 10, 3)
	for i := 0; i < r.NumRows(); i++ {
		if r.Columns[0].Raw[i] != "2012" {
			t.Fatal("flight year column must be constant 2012")
		}
	}
	seen := map[string]bool{}
	for _, v := range r.Columns[1].Raw {
		if seen[v] {
			t.Fatal("flight_sk must be unique")
		}
		seen[v] = true
	}
}

func TestEmployeesMatchesTable1(t *testing.T) {
	r := Employees()
	if r.NumRows() != 6 || r.NumCols() != 9 {
		t.Fatalf("dims %dx%d, want 6x9", r.NumRows(), r.NumCols())
	}
	if r.ColumnIndex("sal") != 4 || r.ColumnIndex("subg") != 8 {
		t.Error("column order does not match Table 1")
	}
	// Spot-check a couple of cells.
	if r.Columns[4].Raw[2] != "10000" || r.Columns[8].Raw[4] != "I" {
		t.Error("cell values do not match Table 1")
	}
}

func TestDateDim(t *testing.T) {
	r := DateDim(400)
	if r.NumRows() != 400 {
		t.Fatalf("rows = %d", r.NumRows())
	}
	if DateDim(0).NumRows() != 365 {
		t.Error("default row count should be 365")
	}
	// d_date_sk strictly increasing; d_version constant.
	sk := intCol(t, r, 0)
	for i := 1; i < len(sk); i++ {
		if sk[i] <= sk[i-1] {
			t.Fatal("d_date_sk must be strictly increasing")
		}
	}
	for _, v := range r.Columns[r.ColumnIndex("d_version")].Raw {
		if v != "1" {
			t.Fatal("d_version must be constant")
		}
	}
	// d_month determines d_quarter within a year slice by construction.
	month := intCol(t, r, r.ColumnIndex("d_month"))
	quarter := intCol(t, r, r.ColumnIndex("d_quarter"))
	seen := map[int]int{}
	for i := range month {
		if q, ok := seen[month[i]]; ok && q != quarter[i] {
			t.Fatal("d_month must determine d_quarter")
		}
		seen[month[i]] = quarter[i]
	}
}

func TestInjectSwapViolations(t *testing.T) {
	r := DateDim(50)
	dirty, affected, err := InjectSwapViolations(r, "d_year", 3, 1)
	if err != nil {
		t.Fatalf("InjectSwapViolations: %v", err)
	}
	if len(affected) != 6 {
		t.Errorf("affected = %d rows, want 6", len(affected))
	}
	if dirty.Name != "date_dim-dirty" {
		t.Errorf("name = %q", dirty.Name)
	}
	// The original must be untouched.
	if !reflect.DeepEqual(r.Rows(), DateDim(50).Rows()) {
		t.Error("InjectSwapViolations mutated the source relation")
	}
	if _, _, err := InjectSwapViolations(r, "missing", 1, 1); err == nil {
		t.Error("expected error for unknown column")
	}

	tiny := Employees().Head(1)
	out, aff, err := InjectSwapViolations(tiny, "sal", 2, 1)
	if err != nil || len(aff) != 0 || out.NumRows() != 1 {
		t.Error("single-row relation should be returned unchanged")
	}
}

func TestRandomRelations(t *testing.T) {
	r := RandomRelation(20, 4, 3, 7)
	if r.NumRows() != 20 || r.NumCols() != 4 {
		t.Fatalf("dims %dx%d", r.NumRows(), r.NumCols())
	}
	if RandomRelation(5, 2, 0, 1).NumCols() != 2 {
		t.Error("domain clamp failed")
	}
	s := RandomStructuredRelation(30, 6, 4, 7)
	if s.NumRows() != 30 || s.NumCols() != 6 {
		t.Fatalf("structured dims %dx%d", s.NumRows(), s.NumCols())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func intCol(t *testing.T, r *relation.Relation, idx int) []int {
	t.Helper()
	out := make([]int, r.NumRows())
	for i, raw := range r.Columns[idx].Raw {
		v, err := strconv.Atoi(raw)
		if err != nil {
			t.Fatalf("column %d row %d: %v", idx, i, err)
		}
		out[i] = v
	}
	return out
}

func TestMessyRelationShapes(t *testing.T) {
	wide := MessyWideShallow(1)
	if wide.NumCols() != 8 || wide.NumRows() != 25 {
		t.Fatalf("wide shape = %dx%d, want 8x25", wide.NumCols(), wide.NumRows())
	}
	deep := MessyDeepNarrow(1)
	if deep.NumCols() != 4 || deep.NumRows() != 300 {
		t.Fatalf("deep shape = %dx%d, want 4x300", deep.NumCols(), deep.NumRows())
	}
	// Determinism per seed, variation across seeds.
	again := MessyWideShallow(1)
	other := MessyWideShallow(2)
	sameAsAgain, differsFromOther := true, false
	for c := range wide.Columns {
		for r, v := range wide.Columns[c].Raw {
			if again.Columns[c].Raw[r] != v {
				sameAsAgain = false
			}
			if other.Columns[c].Raw[r] != v {
				differsFromOther = true
			}
		}
	}
	if !sameAsAgain {
		t.Error("same seed produced different relations")
	}
	if !differsFromOther {
		t.Error("different seeds produced identical relations")
	}
}

func TestMessyRelationStressesOrderingSemantics(t *testing.T) {
	rel := MessyWideShallow(3)
	nulls := 0
	for _, col := range rel.Columns {
		for _, v := range col.Raw {
			if v == "" {
				nulls++
			}
		}
	}
	if nulls == 0 {
		t.Error("messy relation has no NULLs")
	}
	// The flavor cycle pins the sniffed types: the mixed-date column must
	// degrade to a string (no single layout parses every value), the all-NULL
	// column must still encode, and the plain date column stays a date.
	byName := make(map[string]relation.Type, rel.NumCols())
	for _, col := range rel.Columns {
		byName[col.Name] = col.Type
	}
	if got := byName["m0_int"]; got != relation.TypeInt {
		t.Errorf("m0_int sniffed as %v, want int", got)
	}
	if got := byName["m3_date"]; got != relation.TypeDate {
		t.Errorf("m3_date sniffed as %v, want date", got)
	}
	if got := byName["m4_mixdate"]; got != relation.TypeString {
		t.Errorf("m4_mixdate sniffed as %v, want string (mixed layouts)", got)
	}
	if _, err := relation.Encode(rel); err != nil {
		t.Fatalf("messy relation does not encode: %v", err)
	}
}
