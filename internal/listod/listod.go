// Package listod implements the list-based (lexicographic) order dependency
// model of Section 2 of the paper: order specifications, the weak total order
// ⪯X they induce over tuples, order dependencies X ↦ Y, order compatibility
// X ~ Y, and the two violation witnesses (splits and swaps). It is the
// ground-truth semantics against which the set-based canonical machinery and
// the discovery algorithms are validated, and the substrate of the ORDER
// baseline.
package listod

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Spec is an order specification: a list of attribute indexes defining a
// lexicographic order (sort by the first attribute, break ties by the second,
// and so on), exactly like a SQL ORDER BY list with all-ascending directions.
type Spec []int

// String renders the spec as [0,2,1].
func (s Spec) String() string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Names renders the spec as [year,salary] using the provided attribute names.
func (s Spec) Names(names []string) string {
	parts := make([]string, len(s))
	for i, a := range s {
		if a >= 0 && a < len(names) {
			parts[i] = names[a]
		} else {
			parts[i] = fmt.Sprintf("#%d", a)
		}
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Equal reports whether two specs are identical lists.
func (s Spec) Equal(t Spec) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Contains reports whether attribute a occurs anywhere in the spec.
func (s Spec) Contains(a int) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

// Concat returns the concatenation s ◦ t as a new spec.
func (s Spec) Concat(t Spec) Spec {
	out := make(Spec, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// AttrSetOf returns the set of attributes occurring in the spec (duplicates
// collapsed), as a sorted slice.
func (s Spec) AttrSetOf() []int {
	seen := map[int]bool{}
	for _, a := range s {
		seen[a] = true
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// OD is a list-based order dependency Left ↦ Right ("Left orders Right").
type OD struct {
	Left  Spec
	Right Spec
}

// String renders the OD as [0] -> [1,2].
func (od OD) String() string { return od.Left.String() + " -> " + od.Right.String() }

// Names renders the OD using attribute names.
func (od OD) Names(names []string) string {
	return od.Left.Names(names) + " -> " + od.Right.Names(names)
}

// Compare compares tuples s and t under the lexicographic order induced by
// spec on the encoded relation (Definition 1): it returns a negative number
// if s ≺X t, zero if the projections are equal, and a positive number if
// t ≺X s. The empty spec makes all tuples equivalent.
func Compare(enc *relation.Encoded, spec Spec, s, t int) int {
	for _, a := range spec {
		col := enc.Column(a)
		if col[s] != col[t] {
			if col[s] < col[t] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Precedes reports s ⪯X t, i.e. Compare(s,t) <= 0.
func Precedes(enc *relation.Encoded, spec Spec, s, t int) bool {
	return Compare(enc, spec, s, t) <= 0
}

// Holds reports whether the order dependency X ↦ Y is satisfied by the
// relation instance (Definition 2): for every pair of tuples, s ⪯X t implies
// s ⪯Y t. The check sorts tuples once by (X, Y) and scans, so it runs in
// O(n log n · (|X|+|Y|)) time.
func Holds(enc *relation.Encoded, x, y Spec) bool {
	_, _, ok := evaluate(enc, x, y)
	return ok
}

// HoldsBruteForce checks the same property by enumerating all tuple pairs.
// It exists as an independent oracle for the tests of Holds and of the
// canonical mapping; it is quadratic and must only be used on small inputs.
func HoldsBruteForce(enc *relation.Encoded, x, y Spec) bool {
	n := enc.NumRows()
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if Precedes(enc, x, s, t) && !Precedes(enc, y, s, t) {
				return false
			}
		}
	}
	return true
}

// OrderEquivalent reports X ↔ Y: X ↦ Y and Y ↦ X.
func OrderEquivalent(enc *relation.Encoded, x, y Spec) bool {
	return Holds(enc, x, y) && Holds(enc, y, x)
}

// OrderCompatible reports X ~ Y, i.e. XY ↔ YX (Definition 3). By Theorem 1
// this is equivalent to the absence of swaps between X and Y.
func OrderCompatible(enc *relation.Encoded, x, y Spec) bool {
	return OrderEquivalent(enc, x.Concat(y), y.Concat(x))
}

// Split is a pair of tuples witnessing a violation of the FD component of an
// OD (Definition 4): the tuples agree on X but differ on Y.
type Split struct {
	RowS, RowT int
}

// Swap is a pair of tuples witnessing a violation of order compatibility
// (Definition 5): s strictly precedes t on X while t strictly precedes s on Y.
type Swap struct {
	RowS, RowT int
}

// FindSplit returns a split witness for X ↦ XY if one exists: two tuples
// equal on X but different on Y.
func FindSplit(enc *relation.Encoded, x, y Spec) (Split, bool) {
	order, groups := sortAndGroup(enc, x)
	for _, g := range groups {
		base := order[g.start]
		for i := g.start + 1; i < g.end; i++ {
			if Compare(enc, y, base, order[i]) != 0 {
				return Split{RowS: base, RowT: order[i]}, true
			}
		}
	}
	return Split{}, false
}

// FindSwap returns a swap witness for X ~ Y if one exists.
func FindSwap(enc *relation.Encoded, x, y Spec) (Swap, bool) {
	order, groups := sortAndGroup(enc, x)
	// Track the tuple with the lexicographically greatest Y-projection among
	// all strictly preceding X-groups; any later tuple with a smaller
	// Y-projection forms a swap with it.
	haveMax := false
	maxRow := -1
	for _, g := range groups {
		// Check the current group against the running maximum.
		groupMax := -1
		for i := g.start; i < g.end; i++ {
			row := order[i]
			if haveMax && Compare(enc, y, row, maxRow) < 0 {
				return Swap{RowS: maxRow, RowT: row}, true
			}
			if groupMax < 0 || Compare(enc, y, row, groupMax) > 0 {
				groupMax = row
			}
		}
		if !haveMax || Compare(enc, y, groupMax, maxRow) > 0 {
			maxRow = groupMax
			haveMax = true
		}
	}
	return Swap{}, false
}

// evaluate sorts by (X,Y) and verifies both the split condition (Y constant
// within X-groups) and the swap condition (Y non-decreasing across X-groups).
// It returns the first violating witnesses it encounters.
func evaluate(enc *relation.Encoded, x, y Spec) (Split, Swap, bool) {
	order, groups := sortAndGroup(enc, x)
	prevRow := -1
	for _, g := range groups {
		base := order[g.start]
		for i := g.start + 1; i < g.end; i++ {
			if Compare(enc, y, base, order[i]) != 0 {
				return Split{RowS: base, RowT: order[i]}, Swap{}, false
			}
		}
		if prevRow >= 0 && Compare(enc, y, base, prevRow) < 0 {
			return Split{}, Swap{RowS: prevRow, RowT: base}, false
		}
		prevRow = base
	}
	return Split{}, Swap{}, true
}

type group struct{ start, end int }

// sortAndGroup returns row indexes sorted by the spec (stable on row index
// for determinism) plus the boundaries of the equal-projection groups.
func sortAndGroup(enc *relation.Encoded, spec Spec) ([]int, []group) {
	n := enc.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		c := Compare(enc, spec, order[i], order[j])
		if c != 0 {
			return c < 0
		}
		return order[i] < order[j]
	})
	var groups []group
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || Compare(enc, spec, order[i], order[start]) != 0 {
			groups = append(groups, group{start: start, end: i})
			start = i
		}
	}
	return order, groups
}

// Trivial reports whether X ↦ Y holds on every relation instance, which for
// lexicographic ODs is the case exactly when Y is order-implied by a prefix
// structure of X; the sufficient syntactic condition implemented here is that
// Y is a prefix of X after removing attributes already seen (Normalization),
// e.g. XY ↦ X (Reflexivity). It is used by the ORDER baseline to skip
// candidates that carry no information.
func Trivial(x, y Spec) bool {
	// Normalize both sides: drop repeated attributes, keeping first
	// occurrence (Normalization axiom).
	nx := normalize(x)
	ny := normalize(y)
	if len(ny) > len(nx) {
		return false
	}
	for i := range ny {
		if nx[i] != ny[i] {
			return false
		}
	}
	return true
}

func normalize(s Spec) Spec {
	seen := map[int]bool{}
	out := make(Spec, 0, len(s))
	for _, a := range s {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Normalize exposes the Normalization rewrite (drop repeated attributes,
// keeping the first occurrence) for use by other packages.
func Normalize(s Spec) Spec { return normalize(s) }
