package listod

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// employees returns the encoded Table 1 plus a name->index lookup.
func employees(t *testing.T) (*relation.Encoded, map[string]int) {
	t.Helper()
	r := datagen.Employees()
	enc, err := relation.Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	idx := map[string]int{}
	for i, n := range enc.ColumnNames {
		idx[n] = i
	}
	return enc, idx
}

func TestSpecHelpers(t *testing.T) {
	s := Spec{2, 0, 2}
	if s.String() != "[2,0,2]" {
		t.Errorf("String = %q", s.String())
	}
	if got := s.Names([]string{"A", "B", "C"}); got != "[C,A,C]" {
		t.Errorf("Names = %q", got)
	}
	outOfRange := Spec{5}
	if got := outOfRange.Names([]string{"A"}); got != "[#5]" {
		t.Errorf("Names out of range = %q", got)
	}
	if !s.Equal(Spec{2, 0, 2}) || s.Equal(Spec{2, 0}) || s.Equal(Spec{2, 0, 1}) {
		t.Error("Equal incorrect")
	}
	if !s.Contains(0) || s.Contains(7) {
		t.Error("Contains incorrect")
	}
	one := Spec{1}
	if got := one.Concat(Spec{2, 3}); !got.Equal(Spec{1, 2, 3}) {
		t.Errorf("Concat = %v", got)
	}
	mixed := Spec{3, 1, 3, 0}
	attrs := mixed.AttrSetOf()
	want := []int{0, 1, 3}
	if len(attrs) != len(want) {
		t.Fatalf("AttrSetOf = %v", attrs)
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Fatalf("AttrSetOf = %v, want %v", attrs, want)
		}
	}
	od := OD{Left: Spec{0}, Right: Spec{1, 2}}
	if od.String() != "[0] -> [1,2]" {
		t.Errorf("OD.String = %q", od.String())
	}
	if od.Names([]string{"A", "B", "C"}) != "[A] -> [B,C]" {
		t.Errorf("OD.Names = %q", od.Names([]string{"A", "B", "C"}))
	}
}

func TestCompareLexicographic(t *testing.T) {
	enc, idx := employees(t)
	yr, sal := idx["yr"], idx["sal"]
	// t4 (row 3) has yr=15 < t1 (row 0) yr=16.
	if Compare(enc, Spec{yr, sal}, 3, 0) >= 0 {
		t.Error("row 3 should precede row 0 on [yr,sal]")
	}
	// Equal projection on empty spec.
	if Compare(enc, Spec{}, 0, 5) != 0 {
		t.Error("empty spec must make all tuples equivalent")
	}
	if !Precedes(enc, Spec{}, 2, 4) || !Precedes(enc, Spec{}, 4, 2) {
		t.Error("Precedes on empty spec must hold both ways")
	}
	// Tie on yr broken by sal: rows 0 (16,5000) vs 1 (16,8000).
	if Compare(enc, Spec{yr, sal}, 0, 1) >= 0 {
		t.Error("tie on yr must be broken by sal")
	}
}

func TestTable1ODs(t *testing.T) {
	enc, idx := employees(t)
	sal, tax, perc := idx["sal"], idx["tax"], idx["perc"]
	grp, subg := idx["grp"], idx["subg"]
	yr, bin, posit := idx["yr"], idx["bin"], idx["posit"]

	// Example 1 of the paper.
	holding := []OD{
		{Spec{sal}, Spec{tax}},
		{Spec{sal}, Spec{perc}},
		{Spec{sal}, Spec{grp, subg}},
		{Spec{yr, sal}, Spec{yr, bin}},
	}
	for _, od := range holding {
		if !Holds(enc, od.Left, od.Right) {
			t.Errorf("%v should hold on Table 1", od.Names(enc.ColumnNames))
		}
		if !HoldsBruteForce(enc, od.Left, od.Right) {
			t.Errorf("%v should hold on Table 1 (brute force)", od.Names(enc.ColumnNames))
		}
	}
	// Example 3: [position] -> [position, salary] has splits.
	if Holds(enc, Spec{posit}, Spec{posit, sal}) {
		t.Error("[posit] -> [posit,sal] should not hold (splits)")
	}
	if _, ok := FindSplit(enc, Spec{posit}, Spec{sal}); !ok {
		t.Error("expected a split witness for posit vs sal")
	}
	// Example 3: swap over [salary] ~ [subgroup].
	if OrderCompatible(enc, Spec{sal}, Spec{subg}) {
		t.Error("[sal] ~ [subg] should not hold (swap)")
	}
	if _, ok := FindSwap(enc, Spec{sal}, Spec{subg}); !ok {
		t.Error("expected a swap witness for sal vs subg")
	}
	// Example 4: {year}: bin ~ salary, i.e. [yr,bin] ~ [yr,sal].
	if !OrderCompatible(enc, Spec{yr, bin}, Spec{yr, sal}) {
		t.Error("[yr,bin] ~ [yr,sal] should hold")
	}
}

func TestOrderEquivalent(t *testing.T) {
	enc, idx := employees(t)
	sal, tax, perc := idx["sal"], idx["tax"], idx["perc"]
	// salary <-> salary,tax (suffix rule consequence).
	if !OrderEquivalent(enc, Spec{sal}, Spec{sal, tax}) {
		t.Error("[sal] <-> [sal,tax] should hold")
	}
	// Both salary -> tax and tax -> salary hold in Table 1 (ties agree).
	if !OrderEquivalent(enc, Spec{tax}, Spec{sal}) {
		t.Error("[tax] <-> [sal] should hold on Table 1")
	}
	if OrderEquivalent(enc, Spec{perc}, Spec{sal}) {
		t.Error("[perc] <-> [sal] should not hold: percentage does not determine salary")
	}
}

func TestFindSplitAndSwapWitnessesAreValid(t *testing.T) {
	enc, idx := employees(t)
	posit, sal, subg := idx["posit"], idx["sal"], idx["subg"]

	if w, ok := FindSplit(enc, Spec{posit}, Spec{sal}); ok {
		if Compare(enc, Spec{posit}, w.RowS, w.RowT) != 0 {
			t.Error("split witness rows differ on the left side")
		}
		if Compare(enc, Spec{sal}, w.RowS, w.RowT) == 0 {
			t.Error("split witness rows agree on the right side")
		}
	} else {
		t.Error("expected split witness")
	}

	if w, ok := FindSwap(enc, Spec{sal}, Spec{subg}); ok {
		cx := Compare(enc, Spec{sal}, w.RowS, w.RowT)
		cy := Compare(enc, Spec{subg}, w.RowS, w.RowT)
		if !(cx < 0 && cy > 0) && !(cx > 0 && cy < 0) {
			t.Errorf("swap witness rows (%d,%d) are not a swap: cx=%d cy=%d", w.RowS, w.RowT, cx, cy)
		}
	} else {
		t.Error("expected swap witness")
	}

	// No witnesses where the dependency holds.
	if _, ok := FindSplit(enc, Spec{sal}, Spec{idx["tax"]}); ok {
		t.Error("unexpected split witness for sal -> tax")
	}
	if _, ok := FindSwap(enc, Spec{sal}, Spec{idx["tax"]}); ok {
		t.Error("unexpected swap witness for sal ~ tax")
	}
}

func TestTrivialAndNormalize(t *testing.T) {
	cases := []struct {
		x, y Spec
		want bool
	}{
		{Spec{0, 1}, Spec{0}, true},       // Reflexivity: XY -> X
		{Spec{0, 1}, Spec{0, 1}, true},    // identity
		{Spec{0, 1, 0}, Spec{0, 1}, true}, // Normalization collapses repeats
		{Spec{0}, Spec{1}, false},         //
		{Spec{0, 1}, Spec{1}, false},      // suffix is not a prefix
		{Spec{0}, Spec{0, 1}, false},      // right longer than left
		{Spec{}, Spec{}, true},            // empty -> empty
		{Spec{1, 0}, Spec{0}, false},      // order matters
	}
	for _, tc := range cases {
		if got := Trivial(tc.x, tc.y); got != tc.want {
			t.Errorf("Trivial(%v,%v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
	if got := Normalize(Spec{2, 1, 2, 0, 1}); !got.Equal(Spec{2, 1, 0}) {
		t.Errorf("Normalize = %v", got)
	}
}

// Trivial ODs must hold on every instance.
func TestTrivialImpliesHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		r := datagen.RandomRelation(20, 4, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		specs := []Spec{{}, {0}, {1, 0}, {0, 1, 2}, {3, 2, 3}, {2, 2}}
		for _, x := range specs {
			for _, y := range specs {
				if Trivial(x, y) && !Holds(enc, x, y) {
					t.Fatalf("trivial OD %v -> %v does not hold on instance", x, y)
				}
			}
		}
	}
}

// Property: the efficient Holds agrees with the quadratic brute-force oracle
// on random relations and random specs.
func TestHoldsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		rows := 2 + rng.Intn(24)
		cols := 2 + rng.Intn(4)
		r := datagen.RandomStructuredRelation(rows, cols, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSpec(rng, cols)
		y := randomSpec(rng, cols)
		want := HoldsBruteForce(enc, x, y)
		if got := Holds(enc, x, y); got != want {
			t.Fatalf("trial %d: Holds(%v,%v) = %v, brute force = %v", trial, x, y, got, want)
		}
	}
}

// Property: Theorem 1 — X ↦ Y iff X ↦ XY and X ~ Y.
func TestTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		rows := 2 + rng.Intn(20)
		cols := 2 + rng.Intn(4)
		r := datagen.RandomStructuredRelation(rows, cols, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSpec(rng, cols)
		y := randomSpec(rng, cols)
		lhs := Holds(enc, x, y)
		rhs := Holds(enc, x, x.Concat(y)) && OrderCompatible(enc, x, y)
		if lhs != rhs {
			t.Fatalf("trial %d: Theorem 1 violated for X=%v Y=%v: direct=%v decomposed=%v", trial, x, y, lhs, rhs)
		}
	}
}

// Property: order compatibility is symmetric and reflexive.
func TestOrderCompatibleSymmetricReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		r := datagen.RandomStructuredRelation(2+rng.Intn(16), 3, 3, rng.Int63())
		enc, err := relation.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSpec(rng, 3)
		y := randomSpec(rng, 3)
		if OrderCompatible(enc, x, y) != OrderCompatible(enc, y, x) {
			t.Fatalf("order compatibility is not symmetric for %v, %v", x, y)
		}
		if !OrderCompatible(enc, x, x) {
			t.Fatalf("order compatibility is not reflexive for %v", x)
		}
		// The empty spec is order compatible with anything (Definition 3).
		if !OrderCompatible(enc, Spec{}, x) {
			t.Fatalf("empty spec should be order compatible with %v", x)
		}
	}
}

func randomSpec(rng *rand.Rand, cols int) Spec {
	n := rng.Intn(3)
	out := make(Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rng.Intn(cols))
	}
	return out
}
