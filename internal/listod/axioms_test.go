package listod

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// TestListAxiomsSoundness checks Figure 1's list-based axioms semantically:
// on random instances, whenever every premise holds the conclusion holds.
func TestListAxiomsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const cols = 4
	spec := func() Spec {
		n := rng.Intn(3)
		out := make(Spec, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, rng.Intn(cols))
		}
		return out
	}
	checked := map[string]int{}
	for trial := 0; trial < 300; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(14), cols, 3, rng.Int63())
		enc, err := relation.Encode(rel)
		if err != nil {
			t.Fatal(err)
		}
		axioms := []Axiom{
			Reflexivity(spec(), spec()),
			Prefix(spec(), spec(), spec()),
			Transitivity(spec(), spec(), spec()),
			NormalizationAxiom(spec(), spec(), spec(), spec()),
			Suffix(spec(), spec()),
		}
		for _, ax := range axioms {
			premisesHold, conclusionHolds := HoldsAxiom(enc, ax)
			if !premisesHold {
				continue
			}
			checked[ax.Name]++
			if !conclusionHolds {
				t.Fatalf("trial %d: axiom %s unsound: premises %v hold but conclusion %v fails",
					trial, ax.Name, ax.Premises, ax.Conclusion)
			}
		}
	}
	for _, name := range []string{"Reflexivity", "Prefix", "Transitivity", "Normalization", "Suffix"} {
		if checked[name] == 0 {
			t.Errorf("axiom %s was never exercised with satisfied premises", name)
		}
	}
}

// TestChainAxiomSoundness exercises the Chain axiom with single-attribute
// specifications, the shape used in the paper's examples.
func TestChainAxiomSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	const cols = 4
	exercised := 0
	for trial := 0; trial < 400 && exercised < 20; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(10), cols, 2, rng.Int63())
		enc, err := relation.Encode(rel)
		if err != nil {
			t.Fatal(err)
		}
		x := Spec{rng.Intn(cols)}
		y := Spec{rng.Intn(cols)}
		z := Spec{rng.Intn(cols)}
		premises, conclusion := ChainStep(x, []Spec{y}, z)
		all := true
		for _, pr := range premises {
			if !Holds(enc, pr[0].Left, pr[0].Right) || !Holds(enc, pr[1].Left, pr[1].Right) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		exercised++
		if !Holds(enc, conclusion[0].Left, conclusion[0].Right) || !Holds(enc, conclusion[1].Left, conclusion[1].Right) {
			t.Fatalf("trial %d: Chain unsound for X=%v Y=%v Z=%v", trial, x, y, z)
		}
	}
	if exercised == 0 {
		t.Error("Chain axiom was never exercised with satisfied premises")
	}
}

func TestChainStepEmptyChain(t *testing.T) {
	premises, conclusion := ChainStep(Spec{0}, nil, Spec{1})
	if premises != nil {
		t.Errorf("empty chain should have no premises, got %v", premises)
	}
	if !conclusion[0].Left.Equal(Spec{0, 1}) || !conclusion[0].Right.Equal(Spec{1, 0}) {
		t.Errorf("conclusion = %v", conclusion)
	}
}

// TestTheorem7Correspondence spot-checks the completeness direction of
// Theorem 7 on instances: the list-based Suffix and Prefix conclusions are
// always implied by the canonical ODs of their premises, i.e. checking the
// premise through the set-based mapping and the conclusion through the
// list-based semantics agree. (The full equivalence is exercised by the
// canonical package's Theorem-5 tests; this keeps a cross-package witness.)
func TestTheorem7Correspondence(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 100; trial++ {
		rel := datagen.RandomStructuredRelation(2+rng.Intn(12), 3, 3, rng.Int63())
		enc, err := relation.Encode(rel)
		if err != nil {
			t.Fatal(err)
		}
		x := Spec{rng.Intn(3)}
		y := Spec{rng.Intn(3)}
		if !Holds(enc, x, y) {
			continue
		}
		// Suffix: X ↔ YX.
		if !Holds(enc, x, y.Concat(x)) || !Holds(enc, y.Concat(x), x) {
			t.Fatalf("trial %d: Suffix correspondence fails for X=%v Y=%v", trial, x, y)
		}
		// Prefix with Z = the remaining attribute.
		z := Spec{(x[0] + 1) % 3}
		if !Holds(enc, z.Concat(x), z.Concat(y)) {
			t.Fatalf("trial %d: Prefix correspondence fails for X=%v Y=%v Z=%v", trial, x, y, z)
		}
	}
}
