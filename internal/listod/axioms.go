package listod

import "repro/internal/relation"

// This file implements the list-based axiomatization of Figure 1 of the paper
// (originally from Szlichta et al., "Fundamentals of Order Dependencies") as
// syntactic rewrite rules over order specifications. The set-based axioms in
// package canonical are what the discovery algorithm uses; these list-based
// rules exist so that the completeness argument of Theorem 7 (each list axiom
// is derivable in the set-based system and vice versa) can be exercised by
// tests, and so that tools can normalize user-written ODs.

// Axiom is one list-based inference: given satisfied premises, the conclusion
// is satisfied on every instance where the premises are (soundness is checked
// property-style in the tests).
type Axiom struct {
	// Name is the rule's name in Figure 1.
	Name string
	// Premises are the ODs that must hold.
	Premises []OD
	// Conclusion is the derived OD.
	Conclusion OD
}

// Reflexivity returns the axiom XY ↦ X.
func Reflexivity(x, y Spec) Axiom {
	return Axiom{
		Name:       "Reflexivity",
		Conclusion: OD{Left: x.Concat(y), Right: x},
	}
}

// Prefix returns the axiom: from X ↦ Y infer ZX ↦ ZY.
func Prefix(z, x, y Spec) Axiom {
	return Axiom{
		Name:       "Prefix",
		Premises:   []OD{{Left: x, Right: y}},
		Conclusion: OD{Left: z.Concat(x), Right: z.Concat(y)},
	}
}

// Transitivity returns the axiom: from X ↦ Y and Y ↦ Z infer X ↦ Z.
func Transitivity(x, y, z Spec) Axiom {
	return Axiom{
		Name:       "Transitivity",
		Premises:   []OD{{Left: x, Right: y}, {Left: y, Right: z}},
		Conclusion: OD{Left: x, Right: z},
	}
}

// NormalizationAxiom returns the axiom WXYXV ↔ WXYV as the forward OD
// (the backward direction is the same rule with the sides swapped).
// Repeated occurrences of attributes after their first appearance carry no
// ordering information and can be dropped.
func NormalizationAxiom(w, x, y, v Spec) Axiom {
	left := w.Concat(x).Concat(y).Concat(x).Concat(v)
	right := w.Concat(x).Concat(y).Concat(v)
	return Axiom{
		Name:       "Normalization",
		Conclusion: OD{Left: left, Right: right},
	}
}

// Suffix returns the axiom: from X ↦ Y infer X ↦ YX (stated as X ↔ YX in the
// paper; the other direction YX ↦ X is Reflexivity).
func Suffix(x, y Spec) Axiom {
	return Axiom{
		Name:       "Suffix",
		Premises:   []OD{{Left: x, Right: y}},
		Conclusion: OD{Left: x, Right: y.Concat(x)},
	}
}

// ChainStep captures one premise family of the Chain axiom for a fixed
// sequence Y1..Yn: X ~ Y1, Yi ~ Yi+1, Yn ~ Z and YiX ~ YiZ together imply
// X ~ Z. Order compatibility A ~ B is expressed as the pair of ODs
// AB ↦ BA and BA ↦ AB, so the premises and conclusion are returned as OD
// pairs.
func ChainStep(x Spec, ys []Spec, z Spec) (premises [][2]OD, conclusion [2]OD) {
	oc := func(a, b Spec) [2]OD {
		return [2]OD{
			{Left: a.Concat(b), Right: b.Concat(a)},
			{Left: b.Concat(a), Right: a.Concat(b)},
		}
	}
	if len(ys) == 0 {
		return nil, oc(x, z)
	}
	premises = append(premises, oc(x, ys[0]))
	for i := 0; i+1 < len(ys); i++ {
		premises = append(premises, oc(ys[i], ys[i+1]))
	}
	premises = append(premises, oc(ys[len(ys)-1], z))
	for _, y := range ys {
		premises = append(premises, oc(y.Concat(x), y.Concat(z)))
	}
	return premises, oc(x, z)
}

// HoldsAxiom reports whether all premises of the axiom hold on the instance
// and, if so, whether the conclusion does too. The first return value is
// false when a premise fails (the axiom is then vacuously satisfied).
func HoldsAxiom(enc *relation.Encoded, ax Axiom) (premisesHold, conclusionHolds bool) {
	for _, p := range ax.Premises {
		if !Holds(enc, p.Left, p.Right) {
			return false, false
		}
	}
	return true, Holds(enc, ax.Conclusion.Left, ax.Conclusion.Right)
}
