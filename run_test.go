package fastod_test

import (
	"context"
	"testing"
	"time"

	fastod "repro"
)

// --- Differential tests: Run must equal the legacy Discover* wrappers on ---
// --- the seed datasets when no budget fires.                             ---

func seedDatasets() map[string]*fastod.Dataset {
	return map[string]*fastod.Dataset{
		"employees": fastod.EmployeesExample(),
		"flight":    fastod.SyntheticFlight(300, 6, 2017),
		"ncvoter":   fastod.SyntheticNCVoter(200, 5, 2017),
		"dbtesma":   fastod.SyntheticDBTesma(200, 5, 2017),
	}
}

func TestRunMatchesDiscoverFASTOD(t *testing.T) {
	ctx := context.Background()
	for name, ds := range seedDatasets() {
		rep, err := ds.Run(ctx, fastod.Request{Algorithm: fastod.AlgorithmFASTOD})
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		legacy, err := ds.Discover(fastod.Options{})
		if err != nil {
			t.Fatalf("%s: Discover: %v", name, err)
		}
		if rep.Interrupted || rep.FASTOD.Stats.Interrupted {
			t.Fatalf("%s: unbudgeted run reported interrupted", name)
		}
		if rep.Algorithm != fastod.AlgorithmFASTOD || rep.FASTOD == nil {
			t.Fatalf("%s: report payload mismatch: %+v", name, rep)
		}
		if rep.FASTOD.Counts != legacy.Counts || len(rep.FASTOD.ODs) != len(legacy.ODs) {
			t.Fatalf("%s: Run counts %v, Discover counts %v", name, rep.FASTOD.Counts, legacy.Counts)
		}
		for i := range legacy.ODs {
			if !rep.FASTOD.ODs[i].Equal(legacy.ODs[i]) {
				t.Fatalf("%s: OD %d = %v, want %v", name, i, rep.FASTOD.ODs[i], legacy.ODs[i])
			}
		}
		if rep.Stats.NodesVisited != legacy.Stats.NodesVisited {
			t.Errorf("%s: Run visited %d nodes, Discover %d", name, rep.Stats.NodesVisited, legacy.Stats.NodesVisited)
		}
	}
}

func TestRunMatchesLegacyBaselinesAndExtensions(t *testing.T) {
	ctx := context.Background()
	ds := fastod.SyntheticFlight(250, 6, 2017)
	dsLegacy := fastod.SyntheticFlight(250, 6, 2017)

	tane, err := ds.Run(ctx, fastod.Request{Algorithm: fastod.AlgorithmTANE})
	if err != nil {
		t.Fatal(err)
	}
	taneLegacy, err := dsLegacy.DiscoverFDs(fastod.TANEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tane.TANE.FDs) != len(taneLegacy.FDs) {
		t.Errorf("TANE: Run found %d FDs, legacy %d", len(tane.TANE.FDs), len(taneLegacy.FDs))
	}

	apx, err := ds.Run(ctx, fastod.Request{
		Algorithm: fastod.AlgorithmApprox,
		Approx:    fastod.ApproxRunOptions{Threshold: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	apxLegacy, err := dsLegacy.DiscoverApproximate(fastod.ApproxOptions{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(apx.Approx.ODs) != len(apxLegacy.ODs) {
		t.Errorf("approx: Run found %d ODs, legacy %d", len(apx.Approx.ODs), len(apxLegacy.ODs))
	}

	bid, err := ds.Run(ctx, fastod.Request{Algorithm: fastod.AlgorithmBidirectional})
	if err != nil {
		t.Fatal(err)
	}
	bidLegacy, err := dsLegacy.DiscoverBidirectional(fastod.BidirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bid.Bidir.ODs) != len(bidLegacy.ODs) {
		t.Errorf("bidir: Run found %d ODs, legacy %d", len(bid.Bidir.ODs), len(bidLegacy.ODs))
	}

	cond, err := ds.Run(ctx, fastod.Request{Algorithm: fastod.AlgorithmConditional})
	if err != nil {
		t.Fatal(err)
	}
	condLegacy, err := dsLegacy.DiscoverConditional(fastod.ConditionalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cond.Conditional.ODs) != len(condLegacy.ODs) || cond.Conditional.SlicesExamined != condLegacy.SlicesExamined {
		t.Errorf("conditional: Run found %d ODs over %d slices, legacy %d over %d",
			len(cond.Conditional.ODs), cond.Conditional.SlicesExamined,
			len(condLegacy.ODs), condLegacy.SlicesExamined)
	}

	ord, err := ds.Run(ctx, fastod.Request{
		Algorithm:  fastod.AlgorithmORDER,
		RunOptions: fastod.RunOptions{Budget: fastod.Budget{MaxNodes: 200_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ordLegacy, err := dsLegacy.DiscoverWithORDER(fastod.ORDEROptions{Budget: fastod.Budget{MaxNodes: 200_000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.ORDER.ODs) != len(ordLegacy.ODs) || ord.ORDER.Interrupted != ordLegacy.Interrupted {
		t.Errorf("ORDER: Run found %d ODs (interrupted=%v), legacy %d (interrupted=%v)",
			len(ord.ORDER.ODs), ord.ORDER.Interrupted, len(ordLegacy.ODs), ordLegacy.Interrupted)
	}
}

// --- Cancellation: a context cancelled mid-level stops the run within one ---
// --- chunk and yields a coherent partial report.                          ---

// cancelAfterFirstLevel builds a progress callback that cancels the context
// once the first level completes, so the interrupt lands inside a later
// level's parallel phase or at its barrier — never before any work happened.
func runCancelledMidway(t *testing.T, ds *fastod.Dataset, alg fastod.Algorithm) *fastod.Report {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := ds.RunWithProgress(ctx, fastod.Request{Algorithm: alg}, func(ev fastod.ProgressEvent) {
		if ev.Level >= 1 {
			cancel()
		}
	})
	if err != nil {
		t.Fatalf("%s: cancelled run errored: %v", alg, err)
	}
	if !rep.Interrupted {
		t.Fatalf("%s: cancelled run not marked interrupted", alg)
	}
	return rep
}

func TestRunCancellationMidLevel(t *testing.T) {
	for _, alg := range []fastod.Algorithm{
		fastod.AlgorithmFASTOD, fastod.AlgorithmTANE, fastod.AlgorithmApprox,
		fastod.AlgorithmBidirectional,
	} {
		ds := fastod.SyntheticFlight(400, 8, 2017)
		full, err := ds.Run(context.Background(), fastod.Request{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		rep := runCancelledMidway(t, fastod.SyntheticFlight(400, 8, 2017), alg)
		if rep.Stats.NodesVisited == 0 {
			t.Errorf("%s: interrupted report shows no work", alg)
		}
		if rep.Stats.NodesVisited >= full.Stats.NodesVisited {
			t.Errorf("%s: cancelled run visited %d nodes, full run %d — cancellation had no effect",
				alg, rep.Stats.NodesVisited, full.Stats.NodesVisited)
		}
	}
}

// TestRunCancelledPartialIsPrefixOfFull: the ODs of an interrupted FASTOD run
// must be a subset of the complete output (each one individually valid).
func TestRunCancelledPartialIsPrefixOfFull(t *testing.T) {
	full, err := fastod.SyntheticFlight(400, 8, 2017).Run(context.Background(),
		fastod.Request{Algorithm: fastod.AlgorithmFASTOD})
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[string]bool, len(full.FASTOD.ODs))
	for _, od := range full.FASTOD.ODs {
		valid[od.String()] = true
	}
	rep := runCancelledMidway(t, fastod.SyntheticFlight(400, 8, 2017), fastod.AlgorithmFASTOD)
	for _, od := range rep.FASTOD.ODs {
		if !valid[od.String()] {
			t.Errorf("interrupted run emitted %v, which the complete run does not contain", od)
		}
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds := fastod.SyntheticFlight(100, 5, 2017)
	rep, err := ds.Run(ctx, fastod.Request{})
	if err != nil {
		t.Fatalf("pre-cancelled Run errored: %v", err)
	}
	if !rep.Interrupted || rep.Stats.NodesVisited != 0 {
		t.Errorf("pre-cancelled Run: interrupted=%v nodes=%d, want true/0", rep.Interrupted, rep.Stats.NodesVisited)
	}
	if rep.FASTOD == nil {
		t.Error("pre-cancelled Run must still return its payload envelope")
	}
}

// --- Budgets ---

func TestRunNodeBudgetAcrossAlgorithms(t *testing.T) {
	for _, alg := range []fastod.Algorithm{
		fastod.AlgorithmFASTOD, fastod.AlgorithmTANE, fastod.AlgorithmApprox,
		fastod.AlgorithmBidirectional, fastod.AlgorithmConditional, fastod.AlgorithmORDER,
	} {
		ds := fastod.SyntheticFlight(300, 8, 2017)
		rep, err := ds.Run(context.Background(), fastod.Request{
			Algorithm:  alg,
			RunOptions: fastod.RunOptions{Budget: fastod.Budget{MaxNodes: 20}},
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !rep.Interrupted {
			t.Errorf("%s: 20-node budget did not interrupt the run", alg)
		}
		if rep.Stats.NodesVisited == 0 {
			t.Errorf("%s: interrupted report shows no work", alg)
		}
		full, err := fastod.SyntheticFlight(300, 8, 2017).Run(context.Background(), fastod.Request{
			Algorithm:  alg,
			RunOptions: fastod.RunOptions{Budget: fastod.Budget{MaxNodes: 10_000_000}},
		})
		if err != nil {
			t.Fatalf("%s (unbudgeted): %v", alg, err)
		}
		if rep.Stats.NodesVisited >= full.Stats.NodesVisited {
			t.Errorf("%s: budgeted run visited %d nodes, full run %d", alg, rep.Stats.NodesVisited, full.Stats.NodesVisited)
		}
	}
}

func TestRunTimeoutBudget(t *testing.T) {
	ds := fastod.SyntheticFlight(300, 8, 2017)
	rep, err := ds.Run(context.Background(), fastod.Request{
		RunOptions: fastod.RunOptions{Budget: fastod.Budget{Timeout: time.Nanosecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("1ns timeout did not interrupt the run")
	}
}

// --- Envelope semantics ---

func TestRunUnknownAlgorithm(t *testing.T) {
	ds := fastod.EmployeesExample()
	if _, err := ds.Run(context.Background(), fastod.Request{Algorithm: "bogus"}); err == nil {
		t.Error("unknown algorithm must be rejected")
	}
}

func TestRunDefaultsToFASTOD(t *testing.T) {
	ds := fastod.EmployeesExample()
	rep, err := ds.Run(context.Background(), fastod.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != fastod.AlgorithmFASTOD || rep.FASTOD == nil {
		t.Errorf("zero-value request ran %q with FASTOD payload nil=%v", rep.Algorithm, rep.FASTOD == nil)
	}
}

func TestRunNilContext(t *testing.T) {
	ds := fastod.EmployeesExample()
	rep, err := ds.Run(nil, fastod.Request{}) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil || rep.Interrupted {
		t.Errorf("nil context must behave like Background: err=%v interrupted=%v", err, rep.Interrupted)
	}
}

func TestRunWithProgressStreams(t *testing.T) {
	ds := fastod.SyntheticFlight(200, 6, 2017)
	ds.EnablePartitionCache(0)
	var events []fastod.ProgressEvent
	rep, err := ds.RunWithProgress(context.Background(), fastod.Request{}, func(ev fastod.ProgressEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	if len(events) != rep.Stats.MaxLevelReached {
		t.Errorf("got %d events, want one per level (%d)", len(events), rep.Stats.MaxLevelReached)
	}
	for i, ev := range events {
		if ev.Level != i+1 {
			t.Errorf("event %d: level %d, want %d", i, ev.Level, i+1)
		}
		if ev.PartitionsCached == 0 {
			t.Errorf("event %d: no partitions cached despite the dataset store", i)
		}
		if i > 0 && ev.NodesVisited <= events[i-1].NodesVisited {
			t.Errorf("event %d: NodesVisited not increasing", i)
		}
		if i > 0 && ev.Elapsed < events[i-1].Elapsed {
			t.Errorf("event %d: Elapsed went backwards", i)
		}
	}
	if events[len(events)-1].NodesVisited != rep.Stats.NodesVisited {
		t.Errorf("final event NodesVisited = %d, report stats %d",
			events[len(events)-1].NodesVisited, rep.Stats.NodesVisited)
	}
}

// TestDefaultORDERBudgetAlias: the deprecated helper must return exactly the
// shared default budget.
func TestDefaultORDERBudgetAlias(t *testing.T) {
	if got, want := fastod.DefaultORDERBudget().Budget, fastod.DefaultBudget(); got != want {
		t.Errorf("DefaultORDERBudget().Budget = %+v, want DefaultBudget() %+v", got, want)
	}
	if fastod.DefaultBudget().IsZero() {
		t.Error("DefaultBudget must actually bound something")
	}
}

// TestConditionalIgnoresCountOnly: the conditional algorithm needs
// materialized ODs for its global-cover comparison, so CountOnly must not
// silently empty its output.
func TestConditionalIgnoresCountOnly(t *testing.T) {
	ds := fastod.SyntheticFlight(300, 6, 2017)
	plain, err := ds.Run(context.Background(), fastod.Request{Algorithm: fastod.AlgorithmConditional})
	if err != nil {
		t.Fatal(err)
	}
	counted, err := ds.Run(context.Background(), fastod.Request{
		Algorithm: fastod.AlgorithmConditional,
		FASTOD:    fastod.FASTODRunOptions{CountOnly: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(counted.Conditional.ODs) != len(plain.Conditional.ODs) {
		t.Errorf("CountOnly changed conditional output: %d ODs vs %d",
			len(counted.Conditional.ODs), len(plain.Conditional.ODs))
	}
}

// --- Satellite: the conditional algorithm's unconditional pass must use ---
// --- the dataset's shared partition store.                              ---

func TestConditionalUsesSharedPartitionStore(t *testing.T) {
	ds := fastod.SyntheticFlight(300, 6, 2017)
	store := ds.EnablePartitionCache(0)

	// Warm the store with a plain FASTOD run.
	if _, err := ds.Discover(fastod.Options{}); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Puts == 0 {
		t.Fatal("warm-up run stored no partitions")
	}

	rep, err := ds.Run(context.Background(), fastod.Request{Algorithm: fastod.AlgorithmConditional})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.PartitionHits == 0 {
		t.Error("conditional run's unconditional pass recorded no cache hits over a warm store")
	}
	if rep.Conditional.Global.Stats.PartitionHits == 0 {
		t.Error("global pass stats show no partition hits")
	}

	// The legacy wrapper must route through the same path.
	legacy, err := ds.DiscoverConditional(fastod.ConditionalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Global.Stats.PartitionHits == 0 {
		t.Error("DiscoverConditional bypassed the dataset's shared partition store")
	}
}

// --- Satellite: Project/HeadRows views must not inherit the parent's ---
// --- partition store (stores bind to one relation instance).         ---

func TestViewsDoNotInheritPartitionCache(t *testing.T) {
	ds := fastod.SyntheticFlight(200, 6, 2017)
	store := ds.EnablePartitionCache(0)
	if _, err := ds.Discover(fastod.Options{}); err != nil {
		t.Fatal(err)
	}
	before := store.Stats()

	// If a view inherited the parent's store, its run would fail loudly at
	// engine construction (the store is bound to the parent relation) — so a
	// clean run on each view is itself the assertion, backed by the store's
	// accounting staying untouched.
	proj := ds.Project(4)
	projRes, err := proj.Run(context.Background(), fastod.Request{})
	if err != nil {
		t.Fatalf("Project view discovery: %v", err)
	}
	if projRes.Stats.PartitionHits != 0 || projRes.Stats.PartitionMisses != 0 {
		t.Errorf("Project view recorded store traffic: %+v", projRes.Stats)
	}

	head := ds.HeadRows(100)
	headRes, err := head.Run(context.Background(), fastod.Request{})
	if err != nil {
		t.Fatalf("HeadRows view discovery: %v", err)
	}
	if headRes.Stats.PartitionHits != 0 || headRes.Stats.PartitionMisses != 0 {
		t.Errorf("HeadRows view recorded store traffic: %+v", headRes.Stats)
	}

	after := store.Stats()
	if after.Puts != before.Puts || after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("view runs touched the parent store: before %+v, after %+v", before, after)
	}

	// A view can enable its own independent cache.
	projStore := proj.EnablePartitionCache(0)
	if projStore == store {
		t.Fatal("view's EnablePartitionCache returned the parent's store")
	}
	res, err := proj.Run(context.Background(), fastod.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PartitionMisses == 0 {
		t.Error("view run with its own store recorded no store traffic")
	}
}
