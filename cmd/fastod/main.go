// Command fastod discovers order dependencies in a CSV file through the
// unified Run API.
//
// Usage:
//
//	fastod -input data.csv [-algorithm fastod|tane|approx|bidir|conditional|order]
//	       [-max-level N] [-workers N] [-scheduler dag|barrier]
//	       [-timeout D] [-max-nodes N]
//	       [-threshold F] [-no-pruning] [-count-only] [-levels] [-progress]
//	       [-limit N] [-order-spec "col DESC NULLS LAST, other COLLATE ci"]
//
// By default it runs the FASTOD algorithm and prints the complete, minimal
// set of canonical ODs with attribute names. -timeout and -max-nodes budget
// any algorithm; a run that exhausts its budget — or is interrupted with
// Ctrl-C — still prints the partial report (marked "interrupted") and exits
// with status 0. The ORDER baseline's factorial search space gets a default
// budget when none is given.
//
// -order-spec overrides per-column ordering semantics before discovery runs:
// a comma-separated list of column names, each optionally followed by
// ASC|DESC, NULLS FIRST|LAST and COLLATE lexicographic|numeric|date|ci
// (case-insensitive keywords). Dependencies are then discovered over the
// requested orders instead of the columns' default ascending, NULLS FIRST,
// type-driven order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	fastod "repro"
)

func main() {
	var (
		input     = flag.String("input", "", "path to a CSV file with a header row (required)")
		algorithm = flag.String("algorithm", "fastod", "algorithm to run: fastod, tane, approx, bidir, conditional or order")
		maxLevel  = flag.Int("max-level", 0, "stop after this lattice level (0 = unlimited)")
		workers   = flag.Int("workers", 0, "worker goroutines per lattice level (0 = all CPUs, 1 = sequential)")
		scheduler = flag.String("scheduler", "", "lattice node scheduler: dag (default) or barrier; the output is identical")
		timeout   = flag.Duration("timeout", 0, "interrupt the run after this wall-clock budget (0 = none; ORDER defaults to 30s)")
		maxNodes  = flag.Int("max-nodes", 0, "interrupt the run after visiting this many lattice nodes (0 = none; ORDER defaults to 2000000)")
		threshold = flag.Float64("threshold", 0.05, "error threshold for -algorithm approx, in [0, 1)")
		noPrune   = flag.Bool("no-pruning", false, "disable pruning and report every valid OD (FASTOD only)")
		countOnly = flag.Bool("count-only", false, "only report dependency counts, not the dependencies themselves")
		levels    = flag.Bool("levels", false, "print per-lattice-level statistics (FASTOD only)")
		progress  = flag.Bool("progress", false, "stream per-level progress to stderr while the run executes")
		limit     = flag.Int("limit", 0, "print at most this many dependencies (0 = all)")
		orderSpec = flag.String("order-spec", "", `per-column ordering overrides, e.g. "sal desc nulls last, name collate ci"`)
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "fastod: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	orders, err := fastod.ParseOrderSpecs(*orderSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastod: -order-spec: %v\n", err)
		os.Exit(2)
	}
	cfg := config{
		input:     *input,
		algorithm: *algorithm,
		maxLevel:  *maxLevel,
		workers:   *workers,
		scheduler: *scheduler,
		timeout:   *timeout,
		maxNodes:  *maxNodes,
		threshold: *threshold,
		noPrune:   *noPrune,
		countOnly: *countOnly,
		levels:    *levels,
		progress:  *progress,
		limit:     *limit,
		orders:    orders,
	}
	// Ctrl-C cancels the context; the run stops cooperatively within one
	// parallel chunk and the partial report is still printed. A second
	// Ctrl-C kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fastod: %v\n", err)
		os.Exit(1)
	}
}

// config mirrors the command-line flags; passing it as a struct keeps the
// call sites readable and lets new options ride along without signature churn.
type config struct {
	input     string
	algorithm string
	maxLevel  int
	workers   int
	scheduler string
	timeout   time.Duration
	maxNodes  int
	threshold float64
	noPrune   bool
	countOnly bool
	levels    bool
	progress  bool
	limit     int
	orders    []fastod.AttrOrder
}

// request assembles the unified discovery request described by the flags;
// unknown algorithm names are rejected by Run itself.
func (cfg config) request() fastod.Request {
	alg := fastod.Algorithm(cfg.algorithm)
	budget := fastod.Budget{Timeout: cfg.timeout, MaxNodes: cfg.maxNodes}
	if alg == fastod.AlgorithmORDER && budget.IsZero() {
		// ORDER is factorial in attributes; never run it unbudgeted by
		// accident.
		budget = fastod.DefaultBudget()
	}
	return fastod.Request{
		Algorithm: alg,
		RunOptions: fastod.RunOptions{
			Workers:    cfg.workers,
			Scheduler:  fastod.Scheduler(cfg.scheduler),
			MaxLevel:   cfg.maxLevel,
			Budget:     budget,
			OrderSpecs: cfg.orders,
		},
		FASTOD: fastod.FASTODRunOptions{
			DisablePruning:    cfg.noPrune,
			CountOnly:         cfg.countOnly,
			CollectLevelStats: cfg.levels,
		},
		Approx: fastod.ApproxRunOptions{Threshold: cfg.threshold},
	}
}

func run(ctx context.Context, cfg config) error {
	ds, err := fastod.LoadCSVFile(cfg.input)
	if err != nil {
		return err
	}
	req := cfg.request()
	// Validate before printing anything so a bad flag (say -workers -3) is
	// one clean error, not a half-printed header followed by one.
	if err := req.Validate(); err != nil {
		return err
	}
	// Report the worker count the run will actually use (0 resolves to all
	// CPUs; ORDER is always sequential), not the raw flag value.
	fmt.Printf("dataset %s: %d tuples, %d attributes, %d workers\n",
		ds.Name(), ds.NumRows(), ds.NumCols(), req.EffectiveWorkers())

	var onProgress func(fastod.ProgressEvent)
	if cfg.progress {
		onProgress = func(ev fastod.ProgressEvent) {
			// Conditional runs follow the unconditional pass's per-level
			// events with one event per condition slice.
			if ev.Level == fastod.SliceProgressLevel {
				if ev.Slice != nil {
					fmt.Fprintf(os.Stderr, "slice #%d=rank(%d) (%d rows): %d nodes (%d total), %v elapsed\n",
						ev.Slice.Attr, ev.Slice.Value, ev.Slice.Rows,
						ev.Nodes, ev.NodesVisited, ev.Elapsed.Round(time.Millisecond))
					return
				}
				fmt.Fprintf(os.Stderr, "slice: %d nodes (%d total), %v elapsed\n",
					ev.Nodes, ev.NodesVisited, ev.Elapsed.Round(time.Millisecond))
				return
			}
			fmt.Fprintf(os.Stderr, "level %d: %d nodes (%d total), %d partitions cached, %v elapsed\n",
				ev.Level, ev.Nodes, ev.NodesVisited, ev.PartitionsCached, ev.Elapsed.Round(time.Millisecond))
		}
	}
	rep, err := ds.RunWithProgress(ctx, req, onProgress)
	if err != nil {
		return err
	}
	if rep.Interrupted {
		fmt.Printf("run interrupted after %v (%d nodes visited) — partial results follow\n",
			rep.Elapsed.Round(time.Microsecond), rep.Stats.NodesVisited)
	}
	printReport(cfg, ds.ColumnNames(), rep)
	return nil
}

// printReport renders the algorithm-specific payload of the report.
func printReport(cfg config, names []string, rep *fastod.Report) {
	deps := func(n int, print func(i int)) {
		if cfg.countOnly {
			return
		}
		for i := 0; i < n; i++ {
			if cfg.limit > 0 && i >= cfg.limit {
				fmt.Printf("... (%d more)\n", n-cfg.limit)
				return
			}
			print(i)
		}
	}
	switch rep.Algorithm {
	case fastod.AlgorithmFASTOD:
		res := rep.FASTOD
		fmt.Printf("discovered %s canonical ODs in %v\n", res.Counts, res.Elapsed.Round(time.Microsecond))
		if cfg.levels {
			fmt.Println("level  nodes  time           #ODs (#FDs + #OCDs)")
			for _, ls := range res.Levels {
				fmt.Printf("%-6d %-6d %-14v %d (%d + %d)\n",
					ls.Level, ls.Nodes, ls.Elapsed.Round(time.Microsecond),
					ls.Constancy+ls.OrderCompat, ls.Constancy, ls.OrderCompat)
			}
		}
		deps(len(res.ODs), func(i int) { fmt.Println(" ", res.ODs[i].NamesString(names)) })

	case fastod.AlgorithmTANE:
		res := rep.TANE
		fmt.Printf("discovered %d minimal FDs in %v\n", len(res.FDs), res.Elapsed.Round(time.Microsecond))
		deps(len(res.FDs), func(i int) { fmt.Println(" ", res.FDs[i].NamesString(names)) })

	case fastod.AlgorithmApprox:
		res := rep.Approx
		fmt.Printf("discovered %d approximate ODs (threshold %v) in %v\n",
			len(res.ODs), cfg.threshold, res.Elapsed.Round(time.Microsecond))
		deps(len(res.ODs), func(i int) {
			d := res.ODs[i]
			fmt.Printf("  %s (error %.4f)\n", d.OD.NamesString(names), d.Error.Rate)
		})

	case fastod.AlgorithmBidirectional:
		res := rep.Bidir
		fmt.Printf("discovered %d bidirectional ODs in %v\n", len(res.ODs), res.Elapsed.Round(time.Microsecond))
		deps(len(res.ODs), func(i int) { fmt.Println(" ", res.ODs[i].NamesString(names)) })

	case fastod.AlgorithmConditional:
		res := rep.Conditional
		fmt.Printf("discovered %d conditional ODs over %d slices (%s unconditional) in %v\n",
			len(res.ODs), res.SlicesExamined, res.Global.Counts, res.Elapsed.Round(time.Microsecond))
		deps(len(res.ODs), func(i int) { fmt.Println(" ", res.ODs[i].NamesString(names)) })

	case fastod.AlgorithmORDER:
		res := rep.ORDER
		fmt.Printf("discovered %d list ODs mapping to %s canonical ODs in %v\n",
			len(res.ODs), res.Counts, res.Elapsed.Round(time.Microsecond))
		deps(len(res.ODs), func(i int) { fmt.Println(" ", res.ODs[i].Names(names)) })
	}
}
