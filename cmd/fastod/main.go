// Command fastod discovers order dependencies in a CSV file.
//
// Usage:
//
//	fastod -input data.csv [-algorithm fastod|tane|order] [-max-level N]
//	       [-workers N] [-no-pruning] [-count-only] [-levels] [-limit N]
//
// By default it runs the FASTOD algorithm and prints the complete, minimal
// set of canonical ODs with attribute names. The TANE baseline reports only
// functional dependencies; the ORDER baseline reports list-based ODs and is
// budgeted because its search space is factorial in the number of attributes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	fastod "repro"
)

func main() {
	var (
		input     = flag.String("input", "", "path to a CSV file with a header row (required)")
		algorithm = flag.String("algorithm", "fastod", "algorithm to run: fastod, tane or order")
		maxLevel  = flag.Int("max-level", 0, "stop after this lattice level (0 = unlimited)")
		workers   = flag.Int("workers", 0, "worker goroutines per lattice level (0 = all CPUs, 1 = sequential; FASTOD and TANE)")
		noPrune   = flag.Bool("no-pruning", false, "disable pruning and report every valid OD (FASTOD only)")
		countOnly = flag.Bool("count-only", false, "only report OD counts, not the ODs themselves")
		levels    = flag.Bool("levels", false, "print per-lattice-level statistics (FASTOD only)")
		limit     = flag.Int("limit", 0, "print at most this many dependencies (0 = all)")
		timeout   = flag.Duration("timeout", 30*time.Second, "budget for the ORDER baseline")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "fastod: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := config{
		input:     *input,
		algorithm: *algorithm,
		maxLevel:  *maxLevel,
		workers:   *workers,
		noPrune:   *noPrune,
		countOnly: *countOnly,
		levels:    *levels,
		limit:     *limit,
		timeout:   *timeout,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fastod: %v\n", err)
		os.Exit(1)
	}
}

// config mirrors the command-line flags; passing it as a struct keeps the
// call sites readable and lets new options ride along without signature churn.
type config struct {
	input     string
	algorithm string
	maxLevel  int
	workers   int
	noPrune   bool
	countOnly bool
	levels    bool
	limit     int
	timeout   time.Duration
}

func run(cfg config) error {
	ds, err := fastod.LoadCSVFile(cfg.input)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d tuples, %d attributes\n", ds.Name(), ds.NumRows(), ds.NumCols())
	names := ds.ColumnNames()

	switch cfg.algorithm {
	case "fastod":
		res, err := ds.Discover(fastod.Options{
			Workers:           cfg.workers,
			DisablePruning:    cfg.noPrune,
			CountOnly:         cfg.countOnly,
			MaxLevel:          cfg.maxLevel,
			CollectLevelStats: cfg.levels,
		})
		if err != nil {
			return err
		}
		fmt.Printf("discovered %s canonical ODs in %v\n", res.Counts, res.Elapsed.Round(time.Microsecond))
		if cfg.levels {
			fmt.Println("level  nodes  time           #ODs (#FDs + #OCDs)")
			for _, ls := range res.Levels {
				fmt.Printf("%-6d %-6d %-14v %d (%d + %d)\n",
					ls.Level, ls.Nodes, ls.Elapsed.Round(time.Microsecond),
					ls.Constancy+ls.OrderCompat, ls.Constancy, ls.OrderCompat)
			}
		}
		if !cfg.countOnly {
			for i, od := range res.ODs {
				if cfg.limit > 0 && i >= cfg.limit {
					fmt.Printf("... (%d more)\n", len(res.ODs)-cfg.limit)
					break
				}
				fmt.Println(" ", od.NamesString(names))
			}
		}
		return nil

	case "tane":
		res, err := ds.DiscoverFDs(fastod.TANEOptions{MaxLevel: cfg.maxLevel, Workers: cfg.workers})
		if err != nil {
			return err
		}
		fmt.Printf("discovered %d minimal FDs in %v\n", len(res.FDs), res.Elapsed.Round(time.Microsecond))
		if !cfg.countOnly {
			for i, fd := range res.FDs {
				if cfg.limit > 0 && i >= cfg.limit {
					fmt.Printf("... (%d more)\n", len(res.FDs)-cfg.limit)
					break
				}
				fmt.Println(" ", fd.NamesString(names))
			}
		}
		return nil

	case "order":
		res, err := ds.DiscoverWithORDER(fastod.ORDEROptions{Timeout: cfg.timeout, MaxNodes: 5_000_000})
		if err != nil {
			return err
		}
		status := ""
		if res.TimedOut {
			status = " (budget exceeded, results incomplete)"
		}
		fmt.Printf("discovered %d list ODs mapping to %s canonical ODs in %v%s\n",
			len(res.ODs), res.Counts, res.Elapsed.Round(time.Microsecond), status)
		if !cfg.countOnly {
			for i, od := range res.ODs {
				if cfg.limit > 0 && i >= cfg.limit {
					fmt.Printf("... (%d more)\n", len(res.ODs)-cfg.limit)
					break
				}
				fmt.Println(" ", od.Names(names))
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown algorithm %q (want fastod, tane or order)", cfg.algorithm)
	}
}
