package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "emp.csv")
	content := "sal,tax,perc\n5000,1000,20\n8000,2000,25\n10000,3000,30\n4500,900,20\n6000,1500,25\n8000,2000,25\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeFixture(t)
	for _, alg := range []string{"fastod", "tane", "order"} {
		if err := run(path, alg, 0, false, false, false, 2, time.Second); err != nil {
			t.Errorf("run(%s): %v", alg, err)
		}
	}
	// Level stats, count-only and no-pruning paths.
	if err := run(path, "fastod", 2, true, true, true, 0, time.Second); err != nil {
		t.Errorf("run(fastod, options): %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFixture(t)
	if err := run(path, "bogus", 0, false, false, false, 0, time.Second); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if err := run(path+".missing", "fastod", 0, false, false, false, 0, time.Second); err == nil {
		t.Error("expected error for missing input")
	}
}
