package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	fastod "repro"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "emp.csv")
	content := "sal,tax,perc\n5000,1000,20\n8000,2000,25\n10000,3000,30\n4500,900,20\n6000,1500,25\n8000,2000,25\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeFixture(t)
	ctx := context.Background()
	for _, alg := range []string{"fastod", "tane", "approx", "bidir", "conditional", "order"} {
		if err := run(ctx, config{input: path, algorithm: alg, limit: 2, timeout: time.Second}); err != nil {
			t.Errorf("run(%s): %v", alg, err)
		}
	}
	// Level stats, count-only, no-pruning and progress paths.
	if err := run(ctx, config{input: path, algorithm: "fastod", maxLevel: 2, noPrune: true, countOnly: true, levels: true, progress: true}); err != nil {
		t.Errorf("run(fastod, options): %v", err)
	}
	// Explicit sequential and parallel worker counts.
	for _, workers := range []int{1, 4} {
		if err := run(ctx, config{input: path, algorithm: "fastod", workers: workers}); err != nil {
			t.Errorf("run(fastod, workers=%d): %v", workers, err)
		}
	}
}

func TestRunCancelledContext(t *testing.T) {
	path := writeFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context must still produce a (partial, interrupted)
	// report and a nil error — the SIGINT path of main.
	if err := run(ctx, config{input: path, algorithm: "fastod"}); err != nil {
		t.Errorf("run with cancelled ctx: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFixture(t)
	ctx := context.Background()
	if err := run(ctx, config{input: path, algorithm: "bogus"}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if err := run(ctx, config{input: path + ".missing", algorithm: "fastod"}); err == nil {
		t.Error("expected error for missing input")
	}
}

func TestRunWithOrderSpec(t *testing.T) {
	path := writeFixture(t)
	ctx := context.Background()
	orders, err := fastod.ParseOrderSpecs("sal desc nulls last, tax desc")
	if err != nil {
		t.Fatalf("ParseOrderSpecs: %v", err)
	}
	for _, alg := range []string{"fastod", "tane", "approx", "bidir", "conditional", "order"} {
		if err := run(ctx, config{input: path, algorithm: alg, limit: 2, timeout: time.Second, orders: orders}); err != nil {
			t.Errorf("run(%s, order spec): %v", alg, err)
		}
	}
	// An order spec naming an unknown column is a clean validation error.
	bad, err := fastod.ParseOrderSpecs("ghost desc")
	if err != nil {
		t.Fatalf("ParseOrderSpecs: %v", err)
	}
	if err := run(ctx, config{input: path, algorithm: "fastod", orders: bad}); err == nil {
		t.Error("expected error for an order spec naming an unknown column")
	}
}
