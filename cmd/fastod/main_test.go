package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "emp.csv")
	content := "sal,tax,perc\n5000,1000,20\n8000,2000,25\n10000,3000,30\n4500,900,20\n6000,1500,25\n8000,2000,25\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeFixture(t)
	for _, alg := range []string{"fastod", "tane", "order"} {
		if err := run(config{input: path, algorithm: alg, limit: 2, timeout: time.Second}); err != nil {
			t.Errorf("run(%s): %v", alg, err)
		}
	}
	// Level stats, count-only and no-pruning paths.
	if err := run(config{input: path, algorithm: "fastod", maxLevel: 2, noPrune: true, countOnly: true, levels: true, timeout: time.Second}); err != nil {
		t.Errorf("run(fastod, options): %v", err)
	}
	// Explicit sequential and parallel worker counts.
	for _, workers := range []int{1, 4} {
		if err := run(config{input: path, algorithm: "fastod", workers: workers, timeout: time.Second}); err != nil {
			t.Errorf("run(fastod, workers=%d): %v", workers, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFixture(t)
	if err := run(config{input: path, algorithm: "bogus", timeout: time.Second}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if err := run(config{input: path + ".missing", algorithm: "fastod", timeout: time.Second}); err == nil {
		t.Error("expected error for missing input")
	}
}
