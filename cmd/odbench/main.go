// Command odbench regenerates the paper's evaluation (Section 5) on the
// synthetic stand-in datasets: Figure 4 (scalability in tuples), Figure 5
// (scalability in attributes), Figure 6 (impact of pruning) and Figure 7
// (per-lattice-level behaviour). It prints the same series the paper plots —
// running time per algorithm plus "#ODs (#FDs + #OCDs)" — so the shapes can
// be compared directly; EXPERIMENTS.md records such a comparison.
//
// Usage:
//
//	odbench -fig all            # run every experiment at the default scale
//	odbench -fig 5 -quick       # a fast, reduced-scale run
//	odbench -fig single -input my.csv   # compare the three algorithms on a CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/relation"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which experiment to run: 4, 5, 6, 7, all or single")
		quick   = flag.Bool("quick", false, "use the reduced-scale configuration")
		input   = flag.String("input", "", "CSV file for -fig single")
		seed    = flag.Int64("seed", 2017, "random seed for dataset generation")
		workers = flag.Int("workers", 1, "FASTOD/TANE worker goroutines per lattice level (1 = sequential, matching the paper's single-threaded runs; 0 = all CPUs)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	if err := run(*fig, *input, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "odbench: %v\n", err)
		os.Exit(1)
	}
}

func run(fig, input string, cfg bench.Config) error {
	switch fig {
	case "4":
		return runFigure4(cfg)
	case "5":
		return runFigure5(cfg)
	case "6":
		return runFigure6(cfg)
	case "7":
		return runFigure7(cfg)
	case "all":
		for _, f := range []func(bench.Config) error{runFigure4, runFigure5, runFigure6, runFigure7} {
			if err := f(cfg); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "single":
		return runSingle(input, cfg)
	default:
		return fmt.Errorf("unknown figure %q (want 4, 5, 6, 7, all or single)", fig)
	}
}

func runFigure4(cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure4(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Figure 4: scalability in the number of tuples (Exp-1, Exp-3, Exp-4)", ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure5(cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure5(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Figure 5: scalability in the number of attributes (Exp-2, Exp-3, Exp-4)", ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure6(cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure6(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Figure 6: impact of pruning, FASTOD vs FASTOD-NoPruning (Exp-5, Exp-6)", ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure7(cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure7(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatLevelTable(
		fmt.Sprintf("Figure 7: per-lattice-level behaviour, flight-like %d rows x %d columns (Exp-7)", cfg.LevelRows, cfg.LevelCols), ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runSingle(input string, cfg bench.Config) error {
	if input == "" {
		return fmt.Errorf("-fig single requires -input")
	}
	rel, err := relation.ReadCSVFile(input)
	if err != nil {
		return err
	}
	enc, err := relation.Encode(rel)
	if err != nil {
		return err
	}
	ms, err := bench.Table1(enc, rel.Name, cfg.ORDERBudget, cfg.Workers)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Algorithm comparison on "+rel.Name, ms))
	return nil
}
