// Command odbench regenerates the paper's evaluation (Section 5) on the
// synthetic stand-in datasets: Figure 4 (scalability in tuples), Figure 5
// (scalability in attributes), Figure 6 (impact of pruning) and Figure 7
// (per-lattice-level behaviour). It prints the same series the paper plots —
// running time per algorithm plus "#ODs (#FDs + #OCDs)" — so the shapes can
// be compared directly; EXPERIMENTS.md records such a comparison.
//
// Usage:
//
//	odbench -fig all            # run every experiment at the default scale
//	odbench -fig 5 -quick       # a fast, reduced-scale run
//	odbench -fig single -input my.csv   # compare the three algorithms on a CSV
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/bench"
	"repro/internal/lattice"
	"repro/internal/relation"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which experiment to run: 4, 5, 6, 7, all or single")
		quick    = flag.Bool("quick", false, "use the reduced-scale configuration")
		input    = flag.String("input", "", "CSV file for -fig single")
		seed     = flag.Int64("seed", 2017, "random seed for dataset generation")
		workers  = flag.Int("workers", 1, "FASTOD/TANE worker goroutines per lattice level (1 = sequential, matching the paper's single-threaded runs; 0 = all CPUs)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per FASTOD/TANE run; interrupted runs are reported as partial *budget rows (0 = none)")
		maxNodes = flag.Int("max-nodes", 0, "lattice-node budget per FASTOD/TANE run (0 = none)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Budget = lattice.Budget{Timeout: *timeout, MaxNodes: *maxNodes}

	// Ctrl-C cancels the experiment cooperatively: in-flight runs stop
	// within one parallel chunk and whatever measurements completed are
	// still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *fig, *input, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "odbench: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, fig, input string, cfg bench.Config) error {
	switch fig {
	case "4":
		return runFigure4(ctx, cfg)
	case "5":
		return runFigure5(ctx, cfg)
	case "6":
		return runFigure6(ctx, cfg)
	case "7":
		return runFigure7(ctx, cfg)
	case "all":
		for _, f := range []func(context.Context, bench.Config) error{runFigure4, runFigure5, runFigure6, runFigure7} {
			if err := f(ctx, cfg); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "single":
		return runSingle(ctx, input, cfg)
	default:
		return fmt.Errorf("unknown figure %q (want 4, 5, 6, 7, all or single)", fig)
	}
}

func runFigure4(ctx context.Context, cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure4(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Figure 4: scalability in the number of tuples (Exp-1, Exp-3, Exp-4)", ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure5(ctx context.Context, cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure5(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Figure 5: scalability in the number of attributes (Exp-2, Exp-3, Exp-4)", ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure6(ctx context.Context, cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure6(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Figure 6: impact of pruning, FASTOD vs FASTOD-NoPruning (Exp-5, Exp-6)", ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure7(ctx context.Context, cfg bench.Config) error {
	start := time.Now()
	ms, err := bench.Figure7(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatLevelTable(
		fmt.Sprintf("Figure 7: per-lattice-level behaviour, flight-like %d rows x %d columns (Exp-7)", cfg.LevelRows, cfg.LevelCols), ms))
	fmt.Printf("(total experiment time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runSingle(ctx context.Context, input string, cfg bench.Config) error {
	if input == "" {
		return fmt.Errorf("-fig single requires -input")
	}
	rel, err := relation.ReadCSVFile(input)
	if err != nil {
		return err
	}
	enc, err := relation.Encode(rel)
	if err != nil {
		return err
	}
	ms, err := bench.Table1(ctx, enc, rel.Name, cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable("Algorithm comparison on "+rel.Name, ms))
	return nil
}
