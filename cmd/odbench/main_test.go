package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/lattice"
)

// tinyConfig keeps the experiment smoke tests to fractions of a second.
func tinyConfig() bench.Config {
	cfg := bench.QuickConfig()
	cfg.RowScales = []int{50, 100}
	cfg.RowScaleCols = 4
	cfg.ColScales = map[string][]int{"flight": {4}, "hepatitis": {4}, "ncvoter": {4}, "dbtesma": {4}}
	cfg.PruningRowScales = []int{50}
	cfg.PruningColScales = []int{4}
	cfg.LevelCols = 5
	cfg.LevelRows = 50
	cfg.ORDERBudget = lattice.Budget{Timeout: 200 * time.Millisecond, MaxNodes: 5000}
	return cfg
}

func TestRunFigures(t *testing.T) {
	cfg := tinyConfig()
	for _, fig := range []string{"4", "5", "6", "7"} {
		if err := run(context.Background(), fig, "", cfg); err != nil {
			t.Errorf("run(%s): %v", fig, err)
		}
	}
	if err := run(context.Background(), "bogus", "", cfg); err == nil {
		t.Error("expected error for unknown figure")
	}
}

func TestRunSingle(t *testing.T) {
	cfg := tinyConfig()
	if err := run(context.Background(), "single", "", cfg); err == nil {
		t.Error("expected error when -input is missing")
	}
	path := filepath.Join(t.TempDir(), "tiny.csv")
	content := "a,b\n1,2\n2,4\n3,6\n1,2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "single", path, cfg); err != nil {
		t.Errorf("run(single): %v", err)
	}
	if err := run(context.Background(), "single", path+".missing", cfg); err == nil {
		t.Error("expected error for missing input")
	}
}
