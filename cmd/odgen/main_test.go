package main

import "testing"

func TestBuildDatasets(t *testing.T) {
	cases := []struct {
		dataset    string
		rows, cols int
		wantRows   int
	}{
		{"flight", 20, 5, 20},
		{"ncvoter", 20, 5, 20},
		{"hepatitis", 20, 5, 20},
		{"dbtesma", 20, 5, 20},
		{"datedim", 30, 0, 30},
		{"employees", 0, 0, 6},
	}
	for _, tc := range cases {
		rel, err := build(tc.dataset, tc.rows, tc.cols, 1)
		if err != nil {
			t.Errorf("%s: %v", tc.dataset, err)
			continue
		}
		if rel.NumRows() != tc.wantRows {
			t.Errorf("%s: rows = %d, want %d", tc.dataset, rel.NumRows(), tc.wantRows)
		}
	}
	if _, err := build("unknown", 1, 1, 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
}
