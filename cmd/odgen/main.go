// Command odgen writes one of the synthetic evaluation datasets as a CSV
// file, so the discovery tools and external systems can consume it.
//
// Usage:
//
//	odgen -dataset flight -rows 10000 -cols 15 -seed 7 -out flight.csv
//
// Datasets: flight, ncvoter, hepatitis, dbtesma (the paper's evaluation
// stand-ins), datedim (TPC-DS-style date dimension) and employees (Table 1).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/relation"
)

func main() {
	var (
		dataset = flag.String("dataset", "flight", "dataset to generate: flight, ncvoter, hepatitis, dbtesma, datedim, employees")
		rows    = flag.Int("rows", 1000, "number of tuples (ignored for employees)")
		cols    = flag.Int("cols", 10, "number of attributes (ignored for datedim and employees)")
		seed    = flag.Int64("seed", 2017, "random seed")
		out     = flag.String("out", "", "output CSV path (default: stdout)")
	)
	flag.Parse()

	rel, err := build(*dataset, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odgen: %v\n", err)
		os.Exit(2)
	}
	if *out == "" {
		if err := relation.WriteCSV(rel, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "odgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := relation.WriteCSVFile(rel, *out); err != nil {
		fmt.Fprintf(os.Stderr, "odgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d tuples, %d attributes\n", *out, rel.NumRows(), rel.NumCols())
}

func build(dataset string, rows, cols int, seed int64) (*relation.Relation, error) {
	switch dataset {
	case "flight":
		return datagen.FlightLike(rows, cols, seed), nil
	case "ncvoter":
		return datagen.NCVoterLike(rows, cols, seed), nil
	case "hepatitis":
		return datagen.HepatitisLike(rows, cols, seed), nil
	case "dbtesma":
		return datagen.DBTesmaLike(rows, cols, seed), nil
	case "datedim":
		return datagen.DateDim(rows), nil
	case "employees":
		return datagen.Employees(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
