package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// bootServer starts serve on a random port with the given preloads and
// returns the base URL plus a shutdown func that also propagates serve's
// error.
func bootServer(t *testing.T, preload []string) (string, func() error) {
	t.Helper()
	cfg := config{addr: "127.0.0.1:0", preload: preload}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- serve(ctx, cfg, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, func() error {
			cancel()
			return <-errCh
		}
	case err := <-errCh:
		cancel()
		t.Fatalf("serve failed to start: %v", err)
		return "", nil
	}
}

func TestServeEndToEnd(t *testing.T) {
	// Preload one dataset from disk; upload a second over HTTP.
	dir := t.TempDir()
	empPath := filepath.Join(dir, "employees.csv")
	if err := relation.WriteCSVFile(datagen.Employees(), empPath); err != nil {
		t.Fatalf("writing employees csv: %v", err)
	}
	base, shutdown := bootServer(t, []string{"employees=" + empPath})

	var flightCSV strings.Builder
	if err := relation.WriteCSV(datagen.FlightLike(300, 6, 2017), &flightCSV); err != nil {
		t.Fatalf("writing flight csv: %v", err)
	}
	resp, err := http.Post(base+"/v1/datasets?name=flight", "text/csv", strings.NewReader(flightCSV.String()))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, want 201", resp.StatusCode)
	}

	// Both datasets are listed.
	resp, err = http.Get(base + "/v1/datasets")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var list struct {
		Datasets []struct {
			Name string `json:"name"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	resp.Body.Close()
	if len(list.Datasets) != 2 {
		t.Fatalf("listed %d datasets, want 2: %+v", len(list.Datasets), list)
	}

	// A budgeted discover on the preloaded dataset completes and reports the
	// effective run parameters.
	resp, err = http.Post(base+"/v1/datasets/employees/discover", "application/json",
		strings.NewReader(`{"workers":1,"timeout_ms":5000}`))
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	var out struct {
		Algorithm   string `json:"algorithm"`
		Workers     int    `json:"workers"`
		Interrupted bool   `json:"interrupted"`
		Count       int    `json:"count"`
		Budget      struct {
			TimeoutMS int64 `json:"timeout_ms"`
		} `json:"budget"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding discover response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Interrupted || out.Count == 0 {
		t.Fatalf("discover = %d %+v, want a complete 200 report", resp.StatusCode, out)
	}
	if out.Workers != 1 {
		t.Errorf("effective workers = %d, want the requested 1", out.Workers)
	}
	if out.Budget.TimeoutMS != 5000 {
		t.Errorf("effective timeout = %dms, want the requested 5000", out.Budget.TimeoutMS)
	}

	// A one-node allowance yields an interrupted partial report — still 200.
	resp, err = http.Post(base+"/v1/datasets/flight/discover", "application/json",
		strings.NewReader(`{"max_nodes":1}`))
	if err != nil {
		t.Fatalf("budgeted discover: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"interrupted":true`) {
		t.Fatalf("budgeted discover = %d %s, want 200 with interrupted:true", resp.StatusCode, body)
	}

	// An invalid threshold is a 400 with the typed validation message.
	resp, err = http.Post(base+"/v1/datasets/flight/discover", "application/json",
		strings.NewReader(`{"algorithm":"approx","approx":{"threshold":2}}`))
	if err != nil {
		t.Fatalf("invalid discover: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "invalid request") {
		t.Fatalf("invalid discover = %d %s, want 400 with the typed message", resp.StatusCode, body)
	}

	if err := shutdown(); err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestNewServerPreloadErrors(t *testing.T) {
	if _, err := newServer(config{preload: []string{"bare-path.csv"}}); err == nil {
		t.Error("preload without name= must fail")
	}
	if _, err := newServer(config{preload: []string{"x=" + filepath.Join(t.TempDir(), "missing.csv")}}); err == nil {
		t.Error("preload of a missing file must fail")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "emp.csv")
	if err := relation.WriteCSVFile(datagen.Employees(), path); err != nil {
		t.Fatalf("writing csv: %v", err)
	}
	arg := fmt.Sprintf("emp=%s", path)
	if _, err := newServer(config{preload: []string{arg, arg}}); err == nil {
		t.Error("duplicate preload names must fail")
	}
	s, err := newServer(config{preload: []string{arg}})
	if err != nil || s == nil {
		t.Fatalf("valid preload: %v", err)
	}
}

func TestServeRejectsBadAddr(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := serve(ctx, config{addr: "definitely not an address"}, nil); err == nil {
		t.Error("serve with an unparseable address must fail")
	}
}
