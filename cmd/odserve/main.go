// Command odserve serves order-dependency discovery over HTTP: the unified
// Run API — all six algorithms, budgets, partial results and per-level
// progress — exposed as the JSON service implemented by internal/server.
//
// Usage:
//
//	odserve [-addr :8080] [-max-concurrent N] [-max-timeout D] [-max-nodes N]
//	        [-max-upload-bytes N] [-max-datasets N] [-max-request-bytes N]
//	        [-report-cache-bytes N] [-max-heap-bytes N] [name=path.csv ...]
//
// Positional name=path arguments preload CSV files as named datasets; more
// can be uploaded at runtime with POST /v1/datasets?name=N. Every discovery
// request is subject to the server-side budget cap (-max-timeout and
// -max-nodes): a request may ask for less, never for more, and a run that
// exhausts its budget returns HTTP 200 with "interrupted": true and the
// partial report. Invalid requests fail fast with HTTP 400; JSON bodies over
// -max-request-bytes with 413. Completed reports are memoized in a bounded
// report cache (-report-cache-bytes) keyed by dataset version and canonical
// request, so a repeated question is answered in microseconds with
// "cached": true. See the README section "Serving discovery over HTTP" for
// the endpoint and JSON shapes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	fastod "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "address to listen on")
		maxConcurrent = flag.Int("max-concurrent", server.DefaultMaxConcurrent, "discovery runs allowed to execute at once")
		maxTimeout    = flag.Duration("max-timeout", fastod.DefaultBudget().Timeout, "server-side cap on one run's wall-clock budget")
		maxNodes      = flag.Int("max-nodes", fastod.DefaultBudget().MaxNodes, "server-side cap on one run's visited lattice nodes")
		maxUpload     = flag.Int64("max-upload-bytes", server.DefaultMaxUploadBytes, "largest accepted CSV upload body")
		maxDatasets   = flag.Int("max-datasets", server.DefaultMaxDatasets, "datasets allowed to be resident at once")
		maxRequest    = flag.Int64("max-request-bytes", server.DefaultMaxRequestBytes, "largest accepted JSON discover request body")
		reportCache   = flag.Int("report-cache-bytes", server.DefaultReportCacheBytes, "report cache bound in estimated bytes (completed reports memoized per dataset version and request)")
		maxHeapBytes  = flag.Uint64("max-heap-bytes", 0, "soft heap limit: shed new discovery runs with 503 while live heap objects exceed this (0 disables)")
	)
	flag.Parse()
	cfg := config{
		addr: *addr,
		server: server.Config{
			MaxConcurrent:    *maxConcurrent,
			MaxBudget:        fastod.Budget{Timeout: *maxTimeout, MaxNodes: *maxNodes},
			MaxUploadBytes:   *maxUpload,
			MaxDatasets:      *maxDatasets,
			MaxRequestBytes:  *maxRequest,
			ReportCacheBytes: *reportCache,
			MaxHeapBytes:     *maxHeapBytes,
		},
		preload: flag.Args(),
	}
	// SIGINT drains gracefully: in-flight runs are cancelled cooperatively
	// (their clients still receive partial reports) and the listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Log the limits the server actually enforces, not the raw flags (zero
	// flags select the defaults, never "unlimited").
	eff := cfg.server.Normalized()
	if err := serve(ctx, cfg, func(addr string) {
		log.Printf("odserve listening on %s (%d CPUs, cap %v/%d nodes per run, %d concurrent runs)",
			addr, runtime.GOMAXPROCS(0), eff.MaxBudget.Timeout, eff.MaxBudget.MaxNodes, eff.MaxConcurrent)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "odserve: %v\n", err)
		os.Exit(1)
	}
}

// config mirrors the command line.
type config struct {
	addr    string
	server  server.Config
	preload []string // name=path.csv pairs
}

// newServer builds the service and preloads the configured datasets.
func newServer(cfg config) (*server.Server, error) {
	s := server.New(cfg.server)
	for _, arg := range cfg.preload {
		name, path, ok := strings.Cut(arg, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("preload argument %q is not name=path.csv", arg)
		}
		ds, err := fastod.LoadCSVFile(path)
		if err != nil {
			return nil, fmt.Errorf("preloading %q: %w", arg, err)
		}
		if err := s.AddDataset(name, ds); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// serve runs the HTTP server until ctx fires, then shuts down gracefully.
// ready (when non-nil) is called with the bound address once the listener is
// up — the test harness uses it to learn the port of ":0".
func serve(ctx context.Context, cfg config, ready func(addr string)) error {
	s, err := newServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// BaseContext ties every request context to ctx, so in-flight discovery
	// runs are interrupted as soon as shutdown begins instead of holding the
	// drain open for their full budget. The write timeout must outlast the
	// longest legitimate response — an SSE stream spanning a full budgeted
	// run — while still evicting stalled clients, which would otherwise hold
	// a run-semaphore slot forever (a blocked TCP write is not a cooperative
	// cancellation point).
	maxRun := cfg.server.Normalized().MaxBudget.Timeout
	// Both whole-request deadlines must outlive the longest handler — the
	// read deadline too, because net/http's background body read trips it
	// even after the handler has consumed the request, which would cut a
	// long budgeted run short at the timeout with nothing to indicate why.
	srv := &http.Server{
		Handler:           s.Handler(),
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       maxRun + 2*time.Minute,
		WriteTimeout:      maxRun + 2*time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				errc <- fmt.Errorf("http server panicked: %v", r)
			}
		}()
		errc <- srv.Serve(ln)
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		//lint:allow ctxfirst the shutdown deadline must outlive the already-cancelled run ctx
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
