// Command odlint runs the project's static-analysis suite: analyzers that
// mechanically enforce the engine's cross-cutting invariants (panic-safe
// goroutines, deterministic output order, context plumbing, the faultinject
// registry, and the partition arena contract).
//
// Standalone mode — the authoritative run, used by lint.sh and CI:
//
//	odlint              # analyze ./... from the module root
//	odlint ./internal/lattice ./cmd/...
//	odlint -list        # describe the analyzers
//
// Standalone mode loads packages from source (tests included), runs
// whole-program Finish checks, and reports unused lint:allow comments.
//
// Vettool mode — the same per-package checks driven by the go toolchain,
// with its build caching:
//
//	go vet -vettool=$(command -v odlint) ./...
//
// A finding is suppressed by "//lint:allow <analyzer> <reason>" on the same
// line or the line directly above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/classalias"
	"repro/internal/analyzers/ctxfirst"
	"repro/internal/analyzers/driver"
	"repro/internal/analyzers/faultpoint"
	"repro/internal/analyzers/maporder"
	"repro/internal/analyzers/nakedgo"
	"repro/internal/analyzers/vettool"
)

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nakedgo.New(),
		maporder.New(),
		ctxfirst.New(),
		faultpoint.New(),
		classalias.New(),
	}
}

func main() {
	analyzers := suite()
	if vettool.Intercept(os.Args[1:], analyzers) {
		return // unreachable: Intercept exits; kept for clarity
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	noTests := flag.Bool("notests", false, "skip _test.go files and _test packages")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "odlint:", err)
		os.Exit(2)
	}
	findings, err := driver.Run(driver.Options{
		Dir:                root,
		Patterns:           flag.Args(),
		Tests:              !*noTests,
		ReportUnusedAllows: true,
	}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odlint:", err)
		os.Exit(2)
	}
	for _, d := range findings {
		fmt.Println(d.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "odlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod, so
// odlint gives module-relative results no matter where it is invoked.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
