// Command odcheck validates a set of order dependencies — business rules
// written in the textual OD syntax — against a CSV file, reporting for each
// rule whether it holds, how badly it is violated (the fraction of tuples
// that would need to be removed), and a witness pair of rows when it fails.
// This is the data-quality workflow from the paper's introduction: discovered
// or hand-written ODs act as integrity constraints whose violations point at
// data errors.
//
// Usage:
//
//	odcheck -input data.csv -rules rules.txt [-threshold 0.01]
//
// The rules file contains one dependency per line, e.g.:
//
//	# tax rules
//	[salary] -> [tax]
//	{year}: bin ~ salary
//	{}: [] -> version
//
// Lines starting with '#' are comments. With -threshold, rules whose error is
// at most the threshold are reported as "almost holds" rather than failed.
//
// Attributes may carry per-attribute order modifiers — ASC|DESC, NULLS
// FIRST|LAST and COLLATE lexicographic|numeric|date|ci — so a rule can pin
// the ordering semantics it is checked under:
//
//	[salary DESC NULLS LAST] -> [tax DESC NULLS LAST]
//	{year}: bin ~ salary COLLATE numeric
//
// Such rules are evaluated against a re-encoding of the dataset under the
// requested orders; modifiers for the same attribute must agree across its
// occurrences within one rule.
package main

import (
	"flag"
	"fmt"
	"os"

	fastod "repro"
)

func main() {
	var (
		input     = flag.String("input", "", "path to a CSV file with a header row (required)")
		rules     = flag.String("rules", "", "path to a file of OD expressions (required)")
		threshold = flag.Float64("threshold", 0, "error tolerance in [0,1): rules within it are reported as almost holding")
	)
	flag.Parse()
	if *input == "" || *rules == "" {
		fmt.Fprintln(os.Stderr, "odcheck: -input and -rules are required")
		flag.Usage()
		os.Exit(2)
	}
	failures, err := run(os.Stdout, *input, *rules, *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odcheck: %v\n", err)
		os.Exit(1)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// run checks every rule and returns the number of rules that fail beyond the
// threshold.
func run(out *os.File, input, rulesPath string, threshold float64) (int, error) {
	if threshold < 0 || threshold >= 1 {
		return 0, fmt.Errorf("threshold %v outside [0,1)", threshold)
	}
	ds, err := fastod.LoadCSVFile(input)
	if err != nil {
		return 0, err
	}
	raw, err := os.ReadFile(rulesPath)
	if err != nil {
		return 0, err
	}
	statements, err := fastod.ParseODs(string(raw))
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(out, "dataset %s: %d tuples, %d attributes; checking %d rules\n",
		ds.Name(), ds.NumRows(), ds.NumCols(), len(statements))

	failures := 0
	for _, st := range statements {
		check, err := ds.CheckStatement(st)
		if err != nil {
			return 0, err
		}
		switch {
		case check.Holds:
			fmt.Fprintf(out, "OK      %s\n", st.Source)
		case check.Error != nil && check.Error.Rate <= threshold:
			fmt.Fprintf(out, "ALMOST  %s (error %.4f, %d tuples to repair)\n",
				st.Source, check.Error.Rate, check.Error.Removals)
		default:
			failures++
			detail := ""
			if check.Violation != nil {
				kind := "split"
				if check.Violation.IsSwap {
					kind = "swap"
				}
				detail = fmt.Sprintf(" [%s between rows %d and %d]", kind, check.Violation.RowS, check.Violation.RowT)
			}
			if check.Error != nil {
				detail += fmt.Sprintf(" (error %.4f)", check.Error.Rate)
			}
			fmt.Fprintf(out, "FAILED  %s%s\n", st.Source, detail)
		}
	}
	fmt.Fprintf(out, "%d of %d rules failed\n", failures, len(statements))
	return failures, nil
}
