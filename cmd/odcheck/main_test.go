package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunChecksRules(t *testing.T) {
	csv := writeTemp(t, "emp.csv",
		"sal,tax,posit\n5000,1000,secr\n8000,2000,mngr\n10000,3000,dir\n4500,900,secr\n6000,1500,mngr\n8000,2000,dir\n")
	rules := writeTemp(t, "rules.txt", `
# rules
[sal] -> [tax]
{sal}: [] -> tax
{posit}: [] -> sal
`)
	failures, err := run(os.Stdout, csv, rules, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1 (posit does not determine sal)", failures)
	}

	// A generous threshold turns the failure into "almost holds".
	failures, err = run(os.Stdout, csv, rules, 0.6)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failures != 0 {
		t.Errorf("failures = %d, want 0 with threshold 0.6", failures)
	}
}

func TestRunErrors(t *testing.T) {
	csv := writeTemp(t, "emp.csv", "a,b\n1,2\n")
	rules := writeTemp(t, "rules.txt", "[a] -> [b]\n")
	if _, err := run(os.Stdout, csv, rules, -1); err == nil {
		t.Error("invalid threshold should error")
	}
	if _, err := run(os.Stdout, csv+".missing", rules, 0); err == nil {
		t.Error("missing csv should error")
	}
	if _, err := run(os.Stdout, csv, rules+".missing", 0); err == nil {
		t.Error("missing rules file should error")
	}
	badRules := writeTemp(t, "bad.txt", "not an od\n")
	if _, err := run(os.Stdout, csv, badRules, 0); err == nil {
		t.Error("unparseable rules should error")
	}
	unknownCol := writeTemp(t, "unknown.txt", "[a] -> [zzz]\n")
	if _, err := run(os.Stdout, csv, unknownCol, 0); err == nil {
		t.Error("unknown column should error")
	}
}

func TestRunHonorsOrderModifiers(t *testing.T) {
	// sal increases while tax increases, so [sal] -> [tax] holds ascending and
	// [sal DESC] -> [tax DESC] holds too — but the mixed-direction rule
	// [sal DESC] -> [tax] is a swap on any two distinct rows.
	csv := writeTemp(t, "emp.csv",
		"sal,tax\n5000,1000\n8000,2000\n10000,3000\n")
	rules := writeTemp(t, "rules.txt", `
[sal] -> [tax]
[sal desc] -> [tax desc]
[sal desc] -> [tax]
`)
	failures, err := run(os.Stdout, csv, rules, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1 (only the mixed-direction rule is a swap)", failures)
	}
}

func TestRunHonorsNullPlacement(t *testing.T) {
	// With NULLS FIRST (default) the empty sal sorts before 10 while its tax
	// (99) sorts after the others' — a swap. Pinning NULLS LAST on both sides
	// moves the null row to the end on the left and its large tax is last on
	// the right, so the rule holds.
	csv := writeTemp(t, "emp.csv", "sal,tax\n10,1\n20,2\n,99\n")
	holds := writeTemp(t, "holds.txt", "[sal NULLS LAST] -> [tax]\n")
	failures, err := run(os.Stdout, csv, holds, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failures != 0 {
		t.Errorf("failures = %d, want 0 under NULLS LAST", failures)
	}
	fails := writeTemp(t, "fails.txt", "[sal] -> [tax]\n")
	failures, err = run(os.Stdout, csv, fails, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1 under the default NULLS FIRST", failures)
	}
}
