package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunChecksRules(t *testing.T) {
	csv := writeTemp(t, "emp.csv",
		"sal,tax,posit\n5000,1000,secr\n8000,2000,mngr\n10000,3000,dir\n4500,900,secr\n6000,1500,mngr\n8000,2000,dir\n")
	rules := writeTemp(t, "rules.txt", `
# rules
[sal] -> [tax]
{sal}: [] -> tax
{posit}: [] -> sal
`)
	failures, err := run(os.Stdout, csv, rules, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1 (posit does not determine sal)", failures)
	}

	// A generous threshold turns the failure into "almost holds".
	failures, err = run(os.Stdout, csv, rules, 0.6)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failures != 0 {
		t.Errorf("failures = %d, want 0 with threshold 0.6", failures)
	}
}

func TestRunErrors(t *testing.T) {
	csv := writeTemp(t, "emp.csv", "a,b\n1,2\n")
	rules := writeTemp(t, "rules.txt", "[a] -> [b]\n")
	if _, err := run(os.Stdout, csv, rules, -1); err == nil {
		t.Error("invalid threshold should error")
	}
	if _, err := run(os.Stdout, csv+".missing", rules, 0); err == nil {
		t.Error("missing csv should error")
	}
	if _, err := run(os.Stdout, csv, rules+".missing", 0); err == nil {
		t.Error("missing rules file should error")
	}
	badRules := writeTemp(t, "bad.txt", "not an od\n")
	if _, err := run(os.Stdout, csv, badRules, 0); err == nil {
		t.Error("unparseable rules should error")
	}
	unknownCol := writeTemp(t, "unknown.txt", "[a] -> [zzz]\n")
	if _, err := run(os.Stdout, csv, unknownCol, 0); err == nil {
		t.Error("unknown column should error")
	}
}
