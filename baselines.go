package fastod

import (
	"context"

	"repro/internal/order"
	"repro/internal/tane"
)

// Baseline re-exports: the paper's two comparison algorithms are available
// through the public API so downstream users can reproduce the evaluation or
// use TANE when only functional dependencies are needed. Both run through the
// unified Run surface (AlgorithmTANE, AlgorithmORDER).
type (
	// FD is a minimal functional dependency as discovered by TANE.
	FD = tane.FD
	// TANEResult is the outcome of a TANE run.
	TANEResult = tane.Result
	// TANEOptions configures a TANE run.
	TANEOptions = tane.Options
	// ORDERResult is the outcome of an ORDER run (list-based baseline).
	ORDERResult = order.Result
	// ORDEROptions configures an ORDER run, including its time/node budget.
	ORDEROptions = order.Options
)

// DiscoverFDs runs the TANE baseline over the dataset and returns the
// complete set of minimal functional dependencies. This is the FD-only
// comparison point of the paper's Experiment 4; it cannot see order
// semantics.
//
// Deprecated: use Run with AlgorithmTANE, which adds context cancellation,
// budgets and progress reporting.
func (d *Dataset) DiscoverFDs(opts TANEOptions) (*TANEResult, error) {
	rep, err := d.RunWithProgress(context.Background(), Request{
		Algorithm: AlgorithmTANE,
		RunOptions: RunOptions{
			Workers:    opts.Workers,
			MaxLevel:   opts.MaxLevel,
			Budget:     opts.Budget,
			Partitions: opts.Partitions,
		},
	}, opts.Progress)
	if err != nil {
		return nil, err
	}
	return rep.TANE, nil
}

// DiscoverWithORDER runs the ORDER baseline (Langer & Naumann) over the
// dataset. ORDER's search space is factorial in the number of attributes, so
// callers should set a budget for wide schemas; a run that exceeds it reports
// a partial result with Interrupted=true.
//
// Deprecated: use Run with AlgorithmORDER and RunOptions.Budget.
func (d *Dataset) DiscoverWithORDER(opts ORDEROptions) (*ORDERResult, error) {
	rep, err := d.RunWithProgress(context.Background(), Request{
		Algorithm: AlgorithmORDER,
		RunOptions: RunOptions{
			MaxLevel: opts.MaxLevel,
			Budget:   opts.Budget,
		},
	}, opts.Progress)
	if err != nil {
		return nil, err
	}
	return rep.ORDER, nil
}

// DefaultORDERBudget is a conservative budget for interactive use of the
// ORDER baseline: wide schemas hit it quickly because of the factorial
// search space.
//
// Deprecated: use DefaultBudget, the shared Budget every algorithm honors;
// this function returns the equivalent value wrapped in ORDEROptions.
func DefaultORDERBudget() ORDEROptions {
	return ORDEROptions{Budget: DefaultBudget()}
}
