package fastod

import (
	"time"

	"repro/internal/order"
	"repro/internal/tane"
)

// Baseline re-exports: the paper's two comparison algorithms are available
// through the public API so downstream users can reproduce the evaluation or
// use TANE when only functional dependencies are needed.
type (
	// FD is a minimal functional dependency as discovered by TANE.
	FD = tane.FD
	// TANEResult is the outcome of a TANE run.
	TANEResult = tane.Result
	// TANEOptions configures a TANE run.
	TANEOptions = tane.Options
	// ORDERResult is the outcome of an ORDER run (list-based baseline).
	ORDERResult = order.Result
	// ORDEROptions configures an ORDER run, including its time/node budget.
	ORDEROptions = order.Options
)

// DiscoverFDs runs the TANE baseline over the dataset and returns the
// complete set of minimal functional dependencies. This is the FD-only
// comparison point of the paper's Experiment 4; it cannot see order
// semantics.
func (d *Dataset) DiscoverFDs(opts TANEOptions) (*TANEResult, error) {
	opts.Partitions = d.partitions(opts.Partitions)
	return tane.Discover(d.enc, opts)
}

// DiscoverWithORDER runs the ORDER baseline (Langer & Naumann) over the
// dataset. ORDER's search space is factorial in the number of attributes, so
// callers should set a budget for wide schemas; a run that exceeds it reports
// TimedOut=true.
func (d *Dataset) DiscoverWithORDER(opts ORDEROptions) (*ORDERResult, error) {
	return order.Discover(d.enc, opts)
}

// DefaultORDERBudget is a conservative budget for interactive use of the
// ORDER baseline: wide schemas hit it quickly because of the factorial
// search space.
func DefaultORDERBudget() ORDEROptions {
	return ORDEROptions{Timeout: 30 * time.Second, MaxNodes: 2_000_000}
}
