// Package fastod is the public API of this repository: a Go implementation
// of FASTOD, the set-based order dependency (OD) discovery algorithm of
// Szlichta, Godfrey, Golab, Kargar and Srivastava, "Effective and Complete
// Discovery of Order Dependencies via Set-based Axiomatization" (VLDB 2017).
//
// An order dependency X ↦ Y states that sorting a table by the attribute list
// X also sorts it by Y. The paper shows that every list-based OD can be
// mapped to an equivalent set of canonical ODs of two shapes — constancy ODs
// X: [] ↦ A and order-compatibility ODs X: A ~ B — and that the complete,
// minimal set of canonical ODs holding on a table can be discovered by a
// level-wise traversal of the set-containment lattice.
//
// Typical use — every algorithm runs through the unified Run surface, which
// honors context cancellation and resource budgets and reports partial
// results when interrupted:
//
//	ds, err := fastod.LoadCSVFile("employees.csv")
//	if err != nil { ... }
//	rep, err := ds.Run(ctx, fastod.Request{
//	    Algorithm:  fastod.AlgorithmFASTOD,
//	    RunOptions: fastod.RunOptions{Budget: fastod.DefaultBudget()},
//	})
//	if err != nil { ... }
//	if rep.Interrupted { ... } // partial results: budget or ctx fired
//	for _, od := range rep.FASTOD.ODs {
//	    fmt.Println(od.NamesString(rep.FASTOD.ColumnNames))
//	}
//
// The package also exposes the paper's comparison baselines (TANE for
// functional dependencies, ORDER for list-based OD discovery) — selected via
// Request.Algorithm — a brute-force reference discoverer used for validation,
// violation witnesses for data cleaning, and the Theorem-5 mapping between
// list-based and set-based ODs. The per-algorithm Discover* methods predate
// Run and remain as deprecated wrappers.
package fastod

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/canonical"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/listod"
	"repro/internal/relation"
)

// Re-exported core types. The algorithm packages live under internal/; these
// aliases form the stable public surface.
type (
	// OD is a set-based canonical order dependency: either a constancy OD
	// "X: [] ↦ A" or an order-compatibility OD "X: A ~ B".
	OD = canonical.OD
	// Kind distinguishes constancy from order-compatibility ODs.
	Kind = canonical.Kind
	// Count tallies a set of ODs the way the paper reports results.
	Count = canonical.Count
	// Cover supports implication reasoning over a set of canonical ODs.
	Cover = canonical.Cover
	// Violation is a witness pair of rows explaining why an OD fails.
	Violation = canonical.Violation
	// Options configures a FASTOD discovery run.
	Options = core.Options
	// Result is the outcome of a FASTOD discovery run.
	Result = core.Result
	// LevelStat reports per-lattice-level statistics (Figure 7).
	LevelStat = core.LevelStat
	// Stats aggregates work counters of a discovery run.
	Stats = core.Stats
	// Spec is a list-based order specification (a SQL ORDER BY column list).
	Spec = listod.Spec
	// ListOD is a list-based order dependency Left ↦ Right.
	ListOD = listod.OD
	// PartitionStore is a bounded, concurrency-safe cache of stripped
	// partitions keyed by attribute set, shared between discovery runs over
	// the same relation (see Dataset.EnablePartitionCache and
	// Options.Partitions).
	PartitionStore = lattice.PartitionStore
	// StoreStats is a snapshot of a PartitionStore's accounting.
	StoreStats = lattice.StoreStats
)

// NewPartitionStore builds an empty partition store bounded to maxCost bytes
// of retained class data (partitions are stored flat, so the accounting is
// byte-exact); maxCost <= 0 selects a 16 MiB default. A store must only ever
// be shared between discovery runs over the same relation instance.
func NewPartitionStore(maxCost int) *PartitionStore {
	return lattice.NewPartitionStore(maxCost)
}

// Kinds of canonical ODs.
const (
	// Constancy marks ODs of the form X: [] ↦ A (the FD fragment).
	Constancy = canonical.Constancy
	// OrderCompatible marks ODs of the form X: A ~ B.
	OrderCompatible = canonical.OrderCompatible
)

// NewConstancyOD builds the canonical OD ctx: [] ↦ a over attribute indexes.
func NewConstancyOD(ctx []int, a int) OD {
	return canonical.NewConstancy(attrSet(ctx), a)
}

// NewOrderCompatibleOD builds the canonical OD ctx: a ~ b over attribute
// indexes.
func NewOrderCompatibleOD(ctx []int, a, b int) OD {
	return canonical.NewOrderCompatible(attrSet(ctx), a, b)
}

// NewCover builds an implication cover from a set of canonical ODs, e.g. a
// discovery result, so callers can ask whether other ODs follow from it.
func NewCover(ods []OD) *Cover { return canonical.NewCover(ods) }

// MinimizeODs removes ODs implied by the remaining ones (via the
// augmentation and propagation axioms) and returns the reduced, sorted set.
func MinimizeODs(ods []OD) []OD { return canonical.Minimize(ods) }

// Dataset is a loaded relation instance ready for discovery: the raw typed
// table plus its order-preserving integer encoding, and optionally a shared
// partition cache (see EnablePartitionCache).
type Dataset struct {
	rel   *relation.Relation
	enc   *relation.Encoded
	parts *lattice.PartitionStore
	// version is this dataset's content-version stamp; see Version.
	version atomic.Uint64
	// specs caches per-OrderSpec re-encodings of this dataset (and their
	// partition stores), keyed by canonical spec fingerprint; see ordering.go.
	specs specEncodings
}

// datasetVersions issues version stamps. One process-global counter (rather
// than a per-dataset one) makes stamps unique across every dataset and view
// a process ever creates, so a cache key built from a stamp can never collide
// with a different dataset that happens to share a name — e.g. after a future
// delete-and-reupload path.
var datasetVersions atomic.Uint64

// Version returns the dataset's content-version stamp. Stamps are issued from
// one process-global monotonic counter: every dataset (and every Project/
// HeadRows view, which is a distinct relation instance) gets a fresh stamp at
// construction, and BumpVersion re-stamps after a mutation. Any cache keyed
// by (version, request) is therefore invalidated by construction whenever the
// underlying data can have changed — the report cache's dataset half (the
// request half is Request.Fingerprint).
func (d *Dataset) Version() uint64 { return d.version.Load() }

// BumpVersion marks the dataset's contents as changed and returns the fresh
// stamp. Every mutation path (today none exist in-package; future row appends
// or deletes will be one) must call it AFTER the mutation is visible, so a
// reader that still observes the old stamp can at worst cache a report of the
// old contents under the old stamp — stale entries are never served because
// readers key by the current stamp. Safe for concurrent use.
func (d *Dataset) BumpVersion() uint64 {
	v := datasetVersions.Add(1)
	d.version.Store(v)
	return v
}

// LoadCSVFile reads a CSV file with a header row, sniffs column types
// (integers, floats, dates, strings) and returns a dataset.
func LoadCSVFile(path string) (*Dataset, error) {
	rel, err := relation.ReadCSVFile(path)
	if err != nil {
		return nil, err
	}
	return newDataset(rel)
}

// LoadCSV reads CSV data from a reader with a header row. The name is used
// only in diagnostics.
func LoadCSV(name string, src io.Reader) (*Dataset, error) {
	rel, err := relation.ReadCSV(name, src)
	if err != nil {
		return nil, err
	}
	return newDataset(rel)
}

// FromRows builds a dataset from a header and row-major string data, sniffing
// column types.
func FromRows(name string, header []string, rows [][]string) (*Dataset, error) {
	rel, err := relation.FromRows(name, header, rows)
	if err != nil {
		return nil, err
	}
	return newDataset(rel)
}

func newDataset(rel *relation.Relation) (*Dataset, error) {
	enc, err := relation.Encode(rel)
	if err != nil {
		return nil, err
	}
	d := &Dataset{rel: rel, enc: enc}
	d.BumpVersion()
	return d, nil
}

// Name returns the dataset's name (file path or constructor-supplied name).
func (d *Dataset) Name() string { return d.rel.Name }

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return d.enc.NumRows() }

// NumCols returns the number of attributes.
func (d *Dataset) NumCols() int { return d.enc.NumCols() }

// ColumnNames returns the attribute names in schema order.
func (d *Dataset) ColumnNames() []string {
	return append([]string(nil), d.enc.ColumnNames...)
}

// ColumnIndex returns the index of the named attribute, or -1 if absent.
func (d *Dataset) ColumnIndex(name string) int { return d.enc.ColumnIndex(name) }

// Project returns a dataset restricted to the first k attributes, and
// HeadRows one restricted to the first n tuples. Both are cheap views used by
// the scalability experiments.
//
// A view is a distinct relation instance, so it deliberately does NOT
// inherit the parent's partition cache: a PartitionStore binds to exactly
// one relation instance and fails loudly on reuse (see EnablePartitionCache),
// and the parent's partitions would be wrong for the view anyway. Call
// EnablePartitionCache on the view itself to cache its partitions.
func (d *Dataset) Project(k int) *Dataset {
	v := &Dataset{rel: d.rel, enc: d.enc.ProjectColumns(k)}
	v.BumpVersion()
	return v
}

// HeadRows returns a dataset restricted to the first n tuples. Like Project,
// the view does not inherit the parent's partition cache (stores bind to one
// relation instance); enable one on the view if needed.
func (d *Dataset) HeadRows(n int) *Dataset {
	v := &Dataset{rel: d.rel, enc: d.enc.HeadRows(n)}
	v.BumpVersion()
	return v
}

// EnablePartitionCache attaches a bounded partition store to the dataset:
// every subsequent discovery run on it — FASTOD (pruned or un-pruned), TANE,
// approximate and bidirectional — reuses the stripped partitions earlier
// runs computed instead of re-deriving them, which is what repeated
// profiling workloads (e.g. discovery behind the advisor, or comparing
// algorithms on one table) spend most of their time on. maxCost bounds the
// cache in bytes of retained class data (<= 0 selects a 16 MiB default);
// beyond it partitions are evicted deepest-attribute-set-level first (then
// least recently used within a level), because shallow partitions are
// exponentially more reusable than deep ones. The first call wins:
// once the dataset carries a store, later calls return it unchanged and
// their maxCost is ignored. The store is returned so callers can inspect
// its Stats. Discovery output is identical with and without the cache.
func (d *Dataset) EnablePartitionCache(maxCost int) *PartitionStore {
	if d.parts == nil {
		d.parts = lattice.NewPartitionStore(maxCost)
	}
	return d.parts
}

// partitions returns the dataset's shared store unless the caller supplied
// its own in the run options.
func (d *Dataset) partitions(explicit *lattice.PartitionStore) *lattice.PartitionStore {
	if explicit != nil {
		return explicit
	}
	return d.parts
}

// Discover runs FASTOD over the dataset and returns the complete, minimal set
// of canonical ODs (or all valid ODs with Options.DisablePruning). It is a
// thin wrapper over Run with a background context, so it can be neither
// cancelled nor observed while running.
//
// Deprecated: use Run with AlgorithmFASTOD, which adds context cancellation,
// budgets and progress reporting.
func (d *Dataset) Discover(opts Options) (*Result, error) {
	rep, err := d.RunWithProgress(context.Background(), Request{
		Algorithm: AlgorithmFASTOD,
		RunOptions: RunOptions{
			Workers:    opts.Workers,
			MaxLevel:   opts.MaxLevel,
			Budget:     opts.Budget,
			Partitions: opts.Partitions,
		},
		FASTOD: FASTODRunOptions{
			DisablePruning:     opts.DisablePruning,
			DisableKeyPruning:  opts.DisableKeyPruning,
			DisableNodePruning: opts.DisableNodePruning,
			NaiveSwapCheck:     opts.NaiveSwapCheck,
			CountOnly:          opts.CountOnly,
			CollectLevelStats:  opts.CollectLevelStats,
		},
	}, opts.Progress)
	if err != nil {
		return nil, err
	}
	return rep.FASTOD, nil
}

// Discover is the package-level convenience form of Dataset.Discover.
//
// Deprecated: use Dataset.Run with AlgorithmFASTOD.
func Discover(d *Dataset, opts Options) (*Result, error) { return d.Discover(opts) }

// ReferenceDiscover runs the brute-force reference discoverer (exponential in
// attributes, quadratic in rows). It exists to validate the fast algorithm
// and is limited to 20 attributes.
func (d *Dataset) ReferenceDiscover() ([]OD, error) {
	return canonical.ReferenceDiscover(d.enc)
}

// CheckCanonicalOD reports whether a single canonical OD holds on the dataset.
func (d *Dataset) CheckCanonicalOD(od OD) (bool, error) {
	return canonical.Holds(d.enc, od)
}

// FindViolation returns a witness pair of rows for a violated canonical OD.
// The boolean reports whether a violation exists.
func (d *Dataset) FindViolation(od OD) (Violation, bool, error) {
	return canonical.FindViolation(d.enc, od)
}

// CheckListOD reports whether the list-based OD "left ↦ right" holds, where
// both sides are given as ordered lists of column names (as in SQL ORDER BY).
func (d *Dataset) CheckListOD(left, right []string) (bool, error) {
	l, err := d.spec(left)
	if err != nil {
		return false, err
	}
	r, err := d.spec(right)
	if err != nil {
		return false, err
	}
	return listod.Holds(d.enc, l, r), nil
}

// CheckOrderCompatible reports whether the two order specifications are order
// compatible (X ~ Y), i.e. XY ↔ YX.
func (d *Dataset) CheckOrderCompatible(left, right []string) (bool, error) {
	l, err := d.spec(left)
	if err != nil {
		return false, err
	}
	r, err := d.spec(right)
	if err != nil {
		return false, err
	}
	return listod.OrderCompatible(d.enc, l, r), nil
}

// MapListOD maps the list-based OD "left ↦ right" (column names) into its
// equivalent set of canonical ODs per Theorem 5, trivial ODs removed.
func (d *Dataset) MapListOD(left, right []string) ([]OD, error) {
	l, err := d.spec(left)
	if err != nil {
		return nil, err
	}
	r, err := d.spec(right)
	if err != nil {
		return nil, err
	}
	return canonical.MapListODNonTrivial(l, r), nil
}

// spec resolves column names to an order specification.
func (d *Dataset) spec(names []string) (listod.Spec, error) {
	return encSpec(d.enc, names)
}

// encSpec resolves column names against an arbitrary encoding — the dataset's
// default one or a per-OrderSpec re-encoding.
func encSpec(enc *relation.Encoded, names []string) (listod.Spec, error) {
	out := make(listod.Spec, 0, len(names))
	for _, n := range names {
		idx := enc.ColumnIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("fastod: unknown column %q (have %v)", n, enc.ColumnNames)
		}
		out = append(out, idx)
	}
	return out, nil
}

// attrSet builds a bitset attribute set from attribute indexes.
func attrSet(attrs []int) bitset.AttrSet {
	return bitset.NewAttrSet(attrs...)
}
