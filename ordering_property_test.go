package fastod_test

import (
	"context"
	"testing"

	fastod "repro"
	"repro/internal/canonical"
	"repro/internal/datagen"
	"repro/internal/relation"
)

// The ordering-semantics property suite: FASTOD over a spec re-encoding must
// discover exactly the dependencies a brute-force oracle finds by comparing
// RAW values under the spec. The two paths share no code below the OrderSpec
// type — the oracle never rank-encodes — so agreement here ties the whole
// encode-then-discover pipeline to the declarative semantics of the spec.

// specCase is one per-column override set, given by column index so it can be
// applied to any messy shape.
type specCase struct {
	name   string
	orders map[int]relation.ColumnOrder
}

// specCases covers direction flips, both NULL placements (including the
// FIRST/LAST flip of the same direction override), and collation overrides.
func specCases(cols int) []specCase {
	cases := []specCase{
		{name: "default", orders: nil},
		{name: "desc-mixed", orders: map[int]relation.ColumnOrder{
			0 % cols: {Direction: relation.Desc},
			1 % cols: {Nulls: relation.NullsLast},
		}},
		{name: "desc-nulls-first", orders: map[int]relation.ColumnOrder{
			0 % cols: {Direction: relation.Desc, Nulls: relation.NullsFirst},
			2 % cols: {Nulls: relation.NullsFirst},
		}},
		{name: "desc-nulls-last", orders: map[int]relation.ColumnOrder{
			0 % cols: {Direction: relation.Desc, Nulls: relation.NullsLast},
			2 % cols: {Nulls: relation.NullsLast},
		}},
		{name: "collations", orders: map[int]relation.ColumnOrder{
			2 % cols: {Collation: relation.CollateCaseInsensitive},
			3 % cols: {Collation: relation.CollateNumeric, Direction: relation.Desc},
		}},
	}
	return cases
}

func TestSpecDiscoveryMatchesRawOracle(t *testing.T) {
	shapes := []struct {
		name        string
		rows, cols  int
		nullDensity float64
		seed        int64
	}{
		{"wide-shallow", 25, 8, 0.33, 11},
		{"deep-narrow", 300, 4, 0.12, 12},
		{"mid-null-heavy", 40, 6, 0.5, 13},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			// The generator is deterministic, so the oracle's relation and the
			// dataset's are value-identical.
			rel := datagen.MessyRelation(shape.rows, shape.cols, shape.nullDensity, shape.seed)
			ds := fastod.SyntheticMessy(shape.rows, shape.cols, shape.nullDensity, shape.seed)
			for _, sc := range specCases(rel.NumCols()) {
				t.Run(sc.name, func(t *testing.T) {
					relSpec := make(relation.OrderSpec, rel.NumCols())
					var orders []fastod.AttrOrder
					for i := range relSpec {
						co, ok := sc.orders[i]
						if !ok {
							continue
						}
						relSpec[i] = co
						orders = append(orders, fastod.AttrOrder{
							Column:    rel.Columns[i].Name,
							Direction: co.Direction,
							Nulls:     co.Nulls,
							Collation: co.Collation,
							Ranks:     co.Ranks,
						})
					}
					want, err := canonical.ReferenceDiscoverRaw(rel, relSpec)
					if err != nil {
						t.Fatalf("ReferenceDiscoverRaw: %v", err)
					}
					rep, err := ds.Run(context.Background(), fastod.Request{
						Algorithm:  fastod.AlgorithmFASTOD,
						RunOptions: fastod.RunOptions{OrderSpecs: orders},
					})
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					got := rep.FASTOD.ODs
					if len(got) != len(want) {
						t.Fatalf("FASTOD found %d ODs, raw oracle %d\n got: %v\nwant: %v",
							len(got), len(want), got, want)
					}
					for i := range want {
						if !got[i].Equal(want[i]) {
							t.Fatalf("OD %d differs: got %v, want %v", i, got[i], want[i])
						}
					}
				})
			}
		})
	}
}

// TestSpecNullPlacementChangesDiscovery pins that the FIRST/LAST flip is not
// a no-op end to end: on a NULL-dense shape, at least one spec pair from the
// suite above must disagree about which dependencies hold.
func TestSpecNullPlacementChangesDiscovery(t *testing.T) {
	ds := fastod.SyntheticMessy(40, 6, 0.5, 13)
	run := func(nulls fastod.NullOrder) []fastod.OD {
		t.Helper()
		var orders []fastod.AttrOrder
		for _, name := range ds.ColumnNames() {
			orders = append(orders, fastod.AttrOrder{Column: name, Nulls: nulls, Direction: fastod.OrderDesc})
		}
		rep, err := ds.Run(context.Background(), fastod.Request{
			RunOptions: fastod.RunOptions{OrderSpecs: orders},
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep.FASTOD.ODs
	}
	first, last := run(fastod.NullsFirst), run(fastod.NullsLast)
	same := len(first) == len(last)
	if same {
		for i := range first {
			if !first[i].Equal(last[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("NULLS FIRST and NULLS LAST discovered identical OD sets on a NULL-dense relation; the placement is not reaching the encoder")
	}
}
