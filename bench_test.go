// Benchmarks that regenerate the paper's evaluation figures (Section 5) as Go
// testing.B benchmarks. Each figure has one benchmark whose sub-benchmarks
// are the series points the paper plots; `go test -bench=.` therefore prints
// runtime series whose shapes can be compared with the paper, and
// cmd/odbench prints the same series together with the discovered OD counts.
//
// The sizes here are reduced so the full suite finishes in a few minutes on a
// laptop; cmd/odbench runs the larger default scale.
package fastod_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	fastod "repro"
)

// seqOpts pins the paper-figure benchmarks to the sequential engine: they
// compare FASTOD against the single-threaded TANE/ORDER baselines, so the
// series stay comparable with the paper (and with runs recorded before the
// parallel engine existed). BenchmarkParallelWorkers measures the parallel
// trajectory explicitly.
func seqOpts() fastod.Options { return fastod.Options{Workers: 1} }

// figureDataset builds one synthetic dataset by paper name.
func figureDataset(name string, rows, cols int) *fastod.Dataset {
	const seed = 2017
	switch name {
	case "flight":
		return fastod.SyntheticFlight(rows, cols, seed)
	case "ncvoter":
		return fastod.SyntheticNCVoter(rows, cols, seed)
	case "hepatitis":
		return fastod.SyntheticHepatitis(rows, cols, seed)
	case "dbtesma":
		return fastod.SyntheticDBTesma(rows, cols, seed)
	default:
		panic("unknown dataset " + name)
	}
}

// benchORDERBudget keeps the factorial baseline bounded inside benchmarks.
func benchORDERBudget() fastod.ORDEROptions {
	return fastod.ORDEROptions{Budget: fastod.Budget{Timeout: 500 * time.Millisecond, MaxNodes: 100_000}}
}

func runFASTOD(b *testing.B, ds *fastod.Dataset, opts fastod.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ds.Discover(opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Counts.Total < 0 {
			b.Fatal("impossible count")
		}
	}
}

func runTANE(b *testing.B, ds *fastod.Dataset) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ds.DiscoverFDs(fastod.TANEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func runORDER(b *testing.B, ds *fastod.Dataset) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ds.DiscoverWithORDER(benchORDERBudget()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 is Exp-1/Exp-3/Exp-4: runtime versus the number of tuples
// at a fixed attribute count, for TANE, FASTOD and ORDER on the flight-,
// ncvoter- and dbtesma-like datasets.
func BenchmarkFigure4(b *testing.B) {
	const cols = 8
	for _, name := range []string{"flight", "ncvoter", "dbtesma"} {
		for _, rows := range []int{500, 1000, 2000} {
			ds := figureDataset(name, rows, cols)
			b.Run(fmt.Sprintf("%s/rows=%d/TANE", name, rows), func(b *testing.B) { runTANE(b, ds) })
			b.Run(fmt.Sprintf("%s/rows=%d/FASTOD", name, rows), func(b *testing.B) { runFASTOD(b, ds, seqOpts()) })
			b.Run(fmt.Sprintf("%s/rows=%d/ORDER", name, rows), func(b *testing.B) { runORDER(b, ds) })
		}
	}
}

// BenchmarkFigure5 is Exp-2/Exp-3/Exp-4: runtime versus the number of
// attributes at a fixed tuple count, for all four datasets.
func BenchmarkFigure5(b *testing.B) {
	rowsFor := map[string]int{"flight": 500, "ncvoter": 500, "hepatitis": 155, "dbtesma": 500}
	colsFor := map[string][]int{
		"flight":    {4, 6, 8, 10},
		"ncvoter":   {4, 6, 8},
		"hepatitis": {4, 6, 8, 10},
		"dbtesma":   {4, 6, 8, 10},
	}
	for _, name := range []string{"flight", "hepatitis", "ncvoter", "dbtesma"} {
		for _, cols := range colsFor[name] {
			ds := figureDataset(name, rowsFor[name], cols)
			b.Run(fmt.Sprintf("%s/cols=%d/TANE", name, cols), func(b *testing.B) { runTANE(b, ds) })
			b.Run(fmt.Sprintf("%s/cols=%d/FASTOD", name, cols), func(b *testing.B) { runFASTOD(b, ds, seqOpts()) })
			b.Run(fmt.Sprintf("%s/cols=%d/ORDER", name, cols), func(b *testing.B) { runORDER(b, ds) })
		}
	}
}

// BenchmarkFigure6 is Exp-5/Exp-6: FASTOD with its pruning rules versus the
// un-pruned variant that enumerates every valid (redundant) OD, scaling rows
// and attributes on the flight-like dataset.
func BenchmarkFigure6(b *testing.B) {
	for _, rows := range []int{500, 1000, 2000} {
		ds := figureDataset("flight", rows, 8)
		b.Run(fmt.Sprintf("rows=%d/FASTOD", rows), func(b *testing.B) { runFASTOD(b, ds, seqOpts()) })
		b.Run(fmt.Sprintf("rows=%d/NoPruning", rows), func(b *testing.B) {
			runFASTOD(b, ds, fastod.Options{Workers: 1, DisablePruning: true, CountOnly: true})
		})
	}
	for _, cols := range []int{6, 8, 10} {
		ds := figureDataset("flight", 500, cols)
		b.Run(fmt.Sprintf("cols=%d/FASTOD", cols), func(b *testing.B) { runFASTOD(b, ds, seqOpts()) })
		b.Run(fmt.Sprintf("cols=%d/NoPruning", cols), func(b *testing.B) {
			runFASTOD(b, ds, fastod.Options{Workers: 1, DisablePruning: true, CountOnly: true})
		})
	}
}

// BenchmarkFigure7 is Exp-7: one full FASTOD run with per-level statistics on
// a wider flight-like table; cmd/odbench -fig 7 prints the per-level series.
func BenchmarkFigure7(b *testing.B) {
	ds := figureDataset("flight", 500, 12)
	runFASTOD(b, ds, fastod.Options{Workers: 1, CollectLevelStats: true})
}

// BenchmarkTable1 measures discovery on the paper's running example.
func BenchmarkTable1(b *testing.B) {
	ds := fastod.EmployeesExample()
	runFASTOD(b, ds, seqOpts())
}

// BenchmarkAblation measures the individual optimizations called out in
// DESIGN.md: key pruning, node pruning and the sorted-scan swap check.
func BenchmarkAblation(b *testing.B) {
	ds := figureDataset("flight", 1000, 10)
	b.Run("baseline", func(b *testing.B) { runFASTOD(b, ds, seqOpts()) })
	b.Run("no-key-pruning", func(b *testing.B) { runFASTOD(b, ds, fastod.Options{Workers: 1, DisableKeyPruning: true}) })
	b.Run("no-node-pruning", func(b *testing.B) { runFASTOD(b, ds, fastod.Options{Workers: 1, DisableNodePruning: true}) })
	b.Run("naive-swap-check", func(b *testing.B) { runFASTOD(b, ds, fastod.Options{Workers: 1, NaiveSwapCheck: true}) })
}

// BenchmarkQueryOptWorkload measures discovery on the date-dimension table of
// the query-optimization example (Query 1 of the paper's introduction).
func BenchmarkQueryOptWorkload(b *testing.B) {
	ds := fastod.DateDimExample(3 * 365)
	runFASTOD(b, ds, seqOpts())
}

// BenchmarkParallelWorkers captures the sequential-vs-parallel trajectory of
// the engine: the same flight-like discovery at increasing worker counts
// (Workers=1 is the sequential path). The output of every run is identical;
// only the wall-clock time changes.
func BenchmarkParallelWorkers(b *testing.B) {
	ds := figureDataset("flight", 2000, 10)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runFASTOD(b, ds, fastod.Options{Workers: w})
		})
	}
}

// BenchmarkSchedulerWorkers compares the two lattice schedulers — the
// level-synchronous barrier and the dependency-aware DAG with work stealing —
// at increasing worker counts on the same FASTOD discovery. The reports are
// byte-identical across the grid (TestSchedulerDifferential); only wall-clock
// and allocation behavior may differ. Keeping both modes in the grid means
// the CI bench-smoke job exercises both scheduler paths on every PR.
func BenchmarkSchedulerWorkers(b *testing.B) {
	ds := figureDataset("flight", 2000, 10)
	for _, sched := range []fastod.Scheduler{fastod.SchedulerBarrier, fastod.SchedulerDAG} {
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", sched, w), func(b *testing.B) {
				b.ReportAllocs()
				req := fastod.Request{RunOptions: fastod.RunOptions{Workers: w, Scheduler: sched}}
				for i := 0; i < b.N; i++ {
					rep, err := ds.Run(context.Background(), req)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Interrupted {
						b.Fatal("unbudgeted benchmark run interrupted")
					}
				}
			})
		}
	}
}

// BenchmarkConditionalSliceWorkers measures conditional discovery with slice
// passes running sequentially (workers=1) versus fanned out across the pool
// (workers=4, each slice sequential inside). The merged report is identical.
func BenchmarkConditionalSliceWorkers(b *testing.B) {
	ds := figureDataset("ncvoter", 2000, 7)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			req := fastod.Request{
				Algorithm:  fastod.AlgorithmConditional,
				RunOptions: fastod.RunOptions{Workers: w},
			}
			for i := 0; i < b.N; i++ {
				if _, err := ds.Run(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
