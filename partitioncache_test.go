package fastod_test

import (
	"testing"

	fastod "repro"
)

// TestEnablePartitionCacheSharedAcrossAlgorithms: once a dataset carries a
// partition cache, every discovery flavour — FASTOD, TANE, approximate,
// bidirectional — reuses the partitions earlier runs computed, and the
// outputs stay identical to uncached runs.
func TestEnablePartitionCacheSharedAcrossAlgorithms(t *testing.T) {
	cached := fastod.SyntheticFlight(400, 7, 2017)
	plain := fastod.SyntheticFlight(400, 7, 2017)
	store := cached.EnablePartitionCache(0)

	resC, err := cached.Discover(fastod.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resP, err := plain.Discover(fastod.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resC.Counts != resP.Counts || len(resC.ODs) != len(resP.ODs) {
		t.Fatalf("cached counts %+v, want %+v", resC.Counts, resP.Counts)
	}
	for i := range resP.ODs {
		if !resC.ODs[i].Equal(resP.ODs[i]) {
			t.Fatalf("OD %d = %v, want %v", i, resC.ODs[i], resP.ODs[i])
		}
	}
	if resP.Stats.PartitionHits != 0 || resP.Stats.PartitionMisses != 0 {
		t.Errorf("uncached dataset recorded store traffic: %+v", resP.Stats)
	}
	afterFASTOD := store.Stats()
	if afterFASTOD.Puts == 0 {
		t.Fatal("FASTOD run stored no partitions")
	}

	// TANE prunes less aggressively than FASTOD, but every singleton and the
	// shared lattice prefix must come from the cache.
	fds, err := cached.DiscoverFDs(fastod.TANEOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fdsPlain, err := plain.DiscoverFDs(fastod.TANEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fds.FDs) != len(fdsPlain.FDs) {
		t.Fatalf("cached TANE found %d FDs, uncached %d", len(fds.FDs), len(fdsPlain.FDs))
	}
	afterTANE := store.Stats()
	if afterTANE.Hits <= afterFASTOD.Hits {
		t.Errorf("TANE run over the warm cache recorded no hits (before %d, after %d)", afterFASTOD.Hits, afterTANE.Hits)
	}

	// Approximate and bidirectional discovery ride the same cache.
	apx, err := cached.DiscoverApproximate(fastod.ApproxOptions{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	apxPlain, err := plain.DiscoverApproximate(fastod.ApproxOptions{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(apx.ODs) != len(apxPlain.ODs) {
		t.Fatalf("cached approx found %d ODs, uncached %d", len(apx.ODs), len(apxPlain.ODs))
	}
	bid, err := cached.DiscoverBidirectional(fastod.BidirOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bidPlain, err := plain.DiscoverBidirectional(fastod.BidirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bid.ODs) != len(bidPlain.ODs) {
		t.Fatalf("cached bidir found %d ODs, uncached %d", len(bid.ODs), len(bidPlain.ODs))
	}
	final := store.Stats()
	if final.Hits <= afterTANE.Hits {
		t.Errorf("extension runs recorded no additional hits (before %d, after %d)", afterTANE.Hits, final.Hits)
	}
	if final.Cost > final.MaxCost {
		t.Errorf("store cost %d exceeds bound %d", final.Cost, final.MaxCost)
	}

	// A second FASTOD run over the fully warmed cache computes nothing.
	again, err := cached.Discover(fastod.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.PartitionMisses != 0 {
		t.Errorf("warm FASTOD re-run recorded %d misses, want 0", again.Stats.PartitionMisses)
	}
	if again.Stats.PartitionHits == 0 {
		t.Error("warm FASTOD re-run recorded no hits")
	}
}
