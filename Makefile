# Developer entry points. CI runs the same targets, so a green `make check`
# locally means the required jobs pass.

.PHONY: build test lint check

build:
	go build ./...

test:
	go test ./...

# gofmt (with diff), go vet, staticcheck (if installed) and the project's
# analyzer suite (cmd/odlint). See lint.sh.
lint:
	./lint.sh

check: lint build test
