package fastod

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/lattice"
	"repro/internal/odparse"
	"repro/internal/relation"
)

// This file is the public face of first-class ordering semantics: the
// AttrOrder entries of Request.OrderSpecs, their canonicalization and
// validation, the textual spec parser shared with the CLIs, and the
// dataset's bounded cache of per-spec re-encodings. The flow is one-way:
// named AttrOrders are canonicalized, fingerprinted, compiled onto the
// dataset's columns as a relation.OrderSpec, and encoded away — every
// discovery algorithm runs on the resulting plain ranks.

// OrderDirection is the per-attribute sort direction of an order spec. (The
// name avoids the package's existing Direction alias, which is the
// bidirectional-OD arrow of DiscoverBidirectional.)
type OrderDirection = relation.Direction

// NullOrder places NULLs relative to every non-null value, independent of
// the direction.
type NullOrder = relation.NullOrder

// Collation chooses the comparator non-null values are ranked under.
type Collation = relation.Collation

// The order-spec enums, re-exported from internal/relation. Zero values are
// the defaults: ascending, NULLS FIRST, type-driven comparison.
const (
	OrderAsc         = relation.Asc
	OrderDesc        = relation.Desc
	NullsFirst       = relation.NullsFirst
	NullsLast        = relation.NullsLast
	CollateDefault   = relation.CollateDefault
	CollateLex       = relation.CollateLexicographic
	CollateNumeric   = relation.CollateNumeric
	CollateDate      = relation.CollateDate
	CollateCaseInsen = relation.CollateCaseInsensitive
	CollateRank      = relation.CollateRank
)

// ParseOrderDirection, ParseNullOrder and ParseCollation parse the wire/CLI
// spellings of the enums (case-insensitive; empty string = default).
var (
	ParseOrderDirection = relation.ParseDirection
	ParseNullOrder      = relation.ParseNullOrder
	ParseCollation      = relation.ParseCollation
)

// AttrOrder overrides the ordering semantics of one named column: sort
// direction, NULL placement and collation (with a value list for
// CollateRank). The zero override (just a column name) is a no-op: it
// selects the default order the column would have anyway, and Canonical
// erases it.
type AttrOrder struct {
	// Column names the attribute the override applies to.
	Column string
	// Direction is the sort direction (default ascending).
	Direction OrderDirection
	// Nulls places NULLs independent of Direction (default NULLS FIRST).
	Nulls NullOrder
	// Collation chooses the comparator (default: the column's sniffed or
	// declared type).
	Collation Collation
	// Ranks is the user-defined value order of CollateRank, lowest first.
	Ranks []string
}

// columnOrder compiles the override into the relation-level ColumnOrder.
func (o AttrOrder) columnOrder() relation.ColumnOrder {
	return relation.ColumnOrder{
		Direction: o.Direction,
		Nulls:     o.Nulls,
		Collation: o.Collation,
		Ranks:     o.Ranks,
	}
}

// isDefault reports whether the override changes nothing.
func (o AttrOrder) isDefault() bool { return o.columnOrder().IsDefault() }

// ParseOrderSpecs parses a comma-separated textual order spec — the grammar
// of the -order-spec CLI flag and of per-attribute modifiers in OD
// expressions, e.g.
//
//	salary desc nulls last, name collate ci, grade desc
//
// Keywords are case-insensitive; every modifier is optional and a bare
// column name is a (canonically erased) no-op. The rank collation has no
// textual form — supply AttrOrder.Ranks programmatically or over JSON.
func ParseOrderSpecs(input string) ([]AttrOrder, error) {
	parsed, err := odparse.ParseOrderSpec(input)
	if err != nil {
		return nil, err
	}
	out := make([]AttrOrder, len(parsed))
	for i, no := range parsed {
		out[i] = AttrOrder{
			Column:    no.Name,
			Direction: no.Order.Direction,
			Nulls:     no.Order.Nulls,
			Collation: no.Order.Collation,
			Ranks:     no.Order.Ranks,
		}
	}
	return out, nil
}

// validateAttrOrders checks a Request.OrderSpecs list without a dataset:
// non-empty unique column names and per-entry ColumnOrder validity. (Whether
// the columns exist is dataset-aware and checked by ValidateRequest.)
func validateAttrOrders(orders []AttrOrder) error {
	seen := make(map[string]bool, len(orders))
	for i, o := range orders {
		if o.Column == "" {
			return fmt.Errorf("OrderSpecs[%d] has an empty column name", i)
		}
		if seen[o.Column] {
			return fmt.Errorf("OrderSpecs names column %q twice", o.Column)
		}
		seen[o.Column] = true
		if err := o.columnOrder().Validate(); err != nil {
			return fmt.Errorf("OrderSpecs[%d] (column %q): %v", i, o.Column, err)
		}
	}
	return nil
}

// canonicalAttrOrders returns the canonical form of an OrderSpecs list:
// fully-default entries dropped (naming a column without overriding anything
// is a no-op), the rest sorted by column name (entries configure their
// columns independently, so listing order is presentation), nil when nothing
// survives. Two lists canonicalize equal exactly when they select the same
// per-column orders, which is what Fingerprint serializes.
func canonicalAttrOrders(orders []AttrOrder) []AttrOrder {
	var out []AttrOrder
	for _, o := range orders {
		if o.isDefault() {
			continue
		}
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// orderSpecKey serializes canonical AttrOrders into the cache key of a spec
// re-encoding. Quoting makes distinct specs collision-free.
func orderSpecKey(orders []AttrOrder) string {
	var b strings.Builder
	for _, o := range orders {
		fmt.Fprintf(&b, "%s:%d,%d,%d", strconv.Quote(o.Column), o.Direction, o.Nulls, o.Collation)
		for _, v := range o.Ranks {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(v))
		}
		b.WriteByte(';')
	}
	return b.String()
}

// defaultSpecEncodingBytes bounds the per-dataset cache of spec re-encodings:
// enough for a handful of specs on mid-size relations, small enough that a
// spec-per-request adversary cannot hold the heap hostage (entries beyond the
// bound evict LRU; oversized single encodings are served but never retained).
const defaultSpecEncodingBytes = 64 << 20

// specEncoding is one cached re-encoding of a dataset under a non-default
// order spec, with the partition store bound to it (non-nil exactly when the
// dataset itself caches partitions).
type specEncoding struct {
	enc   *relation.Encoded
	parts *lattice.PartitionStore
	cost  int64
	used  uint64 // LRU stamp
}

// specEncodings is the mutex-guarded, byte-bounded LRU of a dataset's spec
// re-encodings, keyed by orderSpecKey. It mirrors the PartitionStore's
// philosophy: correctness never depends on it, only the cost of a repeat
// request does.
type specEncodings struct {
	mu      sync.Mutex
	entries map[string]*specEncoding
	clock   uint64
	bytes   int64
}

// encodingFor resolves the rank encoding and partition store a validated
// request runs on. Default spec: the dataset's own encoding and store
// resolution (including the Request.Partitions override). Non-default spec:
// a per-spec re-encoding from the cache (encoded on miss), with its own
// store — never the dataset's, which is bound to the default encoding.
func (d *Dataset) encodingFor(req Request) (*relation.Encoded, *lattice.PartitionStore, error) {
	orders := canonicalAttrOrders(req.OrderSpecs)
	if len(orders) == 0 {
		return d.enc, d.partitions(req.Partitions), nil
	}
	se, err := d.specEncoding(orders)
	if err != nil {
		return nil, nil, err
	}
	return se.enc, se.parts, nil
}

// SpecEncoded returns the dataset re-encoded under the given (non-canonical
// is fine) order overrides, from the cache when warm. It is how spec-aware
// single-statement checks (CheckStatement) and tests reach the same encoding
// Run would use.
func (d *Dataset) SpecEncoded(orders []AttrOrder) (*relation.Encoded, error) {
	canon := canonicalAttrOrders(orders)
	if len(canon) == 0 {
		return d.enc, nil
	}
	if err := validateAttrOrders(canon); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	se, err := d.specEncoding(canon)
	if err != nil {
		return nil, err
	}
	return se.enc, nil
}

// specEncoding returns the cached re-encoding for canonical orders, encoding
// on miss. orders must be canonical (non-empty, validated, sorted).
func (d *Dataset) specEncoding(orders []AttrOrder) (*specEncoding, error) {
	key := orderSpecKey(orders)
	s := &d.specs
	s.mu.Lock()
	if se, ok := s.entries[key]; ok {
		s.clock++
		se.used = s.clock
		s.mu.Unlock()
		return se, nil
	}
	s.mu.Unlock()

	// Encode outside the lock: re-encoding is O(rows·cols·log) and must not
	// serialize concurrent runs under different specs.
	spec, err := d.relationSpec(orders)
	if err != nil {
		return nil, err
	}
	enc, err := relation.EncodeSpec(d.specView(), spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	se := &specEncoding{enc: enc, cost: encodedCost(enc)}
	if d.parts != nil {
		// The dataset opted into partition caching; give the spec encoding
		// its own store (a store is bound to exactly one Encoded instance).
		se.parts = lattice.NewPartitionStore(0)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.entries[key]; ok {
		// Lost a race with a concurrent encoder; keep the incumbent so every
		// caller shares one instance (and one partition store).
		s.clock++
		prev.used = s.clock
		return prev, nil
	}
	if se.cost > defaultSpecEncodingBytes {
		// Never retain an encoding that alone busts the bound — serve it
		// uncached; the caller holds the only reference.
		return se, nil
	}
	if s.entries == nil {
		s.entries = make(map[string]*specEncoding)
	}
	for s.bytes+se.cost > defaultSpecEncodingBytes {
		var lruKey string
		var lru *specEncoding
		for k, e := range s.entries {
			if lru == nil || e.used < lru.used {
				lruKey, lru = k, e
			}
		}
		if lru == nil {
			break
		}
		s.bytes -= lru.cost
		delete(s.entries, lruKey)
	}
	s.clock++
	se.used = s.clock
	s.entries[key] = se
	s.bytes += se.cost
	return se, nil
}

// SpecEncodingCacheStats reports the spec re-encoding cache's accounting:
// resident encodings and their byte cost. For observability endpoints and
// tests; the bound itself is fixed at 64 MiB per dataset.
func (d *Dataset) SpecEncodingCacheStats() (entries int, bytes int64) {
	d.specs.mu.Lock()
	defer d.specs.mu.Unlock()
	return len(d.specs.entries), d.specs.bytes
}

// encodedCost is the byte cost a cached re-encoding is accounted at: the
// rank arenas dominate, everything else is noise.
func encodedCost(enc *relation.Encoded) int64 {
	return int64(enc.NumCols()) * int64(enc.NumRows()) * 4
}

// specView returns the raw relation matching the dataset's encoded view.
// Project and HeadRows views share the full backing relation but narrow the
// encoding to its first k columns / first n rows, so the raw view is the
// same prefix slice.
func (d *Dataset) specView() *relation.Relation {
	cols, rows := d.enc.NumCols(), d.enc.NumRows()
	if cols == d.rel.NumCols() && rows == d.rel.NumRows() {
		return d.rel
	}
	out := &relation.Relation{Name: d.rel.Name, Columns: make([]relation.Column, cols)}
	for i := 0; i < cols; i++ {
		c := d.rel.Columns[i]
		out.Columns[i] = relation.Column{Name: c.Name, Type: c.Type, Raw: c.Raw[:rows]}
	}
	return out
}

// relationSpec compiles named overrides onto the dataset's columns as a
// positional relation.OrderSpec.
func (d *Dataset) relationSpec(orders []AttrOrder) (relation.OrderSpec, error) {
	spec := make(relation.OrderSpec, d.enc.NumCols())
	for _, o := range orders {
		i := d.enc.ColumnIndex(o.Column)
		if i < 0 {
			return nil, fmt.Errorf("%w: OrderSpecs names unknown column %q", ErrInvalidRequest, o.Column)
		}
		spec[i] = o.columnOrder()
	}
	return spec, nil
}

// ColumnTypes returns the sniffed (or declared) type name of every column in
// schema order — the vocabulary of the default collation, served by the
// server's schema endpoint so clients can decide which collation override to
// request.
func (d *Dataset) ColumnTypes() []string {
	out := make([]string, d.enc.NumCols())
	for i := range out {
		out[i] = d.rel.Columns[i].Type.String()
	}
	return out
}
