package fastod_test

import (
	"os"
	"strings"
	"testing"

	fastod "repro"
)

func TestLoadCSVAndDiscover(t *testing.T) {
	csv := `sal,tax,perc
5000,1000,20
8000,2000,25
10000,3000,30
4500,900,20
6000,1500,25
8000,2000,25
`
	ds, err := fastod.LoadCSV("salaries", strings.NewReader(csv))
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if ds.NumRows() != 6 || ds.NumCols() != 3 {
		t.Fatalf("dims %dx%d", ds.NumRows(), ds.NumCols())
	}
	res, err := ds.Discover(fastod.Options{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	cover := fastod.NewCover(res.ODs)
	sal, tax := ds.ColumnIndex("sal"), ds.ColumnIndex("tax")
	if !cover.Implies(fastod.NewConstancyOD([]int{sal}, tax)) {
		t.Error("{sal}: [] -> tax should be implied")
	}
	if !cover.Implies(fastod.NewOrderCompatibleOD(nil, sal, tax)) {
		t.Error("{}: sal ~ tax should be implied")
	}
}

func TestLoadCSVFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/tiny.csv"
	content := "a,b\n1,2\n2,4\n3,6\n"
	if err := writeFile(path, content); err != nil {
		t.Fatal(err)
	}
	ds, err := fastod.LoadCSVFile(path)
	if err != nil {
		t.Fatalf("LoadCSVFile: %v", err)
	}
	if ds.Name() != path || ds.NumRows() != 3 {
		t.Errorf("Name=%q rows=%d", ds.Name(), ds.NumRows())
	}
	if _, err := fastod.LoadCSVFile(path + ".missing"); err == nil {
		t.Error("expected error for missing file")
	}
	if _, err := fastod.LoadCSV("bad", strings.NewReader("")); err == nil {
		t.Error("expected error for empty CSV")
	}
}

func TestEmployeesExampleMatchesPaper(t *testing.T) {
	ds := fastod.EmployeesExample()
	if ds.NumRows() != 6 || ds.NumCols() != 9 {
		t.Fatalf("dims %dx%d, want 6x9", ds.NumRows(), ds.NumCols())
	}

	// Example 1: list-based ODs that hold on Table 1.
	holds, err := ds.CheckListOD([]string{"sal"}, []string{"tax"})
	if err != nil || !holds {
		t.Errorf("[sal] -> [tax] = %v, %v", holds, err)
	}
	holds, err = ds.CheckListOD([]string{"sal"}, []string{"grp", "subg"})
	if err != nil || !holds {
		t.Errorf("[sal] -> [grp,subg] = %v, %v", holds, err)
	}
	holds, err = ds.CheckListOD([]string{"yr", "sal"}, []string{"yr", "bin"})
	if err != nil || !holds {
		t.Errorf("[yr,sal] -> [yr,bin] = %v, %v", holds, err)
	}
	// Example 2-style order compatibility.
	ok, err := ds.CheckOrderCompatible([]string{"yr", "bin"}, []string{"yr", "sal"})
	if err != nil || !ok {
		t.Errorf("[yr,bin] ~ [yr,sal] = %v, %v", ok, err)
	}
	// A violated OD.
	holds, err = ds.CheckListOD([]string{"posit"}, []string{"sal"})
	if err != nil || holds {
		t.Errorf("[posit] -> [sal] = %v, %v (should fail)", holds, err)
	}
	// Unknown columns are rejected.
	if _, err := ds.CheckListOD([]string{"nope"}, []string{"sal"}); err == nil {
		t.Error("expected error for unknown column")
	}
	if _, err := ds.CheckOrderCompatible([]string{"sal"}, []string{"nope"}); err == nil {
		t.Error("expected error for unknown column")
	}
	if _, err := ds.CheckOrderCompatible([]string{"nope"}, []string{"sal"}); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestMapListODPublic(t *testing.T) {
	ds := fastod.EmployeesExample()
	ods, err := ds.MapListOD([]string{"sal"}, []string{"grp", "subg"})
	if err != nil {
		t.Fatalf("MapListOD: %v", err)
	}
	if len(ods) == 0 {
		t.Fatal("expected canonical ODs from the mapping")
	}
	for _, od := range ods {
		holds, err := ds.CheckCanonicalOD(od)
		if err != nil {
			t.Fatal(err)
		}
		if !holds {
			t.Errorf("mapped canonical OD %v should hold", od.NamesString(ds.ColumnNames()))
		}
	}
	if _, err := ds.MapListOD([]string{"missing"}, []string{"sal"}); err == nil {
		t.Error("expected error for unknown column")
	}
	if _, err := ds.MapListOD([]string{"sal"}, []string{"missing"}); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestFromRowsAndViolations(t *testing.T) {
	ds, err := fastod.FromRows("t", []string{"a", "b"}, [][]string{
		{"1", "10"}, {"2", "20"}, {"3", "5"},
	})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	od := fastod.NewOrderCompatibleOD(nil, 0, 1)
	holds, err := ds.CheckCanonicalOD(od)
	if err != nil || holds {
		t.Fatalf("a ~ b should fail: %v %v", holds, err)
	}
	v, found, err := ds.FindViolation(od)
	if err != nil || !found {
		t.Fatalf("FindViolation: %v %v", found, err)
	}
	if !v.IsSwap {
		t.Error("violation should be a swap")
	}
	if _, err := fastod.FromRows("bad", []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("expected error for ragged rows")
	}
}

func TestProjectAndHeadRows(t *testing.T) {
	ds := fastod.SyntheticFlight(200, 12, 3)
	p := ds.Project(5)
	if p.NumCols() != 5 || p.NumRows() != 200 {
		t.Errorf("Project dims %dx%d", p.NumRows(), p.NumCols())
	}
	h := ds.HeadRows(50)
	if h.NumRows() != 50 || h.NumCols() != 12 {
		t.Errorf("HeadRows dims %dx%d", h.NumRows(), h.NumCols())
	}
	if _, err := p.Discover(fastod.Options{}); err != nil {
		t.Errorf("Discover on projection: %v", err)
	}
}

func TestSyntheticDatasetsDiscoverable(t *testing.T) {
	sets := map[string]*fastod.Dataset{
		"flight":    fastod.SyntheticFlight(120, 8, 1),
		"ncvoter":   fastod.SyntheticNCVoter(120, 8, 1),
		"hepatitis": fastod.SyntheticHepatitis(0, 8, 1),
		"dbtesma":   fastod.SyntheticDBTesma(120, 8, 1),
		"datedim":   fastod.DateDimExample(90),
	}
	for name, ds := range sets {
		res, err := ds.Discover(fastod.Options{})
		if err != nil {
			t.Errorf("%s: Discover: %v", name, err)
			continue
		}
		if res.Counts.Total == 0 {
			t.Errorf("%s: expected some ODs", name)
		}
		if len(ds.ColumnNames()) != ds.NumCols() {
			t.Errorf("%s: ColumnNames length mismatch", name)
		}
	}
}

func TestBaselinesPublicAPI(t *testing.T) {
	ds := fastod.EmployeesExample()

	fds, err := ds.DiscoverFDs(fastod.TANEOptions{})
	if err != nil {
		t.Fatalf("DiscoverFDs: %v", err)
	}
	res, err := ds.Discover(fastod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fds.FDs) != res.Counts.Constancy {
		t.Errorf("TANE found %d FDs, FASTOD found %d constancy ODs", len(fds.FDs), res.Counts.Constancy)
	}

	ord, err := ds.DiscoverWithORDER(fastod.DefaultORDERBudget())
	if err != nil {
		t.Fatalf("DiscoverWithORDER: %v", err)
	}
	cover := fastod.NewCover(res.ODs)
	for _, od := range ord.Canonical {
		if !cover.Implies(od) {
			t.Errorf("ORDER OD %v not implied by FASTOD output", od)
		}
	}
}

func TestReferenceDiscoverPublicAPI(t *testing.T) {
	ds := fastod.EmployeesExample()
	ref, err := ds.ReferenceDiscover()
	if err != nil {
		t.Fatalf("ReferenceDiscover: %v", err)
	}
	res, err := ds.Discover(fastod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(res.ODs) {
		t.Errorf("reference found %d ODs, FASTOD %d", len(ref), len(res.ODs))
	}
}

func TestWithSwapViolations(t *testing.T) {
	ds := fastod.DateDimExample(60)
	dirty, affected, err := ds.WithSwapViolations("d_year", 2, 9)
	if err != nil {
		t.Fatalf("WithSwapViolations: %v", err)
	}
	if len(affected) == 0 {
		t.Error("expected affected rows")
	}
	if dirty.NumRows() != ds.NumRows() {
		t.Error("row count changed")
	}
	if _, _, err := ds.WithSwapViolations("missing", 1, 9); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestMinimizeODsPublic(t *testing.T) {
	base := fastod.NewConstancyOD([]int{0}, 1)
	redundant := fastod.NewConstancyOD([]int{0, 2}, 1)
	out := fastod.MinimizeODs([]fastod.OD{base, redundant})
	if len(out) != 1 || !out[0].Equal(base) {
		t.Errorf("MinimizeODs = %v", out)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
