// Command completeness reproduces the completeness comparison of Sections 4.5
// and 5.3: the ORDER baseline misses whole classes of order dependencies that
// FASTOD discovers — constant columns, pure FD-fragment ODs of the form
// X ↦ XY, and order-compatibility facts such as month ~ week that do not come
// packaged with a full OD.
package main

import (
	"fmt"
	"log"
	"strconv"

	fastod "repro"
)

func main() {
	// Build a small calendar-like table: year is constant (all data from
	// 2012, as in the paper's flight dataset), month and week are both
	// monotone in the hidden day counter (order compatible, but neither
	// functionally determines the other), and a noise column breaks
	// accidental dependencies.
	header := []string{"year", "month", "week", "noise"}
	var rows [][]string
	for day := 0; day < 120; day++ {
		rows = append(rows, []string{
			"2012",
			strconv.Itoa(day / 30),
			strconv.Itoa(day / 7),
			strconv.Itoa((day*7 + 3) % 5),
		})
	}
	ds, err := fastod.FromRows("calendar", header, rows)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("Dataset %q: %d tuples, %d attributes: %v\n\n", ds.Name(), ds.NumRows(), ds.NumCols(), ds.ColumnNames())

	fast, err := ds.Discover(fastod.Options{})
	if err != nil {
		log.Fatalf("fastod: %v", err)
	}
	ord, err := ds.DiscoverWithORDER(fastod.DefaultORDERBudget())
	if err != nil {
		log.Fatalf("order: %v", err)
	}

	fmt.Printf("FASTOD discovered %s canonical ODs.\n", fast.Counts)
	fmt.Printf("ORDER  discovered %d list ODs, mapping to %s canonical ODs (timed out: %v).\n\n",
		len(ord.ODs), ord.Counts, ord.TimedOut)

	fastCover := fastod.NewCover(fast.ODs)
	orderCover := fastod.NewCover(ord.Canonical)
	idx := func(name string) int { return ds.ColumnIndex(name) }

	probes := []struct {
		desc string
		od   fastod.OD
	}{
		{"constant column: {}: [] -> year", fastod.NewConstancyOD(nil, idx("year"))},
		{"order compatibility without an FD: {}: month ~ week", fastod.NewOrderCompatibleOD(nil, idx("month"), idx("week"))},
		{"FD fragment inside a context: {month}: [] -> year", fastod.NewConstancyOD([]int{idx("month")}, idx("year"))},
	}
	fmt.Println("Dependency class                                         FASTOD  ORDER")
	for _, p := range probes {
		fmt.Printf("%-56s %-7v %v\n", p.desc, fastCover.Implies(p.od), orderCover.Implies(p.od))
	}

	fmt.Println("\nEvery OD ORDER did find is implied by FASTOD's output (soundness):")
	missing := 0
	for _, od := range ord.Canonical {
		if !fastCover.Implies(od) {
			missing++
		}
	}
	fmt.Printf("  %d of %d ORDER ODs are NOT implied by FASTOD (expected 0).\n", missing, len(ord.Canonical))
	fmt.Println("\nThe converse fails: FASTOD is complete, ORDER is not (Section 4.5).")
}
